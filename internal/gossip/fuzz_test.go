package gossip

// FuzzGossipParams feeds arbitrary — including malformed — parameter
// combinations to the engine. Invalid parameters must be rejected by
// Validate (never panic), and any accepted configuration must run to
// completion deterministically: two runs from the same params produce
// identical Results and every conservation invariant holds.

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

func FuzzGossipParams(f *testing.F) {
	f.Add(uint64(1), int16(60), int16(4), int16(2), int16(6), uint8(1), int16(20), 0.1, 0.05, 0.8)
	f.Add(uint64(2), int16(2), int16(2), int16(1), int16(1), uint8(2), int16(1), 0.0, 0.0, 0.0)
	f.Add(uint64(3), int16(-5), int16(0), int16(-1), int16(0), uint8(0), int16(0), -1.0, 2.0, -3.0)
	f.Add(uint64(4), int16(100), int16(99), int16(30), int16(16), uint8(3), int16(10), 0.5, 0.5, 5.0)

	f.Fuzz(func(t *testing.T, seed uint64, n, deg, fanout, rounds int16, mode uint8, queries int16, dead, loss, queryExp float64) {
		p := DefaultParams()
		p.Seed = seed
		p.NetworkSize = int(n)
		p.AvgDegree = int(deg)
		p.Fanout = int(fanout)
		p.MaxRounds = int(rounds)
		p.Mode = Mode(mode)
		p.NumQueries = int(queries)
		p.DeadFraction = dead
		p.LossProb = loss
		p.Content.QueryExp = queryExp
		// Keep accepted configurations small enough to run thousands of
		// fuzz iterations; rejection paths still see the raw values.
		if p.NetworkSize > 128 {
			p.NetworkSize = 128
		}
		if p.MaxRounds > 16 {
			p.MaxRounds = 16
		}
		if p.NumQueries > 24 {
			p.NumQueries = 24
		}
		if p.Fanout > 32 {
			p.Fanout = 32
		}
		p.Content.NumItems = 500

		e, err := New(p)
		if err != nil {
			return // malformed params must be rejected, not panic
		}
		a, err := e.Run(context.Background())
		if err != nil {
			t.Fatalf("accepted params failed to run: %v", err)
		}
		b, err := Run(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			t.Fatalf("same params, different results:\n%s\n%s", aj, bj)
		}
		if a.Queries != p.NumQueries || a.Satisfied+a.Unsatisfied != a.Queries {
			t.Fatalf("query accounting broken: %+v", a)
		}
		if a.MessagesSent != a.MessagesDelivered+a.MessagesDropped {
			t.Fatalf("conservation violated: %+v", a)
		}
		if a.MaxRoundsUsed > p.MaxRounds {
			t.Fatalf("round budget exceeded: used %d, budget %d", a.MaxRoundsUsed, p.MaxRounds)
		}
		if s := a.Satisfaction(); s < 0 || s > 1 {
			t.Fatalf("satisfaction %v outside [0,1]", s)
		}
	})
}
