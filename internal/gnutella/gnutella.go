// Package gnutella implements the forwarding-based baselines the paper
// compares GUESS against (Figure 8):
//
//   - fixed-extent search, the Gnutella abstraction: every query
//     reaches a fixed number of peers regardless of how popular the
//     target is, so cost never adapts;
//   - iterative deepening (Yang & Garcia-Molina, ICDCS 2002): coarse
//     batches of peers are probed round by round until the query is
//     satisfied;
//   - true TTL flooding over generated overlay topologies (random and
//     power-law), used for validation and for the message-amplification
//     comparison the paper makes qualitatively in Section 3.
//
// The baselines share the GUESS content model, so Figure 8's cost /
// quality trade-off is apples-to-apples.
package gnutella

import (
	"fmt"

	"repro/internal/content"
	"repro/internal/simrng"
)

// Population is a churn-free set of peer libraries used to evaluate
// search mechanisms in isolation from cache maintenance. (Flooding
// reaches only live peers, so a live snapshot is the fair baseline.)
type Population struct {
	universe *content.Universe
	libs     []content.Library
}

// NewPopulation samples n peers' libraries from the universe.
func NewPopulation(u *content.Universe, n int, r *simrng.RNG) (*Population, error) {
	if n < 1 {
		return nil, fmt.Errorf("gnutella: population must have at least 1 peer, got %d", n)
	}
	libs := make([]content.Library, n)
	for i := range libs {
		libs[i] = u.NewLibrary(r, u.SampleLibrarySize(r))
	}
	return &Population{universe: u, libs: libs}, nil
}

// Size returns the number of peers.
func (p *Population) Size() int { return len(p.libs) }

// Universe returns the shared content universe.
func (p *Population) Universe() *content.Universe { return p.universe }

// Library returns peer i's library.
func (p *Population) Library(i int) content.Library { return p.libs[i] }

// SearchResult reports one query's outcome under a baseline mechanism.
type SearchResult struct {
	// Probes is the number of peers that received the query.
	Probes int
	// Results is the number of results found.
	Results int
	// Satisfied reports whether Results reached the desired count.
	Satisfied bool
}

// sample draws k distinct peer indices via Floyd's algorithm.
func (p *Population) sample(r *simrng.RNG, k int) []int {
	n := len(p.libs)
	if k > n {
		k = n
	}
	chosen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for i := n - k; i < n; i++ {
		j := r.Intn(i + 1)
		if chosen[j] {
			j = i
		}
		chosen[j] = true
		out = append(out, j)
	}
	return out
}

// FixedExtent runs one fixed-extent query: the query reaches exactly
// extent random peers (the set a Gnutella TTL would cover), costing
// extent probes no matter when results appear.
func (p *Population) FixedExtent(r *simrng.RNG, item content.ItemID, extent, desired int) SearchResult {
	if extent < 1 {
		extent = 1
	}
	res := SearchResult{}
	for _, i := range p.sample(r, extent) {
		res.Probes++
		res.Results += p.libs[i].Results(item)
	}
	res.Satisfied = res.Results >= desired
	return res
}

// IterativeDeepening probes successive batches of previously unprobed
// random peers, stopping after any batch that satisfies the query.
// batches lists each round's size; the paper describes rounds of
// "many peers (e.g., hundreds)".
func (p *Population) IterativeDeepening(r *simrng.RNG, item content.ItemID, batches []int, desired int) SearchResult {
	res := SearchResult{}
	total := 0
	for _, b := range batches {
		total += b
	}
	if total > len(p.libs) {
		total = len(p.libs)
	}
	order := p.sample(r, total)
	next := 0
	for _, b := range batches {
		for i := 0; i < b && next < len(order); i++ {
			res.Probes++
			res.Results += p.libs[order[next]].Results(item)
			next++
		}
		if res.Results >= desired {
			res.Satisfied = true
			return res
		}
	}
	res.Satisfied = res.Results >= desired
	return res
}

// DefaultDeepeningBatches is the default iterative-deepening policy:
// coarse rounds growing toward full coverage of a 1000-peer network.
func DefaultDeepeningBatches(networkSize int) []int {
	// Rounds at roughly 10%, +20%, +30%, remainder.
	b1 := networkSize / 10
	b2 := networkSize / 5
	b3 := (3 * networkSize) / 10
	b4 := networkSize - b1 - b2 - b3
	return []int{b1, b2, b3, b4}
}
