package report

import (
	"fmt"
	"math"
	"strings"
)

// SVG renders the chart as a standalone SVG document of the given
// pixel size — the publishable counterpart of the ASCII rendering.
// Series are drawn as polylines with point markers, with axis ticks,
// a legend, and optional log-scaled x.
func (c *Chart) SVG(width, height int) string {
	if width < 160 {
		width = 160
	}
	if height < 120 {
		height = 120
	}
	const (
		marginLeft   = 64
		marginRight  = 16
		marginTop    = 28
		marginBottom = 44
	)
	plotW := float64(width - marginLeft - marginRight)
	plotH := float64(height - marginTop - marginBottom)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="18" font-family="sans-serif" font-size="13" font-weight="bold">%s</text>`+"\n",
			marginLeft, escape(c.Title))
	}

	// Data bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.X {
			x := c.xVal(s.X[i])
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">no data</text>`+"\n",
			marginLeft, marginTop+20)
		b.WriteString("</svg>\n")
		return b.String()
	}
	if minY > 0 && minY < maxY {
		minY = 0
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	px := func(x float64) float64 {
		return float64(marginLeft) + (c.xVal(x)-minX)/(maxX-minX)*plotW
	}
	py := func(y float64) float64 {
		return float64(marginTop) + (1-(y-minY)/(maxY-minY))*plotH
	}

	// Axes.
	fmt.Fprintf(&b, `<g stroke="#333" stroke-width="1">`+"\n")
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d"/>`+"\n",
		marginLeft, marginTop, marginLeft, height-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d"/>`+"\n",
		marginLeft, height-marginBottom, width-marginRight, height-marginBottom)
	b.WriteString("</g>\n")

	// Ticks: 5 per axis.
	const ticks = 5
	fmt.Fprintf(&b, `<g font-family="sans-serif" font-size="10" fill="#333">`+"\n")
	for i := 0; i <= ticks; i++ {
		frac := float64(i) / ticks
		yVal := minY + frac*(maxY-minY)
		y := py(yVal)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			marginLeft, y, width-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+3, trimFloat(yVal))

		xT := minX + frac*(maxX-minX)
		xLabel := xT
		if c.LogX {
			xLabel = math.Pow(10, xT)
		}
		x := float64(marginLeft) + frac*plotW
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x, height-marginBottom+14, trimFloat(xLabel))
	}
	// Axis labels.
	xNote := c.XLabel
	if c.LogX {
		xNote += " (log)"
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="11">%s</text>`+"\n",
		float64(marginLeft)+plotW/2, height-8, escape(xNote))
	fmt.Fprintf(&b, `<text x="12" y="%.1f" font-size="11" transform="rotate(-90 12 %.1f)" text-anchor="middle">%s</text>`+"\n",
		float64(marginTop)+plotH/2, float64(marginTop)+plotH/2, escape(c.YLabel))
	b.WriteString("</g>\n")

	// Series.
	colors := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f"}
	for si, s := range c.series {
		color := colors[si%len(colors)]
		if len(s.X) > 1 {
			var pts []string
			for i := range s.X {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
			}
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
				color, strings.Join(pts, " "))
		}
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), color)
		}
	}

	// Legend (top-right corner of the plot).
	fmt.Fprintf(&b, `<g font-family="sans-serif" font-size="10">`+"\n")
	for si, s := range c.series {
		y := marginTop + 12 + si*14
		x := width - marginRight - 130
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			x, y-3, x+16, y-3, colors[si%len(colors)])
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", x+20, y, escape(s.Name))
	}
	b.WriteString("</g>\n</svg>\n")
	return b.String()
}

// escape sanitizes text nodes.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
