package policy

import (
	"repro/internal/cache"
	"repro/internal/simrng"
)

// Scratch holds reusable selection state so the hot-path variants of
// Pick and PickN run with zero steady-state allocations. A simulation
// engine owns one Scratch and threads it through every pong build; the
// buffers grow to the high-water mark of the run and are then reused.
//
// The scratch-backed methods consume randomness in exactly the same
// order as the allocating reference functions (Pick, PickN), and for
// scored policies produce exactly the same indices in the same order —
// TestScratchMatchesReference locks both properties. That equivalence
// is what lets the simulator adopt Scratch without perturbing a single
// seeded run.
//
// Scratch is not safe for concurrent use. The zero value is ready to
// use.
type Scratch struct {
	// idx is the result buffer returned by PickN; valid until the next
	// call on this Scratch.
	idx []int

	// mark is a generation-stamped "already chosen" table indexed by
	// entry position: mark[i] == gen means position i is taken in the
	// current call. Bumping gen invalidates all marks in O(1), so no
	// per-call clearing (or allocation) is needed.
	mark []uint64
	gen  uint64

	// heap is the bounded min-heap used by the scored top-k: the worst
	// of the current best k sits at heap[0].
	heap []topkItem
}

// topkItem is one candidate in the bounded top-k heap.
type topkItem struct {
	score float64
	idx   int
}

// Pick is the scratch-backed equivalent of the package-level Pick. It
// never allocates; it exists so callers can hold a single handle for
// all selection entry points.
func (sc *Scratch) Pick(r *simrng.RNG, sel Selection, entries []cache.Entry) int {
	return Pick(r, sel, entries)
}

// PickN is the scratch-backed equivalent of the package-level PickN:
// same selected indices in the same order, same RNG consumption, but
// the returned slice aliases the Scratch and is only valid until the
// next call. Callers must copy (or fully consume) the result before
// reusing sc.
func (sc *Scratch) PickN(r *simrng.RNG, sel Selection, entries []cache.Entry, n int) []int {
	if n <= 0 || len(entries) == 0 {
		return nil
	}
	if n > len(entries) {
		n = len(entries)
	}
	sc.idx = sc.idx[:0]
	if sel == SelRandom {
		return sc.pickRandom(r, len(entries), n)
	}
	return sc.pickTopK(sel, entries, n)
}

// SampleIndices draws up to k distinct indices in [0, n) via Floyd's
// sampling, consuming exactly the Intn sequence — and appending in
// exactly the order — of the classic map-based loop
//
//	chosen := make(map[int]bool, k)
//	for i := n - k; i < n; i++ { j := r.Intn(i+1); if chosen[j] { j = i }; ... }
//
// but with the Scratch's generation-stamped mark table instead of a
// per-call map, so it is allocation-free in the steady state. The
// returned slice aliases the Scratch and is valid until the next call.
// Simulation engines use it for population sampling (e.g. time-zero
// cache seeding), where the sampled universe is a peer slice rather
// than a cache entry slice; TestSampleIndicesMatchesReference pins the
// draw-order equivalence.
func (sc *Scratch) SampleIndices(r *simrng.RNG, n, k int) []int {
	sc.idx = sc.idx[:0]
	if k <= 0 || n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	return sc.pickRandom(r, n, k)
}

// pickRandom runs Floyd's sampling exactly as the reference PickN does
// — the same Intn sequence and the same append order — but records
// "chosen" in the generation-stamped mark table instead of a per-call
// map.
func (sc *Scratch) pickRandom(r *simrng.RNG, numEntries, n int) []int {
	sc.stamp(numEntries)
	for i := numEntries - n; i < numEntries; i++ {
		j := r.Intn(i + 1)
		if sc.mark[j] == sc.gen {
			j = i
		}
		sc.mark[j] = sc.gen
		sc.idx = append(sc.idx, j)
	}
	return sc.idx
}

// pickTopK selects the n best entries under sel via a bounded min-heap
// — O(len·log n) instead of the reference's n full passes — and then
// orders the winners by (score desc, index asc), which is precisely the
// order the reference's repeated max-scans emit (ties always resolve to
// the lowest index first).
func (sc *Scratch) pickTopK(sel Selection, entries []cache.Entry, n int) []int {
	sc.heap = sc.heap[:0]
	for i, e := range entries {
		it := topkItem{score: sel.Score(e), idx: i}
		if len(sc.heap) < n {
			sc.heap = append(sc.heap, it)
			sc.siftUp(len(sc.heap) - 1)
			continue
		}
		if worseThan(it, sc.heap[0]) {
			continue
		}
		sc.heap[0] = it
		sc.siftDown(0)
	}
	// Pop ascending-badness into idx, then reverse to get best-first.
	for len(sc.heap) > 0 {
		sc.idx = append(sc.idx, sc.heap[0].idx)
		last := len(sc.heap) - 1
		sc.heap[0] = sc.heap[last]
		sc.heap = sc.heap[:last]
		if len(sc.heap) > 0 {
			sc.siftDown(0)
		}
	}
	for i, j := 0, len(sc.idx)-1; i < j; i, j = i+1, j-1 {
		sc.idx[i], sc.idx[j] = sc.idx[j], sc.idx[i]
	}
	return sc.idx
}

// worseThan is the heap's strict total order: a is worse than b when it
// scores lower, or scores equal with a higher index (the reference
// prefers low indices on ties).
func worseThan(a, b topkItem) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.idx > b.idx
}

// stamp sizes the mark table for n positions and starts a fresh
// generation. gen is a uint64 bumped once per call; it cannot wrap in
// any realistic run.
func (sc *Scratch) stamp(n int) {
	if cap(sc.mark) < n {
		sc.mark = make([]uint64, n)
	}
	sc.mark = sc.mark[:n]
	sc.gen++
}

func (sc *Scratch) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worseThan(sc.heap[i], sc.heap[parent]) {
			break
		}
		sc.heap[i], sc.heap[parent] = sc.heap[parent], sc.heap[i]
		i = parent
	}
}

func (sc *Scratch) siftDown(i int) {
	n := len(sc.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		worst := left
		if right := left + 1; right < n && worseThan(sc.heap[right], sc.heap[left]) {
			worst = right
		}
		if !worseThan(sc.heap[worst], sc.heap[i]) {
			return
		}
		sc.heap[i], sc.heap[worst] = sc.heap[worst], sc.heap[i]
		i = worst
	}
}
