// Command guess-lint is the repo's determinism, observability, and
// concurrency-discipline linter: a multichecker for the analyzers under
// internal/analysis (detrand, maporder, rngstream, obsname over the
// deterministic simulation packages; atomicfield, lockguard, goroexit,
// wirebound over the concurrent node/cluster/orchestration packages).
// See the README "Static analysis" section for what each analyzer
// enforces and how to suppress a finding with a reasoned //lint:
// annotation. The framework also reports stale suppressions: a //lint:
// directive that no longer silences any finding is itself a finding
// (standalone mode only — a single-package vet invocation cannot tell
// stale from cross-package-needed).
//
// Standalone usage (what `make lint` runs):
//
//	guess-lint ./...
//
// It also speaks enough of the `go vet -vettool` protocol to run as a
// vet tool:
//
//	go build -o /tmp/guess-lint ./cmd/guess-lint
//	go vet -vettool=/tmp/guess-lint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load error (standalone);
// in vettool mode findings exit 2, matching vet convention.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/goroexit"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/obsname"
	"repro/internal/analysis/rngstream"
	"repro/internal/analysis/wirebound"
)

// suite returns a fresh analyzer suite. obsname is stateful (its
// duplicate-registration check spans packages), so every run gets its
// own instance.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		maporder.Analyzer,
		rngstream.Analyzer,
		obsname.New(""),
		atomicfield.Analyzer,
		lockguard.Analyzer,
		goroexit.Analyzer,
		wirebound.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			// The go command fingerprints vet tools for its build cache.
			fmt.Fprintln(stdout, "guess-lint version v2")
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			// The go command asks which analyzer flags the tool accepts.
			fmt.Fprintln(stdout, "[]")
			return 0
		case filepath.Ext(args[0]) == ".cfg":
			return runVet(args[0], stderr)
		}
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if len(p) > 0 && p[0] == '-' {
			fmt.Fprintf(stderr, "usage: guess-lint [packages]\n")
			return 2
		}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "guess-lint: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, suite())
	if err != nil {
		fmt.Fprintf(stderr, "guess-lint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "guess-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// vetConfig mirrors the fields of the JSON file the go command hands a
// vettool for each package (x/tools unitchecker.Config).
type vetConfig struct {
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet handles one `go vet -vettool` invocation: type-check the
// package described by cfgFile against the export data the go command
// prepared, run the suite, and report findings on stderr.
func runVet(cfgFile string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "guess-lint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "guess-lint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// The go command always expects the facts output file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("guess-lint has no facts"), 0o666); err != nil {
			fmt.Fprintf(stderr, "guess-lint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := analysis.LoadVet(basePath(cfg.ImportPath), cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "guess-lint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	// Vet mode sees one package at a time, so the stale-suppression
	// sweep stays off: a directive whose finding needs cross-package
	// summaries would be misreported as unused.
	findings, err := analysis.RunWithoutSuppressionCheck([]*analysis.Package{pkg}, suite())
	if err != nil {
		fmt.Fprintf(stderr, "guess-lint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(stderr, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// basePath strips the " [pkg.test]" variant suffix go list appends to
// test-augmented packages.
func basePath(importPath string) string {
	for i := 0; i+1 < len(importPath); i++ {
		if importPath[i] == ' ' && importPath[i+1] == '[' {
			return importPath[:i]
		}
	}
	return importPath
}
