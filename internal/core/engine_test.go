package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
)

// quickParams returns a small, fast configuration for tests.
func quickParams() Params {
	p := DefaultParams()
	p.NetworkSize = 200
	p.WarmupTime = 100
	p.MeasureTime = 400
	p.QueryRate = 0.02 // denser queries so short runs have samples
	return p
}

func run(t *testing.T, p Params) *Results {
	t.Helper()
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidateRejectsBadParams(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"tiny network", func(p *Params) { p.NetworkSize = 1 }},
		{"zero desired results", func(p *Params) { p.NumDesiredResults = 0 }},
		{"zero lifespan", func(p *Params) { p.LifespanMultiplier = 0 }},
		{"zero query rate", func(p *Params) { p.QueryRate = 0 }},
		{"bad percent", func(p *Params) { p.PercentBadPeers = 150 }},
		{"bad peers without behavior", func(p *Params) { p.PercentBadPeers = 10; p.BadPong = 0 }},
		{"bad query probe", func(p *Params) { p.QueryProbe = 0 }},
		{"bad query pong", func(p *Params) { p.QueryPong = 99 }},
		{"bad ping probe", func(p *Params) { p.PingProbe = 0 }},
		{"bad ping pong", func(p *Params) { p.PingPong = 0 }},
		{"bad replacement", func(p *Params) { p.CacheReplacement = 0 }},
		{"zero ping interval", func(p *Params) { p.PingInterval = 0 }},
		{"zero cache", func(p *Params) { p.CacheSize = 0 }},
		{"backoff without period", func(p *Params) { p.DoBackoff = true; p.BackoffPeriod = 0 }},
		{"negative pong size", func(p *Params) { p.PongSize = -1 }},
		{"bad intro prob", func(p *Params) { p.IntroProb = 2 }},
		{"negative seed size", func(p *Params) { p.CacheSeedSize = -1 }},
		{"zero probe spacing", func(p *Params) { p.ProbeSpacing = 0 }},
		{"zero parallel probes", func(p *Params) { p.ParallelProbes = 0 }},
		{"negative max probes", func(p *Params) { p.MaxProbesPerQuery = -1 }},
		{"negative warmup", func(p *Params) { p.WarmupTime = -1 }},
		{"zero measure", func(p *Params) { p.MeasureTime = 0 }},
		{"zero sample interval", func(p *Params) { p.SampleInterval = 0 }},
		{"bad content", func(p *Params) { p.Content.NumItems = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if _, err := New(p); err == nil {
				t.Fatal("invalid params accepted")
			}
		})
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnce(t *testing.T) {
	e, err := New(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err == nil {
		t.Fatal("second Run succeeded")
	}
}

func TestBasicRunProducesQueries(t *testing.T) {
	res := run(t, quickParams())
	if res.Queries == 0 {
		t.Fatal("no queries completed")
	}
	if res.Satisfied+res.Unsatisfied != res.Queries {
		t.Fatalf("satisfied %d + unsatisfied %d != queries %d",
			res.Satisfied, res.Unsatisfied, res.Queries)
	}
	if res.ProbesTotal != res.GoodProbes+res.DeadProbes+res.RefusedProbes {
		t.Fatalf("probe accounting broken: %d != %d+%d+%d",
			res.ProbesTotal, res.GoodProbes, res.DeadProbes, res.RefusedProbes)
	}
	if res.ProbesPerQuery() <= 0 {
		t.Fatal("no probes recorded")
	}
	if res.Unsatisfaction() < 0 || res.Unsatisfaction() > 1 {
		t.Fatalf("unsatisfaction %v outside [0,1]", res.Unsatisfaction())
	}
}

func TestDeterminism(t *testing.T) {
	p := quickParams()
	a := run(t, p)
	b := run(t, p)
	if a.Queries != b.Queries || a.ProbesTotal != b.ProbesTotal ||
		a.Satisfied != b.Satisfied || a.Births != b.Births ||
		a.Pings != b.Pings {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	p.Seed = 999
	c := run(t, p)
	if c.ProbesTotal == a.ProbesTotal && c.Queries == a.Queries && c.Pings == a.Pings {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestChurnKeepsPopulationConstant(t *testing.T) {
	p := quickParams()
	p.LifespanMultiplier = 0.1 // heavy churn
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if e.ps.len() != p.NetworkSize {
		t.Fatalf("alive population %d, want %d", e.ps.len(), p.NetworkSize)
	}
	if res.Deaths == 0 {
		t.Fatal("no churn under LifespanMultiplier=0.1")
	}
	if res.Births != res.Deaths+p.NetworkSize {
		t.Fatalf("births %d != deaths %d + initial %d", res.Births, res.Deaths, p.NetworkSize)
	}
	// The dense index table and the slot arrays must agree both ways.
	live := 0
	for i := 0; i < e.ps.len(); i++ {
		if got := e.ps.slotOf(e.ps.id[i]); got != i {
			t.Fatalf("slot %d holds id %d but slotOf resolves to %d", i, e.ps.id[i], got)
		}
	}
	for id, slot := range e.ps.byID {
		if slot < 0 {
			continue
		}
		live++
		if e.ps.id[slot] != cache.PeerID(id) {
			t.Fatalf("byID[%d]=%d but slot holds id %d", id, slot, e.ps.id[slot])
		}
	}
	if live != e.ps.len() {
		t.Fatalf("index table has %d live entries, slots %d", live, e.ps.len())
	}
}

func TestCacheHealthSampled(t *testing.T) {
	res := run(t, quickParams())
	if res.CacheSamples == 0 {
		t.Fatal("no cache samples")
	}
	if res.AvgCacheEntries <= 0 {
		t.Fatal("no cache entries observed")
	}
	if res.AvgLiveEntries > res.AvgCacheEntries {
		t.Fatalf("live entries %v exceed held %v", res.AvgLiveEntries, res.AvgCacheEntries)
	}
	if res.AvgLiveFraction < 0 || res.AvgLiveFraction > 1 {
		t.Fatalf("live fraction %v outside [0,1]", res.AvgLiveFraction)
	}
}

func TestSatisfiedQueriesNeedFewerProbesWithMFS(t *testing.T) {
	base := quickParams()
	base.Seed = 5

	mfs := base
	mfs.QueryPong = policy.SelMFS
	mfs.CacheReplacement = policy.EvLFS

	rnd := run(t, base)
	good := run(t, mfs)
	if good.ProbesPerQuery() >= rnd.ProbesPerQuery() {
		t.Fatalf("MFS/LFS (%.1f probes/query) not better than Random (%.1f)",
			good.ProbesPerQuery(), rnd.ProbesPerQuery())
	}
}

func TestConnectivitySampling(t *testing.T) {
	p := quickParams()
	p.QueriesEnabled = false
	p.SampleConnectivity = true
	res := run(t, p)
	if res.ConnectivityRuns == 0 {
		t.Fatal("no connectivity samples")
	}
	if res.AvgLargestWCC <= 0 || res.AvgLargestWCC > float64(p.NetworkSize) {
		t.Fatalf("AvgLargestWCC = %v", res.AvgLargestWCC)
	}
	if res.FinalLargestWCC <= 0 || res.FinalLargestWCC > p.NetworkSize {
		t.Fatalf("FinalLargestWCC = %d", res.FinalLargestWCC)
	}
	// With default ping interval and cache size the overlay should be
	// essentially fully connected.
	if res.AvgLargestWCC < 0.9*float64(p.NetworkSize) {
		t.Fatalf("overlay unexpectedly fragmented: %v", res.AvgLargestWCC)
	}
	if res.Queries != 0 {
		t.Fatal("queries ran while disabled")
	}
}

func TestQueriesDisabledSkipsQueryRateValidation(t *testing.T) {
	p := quickParams()
	p.QueriesEnabled = false
	p.QueryRate = 0
	if _, err := New(p); err != nil {
		t.Fatalf("QueryRate=0 rejected with queries disabled: %v", err)
	}
}

func TestCapacityLimitsCauseRefusals(t *testing.T) {
	p := quickParams()
	p.MaxProbesPerSecond = 1
	p.QueryRate = 0.05
	p.QueryProbe = policy.SelMFS
	p.QueryPong = policy.SelMFS
	p.CacheReplacement = policy.EvLFS
	res := run(t, p)
	if res.RefusedProbes == 0 {
		t.Fatal("no refusals under capacity 1 with load-concentrating policies")
	}
	unlimited := quickParams()
	unlimited.MaxProbesPerSecond = 0
	res2 := run(t, unlimited)
	if res2.RefusedProbes != 0 {
		t.Fatal("refusals with unlimited capacity")
	}
}

func TestBackoffSuppressesInsteadOfEvicting(t *testing.T) {
	p := quickParams()
	p.MaxProbesPerSecond = 1
	p.QueryRate = 0.05
	p.DoBackoff = true
	p.BackoffPeriod = 120
	res := run(t, p)
	// The run must still complete queries and account probes correctly.
	if res.Queries == 0 {
		t.Fatal("no queries with backoff enabled")
	}
	if res.ProbesTotal != res.GoodProbes+res.DeadProbes+res.RefusedProbes {
		t.Fatal("probe accounting broken with backoff")
	}
}

func TestMaliciousPeersDegradeMFS(t *testing.T) {
	base := quickParams()
	base.MeasureTime = 600
	base.QueryProbe = policy.SelMFS
	base.QueryPong = policy.SelMFS
	base.CacheReplacement = policy.EvLFS

	clean := run(t, base)

	poisoned := base
	poisoned.PercentBadPeers = 20
	poisoned.BadPong = BadPongDead
	bad := run(t, poisoned)

	if bad.Unsatisfaction() <= clean.Unsatisfaction() {
		t.Fatalf("poisoning did not hurt MFS: clean %.3f vs poisoned %.3f",
			clean.Unsatisfaction(), bad.Unsatisfaction())
	}
	if bad.AvgGoodEntries >= clean.AvgGoodEntries {
		t.Fatalf("good cache entries not reduced: clean %.1f vs poisoned %.1f",
			clean.AvgGoodEntries, bad.AvgGoodEntries)
	}
}

func TestMaliciousFractionPreservedUnderChurn(t *testing.T) {
	p := quickParams()
	p.PercentBadPeers = 20
	p.BadPong = BadPongBad
	p.LifespanMultiplier = 0.1
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := float64(len(e.bad)) / float64(e.ps.len())
	if math.Abs(got-0.2) > 0.001 {
		t.Fatalf("malicious fraction drifted to %v", got)
	}
	for _, b := range e.bad {
		slot := e.ps.slotOf(b)
		if slot < 0 {
			t.Fatalf("dead peer %d in bad list", b)
		}
		if !e.ps.malicious[slot] {
			t.Fatal("non-malicious peer in bad list")
		}
	}
}

func TestMRStarMoreRobustThanMFSUnderCollusion(t *testing.T) {
	mk := func(sel policy.Selection, ev policy.Eviction) Params {
		p := quickParams()
		p.MeasureTime = 600
		p.QueryProbe = sel
		p.QueryPong = sel
		p.CacheReplacement = ev
		p.PercentBadPeers = 20
		p.BadPong = BadPongBad
		return p
	}
	mfs := run(t, mk(policy.SelMFS, policy.EvLFS))
	mrStar := run(t, mk(policy.SelMRStar, policy.EvLRStar))
	if mrStar.Unsatisfaction() >= mfs.Unsatisfaction() {
		t.Fatalf("MR* (%.3f unsat) not more robust than MFS (%.3f) under collusion",
			mrStar.Unsatisfaction(), mfs.Unsatisfaction())
	}
}

func TestParallelProbesReduceResponseTime(t *testing.T) {
	serial := quickParams()
	serial.Seed = 11
	parallel := serial
	parallel.ParallelProbes = 10
	a := run(t, serial)
	b := run(t, parallel)
	if b.AvgResponseTime() >= a.AvgResponseTime() {
		t.Fatalf("parallel probes did not cut response time: %.2fs vs %.2fs",
			b.AvgResponseTime(), a.AvgResponseTime())
	}
	// Parallelism wastes at most ~k-1 extra probes per query.
	if b.ProbesPerQuery() > a.ProbesPerQuery()+float64(parallel.ParallelProbes) {
		t.Fatalf("parallel probes cost too much: %.1f vs %.1f",
			b.ProbesPerQuery(), a.ProbesPerQuery())
	}
}

func TestMaxProbesPerQueryTruncates(t *testing.T) {
	p := quickParams()
	p.MaxProbesPerQuery = 5
	res := run(t, p)
	if res.Queries == 0 {
		t.Fatal("no queries")
	}
	if got := res.ProbesPerQuery(); got > 5.01 {
		t.Fatalf("probes per query %v exceeds cap 5", got)
	}
}

func TestPeerLoadsRecorded(t *testing.T) {
	res := run(t, quickParams())
	if len(res.PeerLoads) == 0 {
		t.Fatal("no peer loads recorded")
	}
	ranked := res.RankedLoads()
	for i := 1; i < len(ranked); i++ {
		if ranked[i] > ranked[i-1] {
			t.Fatal("RankedLoads not descending")
		}
	}
	var sum int64
	for _, l := range res.PeerLoads {
		sum += l
	}
	if sum != res.TotalLoad() {
		t.Fatal("TotalLoad mismatch")
	}
	if sum == 0 {
		t.Fatal("no load recorded at all")
	}
}

func TestResultsZeroQueriesSafe(t *testing.T) {
	var r Results
	if r.ProbesPerQuery() != 0 || r.Unsatisfaction() != 0 || r.AvgResponseTime() != 0 {
		t.Fatal("per-query metrics on empty results not zero")
	}
}

func TestBadPongBehaviorString(t *testing.T) {
	if BadPongDead.String() != "Dead" || BadPongBad.String() != "Bad" || BadPongGood.String() != "Good" {
		t.Fatal("BadPongBehavior names wrong")
	}
}
