package benchfmt

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSingleRun-8   	       9	 128562358 ns/op	 7207304 B/op	    6326 allocs/op
BenchmarkTable3LiveEntries-8	       1	2026706169 ns/op	        11.00 rows
PASS
ok  	repro	3.456s
goos: linux
goarch: amd64
pkg: repro/internal/policy
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScratchPickN/Random-8         	11083401	       107.0 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/policy	1.234s
`

func TestParseSample(t *testing.T) {
	hdr, results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Goos != "linux" || hdr.Goarch != "amd64" || !strings.Contains(hdr.CPU, "Xeon") {
		t.Fatalf("bad header: %+v", hdr)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(results), results)
	}

	r := results[0]
	if r.Name != "BenchmarkSingleRun" || r.Procs != 8 || r.Pkg != "repro" {
		t.Fatalf("bad identity: %+v", r)
	}
	if r.Iterations != 9 || r.NsPerOp != 128562358 || r.BytesPerOp != 7207304 || r.AllocsPerOp != 6326 {
		t.Fatalf("bad metrics: %+v", r)
	}

	if got := results[1].Extra["rows"]; got != 11 {
		t.Fatalf("custom metric rows = %v, want 11", got)
	}

	r = results[2]
	if r.Name != "BenchmarkScratchPickN/Random" || r.Pkg != "repro/internal/policy" {
		t.Fatalf("bad sub-benchmark identity: %+v", r)
	}
	if r.NsPerOp != 107.0 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Fatalf("bad sub-benchmark metrics: %+v", r)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX",                 // no iteration count
		"BenchmarkX abc 5 ns/op",     // bad count
		"BenchmarkX-4 10 5 ns/op 3",  // dangling value
		"BenchmarkX-4 10 fast ns/op", // non-numeric value
	} {
		if _, _, err := Parse(strings.NewReader(bad + "\n")); err == nil {
			t.Fatalf("Parse accepted malformed line %q", bad)
		}
	}
}

func TestParseSkipsNoise(t *testing.T) {
	noise := "=== RUN TestFoo\n--- PASS: TestFoo\nPASS\nok \trepro\t0.1s\n"
	_, results, err := Parse(strings.NewReader(noise))
	if err != nil || len(results) != 0 {
		t.Fatalf("Parse(noise) = %v results, err %v", len(results), err)
	}
}

// TestResultJSONRoundTrip pins the JSON field names the trajectory
// files use; renaming them would orphan historical BENCH_*.json data.
func TestResultJSONRoundTrip(t *testing.T) {
	in := Result{Name: "BenchmarkX", Procs: 4, Pkg: "p", Iterations: 10,
		NsPerOp: 1.5, BytesPerOp: 64, AllocsPerOp: 2, Extra: map[string]float64{"rows": 3}}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"name"`, `"ns_per_op"`, `"bytes_per_op"`, `"allocs_per_op"`, `"rows"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("JSON %s missing key %s", b, key)
		}
	}
	var out Result
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.NsPerOp != in.NsPerOp || out.Extra["rows"] != 3 {
		t.Fatalf("round trip lost data: %+v", out)
	}
}
