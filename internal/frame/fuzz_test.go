package frame

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// fuzzMax bounds the declared payload length during fuzzing: big
// enough to exercise multi-byte lengths, small enough that the fuzzer
// cannot make the harness itself allocate gigabytes.
const fuzzMax = 1 << 16

// FuzzFrameDecode asserts the frame reader never panics, never
// allocates past the caller's bound, and classifies every stream as
// exactly one of: a valid frame (which must re-encode byte-identically),
// clean EOF, truncation, an oversize header, or corruption.
func FuzzFrameDecode(f *testing.F) {
	seed := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := Write(&buf, payload, fuzzMax); err != nil {
			f.Fatalf("seed write: %v", err)
		}
		return buf.Bytes()
	}
	f.Add(seed(nil))
	f.Add(seed([]byte("x")))
	f.Add(seed(bytes.Repeat([]byte("frame"), 100)))
	// Structurally hostile streams: empty, truncated header, huge
	// declared length, bad checksum.
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 'x'})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Read(bytes.NewReader(data), fuzzMax) // must never panic
		if err != nil {
			if payload != nil {
				t.Fatalf("Read returned both a payload and error %v", err)
			}
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
				errors.Is(err, ErrTooLarge), errors.Is(err, ErrCorrupt):
			default:
				t.Fatalf("Read returned an unclassified error: %v", err)
			}
			// An oversize verdict must match the header's declared
			// length; nothing else about the stream can cause it.
			if errors.Is(err, ErrTooLarge) {
				if len(data) < 4 || binary.BigEndian.Uint32(data[0:4]) <= fuzzMax {
					t.Fatalf("ErrTooLarge without an oversize header: %x", data[:min(len(data), 8)])
				}
			}
			return
		}
		// An accepted frame respects the bound and round-trips exactly.
		if len(payload) > fuzzMax {
			t.Fatalf("accepted payload of %d bytes exceeds the %d bound", len(payload), fuzzMax)
		}
		var buf bytes.Buffer
		if err := Write(&buf, payload, fuzzMax); err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:8+len(payload)]) {
			t.Fatalf("re-encoding changed the frame bytes:\n got %x\nwant %x", buf.Bytes(), data[:8+len(payload)])
		}
	})
}
