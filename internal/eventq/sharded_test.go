package eventq

import (
	"math/rand"
	"testing"
)

// TestShardedMatchesQueue is the merge rule's contract: for any
// interleaving of pushes and pops, a Sharded queue (any shard count,
// any shard assignment) must pop exactly the sequence a single Queue
// pops, because both order on (time, global push order).
func TestShardedMatchesQueue(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8, 16} {
		rng := rand.New(rand.NewSource(int64(shards) * 7919))
		var ref Queue[int]
		s := NewSharded[int](shards)
		live := 0
		for step := 0; step < 20000; step++ {
			if live == 0 || rng.Intn(3) != 0 {
				// Coarse times force heavy ties so the seq tie-break is
				// actually exercised.
				tm := float64(rng.Intn(50))
				v := step
				ref.Push(tm, v)
				s.Push(rng.Intn(shards), tm, v)
				live++
			} else {
				wt, wv, wok := ref.Pop()
				gt, gv, gok := s.Pop()
				if wt != gt || wv != gv || wok != gok {
					t.Fatalf("shards=%d step=%d: sharded pop (%v,%v,%v) != queue pop (%v,%v,%v)",
						shards, step, gt, gv, gok, wt, wv, wok)
				}
				live--
			}
			if s.Len() != live {
				t.Fatalf("shards=%d: Len=%d, want %d", shards, s.Len(), live)
			}
		}
		for live > 0 {
			wt, wv, _ := ref.Pop()
			gt, gv, ok := s.Pop()
			if !ok || wt != gt || wv != gv {
				t.Fatalf("shards=%d drain: (%v,%v,%v) != (%v,%v,true)", shards, gt, gv, ok, wt, wv)
			}
			live--
		}
		if _, _, ok := s.Pop(); ok {
			t.Fatal("pop on drained sharded queue reported ok")
		}
	}
}

func TestShardedPeek(t *testing.T) {
	s := NewSharded[string](4)
	if _, _, ok := s.Peek(); ok {
		t.Fatal("Peek on empty sharded queue reported ok")
	}
	s.Push(3, 2.0, "later")
	s.Push(1, 1.0, "first")
	s.Push(0, 1.0, "tied-second")
	tm, v, ok := s.Peek()
	if !ok || tm != 1.0 || v != "first" {
		t.Fatalf("Peek = (%v, %q, %v)", tm, v, ok)
	}
	if s.Len() != 3 {
		t.Fatalf("Peek changed Len to %d", s.Len())
	}
}

func TestShardedPanicsOnBadShardCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded(0) did not panic")
		}
	}()
	NewSharded[int](0)
}

// TestResetBehavesLikeFresh pins the recycling contract shared by
// Queue, Sharded and Calendar: after Reset, a reused queue must order
// same-time events exactly like a freshly constructed one (sequence
// counters rewound, no stale events).
func TestResetBehavesLikeFresh(t *testing.T) {
	script := func(push func(float64, int), pop func() (float64, int, bool)) []int {
		for i := 0; i < 100; i++ {
			push(float64(i%7), i)
		}
		var out []int
		for {
			_, v, ok := pop()
			if !ok {
				break
			}
			out = append(out, v)
		}
		return out
	}

	var q Queue[int]
	fresh := script(q.Push, q.Pop)
	q.Push(99, -1) // leftover that Reset must drop
	q.Reset()
	if got := script(q.Push, q.Pop); !equalInts(got, fresh) {
		t.Fatalf("Queue after Reset diverged:\n got %v\nwant %v", got, fresh)
	}

	s := NewSharded[int](4)
	pushS := func(tm float64, v int) { s.Push(v%4, tm, v) }
	freshS := script(pushS, s.Pop)
	s.Push(2, 99, -1)
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("sharded Len after Reset = %d", s.Len())
	}
	if got := script(pushS, s.Pop); !equalInts(got, freshS) {
		t.Fatalf("Sharded after Reset diverged:\n got %v\nwant %v", got, freshS)
	}

	c := NewCalendar[int]()
	freshC := script(c.Push, c.Pop)
	c.Push(99, -1)
	c.Reset()
	if got := script(c.Push, c.Pop); !equalInts(got, freshC) {
		t.Fatalf("Calendar after Reset diverged:\n got %v\nwant %v", got, freshC)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
