package core

import (
	"repro/internal/cache"
	"repro/internal/content"
)

// peerStore is the engine's struct-of-arrays peer state. A live peer is
// a slot — an index into a set of parallel arrays — and byID maps a
// PeerID to its slot (or -1). Compared to the former
// map[PeerID]*peer layout this removes one heap object and one pointer
// dereference per peer, keeps the sampling and connectivity scans on
// contiguous memory, and lets a million-peer population fit in a
// handful of flat allocations sized once from Params.NetworkSize.
//
// Slot discipline: births append at the end; a death swap-removes its
// slot (the last slot's peer moves into the freed one). Slots are
// therefore stable only between births/deaths — which the engine
// exploits, because peers are born and die exclusively inside
// handleDeath and bootstrap; every other event handler can hold slot
// indices (and even &ps.link[slot] pointers) for its whole duration.
// The swap-remove + append dance also reproduces exactly the peer
// ordering of the previous []*peer implementation, which the
// rngChurn-driven friend choice observes; the goldens pin that.
type peerStore struct {
	// byID maps a PeerID to its slot; -1 for dead or never-born IDs.
	// IDs are assigned monotonically from 1 and never reused, so the
	// table only appends (index 0 is a permanent -1 sentinel).
	// Fabricated addresses (>= fakeAddrBase) fall outside the table and
	// resolve to -1 via the bounds check in slotOf.
	byID []int32

	// Slot-parallel arrays; len(id) is the live population.
	id              []cache.PeerID
	advertisedFiles []int32
	malicious       []bool
	selfish         []bool
	lib             []content.Library
	link            []cache.LinkCache
	pingInterval    []float64
	pingsInWindow   []int32
	deadInWindow    []int32
	winStart        []float64
	winCount        []int32
	probesReceived  []int64

	// Poison-detection and back-off state; nil maps until first use
	// (most configurations never touch them).
	provenance []map[cache.PeerID]cache.PeerID
	pongStats  []map[cache.PeerID]supplierRecord
	blacklist  []map[cache.PeerID]bool
	suppressed []map[cache.PeerID]float64
}

// init sizes every array for a population of n and empties the store.
// Storage already allocated (a recycled engine's) is kept.
func (ps *peerStore) init(n int) {
	if cap(ps.byID) == 0 {
		ps.byID = make([]int32, 1, 2*n+1)
		ps.byID[0] = -1
		ps.id = make([]cache.PeerID, 0, n)
		ps.advertisedFiles = make([]int32, 0, n)
		ps.malicious = make([]bool, 0, n)
		ps.selfish = make([]bool, 0, n)
		ps.lib = make([]content.Library, 0, n)
		ps.link = make([]cache.LinkCache, 0, n)
		ps.pingInterval = make([]float64, 0, n)
		ps.pingsInWindow = make([]int32, 0, n)
		ps.deadInWindow = make([]int32, 0, n)
		ps.winStart = make([]float64, 0, n)
		ps.winCount = make([]int32, 0, n)
		ps.probesReceived = make([]int64, 0, n)
		ps.provenance = make([]map[cache.PeerID]cache.PeerID, 0, n)
		ps.pongStats = make([]map[cache.PeerID]supplierRecord, 0, n)
		ps.blacklist = make([]map[cache.PeerID]bool, 0, n)
		ps.suppressed = make([]map[cache.PeerID]float64, 0, n)
		return
	}
	ps.byID = ps.byID[:1]
	ps.byID[0] = -1
	ps.truncate(0)
}

// truncate cuts every slot array to n entries, zeroing the
// pointer-bearing tails so dropped peers do not pin their storage.
func (ps *peerStore) truncate(n int) {
	for i := n; i < len(ps.id); i++ {
		ps.lib[i] = content.Library{}
		ps.link[i] = cache.LinkCache{}
		ps.provenance[i] = nil
		ps.pongStats[i] = nil
		ps.blacklist[i] = nil
		ps.suppressed[i] = nil
	}
	ps.id = ps.id[:n]
	ps.advertisedFiles = ps.advertisedFiles[:n]
	ps.malicious = ps.malicious[:n]
	ps.selfish = ps.selfish[:n]
	ps.lib = ps.lib[:n]
	ps.link = ps.link[:n]
	ps.pingInterval = ps.pingInterval[:n]
	ps.pingsInWindow = ps.pingsInWindow[:n]
	ps.deadInWindow = ps.deadInWindow[:n]
	ps.winStart = ps.winStart[:n]
	ps.winCount = ps.winCount[:n]
	ps.probesReceived = ps.probesReceived[:n]
	ps.provenance = ps.provenance[:n]
	ps.pongStats = ps.pongStats[:n]
	ps.blacklist = ps.blacklist[:n]
	ps.suppressed = ps.suppressed[:n]
}

// len returns the live population.
func (ps *peerStore) len() int { return len(ps.id) }

// slotOf resolves an address to its slot, or -1 when the peer is dead,
// never existed, or the address is fabricated (out of table range).
func (ps *peerStore) slotOf(addr cache.PeerID) int {
	if addr < 0 || int64(addr) >= int64(len(ps.byID)) {
		return -1
	}
	return int(ps.byID[addr])
}

// grow appends one zero-valued slot to every array and returns its
// index. The caller fills the fields and registers the ID in byID.
func (ps *peerStore) grow() int {
	slot := len(ps.id)
	ps.id = append(ps.id, 0)
	ps.advertisedFiles = append(ps.advertisedFiles, 0)
	ps.malicious = append(ps.malicious, false)
	ps.selfish = append(ps.selfish, false)
	ps.lib = append(ps.lib, content.Library{})
	ps.link = append(ps.link, cache.LinkCache{})
	ps.pingInterval = append(ps.pingInterval, 0)
	ps.pingsInWindow = append(ps.pingsInWindow, 0)
	ps.deadInWindow = append(ps.deadInWindow, 0)
	ps.winStart = append(ps.winStart, 0)
	ps.winCount = append(ps.winCount, 0)
	ps.probesReceived = append(ps.probesReceived, 0)
	ps.provenance = append(ps.provenance, nil)
	ps.pongStats = append(ps.pongStats, nil)
	ps.blacklist = append(ps.blacklist, nil)
	ps.suppressed = append(ps.suppressed, nil)
	return slot
}

// swapRemove frees a slot by moving the last slot's peer into it and
// truncating. The caller must have captured any fields of the dying
// peer it still needs and cleared its byID entry beforehand.
func (ps *peerStore) swapRemove(slot int) {
	last := len(ps.id) - 1
	if slot != last {
		ps.id[slot] = ps.id[last]
		ps.advertisedFiles[slot] = ps.advertisedFiles[last]
		ps.malicious[slot] = ps.malicious[last]
		ps.selfish[slot] = ps.selfish[last]
		ps.lib[slot] = ps.lib[last]
		ps.link[slot] = ps.link[last]
		ps.pingInterval[slot] = ps.pingInterval[last]
		ps.pingsInWindow[slot] = ps.pingsInWindow[last]
		ps.deadInWindow[slot] = ps.deadInWindow[last]
		ps.winStart[slot] = ps.winStart[last]
		ps.winCount[slot] = ps.winCount[last]
		ps.probesReceived[slot] = ps.probesReceived[last]
		ps.provenance[slot] = ps.provenance[last]
		ps.pongStats[slot] = ps.pongStats[last]
		ps.blacklist[slot] = ps.blacklist[last]
		ps.suppressed[slot] = ps.suppressed[last]
		ps.byID[ps.id[slot]] = int32(slot)
	}
	ps.truncate(last)
}
