package node

// Unit tests for the cluster hooks on the fair admitter: the delta the
// sync client drains, the aggregate it installs, the salt-rotation
// reset, and the Config.KeySalt injection point — all exercised at the
// admitter level, below the wire.

import (
	"net/netip"
	"testing"
	"time"
)

// TestFairAdmitterClusterAggregate: a requester that looks light
// locally but heavy in the cluster-merged view is shed under pressure;
// clearing the aggregate restores local-only judgment.
func TestFairAdmitterClusterAggregate(t *testing.T) {
	f := newFairAdmitter(20, time.Second)
	base := time.Unix(5000, 0)
	rotator, light := uint64(0xbeef), uint64(0xa)

	// Window 1: a flood key pushes offered volume past capacity so
	// window 2 starts under carried pressure with three requesters
	// active.
	flood := uint64(0xf100d)
	for i := 0; i < 50; i++ {
		f.admit(flood, probeQuery, base)
	}
	f.admit(rotator, probeQuery, base)
	f.admit(light, probeQuery, base)

	// Window 2, no aggregate: the rotator offers 2/window against a
	// fair share of 20/3 — admitted on local evidence.
	w2 := base.Add(time.Second)
	if v := f.admit(rotator, probeQuery, w2); !v.ok {
		t.Fatalf("locally-light rotator refused without an aggregate: %+v", v)
	}

	// Install a cluster view pegging the rotator far past any share.
	var agg AdmissionAggregate
	idx := FairIndices(rotator)
	for l := 0; l < FairLevels; l++ {
		agg.Counts[l][idx[l]] = 100
	}
	agg.Active = 3
	f.setAggregate(agg, true)
	if v := f.admit(rotator, probeQuery, w2); v.ok || v.tier != shedQuery {
		t.Fatalf("cluster-heavy rotator admitted: %+v", v)
	}
	// The light requester is untouched by the rotator's cluster heat.
	if v := f.admit(light, probeQuery, w2); !v.ok {
		t.Fatalf("light requester refused under cluster view: %+v", v)
	}

	// Dropping the cluster view (sync fallback) returns to local
	// evidence: the rotator is admitted again.
	f.setAggregate(AdmissionAggregate{}, false)
	if v := f.admit(rotator, probeQuery, w2); !v.ok {
		t.Fatalf("rotator refused after aggregate cleared: %+v", v)
	}
}

// TestFairAdmitterAggregateNeverRefusesIdle: the cluster view sharpens
// shedding only under local pressure — an idle node admits even a
// cluster-heavy requester (the service is an optimization, never a
// gate).
func TestFairAdmitterAggregateNeverRefusesIdle(t *testing.T) {
	f := newFairAdmitter(20, time.Second)
	base := time.Unix(6000, 0)
	key := uint64(0xbeef)
	var agg AdmissionAggregate
	idx := FairIndices(key)
	for l := 0; l < FairLevels; l++ {
		agg.Counts[l][idx[l]] = 1 << 20
	}
	f.setAggregate(agg, true)
	for i := 0; i < 10; i++ {
		if v := f.admit(key, probeQuery, base); !v.ok {
			t.Fatalf("idle node refused probe %d on cluster evidence alone: %+v", i, v)
		}
	}
}

// TestFairAdmitterDeltaAccrual: the delta drained by the sync client
// counts offered demand — admitted and refused alike — accumulates
// across window rolls, and resets on drain.
func TestFairAdmitterDeltaAccrual(t *testing.T) {
	f := newFairAdmitter(2, time.Second)
	base := time.Unix(7000, 0)
	key := uint64(0xcafe)

	if _, ok := f.takeDelta(); ok {
		t.Fatal("fresh admitter reported a nonzero delta")
	}
	// 5 offered this window (3 past capacity, refused), 2 next window:
	// the delta must hold all 7 — refusals included, across the roll.
	for i := 0; i < 5; i++ {
		f.admit(key, probeQuery, base)
	}
	for i := 0; i < 2; i++ {
		f.admit(key, probeQuery, base.Add(time.Second))
	}
	d, ok := f.takeDelta()
	if !ok {
		t.Fatal("no delta after 7 offered queries")
	}
	idx := FairIndices(key)
	for l := 0; l < FairLevels; l++ {
		if got := d.Counts[l][idx[l]]; got != 7 {
			t.Fatalf("level %d delta = %d, want 7 (offered demand incl. refusals)", l, got)
		}
	}
	// Drained: the next take is empty, pings never count.
	f.admit(key, probePing, base.Add(time.Second))
	if _, ok := f.takeDelta(); ok {
		t.Fatal("delta not reset by drain (or a ping counted)")
	}
}

// TestFairAdmitterResetSketch: salt rotation forgets everything —
// local windows, unsent delta, and the installed aggregate — since
// counts hashed under the old salt land in meaningless buckets.
func TestFairAdmitterResetSketch(t *testing.T) {
	f := newFairAdmitter(20, time.Second)
	base := time.Unix(8000, 0)
	key := uint64(0xd00d)
	for i := 0; i < 30; i++ {
		f.admit(key, probeQuery, base)
	}
	var agg AdmissionAggregate
	agg.Counts[0][0] = 99
	f.setAggregate(agg, true)

	f.resetSketch()
	if _, ok := f.takeDelta(); ok {
		t.Fatal("delta survived resetSketch")
	}
	if f.aggOK {
		t.Fatal("aggregate survived resetSketch")
	}
	idx := FairIndices(key)
	for l := 0; l < FairLevels; l++ {
		if f.counts[l][idx[l]] != 0 {
			t.Fatal("window counts survived resetSketch")
		}
	}
	if f.active != 0 || f.activePrev != 0 {
		t.Fatal("active estimates survived resetSketch")
	}
}

// TestKeySaltConfig: Config.KeySalt zero derives the per-node salt from
// Seed exactly as before the field existed (byte-identical default),
// while a nonzero KeySalt is taken verbatim — the cluster injection
// point.
func TestKeySaltConfig(t *testing.T) {
	legacy := func(seed uint64) uint64 { return seed*0x9e3779b97f4a7c15 + 1 }
	for _, seed := range []uint64{0, 1, 42, 1 << 60} {
		if got, want := saltFor(Config{Seed: seed}), legacy(seed); got != want {
			t.Fatalf("saltFor(Seed=%d) = %#x, want legacy %#x", seed, got, want)
		}
	}
	if got := saltFor(Config{Seed: 42, KeySalt: 7}); got != 7 {
		t.Fatalf("saltFor with KeySalt=7 = %d, want 7", got)
	}
	// Two nodes configured with the same KeySalt hash a requester
	// identically — the property merged sketches depend on.
	addr := netip.MustParseAddrPort("10.0.0.9:6346")
	if RequesterKey(addr, 7) != RequesterKey(addr, 7) {
		t.Fatal("RequesterKey not deterministic")
	}
	if RequesterKey(addr, 7) == RequesterKey(addr, 8) {
		t.Fatal("RequesterKey ignores the salt")
	}
}
