package obs

import (
	"encoding/json"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): for each metric a # HELP line (when help text
// is present), a # TYPE line, and its samples. Metrics appear in sorted
// name order and numbers use strconv's shortest round-trip formatting,
// so output for a fixed state is byte-stable. A nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b []byte
	for _, ins := range r.sorted() {
		if ins.help != "" {
			b = append(b, "# HELP "...)
			b = append(b, ins.name...)
			b = append(b, ' ')
			b = append(b, escapeHelp(ins.help)...)
			b = append(b, '\n')
		}
		b = append(b, "# TYPE "...)
		b = append(b, ins.name...)
		b = append(b, ' ')
		b = append(b, ins.kind.String()...)
		b = append(b, '\n')
		switch ins.kind {
		case kindCounter:
			b = append(b, ins.name...)
			b = append(b, ' ')
			b = strconv.AppendUint(b, ins.c.Value(), 10)
			b = append(b, '\n')
		case kindGauge:
			b = append(b, ins.name...)
			b = append(b, ' ')
			b = appendFloat(b, ins.g.Value())
			b = append(b, '\n')
		case kindHistogram:
			var cum uint64
			for i := range ins.h.counts {
				cum += ins.h.counts[i].Load()
				b = append(b, ins.name...)
				b = append(b, `_bucket{le="`...)
				if i == len(ins.h.upper) {
					b = append(b, "+Inf"...)
				} else {
					b = appendFloat(b, ins.h.upper[i])
				}
				b = append(b, `"} `...)
				b = strconv.AppendUint(b, cum, 10)
				b = append(b, '\n')
			}
			b = append(b, ins.name...)
			b = append(b, "_sum "...)
			b = appendFloat(b, ins.h.Sum())
			b = append(b, '\n')
			b = append(b, ins.name...)
			b = append(b, "_count "...)
			b = strconv.AppendUint(b, cum, 10)
			b = append(b, '\n')
		}
	}
	_, err := w.Write(b)
	return err
}

// appendFloat formats a float the way Prometheus clients do: shortest
// representation that round-trips, with +Inf/-Inf/NaN spelled out.
func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition spec.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// BucketSnapshot is one cumulative histogram bucket in a Snapshot.
type BucketSnapshot struct {
	// LE is the bucket's inclusive upper bound; +Inf is the last bucket.
	LE float64 `json:"le"`
	// Count is the cumulative number of observations <= LE.
	Count uint64 `json:"count"`
}

// MarshalJSON spells the +Inf bound as the string "+Inf" (JSON has no
// infinity literal).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}{le, b.Count})
}

// HistogramSnapshot is a histogram's state in a Snapshot.
type HistogramSnapshot struct {
	Count   uint64           `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every instrument's current value. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, ins := range r.sorted() {
		switch ins.kind {
		case kindCounter:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			s.Counters[ins.name] = ins.c.Value()
		case kindGauge:
			if s.Gauges == nil {
				s.Gauges = make(map[string]float64)
			}
			s.Gauges[ins.name] = ins.g.Value()
		case kindHistogram:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			hs := HistogramSnapshot{Sum: ins.h.Sum()}
			var cum uint64
			for i := range ins.h.counts {
				cum += ins.h.counts[i].Load()
				le := math.Inf(1)
				if i < len(ins.h.upper) {
					le = ins.h.upper[i]
				}
				hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: le, Count: cum})
			}
			hs.Count = cum
			s.Histograms[ins.name] = hs
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
