package core

import (
	"context"
	"testing"

	"repro/internal/policy"
)

func TestExtensionValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"adaptive window", func(p *Params) { p.AdaptiveParallel = true; p.AdaptiveParallelWindow = 0 }},
		{"adaptive cap", func(p *Params) { p.AdaptiveParallel = true; p.MaxParallelProbes = 0 }},
		{"ping bounds", func(p *Params) { p.AdaptivePing = true; p.AdaptivePingMin = 0 }},
		{"ping bounds inverted", func(p *Params) { p.AdaptivePing = true; p.AdaptivePingMin = 100; p.AdaptivePingMax = 10 }},
		{"ping thresholds", func(p *Params) { p.AdaptivePing = true; p.AdaptivePingLowLive = 0.99; p.AdaptivePingHighLive = 0.5 }},
		{"selfish percent", func(p *Params) { p.PercentSelfishPeers = -1 }},
		{"selfish plus bad", func(p *Params) { p.PercentSelfishPeers = 60; p.PercentBadPeers = 60 }},
		{"selfish fanout", func(p *Params) { p.PercentSelfishPeers = 10; p.SelfishParallelProbes = 0 }},
		{"poison threshold", func(p *Params) { p.PoisonDetection = true; p.PoisonThreshold = 0 }},
		{"poison samples", func(p *Params) { p.PoisonDetection = true; p.PoisonMinSamples = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if _, err := New(p); err == nil {
				t.Fatal("invalid extension params accepted")
			}
		})
	}
}

func TestExtensionsOffLeaveBaselineIdentical(t *testing.T) {
	// Enabling-then-disabling flags must not perturb anything: a run
	// with the extension fields at their defaults must equal a run of
	// the plain quickParams.
	base := quickParams()
	a := run(t, base)
	withDefaults := base
	withDefaults.AdaptiveParallelWindow = 99 // ignored while flag is off
	withDefaults.SelfishParallelProbes = 7   // ignored at 0%
	b := run(t, withDefaults)
	if a.ProbesTotal != b.ProbesTotal || a.Queries != b.Queries {
		t.Fatal("inert extension fields changed the simulation")
	}
}

func TestAdaptiveParallelImprovesResponseTime(t *testing.T) {
	base := quickParams()
	base.Seed = 21

	adaptive := base
	adaptive.AdaptiveParallel = true
	adaptive.AdaptiveParallelWindow = 2
	adaptive.MaxParallelProbes = 32

	plain := run(t, base)
	fast := run(t, adaptive)
	if fast.AvgResponseTime() >= plain.AvgResponseTime() {
		t.Fatalf("adaptive parallelism did not cut response time: %.2fs vs %.2fs",
			fast.AvgResponseTime(), plain.AvgResponseTime())
	}
	// Satisfaction must not degrade materially.
	if fast.UnsatisfactionWithAborted() > plain.UnsatisfactionWithAborted()+0.05 {
		t.Fatalf("adaptive parallelism hurt satisfaction: %.3f vs %.3f",
			fast.UnsatisfactionWithAborted(), plain.UnsatisfactionWithAborted())
	}
}

func TestAdaptivePingReducesDeadEntries(t *testing.T) {
	base := quickParams()
	base.LifespanMultiplier = 0.1 // heavy churn so caches rot
	base.PingInterval = 120       // deliberately too slow
	base.QueriesEnabled = false
	base.WarmupTime = 300
	base.MeasureTime = 1500
	base.Seed = 33

	adaptive := base
	adaptive.AdaptivePing = true
	adaptive.AdaptivePingMin = 5
	adaptive.AdaptivePingMax = 240

	slow := run(t, base)
	tuned := run(t, adaptive)
	if tuned.AvgLiveFraction <= slow.AvgLiveFraction {
		t.Fatalf("adaptive ping did not improve cache liveness: %.3f vs %.3f",
			tuned.AvgLiveFraction, slow.AvgLiveFraction)
	}
}

func TestSelfishPeersInflateLoad(t *testing.T) {
	base := quickParams()
	base.MaxProbesPerSecond = 20
	base.QueryRate = 0.03
	base.Seed = 55

	// The blast must exceed the serial protocol's expected per-query
	// cost (~70 probes here), otherwise over-probing never happens.
	selfish := base
	selfish.PercentSelfishPeers = 20
	selfish.SelfishParallelProbes = 500

	honest := run(t, base)
	greedy := run(t, selfish)
	if greedy.TotalLoad() <= honest.TotalLoad() {
		t.Fatalf("selfish peers did not inflate load: %d vs %d",
			greedy.TotalLoad(), honest.TotalLoad())
	}

	// Probe payments restore protocol-following behavior.
	paid := selfish
	paid.ProbePayments = true
	disciplined := run(t, paid)
	if disciplined.TotalLoad() >= greedy.TotalLoad() {
		t.Fatalf("payments did not curb load: %d vs %d",
			disciplined.TotalLoad(), greedy.TotalLoad())
	}
}

func TestPoisonDetectionBlacklistsAttackers(t *testing.T) {
	base := quickParams()
	base.MeasureTime = 600
	base.QueryProbe = policy.SelMFS
	base.QueryPong = policy.SelMFS
	base.CacheReplacement = policy.EvLFS
	base.PercentBadPeers = 20
	base.BadPong = BadPongDead
	base.Seed = 77

	undefended := run(t, base)

	defended := base
	defended.PoisonDetection = true
	defended.PoisonThreshold = 0.8
	defended.PoisonMinSamples = 8
	guarded := run(t, defended)

	if guarded.BlacklistEvents == 0 {
		t.Fatal("no attackers blacklisted")
	}
	if undefended.BlacklistEvents != 0 {
		t.Fatal("blacklisting happened with detection disabled")
	}
	if guarded.DeadProbesPerQuery() >= undefended.DeadProbesPerQuery() {
		t.Fatalf("detection did not reduce dead probes: %.1f vs %.1f",
			guarded.DeadProbesPerQuery(), undefended.DeadProbesPerQuery())
	}
}

func TestSelfishFractionPreservedUnderChurn(t *testing.T) {
	p := quickParams()
	p.PercentSelfishPeers = 25
	p.LifespanMultiplier = 0.1
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	selfish := 0
	for p := 0; p < e.ps.len(); p++ {
		if e.ps.selfish[p] {
			selfish++
		}
	}
	got := float64(selfish) / float64(e.ps.len())
	if got < 0.24 || got > 0.26 {
		t.Fatalf("selfish fraction drifted to %v", got)
	}
}
