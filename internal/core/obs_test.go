package core

// Observability must be read-only: attaching a metrics registry and an
// observer to a seeded run may not change a single byte of its Results
// or its CSV trace, and the counters it fills must agree with the
// Results the engine returns. Golden files under testdata/ pin the
// Prometheus exposition and the JSONL query trace of one fixed-seed
// run; regenerate them with `go test ./internal/core -run Golden -update`
// after an intentional schema change.

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// runInstrumented runs p with a CSV trace, a metrics registry, and an
// observer attached, returning the results, the CSV trace, the
// registry, and the observer event count.
func runInstrumented(t *testing.T, p Params, o obs.Observer) (*Results, string, *obs.Registry) {
	t.Helper()
	var trace strings.Builder
	p.Trace = &trace
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e.SetMetrics(obs.NewSimMetrics(reg))
	if o != nil {
		e.SetObserver(o)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res, trace.String(), reg
}

func TestObservabilityDoesNotPerturbRun(t *testing.T) {
	p := quickParams()

	bareRes, bareTrace := runWithTrace(t, p)

	var events int
	obsRes, obsTrace, reg := runInstrumented(t, p, obs.ObserverFunc(func(obs.Event) { events++ }))

	if got, want := marshalResults(t, obsRes), marshalResults(t, bareRes); got != want {
		t.Fatalf("attaching metrics+observer changed Results:\n%s\n%s", got, want)
	}
	if obsTrace != bareTrace {
		t.Fatal("attaching metrics+observer changed the CSV trace")
	}
	if events == 0 {
		t.Fatal("observer saw no events")
	}

	// The counters mirror Results exactly — a scrape and the returned
	// struct must never disagree.
	s := reg.Snapshot()
	mirror := []struct {
		metric string
		want   uint64
	}{
		{"guess_sim_queries_total", uint64(bareRes.Queries)},
		{"guess_sim_queries_satisfied_total", uint64(bareRes.Satisfied)},
		{"guess_sim_queries_unsatisfied_total", uint64(bareRes.Unsatisfied)},
		{"guess_sim_queries_aborted_total", uint64(bareRes.Aborted)},
		{"guess_sim_probes_total", uint64(bareRes.ProbesTotal)},
		{"guess_sim_probes_good_total", uint64(bareRes.GoodProbes)},
		{"guess_sim_probes_dead_total", uint64(bareRes.DeadProbes)},
		{"guess_sim_probes_refused_total", uint64(bareRes.RefusedProbes)},
		{"guess_sim_pings_total", uint64(bareRes.Pings)},
		{"guess_sim_pings_dead_total", uint64(bareRes.DeadPings)},
		{"guess_sim_births_total", uint64(bareRes.Births)},
		{"guess_sim_deaths_total", uint64(bareRes.Deaths)},
	}
	for _, m := range mirror {
		if got := s.Counters[m.metric]; got != m.want {
			t.Errorf("%s = %d, Results say %d", m.metric, got, m.want)
		}
	}
	if bareRes.Queries == 0 {
		t.Fatal("fixture produced no queries; the mirror check is vacuous")
	}
	h := s.Histograms["guess_sim_query_probes"]
	if h.Count != uint64(bareRes.Queries) {
		t.Errorf("query-probes histogram count = %d, want %d", h.Count, bareRes.Queries)
	}
	if got, want := s.Histograms["guess_sim_query_response_seconds"].Sum, bareRes.ResponseTimeSum; !closeTo(got, want) {
		t.Errorf("response-time histogram sum = %v, Results say %v", got, want)
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(1+b)
}

// goldenParams is a deliberately tiny fixed-seed run so the JSONL
// query trace stays reviewable in testdata/.
func goldenParams() Params {
	p := DefaultParams()
	p.NetworkSize = 50
	p.CacheSize = 10
	p.WarmupTime = 20
	p.MeasureTime = 30
	p.QueryRate = 0.004
	p.Seed = 42
	return p
}

func TestGoldenObservabilityOutputs(t *testing.T) {
	var jsonl strings.Builder
	tw := obs.NewTraceWriter(&jsonl).Mask(obs.QueryEventMask)

	e, err := New(goldenParams())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e.SetMetrics(obs.NewSimMetrics(reg))
	e.SetObserver(tw)
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}

	checkGolden(t, "golden_metrics.prom", prom.String())
	checkGolden(t, "golden_query_trace.jsonl", jsonl.String())
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("%s line %d:\ngot:  %q\nwant: %q\n(run with -update after intentional changes)",
					name, i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("%s length changed: %d vs %d lines (run with -update after intentional changes)",
			name, len(gotLines), len(wantLines))
	}
}

func TestRunContextCancellation(t *testing.T) {
	full := run(t, quickParams())
	if full.Interrupted {
		t.Fatal("uncancelled run reported Interrupted")
	}

	// Cancel from inside the run, halfway through the measurement
	// window, via an observer watching the virtual clock.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e, err := New(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	e.SetObserver(obs.ObserverFunc(func(ev obs.Event) {
		if ev.Time > 300 {
			cancel()
		}
	}))
	res, err := e.Run(ctx)
	if err != nil {
		t.Fatalf("cancelled run should return partial results and nil error, got %v", err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled run did not set Interrupted")
	}
	if res.Queries == 0 || res.Queries >= full.Queries {
		t.Fatalf("partial run counted %d queries, want in (0, %d)", res.Queries, full.Queries)
	}

	// A context cancelled before Run starts still returns cleanly.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	e2, err := New(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Run(done)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Interrupted {
		t.Fatal("pre-cancelled run did not set Interrupted")
	}
}
