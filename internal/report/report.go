// Package report renders experiment output: aligned ASCII tables, CSV,
// and simple ASCII line charts for series data. It keeps the
// experiment runners free of formatting concerns.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a rectangular result set with named columns.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates an empty table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Cells are formatted with %v; float64 values are
// printed with 3 decimal places and trailing zeros trimmed.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted rows; for tests.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

func formatCell(c any) string {
	switch v := c.(type) {
	case float64:
		return trimFloat(v)
	case float32:
		return trimFloat(float64(v))
	default:
		return fmt.Sprintf("%v", c)
	}
}

func trimFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// WriteCSV renders the table as CSV (RFC 4180 quoting for cells
// containing commas, quotes, or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
