package eventq

import (
	"math/rand"
	"testing"
)

// TestCalendarMatchesQueue drives the calendar queue and the reference
// heap through identical randomized push/pop scripts across several
// event-time regimes (dense ties, uniform, heavy-tailed spacing,
// monotonically advancing simulation time) and demands identical pop
// sequences — same times, same values, same tie order.
func TestCalendarMatchesQueue(t *testing.T) {
	regimes := map[string]func(*rand.Rand, float64) float64{
		"ties":    func(r *rand.Rand, now float64) float64 { return float64(r.Intn(8)) },
		"uniform": func(r *rand.Rand, now float64) float64 { return r.Float64() * 1000 },
		"heavy-tail": func(r *rand.Rand, now float64) float64 {
			if r.Intn(10) == 0 {
				return now + r.Float64()*10000
			}
			return now + r.Float64()
		},
		"advancing": func(r *rand.Rand, now float64) float64 { return now + r.Float64()*30 },
	}
	//lint:maporder-ok subtests are independent; execution order affects no result
	for name, nextTime := range regimes {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			var ref Queue[int]
			cal := NewCalendar[int]()
			now := 0.0
			live := 0
			for step := 0; step < 30000; step++ {
				if live == 0 || rng.Intn(3) != 0 {
					tm := nextTime(rng, now)
					ref.Push(tm, step)
					cal.Push(tm, step)
					live++
				} else {
					wt, wv, wok := ref.Pop()
					gt, gv, gok := cal.Pop()
					if wt != gt || wv != gv || wok != gok {
						t.Fatalf("step %d: calendar pop (%v,%v,%v) != heap pop (%v,%v,%v)",
							step, gt, gv, gok, wt, wv, wok)
					}
					now = wt
					live--
				}
				if cal.Len() != live {
					t.Fatalf("Len=%d, want %d", cal.Len(), live)
				}
			}
			for live > 0 {
				wt, wv, _ := ref.Pop()
				gt, gv, ok := cal.Pop()
				if !ok || wt != gt || wv != gv {
					t.Fatalf("drain: (%v,%v,%v) != (%v,%v,true)", gt, gv, ok, wt, wv)
				}
				live--
			}
			if _, _, ok := cal.Pop(); ok {
				t.Fatal("pop on drained calendar reported ok")
			}
		})
	}
}

func TestCalendarEmpty(t *testing.T) {
	c := NewCalendar[int]()
	if c.Len() != 0 {
		t.Fatalf("fresh calendar Len=%d", c.Len())
	}
	if _, _, ok := c.Pop(); ok {
		t.Fatal("Pop on empty calendar reported ok")
	}
}

// TestCalendarOutOfOrderPush pushes an event far in the past after the
// cursor has advanced; the calendar must still pop in global time
// order (the cursor rewinds rather than sweeping a full year past the
// latecomer).
func TestCalendarOutOfOrderPush(t *testing.T) {
	c := NewCalendar[int]()
	for i := 0; i < 64; i++ {
		c.Push(1000+float64(i), i)
	}
	if tm, v, _ := c.Pop(); tm != 1000 || v != 0 {
		t.Fatalf("first pop (%v, %d)", tm, v)
	}
	c.Push(1, -1) // far in the past relative to the cursor
	if tm, v, _ := c.Pop(); tm != 1 || v != -1 {
		t.Fatalf("latecomer not popped first: (%v, %d)", tm, v)
	}
	if tm, v, _ := c.Pop(); tm != 1001 || v != 1 {
		t.Fatalf("resume pop (%v, %d)", tm, v)
	}
}
