package core

import "repro/internal/cache"

// This file implements the paper's future-work proposals as opt-in
// extensions: adaptive probe parallelism (Section 6.2), adaptive ping
// intervals (Section 6.1), selfish peers and probe payments
// (Section 3.3), and pong-poisoning detection (Section 6.4). Every
// extension is inert unless enabled in Params, so the baseline
// protocol is bit-identical to the paper's. Helpers take slot indices
// into the engine's peerStore (see peerstore.go).

// queryParallelism returns the per-round probe fan-out a querying peer
// uses. A selfish peer ignores the protocol's serial discipline unless
// probe payments make every probe cost something.
func (e *Engine) queryParallelism(origin int) int {
	if e.ps.selfish[origin] && !e.p.ProbePayments {
		return e.p.SelfishParallelProbes
	}
	return e.p.ParallelProbes
}

// maybeGrowParallelism doubles a query's fan-out when it has gone
// AdaptiveParallelWindow seconds without a new result.
func (e *Engine) maybeGrowParallelism(q *query) {
	if !e.p.AdaptiveParallel {
		return
	}
	if e.now-q.lastProgress < e.p.AdaptiveParallelWindow {
		return
	}
	q.k *= 2
	if q.k > e.p.MaxParallelProbes {
		q.k = e.p.MaxParallelProbes
	}
	q.lastProgress = e.now
}

// recordPingOutcome feeds the adaptive-ping controller: after every
// few pings, a peer whose probes mostly hit dead addresses halves its
// interval, and one that saw no dead addresses at all relaxes it. The
// short window matters: peers live for minutes, so the controller must
// converge within a handful of pings to help at all.
func (e *Engine) recordPingOutcome(p int, dead bool) {
	if !e.p.AdaptivePing {
		return
	}
	e.ps.pingsInWindow[p]++
	if dead {
		e.ps.deadInWindow[p]++
	}
	const window = 5
	if e.ps.pingsInWindow[p] < window {
		return
	}
	deadFrac := float64(e.ps.deadInWindow[p]) / float64(e.ps.pingsInWindow[p])
	e.ps.pingsInWindow[p], e.ps.deadInWindow[p] = 0, 0
	switch {
	case deadFrac > 1-e.p.AdaptivePingLowLive:
		e.ps.pingInterval[p] /= 2
		if e.ps.pingInterval[p] < e.p.AdaptivePingMin {
			e.ps.pingInterval[p] = e.p.AdaptivePingMin
		}
	case deadFrac < 1-e.p.AdaptivePingHighLive:
		e.ps.pingInterval[p] *= 1.25
		if e.ps.pingInterval[p] > e.p.AdaptivePingMax {
			e.ps.pingInterval[p] = e.p.AdaptivePingMax
		}
	}
}

// pongSourceBlocked reports whether the peer in slot p has blacklisted
// source's pongs.
func (e *Engine) pongSourceBlocked(p int, source cache.PeerID) bool {
	bl := e.ps.blacklist[p]
	return bl != nil && bl[source]
}

// recordSupplied notes that source handed the peer in slot receiver a
// pointer to addr.
func (e *Engine) recordSupplied(receiver int, source, addr cache.PeerID) {
	if !e.p.PoisonDetection {
		return
	}
	if e.ps.provenance[receiver] == nil {
		e.allocPoisonState(receiver)
	}
	e.ps.provenance[receiver][addr] = source
	stats := e.ps.pongStats[receiver]
	rec := stats[source]
	rec.given++
	stats[source] = rec
}

// allocPoisonState lazily equips a slot with its poison-detection
// maps, recycling cleared maps from dead peers when reuse is on.
func (e *Engine) allocPoisonState(p int) {
	if n := len(e.freeProvenance); n > 0 && !e.noReuse {
		e.ps.provenance[p] = e.freeProvenance[n-1]
		e.freeProvenance[n-1] = nil
		e.freeProvenance = e.freeProvenance[:n-1]
	} else {
		e.ps.provenance[p] = make(map[cache.PeerID]cache.PeerID, 64)
	}
	if n := len(e.freePongStats); n > 0 && !e.noReuse {
		e.ps.pongStats[p] = e.freePongStats[n-1]
		e.freePongStats[n-1] = nil
		e.freePongStats = e.freePongStats[:n-1]
	} else {
		e.ps.pongStats[p] = make(map[cache.PeerID]supplierRecord, 16)
	}
	if n := len(e.freeBlacklist); n > 0 && !e.noReuse {
		e.ps.blacklist[p] = e.freeBlacklist[n-1]
		e.freeBlacklist[n-1] = nil
		e.freeBlacklist = e.freeBlacklist[:n-1]
	} else {
		e.ps.blacklist[p] = make(map[cache.PeerID]bool, 4)
	}
}

// blameDeadAddress charges the supplier of a dead address and convicts
// persistently poisonous suppliers: they are blacklisted, evicted, and
// their future pongs ignored.
func (e *Engine) blameDeadAddress(victim int, deadAddr cache.PeerID) {
	if !e.p.PoisonDetection {
		return
	}
	prov := e.ps.provenance[victim]
	if prov == nil {
		return
	}
	source, ok := prov[deadAddr]
	if !ok {
		return
	}
	delete(prov, deadAddr)
	stats := e.ps.pongStats[victim]
	rec, ok := stats[source]
	if !ok {
		return
	}
	rec.dead++
	stats[source] = rec
	if e.ps.blacklist[victim][source] {
		return
	}
	if rec.given >= e.p.PoisonMinSamples &&
		float64(rec.dead)/float64(rec.given) >= e.p.PoisonThreshold {
		e.ps.blacklist[victim][source] = true
		e.ps.link[victim].Remove(source)
		e.res.BlacklistEvents++
		if e.met != nil {
			e.met.Blacklists.Inc()
		}
	}
}
