package cluster

// Aggregate snapshots: crash recovery for the shed-state service,
// mirroring node/snapshot.go's atomic-write pattern.
//
// File format (all integers big-endian), see node/PROTOCOL.md:
//
//	magic "GCSS" (4) | version u8 | epoch i64 | winStart i64 |
//	writtenUnixNano i64 | cur counts (4×64 u32) | prev counts
//	(4×64 u32) | seqCount u16 | seqs[seqCount] |
//	crc32-IEEE u32 over all preceding bytes
//
// seq entry: nameLen u8 | name | nonce u64 | lastSeq u64
//
// The salt is not stored: it is derived from the epoch (saltOf), so
// the pair cannot desynchronize. The windows and the per-node
// sequence records live in one checksummed file written atomically,
// so a restored service holds either both a delta's counts and the
// record that it was applied, or neither — re-sent deltas never
// double-count across a crash.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/node"
)

const (
	aggSnapMagic   = "GCSS"
	aggSnapVersion = 1
	// aggSnapMaxSeqs bounds the decodable sequence table; far above
	// any plausible cluster size, low enough that a hostile count
	// cannot force a large allocation.
	aggSnapMaxSeqs = 1 << 12
)

// errAggSnapshot reports an unusable aggregate snapshot file.
var errAggSnapshot = errors.New("cluster: bad aggregate snapshot")

// aggSnapshot is the decoded snapshot contents.
type aggSnapshot struct {
	Epoch     int64
	WinStart  int64
	WrittenAt time.Time
	Cur, Prev sketch
	Seqs      map[string]pushSeq
}

// encodeAggSnapshot serializes a snapshot with the checksum trailer.
func encodeAggSnapshot(snap aggSnapshot) ([]byte, error) {
	if len(snap.Seqs) > aggSnapMaxSeqs {
		return nil, fmt.Errorf("%w: %d seq records exceed %d", errAggSnapshot, len(snap.Seqs), aggSnapMaxSeqs)
	}
	buf := make([]byte, 0, 4+1+8*3+2*node.FairLevels*node.FairBuckets*4+2+len(snap.Seqs)*(1+maxNodeName+16)+4)
	buf = append(buf, aggSnapMagic...)
	buf = append(buf, aggSnapVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(snap.Epoch))
	buf = binary.BigEndian.AppendUint64(buf, uint64(snap.WinStart))
	buf = binary.BigEndian.AppendUint64(buf, uint64(snap.WrittenAt.UnixNano()))
	for _, w := range []*sketch{&snap.Cur, &snap.Prev} {
		for l := 0; l < node.FairLevels; l++ {
			for b := 0; b < node.FairBuckets; b++ {
				buf = binary.BigEndian.AppendUint32(buf, w[l][b])
			}
		}
	}
	names := make([]string, 0, len(snap.Seqs))
	for name := range snap.Seqs {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic bytes for a given state
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(names)))
	for _, name := range names {
		if name == "" || len(name) > maxNodeName {
			return nil, fmt.Errorf("%w: node name %d bytes", errAggSnapshot, len(name))
		}
		rec := snap.Seqs[name]
		buf = append(buf, byte(len(name)))
		buf = append(buf, name...)
		buf = binary.BigEndian.AppendUint64(buf, rec.Nonce)
		buf = binary.BigEndian.AppendUint64(buf, rec.LastSeq)
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// decodeAggSnapshot parses and checksums a snapshot. Every
// malformation returns errAggSnapshot (wrapped with detail); it never
// panics.
func decodeAggSnapshot(b []byte) (aggSnapshot, error) {
	const fixed = 4 + 1 + 8*3 + 2*node.FairLevels*node.FairBuckets*4 + 2
	if len(b) < fixed+4 {
		return aggSnapshot{}, fmt.Errorf("%w: %d bytes < header", errAggSnapshot, len(b))
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return aggSnapshot{}, fmt.Errorf("%w: checksum mismatch", errAggSnapshot)
	}
	if string(body[:4]) != aggSnapMagic {
		return aggSnapshot{}, fmt.Errorf("%w: bad magic", errAggSnapshot)
	}
	if body[4] != aggSnapVersion {
		return aggSnapshot{}, fmt.Errorf("%w: unsupported version %d", errAggSnapshot, body[4])
	}
	rest := body[5:]
	snap := aggSnapshot{Seqs: make(map[string]pushSeq)}
	snap.Epoch = int64(binary.BigEndian.Uint64(rest[0:8]))
	snap.WinStart = int64(binary.BigEndian.Uint64(rest[8:16]))
	snap.WrittenAt = time.Unix(0, int64(binary.BigEndian.Uint64(rest[16:24])))
	rest = rest[24:]
	if snap.Epoch <= 0 {
		return aggSnapshot{}, fmt.Errorf("%w: epoch %d", errAggSnapshot, snap.Epoch)
	}
	for _, w := range []*sketch{&snap.Cur, &snap.Prev} {
		for l := 0; l < node.FairLevels; l++ {
			for b := 0; b < node.FairBuckets; b++ {
				w[l][b] = binary.BigEndian.Uint32(rest[:4])
				rest = rest[4:]
			}
		}
	}
	count := int(binary.BigEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	if count > aggSnapMaxSeqs {
		return aggSnapshot{}, fmt.Errorf("%w: %d seq records exceed %d", errAggSnapshot, count, aggSnapMaxSeqs)
	}
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return aggSnapshot{}, fmt.Errorf("%w: truncated seq record %d", errAggSnapshot, i)
		}
		nameLen := int(rest[0])
		rest = rest[1:]
		if nameLen == 0 || len(rest) < nameLen+16 {
			return aggSnapshot{}, fmt.Errorf("%w: truncated seq record %d", errAggSnapshot, i)
		}
		name := string(rest[:nameLen])
		rest = rest[nameLen:]
		if _, dup := snap.Seqs[name]; dup {
			return aggSnapshot{}, fmt.Errorf("%w: duplicate seq record %q", errAggSnapshot, name)
		}
		snap.Seqs[name] = pushSeq{
			Nonce:   binary.BigEndian.Uint64(rest[0:8]),
			LastSeq: binary.BigEndian.Uint64(rest[8:16]),
		}
		rest = rest[16:]
	}
	if len(rest) != 0 {
		return aggSnapshot{}, fmt.Errorf("%w: %d trailing bytes", errAggSnapshot, len(rest))
	}
	return snap, nil
}

// writeAggFile writes data atomically: a temp file in the same
// directory, fsynced, then renamed over path (the node/snapshot.go
// pattern — a crash mid-write leaves the old snapshot or none, never a
// torn one).
func writeAggFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeSnapshot persists the current aggregate to SnapshotPath.
func (s *Service) writeSnapshot() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	s.mu.Lock()
	snap := aggSnapshot{
		Epoch:     s.epoch,
		WinStart:  s.winStart,
		WrittenAt: s.cfg.now(),
		Cur:       s.cur,
		Prev:      s.prev,
		Seqs:      make(map[string]pushSeq, len(s.seqs)),
	}
	for name, rec := range s.seqs {
		snap.Seqs[name] = rec
	}
	s.mu.Unlock()
	data, err := encodeAggSnapshot(snap)
	if err == nil {
		err = writeAggFile(s.cfg.SnapshotPath, data)
	}
	if err != nil {
		s.met.SnapshotErrors.Inc()
		s.logf("cluster service: snapshot: %v", err)
		return err
	}
	s.met.SnapshotWrites.Inc()
	return nil
}

// restoreSnapshot loads SnapshotPath, reporting whether a usable state
// was installed. A missing file is a normal cold start; an
// undecodable one is counted, logged, and ignored — the caller
// cold-starts with a fresh epoch, never a panic. A snapshot older
// than one window restores the epoch and sequence records but not the
// stale demand windows, and re-enters warming.
func (s *Service) restoreSnapshot(now time.Time) bool {
	if s.cfg.SnapshotPath == "" {
		return false
	}
	data, err := os.ReadFile(s.cfg.SnapshotPath)
	if err != nil {
		if !os.IsNotExist(err) {
			s.met.SnapshotRejected.Inc()
			s.logf("cluster service: snapshot restore: %v", err)
		}
		return false
	}
	snap, err := decodeAggSnapshot(data)
	if err != nil {
		s.met.SnapshotRejected.Inc()
		s.logf("cluster service: snapshot restore: %v", err)
		return false
	}
	s.epoch = snap.Epoch
	s.salt = saltOf(snap.Epoch)
	s.seqs = snap.Seqs
	age := now.Sub(snap.WrittenAt)
	if age >= 0 && age <= s.cfg.Window {
		// Warm restore: the windows are at most one window old, so the
		// merged aggregate still reads as recent demand.
		s.winStart = snap.WinStart
		s.cur, s.prev = snap.Cur, snap.Prev
		s.warmUntil = time.Time{}
	} else {
		// The epoch survives (clients keep their sketches) but the
		// demand is stale; warm up before serving an aggregate.
		s.winStart = now.UnixNano() / int64(s.cfg.Window)
		s.warmUntil = now.Add(s.cfg.Window)
		s.met.Warming.Set(1)
	}
	s.logf("cluster service: restored epoch %d (snapshot %v old)", s.epoch, age.Round(time.Millisecond))
	return true
}
