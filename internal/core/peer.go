package core

import (
	"math"

	"repro/internal/cache"
)

// Per-peer protocol behavior over the struct-of-arrays store: load
// accounting and probe back-off. Each helper takes a slot index into
// the engine's peerStore (see peerstore.go for the slot discipline).

// supplierRecord tallies the quality of one neighbor's pong entries.
// It is stored by value in the pongStats maps, so tracking a supplier
// costs no extra heap object.
type supplierRecord struct {
	given int
	dead  int
}

// addLoad records an incoming probe at time now for the peer in slot p
// and reports whether the peer is overloaded (the probe must be
// refused). maxPerSec <= 0 means unlimited capacity.
func (e *Engine) addLoad(p int, now float64, maxPerSec int) bool {
	if maxPerSec <= 0 {
		return false
	}
	sec := math.Floor(now)
	if sec != e.ps.winStart[p] {
		e.ps.winStart[p] = sec
		e.ps.winCount[p] = 0
	}
	e.ps.winCount[p]++
	return int(e.ps.winCount[p]) > maxPerSec
}

// suppressedNow reports whether the peer in slot p is backing off from
// target at now.
func (e *Engine) suppressedNow(p int, target cache.PeerID, now float64) bool {
	m := e.ps.suppressed[p]
	if m == nil {
		return false
	}
	until, ok := m[target]
	if !ok {
		return false
	}
	if now >= until {
		delete(m, target)
		return false
	}
	return true
}

// suppress records a back-off from target until the given time for the
// peer in slot p.
func (e *Engine) suppress(p int, target cache.PeerID, until float64) {
	m := e.ps.suppressed[p]
	if m == nil {
		if n := len(e.freeSuppressed); n > 0 && !e.noReuse {
			m = e.freeSuppressed[n-1]
			e.freeSuppressed[n-1] = nil
			e.freeSuppressed = e.freeSuppressed[:n-1]
		} else {
			m = make(map[cache.PeerID]float64, 4)
		}
		e.ps.suppressed[p] = m
	}
	m[target] = until
}
