// Live network: run real GUESS nodes speaking the UDP wire protocol on
// loopback — not the simulator. Twenty nodes bootstrap off one
// well-known peer, gossip addresses via ping/pong, and then a node
// searches the network for a rare file with serial GUESS probes.
//
//	go run ./examples/livenetwork
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	guess "repro"
	"repro/node"
)

func main() {
	const peers = 20

	// Node 0 is the bootstrap peer (a tiny "pong server"). The last
	// node shares the rare file everyone else lacks.
	nodes := make([]*node.Node, 0, peers)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	for i := 0; i < peers; i++ {
		files := []string{
			fmt.Sprintf("top40 hit %03d.mp3", i),
			fmt.Sprintf("holiday photos %03d.zip", i),
		}
		if i == peers-1 {
			files = append(files, "obscure demo tape 1987.flac")
		}
		n, err := node.Listen("127.0.0.1:0", node.Config{
			Files:        files,
			CacheSize:    16,
			PingInterval: 100 * time.Millisecond, // fast for the demo
			IntroProb:    0.5,
			QueryProbe:   guess.MFS, // try file-rich peers first
			Seed:         uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, n)
	}

	// Bootstrap: everyone learns node 0 and vice versa (the "random
	// friend" the paper assumes every newcomer has).
	for i := 1; i < peers; i++ {
		nodes[i].AddPeer(nodes[0].Addr(), uint32(nodes[0].NumFiles()))
		nodes[0].AddPeer(nodes[i].Addr(), uint32(nodes[i].NumFiles()))
	}

	fmt.Printf("started %d GUESS nodes on loopback; gossiping for a moment...\n", peers)
	time.Sleep(800 * time.Millisecond)

	querier := nodes[1]
	fmt.Printf("node 1 cache after gossip: %d entries\n", querier.CacheLen())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for _, keyword := range []string{"top40", "obscure demo"} {
		start := time.Now()
		hits, stats, err := querier.Query(ctx, keyword, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquery %q:\n", keyword)
		fmt.Printf("  probes: %d (good %d, dead %d, refused %d) in %v\n",
			stats.Probes, stats.Good, stats.Dead, stats.Refused,
			time.Since(start).Round(time.Millisecond))
		for _, h := range hits {
			fmt.Printf("  hit: %q from %v\n", h.Name, h.From)
		}
		if len(hits) == 0 {
			fmt.Println("  no results")
		}
	}

	fmt.Println(`
The popular query ("top40") is satisfied by the first probe or two;
the rare one walks further through the query cache the pongs build up
— the flexible extent that makes GUESS efficient, over real sockets.`)
}
