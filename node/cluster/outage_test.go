package cluster

// The outage matrix for the sync client: service killed mid-run,
// partitioned away, slowed past the client deadline, and restarted
// from a corrupt snapshot. In every case the client must degrade to
// local-only shedding (explicitly, observably) and re-converge on
// recovery without double-counting demand.

import (
	"net"
	"net/netip"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/node"
	"repro/node/memnet"
)

// fakeTarget records the client's calls against the SyncTarget
// surface, standing in for a node.
type fakeTarget struct {
	mu       sync.Mutex
	unsent   node.AdmissionDelta
	have     bool
	agg      node.AdmissionAggregate
	aggOK    bool
	salt     uint64
	saltSets int
}

// addDemand stages count demand for key, to be drained by the client.
func (f *fakeTarget) addDemand(key uint64, count uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx := node.FairIndices(key)
	for l := 0; l < node.FairLevels; l++ {
		f.unsent.Counts[l][idx[l]] += count
	}
	f.have = true
}

func (f *fakeTarget) TakeAdmissionDelta() (node.AdmissionDelta, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.unsent, f.have
	f.unsent = node.AdmissionDelta{}
	f.have = false
	return d, ok
}

func (f *fakeTarget) SetClusterAggregate(a node.AdmissionAggregate) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.agg, f.aggOK = a, true
}

func (f *fakeTarget) ClearClusterAggregate() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.aggOK = false
}

func (f *fakeTarget) SetAdmissionSalt(s uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.salt = s
	f.saltSets++
}

func (f *fakeTarget) hasAgg() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.aggOK
}

func (f *fakeTarget) saltNow() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.salt
}

// clientHarness wires a fake target and a sync client to a service
// address that can be swapped (service restarts move the listener).
type clientHarness struct {
	target *fakeTarget
	client *SyncClient
	reg    *obs.Registry
	addr   atomic.Value // netip.AddrPort
}

func startClient(t *testing.T, nw *memnet.Network, addr netip.AddrPort) *clientHarness {
	t.Helper()
	h := &clientHarness{target: &fakeTarget{}, reg: obs.NewRegistry()}
	h.addr.Store(addr)
	c, err := NewSyncClient(h.target, ClientConfig{
		Name: "n0",
		Dial: func() (net.Conn, error) {
			return nw.DialStream(h.addr.Load().(netip.AddrPort))
		},
		Interval:   15 * time.Millisecond,
		Timeout:    40 * time.Millisecond,
		StaleAfter: 80 * time.Millisecond,
		Nonce:      99,
		Seed:       7,
		Metrics:    h.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	h.client = c
	return h
}

// counter reads one cumulative metric from the client registry.
func (h *clientHarness) counter(name string) uint64 {
	return h.reg.Snapshot().Counters[name]
}

// realService starts a real-clock service (client tests run in real
// time; a long window keeps demand from rolling out mid-test).
func realService(t *testing.T, nw *memnet.Network, cfg ServiceConfig) (*Service, netip.AddrPort) {
	t.Helper()
	ln := nw.ListenStream()
	s, err := Serve(ln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, ln.AddrPort()
}

// TestClientConvergesAndAdoptsSalt: a fresh client adopts the
// service's epoch/salt and installs the aggregate once warming ends.
func TestClientConvergesAndAdoptsSalt(t *testing.T) {
	nw := memnet.New(20)
	svc, addr := realService(t, nw, ServiceConfig{Window: 30 * time.Millisecond})
	h := startClient(t, nw, addr)

	waitFor(t, 2*time.Second, h.target.hasAgg)
	if got := h.target.saltNow(); got != svc.Salt() {
		t.Fatalf("client salt %d != service salt %d", got, svc.Salt())
	}
	st := h.client.Status()
	if st.Fallback || st.Epoch != svc.Epoch() || st.LastPull.IsZero() {
		t.Fatalf("status after convergence: %+v", st)
	}
}

// TestClientPushesDemandOnce: demand staged at the node reaches the
// service exactly once, across sync rounds and a service restart with
// a warm snapshot — the no-double-count acceptance check.
func TestClientPushesDemandOnce(t *testing.T) {
	nw := memnet.New(21)
	path := t.TempDir() + "/agg.snap"
	// A long window so demand does not roll out of the aggregate while
	// the test runs; warming after the warm restore is skipped because
	// the snapshot is young.
	svc, addr := realService(t, nw, ServiceConfig{Window: time.Hour, SnapshotPath: path})
	// Cold-start warming lasts one window (an hour): end it manually by
	// treating the service as warm — cold start at t0 means warmUntil
	// t0+1h, which would keep clients in fallback all test. Use a
	// second service started from the first's snapshot instead.
	svc.Close()
	svc2, addr2 := realService(t, nw, ServiceConfig{Window: time.Hour, SnapshotPath: path})
	_ = addr
	if svc2.Warming() {
		t.Fatal("warm restore should not be warming")
	}
	h := startClient(t, nw, addr2)
	waitFor(t, 2*time.Second, h.target.hasAgg)

	key := uint64(0xd00d)
	h.target.addDemand(key, 10)
	waitFor(t, 2*time.Second, func() bool { return svc2.Estimate(key) == 10 })

	// Let several more sync rounds run: the estimate must stay exactly
	// 10 (no replays, no re-pushes).
	time.Sleep(100 * time.Millisecond)
	if got := svc2.Estimate(key); got != 10 {
		t.Fatalf("estimate drifted to %d, want exactly 10", got)
	}

	// Kill the service mid-run; stage more demand during the outage.
	svc2.Close()
	h.target.addDemand(key, 5)
	waitFor(t, 2*time.Second, func() bool { return h.client.Status().Fallback })

	// Restart from the snapshot (warm: young file, same epoch). The
	// client re-converges and pushes the outage demand exactly once on
	// top of the restored 10.
	svc3, addr3 := realService(t, nw, ServiceConfig{Window: time.Hour, SnapshotPath: path})
	h.addr.Store(addr3)
	waitFor(t, 2*time.Second, func() bool { return !h.client.Status().Fallback })
	waitFor(t, 2*time.Second, func() bool { return svc3.Estimate(key) == 15 })
	time.Sleep(100 * time.Millisecond)
	if got := svc3.Estimate(key); got != 15 {
		t.Fatalf("estimate after recovery = %d, want exactly 15 (no double count)", got)
	}
	if h.counter("guess_node_cluster_fallbacks_total") == 0 {
		t.Error("outage did not increment the fallback counter")
	}
	if h.counter("guess_node_cluster_reconnects_total") == 0 {
		t.Error("recovery did not increment the reconnect counter")
	}
}

// TestClientPartitionFallback: a memnet partition (service isolated)
// drives the client into fallback past StaleAfter; healing recovers
// the cluster view.
func TestClientPartitionFallback(t *testing.T) {
	nw := memnet.New(22)
	_, addr := realService(t, nw, ServiceConfig{Window: 30 * time.Millisecond})
	h := startClient(t, nw, addr)
	waitFor(t, 2*time.Second, h.target.hasAgg)

	nw.Isolate(addr)
	waitFor(t, 2*time.Second, func() bool { return h.client.Status().Fallback })
	if h.target.hasAgg() {
		t.Fatal("cluster view not cleared on fallback")
	}
	if h.counter("guess_node_cluster_sync_errors_total") == 0 {
		t.Error("partition produced no sync errors")
	}

	nw.Heal(addr)
	waitFor(t, 2*time.Second, func() bool { return !h.client.Status().Fallback })
	if !h.target.hasAgg() {
		t.Fatal("cluster view not reinstalled after heal")
	}
}

// TestClientSlowServiceFallback: a service alive but slower than the
// client's deadline is indistinguishable from a dead one — the client
// must fall back rather than stall its sync loop.
func TestClientSlowServiceFallback(t *testing.T) {
	nw := memnet.New(23)
	_, addr := realService(t, nw, ServiceConfig{Window: 30 * time.Millisecond})
	h := startClient(t, nw, addr)
	waitFor(t, 2*time.Second, h.target.hasAgg)

	// 60ms one-way beats the 40ms round deadline: every round times
	// out.
	nw.SetLatency(60 * time.Millisecond)
	waitFor(t, 2*time.Second, func() bool { return h.client.Status().Fallback })
	if h.counter("guess_node_cluster_sync_errors_total") == 0 {
		t.Error("slow service produced no sync errors")
	}

	nw.SetLatency(0)
	waitFor(t, 2*time.Second, func() bool { return !h.client.Status().Fallback })
}

// TestClientStaysInFallbackDuringWarming: a service restarted from a
// corrupt snapshot cold-starts with a fresh epoch and a warming
// aggregate; clients must adopt the new epoch but keep shedding on
// local state until warming ends.
func TestClientStaysInFallbackDuringWarming(t *testing.T) {
	nw := memnet.New(24)
	path := t.TempDir() + "/agg.snap"
	svc, addr := realService(t, nw, ServiceConfig{Window: 30 * time.Millisecond, SnapshotPath: path})
	h := startClient(t, nw, addr)
	waitFor(t, 2*time.Second, h.target.hasAgg)
	oldSalt := h.target.saltNow()
	oldEpoch := svc.Epoch()

	svc.Close()
	waitFor(t, 2*time.Second, func() bool { return h.client.Status().Fallback })

	// Corrupt the snapshot; the restarted service must cold-start with
	// a long warming window (long Window => long warming) and a fresh
	// epoch.
	corruptFile(t, path)
	svc2, addr2 := realService(t, nw, ServiceConfig{Window: time.Hour, SnapshotPath: path})
	if svc2.Epoch() <= oldEpoch {
		t.Fatalf("cold start epoch %d did not supersede %d", svc2.Epoch(), oldEpoch)
	}
	if !svc2.Warming() {
		t.Fatal("corrupt-snapshot restart must cold-start warming")
	}
	h.addr.Store(addr2)

	// The client adopts the rotated salt but must stay in fallback: the
	// warming aggregate is not trustworthy.
	waitFor(t, 2*time.Second, func() bool { return h.target.saltNow() == svc2.Salt() })
	if h.target.saltNow() == oldSalt {
		t.Fatal("client kept the dead salt")
	}
	time.Sleep(100 * time.Millisecond) // several sync rounds against the warming service
	if st := h.client.Status(); !st.Fallback {
		t.Fatal("client trusted a warming aggregate")
	}
	if h.target.hasAgg() {
		t.Fatal("warming aggregate was installed")
	}
	if h.counter("guess_node_cluster_epoch_rotations_total") < 2 {
		t.Error("epoch adoption not counted") // initial + post-corruption
	}
}

// TestClientAdoptsRotation: a scheduled salt rotation mid-run is
// adopted without operator action, and the client re-converges after
// the post-rotation warming window.
func TestClientAdoptsRotation(t *testing.T) {
	nw := memnet.New(25)
	svc, addr := realService(t, nw, ServiceConfig{Window: 30 * time.Millisecond})
	h := startClient(t, nw, addr)
	waitFor(t, 2*time.Second, h.target.hasAgg)
	oldSalt := h.target.saltNow()

	svc.Rotate()
	waitFor(t, 2*time.Second, func() bool { return h.target.saltNow() == svc.Salt() })
	if h.target.saltNow() == oldSalt {
		t.Fatal("rotation did not change the adopted salt")
	}
	// After warming passes the cluster view comes back under the new
	// salt.
	waitFor(t, 2*time.Second, func() bool { return !h.client.Status().Fallback })
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty snapshot file")
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
