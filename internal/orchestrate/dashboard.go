package orchestrate

import (
	"fmt"
	"io"
	"sync"
)

// Dashboard renders live sweep progress. It is purely event-driven —
// the coordinator pushes a Stats snapshot on every state change, and
// the dashboard redraws only when the rendered line changes. No
// timers, no goroutines, no clock: what the dashboard shows is a pure
// function of coordinator state, so tests can assert on its output
// without racing a refresh loop.
//
// In rewrite mode (interactive terminals) the status line redraws in
// place with a carriage return; otherwise each change appends a line,
// which is what a CI log wants.
type Dashboard struct {
	w       io.Writer
	rewrite bool

	mu   sync.Mutex
	last string
	drew bool
}

// NewDashboard returns a dashboard writing to w. rewrite selects
// in-place line redraws (terminal) over append-only lines (logs).
func NewDashboard(w io.Writer, rewrite bool) *Dashboard {
	return &Dashboard{w: w, rewrite: rewrite}
}

// update renders a stats change. Safe on a nil dashboard (no-op), so
// the coordinator can publish unconditionally.
func (d *Dashboard) update(s Stats) {
	if d == nil {
		return
	}
	line := fmt.Sprintf("sweep: units %d/%d done (%d cached, %d deduped) workers %d",
		s.UnitsDone, s.UnitsTotal, s.CacheHits, s.Deduped, s.Workers)
	if s.Reassigned > 0 {
		line += fmt.Sprintf(" reassigned %d", s.Reassigned)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if line == d.last {
		return
	}
	d.last = line
	d.drew = true
	if d.rewrite {
		fmt.Fprintf(d.w, "\r\x1b[2K%s", line)
		return
	}
	fmt.Fprintln(d.w, line)
}

// Finish terminates the status line after rewrite-mode updates so
// subsequent output starts on a fresh line.
func (d *Dashboard) Finish() {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.rewrite && d.drew {
		fmt.Fprintln(d.w)
		d.drew = false
	}
}
