// Package wirebound implements the guess-lint check that every
// length-prefixed decode bounds the decoded length before allocating.
// The node's wire surfaces (internal/wire datagrams, internal/frame
// stream frames, node/snapshot and the state-sync/orchestrate codecs)
// all read a count or byte length off the network and then make() a
// slice of that size; an unchecked length lets a single hostile
// datagram demand gigabytes. The safe shape is always
//
//	n := binary.BigEndian.Uint32(head)
//	if n > max { return ErrTooLarge }
//	buf := make([]byte, n)
//
// and this analyzer flags make() calls whose size derives from a
// wire-decoded integer with no comparison between decode and
// allocation.
//
// Taint is tracked linearly per function: integers produced by
// encoding/binary decodes, byte-slice indexing, or calls to functions
// the interprocedural summaries mark ReturnsWireInt (e.g. the
// internal/wire reader methods) are tainted; appearing in a comparison
// (an if condition, or a min() clamp) clears the taint.
package wirebound

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Suppress is the //lint: directive that silences a finding.
const Suppress = "wirebound-ok"

// Analyzer flags allocations sized by an unbounded wire-decoded length.
var Analyzer = &analysis.Analyzer{
	Name: "wirebound",
	Doc: "flag make() calls sized by a length decoded from the wire " +
		"without an intervening bound check (unbounded allocation DoS)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsConcurrent(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc tracks wire-length taint through one function body in
// source order (a pre-order walk approximates straight-line flow, which
// is the shape every decoder here has).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	tainted := make(map[types.Object]bool)

	// exprTainted reports whether e contains a wire-decoded integer: a
	// tainted local, a decode call, or a byte-slice index.
	exprTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj := info.ObjectOf(n); obj != nil && tainted[obj] {
					found = true
				}
			case *ast.CallExpr:
				if analysis.IsWireDecodeCall(pass.Prog, info, n) {
					found = true
				}
			case *ast.IndexExpr:
				if tv, ok := info.Types[n.X]; ok && isByteSlice(tv.Type) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// untaintComparisons clears taint from every local that appears
	// under a comparison operator in e: the code just bounded it.
	untaintComparisons := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch bin.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				for _, side := range []ast.Expr{bin.X, bin.Y} {
					ast.Inspect(side, func(inner ast.Node) bool {
						if id, ok := inner.(*ast.Ident); ok {
							if obj := info.ObjectOf(id); obj != nil {
								delete(tainted, obj)
							}
						}
						return true
					})
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Taint flows right to left; a min() clamp or a bounded
			// expression on the right clears it.
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				// n, err := decode(...): the value lands in Lhs[0].
				if setTaint(info, n.Lhs[0], rhsTaint(info, exprTainted, n.Rhs[0]), tainted) {
					return true
				}
			}
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				setTaint(info, n.Lhs[i], rhsTaint(info, exprTainted, rhs), tainted)
			}
		case *ast.IfStmt:
			untaintComparisons(n.Cond)
		case *ast.ForStmt:
			if n.Cond != nil {
				untaintComparisons(n.Cond)
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				untaintComparisons(n.Tag)
			}
			// Each case clause comparing the tainted value bounds it.
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						ast.Inspect(e, func(inner ast.Node) bool {
							if id, ok := inner.(*ast.Ident); ok {
								if obj := info.ObjectOf(id); obj != nil {
									delete(tainted, obj)
								}
							}
							return true
						})
					}
					if n.Tag != nil && len(cc.List) > 0 {
						ast.Inspect(n.Tag, func(inner ast.Node) bool {
							if id, ok := inner.(*ast.Ident); ok {
								if obj := info.ObjectOf(id); obj != nil {
									delete(tainted, obj)
								}
							}
							return true
						})
					}
				}
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			for _, size := range n.Args[1:] {
				if !exprTainted(size) {
					continue
				}
				if pass.Suppressed(n.Pos(), Suppress) {
					continue
				}
				pass.Reportf(n.Pos(),
					"allocation sized by a wire-decoded length with no bound check; compare it against a maximum before make(), or //lint:%s with a reason",
					Suppress)
			}
		}
		return true
	})
}

// rhsTaint evaluates whether an assignment source carries wire taint,
// treating a builtin min()/max() clamp as a bound.
func rhsTaint(info *types.Info, exprTainted func(ast.Expr) bool, rhs ast.Expr) bool {
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "min" || id.Name == "max") {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return false
			}
		}
	}
	return exprTainted(rhs)
}

// setTaint applies or clears taint on an assignment target, returning
// whether the target was an identifier it could track.
func setTaint(info *types.Info, lhs ast.Expr, taint bool, tainted map[types.Object]bool) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	if taint {
		tainted[obj] = true
	} else {
		delete(tainted, obj)
	}
	return true
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	basic, ok := elem.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}
