// Package det poses as repro/internal/core to exercise the maporder
// analyzer: map iteration must not leak order into observable state.
package det

import (
	"sort"
)

// leakOrder appends map entries to output in iteration order: the
// classic golden-breaking bug.
func leakOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order can reach observable state`
		out = append(out, k+"!")
	}
	return out
}

// lastWins keeps whichever key iterates last: order-dependent.
func lastWins(m map[string]int) string {
	var winner string
	for k := range m { // want `map iteration order can reach observable state`
		winner = k
	}
	return winner
}

// sortedKeys is the blessed idiom: collect, sort, then iterate.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedValuesReverse collects values and sorts through sort.Sort.
func sortedValuesReverse(m map[int]int) []int {
	sizes := make([]int, 0, len(m))
	for _, c := range m {
		sizes = append(sizes, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// accumulators commute across iterations: sums, counts, max, flags.
func accumulators(m map[string]float64) (float64, int, float64, bool) {
	var sum float64
	var n int
	var max float64
	var sawNegative bool
	for _, v := range m {
		sum += v
		n++
		if v > max {
			max = v
		}
		if v < 0 {
			sawNegative = true
		}
	}
	return sum, n, max, sawNegative
}

// clear deletes every entry; deletion commutes.
func clear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// annotated carries a reasoned suppression for a case the analyzer
// cannot prove (at most one entry matches).
func annotated(m map[string]int, want int) string {
	//lint:maporder-ok values are unique, so at most one entry matches
	for k, v := range m {
		if v == want {
			return k
		}
	}
	return ""
}

// sliceOrderIsFine ranges over a slice, which iterates in index order.
func sliceOrderIsFine(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v*2)
	}
	return out
}
