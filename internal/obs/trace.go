package obs

import (
	"io"
	"strconv"
	"sync"
)

// EventKind classifies a trace event.
type EventKind uint8

const (
	// EvQueryIssued marks a query's start at its originating peer.
	EvQueryIssued EventKind = iota + 1
	// EvProbeRound marks the start of one probe round of a query;
	// Round is the 1-based round index and Probes the query's probe
	// count entering the round.
	EvProbeRound
	// EvProbe is one probe: Target is the probed peer, Outcome is
	// good/dead/refused, Results the results this probe returned.
	EvProbe
	// EvPong is a pong accepted by Peer from Target; Entries counts the
	// pong's entries.
	EvPong
	// EvQueryDone ends a query: Outcome is satisfied, exhausted, or
	// aborted; Probes and Results are the query totals.
	EvQueryDone
	// EvPeerBirth and EvPeerDeath are churn events for Peer.
	EvPeerBirth
	EvPeerDeath
	// EvPing is one maintenance ping from Peer to Target with Outcome
	// good or dead.
	EvPing
)

var eventNames = [...]string{
	EvQueryIssued: "query_issued",
	EvProbeRound:  "probe_round",
	EvProbe:       "probe",
	EvPong:        "pong",
	EvQueryDone:   "query_done",
	EvPeerBirth:   "peer_birth",
	EvPeerDeath:   "peer_death",
	EvPing:        "ping",
}

// String returns the event name used in the JSONL schema.
func (k EventKind) String() string {
	if int(k) < len(eventNames) && eventNames[k] != "" {
		return eventNames[k]
	}
	return "unknown"
}

// Outcome is the result classification carried by probe, ping, and
// query-done events.
type Outcome uint8

const (
	OutcomeNone Outcome = iota
	// OutcomeGood: the target answered (probe/ping).
	OutcomeGood
	// OutcomeDead: the target was dead or timed out.
	OutcomeDead
	// OutcomeRefused: the target refused the probe (overloaded).
	OutcomeRefused
	// OutcomeSatisfied: the query reached its desired results.
	OutcomeSatisfied
	// OutcomeExhausted: the query ran out of candidates (or hit its
	// probe cap) unsatisfied.
	OutcomeExhausted
	// OutcomeAborted: the querying peer died, or the run ended or was
	// interrupted with the query in flight.
	OutcomeAborted
)

var outcomeNames = [...]string{
	OutcomeNone:      "",
	OutcomeGood:      "good",
	OutcomeDead:      "dead",
	OutcomeRefused:   "refused",
	OutcomeSatisfied: "satisfied",
	OutcomeExhausted: "exhausted",
	OutcomeAborted:   "aborted",
}

// String returns the outcome name used in the JSONL schema.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// Event is one engine lifecycle or query trace event. It is a plain
// value: emitting one costs no allocation, and fields irrelevant to the
// Kind are zero.
type Event struct {
	// Kind classifies the event; see the EventKind constants.
	Kind EventKind
	// Time is seconds on the emitter's clock: virtual simulation time
	// for engine events, seconds since node start for live-node events.
	Time float64
	// Query identifies the query (1-based per run; 0 for non-query
	// events).
	Query uint64
	// Peer is the subject peer (query origin, pinger, or the peer born
	// or dying).
	Peer uint64
	// Target is the secondary peer: probe or ping target, pong supplier.
	Target uint64
	// Outcome classifies probe/ping/query-done events.
	Outcome Outcome
	// Round is the 1-based probe round (EvProbeRound).
	Round int
	// Probes is the query's cumulative probe count.
	Probes int
	// Results is the results returned (EvProbe) or accumulated
	// (EvQueryDone).
	Results int
	// Entries is the pong entry count (EvPong).
	Entries int
}

// Observer receives engine lifecycle and trace events. Implementations
// attached to parallel sweeps must be safe for concurrent use;
// TraceWriter is. Observe must not retain references into the event
// (it is a value, so this is automatic) and should return quickly —
// it runs inline on the simulation loop.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe calls f.
func (f ObserverFunc) Observe(ev Event) { f(ev) }

// Tee fans events out to several observers in order.
func Tee(observers ...Observer) Observer {
	return ObserverFunc(func(ev Event) {
		for _, o := range observers {
			o.Observe(ev)
		}
	})
}

// QueryEventMask selects the per-query trace kinds (issued, rounds,
// probes, pongs, done) — the -trace-queries dump.
const QueryEventMask = 1<<EvQueryIssued | 1<<EvProbeRound | 1<<EvProbe |
	1<<EvPong | 1<<EvQueryDone

// AllEventMask selects every event kind, including churn and pings.
const AllEventMask = QueryEventMask | 1<<EvPeerBirth | 1<<EvPeerDeath | 1<<EvPing

// TraceWriter is an Observer that appends events to w as JSON Lines,
// one object per event (see README.md, "Observability", for the
// schema). It is safe for concurrent use: lines are built under a
// mutex into a reusable buffer and written whole, so events from
// parallel runs never interleave mid-line.
type TraceWriter struct {
	mu   sync.Mutex
	w    io.Writer
	buf  []byte
	mask uint32
	err  error
}

// NewTraceWriter returns a TraceWriter emitting every event kind.
// Restrict it with Mask.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: w, mask: AllEventMask}
}

// Mask limits the writer to kinds whose bit (1 << kind) is set in mask
// (e.g. QueryEventMask) and returns the writer.
func (t *TraceWriter) Mask(mask uint32) *TraceWriter {
	t.mu.Lock()
	t.mask = mask
	t.mu.Unlock()
	return t
}

// Err returns the first write error, if any. Writes stop after an
// error.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Observe writes ev as one JSONL line.
func (t *TraceWriter) Observe(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.mask&(1<<ev.Kind) == 0 {
		return
	}
	b := t.buf[:0]
	b = append(b, `{"ev":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","t":`...)
	b = strconv.AppendFloat(b, ev.Time, 'f', 3, 64)
	if ev.Query != 0 {
		b = append(b, `,"query":`...)
		b = strconv.AppendUint(b, ev.Query, 10)
	}
	b = append(b, `,"peer":`...)
	b = strconv.AppendUint(b, ev.Peer, 10)
	if ev.Target != 0 {
		b = append(b, `,"target":`...)
		b = strconv.AppendUint(b, ev.Target, 10)
	}
	if ev.Outcome != OutcomeNone {
		b = append(b, `,"outcome":"`...)
		b = append(b, ev.Outcome.String()...)
		b = append(b, '"')
	}
	if ev.Kind == EvProbeRound {
		b = append(b, `,"round":`...)
		b = strconv.AppendInt(b, int64(ev.Round), 10)
	}
	if ev.Kind == EvProbeRound || ev.Kind == EvQueryDone {
		b = append(b, `,"probes":`...)
		b = strconv.AppendInt(b, int64(ev.Probes), 10)
	}
	if ev.Kind == EvProbe || ev.Kind == EvQueryDone {
		b = append(b, `,"results":`...)
		b = strconv.AppendInt(b, int64(ev.Results), 10)
	}
	if ev.Kind == EvPong {
		b = append(b, `,"entries":`...)
		b = strconv.AppendInt(b, int64(ev.Entries), 10)
	}
	b = append(b, "}\n"...)
	t.buf = b
	_, t.err = t.w.Write(b)
}
