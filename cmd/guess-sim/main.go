// Command guess-sim runs a single GUESS simulation and prints its
// metrics. All paper parameters (Tables 1 and 2) are exposed as flags.
// Interrupting a run (SIGINT) stops it cleanly and reports the partial
// measurements.
//
// Example:
//
//	guess-sim -network 1000 -cache 100 -query-pong MFS -cache-repl LFS
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	guess "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "guess-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	p := guess.DefaultConfig()
	fs := flag.NewFlagSet("guess-sim", flag.ContinueOnError)

	configPath := fs.String("config", "", "JSON file of parameters to load before applying flags")
	dumpConfig := fs.Bool("dump-config", false, "print the effective configuration as JSON and exit")
	tracePath := fs.String("trace", "", "write a CSV time series of the run to this file")
	traceQueries := fs.String("trace-queries", "", "write a JSONL per-query event trace to this file")
	metricsOut := fs.String("metrics-out", "", "write Prometheus-text metrics after the run to this file (\"-\" = stdout)")

	fs.IntVar(&p.NetworkSize, "network", p.NetworkSize, "number of live peers")
	fs.IntVar(&p.NetworkSize, "peers", p.NetworkSize, "alias for -network (million-peer runs read better)")
	fs.IntVar(&p.Shards, "shards", p.Shards, "event-queue shards / scan workers (results are identical at any value)")
	fs.IntVar(&p.NumDesiredResults, "results", p.NumDesiredResults, "results needed to satisfy a query")
	fs.Float64Var(&p.LifespanMultiplier, "lifespan", p.LifespanMultiplier, "lifespan multiplier")
	fs.Float64Var(&p.QueryRate, "query-rate", p.QueryRate, "queries per user per second")
	fs.IntVar(&p.MaxProbesPerSecond, "capacity", p.MaxProbesPerSecond, "max probes/second a peer handles (0 = unlimited)")
	fs.Float64Var(&p.PercentBadPeers, "bad", p.PercentBadPeers, "percentage of malicious peers")
	badPong := fs.String("bad-pong", "Dead", "malicious pong behavior: Dead, Bad, or Good")

	queryProbe := fs.String("query-probe", p.QueryProbe.String(), "QueryProbe policy (Random, MRU, LRU, MFS, MR, MR*)")
	queryPong := fs.String("query-pong", p.QueryPong.String(), "QueryPong policy")
	pingProbe := fs.String("ping-probe", p.PingProbe.String(), "PingProbe policy")
	pingPong := fs.String("ping-pong", p.PingPong.String(), "PingPong policy")
	cacheRepl := fs.String("cache-repl", p.CacheReplacement.String(), "CacheReplacement policy (Random, LRU, MRU, LFS, LR, LR*)")

	fs.Float64Var(&p.PingInterval, "ping-interval", p.PingInterval, "seconds between pings")
	fs.IntVar(&p.CacheSize, "cache", p.CacheSize, "link cache capacity")
	fs.BoolVar(&p.ResetNumResults, "reset-numres", p.ResetNumResults, "zero NumRes of pong-learned entries")
	fs.BoolVar(&p.DoBackoff, "backoff", p.DoBackoff, "back off from overloaded peers instead of evicting")
	fs.Float64Var(&p.BackoffPeriod, "backoff-period", p.BackoffPeriod, "backoff seconds")
	fs.IntVar(&p.PongSize, "pong-size", p.PongSize, "addresses per pong")
	fs.Float64Var(&p.IntroProb, "intro-prob", p.IntroProb, "introduction probability")
	fs.IntVar(&p.CacheSeedSize, "seed-size", p.CacheSeedSize, "initial cache seed entries (0 = network/100)")

	fs.Float64Var(&p.ProbeSpacing, "probe-spacing", p.ProbeSpacing, "seconds between probe rounds")
	fs.IntVar(&p.ParallelProbes, "parallel", p.ParallelProbes, "probes per round (parallel walks)")
	fs.IntVar(&p.MaxProbesPerQuery, "max-probes", p.MaxProbesPerQuery, "probe cap per query (0 = exhaustive)")
	queries := fs.Bool("queries", true, "enable query traffic")

	fs.Uint64Var(&p.Seed, "seed", p.Seed, "random seed")
	fs.Float64Var(&p.WarmupTime, "warmup", p.WarmupTime, "warmup seconds (simulated)")
	fs.Float64Var(&p.MeasureTime, "measure", p.MeasureTime, "measurement seconds (simulated)")
	fs.BoolVar(&p.SampleConnectivity, "connectivity", p.SampleConnectivity, "sample overlay connectivity")

	// Two-pass parse so -config loads first and explicit flags still
	// override it.
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		p = guess.DefaultConfig()
		if err := json.Unmarshal(data, &p); err != nil {
			return fmt.Errorf("parsing %s: %w", *configPath, err)
		}
		if err := fs.Parse(args); err != nil {
			return err
		}
	}

	// String-valued flags must not clobber a loaded config with their
	// defaults: apply them only when explicitly set (or when no config
	// was given).
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	apply := func(name string) bool { return *configPath == "" || explicit[name] }

	var err error
	if apply("query-probe") {
		if p.QueryProbe, err = guess.ParseSelection(*queryProbe); err != nil {
			return err
		}
	}
	if apply("query-pong") {
		if p.QueryPong, err = guess.ParseSelection(*queryPong); err != nil {
			return err
		}
	}
	if apply("ping-probe") {
		if p.PingProbe, err = guess.ParseSelection(*pingProbe); err != nil {
			return err
		}
	}
	if apply("ping-pong") {
		if p.PingPong, err = guess.ParseSelection(*pingPong); err != nil {
			return err
		}
	}
	if apply("cache-repl") {
		if p.CacheReplacement, err = guess.ParseEviction(*cacheRepl); err != nil {
			return err
		}
	}
	if apply("bad-pong") {
		if p.BadPong, err = guess.ParseBadPongBehavior(*badPong); err != nil {
			return err
		}
	}
	if apply("queries") {
		p.QueriesEnabled = *queries
	}

	if *dumpConfig {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(p)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		p.Trace = f
	}

	var opts []guess.Option
	reg := guess.NewMetricsRegistry()
	if *metricsOut != "" {
		opts = append(opts, guess.WithMetrics(reg))
	}
	var qtrace *guess.TraceWriter
	if *traceQueries != "" {
		f, err := os.Create(*traceQueries)
		if err != nil {
			return err
		}
		defer f.Close()
		qtrace = guess.NewTraceWriter(f).Mask(guess.TraceQueryEvents)
		opts = append(opts, guess.WithObserver(qtrace))
	}

	// SIGINT cancels the run; guess.Run then returns the partial
	// measurements with Interrupted set.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	res, err := guess.Run(ctx, p, opts...)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if qtrace != nil {
		if err := qtrace.Err(); err != nil {
			return fmt.Errorf("writing query trace: %w", err)
		}
	}
	if *metricsOut != "" {
		out := os.Stdout
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := reg.WritePrometheus(out); err != nil {
			return err
		}
	}

	fmt.Printf("GUESS simulation: %d peers, cache %d, policies QP=%s QPong=%s PP=%s PPong=%s CR=%s\n",
		p.NetworkSize, p.CacheSize, p.QueryProbe, p.QueryPong, p.PingProbe, p.PingPong, p.CacheReplacement)
	fmt.Printf("simulated %.0fs (warmup %.0fs) in %v", p.MeasureTime, p.WarmupTime, elapsed.Round(time.Millisecond))
	if shards := p.Shards; shards > 1 {
		fmt.Printf(" with %d shards", shards)
	}
	if rss := peakRSSBytes(); rss > 0 {
		fmt.Printf(", peak RSS %.1f MiB", float64(rss)/(1<<20))
	}
	fmt.Println()
	if res.Interrupted {
		fmt.Printf("interrupted: partial results up to the cancellation point\n")
	}
	fmt.Println()

	if p.QueriesEnabled {
		fmt.Printf("queries:            %d completed (%d satisfied, %d unsatisfied, %d aborted)\n",
			res.Queries, res.Satisfied, res.Unsatisfied, res.Aborted)
		fmt.Printf("unsatisfaction:     %.3f\n", res.Unsatisfaction())
		fmt.Printf("probes/query:       %.1f (good %.1f, dead %.1f, refused %.1f)\n",
			res.ProbesPerQuery(), res.GoodProbesPerQuery(), res.DeadProbesPerQuery(), res.RefusedProbesPerQuery())
		fmt.Printf("avg response time:  %.2fs\n", res.AvgResponseTime())
	}
	fmt.Printf("pings:              %d (%d to dead peers)\n", res.Pings, res.DeadPings)
	fmt.Printf("cache entries:      %.1f held, %.1f live (fraction live %.3f)\n",
		res.AvgCacheEntries, res.AvgLiveEntries, res.AvgLiveFraction)
	if p.PercentBadPeers > 0 {
		fmt.Printf("good cache entries: %.1f\n", res.AvgGoodEntries)
	}
	if p.SampleConnectivity {
		fmt.Printf("largest WCC:        %.1f avg, %d final (of %d peers)\n",
			res.AvgLargestWCC, res.FinalLargestWCC, p.NetworkSize)
	}
	fmt.Printf("churn:              %d births, %d deaths\n", res.Births, res.Deaths)
	return nil
}
