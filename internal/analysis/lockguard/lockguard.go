// Package lockguard implements the guess-lint check that fields of a
// mutex-bearing struct are accessed with the lock held. The guard
// relation is inferred, not declared: a field whose writes mostly
// happen under the struct's mutex (at least two locked writes, and
// strictly more locked than unlocked ones) is taken to be
// lock-protected, and every access that does not hold the lock — reads
// included — is flagged. This catches the classic drift where a new
// method reads n.peers without n.mu because "it's just a read", and the
// escape where a helper method touches guarded fields and is then
// called from a path that never locked.
//
// Lock state is tracked linearly per function, keyed by the base object
// (`s.mu.Lock()` and an embedded `s.Lock()` both mark s locked; a
// deferred unlock keeps the lock held to the end). Two mitigations keep
// inference honest: accesses through a local freshly built from a
// composite literal or new() are exempt (constructors legitimately
// write fields before the value is shared), and a method that never
// locks but is only ever called with the lock held inherits that
// context (the xxxLocked convention) instead of polluting the tallies.
// Function literals start with no lock held — a closure may run on any
// goroutine long after its creation site's critical section ended.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Suppress is the //lint: directive that silences a finding.
const Suppress = "lockguard-ok"

// Analyzer flags accesses to majority-lock-guarded struct fields made
// without holding the lock.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "infer which mutex guards which struct fields from majority " +
		"access sites and flag accesses that do not hold the lock",
	Run: run,
}

// access is one read or write of a candidate field.
type access struct {
	field  *types.Var
	label  string // "Type.field" for diagnostics
	pos    token.Pos
	write  bool
	held   bool
	exempt bool        // through a freshly constructed local
	fn     *types.Func // enclosing declared function; nil in literals
}

func run(pass *analysis.Pass) error {
	if !analysis.IsConcurrent(pass.Path) {
		return nil
	}
	cands := candidateFields(pass.Pkg)
	if len(cands) == 0 {
		return nil
	}

	var accesses []access
	locks := make(map[*types.Func]bool)      // function performs its own locking
	ctxAny := make(map[*types.Func]bool)     // method observed called at least once
	ctxAllHeld := make(map[*types.Func]bool) // ...and every observed call held the lock
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkFunc(pass, fd, cands, &accesses, locks, ctxAny, ctxAllHeld)
		}
	}

	// A method that never locks but whose every observed call site held
	// the lock runs in a locked context (the fooLocked convention).
	inherited := func(fn *types.Func) bool {
		return fn != nil && !locks[fn] && ctxAny[fn] && ctxAllHeld[fn]
	}

	type tally struct{ heldW, unheldW int }
	tallies := make(map[*types.Var]*tally)
	for _, a := range accesses {
		if a.exempt || !a.write {
			continue
		}
		t := tallies[a.field]
		if t == nil {
			t = &tally{}
			tallies[a.field] = t
		}
		if a.held || inherited(a.fn) {
			t.heldW++
		} else {
			t.unheldW++
		}
	}

	for _, a := range accesses {
		if a.exempt || a.held || inherited(a.fn) {
			continue
		}
		t := tallies[a.field]
		if t == nil || t.heldW < 2 || t.heldW <= t.unheldW {
			continue // no locked-write majority: not an inferred guard
		}
		if pass.Suppressed(a.pos, Suppress) {
			continue
		}
		verb := "read"
		if a.write {
			verb = "written"
		}
		pass.Reportf(a.pos,
			"field %s is %s without the lock that guards it (%d locked vs %d unlocked writes elsewhere); hold the mutex or //lint:%s with a reason",
			a.label, verb, t.heldW, t.unheldW, Suppress)
	}
	return nil
}

// candidateFields collects the guardable fields of every package-level
// struct that carries a mutex: plain data siblings, excluding types
// that synchronize themselves (channels, sync.*, sync/atomic.*).
func candidateFields(pkg *types.Package) map[*types.Var]string {
	out := make(map[*types.Var]string)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		hasMutex := false
		for i := range st.NumFields() {
			if isMutexType(st.Field(i).Type()) {
				hasMutex = true
				break
			}
		}
		if !hasMutex {
			continue
		}
		for i := range st.NumFields() {
			f := st.Field(i)
			if isMutexType(f.Type()) || isSelfSynced(f.Type()) {
				continue
			}
			out[f] = name + "." + f.Name()
		}
	}
	return out
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}

// isSelfSynced reports field types that are safe to touch without the
// struct's mutex: channels (the send/receive is the synchronization)
// and the sync / sync/atomic types that bring their own.
func isSelfSynced(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

// walkFunc records candidate-field accesses, lock operations, and
// same-package method-call contexts for one declared function, tracking
// lock state linearly (pre-order traversal approximates source order,
// which is the shape of every critical section in this repo).
func walkFunc(pass *analysis.Pass, fd *ast.FuncDecl, cands map[*types.Var]string,
	accesses *[]access, locks, ctxAny, ctxAllHeld map[*types.Func]bool) {
	info := pass.TypesInfo
	fnObj, _ := info.Defs[fd.Name].(*types.Func)

	var visit func(body ast.Node, fn *types.Func, held, exempt map[types.Object]bool)
	visit = func(body ast.Node, fn *types.Func, held, exempt map[types.Object]bool) {
		writes := make(map[ast.Expr]bool)
		deferred := make(map[*ast.CallExpr]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// A literal may run on another goroutine at any later
				// time: no lock state or constructor exemption carries in.
				visit(n.Body, nil, make(map[types.Object]bool), make(map[types.Object]bool))
				return false
			case *ast.BlockStmt:
				markExitUnlocks(info, n.List, deferred)
			case *ast.CaseClause:
				markExitUnlocks(info, n.Body, deferred)
			case *ast.CommClause:
				markExitUnlocks(info, n.Body, deferred)
			case *ast.DeferStmt:
				if lockOp(info, n.Call) == "unlock" {
					deferred[n.Call] = true // held to end of function
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					lhs = ast.Unparen(lhs)
					writes[lhs] = true
					if n.Tok == token.DEFINE && i < len(n.Rhs) && isFreshAlloc(info, ast.Unparen(n.Rhs[i])) {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil {
								exempt[obj] = true
							}
						}
					}
				}
			case *ast.IncDecStmt:
				writes[ast.Unparen(n.X)] = true
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					writes[ast.Unparen(n.X)] = true // address escape: treat as write
				}
			case *ast.CallExpr:
				switch lockOp(info, n) {
				case "lock":
					if obj := callReceiverBase(info, n); obj != nil {
						held[obj] = true
						if fn != nil {
							locks[fn] = true
						}
					}
					return true
				case "unlock":
					if !deferred[n] {
						if obj := callReceiverBase(info, n); obj != nil {
							delete(held, obj)
						}
					}
					return true
				}
				if callee := analysis.CalleeOf(info, n); callee != nil && callee.Pkg() == pass.Pkg {
					if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
						if obj := callReceiverBase(info, n); obj != nil {
							h := held[obj] || exempt[obj]
							if _, seen := ctxAllHeld[callee]; !seen {
								ctxAllHeld[callee] = true
							}
							ctxAny[callee] = true
							if !h {
								ctxAllHeld[callee] = false
							}
						}
					}
				}
			case *ast.SelectorExpr:
				field, ok := info.Uses[n.Sel].(*types.Var)
				if !ok {
					return true
				}
				label, isCand := cands[field]
				if !isCand {
					return true
				}
				base := baseIdent(n.X)
				if base == nil {
					return true
				}
				obj := info.ObjectOf(base)
				if obj == nil {
					return true
				}
				*accesses = append(*accesses, access{
					field:  field,
					label:  label,
					pos:    n.Pos(),
					write:  writes[n],
					held:   held[obj],
					exempt: exempt[obj],
					fn:     fn,
				})
			}
			return true
		})
	}
	visit(fd.Body, fnObj, make(map[types.Object]bool), make(map[types.Object]bool))
}

// markExitUnlocks marks unlock calls whose next statement leaves the
// enclosing scope (`mu.Unlock(); return err` in an early-exit branch).
// Control flow never reaches the code after such a branch with the lock
// released, so the linear tracker must not clear the held state — that
// is exactly the shape that made processPush-style handlers look
// unlocked after their error branches.
func markExitUnlocks(info *types.Info, list []ast.Stmt, deferred map[*ast.CallExpr]bool) {
	for i, stmt := range list {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || lockOp(info, call) != "unlock" {
			continue
		}
		if i+1 < len(list) {
			switch next := list[i+1].(type) {
			case *ast.ReturnStmt:
				deferred[call] = true
			case *ast.BranchStmt:
				if next.Tok == token.BREAK || next.Tok == token.CONTINUE || next.Tok == token.GOTO {
					deferred[call] = true
				}
			}
		}
	}
}

// lockOp classifies a call as a mutex acquire ("lock"), release
// ("unlock"), or neither ("").
func lockOp(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return "lock"
	case "Unlock", "RUnlock":
		return "unlock"
	}
	return ""
}

// callReceiverBase resolves the root identifier's object of a method
// call's receiver chain: s in s.mu.Lock() and in s.flushLocked().
func callReceiverBase(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	base := baseIdent(sel.X)
	if base == nil {
		return nil
	}
	return info.ObjectOf(base)
}

// baseIdent walks a selector chain to its root identifier, or nil if
// the chain passes through anything else (an index, a call).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isFreshAlloc reports expressions that build a brand-new value — a
// composite literal, &composite, or new(T) — whose fields no other
// goroutine can see yet.
func isFreshAlloc(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			_, isBuiltin := info.Uses[id].(*types.Builtin)
			return isBuiltin
		}
	}
	return false
}
