// Package memnet provides an in-memory packet network implementing
// net.PacketConn, for testing live GUESS nodes without real sockets.
// It supports configurable packet loss and delivery latency, making
// protocol robustness (dead-peer detection, probe timeouts, busy
// refusals) testable deterministically and without binding ports.
package memnet

import (
	"fmt"
	"net"
	"net/netip"
	"os"
	"sync"
	"time"

	"repro/internal/simrng"
)

// Network is a switchboard connecting in-memory endpoints. Create with
// New, then Listen endpoints on it.
type Network struct {
	mu        sync.Mutex
	endpoints map[netip.AddrPort]*Conn
	nextPort  uint16
	rng       *simrng.RNG

	// loss is the probability a packet is silently dropped.
	loss float64
	// latency delays every delivery.
	latency time.Duration
}

// New creates an empty network. seed drives loss decisions.
func New(seed uint64) *Network {
	return &Network{
		endpoints: make(map[netip.AddrPort]*Conn),
		nextPort:  10000,
		rng:       simrng.New(seed),
	}
}

// SetLoss sets the packet drop probability (0 = reliable).
func (n *Network) SetLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loss = p
}

// SetLatency sets a fixed one-way delivery delay.
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

// Listen creates an endpoint with a fresh address on the network.
func (n *Network) Listen() *Conn {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr := netip.AddrPortFrom(netip.MustParseAddr("10.99.0.1"), n.nextPort)
	n.nextPort++
	c := &Conn{
		net:   n,
		addr:  addr,
		queue: make(chan packet, 256),
		done:  make(chan struct{}),
	}
	n.endpoints[addr] = c
	return c
}

// Partition removes an endpoint from the network without closing it:
// packets to it vanish and packets from it go nowhere, simulating a
// peer behind a dead link.
func (n *Network) Partition(addr netip.AddrPort) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, addr)
}

// deliver routes a packet, applying loss and latency.
func (n *Network) deliver(from, to netip.AddrPort, data []byte) {
	n.mu.Lock()
	dst, ok := n.endpoints[to]
	drop := n.loss > 0 && n.rng.Bool(n.loss)
	latency := n.latency
	n.mu.Unlock()
	if !ok || drop {
		return
	}
	cp := append([]byte(nil), data...)
	send := func() {
		select {
		case dst.queue <- packet{from: from, data: cp}:
		case <-dst.done:
		default: // queue full: drop, like a real NIC
		}
	}
	if latency > 0 {
		time.AfterFunc(latency, send)
		return
	}
	send()
}

type packet struct {
	from netip.AddrPort
	data []byte
}

// Conn is one endpoint; it implements net.PacketConn.
type Conn struct {
	net  *Network
	addr netip.AddrPort

	queue chan packet

	closeOnce sync.Once
	done      chan struct{}

	mu           sync.Mutex
	readDeadline time.Time
}

var _ net.PacketConn = (*Conn)(nil)

// ReadFrom implements net.PacketConn.
func (c *Conn) ReadFrom(p []byte) (int, net.Addr, error) {
	var timeout <-chan time.Time
	c.mu.Lock()
	if !c.readDeadline.IsZero() {
		d := time.Until(c.readDeadline)
		if d <= 0 {
			c.mu.Unlock()
			return 0, nil, os.ErrDeadlineExceeded
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	c.mu.Unlock()
	select {
	case <-c.done:
		return 0, nil, net.ErrClosed
	case <-timeout:
		return 0, nil, os.ErrDeadlineExceeded
	case pkt := <-c.queue:
		n := copy(p, pkt.data)
		return n, net.UDPAddrFromAddrPort(pkt.from), nil
	}
}

// WriteTo implements net.PacketConn.
func (c *Conn) WriteTo(p []byte, addr net.Addr) (int, error) {
	select {
	case <-c.done:
		return 0, net.ErrClosed
	default:
	}
	to, err := toAddrPort(addr)
	if err != nil {
		return 0, err
	}
	c.net.deliver(c.addr, to, p)
	return len(p), nil
}

// Close implements net.PacketConn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.net.Partition(c.addr)
	})
	return nil
}

// LocalAddr implements net.PacketConn.
func (c *Conn) LocalAddr() net.Addr { return net.UDPAddrFromAddrPort(c.addr) }

// SetDeadline implements net.PacketConn (read side only; writes never
// block).
func (c *Conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readDeadline = t
	return nil
}

// SetWriteDeadline implements net.PacketConn; writes are instantaneous.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

func toAddrPort(addr net.Addr) (netip.AddrPort, error) {
	switch a := addr.(type) {
	case *net.UDPAddr:
		return a.AddrPort(), nil
	default:
		ap, err := netip.ParseAddrPort(addr.String())
		if err != nil {
			return netip.AddrPort{}, fmt.Errorf("memnet: bad address %v: %w", addr, err)
		}
		return ap, nil
	}
}
