package eventq

import "math"

// Calendar is a calendar-queue variant of the event queue (R. Brown,
// CACM 1988): pending events are spread over nb "day" buckets of a
// fixed width, and Pop sweeps the calendar from the current day
// forward. With a well-chosen width, both Push and Pop touch O(1)
// events, versus the heap's O(log n) sift — the classic trade-off is
// that the calendar's constant depends on how uniform the event-time
// distribution is, while the heap is distribution-oblivious.
//
// Determinism matches Queue exactly: every push receives a
// monotonically increasing sequence number, buckets are kept sorted by
// (time, seq), and TestCalendarMatchesQueue locks the pop order to the
// heap's. BenchmarkCalendarVsHeap compares the two under the
// simulator's steady-state access pattern; the engine keeps the heap
// (sharded, see Sharded) because the simulator's mix of dense
// short-horizon probe events and sparse long-horizon deaths spans four
// orders of magnitude in event spacing, which is the calendar's worst
// case, but the structure is kept here as the measured alternative.
//
// The zero value is not ready for use; call NewCalendar. Calendar is
// not safe for concurrent use.
type Calendar[T any] struct {
	buckets [][]entry[T] // each sorted ascending by (time, seq)
	width   float64
	size    int
	seq     uint64

	cur    int     // the bucket Pop sweeps next
	curTop float64 // end of cur's current day window
}

// minCalendarBuckets bounds shrinking; a tiny calendar degenerates
// into an unsorted list with extra steps.
const minCalendarBuckets = 4

// NewCalendar returns an empty calendar queue. The bucket count and
// day width adapt to the live event population as it grows and
// shrinks, so no sizing hints are needed.
func NewCalendar[T any]() *Calendar[T] {
	return &Calendar[T]{
		buckets: make([][]entry[T], minCalendarBuckets),
		width:   1,
	}
}

// Len reports the number of pending events.
func (c *Calendar[T]) Len() int { return c.size }

// Push schedules v at the given virtual time. Events pushed with equal
// times are dequeued in push order.
func (c *Calendar[T]) Push(time float64, v T) {
	c.seq++
	c.insert(entry[T]{time: time, seq: c.seq, v: v})
	c.size++
	if c.size > 2*len(c.buckets) {
		c.resize(2 * len(c.buckets))
	}
}

// Pop removes and returns the earliest event. ok is false when the
// queue is empty.
func (c *Calendar[T]) Pop() (time float64, v T, ok bool) {
	if c.size == 0 {
		var zero T
		return 0, zero, false
	}
	// Sweep the calendar from the current day forward: an event in the
	// cursor bucket due before the day boundary is the global minimum.
	for range c.buckets {
		b := c.buckets[c.cur]
		if len(b) > 0 && b[0].time < c.curTop {
			return c.popFrom(c.cur)
		}
		c.cur = (c.cur + 1) % len(c.buckets)
		c.curTop += c.width
	}
	// A full year passed without a hit (the population is sparse
	// relative to the calendar): fall back to a direct minimum scan and
	// jump the cursor to that day.
	best := -1
	var bestTime float64
	var bestSeq uint64
	for i, b := range c.buckets {
		if len(b) == 0 {
			continue
		}
		if best < 0 || b[0].time < bestTime || (b[0].time == bestTime && b[0].seq < bestSeq) {
			best, bestTime, bestSeq = i, b[0].time, b[0].seq
		}
	}
	c.cur = best
	c.curTop = (math.Floor(bestTime/c.width) + 1) * c.width
	return c.popFrom(best)
	// Note: two buckets can hold same-time heads only via the modulo
	// wrap, a year apart; the windowed sweep never reaches the later
	// one first, and the direct scan above breaks the tie on seq.
}

// Reset empties the calendar and rewinds the sequence counter, keeping
// allocated bucket storage.
func (c *Calendar[T]) Reset() {
	var zero entry[T]
	for i := range c.buckets {
		for j := range c.buckets[i] {
			c.buckets[i][j] = zero
		}
		c.buckets[i] = c.buckets[i][:0]
	}
	c.size = 0
	c.seq = 0
	c.cur = 0
	c.curTop = c.width
}

// popFrom removes the head of bucket i.
func (c *Calendar[T]) popFrom(i int) (float64, T, bool) {
	b := c.buckets[i]
	head := b[0]
	copy(b, b[1:])
	var zero entry[T]
	b[len(b)-1] = zero
	c.buckets[i] = b[:len(b)-1]
	c.size--
	if c.size < len(c.buckets)/2 && len(c.buckets) > minCalendarBuckets {
		c.resize(len(c.buckets) / 2)
	}
	return head.time, head.v, true
}

// insert places e into its bucket, keeping the bucket sorted by
// (time, seq) via binary search, and rewinds the cursor when e lands
// before the current day (out-of-order pushes stay correct, just not
// fast).
func (c *Calendar[T]) insert(e entry[T]) {
	i := int(math.Floor(e.time/c.width)) % len(c.buckets)
	if i < 0 {
		i += len(c.buckets)
	}
	b := c.buckets[i]
	lo, hi := 0, len(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if b[mid].time < e.time || (b[mid].time == e.time && b[mid].seq < e.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, entry[T]{})
	copy(b[lo+1:], b[lo:])
	b[lo] = e
	c.buckets[i] = b
	if c.size == 0 || e.time < c.curTop-c.width {
		c.cur = i
		c.curTop = (math.Floor(e.time/c.width) + 1) * c.width
	}
}

// resize rebuilds the calendar with nb buckets and a day width matched
// to the current event population (span / population, stretched so an
// average day holds ~3 events — Brown's rule of thumb).
func (c *Calendar[T]) resize(nb int) {
	all := make([]entry[T], 0, c.size)
	for _, b := range c.buckets {
		all = append(all, b...)
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, e := range all {
		minT = math.Min(minT, e.time)
		maxT = math.Max(maxT, e.time)
	}
	width := 1.0
	if len(all) > 1 && maxT > minT {
		width = (maxT - minT) / float64(len(all)) * 3
	}
	c.buckets = make([][]entry[T], nb)
	c.width = width
	c.cur = 0
	c.curTop = width
	size, seq := c.size, c.seq
	c.size = 0
	for _, e := range all {
		c.insert(e)
		c.size++
	}
	c.size, c.seq = size, seq
}
