// Extensions: the paper's future-work proposals, runnable. Three
// mini-studies: (1) adaptive parallel probes cut response time;
// (2) selfish 500-probe blasts inflate network load until probe
// payments restore discipline; (3) blame-the-supplier detection
// defuses cache poisoning.
//
//	go run ./examples/extensions
package main

import (
	"context"
	"fmt"
	"log"

	guess "repro"
)

func base() guess.Config {
	cfg := guess.DefaultConfig()
	cfg.NetworkSize = 400
	cfg.WarmupTime = 150
	cfg.MeasureTime = 500
	cfg.QueryRate *= 3
	return cfg
}

func mustRun(cfg guess.Config) *guess.Results {
	res, err := guess.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("1) Adaptive parallel probes (§6.2 future work)")
	serial := mustRun(base())
	adaptive := base()
	adaptive.AdaptiveParallel = true
	adaptive.AdaptiveParallelWindow = 4
	adaptive.MaxParallelProbes = 64
	fast := mustRun(adaptive)
	fmt.Printf("   serial:   %.1f probes/query, %.1fs response\n",
		serial.ProbesPerQuery(), serial.AvgResponseTime())
	fmt.Printf("   adaptive: %.1f probes/query, %.1fs response\n\n",
		fast.ProbesPerQuery(), fast.AvgResponseTime())

	fmt.Println("2) Selfish peers and probe payments (§3.3)")
	greedyCfg := base()
	greedyCfg.PercentSelfishPeers = 20
	greedyCfg.SelfishParallelProbes = 500
	greedy := mustRun(greedyCfg)
	paidCfg := greedyCfg
	paidCfg.ProbePayments = true
	paid := mustRun(paidCfg)
	honest := mustRun(base())
	fmt.Printf("   honest network:       %8d probes received in total\n", honest.TotalLoad())
	fmt.Printf("   20%% selfish, no cost: %8d\n", greedy.TotalLoad())
	fmt.Printf("   20%% selfish + payments: %6d\n\n", paid.TotalLoad())

	fmt.Println("3) Poisoning detection (§6.4 future work)")
	attackCfg := base()
	attackCfg.QueryProbe = guess.MR
	attackCfg.QueryPong = guess.MR
	attackCfg.CacheReplacement = guess.EvictionFor(guess.MR)
	attackCfg.PercentBadPeers = 20
	attackCfg.BadPong = guess.BadPongDead
	undefended := mustRun(attackCfg)
	defendedCfg := attackCfg
	defendedCfg.PoisonDetection = true
	defended := mustRun(defendedCfg)
	fmt.Printf("   undefended: %.1f dead probes/query, %.1f%% unsatisfied\n",
		undefended.DeadProbesPerQuery(), 100*undefended.UnsatisfactionWithAborted())
	fmt.Printf("   detection:  %.1f dead probes/query, %.1f%% unsatisfied (%d suppliers blacklisted)\n",
		defended.DeadProbesPerQuery(), 100*defended.UnsatisfactionWithAborted(),
		defended.BlacklistEvents)
}
