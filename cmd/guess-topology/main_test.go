package main

import "testing"

func TestRunPowerLaw(t *testing.T) {
	if err := run([]string{"-nodes", "200", "-floods", "5", "-max-ttl", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRandom(t *testing.T) {
	if err := run([]string{"-nodes", "200", "-kind", "random", "-floods", "5", "-max-ttl", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadKind(t *testing.T) {
	if err := run([]string{"-kind", "mesh"}); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
