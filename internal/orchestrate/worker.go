package orchestrate

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// RunWorker serves one coordinator connection: announce the worker's
// name, then execute units until the coordinator hangs up. Every unit
// runs against a private metrics registry whose snapshot rides back
// with the result, so the coordinator can aggregate run metrics
// deterministically.
//
// Returns nil when the coordinator closes the connection cleanly, and
// ctx.Err() when the context ends (the connection is closed to unblock
// any pending read, abandoning the in-flight unit — the coordinator
// reassigns it).
func RunWorker(ctx context.Context, conn net.Conn, name string) error {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if name == "" {
		name = "worker"
	}
	if err := sendMsg(conn, message{Type: msgHello, Worker: name}); err != nil {
		return fmt.Errorf("orchestrate: worker %s hello: %w", name, err)
	}
	for {
		m, err := recvMsg(conn)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("orchestrate: worker %s: %w", name, err)
		}
		if m.Type != msgUnit {
			return fmt.Errorf("orchestrate: worker %s: unexpected %q", name, m.Type)
		}
		reply := executeUnit(ctx, m.Unit)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := sendMsg(conn, reply); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("orchestrate: worker %s: %w", name, err)
		}
	}
}

// executeUnit runs one unit and shapes the protocol reply. Execution
// errors (an invalid point, a key mismatch from a corrupt frame)
// become error messages rather than dropped connections — the worker
// stays usable.
func executeUnit(ctx context.Context, wu *workUnit) message {
	fail := func(err error) message {
		return message{Type: msgError, UnitID: wu.ID, Error: err.Error()}
	}
	if err := wu.Point.Validate(); err != nil {
		return fail(err)
	}
	if key := wu.Point.Key(); key != wu.Key {
		return fail(fmt.Errorf("unit %d key mismatch: computed %s, dispatched %s", wu.ID, key, wu.Key))
	}
	// Metrics apply to GUESS runs only (Observation's contract); other
	// families would snapshot all-zero instruments, and merging those
	// would zero gauges a local run leaves untouched.
	var o experiments.Observation
	var reg *obs.Registry
	if wu.Point.Family == experiments.FamilyGUESS {
		reg = obs.NewRegistry()
		o.Metrics = obs.NewSimMetrics(reg)
	}
	pr, err := experiments.RunPoint(ctx, wu.Point, o)
	if err != nil {
		return fail(err)
	}
	res := &unitResult{ID: wu.ID, Key: wu.Key, Result: pr}
	if reg != nil {
		snap := reg.Snapshot()
		res.Metrics = &snap
	}
	return message{Type: msgResult, Result: res}
}
