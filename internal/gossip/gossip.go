// Package gossip implements gossip-based search over the simulated
// overlay: queries spread as rumors in synchronous rounds, following
// the push / pull / push-pull taxonomy of Jaho et al. (Gossip-based
// Search in Multipeer Communication Networks). Each round, informed
// peers push the rumor to Fanout random neighbors (push modes) and
// uninformed peers poll Fanout random neighbors for it (pull modes,
// modeling periodic anti-entropy). A query stops when it has gathered
// NumDesiredResults results (hit-count stopping rule), when it has
// spent MaxRounds rounds (budget stopping rule), or when every live
// peer is informed.
//
// The engine consumes the shared content substrate, draws from named
// simrng streams so runs are byte-identical per seed, drives the
// internal/eventq queue, and emits internal/obs metrics and trace
// events exactly like the GUESS and Gnutella paths. Churn is modeled
// as a static DeadFraction of peers that never answer: gossip rounds
// are fast relative to session lifetimes, so within one query the dead
// set is effectively frozen.
package gossip

import (
	"context"
	"fmt"
	"math"

	"repro/internal/content"
	"repro/internal/eventq"
	"repro/internal/gnutella"
	"repro/internal/obs"
	"repro/internal/simrng"
)

// Mode selects the rumor-spreading mechanism.
type Mode int

const (
	// ModePush: informed peers push the rumor to Fanout random
	// neighbors each round.
	ModePush Mode = iota + 1
	// ModePull: uninformed peers poll Fanout random neighbors each
	// round and receive the rumor from informed ones.
	ModePull
	// ModePushPull combines both mechanisms in every round.
	ModePushPull
)

var modeNames = map[Mode]string{
	ModePush:     "push",
	ModePull:     "pull",
	ModePushPull: "pushpull",
}

// String returns the mode name ("push", "pull", "pushpull").
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode is the inverse of String.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "push":
		return ModePush, nil
	case "pull":
		return ModePull, nil
	case "pushpull":
		return ModePushPull, nil
	}
	return 0, fmt.Errorf("gossip: unknown mode %q", s)
}

// Params configures a gossip-search run. The zero value is not valid;
// start from DefaultParams.
type Params struct {
	// NetworkSize is the number of peers in the overlay.
	NetworkSize int
	// AvgDegree is the overlay's average degree (ring plus random
	// edges, as in the Gnutella topology).
	AvgDegree int
	// Fanout is the number of random neighbors each participating peer
	// contacts per round.
	Fanout int
	// MaxRounds is the per-query round budget.
	MaxRounds int
	// RoundInterval is the virtual seconds between rounds.
	RoundInterval float64
	// Mode selects push, pull, or push-pull spreading.
	Mode Mode
	// NumQueries is the number of queries to run.
	NumQueries int
	// NumDesiredResults is the hit-count stopping rule: a query stops
	// as soon as it has accumulated this many results.
	NumDesiredResults int
	// QueryRate is the network-wide query arrival rate (queries per
	// virtual second); inter-arrival times are exponential.
	QueryRate float64
	// DeadFraction is the fraction of peers that are offline for the
	// whole run (the static-churn stand-in; see the package comment).
	DeadFraction float64
	// LossProb is the probability that any single message is lost.
	LossProb float64
	// Seed is the master RNG seed.
	Seed uint64
	// Content configures the shared content substrate.
	Content content.Params
}

// DefaultParams returns a small but representative configuration.
func DefaultParams() Params {
	return Params{
		NetworkSize:       400,
		AvgDegree:         8,
		Fanout:            2,
		MaxRounds:         12,
		RoundInterval:     1,
		Mode:              ModePushPull,
		NumQueries:        500,
		NumDesiredResults: 1,
		QueryRate:         2,
		DeadFraction:      0.1,
		LossProb:          0,
		Seed:              1,
		Content:           content.DefaultParams(),
	}
}

// validFrac reports whether f is a well-formed probability in [0, 1).
func validFrac(f float64) bool {
	return f >= 0 && f < 1 && !math.IsNaN(f)
}

// Validate checks parameter sanity, rejecting NaN and infinite floats
// so fuzzed configurations cannot smuggle non-finite arithmetic into
// the event loop.
func (p Params) Validate() error {
	switch {
	case p.NetworkSize < 2:
		return fmt.Errorf("gossip: NetworkSize must be >= 2, got %d", p.NetworkSize)
	case p.AvgDegree < 2 || p.AvgDegree >= p.NetworkSize:
		return fmt.Errorf("gossip: AvgDegree %d out of range for %d peers", p.AvgDegree, p.NetworkSize)
	case p.Fanout < 1:
		return fmt.Errorf("gossip: Fanout must be >= 1, got %d", p.Fanout)
	case p.MaxRounds < 1:
		return fmt.Errorf("gossip: MaxRounds must be >= 1, got %d", p.MaxRounds)
	case !(p.RoundInterval > 0) || math.IsInf(p.RoundInterval, 0):
		return fmt.Errorf("gossip: RoundInterval must be positive and finite, got %v", p.RoundInterval)
	case p.Mode != ModePush && p.Mode != ModePull && p.Mode != ModePushPull:
		return fmt.Errorf("gossip: invalid Mode %d", int(p.Mode))
	case p.NumQueries < 1:
		return fmt.Errorf("gossip: NumQueries must be >= 1, got %d", p.NumQueries)
	case p.NumDesiredResults < 1:
		return fmt.Errorf("gossip: NumDesiredResults must be >= 1, got %d", p.NumDesiredResults)
	case !(p.QueryRate > 0) || math.IsInf(p.QueryRate, 0):
		return fmt.Errorf("gossip: QueryRate must be positive and finite, got %v", p.QueryRate)
	case !validFrac(p.DeadFraction):
		return fmt.Errorf("gossip: DeadFraction must be in [0,1), got %v", p.DeadFraction)
	case !validFrac(p.LossProb):
		return fmt.Errorf("gossip: LossProb must be in [0,1), got %v", p.LossProb)
	}
	return p.Content.Validate()
}

// Results reports one gossip run. Message conservation holds by
// construction: MessagesSent == MessagesDelivered + MessagesDropped.
type Results struct {
	// Queries partitions into Satisfied + Unsatisfied.
	Queries     int
	Satisfied   int
	Unsatisfied int

	// Message totals over the whole run.
	MessagesSent      int64
	MessagesDelivered int64
	MessagesDropped   int64

	// RoundsTotal is the sum of rounds used across queries;
	// MaxRoundsUsed is the largest per-query round count.
	RoundsTotal   int64
	MaxRoundsUsed int

	// PeersInformed sums the rumor's reach (informed peers, origin
	// included) across queries; ResultsFound sums results gathered.
	PeersInformed int64
	ResultsFound  int64

	// ResponseTimeSum is the total virtual seconds from query start to
	// completion.
	ResponseTimeSum float64

	// PeerLoads counts messages received per peer (load-fairness
	// input; dead peers accumulate none).
	PeerLoads []int64

	// Interrupted is set when the run was cancelled mid-flight.
	Interrupted bool
}

// Satisfaction returns the satisfied fraction of queries.
func (r *Results) Satisfaction() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Satisfied) / float64(r.Queries)
}

// MessagesPerQuery returns the mean messages sent per query.
func (r *Results) MessagesPerQuery() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.MessagesSent) / float64(r.Queries)
}

// AvgRounds returns the mean rounds used per query.
func (r *Results) AvgRounds() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.RoundsTotal) / float64(r.Queries)
}

// AvgReach returns the mean number of peers informed per query.
func (r *Results) AvgReach() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.PeersInformed) / float64(r.Queries)
}

type evKind uint8

const (
	evQueryStart evKind = iota + 1
	evRound
)

type event struct {
	kind evKind
	q    *query
}

type query struct {
	id       uint64
	item     content.ItemID
	origin   int
	start    float64
	round    int
	messages int64
	results  int
	// informed flags peers holding the rumor; spreaders lists them in
	// infection order (informed peers are always live).
	informed  []bool
	spreaders []int
}

// Engine runs gossip queries over one sampled overlay and content
// assignment. Create with New, run once with Run.
type Engine struct {
	p        Params
	universe *content.Universe
	topo     *gnutella.Topology
	libs     []content.Library
	dead     []bool
	live     int

	rngWorkload *simrng.RNG
	rngSpread   *simrng.RNG
	rngNet      *simrng.RNG

	now    float64
	events eventq.Queue[event]

	res   Results
	loads []int64

	observer obs.Observer
	met      *obs.GossipMetrics

	nextQueryID uint64
	pick        []int // neighbor-index scratch for fanout sampling
	freeQ       []*query

	ran bool
}

// New validates params and builds the overlay, content assignment, and
// static dead set. The same params always yield the same engine state.
func New(params Params) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	root := simrng.New(params.Seed)
	universe, err := content.New(params.Content)
	if err != nil {
		return nil, err
	}
	topo, err := gnutella.NewRandom(root.Stream("topology"), params.NetworkSize, params.AvgDegree)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		p:           params,
		universe:    universe,
		topo:        topo,
		rngWorkload: root.Stream("workload"),
		rngSpread:   root.Stream("spread"),
		rngNet:      root.Stream("net"),
	}
	n := params.NetworkSize
	rngContent := root.Stream("content")
	e.libs = make([]content.Library, n)
	for i := range e.libs {
		e.libs[i] = universe.NewLibrary(rngContent, universe.SampleLibrarySize(rngContent))
	}
	// Exact-count dead set: the first k entries of a random
	// permutation, so at least one peer is always live.
	e.dead = make([]bool, n)
	k := int(params.DeadFraction * float64(n))
	if k >= n {
		k = n - 1
	}
	for _, v := range root.Stream("churn").Perm(n)[:k] {
		e.dead[v] = true
	}
	e.live = n - k
	e.loads = make([]int64, n)
	return e, nil
}

// SetObserver attaches a trace observer. Observers receive events but
// never consume randomness or influence control flow, so attaching one
// leaves Results byte-identical.
func (e *Engine) SetObserver(o obs.Observer) { e.observer = o }

// SetMetrics attaches a metric set (nil disables metrics). Like
// observers, metrics never perturb the run.
func (e *Engine) SetMetrics(m *obs.GossipMetrics) { e.met = m }

// ctxCheckInterval matches the core engine's cancellation granularity,
// scaled down because round and hop events are far coarser than core's
// per-probe events.
const ctxCheckInterval = 64

// Run executes the configured number of queries and returns the run's
// Results. It may be called once per Engine.
func (e *Engine) Run(ctx context.Context) (*Results, error) {
	if e.ran {
		return nil, fmt.Errorf("gossip: Engine.Run called twice")
	}
	e.ran = true
	if ctx != nil && ctx.Err() != nil {
		e.res.Interrupted = true
		e.finalize()
		return &e.res, nil
	}
	t := 0.0
	for i := 0; i < e.p.NumQueries; i++ {
		t += e.rngWorkload.ExpFloat64() / e.p.QueryRate
		e.events.Push(t, event{kind: evQueryStart, q: e.newQuery()})
	}
	processed := 0
	for {
		when, ev, ok := e.events.Pop()
		if !ok {
			break
		}
		e.now = when
		processed++
		if processed%ctxCheckInterval == 0 && ctx != nil {
			select {
			case <-ctx.Done():
				// Like core.Engine, a cancelled run returns its partial
				// results with Interrupted set and no error.
				e.res.Interrupted = true
				e.finalize()
				return &e.res, nil
			default:
			}
		}
		switch ev.kind {
		case evQueryStart:
			e.startQuery(ev.q)
		case evRound:
			e.runRound(ev.q)
		}
	}
	e.finalize()
	return &e.res, nil
}

func (e *Engine) finalize() {
	e.res.PeerLoads = e.loads
}

func (e *Engine) newQuery() *query {
	if n := len(e.freeQ); n > 0 {
		q := e.freeQ[n-1]
		e.freeQ = e.freeQ[:n-1]
		return q
	}
	return &query{informed: make([]bool, e.p.NetworkSize)}
}

func (e *Engine) recycle(q *query) {
	for _, v := range q.spreaders {
		q.informed[v] = false
	}
	q.spreaders = q.spreaders[:0]
	e.freeQ = append(e.freeQ, q)
}

func (e *Engine) startQuery(q *query) {
	e.nextQueryID++
	q.id = e.nextQueryID
	q.start = e.now
	q.round = 0
	q.messages = 0
	q.item = e.universe.DrawQuery(e.rngWorkload)
	for {
		q.origin = e.rngWorkload.Intn(e.p.NetworkSize)
		if !e.dead[q.origin] {
			break
		}
	}
	q.informed[q.origin] = true
	q.spreaders = append(q.spreaders, q.origin)
	q.results = e.libs[q.origin].Results(q.item)
	if e.observer != nil {
		e.observer.Observe(obs.Event{
			Kind: obs.EvQueryIssued, Time: e.now,
			Query: q.id, Peer: uint64(q.origin),
		})
	}
	if q.results >= e.p.NumDesiredResults {
		e.finishQuery(q, true)
		return
	}
	e.events.Push(e.now+e.p.RoundInterval, event{kind: evRound, q: q})
}

// runRound executes one synchronous gossip round for q and either
// finishes the query or schedules the next round.
func (e *Engine) runRound(q *query) {
	q.round++
	if e.met != nil {
		e.met.Rounds.Inc()
	}
	if e.observer != nil {
		e.observer.Observe(obs.Event{
			Kind: obs.EvProbeRound, Time: e.now,
			Query: q.id, Peer: uint64(q.origin),
			Round: q.round, Probes: int(q.messages),
		})
	}
	if e.p.Mode == ModePush || e.p.Mode == ModePushPull {
		// Peers infected during this round spread next round: snapshot
		// the spreader count before appending.
		count := len(q.spreaders)
		for i := 0; i < count; i++ {
			e.pushFrom(q, q.spreaders[i])
		}
	}
	if e.p.Mode == ModePull || e.p.Mode == ModePushPull {
		for v := 0; v < e.p.NetworkSize; v++ {
			if e.dead[v] || q.informed[v] {
				continue
			}
			e.pullFrom(q, v)
		}
	}
	switch {
	case q.results >= e.p.NumDesiredResults:
		e.finishQuery(q, true)
	case q.round >= e.p.MaxRounds || len(q.spreaders) == e.live:
		e.finishQuery(q, false)
	default:
		e.events.Push(e.now+e.p.RoundInterval, event{kind: evRound, q: q})
	}
}

// fanoutTargets samples min(Fanout, degree) distinct neighbors of v
// into e.pick via a partial Fisher-Yates shuffle.
func (e *Engine) fanoutTargets(v int) []int {
	nbrs := e.topo.Neighbors(v)
	k := e.p.Fanout
	if k > len(nbrs) {
		k = len(nbrs)
	}
	e.pick = e.pick[:0]
	for i := range nbrs {
		e.pick = append(e.pick, nbrs[i])
	}
	for i := 0; i < k; i++ {
		j := i + e.rngSpread.Intn(len(e.pick)-i)
		e.pick[i], e.pick[j] = e.pick[j], e.pick[i]
	}
	return e.pick[:k]
}

// send accounts one message from src to dst and reports whether it was
// delivered (dst live and the message not lost).
func (e *Engine) send(q *query, dst int) bool {
	q.messages++
	e.res.MessagesSent++
	if e.met != nil {
		e.met.Messages.Inc()
	}
	if e.rngNet.Bool(e.p.LossProb) || e.dead[dst] {
		e.res.MessagesDropped++
		if e.met != nil {
			e.met.Dropped.Inc()
		}
		return false
	}
	e.res.MessagesDelivered++
	e.loads[dst]++
	if e.met != nil {
		e.met.Delivered.Inc()
	}
	return true
}

// inform marks v as holding the rumor and collects v's results.
func (e *Engine) inform(q *query, v int) {
	q.informed[v] = true
	q.spreaders = append(q.spreaders, v)
	q.results += e.libs[v].Results(q.item)
}

// pushFrom has informed peer s push the rumor to Fanout random
// neighbors. In push-pull mode each successful push also triggers a
// response message back to s (the "exchange" half of the protocol).
func (e *Engine) pushFrom(q *query, s int) {
	for _, dst := range e.fanoutTargets(s) {
		delivered := e.send(q, dst)
		if e.observer != nil {
			outcome := obs.OutcomeDead
			if delivered {
				outcome = obs.OutcomeGood
			}
			e.observer.Observe(obs.Event{
				Kind: obs.EvProbe, Time: e.now,
				Query: q.id, Peer: uint64(s), Target: uint64(dst),
				Outcome: outcome,
			})
		}
		if !delivered {
			continue
		}
		if !q.informed[dst] {
			e.inform(q, dst)
		}
		if e.p.Mode == ModePushPull {
			e.send(q, s) // response; s is live by construction
		}
	}
}

// pullFrom has uninformed live peer v poll Fanout random neighbors;
// informed live neighbors respond with the rumor.
func (e *Engine) pullFrom(q *query, v int) {
	for _, dst := range e.fanoutTargets(v) {
		if !e.send(q, dst) {
			continue
		}
		if !q.informed[dst] {
			continue
		}
		// Response carrying the rumor back to v.
		if !e.send(q, v) {
			continue
		}
		if !q.informed[v] {
			e.inform(q, v)
		}
	}
}

func (e *Engine) finishQuery(q *query, satisfied bool) {
	e.res.Queries++
	outcome := obs.OutcomeExhausted
	if satisfied {
		e.res.Satisfied++
		outcome = obs.OutcomeSatisfied
	} else {
		e.res.Unsatisfied++
	}
	e.res.RoundsTotal += int64(q.round)
	if q.round > e.res.MaxRoundsUsed {
		e.res.MaxRoundsUsed = q.round
	}
	e.res.PeersInformed += int64(len(q.spreaders))
	e.res.ResultsFound += int64(q.results)
	e.res.ResponseTimeSum += e.now - q.start
	if e.met != nil {
		e.met.Queries.Inc()
		if satisfied {
			e.met.Satisfied.Inc()
		} else {
			e.met.Unsatisfied.Inc()
		}
		e.met.QueryRounds.Observe(float64(q.round))
		e.met.QueryMessages.Observe(float64(q.messages))
	}
	if e.observer != nil {
		e.observer.Observe(obs.Event{
			Kind: obs.EvQueryDone, Time: e.now,
			Query: q.id, Peer: uint64(q.origin),
			Outcome: outcome, Probes: int(q.messages), Results: q.results,
		})
	}
	e.recycle(q)
}

// Run is a convenience wrapper: build an engine and run it.
func Run(ctx context.Context, params Params) (*Results, error) {
	e, err := New(params)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx)
}
