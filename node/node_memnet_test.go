package node

import (
	"context"
	"testing"
	"time"

	"repro/node/memnet"
)

// startMemNode runs a node on an in-memory network endpoint.
func startMemNode(t *testing.T, nw *memnet.Network, cfg Config) *Node {
	t.Helper()
	n, err := New(nw.Listen(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestMemnetQuery(t *testing.T) {
	nw := memnet.New(1)
	sharer := startMemNode(t, nw, Config{Files: []string{"the file.txt"}})
	querier := startMemNode(t, nw, Config{})
	querier.AddPeer(sharer.Addr(), 1)

	hits, stats, err := querier.Query(context.Background(), "the file", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || stats.Good != 1 {
		t.Fatalf("hits=%v stats=%+v", hits, stats)
	}
}

func TestMemnetPartitionedPeerLooksDead(t *testing.T) {
	nw := memnet.New(1)
	sharer := startMemNode(t, nw, Config{Files: []string{"gone.txt"}})
	querier := startMemNode(t, nw, Config{ProbeTimeout: 50 * time.Millisecond})
	querier.AddPeer(sharer.Addr(), 1)
	nw.Partition(sharer.Addr())

	hits, stats, err := querier.Query(context.Background(), "gone", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 || stats.Dead != 1 {
		t.Fatalf("partitioned peer not treated as dead: hits=%v stats=%+v", hits, stats)
	}
	if querier.CacheLen() != 0 {
		t.Fatal("dead entry not evicted")
	}
}

func TestMemnetQuerySurvivesPacketLoss(t *testing.T) {
	nw := memnet.New(3)
	nw.SetLoss(0.3)
	// Several sharers all hold the file; with 30% loss some probes
	// time out, but the serial walk must still find a copy.
	querier := startMemNode(t, nw, Config{ProbeTimeout: 40 * time.Millisecond, Seed: 9})
	for i := 0; i < 8; i++ {
		s := startMemNode(t, nw, Config{Files: []string{"resilient.bin"}, Seed: uint64(i + 2)})
		querier.AddPeer(s.Addr(), 1)
	}
	hits, stats, err := querier.Query(context.Background(), "resilient", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatalf("query failed under 30%% loss: stats=%+v", stats)
	}
}

func TestMemnetLatencySlowsQueries(t *testing.T) {
	nw := memnet.New(1)
	nw.SetLatency(30 * time.Millisecond)
	sharer := startMemNode(t, nw, Config{Files: []string{"slow.txt"}})
	querier := startMemNode(t, nw, Config{ProbeTimeout: 500 * time.Millisecond})
	querier.AddPeer(sharer.Addr(), 1)

	start := time.Now()
	hits, _, err := querier.Query(context.Background(), "slow", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatal("query failed under latency")
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~60ms (2x 30ms latency)", elapsed)
	}
}

func TestMemnetGossipNetwork(t *testing.T) {
	// A 15-node network on memnet with fast pings: addresses must
	// spread beyond the bootstrap peer.
	nw := memnet.New(5)
	nodes := make([]*Node, 15)
	for i := range nodes {
		nodes[i] = startMemNode(t, nw, Config{
			Files:        []string{"common.txt"},
			PingInterval: 25 * time.Millisecond,
			IntroProb:    0.5,
			Seed:         uint64(i + 1),
		})
	}
	for i := 1; i < len(nodes); i++ {
		nodes[i].AddPeer(nodes[0].Addr(), 1)
		nodes[0].AddPeer(nodes[i].Addr(), 1)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if nodes[1].CacheLen() >= 3 {
			return // learned peers beyond the bootstrap
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("gossip did not spread: node1 cache=%d", nodes[1].CacheLen())
}
