package guess_test

import (
	"context"
	"testing"

	guess "repro"
)

func TestDefaultConfigRuns(t *testing.T) {
	cfg := guess.DefaultConfig()
	cfg.NetworkSize = 150
	cfg.WarmupTime = 50
	cfg.MeasureTime = 200
	cfg.QueryRate = 0.05
	res, err := guess.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries completed")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := guess.DefaultConfig()
	cfg.CacheSize = 0
	if _, err := guess.Run(context.Background(), cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPolicyRoundTrips(t *testing.T) {
	sels := []guess.Selection{guess.Random, guess.MRU, guess.LRU, guess.MFS, guess.MR, guess.MRStar}
	for _, s := range sels {
		got, err := guess.ParseSelection(s.String())
		if err != nil || got != s {
			t.Fatalf("selection round trip %v failed: %v %v", s, got, err)
		}
	}
	evs := []guess.Eviction{guess.EvictRandom, guess.EvictLRU, guess.EvictMRU,
		guess.EvictLFS, guess.EvictLR, guess.EvictLRStar}
	for _, e := range evs {
		got, err := guess.ParseEviction(e.String())
		if err != nil || got != e {
			t.Fatalf("eviction round trip %v failed: %v %v", e, got, err)
		}
	}
}

func TestEvictionFor(t *testing.T) {
	if guess.EvictionFor(guess.MFS) != guess.EvictLFS {
		t.Fatal("EvictionFor(MFS) != EvictLFS")
	}
	if guess.EvictionFor(guess.Random) != guess.EvictRandom {
		t.Fatal("EvictionFor(Random) != EvictRandom")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := guess.ExperimentIDs()
	if len(ids) != 26 {
		t.Fatalf("expected 26 experiments, got %d: %v", len(ids), ids)
	}
	for _, id := range ids {
		if _, err := guess.ExperimentTitle(id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunExperimentViaFacade(t *testing.T) {
	res, err := guess.RunExperiment("fig12", guess.ExperimentOptions{
		Scale: guess.ScaleQuick,
		Seed:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || res.Tables[0].NumRows() == 0 {
		t.Fatal("experiment returned no data")
	}
}
