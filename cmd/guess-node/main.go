// Command guess-node runs a live GUESS peer speaking the UDP wire
// protocol: it shares files, maintains its link cache with pings,
// answers queries from other peers, and can issue queries of its own.
//
// Start a small network in three terminals:
//
//	guess-node -listen 127.0.0.1:7001 -files "free bird.mp3,stairway.ogg"
//	guess-node -listen 127.0.0.1:7002 -bootstrap 127.0.0.1:7001
//	guess-node -listen 127.0.0.1:7003 -bootstrap 127.0.0.1:7001 \
//	    -query "free bird" -desired 1
//
// Without -query the node runs as a daemon until interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"time"

	guess "repro"
	"repro/node"
	"repro/node/cluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "guess-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("guess-node", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "UDP address to bind")
	filesFlag := fs.String("files", "", "comma-separated file names to share")
	bootstrapFlag := fs.String("bootstrap", "", "comma-separated peer addresses to seed the cache")
	cacheSize := fs.Int("cache", 100, "link cache capacity")
	pingInterval := fs.Duration("ping-interval", 30*time.Second, "cache maintenance period")
	probeTimeout := fs.Duration("probe-timeout", 200*time.Millisecond, "probe reply timeout")
	attempts := fs.Int("probe-attempts", 3, "transmissions per probe before a peer is presumed dead (1 = single-shot)")
	backoff := fs.Duration("retry-backoff", 50*time.Millisecond, "pause before the first retransmission (doubles per attempt)")
	adaptive := fs.Bool("adaptive-timeout", false, "derive per-attempt deadlines from an RTT EWMA")
	busyBackoff := fs.Duration("busy-backoff", 0, "suppress Busy peers instead of evicting them (0 = evict on first Busy)")
	capacity := fs.Int("capacity", 0, "max probes/second served (0 = unlimited)")
	admission := fs.String("admission", "flat", "overload controller: flat (paper's window) or fair (shed heaviest requesters first)")
	breaker := fs.Int("breaker", 0, "consecutive probe timeouts that open a peer's circuit breaker (0 = evict on first timed-out probe)")
	breakerCooldown := fs.Duration("breaker-cooldown", 2*time.Second, "open-breaker suppression before the half-open trial")
	drainTimeout := fs.Duration("drain-timeout", 0, "graceful drain window on shutdown (0 = close immediately)")
	snapshot := fs.String("snapshot", "", "path for periodic link-cache snapshots, restored on startup (empty = disabled)")
	snapshotInterval := fs.Duration("snapshot-interval", 30*time.Second, "period between link-cache snapshots")
	stateAddr := fs.String("state", "", "TCP address of the cluster shed-state service (empty = standalone; requires -admission fair)")
	stateInterval := fs.Duration("state-interval", time.Second, "push/pull period against -state")
	nodeName := fs.String("node-name", "", "stable name for -state sequence tracking (default: the bound address)")
	queryProbe := fs.String("query-probe", "Random", "QueryProbe policy")
	queryFlag := fs.String("query", "", "run one query and exit")
	desired := fs.Int("desired", 1, "results wanted for -query")
	wait := fs.Duration("gossip-wait", 2*time.Second, "time to gossip before -query runs")
	metricsAddr := fs.String("metrics", "", "HTTP address serving /metrics (Prometheus text) and /metrics.json (empty = disabled)")
	verbose := fs.Bool("v", false, "verbose protocol logging")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sel, err := guess.ParseSelection(*queryProbe)
	if err != nil {
		return err
	}
	var admissionMode node.AdmissionMode
	switch strings.ToLower(strings.TrimSpace(*admission)) {
	case "", "flat":
		admissionMode = node.AdmissionFlat
	case "fair":
		admissionMode = node.AdmissionFair
	default:
		return fmt.Errorf("bad -admission %q: want flat or fair", *admission)
	}
	reg := guess.NewMetricsRegistry()
	cfg := node.Config{
		CacheSize:          *cacheSize,
		PingInterval:       *pingInterval,
		ProbeTimeout:       *probeTimeout,
		MaxProbeAttempts:   *attempts,
		RetryBackoff:       *backoff,
		AdaptiveTimeout:    *adaptive,
		BusyBackoff:        *busyBackoff,
		MaxProbesPerSecond: *capacity,
		Admission:          admissionMode,
		BreakerThreshold:   *breaker,
		BreakerCooldown:    *breakerCooldown,
		DrainTimeout:       *drainTimeout,
		SnapshotPath:       *snapshot,
		SnapshotInterval:   *snapshotInterval,
		QueryProbe:         sel,
		Metrics:            reg,
	}
	if *filesFlag != "" {
		for _, f := range strings.Split(*filesFlag, ",") {
			if f = strings.TrimSpace(f); f != "" {
				cfg.Files = append(cfg.Files, f)
			}
		}
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "node: "+format+"\n", args...)
		}
	}

	if *stateAddr != "" && admissionMode != node.AdmissionFair {
		return errors.New("-state needs -admission fair (the shed-state service syncs the fair sketch)")
	}

	n, err := node.Listen(*listen, cfg)
	if err != nil {
		return err
	}
	defer n.Close()
	fmt.Printf("guess-node listening on %v, sharing %d files\n", n.Addr(), n.NumFiles())

	// The cluster sync client: push local admission deltas to the
	// shed-state service, pull the merged aggregate. The node keeps
	// serving on local-only shedding whenever the service is
	// unreachable, so a dead -state address degrades rather than fails.
	var stateSync *cluster.SyncClient
	if *stateAddr != "" {
		name := *nodeName
		if name == "" {
			name = n.Addr().String()
		}
		stateSync, err = cluster.NewSyncClient(n, cluster.ClientConfig{
			Name:     name,
			Dial:     func() (net.Conn, error) { return net.DialTimeout("tcp", *stateAddr, *stateInterval) },
			Interval: *stateInterval,
			Metrics:  reg,
		})
		if err != nil {
			return err
		}
		defer stateSync.Close()
		fmt.Printf("state sync to %s as %q every %v\n", *stateAddr, name, *stateInterval)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				fmt.Fprintln(os.Stderr, "guess-node: /metrics:", err)
			}
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := reg.WriteJSON(w); err != nil {
				fmt.Fprintln(os.Stderr, "guess-node: /metrics.json:", err)
			}
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			status, code := "ok", http.StatusOK
			if n.Draining() {
				// 503 tells load balancers and peers to stop routing
				// here while the drain finishes.
				status, code = "draining", http.StatusServiceUnavailable
			}
			w.WriteHeader(code)
			// Cluster fields appear only when -state is set: how stale
			// the merged aggregate is, whether the node is shedding on
			// local evidence alone, and which salt epoch it hashes under.
			clusterFields := ""
			if stateSync != nil {
				st := stateSync.Status()
				age := -1.0 // no aggregate pulled yet
				if !st.LastPull.IsZero() {
					age = time.Since(st.LastPull).Seconds()
				}
				clusterFields = fmt.Sprintf(`,"last_pull_age_seconds":%.3f,"local_fallback":%v,"salt_epoch":%d`,
					age, st.Fallback, st.Epoch)
			}
			fmt.Fprintf(w, `{"status":%q,"uptime_seconds":%.3f,"cache_entries":%d,"suspects_pending":%d%s}`+"\n",
				status, n.Uptime().Seconds(), n.CacheLen(), n.Suspects(), clusterFields)
		})
		srv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "guess-node: metrics server:", err)
			}
		}()
		// Drain the node while /healthz can still answer 503 (Close is
		// idempotent, so the earlier deferred Close is a no-op).
		defer func() {
			n.Close()
			srv.Close()
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *metricsAddr)
	}

	if *bootstrapFlag != "" {
		for _, a := range strings.Split(*bootstrapFlag, ",") {
			addr, err := netip.ParseAddrPort(strings.TrimSpace(a))
			if err != nil {
				return fmt.Errorf("bad -bootstrap address %q: %w", a, err)
			}
			ok, err := n.PingPeer(ctx, addr)
			if err != nil {
				return err
			}
			n.AddPeer(addr, 0)
			fmt.Printf("bootstrap %v: alive=%v\n", addr, ok)
		}
	}

	if *queryFlag != "" {
		// Give ping/pong gossip a moment to populate the cache.
		select {
		case <-time.After(*wait):
		case <-ctx.Done():
			return nil
		}
		start := time.Now()
		hits, stats, err := n.Query(ctx, *queryFlag, *desired)
		if err != nil {
			return err
		}
		fmt.Printf("query %q: %d hits in %v (%d probes: %d good, %d dead, %d refused, %d retries)\n",
			*queryFlag, len(hits), time.Since(start).Round(time.Millisecond),
			stats.Probes, stats.Good, stats.Dead, stats.Refused, stats.Retries)
		for _, h := range hits {
			fmt.Printf("  %q from %v\n", h.Name, h.From)
		}
		return nil
	}

	// Daemon mode: report stats periodically until interrupted.
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Println("\nshutting down")
			return nil
		case <-ticker.C:
			s := n.Stats()
			fmt.Printf("cache %d entries | pings sent %d recv %d | queries served %d | refused %d | evicted %d | retries %d | busy-backoffs %d | late %d dup %d\n",
				n.CacheLen(), s.PingsSent, s.PingsReceived, s.QueriesServed,
				s.ProbesRefused, s.DeadEvictions, s.Retries, s.BusyBackoffs,
				s.LateReplies, s.DupReplies)
		}
	}
}
