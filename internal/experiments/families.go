package experiments

// The four-family comparison puts GUESS, Gnutella flooding, gossip
// search, and the DHT baseline side by side over the same content
// model, seed, and (where the family models it) churn level, reporting
// the paper's three axes: satisfaction, messages per query, and load
// fairness. Flooding runs over a static overlay (its best case — it
// has no notion of dead peers); GUESS uses its full churn model, and
// gossip/DHT use the static DeadFraction stand-in at the same 10%
// level. Message semantics are per-family (probes, flood forwards,
// rumor pushes/pulls, routing hops) — the comparison mirrors the
// paper's cost-per-query framing, not a wire-identical protocol.
//
// Each family is one single-point Spec, all executed through the same
// memoized RunSpec path — the family discriminator in the memo key
// (and in every Point) keeps the four result types apart, which is
// what let the old per-family memo helpers (runGossipMemo/runDHTMemo)
// collapse into the generic executor.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/gossip"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	register("cmp-families",
		"Four-family comparison: GUESS vs flooding vs gossip vs DHT (satisfaction, cost, load fairness)",
		familiesSpecs, familiesRender)
}

// familyDeadFraction is the static churn stand-in used by the gossip
// and DHT rows, matching the ~10% dead-address level a GUESS cache
// sees under default churn.
const familyDeadFraction = 0.1

// familiesShape returns the comparison's network size and query count.
func familiesShape(opts Options) (n, queries int) {
	n, queries = 1000, 3000
	if opts.Scale == Quick {
		n, queries = 400, 1000
	}
	return n, queries
}

// guessFamilyParams builds the GUESS configuration for the comparison.
func guessFamilyParams(opts Options, n int) core.Params {
	p := opts.baseParams()
	p.NetworkSize = n
	return p
}

// floodFamilyParams builds the flooding configuration: a static random
// overlay sharing the content model.
func floodFamilyParams(opts Options, n, queries int) FloodParams {
	p := DefaultFloodParams()
	p.NetworkSize = n
	p.NumQueries = queries
	p.Seed = opts.seed()
	p.Content = opts.baseParams().Content
	return p
}

// gossipFamilyParams builds the gossip configuration for the
// comparison at network size n with the shared content model.
func gossipFamilyParams(opts Options, n, queries int) gossip.Params {
	p := gossip.DefaultParams()
	p.NetworkSize = n
	p.NumQueries = queries
	p.Seed = opts.seed()
	p.DeadFraction = familyDeadFraction
	p.Content = opts.baseParams().Content
	return p
}

// dhtFamilyParams builds the DHT configuration for the comparison.
func dhtFamilyParams(opts Options, n, lookups int) dht.Params {
	p := dht.DefaultParams()
	p.NetworkSize = n
	p.NumLookups = lookups
	p.Seed = opts.seed()
	p.DeadFraction = familyDeadFraction
	p.Content = opts.baseParams().Content
	return p
}

// familiesSpecs returns one single-point Spec per family, in table
// order. The GUESS label keeps its pre-Spec "families-guess" form and
// the other three share "families" — their memo keys stay distinct
// through the family discriminator.
func familiesSpecs(opts Options) []Spec {
	n, queries := familiesShape(opts)
	return []Spec{
		{Family: FamilyGUESS, Label: "families-guess", Core: []core.Params{guessFamilyParams(opts, n)}},
		{Family: FamilyFlood, Label: "families", Flood: []FloodParams{floodFamilyParams(opts, n, queries)}},
		{Family: FamilyGossip, Label: "families", Gossip: []gossip.Params{gossipFamilyParams(opts, n, queries)}},
		{Family: FamilyDHT, Label: "families", DHT: []dht.Params{dhtFamilyParams(opts, n, queries)}},
	}
}

// loadFloats converts a load vector for the stats helpers.
func loadFloats(loads []int64) []float64 {
	out := make([]float64, len(loads))
	for i, l := range loads {
		out[i] = float64(l)
	}
	return out
}

func familiesRender(opts Options, batches [][]PointResult) (*Result, error) {
	n, queries := familiesShape(opts)
	base := guessFamilyParams(opts, n)

	t := report.NewTable("Four-family comparison: satisfaction, cost per query, load fairness",
		"Family", "Config", "Satisfaction", "MsgsPerQuery", "LoadGini", "Top1%Share")

	// GUESS: the full engine with churn, maintenance, and link caches.
	g := batches[0][0].Core
	gLoads := loadFloats(g.RankedLoads())
	t.AddRow("GUESS", fmt.Sprintf("N=%d cache=%d", n, base.CacheSize),
		1-g.UnsatisfactionWithAborted(), g.ProbesPerQuery(),
		stats.Gini(gLoads), stats.TopShare(gLoads, 0.01))

	// Gnutella flooding over a static overlay sharing the content model.
	fp := floodFamilyParams(opts, n, queries)
	fr := batches[1][0].Flood
	fLoads := loadFloats(fr.PeerLoads)
	t.AddRow("Flood", fmt.Sprintf("ttl=%d degree=%d", fp.TTL, fp.AvgDegree),
		fr.Satisfaction(), fr.MessagesPerQuery(),
		stats.Gini(fLoads), stats.TopShare(fLoads, 0.01))

	// Gossip rumor spreading with hit-count and round-budget stopping.
	gp := gossipFamilyParams(opts, n, queries)
	gr := batches[2][0].Gossip
	grLoads := loadFloats(gr.PeerLoads)
	t.AddRow("Gossip", fmt.Sprintf("mode=%s fanout=%d rounds<=%d", gp.Mode, gp.Fanout, gp.MaxRounds),
		gr.Satisfaction(), gr.MessagesPerQuery(),
		stats.Gini(grLoads), stats.TopShare(grLoads, 0.01))

	// DHT ring lookup with randomized replication and caching.
	dp := dhtFamilyParams(opts, n, queries)
	dr := batches[3][0].DHT
	drLoads := loadFloats(dr.PeerLoads)
	t.AddRow("DHT", fmt.Sprintf("replicas=%d cache=%d hops<=%d", dp.BaseReplicas, dp.CacheSize, dp.MaxHops),
		dr.Satisfaction(), dr.MessagesPerLookup(),
		stats.Gini(drLoads), stats.TopShare(drLoads, 0.01))

	return &Result{Tables: []*report.Table{t}}, nil
}
