package experiments

import (
	"fmt"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/gnutella"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/simrng"
)

func init() {
	register("fig8", "Figure 8: query cost vs unsatisfaction for fixed, coarse and fine flexible extent",
		fig8Specs, fig8Render)
	register("fig9", "Figure 9: probes per query by QueryProbe policy",
		func(opts Options) []Spec { return selectionSweepSpecs(opts, "QueryProbe", setQueryProbe) },
		fig9Render)
	register("fig10", "Figure 10: probes per query by QueryPong policy",
		func(opts Options) []Spec { return selectionSweepSpecs(opts, "QueryPong", setQueryPong) },
		fig10Render)
	register("fig11", "Figure 11: probes per query by CacheReplacement policy",
		fig11Specs, fig11Render)
	register("fig12", "Figure 12: unsatisfied queries by QueryPong policy",
		func(opts Options) []Spec { return selectionSweepSpecs(opts, "QueryPong", setQueryPong) },
		fig12Render)
	register("fig13", "Figure 13: ranked load distribution by policy combination",
		fig13Specs, fig13Render)
}

func fig8Shape(opts Options) (n, queries int) {
	n, queries = 1000, 3000
	if opts.Scale == Quick {
		n, queries = 400, 1000
	}
	return n, queries
}

func fig8Specs(opts Options) []Spec {
	base := opts.baseParams()
	base.NetworkSize, _ = fig8Shape(opts)
	mfs := base
	mfs.QueryPong = policy.SelMFS
	return []Spec{{Family: FamilyGUESS, Core: []core.Params{base, mfs}}}
}

func fig8Render(opts Options, batches [][]PointResult) (*Result, error) {
	n, queries := fig8Shape(opts)
	// Forwarding baselines over a live-peer snapshot sharing the GUESS
	// content model. These are closed-form query replays, not engine
	// runs, so they stay local to the renderer rather than becoming
	// sweep points.
	u, err := content.New(opts.baseParams().Content)
	if err != nil {
		return nil, err
	}
	rng := simrng.New(opts.seed()).Stream("fig8")
	pop, err := gnutella.NewPopulation(u, n, rng)
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Figure 8: average query cost vs unsatisfaction",
		"Mechanism", "Config", "AvgCost", "Unsatisfaction")

	extents := []int{1, 2, 5, 10, 20, 50, 100, 150, 200, 300, 400, 540, 700, 850, 1000}
	var fx, fy []float64
	for _, extent := range extents {
		if extent > n {
			continue
		}
		unsat := 0
		for q := 0; q < queries; q++ {
			item := u.DrawQuery(rng)
			if !pop.FixedExtent(rng, item, extent, 1).Satisfied {
				unsat++
			}
		}
		rate := float64(unsat) / float64(queries)
		t.AddRow("FixedExtent", fmt.Sprintf("extent=%d", extent), float64(extent), rate)
		fx = append(fx, float64(extent))
		fy = append(fy, rate)
	}

	batchesID := gnutella.DefaultDeepeningBatches(n)
	idCost, idUnsat := 0, 0
	for q := 0; q < queries; q++ {
		item := u.DrawQuery(rng)
		res := pop.IterativeDeepening(rng, item, batchesID, 1)
		idCost += res.Probes
		if !res.Satisfied {
			idUnsat++
		}
	}
	idAvgCost := float64(idCost) / float64(queries)
	idRate := float64(idUnsat) / float64(queries)
	t.AddRow("IterativeDeepening", fmt.Sprintf("batches=%v", batchesID), idAvgCost, idRate)

	// GUESS points: Random baseline and QueryPong=MFS.
	results := coreResultsOf(batches[0])
	gr, gm := results[0], results[1]
	t.AddRow("GUESS", "Random baseline", gr.ProbesPerQuery(), gr.UnsatisfactionWithAborted())
	t.AddRow("GUESS", "QueryPong=MFS", gm.ProbesPerQuery(), gm.UnsatisfactionWithAborted())

	chart := report.NewChart("Figure 8", "Average query cost (probes)", "Unsatisfied queries")
	if err := chart.Add(report.Series{Name: "Fixed extent", X: fx, Y: fy}); err != nil {
		return nil, err
	}
	if err := chart.Add(report.Series{Name: "Iterative deepening", X: []float64{idAvgCost}, Y: []float64{idRate}}); err != nil {
		return nil, err
	}
	if err := chart.Add(report.Series{
		Name: "GUESS (Random, MFS)",
		X:    []float64{gr.ProbesPerQuery(), gm.ProbesPerQuery()},
		Y:    []float64{gr.UnsatisfactionWithAborted(), gm.UnsatisfactionWithAborted()},
	}); err != nil {
		return nil, err
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}

// selectionPolicies are the Section 6.2 contenders.
var selectionPolicies = []policy.Selection{
	policy.SelRandom, policy.SelMRU, policy.SelLRU, policy.SelMFS, policy.SelMR,
}

func setQueryProbe(p *core.Params, s policy.Selection) { p.QueryProbe = s }
func setQueryPong(p *core.Params, s policy.Selection)  { p.QueryPong = s }

// selectionSweepSpecs builds one simulation per selection policy with
// the given field set, everything else at defaults. The sweep is
// memoized under the swept field's name: Figures 10 and 12 are two
// projections of the identical QueryPong sweep, so the second figure
// is free.
func selectionSweepSpecs(opts Options, field string, set func(*core.Params, policy.Selection)) []Spec {
	params := make([]core.Params, len(selectionPolicies))
	for i, sel := range selectionPolicies {
		p := opts.baseParams()
		set(&p, sel)
		params[i] = p
	}
	return []Spec{{Family: FamilyGUESS, Label: "selectionSweep:" + field, Core: params}}
}

func probesByPolicyTable(title string, policies []policy.Selection, results []*core.Results) *report.Table {
	t := report.NewTable(title, "Policy", "GoodProbes", "DeadProbes", "TotalProbes")
	for i, sel := range policies {
		r := results[i]
		t.AddRow(sel.String(), r.GoodProbesPerQuery(), r.DeadProbesPerQuery(), r.ProbesPerQuery())
	}
	return t
}

func fig9Render(_ Options, batches [][]PointResult) (*Result, error) {
	t := probesByPolicyTable("Figure 9: probes per query by QueryProbe policy",
		selectionPolicies, coreResultsOf(batches[0]))
	return &Result{Tables: []*report.Table{t}}, nil
}

func fig10Render(_ Options, batches [][]PointResult) (*Result, error) {
	t := probesByPolicyTable("Figure 10: probes per query by QueryPong policy",
		selectionPolicies, coreResultsOf(batches[0]))
	return &Result{Tables: []*report.Table{t}}, nil
}

// evictionPolicies are the Figure 11 contenders.
var evictionPolicies = []policy.Eviction{
	policy.EvRandom, policy.EvLRU, policy.EvMRU, policy.EvLFS, policy.EvLR,
}

func fig11Specs(opts Options) []Spec {
	params := make([]core.Params, len(evictionPolicies))
	for i, ev := range evictionPolicies {
		p := opts.baseParams()
		p.CacheReplacement = ev
		params[i] = p
	}
	return []Spec{{Family: FamilyGUESS, Label: "evictionSweep:CacheReplacement", Core: params}}
}

func fig11Render(_ Options, batches [][]PointResult) (*Result, error) {
	results := coreResultsOf(batches[0])
	t := report.NewTable("Figure 11: probes per query by CacheReplacement policy",
		"Policy", "GoodProbes", "DeadProbes", "TotalProbes")
	for i, ev := range evictionPolicies {
		r := results[i]
		t.AddRow(ev.String(), r.GoodProbesPerQuery(), r.DeadProbesPerQuery(), r.ProbesPerQuery())
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func fig12Render(_ Options, batches [][]PointResult) (*Result, error) {
	results := coreResultsOf(batches[0])
	t := report.NewTable("Figure 12: unsatisfied queries by QueryPong policy",
		"Policy", "Unsatisfaction")
	for i, sel := range selectionPolicies {
		t.AddRow(sel.String(), results[i].UnsatisfactionWithAborted())
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

// fig13Combos are the Figure 13 policy combinations.
var fig13Combos = []struct {
	name  string
	probe policy.Selection
	repl  policy.Eviction
}{
	{"Random/Random", policy.SelRandom, policy.EvRandom},
	{"MFS/LFS", policy.SelMFS, policy.EvLFS},
	{"MR/LR", policy.SelMR, policy.EvLR},
	{"MRU/LRU", policy.SelMRU, policy.EvLRU},
}

func fig13Specs(opts Options) []Spec {
	params := make([]core.Params, len(fig13Combos))
	for i, c := range fig13Combos {
		p := opts.baseParams()
		p.QueryProbe = c.probe
		p.CacheReplacement = c.repl
		params[i] = p
	}
	return []Spec{{Family: FamilyGUESS, Core: params}}
}

func fig13Render(_ Options, batches [][]PointResult) (*Result, error) {
	results := coreResultsOf(batches[0])
	ranks := []int{1, 2, 3, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	cols := []string{"Rank"}
	for _, c := range fig13Combos {
		cols = append(cols, c.name)
	}
	t := report.NewTable("Figure 13: probes received by peer rank", cols...)
	ranked := make([][]int64, len(fig13Combos))
	for i := range fig13Combos {
		ranked[i] = results[i].RankedLoads()
	}
	for _, rank := range ranks {
		row := make([]any, 0, len(cols))
		row = append(row, rank)
		filled := false
		for i := range fig13Combos {
			if rank <= len(ranked[i]) {
				row = append(row, ranked[i][rank-1])
				filled = true
			} else {
				row = append(row, "-")
			}
		}
		if !filled {
			break
		}
		t.AddRow(row...)
	}
	// Also report total load, showing the fairness/efficiency trade-off.
	totals := make([]any, 0, len(cols))
	totals = append(totals, "total")
	for i := range fig13Combos {
		totals = append(totals, results[i].TotalLoad())
	}
	t.AddRow(totals...)
	return &Result{Tables: []*report.Table{t}}, nil
}
