// Package exempt poses as repro/internal/report, which is outside the
// deterministic set; maporder must stay quiet even for order-sensitive
// map iteration.
package exempt

func anyKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
