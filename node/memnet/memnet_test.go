package memnet

import (
	"errors"
	"net"
	"net/netip"
	"os"
	"testing"
	"time"

	"repro/internal/dist"
)

func TestBasicDelivery(t *testing.T) {
	nw := New(1)
	a := nw.Listen()
	b := nw.Listen()
	defer a.Close()
	defer b.Close()

	msg := []byte("hello")
	if _, err := a.WriteTo(msg, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	b.SetReadDeadline(time.Now().Add(time.Second))
	n, from, err := b.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello" {
		t.Fatalf("payload %q", buf[:n])
	}
	if from.String() != a.LocalAddr().String() {
		t.Fatalf("from = %v, want %v", from, a.LocalAddr())
	}
}

func TestDistinctAddresses(t *testing.T) {
	nw := New(1)
	a := nw.Listen()
	b := nw.Listen()
	if a.LocalAddr().String() == b.LocalAddr().String() {
		t.Fatal("endpoints share an address")
	}
}

func TestReadDeadline(t *testing.T) {
	nw := New(1)
	c := nw.Listen()
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 8)
	_, _, err := c.ReadFrom(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Expired deadline fails immediately.
	c.SetReadDeadline(time.Now().Add(-time.Second))
	if _, _, err := c.ReadFrom(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestClose(t *testing.T) {
	nw := New(1)
	a := nw.Listen()
	b := nw.Listen()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("Close not idempotent")
	}
	// Reads on a closed conn fail.
	if _, _, err := b.ReadFrom(make([]byte, 8)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	// Writes to a closed endpoint vanish; writes from a closed conn
	// fail.
	if _, err := a.WriteTo([]byte("x"), b.LocalAddr()); err != nil {
		t.Fatal("write to dead endpoint should not error (UDP semantics)")
	}
	if _, err := b.WriteTo([]byte("x"), a.LocalAddr()); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write from closed conn: %v", err)
	}
}

func TestPartition(t *testing.T) {
	nw := New(1)
	a := nw.Listen()
	b := nw.Listen()
	defer a.Close()
	defer b.Close()
	nw.Partition(addrPortOf(t, b))
	if _, err := a.WriteTo([]byte("x"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := b.ReadFrom(make([]byte, 8)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("partitioned endpoint still received: %v", err)
	}
}

func TestLossDropsRoughlyFraction(t *testing.T) {
	nw := New(7)
	nw.SetLoss(0.5)
	a := nw.Listen()
	b := nw.Listen()
	defer a.Close()
	defer b.Close()
	const sent = 400
	for i := 0; i < sent; i++ {
		if _, err := a.WriteTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	buf := make([]byte, 8)
	for {
		b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
		if _, _, err := b.ReadFrom(buf); err != nil {
			break
		}
		received++
	}
	if received < sent/4 || received > 3*sent/4 {
		t.Fatalf("received %d of %d at 50%% loss", received, sent)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	nw := New(1)
	nw.SetLatency(60 * time.Millisecond)
	a := nw.Listen()
	b := nw.Listen()
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if _, err := a.WriteTo([]byte("x"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := b.ReadFrom(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~60ms", elapsed)
	}
}

func TestPayloadIsolated(t *testing.T) {
	nw := New(1)
	a := nw.Listen()
	b := nw.Listen()
	defer a.Close()
	defer b.Close()
	msg := []byte("mutate-me")
	if _, err := a.WriteTo(msg, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X' // sender reuses its buffer
	buf := make([]byte, 16)
	b.SetReadDeadline(time.Now().Add(time.Second))
	n, _, err := b.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "mutate-me" {
		t.Fatalf("payload shared with sender buffer: %q", buf[:n])
	}
}

func addrPortOf(t *testing.T, c *Conn) netip.AddrPort {
	t.Helper()
	u, ok := c.LocalAddr().(*net.UDPAddr)
	if !ok {
		t.Fatal("unexpected addr type")
	}
	return u.AddrPort()
}

func TestSetWriteDeadline(t *testing.T) {
	nw := New(1)
	c := nw.Listen()
	defer c.Close()
	if err := c.SetWriteDeadline(time.Time{}); err != nil {
		t.Fatalf("clearing write deadline: %v", err)
	}
	err := c.SetWriteDeadline(time.Now().Add(time.Second))
	if !errors.Is(err, ErrWriteDeadlineUnsupported) {
		t.Fatalf("SetWriteDeadline = %v, want ErrWriteDeadlineUnsupported", err)
	}
	// The conn still works after the refused call.
	if _, err := c.WriteTo([]byte("x"), c.LocalAddr()); err != nil {
		t.Fatal(err)
	}
}

// recvAll drains b until a read deadline expires, returning payloads.
func recvAll(t *testing.T, b *Conn, wait time.Duration) [][]byte {
	t.Helper()
	var got [][]byte
	buf := make([]byte, 2048)
	for {
		b.SetReadDeadline(time.Now().Add(wait))
		n, _, err := b.ReadFrom(buf)
		if err != nil {
			return got
		}
		got = append(got, append([]byte(nil), buf[:n]...))
	}
}

func TestPerLinkProfileOverride(t *testing.T) {
	nw := New(1)
	a, b := nw.Listen(), nw.Listen()
	defer a.Close()
	defer b.Close()
	// a->b loses everything; b->a is untouched.
	nw.SetLink(a.AddrPort(), b.AddrPort(), LinkProfile{Loss: 1})
	for i := 0; i < 5; i++ {
		if _, err := a.WriteTo([]byte("x"), b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		if _, err := b.WriteTo([]byte("y"), a.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	if got := recvAll(t, b, 30*time.Millisecond); len(got) != 0 {
		t.Fatalf("lossy link delivered %d packets", len(got))
	}
	if got := recvAll(t, a, 30*time.Millisecond); len(got) != 5 {
		t.Fatalf("clean reverse link delivered %d of 5", len(got))
	}
	nw.ClearLink(a.AddrPort(), b.AddrPort())
	if _, err := a.WriteTo([]byte("x"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if got := recvAll(t, b, 30*time.Millisecond); len(got) != 1 {
		t.Fatalf("cleared link delivered %d of 1", len(got))
	}
}

func TestDuplication(t *testing.T) {
	nw := New(1)
	nw.SetDefaultProfile(LinkProfile{DupProb: 1})
	a, b := nw.Listen(), nw.Listen()
	defer a.Close()
	defer b.Close()
	if _, err := a.WriteTo([]byte("twice"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	got := recvAll(t, b, 30*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("DupProb=1 delivered %d copies, want 2", len(got))
	}
	if s := nw.Stats(); s.Duplicated != 1 || s.Delivered != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestReorderHoldsPacketBack(t *testing.T) {
	nw := New(1)
	a, b := nw.Listen(), nw.Listen()
	defer a.Close()
	defer b.Close()
	// First packet is held back 50ms; then the link turns clean and the
	// second packet overtakes it.
	nw.SetLink(a.AddrPort(), b.AddrPort(), LinkProfile{ReorderProb: 1, ReorderDelay: 50 * time.Millisecond})
	if _, err := a.WriteTo([]byte("first"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	nw.SetLink(a.AddrPort(), b.AddrPort(), LinkProfile{})
	if _, err := a.WriteTo([]byte("second"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	got := recvAll(t, b, 120*time.Millisecond)
	if len(got) != 2 || string(got[0]) != "second" || string(got[1]) != "first" {
		t.Fatalf("order = %q, want [second first]", got)
	}
	if s := nw.Stats(); s.Reordered != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMTUTruncation(t *testing.T) {
	nw := New(1)
	nw.SetDefaultProfile(LinkProfile{MTU: 5})
	a, b := nw.Listen(), nw.Listen()
	defer a.Close()
	defer b.Close()
	if _, err := a.WriteTo([]byte("0123456789"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	got := recvAll(t, b, 30*time.Millisecond)
	if len(got) != 1 || string(got[0]) != "01234" {
		t.Fatalf("got %q, want truncated to %q", got, "01234")
	}
	if s := nw.Stats(); s.Truncated != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestJitterDelaysDelivery(t *testing.T) {
	nw := New(1)
	nw.SetDefaultProfile(LinkProfile{Jitter: dist.Constant{V: 0.06}})
	a, b := nw.Listen(), nw.Listen()
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if _, err := a.WriteTo([]byte("x"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := b.ReadFrom(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("jittered packet arrived after %v, want >= ~60ms", elapsed)
	}
}

func TestBlockUnblockAsymmetric(t *testing.T) {
	nw := New(1)
	a, b := nw.Listen(), nw.Listen()
	defer a.Close()
	defer b.Close()
	nw.Block(a.AddrPort(), b.AddrPort())
	if _, err := a.WriteTo([]byte("x"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if got := recvAll(t, b, 30*time.Millisecond); len(got) != 0 {
		t.Fatalf("blocked direction delivered %d packets", len(got))
	}
	// Reverse direction unaffected.
	if _, err := b.WriteTo([]byte("y"), a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if got := recvAll(t, a, 30*time.Millisecond); len(got) != 1 {
		t.Fatalf("reverse direction delivered %d of 1", len(got))
	}
	if s := nw.Stats(); s.Blocked != 1 {
		t.Fatalf("stats %+v", s)
	}
	// Healing restores delivery.
	nw.Unblock(a.AddrPort(), b.AddrPort())
	if _, err := a.WriteTo([]byte("x"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if got := recvAll(t, b, 30*time.Millisecond); len(got) != 1 {
		t.Fatalf("healed direction delivered %d of 1", len(got))
	}
}

func TestIsolateHeal(t *testing.T) {
	nw := New(1)
	a, b := nw.Listen(), nw.Listen()
	defer a.Close()
	defer b.Close()
	nw.Isolate(b.AddrPort())
	a.WriteTo([]byte("in"), b.LocalAddr())
	b.WriteTo([]byte("out"), a.LocalAddr())
	if got := recvAll(t, b, 30*time.Millisecond); len(got) != 0 {
		t.Fatal("isolated endpoint received")
	}
	if got := recvAll(t, a, 30*time.Millisecond); len(got) != 0 {
		t.Fatal("isolated endpoint's packets escaped")
	}
	nw.Heal(b.AddrPort())
	a.WriteTo([]byte("in"), b.LocalAddr())
	b.WriteTo([]byte("out"), a.LocalAddr())
	if got := recvAll(t, b, 30*time.Millisecond); len(got) != 1 {
		t.Fatal("healed endpoint did not receive")
	}
	if got := recvAll(t, a, 30*time.Millisecond); len(got) != 1 {
		t.Fatal("healed endpoint's packets still blocked")
	}
}

func TestStatsAccountForEveryPacket(t *testing.T) {
	nw := New(3)
	nw.SetDefaultProfile(LinkProfile{Loss: 0.3, DupProb: 0.3})
	a, b := nw.Listen(), nw.Listen()
	defer a.Close()
	defer b.Close()
	for i := 0; i < 300; i++ {
		if _, err := a.WriteTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	recvAll(t, b, 30*time.Millisecond)
	s := nw.Stats()
	if s.Sent != 300 {
		t.Fatalf("sent %d, want 300", s.Sent)
	}
	if s.Sent+s.Duplicated != s.Delivered+s.Dropped+s.Blocked+s.QueueDrop {
		t.Fatalf("accounting broken: %+v", s)
	}
	if s.Dropped == 0 || s.Duplicated == 0 {
		t.Fatalf("faults never fired: %+v", s)
	}
}

// TestDeterministicFaultPattern: identical seeds must produce the
// identical per-link fault decision sequence; a different seed must
// not.
func TestDeterministicFaultPattern(t *testing.T) {
	pattern := func(seed uint64) string {
		nw := New(seed)
		nw.SetDefaultProfile(LinkProfile{Loss: 0.5})
		a, b := nw.Listen(), nw.Listen()
		defer a.Close()
		defer b.Close()
		out := make([]byte, 0, 64)
		for i := 0; i < 64; i++ {
			if _, err := a.WriteTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
				t.Fatal(err)
			}
			// Zero-latency links deliver inline, so presence is checkable
			// immediately.
			b.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
			if _, _, err := b.ReadFrom(make([]byte, 8)); err == nil {
				out = append(out, '1')
			} else {
				out = append(out, '0')
			}
		}
		return string(out)
	}
	p1, p2 := pattern(77), pattern(77)
	if p1 != p2 {
		t.Fatalf("same seed diverged:\n%s\n%s", p1, p2)
	}
	if p3 := pattern(78); p3 == p1 {
		t.Fatal("different seeds produced identical fault pattern (suspicious)")
	}
}

// TestCrossLinkDeterminism: decisions on one link must not depend on
// traffic on another link.
func TestCrossLinkDeterminism(t *testing.T) {
	pattern := func(noise int) string {
		nw := New(13)
		nw.SetDefaultProfile(LinkProfile{Loss: 0.5})
		a, b := nw.Listen(), nw.Listen()
		c, d := nw.Listen(), nw.Listen()
		defer a.Close()
		defer b.Close()
		defer c.Close()
		defer d.Close()
		out := make([]byte, 0, 32)
		for i := 0; i < 32; i++ {
			for j := 0; j < noise; j++ {
				c.WriteTo([]byte("noise"), d.LocalAddr())
			}
			a.WriteTo([]byte{byte(i)}, b.LocalAddr())
			b.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
			if _, _, err := b.ReadFrom(make([]byte, 8)); err == nil {
				out = append(out, '1')
			} else {
				out = append(out, '0')
			}
		}
		return string(out)
	}
	if p0, p3 := pattern(0), pattern(3); p0 != p3 {
		t.Fatalf("a->b pattern depends on c->d traffic:\n%s\n%s", p0, p3)
	}
}
