package experiments

import (
	"context"
	"fmt"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/gnutella"
	"repro/internal/gossip"
	"repro/internal/obs"
	"repro/internal/simrng"
)

// Observation carries the per-run observability attachments a Runner
// threads into its engine. Either field may be nil. Metrics applies to
// GUESS runs only (the other families expose their own metric sets,
// which sweeps do not currently attach).
type Observation struct {
	Observer obs.Observer
	Metrics  *obs.SimMetrics
}

// Runner executes single sweep points for one protocol family. All
// four families implement it, which is what lets a distributed worker
// execute any Point it is handed: the point's family discriminator
// selects the Runner, and the parameters are complete — no closure or
// figure ID resolves behind the call.
//
// A Runner must be deterministic (equal points give identical results)
// and must honor ctx: cancellation mid-run returns ctx.Err() rather
// than a partial result, so partial runs can never enter a cache.
type Runner interface {
	// FamilyID names the family the runner executes.
	FamilyID() Family
	// RunPoint executes one sweep point.
	RunPoint(ctx context.Context, pt Point, o Observation) (PointResult, error)
}

// RunnerFor returns the Runner for a protocol family.
func RunnerFor(f Family) (Runner, error) {
	switch f {
	case FamilyGUESS:
		return guessRunner{}, nil
	case FamilyFlood:
		return floodRunner{}, nil
	case FamilyGossip:
		return gossipRunner{}, nil
	case FamilyDHT:
		return dhtRunner{}, nil
	}
	return nil, fmt.Errorf("experiments: no runner for family %q", f)
}

// RunPoint validates and executes one sweep point with the family's
// Runner. This is the distributed worker's entry: everything the run
// needs is inside pt.
func RunPoint(ctx context.Context, pt Point, o Observation) (PointResult, error) {
	if err := pt.Validate(); err != nil {
		return PointResult{}, err
	}
	r, err := RunnerFor(pt.Family)
	if err != nil {
		return PointResult{}, err
	}
	return r.RunPoint(ctx, pt, o)
}

// guessRunner executes GUESS points on a fresh core engine per point.
// (The in-process sweep pool instead chains engines through Renew to
// recycle arenas; TestRenewMatchesFresh proves the two are
// byte-identical, which is what makes local and distributed sweeps
// interchangeable.)
type guessRunner struct{}

func (guessRunner) FamilyID() Family { return FamilyGUESS }

func (guessRunner) RunPoint(ctx context.Context, pt Point, o Observation) (PointResult, error) {
	engine, err := core.New(*pt.Core)
	if err != nil {
		return PointResult{}, err
	}
	engine.SetObserver(o.Observer)
	engine.SetMetrics(o.Metrics)
	res, err := engine.Run(ctx)
	if err != nil {
		return PointResult{}, err
	}
	if res.Interrupted {
		return PointResult{}, ctx.Err()
	}
	return PointResult{Family: FamilyGUESS, Core: res}, nil
}

// floodStream is the RNG stream label flood runs draw from. It keeps
// the "families-flood" name the pre-Spec inline implementation used so
// the cmp-families table is bit-for-bit unchanged by the migration.
const floodStream = "families-flood"

// floodRunner executes flooding points: build the static overlay and
// population, then run the query batch, all from one seeded stream.
type floodRunner struct{}

func (floodRunner) FamilyID() Family { return FamilyFlood }

func (floodRunner) RunPoint(ctx context.Context, pt Point, _ Observation) (PointResult, error) {
	p := *pt.Flood
	if err := p.Validate(); err != nil {
		return PointResult{}, err
	}
	u, err := content.New(p.Content)
	if err != nil {
		return PointResult{}, err
	}
	rng := simrng.New(p.Seed).Stream(floodStream)
	topo, err := gnutella.NewRandom(rng, p.NetworkSize, p.AvgDegree)
	if err != nil {
		return PointResult{}, err
	}
	pop, err := gnutella.NewPopulation(u, p.NetworkSize, rng)
	if err != nil {
		return PointResult{}, err
	}
	out := &FloodResults{PeerLoads: make([]int64, p.NetworkSize)}
	for q := 0; q < p.NumQueries; q++ {
		if ctx != nil && ctx.Err() != nil {
			return PointResult{}, ctx.Err()
		}
		res, fs, err := gnutella.FloodSearch(topo, pop, rng, rng.Intn(p.NetworkSize), p.TTL, p.NumDesiredResults)
		if err != nil {
			return PointResult{}, err
		}
		out.Queries++
		if res.Satisfied {
			out.Satisfied++
		} else {
			out.Unsatisfied++
		}
		out.Messages += int64(fs.Messages)
		for _, v := range fs.Reached {
			out.PeerLoads[v]++
		}
	}
	return PointResult{Family: FamilyFlood, Flood: out}, nil
}

// gossipRunner executes gossip points.
type gossipRunner struct{}

func (gossipRunner) FamilyID() Family { return FamilyGossip }

func (gossipRunner) RunPoint(ctx context.Context, pt Point, o Observation) (PointResult, error) {
	e, err := gossip.New(*pt.Gossip)
	if err != nil {
		return PointResult{}, err
	}
	e.SetObserver(o.Observer)
	res, err := e.Run(ctx)
	if err != nil {
		return PointResult{}, err
	}
	if res.Interrupted {
		return PointResult{}, ctx.Err()
	}
	return PointResult{Family: FamilyGossip, Gossip: res}, nil
}

// dhtRunner executes DHT points.
type dhtRunner struct{}

func (dhtRunner) FamilyID() Family { return FamilyDHT }

func (dhtRunner) RunPoint(ctx context.Context, pt Point, o Observation) (PointResult, error) {
	e, err := dht.New(*pt.DHT)
	if err != nil {
		return PointResult{}, err
	}
	e.SetObserver(o.Observer)
	res, err := e.Run(ctx)
	if err != nil {
		return PointResult{}, err
	}
	if res.Interrupted {
		return PointResult{}, ctx.Err()
	}
	return PointResult{Family: FamilyDHT, DHT: res}, nil
}
