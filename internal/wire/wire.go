// Package wire defines the GUESS datagram protocol: the message
// formats a live (non-simulated) GUESS node exchanges over UDP.
//
// GUESS is specified as a successor to Gnutella that replaces flooded
// TCP messages with unicast UDP probes. This package implements a
// compact binary encoding of the four protocol messages — Ping, Pong,
// Query and QueryHit — plus Busy, the overload refusal the paper's
// capacity-limit mechanism requires (Section 6.3). Per the protocol,
// a QueryHit carries a piggy-backed pong so every probe grows the
// querier's query cache.
//
// Encoding is fixed-layout big-endian with explicit length prefixes,
// sized to fit comfortably in a single non-fragmented UDP datagram.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Protocol constants.
const (
	// Magic prefixes every datagram.
	Magic0, Magic1 = 'G', 'U'
	// Version is the protocol version this package implements.
	Version = 1
	// HeaderSize is the fixed header length in bytes.
	HeaderSize = 14
	// MaxPacket bounds an encoded message (safe single-datagram size).
	MaxPacket = 1400
	// MaxPongEntries bounds the address entries in one pong.
	MaxPongEntries = 32
	// MaxHits bounds result names in one QueryHit.
	MaxHits = 64
	// MaxNameLen bounds a result or keyword string.
	MaxNameLen = 255
)

// Type identifies a message kind.
type Type uint8

// Message types.
const (
	TypePing Type = iota + 1
	TypePong
	TypeQuery
	TypeQueryHit
	TypeBusy
)

// String names the message type.
func (t Type) String() string {
	switch t {
	case TypePing:
		return "Ping"
	case TypePong:
		return "Pong"
	case TypeQuery:
		return "Query"
	case TypeQueryHit:
		return "QueryHit"
	case TypeBusy:
		return "Busy"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ErrMalformed reports an undecodable datagram.
var ErrMalformed = errors.New("wire: malformed message")

// Message is any GUESS protocol message.
type Message interface {
	// Type returns the message kind.
	Type() Type
	// ID returns the correlation identifier (echoed in replies).
	ID() uint64

	encodePayload(dst []byte) ([]byte, error)
}

// PongEntry is one shared cache pointer: the on-the-wire form of the
// paper's {IP, TS, NumFiles, NumRes} cache entry. TS is omitted — a
// receiver timestamps entries itself (trusting a remote clock would be
// meaningless).
type PongEntry struct {
	// Addr is the peer's UDP address (IPv4 or IPv6).
	Addr netip.AddrPort
	// NumFiles is the number of files the peer advertises.
	NumFiles uint32
	// NumRes is the number of results it last returned.
	NumRes uint16
}

// Ping is the cache-maintenance probe. The sender advertises its own
// file count so the receiver's introduction protocol can build a cache
// entry for it.
type Ping struct {
	MsgID    uint64
	NumFiles uint32
}

// Pong answers a Ping with shared cache entries.
type Pong struct {
	MsgID   uint64
	Entries []PongEntry
}

// Query is a unicast probe asking for up to Desired results matching
// Keyword. NumFiles advertises the sender for introduction.
type Query struct {
	MsgID    uint64
	Desired  uint8
	NumFiles uint32
	Keyword  string
}

// QueryHit answers a Query with matching file names and a piggy-backed
// pong.
type QueryHit struct {
	MsgID   uint64
	Results []string
	Pong    []PongEntry
}

// Busy tells a prober the receiver is over its probe capacity and the
// prober should back off.
type Busy struct {
	MsgID uint64
}

// Interface compliance.
var (
	_ Message = (*Ping)(nil)
	_ Message = (*Pong)(nil)
	_ Message = (*Query)(nil)
	_ Message = (*QueryHit)(nil)
	_ Message = (*Busy)(nil)
)

// Type implements Message.
func (*Ping) Type() Type     { return TypePing }
func (*Pong) Type() Type     { return TypePong }
func (*Query) Type() Type    { return TypeQuery }
func (*QueryHit) Type() Type { return TypeQueryHit }
func (*Busy) Type() Type     { return TypeBusy }

// ID implements Message.
func (m *Ping) ID() uint64     { return m.MsgID }
func (m *Pong) ID() uint64     { return m.MsgID }
func (m *Query) ID() uint64    { return m.MsgID }
func (m *QueryHit) ID() uint64 { return m.MsgID }
func (m *Busy) ID() uint64     { return m.MsgID }

// Encode serializes a message into a fresh buffer.
func Encode(m Message) ([]byte, error) {
	buf := make([]byte, HeaderSize, 64)
	buf[0], buf[1], buf[2] = Magic0, Magic1, Version
	buf[3] = byte(m.Type())
	binary.BigEndian.PutUint64(buf[4:12], m.ID())
	buf, err := m.encodePayload(buf)
	if err != nil {
		return nil, err
	}
	payloadLen := len(buf) - HeaderSize
	if payloadLen > MaxPacket-HeaderSize {
		return nil, fmt.Errorf("wire: %s payload %d bytes exceeds packet budget", m.Type(), payloadLen)
	}
	binary.BigEndian.PutUint16(buf[12:14], uint16(payloadLen))
	return buf, nil
}

func (m *Ping) encodePayload(dst []byte) ([]byte, error) {
	return binary.BigEndian.AppendUint32(dst, m.NumFiles), nil
}

func (m *Pong) encodePayload(dst []byte) ([]byte, error) {
	return appendEntries(dst, m.Entries)
}

func (m *Query) encodePayload(dst []byte) ([]byte, error) {
	if len(m.Keyword) > MaxNameLen {
		return nil, fmt.Errorf("wire: keyword %d bytes exceeds %d", len(m.Keyword), MaxNameLen)
	}
	dst = append(dst, m.Desired)
	dst = binary.BigEndian.AppendUint32(dst, m.NumFiles)
	dst = append(dst, byte(len(m.Keyword)))
	return append(dst, m.Keyword...), nil
}

func (m *QueryHit) encodePayload(dst []byte) ([]byte, error) {
	if len(m.Results) > MaxHits {
		return nil, fmt.Errorf("wire: %d results exceed %d", len(m.Results), MaxHits)
	}
	dst = append(dst, byte(len(m.Results)))
	for _, name := range m.Results {
		if len(name) > MaxNameLen {
			return nil, fmt.Errorf("wire: result name %d bytes exceeds %d", len(name), MaxNameLen)
		}
		dst = append(dst, byte(len(name)))
		dst = append(dst, name...)
	}
	return appendEntries(dst, m.Pong)
}

func (m *Busy) encodePayload(dst []byte) ([]byte, error) { return dst, nil }

// appendEntries writes a count-prefixed pong entry list.
func appendEntries(dst []byte, entries []PongEntry) ([]byte, error) {
	if len(entries) > MaxPongEntries {
		return nil, fmt.Errorf("wire: %d pong entries exceed %d", len(entries), MaxPongEntries)
	}
	dst = append(dst, byte(len(entries)))
	for _, e := range entries {
		if !e.Addr.IsValid() {
			return nil, fmt.Errorf("wire: invalid pong entry address")
		}
		addr := e.Addr.Addr()
		if addr.Is4() {
			dst = append(dst, 4)
			b := addr.As4()
			dst = append(dst, b[:]...)
		} else {
			dst = append(dst, 16)
			b := addr.As16()
			dst = append(dst, b[:]...)
		}
		dst = binary.BigEndian.AppendUint16(dst, e.Addr.Port())
		dst = binary.BigEndian.AppendUint32(dst, e.NumFiles)
		dst = binary.BigEndian.AppendUint16(dst, e.NumRes)
	}
	return dst, nil
}

// Decode parses a datagram. It returns ErrMalformed (wrapped with
// detail) for anything that does not parse exactly.
func Decode(pkt []byte) (Message, error) {
	if len(pkt) < HeaderSize {
		return nil, fmt.Errorf("%w: %d bytes < header", ErrMalformed, len(pkt))
	}
	if pkt[0] != Magic0 || pkt[1] != Magic1 {
		return nil, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	if pkt[2] != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrMalformed, pkt[2])
	}
	msgType := Type(pkt[3])
	msgID := binary.BigEndian.Uint64(pkt[4:12])
	payloadLen := int(binary.BigEndian.Uint16(pkt[12:14]))
	payload := pkt[HeaderSize:]
	if len(payload) != payloadLen {
		return nil, fmt.Errorf("%w: payload length %d, declared %d", ErrMalformed, len(payload), payloadLen)
	}
	r := reader{buf: payload}
	switch msgType {
	case TypePing:
		numFiles, err := r.uint32()
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		return &Ping{MsgID: msgID, NumFiles: numFiles}, nil
	case TypePong:
		entries, err := r.entries()
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		return &Pong{MsgID: msgID, Entries: entries}, nil
	case TypeQuery:
		desired, err := r.byte()
		if err != nil {
			return nil, err
		}
		numFiles, err := r.uint32()
		if err != nil {
			return nil, err
		}
		keyword, err := r.shortString()
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		return &Query{MsgID: msgID, Desired: desired, NumFiles: numFiles, Keyword: keyword}, nil
	case TypeQueryHit:
		count, err := r.byte()
		if err != nil {
			return nil, err
		}
		if int(count) > MaxHits {
			return nil, fmt.Errorf("%w: %d hits exceed %d", ErrMalformed, count, MaxHits)
		}
		results := make([]string, 0, count)
		for i := 0; i < int(count); i++ {
			name, err := r.shortString()
			if err != nil {
				return nil, err
			}
			results = append(results, name)
		}
		entries, err := r.entries()
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		return &QueryHit{MsgID: msgID, Results: results, Pong: entries}, nil
	case TypeBusy:
		if err := r.done(); err != nil {
			return nil, err
		}
		return &Busy{MsgID: msgID}, nil
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrMalformed, pkt[3])
	}
}

// reader is a bounds-checked cursor over a payload.
type reader struct {
	buf []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if r.off+n > len(r.buf) {
		return nil, fmt.Errorf("%w: truncated payload", ErrMalformed)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) byte() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) uint16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) uint32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) shortString() (string, error) {
	n, err := r.byte()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) entries() ([]PongEntry, error) {
	count, err := r.byte()
	if err != nil {
		return nil, err
	}
	if int(count) > MaxPongEntries {
		return nil, fmt.Errorf("%w: %d pong entries exceed %d", ErrMalformed, count, MaxPongEntries)
	}
	entries := make([]PongEntry, 0, count)
	for i := 0; i < int(count); i++ {
		size, err := r.byte()
		if err != nil {
			return nil, err
		}
		if size != 4 && size != 16 {
			return nil, fmt.Errorf("%w: address size %d", ErrMalformed, size)
		}
		raw, err := r.take(int(size))
		if err != nil {
			return nil, err
		}
		var addr netip.Addr
		if size == 4 {
			addr = netip.AddrFrom4([4]byte(raw))
		} else {
			addr = netip.AddrFrom16([16]byte(raw))
		}
		port, err := r.uint16()
		if err != nil {
			return nil, err
		}
		numFiles, err := r.uint32()
		if err != nil {
			return nil, err
		}
		numRes, err := r.uint16()
		if err != nil {
			return nil, err
		}
		entries = append(entries, PongEntry{
			Addr:     netip.AddrPortFrom(addr, port),
			NumFiles: numFiles,
			NumRes:   numRes,
		})
	}
	return entries, nil
}

func (r *reader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.buf)-r.off)
	}
	return nil
}
