package dht

// Fixed-seed golden tests pinning the DHT engine's Results JSON and
// full query trace (hop attempts included — DHT hop counts are small),
// mirroring internal/core/golden_trace_test.go. Regenerate with
// `go test ./internal/dht -run Golden -update` after an intentional
// schema change.

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenParams is a deliberately tiny fixed-seed run.
func goldenParams() Params {
	p := DefaultParams()
	p.NetworkSize = 64
	p.NumLookups = 20
	p.DeadFraction = 0.1
	p.LossProb = 0.05
	p.Seed = 42
	return p
}

func TestGoldenRun(t *testing.T) {
	var jsonl strings.Builder
	tw := obs.NewTraceWriter(&jsonl).Mask(obs.QueryEventMask)

	e, err := New(goldenParams())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e.SetMetrics(obs.NewDHTMetrics(reg))
	e.SetObserver(tw)
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}

	checkGolden(t, "golden_results.json", marshal(t, res)+"\n")
	checkGolden(t, "golden_query_trace.jsonl", jsonl.String())
	checkGolden(t, "golden_metrics.prom", prom.String())
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("%s line %d:\ngot:  %q\nwant: %q\n(run with -update after intentional changes)",
					name, i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("%s length changed: %d vs %d lines (run with -update after intentional changes)",
			name, len(gotLines), len(wantLines))
	}
}
