package orchestrate

// The acceptance tests for distributed sweeps: a sweep run across
// workers over the wire must be byte-identical to the single-process
// path — results, rendered tables/CSV, and metrics.

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/experiments"
	"repro/internal/gossip"
	"repro/internal/obs"
)

// tinySweepSpec is a minimal-cost GUESS sweep with distinct points.
func tinySweepSpec(n int) experiments.Spec {
	params := make([]core.Params, n)
	for i := range params {
		p := core.DefaultParams()
		p.NetworkSize = 30
		p.CacheSize = 5 + i
		p.WarmupTime = 5
		p.MeasureTime = 20
		p.Seed = 7
		params[i] = p
	}
	return experiments.Spec{Family: experiments.FamilyGUESS, Core: params}
}

// TestDistributedSweepMatchesLocal is the core byte-identity check: a
// 2-worker sweep over memnet streams returns results identical to the
// in-process pool, for every protocol family, including replication
// expansion.
func TestDistributedSweepMatchesLocal(t *testing.T) {
	gp := gossip.DefaultParams()
	gp.NetworkSize = 40
	gp.NumQueries = 8
	dp := dht.DefaultParams()
	dp.NetworkSize = 40
	dp.NumLookups = 8
	fp := experiments.DefaultFloodParams()
	fp.NetworkSize = 40
	fp.NumQueries = 8
	specs := []experiments.Spec{
		tinySweepSpec(4),
		{Family: experiments.FamilyFlood, Flood: []experiments.FloodParams{fp}},
		{Family: experiments.FamilyGossip, Gossip: []gossip.Params{gp}},
		{Family: experiments.FamilyDHT, DHT: []dht.Params{dp}},
	}

	pool, err := NewLocalPool(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	for _, spec := range specs {
		opts := experiments.Options{Replications: 2}
		local, err := experiments.RunSpec(opts, spec)
		if err != nil {
			t.Fatalf("%s local: %v", spec.Family, err)
		}
		opts.Executor = pool
		dist, err := experiments.RunSpec(opts, spec)
		if err != nil {
			t.Fatalf("%s distributed: %v", spec.Family, err)
		}
		a, _ := json.Marshal(local)
		b, _ := json.Marshal(dist)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: distributed results differ from local:\n%s\n%s", spec.Family, a, b)
		}
	}
}

// TestDistributedExperimentByteIdentity runs a whole experiment —
// specs, execution, rendering — through a 2-worker pool and compares
// the rendered tables byte for byte against the single-process run.
// fig6 is used because it is deliberately unmemoized, so the executor
// really executes every point.
func TestDistributedExperimentByteIdentity(t *testing.T) {
	exp, err := experiments.Lookup("fig6")
	if err != nil {
		t.Fatal(err)
	}
	local, err := exp.Run(experiments.Options{Scale: experiments.Quick})
	if err != nil {
		t.Fatal(err)
	}

	pool, err := NewLocalPool(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dist, err := exp.Run(experiments.Options{Scale: experiments.Quick, Executor: pool})
	if err != nil {
		t.Fatal(err)
	}

	var want, got bytes.Buffer
	if _, err := local.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if _, err := dist.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("rendered output differs between local and 2-worker runs:\n--- local ---\n%s\n--- distributed ---\n%s", want.Bytes(), got.Bytes())
	}
	if s := pool.Stats(); s.Executed == 0 {
		t.Fatal("executor was never used — memoization swallowed the sweep")
	}
}

// TestDistributedMetricsMatchSerial checks metric aggregation: the
// coordinator's merged registry reproduces a serial single-process
// run's registry — exactly for every integer-valued series (counters,
// histogram bucket counts and counts) and gauges, and to within float
// summation reassociation for histogram sums. Byte-stability across
// worker counts is exact: 1-worker and 4-worker runs must render
// identical Prometheus text.
func TestDistributedMetricsMatchSerial(t *testing.T) {
	spec := tinySweepSpec(5)

	// Serial single-process reference: one shared registry.
	serialReg := obs.NewRegistry()
	if _, err := experiments.RunSpec(experiments.Options{Parallelism: 1, Metrics: obs.NewSimMetrics(serialReg)}, spec); err != nil {
		t.Fatal(err)
	}
	serial := serialReg.Snapshot()

	distSnap := func(workers int) (snap obs.Snapshot, prom string) {
		reg := obs.NewRegistry()
		obs.NewSimMetrics(reg) // pre-register, as the CLI does
		pool, err := NewLocalPool(workers, Config{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		if _, err := experiments.RunSpec(experiments.Options{Executor: pool}, spec); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot(), sb.String()
	}

	one, prom1 := distSnap(1)
	_, prom4 := distSnap(4)

	// Worker count must not change a single byte.
	if prom1 != prom4 {
		t.Fatalf("metrics differ between 1-worker and 4-worker runs:\n%s\n%s", prom1, prom4)
	}

	// Counters: exact.
	//lint:maporder-ok per-name equality checks; order affects nothing but failure order
	for name, want := range serial.Counters {
		if got := one.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	// Gauges: exact (unit-order fold ends on the last unit's sample,
	// same as a serial run).
	//lint:maporder-ok per-name equality checks; order affects nothing but failure order
	for name, want := range serial.Gauges {
		if got := one.Gauges[name]; got != want {
			t.Errorf("gauge %s = %v, want %v", name, got, want)
		}
	}
	// Histograms: counts and buckets exact; sums may reassociate.
	//lint:maporder-ok per-name equality checks; order affects nothing but failure order
	for name, want := range serial.Histograms {
		got, ok := one.Histograms[name]
		if !ok {
			t.Errorf("histogram %s missing from merged registry", name)
			continue
		}
		if got.Count != want.Count {
			t.Errorf("histogram %s count = %d, want %d", name, got.Count, want.Count)
		}
		for i := range want.Buckets {
			if got.Buckets[i] != want.Buckets[i] {
				t.Errorf("histogram %s bucket %d = %+v, want %+v", name, i, got.Buckets[i], want.Buckets[i])
			}
		}
		diff := got.Sum - want.Sum
		if diff < 0 {
			diff = -diff
		}
		tol := 1e-9 * (1 + want.Sum)
		if tol < 0 {
			tol = -tol
		}
		if diff > tol {
			t.Errorf("histogram %s sum = %v, want %v (beyond reassociation tolerance)", name, got.Sum, want.Sum)
		}
	}
}

// TestDashboardStreamsProgress checks the dashboard reflects a sweep's
// life: per-unit progress lines in append mode, ending at a complete
// count.
func TestDashboardStreamsProgress(t *testing.T) {
	var out strings.Builder
	dash := NewDashboard(&out, false)
	pool, err := NewLocalPool(2, Config{Dashboard: dash})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	spec := tinySweepSpec(3)
	if _, err := experiments.RunSpec(experiments.Options{Executor: pool}, spec); err != nil {
		t.Fatal(err)
	}
	dash.Finish()

	text := out.String()
	if !strings.Contains(text, "sweep: units 0/3") {
		t.Fatalf("missing start line in dashboard output:\n%s", text)
	}
	if !strings.Contains(text, "units 3/3 done") {
		t.Fatalf("missing completion line in dashboard output:\n%s", text)
	}
	if !strings.Contains(text, "workers 2") {
		t.Fatalf("missing worker count in dashboard output:\n%s", text)
	}
}

// TestDashboardRewriteMode checks terminal mode redraws in place and
// Finish terminates the line exactly once.
func TestDashboardRewriteMode(t *testing.T) {
	var out strings.Builder
	dash := NewDashboard(&out, true)
	dash.update(Stats{UnitsTotal: 2, Workers: 1})
	dash.update(Stats{UnitsTotal: 2, Workers: 1}) // unchanged: no redraw
	dash.update(Stats{UnitsTotal: 2, UnitsDone: 2, Workers: 1})
	dash.Finish()
	dash.Finish() // idempotent

	text := out.String()
	if got := strings.Count(text, "\r"); got != 2 {
		t.Fatalf("redraws = %d, want 2:\n%q", got, text)
	}
	if got := strings.Count(text, "\n"); got != 1 {
		t.Fatalf("newlines = %d, want 1:\n%q", got, text)
	}
	if !strings.HasSuffix(text, "\n") {
		t.Fatalf("Finish did not terminate the line: %q", text)
	}
}

// TestLocalPoolCancellation checks a canceled sweep context unwinds
// cleanly and the pool survives for the next run.
func TestLocalPoolCancellation(t *testing.T) {
	pool, err := NewLocalPool(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.RunPoints(ctx, []experiments.Point{tinySweepSpec(1).Point(0)}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The pool still works afterwards.
	res, err := pool.RunPoints(context.Background(), []experiments.Point{tinySweepSpec(1).Point(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
}
