package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestParallelProgressRace drives two concurrent sweeps that share one
// unsynchronized progress writer. progressMu (package-level, not
// per-call) must serialize the writes; run under -race this fails if
// it ever stops doing so.
func TestParallelProgressRace(t *testing.T) {
	var progress strings.Builder // not safe for concurrent use on its own
	params := make([]core.Params, 6)
	for i := range params {
		params[i] = tinyParams(uint64(i + 1))
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = RunSpec(Options{Parallelism: 2, Progress: &progress}, tinySpec(params))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := strings.Count(progress.String(), "\n"); got != 2*len(params) {
		t.Fatalf("progress wrote %d lines, want %d", got, 2*len(params))
	}
}

// TestRunSpecContextCancel pins the sweep-level cancellation contract:
// a cancelled context stops the sweep and surfaces ctx.Err() (a partial
// sweep is not meaningful, unlike a partial single run).
func TestRunSpecContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	params := []core.Params{tinyParams(1), tinyParams(2), tinyParams(3)}
	_, err := RunSpec(Options{Context: ctx, Parallelism: 2}, tinySpec(params))
	if err != context.Canceled {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
}

// TestRunSpecForwardsObserverAndMetrics checks that sweep options reach
// the engines: the observer sees events from every run and the metrics
// counters aggregate across runs.
func TestRunSpecForwardsObserverAndMetrics(t *testing.T) {
	params := []core.Params{tinyParams(1), tinyParams(2)}
	reg := obs.NewRegistry()
	var mu sync.Mutex
	births := 0
	opts := Options{
		Parallelism: 2,
		Metrics:     obs.NewSimMetrics(reg),
		Observer: obs.ObserverFunc(func(ev obs.Event) {
			if ev.Kind == obs.EvPeerBirth {
				mu.Lock()
				births++
				mu.Unlock()
			}
		}),
	}
	results, err := RunSpec(opts, tinySpec(params))
	if err != nil {
		t.Fatal(err)
	}
	wantBirths := 0
	for _, r := range results {
		wantBirths += r.Core.Births
	}
	if births != wantBirths {
		t.Fatalf("observer saw %d births, results say %d", births, wantBirths)
	}
	if got := reg.Snapshot().Counters["guess_sim_births_total"]; got != uint64(wantBirths) {
		t.Fatalf("metrics aggregated %d births, results say %d", got, wantBirths)
	}
}
