package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/policy"
)

func TestParamsJSONRoundTrip(t *testing.T) {
	p := DefaultParams()
	p.QueryPong = policy.SelMFS
	p.CacheReplacement = policy.EvLFS
	p.PercentBadPeers = 10
	p.BadPong = BadPongBad
	p.Trace = &strings.Builder{} // must be skipped by JSON

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "Trace") {
		t.Fatal("Trace leaked into JSON")
	}
	for _, want := range []string{`"QueryPong":"MFS"`, `"CacheReplacement":"LFS"`, `"BadPong":"Bad"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON missing %s:\n%s", want, data)
		}
	}

	var got Params
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	got.Trace = p.Trace // excluded by design
	p2 := p
	if got != p2 {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p2)
	}
}

func TestParamsJSONRejectsBadNames(t *testing.T) {
	var p Params
	if err := json.Unmarshal([]byte(`{"QueryProbe":"NotAPolicy"}`), &p); err == nil {
		t.Fatal("bad policy name accepted")
	}
	if err := json.Unmarshal([]byte(`{"BadPong":"Evil"}`), &p); err == nil {
		t.Fatal("bad behavior name accepted")
	}
}

func TestBadPongBehaviorTextZero(t *testing.T) {
	var b BadPongBehavior
	text, err := b.MarshalText()
	if err != nil || string(text) != "" {
		t.Fatalf("zero marshals to %q, %v", text, err)
	}
	if err := b.UnmarshalText(nil); err != nil || b != 0 {
		t.Fatal("empty text should leave behavior unset")
	}
	if _, err := BadPongBehavior(42).MarshalText(); err == nil {
		t.Fatal("invalid behavior marshaled")
	}
}

func TestParseBadPongBehavior(t *testing.T) {
	//lint:maporder-ok iterations are independent checks; no state crosses entries
	for name, want := range map[string]BadPongBehavior{
		"Dead": BadPongDead, "Bad": BadPongBad, "Good": BadPongGood,
	} {
		got, err := ParseBadPongBehavior(name)
		if err != nil || got != want {
			t.Errorf("ParseBadPongBehavior(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseBadPongBehavior("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}
