// Command guess-experiments regenerates the paper's tables and figures.
//
// Examples:
//
//	guess-experiments -list
//	guess-experiments -experiment fig10
//	guess-experiments -experiment all -scale full -csv out/
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/orchestrate"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "guess-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("guess-experiments", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment IDs and exit")
	experiment := fs.String("experiment", "all", `experiment ID ("table3", "fig3".."fig21", or "all")`)
	scaleName := fs.String("scale", "quick", `fidelity: "quick" or "full" (paper scale)`)
	seed := fs.Uint64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "max concurrent simulations (0 = all cores)")
	workers := fs.Int("workers", 0, "run sweeps on this many in-process workers over the wire protocol instead of the direct pool (0 = direct)")
	replications := fs.Int("replications", 1, "independently seeded runs pooled per sweep point")
	csvDir := fs.String("csv", "", "also write each table as CSV into this directory")
	svgDir := fs.String("svg", "", "also render each figure chart as SVG into this directory")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	traceQueries := fs.String("trace-queries", "", "write a JSONL per-query event trace of every run to this file")
	metricsOut := fs.String("metrics-out", "", "write aggregate Prometheus-text metrics at exit to this file (\"-\" = stdout)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "guess-experiments: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently freed objects so the profile shows live + alloc space accurately
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "guess-experiments: -memprofile:", err)
			}
		}()
	}

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-8s %s\n", id, title)
		}
		return nil
	}

	// SIGINT cancels the sweep: no further runs are scheduled and
	// in-flight simulations stop at their next event batch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := experiments.Options{
		Seed:         *seed,
		Parallelism:  *parallel,
		Replications: *replications,
		Context:      ctx,
	}
	switch *scaleName {
	case "quick":
		opts.Scale = experiments.Quick
	case "full":
		opts.Scale = experiments.Full
	default:
		return fmt.Errorf("unknown -scale %q (want quick or full)", *scaleName)
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *traceQueries != "" {
		f, err := os.Create(*traceQueries)
		if err != nil {
			return err
		}
		defer f.Close()
		tw := obs.NewTraceWriter(f).Mask(obs.QueryEventMask)
		defer func() {
			if err := tw.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "guess-experiments: -trace-queries:", err)
			}
		}()
		opts.Observer = tw
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		if *workers > 0 {
			// Distributed sweeps merge the workers' per-unit metric
			// snapshots into the registry instead of sharing live
			// instruments; pre-register so help text is present.
			obs.NewSimMetrics(reg)
		} else {
			opts.Metrics = obs.NewSimMetrics(reg)
		}
		defer func() {
			out := os.Stdout
			if *metricsOut != "-" {
				f, err := os.Create(*metricsOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, "guess-experiments: -metrics-out:", err)
					return
				}
				defer f.Close()
				out = f
			}
			if err := reg.WritePrometheus(out); err != nil {
				fmt.Fprintln(os.Stderr, "guess-experiments: -metrics-out:", err)
			}
		}()
	}

	var dash *orchestrate.Dashboard
	if *workers > 0 {
		if *traceQueries != "" {
			return errors.New("-workers is incompatible with -trace-queries: workers do not stream trace events")
		}
		if !*quiet {
			dash = orchestrate.NewDashboard(os.Stderr, false)
		}
		pool, err := orchestrate.NewLocalPool(*workers, orchestrate.Config{Metrics: reg, Dashboard: dash})
		if err != nil {
			return err
		}
		defer pool.Close()
		opts.Executor = pool
		opts.Progress = nil // per-run lines come from the dashboard instead
	}

	ids := experiments.IDs()
	if *experiment != "all" {
		ids = strings.Split(*experiment, ",")
	}
	for _, id := range ids {
		exp, err := experiments.Lookup(id)
		if err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s: %s (scale=%s)\n", id, exp.Title, opts.Scale)
		}
		start := time.Now()
		res, err := exp.Run(opts)
		if err != nil {
			return err
		}
		if _, err := res.WriteTo(os.Stdout); err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, id, res); err != nil {
				return err
			}
		}
		if *svgDir != "" {
			if err := writeSVGs(*svgDir, id, res); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSVGs(dir, id string, res *experiments.Result) error {
	if len(res.Charts) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, c := range res.Charts {
		name := id
		if len(res.Charts) > 1 {
			name = fmt.Sprintf("%s_%d", id, i)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".svg"), []byte(c.SVG(720, 440)), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func writeCSVs(dir, id string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		name := id
		if len(res.Tables) > 1 {
			name = fmt.Sprintf("%s_%d", id, i)
		}
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
