package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU
BenchmarkSingleRun-8   	       9	 128562358 ns/op	 7207304 B/op	    6326 allocs/op
PASS
ok  	repro	3.456s
`

// TestRunEmitsParsableTrajectory is the acceptance check for `make
// bench-json`: the emitted BENCH_*.json must parse and carry the
// headline ns/op, B/op, allocs/op metrics.
func TestRunEmitsParsableTrajectory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_20260805.json")
	if err := run([]string{"-o", out}, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatalf("trajectory file does not parse: %v\n%s", err, b)
	}
	if rec.Date == "" || rec.Goos != "linux" || rec.CPU != "Test CPU" {
		t.Fatalf("bad envelope: %+v", rec)
	}
	if len(rec.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(rec.Results))
	}
	r := rec.Results[0]
	if r.Name != "BenchmarkSingleRun" || r.NsPerOp != 128562358 ||
		r.BytesPerOp != 7207304 || r.AllocsPerOp != 6326 {
		t.Fatalf("headline metrics missing or wrong: %+v", r)
	}
}

// TestRunStdout checks the default stdout path and stdin input.
func TestRunStdout(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, strings.NewReader(sample), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"allocs_per_op": 6326`) {
		t.Fatalf("stdout output missing metrics:\n%s", sb.String())
	}
}

// TestRunRejectsEmptyInput: an empty trajectory almost always means a
// broken pipeline (wrong -bench regexp, compile failure swallowed by
// the shell); fail loudly instead of writing a useless file.
func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\n"), nil); err == nil {
		t.Fatal("run accepted input with no benchmarks")
	}
}
