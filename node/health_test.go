package node

import (
	"context"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/node/memnet"
)

func healthCfg(threshold int, cooldown time.Duration) Config {
	cfg := Default()
	cfg.BreakerThreshold = threshold
	cfg.BreakerCooldown = cooldown
	return cfg
}

// TestBreakerDisabledEvictsImmediately locks the default: with
// threshold 0 a fully timed-out probe evicts, as the paper specifies.
func TestBreakerDisabledEvictsImmediately(t *testing.T) {
	h := newPeerHealth(healthCfg(0, time.Second))
	evict, opened := h.onTimeout(1, time.Now())
	if !evict || opened {
		t.Fatalf("disabled breaker: evict=%v opened=%v, want evict only", evict, opened)
	}
	if h.len() != 0 {
		t.Fatal("state retained for evicted peer")
	}
}

// TestBreakerLifecycle walks closed -> open -> half-open -> closed and
// the eviction path out of half-open.
func TestBreakerLifecycle(t *testing.T) {
	h := newPeerHealth(healthCfg(3, time.Second))
	now := time.Unix(100, 0)

	// Two timeouts: still closed, not suppressed, not evicted.
	for i := 0; i < 2; i++ {
		if evict, opened := h.onTimeout(1, now); evict || opened {
			t.Fatalf("timeout %d below threshold: evict=%v opened=%v", i+1, evict, opened)
		}
	}
	if h.suppressed(1, now) {
		t.Fatal("closed breaker suppresses")
	}
	// Third trips it open: suppressed until the cooldown elapses.
	evict, opened := h.onTimeout(1, now)
	if evict || !opened {
		t.Fatalf("threshold timeout: evict=%v opened=%v, want open", evict, opened)
	}
	if h.open() != 1 {
		t.Fatalf("open count %d, want 1", h.open())
	}
	if !h.suppressed(1, now.Add(500*time.Millisecond)) {
		t.Fatal("open breaker does not suppress")
	}
	// Cooldown elapsed: half-open, no longer suppressed (trial allowed).
	if h.suppressed(1, now.Add(1100*time.Millisecond)) {
		t.Fatal("half-open breaker still suppresses")
	}
	// Successful trial closes and clears.
	h.onSuccess(1)
	if h.open() != 0 || h.len() != 0 {
		t.Fatalf("success did not clear breaker: open=%d len=%d", h.open(), h.len())
	}

	// Again to half-open, this time the trial fails: evict.
	for i := 0; i < 3; i++ {
		h.onTimeout(2, now)
	}
	if h.suppressed(2, now.Add(2*time.Second)) {
		t.Fatal("cooldown did not half-open")
	}
	if evict, _ := h.onTimeout(2, now.Add(2*time.Second)); !evict {
		t.Fatal("failed half-open trial did not evict")
	}
	if h.open() != 0 || h.len() != 0 {
		t.Fatalf("eviction did not clear breaker state: open=%d len=%d", h.open(), h.len())
	}
}

// TestBusyResetsTimeoutStreak: a Busy is a live reply, so it must not
// stack toward the breaker threshold.
func TestBusyResetsTimeoutStreak(t *testing.T) {
	cfg := healthCfg(2, time.Second)
	cfg.BusyBackoff = 10 * time.Millisecond
	h := newPeerHealth(cfg)
	now := time.Unix(200, 0)
	h.onTimeout(1, now)
	h.onBusy(1, now)
	if _, opened := h.onTimeout(1, now); opened {
		t.Fatal("breaker opened though Busy reset the streak")
	}
}

// TestBusyDemotionSemantics mirrors the pre-existing demotion behavior
// through the unified health layer.
func TestBusyDemotionSemantics(t *testing.T) {
	// Disabled backoff: evict on first Busy.
	h := newPeerHealth(healthCfg(0, time.Second))
	if evict, demoted := h.onBusy(1, time.Now()); !evict || demoted {
		t.Fatalf("no-backoff Busy: evict=%v demoted=%v", evict, demoted)
	}

	// Enabled: exponential suppression, eviction after the streak.
	cfg := healthCfg(0, time.Second)
	cfg.BusyBackoff = 10 * time.Millisecond
	cfg.BusyBackoffMax = 15 * time.Millisecond
	cfg.BusyEvictAfter = 3
	h = newPeerHealth(cfg)
	now := time.Unix(300, 0)
	if evict, demoted := h.onBusy(1, now); evict || !demoted {
		t.Fatal("first Busy should demote, not evict")
	}
	if !h.suppressed(1, now.Add(5*time.Millisecond)) {
		t.Fatal("demoted peer not suppressed")
	}
	if h.suppressed(1, now.Add(11*time.Millisecond)) {
		t.Fatal("suppression did not expire")
	}
	if evict, _ := h.onBusy(1, now); evict {
		t.Fatal("second Busy should still demote")
	}
	// Backoff is capped by BusyBackoffMax.
	if h.suppressed(1, now.Add(16*time.Millisecond)) {
		t.Fatal("suppression exceeded BusyBackoffMax")
	}
	if evict, _ := h.onBusy(1, now); !evict {
		t.Fatal("third Busy should evict")
	}
	if h.len() != 0 {
		t.Fatal("evicted peer state retained")
	}
}

// TestHealthPruneTo: state for peers no longer in the link cache is
// reclaimed, including open-breaker accounting.
func TestHealthPruneTo(t *testing.T) {
	h := newPeerHealth(healthCfg(1, time.Second))
	link := cache.NewLinkCache(4)
	link.Add(cache.Entry{Addr: 1})
	now := time.Now()
	h.onTimeout(1, now) // opens (threshold 1)
	h.onTimeout(2, now) // opens for a peer not in the cache
	if h.open() != 2 || h.len() != 2 {
		t.Fatalf("setup: open=%d len=%d", h.open(), h.len())
	}
	h.pruneTo(link)
	if h.len() != 1 || h.open() != 1 {
		t.Fatalf("prune kept stale state: open=%d len=%d", h.open(), h.len())
	}
}

// TestHealthMapPrunedOnCacheChurn is the end-to-end satellite: a peer
// whose health state exists (Busy-demoted) must have that state
// reclaimed once cache churn replaces it, so the map cannot grow
// without bound.
func TestHealthMapPrunedOnCacheChurn(t *testing.T) {
	leakCheck(t)
	nw := memnet.New(71)
	busy := startMemNode(t, nw, Config{
		Files:              []string{"crowded.txt"},
		MaxProbesPerSecond: 1,
		PingInterval:       time.Hour,
		Seed:               2,
	})
	cfg := chaosCfg(5)
	cfg.CacheSize = 2
	cfg.BusyBackoff = 50 * time.Millisecond
	cfg.BusyBackoffMax = 200 * time.Millisecond
	querier := startMemNode(t, nw, cfg)
	querier.AddPeer(busy.Addr(), 1)

	// Exhaust the busy node's capacity, then get refused: the querier
	// demotes it, creating health state.
	ctx := context.Background()
	if _, _, err := querier.Query(ctx, "crowded", 1); err != nil {
		t.Fatal(err)
	}
	if _, qs, err := querier.Query(ctx, "crowded", 1); err != nil || qs.Refused != 1 {
		t.Fatalf("expected one refusal, got %+v (err=%v)", qs, err)
	}
	querier.mu.Lock()
	tracked := querier.health.len()
	querier.mu.Unlock()
	if tracked != 1 {
		t.Fatalf("demotion tracked %d peers, want 1", tracked)
	}

	// Churn the size-2 cache until the demoted peer is replaced; the
	// health map must shed its entry with it.
	for i := 0; i < 8; i++ {
		s := startMemNode(t, nw, Config{PingInterval: time.Hour, Seed: uint64(i + 10)})
		querier.AddPeer(s.Addr(), 1)
	}
	if cacheHolds(querier, busy.Addr().String()) {
		t.Skip("random replacement kept the demoted peer (seed-dependent)")
	}
	querier.mu.Lock()
	tracked = querier.health.len()
	querier.mu.Unlock()
	if tracked != 0 {
		t.Fatalf("health map retains %d entries for evicted peers", tracked)
	}
}
