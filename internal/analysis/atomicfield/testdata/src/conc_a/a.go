// Package node poses as repro/node: the atomic half of a cross-package
// mixed access.
package node

import "sync/atomic"

// Stats counts drops; Dropped is maintained atomically here.
type Stats struct {
	Dropped int64
}

// Drop is the atomic access that inventories Stats.Dropped.
func (s *Stats) Drop() {
	atomic.AddInt64(&s.Dropped, 1)
}
