// Command guess-cluster runs the cluster-wide fair-admission stack: a
// crash-tolerant shed-state service aggregating every node's admission
// sketch, and (optionally) a supervised fleet of GUESS nodes synced to
// it.
//
// Run just the service, with crash recovery:
//
//	guess-cluster -service 127.0.0.1:7100 -snapshot /var/tmp/agg.snap
//
// Run a supervised 10-node UDP cluster against it (each node shares
// the same files, sheds fairly, and pushes its sketch to the service):
//
//	guess-cluster -service 127.0.0.1:7100 -nodes 10 \
//	    -files hotfile.iso -capacity 150
//
// Individual guess-node daemons join the same cluster view with
// -state 127.0.0.1:7100 -admission fair.
//
// With -smoke the command runs a scripted three-node outage drill on an
// in-memory network — converge, kill the service, verify every node
// degrades to local-only shedding, restart, verify re-convergence — and
// exits nonzero if any posture fails. CI runs this as `make
// cluster-smoke`.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	guess "repro"
	"repro/node"
	"repro/node/cluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "guess-cluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("guess-cluster", flag.ContinueOnError)
	serviceAddr := fs.String("service", "", "TCP address for the shed-state service (empty = no in-process service)")
	snapshot := fs.String("snapshot", "", "path for the service's aggregate snapshots, restored on startup")
	snapshotInterval := fs.Duration("snapshot-interval", 10*time.Second, "period between aggregate snapshots")
	window := fs.Duration("window", time.Second, "service aggregation window (match the nodes' admission window)")
	rotate := fs.Duration("rotate", 0, "salt epoch rotation period (0 = never)")
	nodes := fs.Int("nodes", 0, "supervised guess nodes to launch (0 = service only)")
	stateAddr := fs.String("state", "", "shed-state service the nodes sync to (default: the in-process -service)")
	filesFlag := fs.String("files", "", "comma-separated file names every node shares")
	capacity := fs.Int("capacity", 150, "per-node max probes/second")
	admissionWindow := fs.Duration("admission-window", 100*time.Millisecond, "per-node admission window")
	syncInterval := fs.Duration("sync-interval", time.Second, "node push/pull period against the service")
	stagger := fs.Duration("stagger", 250*time.Millisecond, "delay between initial node bootstraps")
	smoke := fs.Bool("smoke", false, "run the scripted outage drill and exit (nonzero on failure)")
	verbose := fs.Bool("v", false, "verbose lifecycle logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *smoke {
		return runSmoke(*verbose)
	}
	if *serviceAddr == "" && *nodes == 0 {
		return fmt.Errorf("nothing to run: set -service and/or -nodes (or -smoke)")
	}

	logf := func(format string, a ...any) {}
	if *verbose {
		logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "guess-cluster: "+format+"\n", a...)
		}
	}
	reg := guess.NewMetricsRegistry()

	// The in-process shed-state service.
	target := *stateAddr
	if *serviceAddr != "" {
		ln, err := net.Listen("tcp", *serviceAddr)
		if err != nil {
			return err
		}
		svc, err := cluster.Serve(ln, cluster.ServiceConfig{
			Window:           *window,
			RotateEvery:      *rotate,
			SnapshotPath:     *snapshot,
			SnapshotInterval: *snapshotInterval,
			Metrics:          reg,
			Logf:             logf,
		})
		if err != nil {
			return err
		}
		defer svc.Close()
		if target == "" {
			target = ln.Addr().String()
		}
		fmt.Printf("shed-state service on %v (epoch %d)\n", ln.Addr(), svc.Epoch())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *nodes > 0 {
		if target == "" {
			return fmt.Errorf("-nodes needs a service: set -service or -state")
		}
		var files []string
		for _, f := range strings.Split(*filesFlag, ",") {
			if f = strings.TrimSpace(f); f != "" {
				files = append(files, f)
			}
		}
		// Peers discovered so far, handed to each new member so the
		// fleet bootstraps into one overlay. Guarded: each slot's
		// supervisor calls Start from its own goroutine.
		var knownMu sync.Mutex
		var known []netip.AddrPort
		h, err := cluster.StartHarness(cluster.HarnessConfig{
			Slots:   *nodes,
			Stagger: *stagger,
			Logf:    logf,
			Events: func(e cluster.Event) {
				logf("slot %d: %v (restarts %d)", e.Slot, e.Type, e.Restarts)
			},
			Start: func(slot int) (cluster.Member, error) {
				n, err := node.Listen("127.0.0.1:0", node.Config{
					Files:              files,
					MaxProbesPerSecond: *capacity,
					Admission:          node.AdmissionFair,
					AdmissionWindow:    *admissionWindow,
					Metrics:            reg,
				})
				if err != nil {
					return nil, err
				}
				knownMu.Lock()
				for _, p := range known {
					n.AddPeer(p, 0)
				}
				known = append(known, n.Addr())
				knownMu.Unlock()
				c, err := cluster.NewSyncClient(n, cluster.ClientConfig{
					Name:     fmt.Sprintf("slot-%d", slot),
					Dial:     func() (net.Conn, error) { return net.DialTimeout("tcp", target, *syncInterval) },
					Interval: *syncInterval,
					Metrics:  reg,
				})
				if err != nil {
					n.Close()
					return nil, err
				}
				fmt.Printf("slot %d: node on %v, syncing to %s\n", slot, n.Addr(), target)
				return cluster.NewNodeMember(n, c), nil
			},
		})
		if err != nil {
			return err
		}
		defer h.Stop()
	}

	<-ctx.Done()
	fmt.Println("\nshutting down")
	return nil
}
