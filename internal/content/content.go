// Package content implements the file-sharing content and query model.
//
// The paper determines whether a probed peer answers a query using the
// hybrid-P2P query model of Yang & Garcia-Molina (VLDB 2001), with
// per-peer library sizes drawn from the Gnutella measurements of Saroiu
// et al. Neither artifact is available, so this package reimplements
// the model synthetically while preserving the properties the paper's
// results depend on:
//
//   - a universe of distinct items whose popularity follows a bounded
//     Zipf law; peers replicate items proportionally to popularity, so
//     popular items are highly replicated and tail items exist on only
//     a handful of peers (or none);
//   - per-peer library sizes are heavy-tailed with a free-rider mass at
//     zero, so a small set of peers holds most content (this is what
//     makes the MFS and MR policies effective and unfair);
//   - queries follow the same popularity law, plus a small mass of
//     queries for items that exist nowhere, so a fraction of queries is
//     unsatisfiable no matter how many peers are probed (the paper
//     reports ~6% at NetworkSize=1000).
//
// The probability that a peer answers a query thus depends on the
// number of files it shares, exactly as in the paper's model.
package content

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/simrng"
)

// ItemID identifies a distinct shareable item. Valid items are in
// [0, NumItems); NoItem denotes a query for content that exists nowhere.
type ItemID int32

// NoItem is the target of a query for nonexistent content.
const NoItem ItemID = -1

// Params configures the content model. The zero value is not valid;
// use DefaultParams.
type Params struct {
	// NumItems is the number of distinct items in the universe.
	NumItems int
	// PopularityExp is the Zipf exponent of item replication.
	PopularityExp float64
	// QueryExp is the Zipf exponent of the query distribution.
	QueryExp float64
	// NonexistentQueryFraction is the probability that a query targets
	// an item that exists nowhere in the network.
	NonexistentQueryFraction float64
	// FreeRiderFraction is the probability that a peer shares no files.
	FreeRiderFraction float64
	// LibraryMu and LibrarySigma parameterize the log-normal body of
	// the library-size distribution for sharing peers.
	LibraryMu, LibrarySigma float64
	// MaxLibrary caps library sizes (0 means NumItems/4).
	MaxLibrary int
}

// DefaultParams returns the calibrated defaults used throughout the
// reproduction. With these values a 1000-peer network shows the
// paper's headline numbers: tens of good probes per query under the
// Random policy and a ~6% unsatisfiable-query floor.
func DefaultParams() Params {
	return Params{
		NumItems:                 10000,
		PopularityExp:            0.8,
		QueryExp:                 0.8,
		NonexistentQueryFraction: 0.05,
		FreeRiderFraction:        0.25,
		LibraryMu:                math.Log(120),
		LibrarySigma:             1.2,
		MaxLibrary:               0,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.NumItems <= 0:
		return fmt.Errorf("content: NumItems must be positive, got %d", p.NumItems)
	case p.PopularityExp < 0:
		return fmt.Errorf("content: PopularityExp must be >= 0, got %v", p.PopularityExp)
	case p.QueryExp < 0:
		return fmt.Errorf("content: QueryExp must be >= 0, got %v", p.QueryExp)
	case p.NonexistentQueryFraction < 0 || p.NonexistentQueryFraction >= 1:
		return fmt.Errorf("content: NonexistentQueryFraction must be in [0,1), got %v", p.NonexistentQueryFraction)
	case p.FreeRiderFraction < 0 || p.FreeRiderFraction >= 1:
		return fmt.Errorf("content: FreeRiderFraction must be in [0,1), got %v", p.FreeRiderFraction)
	case p.LibrarySigma < 0:
		return fmt.Errorf("content: LibrarySigma must be >= 0, got %v", p.LibrarySigma)
	case p.MaxLibrary < 0:
		return fmt.Errorf("content: MaxLibrary must be >= 0, got %d", p.MaxLibrary)
	}
	return nil
}

// Universe is an immutable content universe shared by all peers in a
// simulation. It is safe for concurrent reads once constructed.
type Universe struct {
	params   Params
	itemPop  *dist.Zipf // replication popularity
	queryPop *dist.Zipf // query popularity
	libSize  dist.Sampler
	maxLib   int
}

// New builds a Universe from params.
func New(params Params) (*Universe, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	itemPop, err := dist.NewZipf(params.NumItems, params.PopularityExp)
	if err != nil {
		return nil, fmt.Errorf("content: item popularity: %w", err)
	}
	queryPop, err := dist.NewZipf(params.NumItems, params.QueryExp)
	if err != nil {
		return nil, fmt.Errorf("content: query popularity: %w", err)
	}
	maxLib := params.MaxLibrary
	if maxLib == 0 {
		maxLib = params.NumItems / 4
	}
	if maxLib > params.NumItems {
		maxLib = params.NumItems
	}
	return &Universe{
		params:   params,
		itemPop:  itemPop,
		queryPop: queryPop,
		libSize:  dist.LogNormal{Mu: params.LibraryMu, Sigma: params.LibrarySigma},
		maxLib:   maxLib,
	}, nil
}

// MustNew is New but panics on error; for tests.
func MustNew(params Params) *Universe {
	u, err := New(params)
	if err != nil {
		panic(err)
	}
	return u
}

// Params returns the universe's configuration.
func (u *Universe) Params() Params { return u.params }

// NumItems returns the number of distinct items.
func (u *Universe) NumItems() int { return u.params.NumItems }

// MaxLibrary returns the largest library size the universe will
// produce. Malicious peers advertise this value to look maximally
// attractive under file-count-based policies.
func (u *Universe) MaxLibrary() int { return u.maxLib }

// SampleLibrarySize draws the number of files a newly born peer shares.
// Free riders share zero files.
func (u *Universe) SampleLibrarySize(r *simrng.RNG) int {
	if r.Bool(u.params.FreeRiderFraction) {
		return 0
	}
	size := int(u.libSize.Sample(r))
	if size < 1 {
		size = 1
	}
	if size > u.maxLib {
		size = u.maxLib
	}
	return size
}

// NewLibrary samples a library of exactly size distinct items, each
// drawn in proportion to item popularity. size is clamped to the
// universe's maximum.
func (u *Universe) NewLibrary(r *simrng.RNG, size int) Library {
	return u.NewLibraryInto(r, size, Library{})
}

// NewLibraryInto is NewLibrary reusing recycle's storage: the recycled
// library's item set is emptied and refilled in place, so simulators
// under churn can recycle dead peers' libraries instead of allocating
// one per birth. It draws from r exactly as NewLibrary does — the
// sampling loop depends only on the (emptied) set's contents — so
// recycling never perturbs a seeded run. recycle must not be in use by
// any live peer; pass Library{} to allocate fresh.
func (u *Universe) NewLibraryInto(r *simrng.RNG, size int, recycle Library) Library {
	if size <= 0 {
		return Library{}
	}
	if size > u.maxLib {
		size = u.maxLib
	}
	items := recycle.items
	if items == nil {
		items = make(map[ItemID]struct{}, size)
	} else {
		clear(items)
	}
	// Popularity-weighted rejection sampling; popular items collide
	// often for large libraries, so bound the attempts and top up with
	// uniform unseen items (these late additions are tail items, which
	// keeps the popularity weighting essentially intact).
	budget := 10 * size
	for len(items) < size && budget > 0 {
		budget--
		items[ItemID(u.itemPop.Rank(r))] = struct{}{}
	}
	for len(items) < size {
		items[ItemID(r.Intn(u.params.NumItems))] = struct{}{}
	}
	return Library{items: items}
}

// DrawQuery samples the target item of a query: NoItem with probability
// NonexistentQueryFraction, otherwise a popularity-weighted item.
func (u *Universe) DrawQuery(r *simrng.RNG) ItemID {
	if r.Bool(u.params.NonexistentQueryFraction) {
		return NoItem
	}
	return ItemID(u.queryPop.Rank(r))
}

// ItemProb returns the replication probability mass of item id.
func (u *Universe) ItemProb(id ItemID) float64 {
	return u.itemPop.Prob(int(id))
}

// Library is the set of items a peer shares. The zero value is an
// empty library (a free rider).
type Library struct {
	items map[ItemID]struct{}
}

// Size returns the number of files shared — the peer's NumFiles.
func (l Library) Size() int { return len(l.items) }

// Contains reports whether the library holds item id. It is always
// false for NoItem.
func (l Library) Contains(id ItemID) bool {
	if id == NoItem || l.items == nil {
		return false
	}
	_, ok := l.items[id]
	return ok
}

// Results returns the number of results the peer returns for a query
// targeting id (0 or 1 in this model: a peer holds at most one copy of
// an item).
func (l Library) Results(id ItemID) int {
	if l.Contains(id) {
		return 1
	}
	return 0
}

// Items returns the library's items in unspecified order; for tests.
func (l Library) Items() []ItemID {
	out := make([]ItemID, 0, len(l.items))
	//lint:maporder-ok order is documented as unspecified; test-only helper off the simulation path
	for id := range l.items {
		out = append(out, id)
	}
	return out
}
