// Package cluster runs GUESS nodes as a supervised fleet with
// cluster-wide fair admission.
//
// Two pieces cooperate. The Harness launches and supervises K node
// instances (over memnet or real sockets — it only needs a Start
// callback), restarting crashed members with exponential backoff and
// staggering bootstrap so a cold cluster does not thundering-herd its
// seeds. The shed-state Service aggregates every node's fair-admission
// sketch: each node's SyncClient pushes its local bucket deltas on a
// jittered interval and pulls back the cluster-merged aggregate, so a
// heavy requester that rotates across nodes — invisible to any one
// node's local sketch — is shed cluster-wide.
//
// The robustness contract: the service is an optimization, never a
// dependency. A node whose sync client cannot reach the service (down,
// slow, partitioned) or sees a stale salt epoch degrades to local-only
// shedding and keeps serving; on reconnect it re-converges without
// double-counting demand (per-instance nonce + monotonic push
// sequence numbers make re-sent deltas idempotent). The service
// snapshots its aggregate atomically and recovers warm; a corrupt
// snapshot cold-starts with a fresh salt epoch and a warming window
// during which clients stay in local fallback rather than trust a
// half-empty aggregate.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/frame"
	"repro/node"
)

// State-sync wire protocol (see node/PROTOCOL.md, "State sync"): JSON
// messages in internal/frame frames (4-byte BE length, 4-byte BE
// CRC-32 IEEE, payload) — the same framing the distributed sweep
// transport speaks.

// maxSyncFrame bounds a sync frame payload. A delta/aggregate is
// 4×64 u32 counters plus envelope — a few KiB of JSON; 1 MiB leaves
// two orders of magnitude of headroom while keeping a corrupt length
// header from forcing a large allocation.
const maxSyncFrame = 1 << 20

// maxNodeName bounds the node-name field of a hello.
const maxNodeName = 128

// syncType discriminates state-sync messages.
type syncType string

const (
	// syncHello is the client's first message on a connection: its
	// node name and instance nonce. The service replies with syncAgg,
	// so a client learns the current epoch and salt before its first
	// push.
	syncHello syncType = "hello"
	// syncPush carries a sketch delta (client → service). Seq == 0 is
	// a heartbeat: no delta to apply, just pull the aggregate.
	syncPush syncType = "push"
	// syncAgg is the service's reply to hello and push: the merged
	// per-window aggregate plus the epoch/salt it is valid under.
	syncAgg syncType = "agg"
	// syncReject refuses a push whose epoch does not match the
	// aggregate's, carrying the service's current epoch and salt so
	// the client can adopt and resync.
	syncReject syncType = "reject"
)

// syncMsg is the state-sync envelope; Type selects which fields are
// meaningful.
type syncMsg struct {
	Type syncType `json:"type"`

	// hello: node name and per-instance nonce. A restarted node draws
	// a fresh nonce, which resets its sequence tracking on the
	// service.
	Node  string `json:"node,omitempty"`
	Nonce uint64 `json:"nonce,omitempty"`

	// push: monotonic sequence number (0 = heartbeat, never applied),
	// the epoch the delta was counted under, and the delta itself.
	Seq   uint64               `json:"seq,omitempty"`
	Epoch int64                `json:"epoch,omitempty"`
	Delta *node.AdmissionDelta `json:"delta,omitempty"`

	// agg / reject: the service's current salt epoch and salt. agg
	// additionally carries the merged aggregate, the seq it
	// acknowledges (0 for hello replies and heartbeats), and whether
	// the aggregate is still warming (too young to trust).
	Salt    uint64                   `json:"salt,omitempty"`
	AckSeq  uint64                   `json:"ack_seq,omitempty"`
	Agg     *node.AdmissionAggregate `json:"agg,omitempty"`
	Warming bool                     `json:"warming,omitempty"`
}

// writeSyncMsg marshals and frames one message.
func writeSyncMsg(w io.Writer, m syncMsg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("cluster: encode %s: %w", m.Type, err)
	}
	return frame.Write(w, payload, maxSyncFrame)
}

// readSyncMsg reads one frame and decodes its message.
func readSyncMsg(r io.Reader) (syncMsg, error) {
	payload, err := frame.Read(r, maxSyncFrame)
	if err != nil {
		return syncMsg{}, err
	}
	return decodeSyncMsg(payload)
}

// decodeSyncMsg parses and validates one frame payload. Every
// malformation returns an error — it never panics, which
// FuzzStateSyncDecode enforces.
func decodeSyncMsg(payload []byte) (syncMsg, error) {
	var m syncMsg
	if err := json.Unmarshal(payload, &m); err != nil {
		return syncMsg{}, fmt.Errorf("cluster: decode frame: %w", err)
	}
	switch m.Type {
	case syncHello:
		if m.Node == "" {
			return syncMsg{}, fmt.Errorf("cluster: hello without a node name")
		}
		if len(m.Node) > maxNodeName {
			return syncMsg{}, fmt.Errorf("cluster: node name %d bytes exceeds %d", len(m.Node), maxNodeName)
		}
	case syncPush:
		if m.Seq > 0 && m.Delta == nil {
			return syncMsg{}, fmt.Errorf("cluster: push seq %d without a delta", m.Seq)
		}
		if m.Epoch < 0 {
			return syncMsg{}, fmt.Errorf("cluster: negative epoch %d", m.Epoch)
		}
	case syncAgg:
		if m.Agg == nil {
			return syncMsg{}, fmt.Errorf("cluster: agg message without an aggregate")
		}
		if m.Epoch <= 0 {
			return syncMsg{}, fmt.Errorf("cluster: agg with epoch %d", m.Epoch)
		}
	case syncReject:
		if m.Epoch <= 0 {
			return syncMsg{}, fmt.Errorf("cluster: reject with epoch %d", m.Epoch)
		}
	default:
		return syncMsg{}, fmt.Errorf("cluster: unknown message type %q", m.Type)
	}
	return m, nil
}

// saltOf derives the requester-hash salt from a salt epoch
// (SplitMix64's finalizer). Deriving rather than drawing keeps the
// pair self-consistent: any two parties that agree on the epoch agree
// on the salt, and a snapshot need only record the epoch.
func saltOf(epoch int64) uint64 {
	z := uint64(epoch) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}
