package node

import (
	"net/netip"
	"testing"
	"time"
)

// TestFlatAdmitterMatchesLegacyWindow locks the flat controller to the
// original overloaded() semantics: only queries count, pings are never
// refused, the window is one unix second, and capacity 0 is unlimited.
func TestFlatAdmitterMatchesLegacyWindow(t *testing.T) {
	base := time.Unix(1000, 0)
	f := &flatAdmitter{capacity: 2}
	for i := 0; i < 5; i++ {
		if v := f.admit(1, probePing, base); !v.ok {
			t.Fatalf("ping %d refused by flat admitter", i)
		}
	}
	for i := 0; i < 2; i++ {
		v := f.admit(1, probeQuery, base)
		if !v.ok || v.skipCacheWrite {
			t.Fatalf("in-capacity query %d: %+v", i, v)
		}
	}
	if v := f.admit(2, probeQuery, base.Add(500*time.Millisecond)); v.ok || v.tier != shedFlat {
		t.Fatalf("over-capacity query admitted: %+v", v)
	}
	// A new second resets the window.
	if v := f.admit(2, probeQuery, base.Add(time.Second)); !v.ok {
		t.Fatalf("query refused after window reset: %+v", v)
	}

	unlimited := &flatAdmitter{capacity: 0}
	for i := 0; i < 100; i++ {
		if v := unlimited.admit(uint64(i), probeQuery, base); !v.ok {
			t.Fatal("unlimited flat admitter refused a query")
		}
	}
}

// TestFairAdmitterWorkConserving: with no pressure the fair controller
// admits everything, with full-fidelity cache writes — an idle node
// never refuses anyone.
func TestFairAdmitterWorkConserving(t *testing.T) {
	f := newFairAdmitter(10, time.Second)
	base := time.Unix(2000, 0)
	for i := 0; i < 10; i++ {
		kind := probeQuery
		if i%3 == 0 {
			kind = probePing
		}
		v := f.admit(uint64(i%2), kind, base)
		if !v.ok || v.skipCacheWrite {
			t.Fatalf("probe %d under capacity: %+v", i, v)
		}
	}
}

// TestFairAdmitterShedsHeaviestFirst: at 4x overload from one flood
// requester plus light requesters, the flood is shed once past its
// fair share while the light requesters keep being admitted.
func TestFairAdmitterShedsHeaviestFirst(t *testing.T) {
	f := newFairAdmitter(20, time.Second)
	base := time.Unix(3000, 0)
	flood, lightA, lightB := uint64(0xf100d), uint64(0xa), uint64(0xb)

	// Window 1 establishes pressure (offered 84 ~ 4x capacity 20) with
	// all three requesters active, so the carried fair share reflects
	// them.
	for i := 0; i < 80; i++ {
		f.admit(flood, probeQuery, base)
	}
	f.admit(lightA, probeQuery, base)
	f.admit(lightA, probeQuery, base)
	f.admit(lightB, probeQuery, base)
	f.admit(lightB, probeQuery, base)
	// Window 2 inherits pressure and the active estimate: the flood's
	// estimate blows past its share while the light requesters' single
	// queries stay under it.
	w2 := base.Add(time.Second)
	floodOK, floodShed := 0, 0
	for i := 0; i < 40; i++ {
		v := f.admit(flood, probeQuery, w2)
		if i == 0 && !f.pressurePrev {
			t.Fatal("pressure did not carry into the next window")
		}
		if v.ok {
			floodOK++
			if !v.skipCacheWrite {
				t.Fatal("admission under pressure kept cache writes")
			}
		} else if v.tier != shedQuery {
			t.Fatalf("flood shed with tier %d, want shedQuery", v.tier)
		} else {
			floodShed++
		}
	}
	if floodShed == 0 || floodOK > f.share() {
		t.Fatalf("flood not bounded by fair share: ok=%d shed=%d share=%d",
			floodOK, floodShed, f.share())
	}
	for i := 0; i < 3; i++ {
		if v := f.admit(lightA, probeQuery, w2); !v.ok {
			t.Fatalf("light requester A query %d shed: %+v", i, v)
		}
		if v := f.admit(lightB, probeQuery, w2); !v.ok {
			t.Fatalf("light requester B query %d shed: %+v", i, v)
		}
	}
	// Tier 1: pings are shed under pressure before queries.
	if v := f.admit(lightA, probePing, w2); v.ok || v.tier != shedPing {
		t.Fatalf("ping under pressure: %+v, want shedPing", v)
	}

	// An idle gap clears the carried state: admissions are full
	// fidelity again.
	calm := w2.Add(5 * time.Second)
	if v := f.admit(flood, probeQuery, calm); !v.ok || v.skipCacheWrite {
		t.Fatalf("probe after idle gap: %+v", v)
	}
}

// TestFairAdmitterHardCapacity: even in-share requesters cannot push a
// window past the hard capacity.
func TestFairAdmitterHardCapacity(t *testing.T) {
	f := newFairAdmitter(5, time.Second)
	base := time.Unix(4000, 0)
	admitted := 0
	for i := 0; i < 50; i++ {
		if f.admit(uint64(i), probeQuery, base).ok { // all distinct requesters
			admitted++
		}
	}
	if admitted > 5 {
		t.Fatalf("admitted %d queries past hard capacity 5", admitted)
	}
}

// TestFairAdmitterUnlimited: capacity 0 disables shedding entirely.
func TestFairAdmitterUnlimited(t *testing.T) {
	f := newFairAdmitter(0, time.Second)
	base := time.Unix(5000, 0)
	for i := 0; i < 1000; i++ {
		if v := f.admit(7, probeQuery, base); !v.ok || v.skipCacheWrite {
			t.Fatalf("unlimited fair admitter degraded: %+v", v)
		}
	}
}

// TestFairAdmitterWindowScaling: capacity scales with the window.
func TestFairAdmitterWindowScaling(t *testing.T) {
	if f := newFairAdmitter(100, 100*time.Millisecond); f.capacity != 10 {
		t.Fatalf("100/s over 100ms window: capacity %d, want 10", f.capacity)
	}
	if f := newFairAdmitter(1, 100*time.Millisecond); f.capacity != 1 {
		t.Fatalf("capacity floor: %d, want 1", f.capacity)
	}
}

// TestRequesterKey: stable per (salt, addr), distinct across salts and
// addresses.
func TestRequesterKey(t *testing.T) {
	a := netip.MustParseAddrPort("10.0.0.1:4000")
	b := netip.MustParseAddrPort("10.0.0.1:4001")
	if requesterKey(a, 1) != requesterKey(a, 1) {
		t.Fatal("requesterKey not deterministic")
	}
	if requesterKey(a, 1) == requesterKey(b, 1) {
		t.Fatal("distinct ports hash equal")
	}
	if requesterKey(a, 1) == requesterKey(a, 2) {
		t.Fatal("distinct salts hash equal")
	}
}

// TestAdmissionModeValidation covers the mode enum plumbing.
func TestAdmissionModeValidation(t *testing.T) {
	if !AdmissionFlat.Valid() || !AdmissionFair.Valid() || AdmissionMode(99).Valid() {
		t.Fatal("AdmissionMode.Valid misclassifies")
	}
	if AdmissionFlat.String() != "flat" || AdmissionFair.String() != "fair" {
		t.Fatal("AdmissionMode.String misnames")
	}
	cfg := Default()
	cfg.Admission = AdmissionMode(99)
	if err := cfg.validate(); err == nil {
		t.Fatal("invalid admission mode accepted")
	}
}
