// Package cache implements the two peer-local address stores of the
// GUESS protocol: the bounded link cache (the peer's "neighbor list")
// and the unbounded per-query query cache ("scratch space").
//
// A cache entry is the paper's pointer format
// {IP address, TS, NumFiles, NumRes} plus a Direct flag recording
// whether NumRes comes from the owner's own experience (needed by the
// MR* policy, which distrusts third-party result counts).
package cache

import "fmt"

// PeerID is a peer's address. In the simulator it doubles as the
// unique, monotonically increasing peer identifier; addresses of dead
// peers are never reused, and fabricated addresses (used by malicious
// peers to poison caches) come from a disjoint range.
type PeerID int64

// Entry is a pointer to another peer, the unit stored in both caches.
type Entry struct {
	// Addr is the target peer's address.
	Addr PeerID
	// TS is the virtual time of the owner's last interaction with the
	// target (or the inherited timestamp, for entries learned from
	// pongs; the protocol forbids rewriting fields on insert).
	TS float64
	// NumFiles is the number of files the target advertises.
	NumFiles int32
	// NumRes is the number of results the target returned for the
	// owner's (or, if !Direct, some third party's) last query to it.
	NumRes int32
	// Direct records whether NumRes reflects the owner's own experience
	// with the target. Entries learned from pongs carry Direct=false
	// until the owner probes the target itself.
	Direct bool
}

// LinkCache is the bounded neighbor cache. It preserves insertion
// slots (stable indices are not guaranteed across removals) and
// rejects duplicate addresses. The zero value is unusable; call
// NewLinkCache.
//
// Small caches (capacity <= linearIndexMax, which covers the paper's
// default CacheSize) are fully flat: lookups scan a dense parallel
// address slice instead of a hash map. A scan of at most 128
// contiguous 8-byte addresses costs about what one map probe does,
// and dropping the map roughly halves the per-peer footprint — the
// difference between a million-peer simulation fitting in memory or
// not, since link caches dominate the simulator's heap. Large caches
// (the paper's multi-thousand-entry sweeps) keep the map index.
type LinkCache struct {
	capacity int
	entries  []Entry
	// addrs mirrors entries[i].Addr; it is the flat lookup index for
	// small caches (nil when the map index is in use). Kept separate
	// from entries so the scan touches 4x fewer cache lines.
	addrs []PeerID
	// index maps addresses to slots for large caches; nil for small
	// ones.
	index map[PeerID]int
}

// linearIndexMax is the largest capacity served by the flat linear
// index. Above it, lookup cost would grow past a map probe's.
const linearIndexMax = 128

// NewLinkCache returns an empty link cache with the given capacity
// (the paper's CacheSize). It panics if capacity <= 0, which is always
// a configuration bug.
func NewLinkCache(capacity int) *LinkCache {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive link cache capacity %d", capacity))
	}
	c := &LinkCache{
		capacity: capacity,
		entries:  make([]Entry, 0, min(capacity, 256)),
	}
	if capacity <= linearIndexMax {
		c.addrs = make([]PeerID, 0, capacity)
	} else {
		c.index = make(map[PeerID]int, min(capacity, 256))
	}
	return c
}

// find returns addr's slot, or -1 when absent.
func (c *LinkCache) find(addr PeerID) int {
	if c.index != nil {
		if i, ok := c.index[addr]; ok {
			return i
		}
		return -1
	}
	for i, a := range c.addrs {
		if a == addr {
			return i
		}
	}
	return -1
}

// Cap returns the cache's capacity.
func (c *LinkCache) Cap() int { return c.capacity }

// Len returns the number of entries currently held.
func (c *LinkCache) Len() int { return len(c.entries) }

// Full reports whether the cache is at capacity.
func (c *LinkCache) Full() bool { return len(c.entries) >= c.capacity }

// Has reports whether addr is present.
func (c *LinkCache) Has(addr PeerID) bool {
	return c.find(addr) >= 0
}

// Get returns the entry for addr, if present.
func (c *LinkCache) Get(addr PeerID) (Entry, bool) {
	i := c.find(addr)
	if i < 0 {
		return Entry{}, false
	}
	return c.entries[i], true
}

// Entries exposes the cache's backing slice for policy scans.
//
// Aliasing contract: the returned slice IS the cache's internal
// storage, not a copy. Callers must not grow or reorder it, and must
// not retain it across any mutation of the cache (Add, Remove,
// ReplaceAt, Clear) — the backing array may be reallocated, truncated,
// or have entries swapped into different slots. Mutating entry fields
// in place (e.g. TS updates) is allowed and is how Touch and SetNumRes
// work. Use AppendEntries for a stable snapshot that survives later
// cache mutations.
func (c *LinkCache) Entries() []Entry { return c.entries }

// AppendEntries appends a copy of the cache's entries to dst and
// returns the extended slice, for callers that need a snapshot
// surviving subsequent cache mutations. Passing dst[:0] reuses dst's
// storage.
func (c *LinkCache) AppendEntries(dst []Entry) []Entry {
	return append(dst, c.entries...)
}

// Add inserts e if there is room and the address is not already
// present. It reports whether the entry was inserted. Use ReplaceAt for
// policy-driven replacement when full.
func (c *LinkCache) Add(e Entry) bool {
	if c.Full() || c.Has(e.Addr) {
		return false
	}
	if c.index != nil {
		c.index[e.Addr] = len(c.entries)
	} else {
		c.addrs = append(c.addrs, e.Addr)
	}
	c.entries = append(c.entries, e)
	return true
}

// ReplaceAt evicts the entry at index i and installs e in its place.
// It panics if i is out of range or e.Addr is already present at a
// different slot — both indicate a broken replacement policy.
func (c *LinkCache) ReplaceAt(i int, e Entry) {
	if i < 0 || i >= len(c.entries) {
		panic(fmt.Sprintf("cache: ReplaceAt(%d) with %d entries", i, len(c.entries)))
	}
	old := c.entries[i]
	if j := c.find(e.Addr); j >= 0 && j != i {
		panic(fmt.Sprintf("cache: ReplaceAt would duplicate addr %d", e.Addr))
	}
	if c.index != nil {
		delete(c.index, old.Addr)
		c.index[e.Addr] = i
	} else {
		c.addrs[i] = e.Addr
	}
	c.entries[i] = e
}

// Remove deletes addr, reporting whether it was present. Removal is
// O(1) via swap-with-last, so entry order is not stable.
func (c *LinkCache) Remove(addr PeerID) bool {
	i := c.find(addr)
	if i < 0 {
		return false
	}
	last := len(c.entries) - 1
	moved := c.entries[last]
	c.entries[i] = moved
	c.entries = c.entries[:last]
	if c.index != nil {
		delete(c.index, addr)
		if i != last {
			c.index[moved.Addr] = i
		}
	} else {
		c.addrs[i] = c.addrs[last]
		c.addrs = c.addrs[:last]
	}
	return true
}

// Touch sets the TS field of addr's entry to now, if present. Per the
// protocol, TS is refreshed on every interaction regardless of which
// party initiated it.
func (c *LinkCache) Touch(addr PeerID, now float64) {
	if i := c.find(addr); i >= 0 {
		c.entries[i].TS = now
	}
}

// SetNumRes records the owner's direct experience: the target at addr
// just returned n results. It also marks the entry Direct.
func (c *LinkCache) SetNumRes(addr PeerID, n int32) {
	if i := c.find(addr); i >= 0 {
		c.entries[i].NumRes = n
		c.entries[i].Direct = true
	}
}

// Clear empties the cache while retaining its capacity and allocated
// storage, so simulators can recycle caches across peer generations
// (peer churn creates one cache per birth; a cleared cache behaves
// exactly like a fresh NewLinkCache of the same capacity).
func (c *LinkCache) Clear() {
	c.entries = c.entries[:0]
	c.addrs = c.addrs[:0]
	clear(c.index)
}

// checkInvariants panics if the index and the entries slice disagree.
// It is called from tests only.
func (c *LinkCache) checkInvariants() {
	if len(c.entries) > c.capacity {
		panic("cache: over capacity")
	}
	if c.index != nil {
		if len(c.index) != len(c.entries) {
			panic("cache: index size mismatch")
		}
	} else if len(c.addrs) != len(c.entries) {
		panic("cache: addrs size mismatch")
	}
	for i, e := range c.entries {
		if j := c.find(e.Addr); j != i {
			panic("cache: index points to wrong slot")
		}
	}
}
