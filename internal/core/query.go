package core

import (
	"repro/internal/cache"
	"repro/internal/content"
	"repro/internal/policy"
)

// query is the state of one in-flight search.
type query struct {
	origin  cache.PeerID
	item    content.ItemID
	started float64
	// counted records whether the query started inside the measurement
	// window and should contribute to metrics.
	counted bool
	// burstRemaining queries follow this one back-to-back when it
	// completes (the bursty workload's "succession").
	burstRemaining int

	results int
	probes  int
	good    int
	dead    int
	refused int

	// k is the current per-round fan-out; lastProgress is when the
	// query last gained a result (both drive AdaptiveParallel).
	k            int
	lastProgress float64

	sel *policy.Selector
	// seen is the query cache's dedup set: every address ever added as
	// a candidate. (The full cache.QueryCache bookkeeping is not needed
	// here — the selector holds the pending entries — and exhaustive
	// queries make per-candidate memory the simulator's footprint
	// ceiling.)
	seen map[cache.PeerID]struct{}
}

// addCandidate records addr as seen and, if new, feeds the entry to
// the selector. It reports whether the entry was new.
func (q *query) addCandidate(e cache.Entry) bool {
	if _, ok := q.seen[e.Addr]; ok {
		return false
	}
	q.seen[e.Addr] = struct{}{}
	q.sel.Add(e)
	return true
}

// startQuery begins a new query at p: the target item is drawn from the
// query model, the link cache is snapshotted into the candidate set,
// and the first probe round fires immediately.
func (e *Engine) startQuery(p *peer, burstRemaining int) {
	q := &query{
		origin:         p.id,
		item:           e.universe.DrawQuery(e.rngContent),
		started:        e.now,
		counted:        e.now >= e.p.WarmupTime,
		burstRemaining: burstRemaining,
		k:              e.queryParallelism(p),
		lastProgress:   e.now,
		sel:            policy.NewSelector(e.p.QueryProbe, e.rngPolicy),
		seen:           make(map[cache.PeerID]struct{}, p.link.Len()+1),
	}
	// Never probe yourself.
	q.seen[p.id] = struct{}{}

	for _, entry := range p.link.Entries() {
		q.addCandidate(entry)
	}
	if q.counted {
		e.inFlightCounted++
	}
	e.handleProbeStep(q)
}

// handleProbeStep sends the next round of (up to ParallelProbes)
// probes for q and either completes the query or schedules the next
// round.
func (e *Engine) handleProbeStep(q *query) {
	origin, ok := e.peers[q.origin]
	if !ok {
		// The querying peer died; the query is abandoned.
		if q.counted {
			e.res.Aborted++
			e.inFlightCounted--
		}
		return
	}

	// All probes of a round are in flight before any replies arrive, so
	// a round is sent in full even if an early probe already satisfies
	// the query (the paper's "at most k-1 wasted probes").
	e.maybeGrowParallelism(q)
	for i := 0; i < q.k; i++ {
		entry, ok := e.nextCandidate(origin, q)
		if !ok {
			break
		}
		e.probeOne(origin, q, entry)
		if e.p.MaxProbesPerQuery > 0 && q.probes >= e.p.MaxProbesPerQuery {
			break
		}
	}

	switch {
	case q.results >= e.p.NumDesiredResults:
		e.completeQuery(origin, q, true)
	case q.sel.Len() == 0:
		e.completeQuery(origin, q, false)
	case e.p.MaxProbesPerQuery > 0 && q.probes >= e.p.MaxProbesPerQuery:
		e.completeQuery(origin, q, false)
	default:
		e.events.Push(e.now+e.p.ProbeSpacing, event{kind: evProbeStep, q: q})
	}
}

// nextCandidate pulls the best unprobed candidate, skipping targets the
// origin is currently backing off from.
func (e *Engine) nextCandidate(origin *peer, q *query) (cache.Entry, bool) {
	for {
		entry, ok := q.sel.Next()
		if !ok {
			return cache.Entry{}, false
		}
		if origin.suppressedNow(entry.Addr, e.now) {
			continue
		}
		return entry, true
	}
}

// probeOne delivers a single query probe from origin to the peer named
// by entry and processes the outcome (results, pong, introduction,
// cache bookkeeping).
func (e *Engine) probeOne(origin *peer, q *query, entry cache.Entry) {
	addr := entry.Addr
	q.probes++

	target, live := e.peers[addr]
	if !live {
		// Timeout: the peer is presumed dead and evicted.
		q.dead++
		origin.link.Remove(addr)
		e.blameDeadAddress(origin, addr)
		return
	}

	if e.now >= e.p.WarmupTime {
		target.probesReceived++
	}
	if target.addLoad(e.now, e.p.MaxProbesPerSecond) {
		// Refused: the overloaded peer drops the probe. Without
		// back-off the prober treats it like a dead peer (the
		// protocol's inherent throttling); with back-off the entry is
		// kept but suppressed for a while.
		q.refused++
		if e.p.DoBackoff {
			origin.suppress(addr, e.now+e.p.BackoffPeriod)
		} else {
			origin.link.Remove(addr)
		}
		return
	}

	q.good++
	e.maybeIntroduce(target, origin)

	res := 0
	if !target.malicious {
		res = target.lib.Results(q.item)
	}
	q.results += res
	if res > 0 {
		q.lastProgress = e.now
	}

	// Both sides record the interaction; the prober also refreshes its
	// direct NumRes experience with the target.
	origin.link.Touch(addr, e.now)
	origin.link.SetNumRes(addr, int32(res))
	target.link.Touch(origin.id, e.now)

	// The pong rides along with the query response: new candidates for
	// this query's cache and fodder for the link cache. Blacklisted
	// suppliers' pongs are dropped (poison detection).
	if origin.pongSourceBlocked(addr) {
		return
	}
	pong := e.buildPong(target, e.p.QueryPong)
	for _, pe := range pong {
		if pe.Addr == origin.id {
			continue
		}
		pe.Direct = false
		if e.p.ResetNumResults {
			pe.NumRes = 0
		}
		e.recordSupplied(origin, addr, pe.Addr)
		q.addCandidate(pe)
		policy.Insert(e.rngPolicy, e.p.CacheReplacement, origin.link, pe)
	}
}

// completeQuery records metrics and chains the next query of the burst.
func (e *Engine) completeQuery(origin *peer, q *query, satisfied bool) {
	if q.counted {
		e.inFlightCounted--
		e.res.Queries++
		if satisfied {
			e.res.Satisfied++
		} else {
			e.res.Unsatisfied++
		}
		e.res.ProbesTotal += int64(q.probes)
		e.res.GoodProbes += int64(q.good)
		e.res.DeadProbes += int64(q.dead)
		e.res.RefusedProbes += int64(q.refused)
		e.res.ResponseTimeSum += e.now - q.started
	}
	if q.burstRemaining > 0 {
		e.startQuery(origin, q.burstRemaining-1)
	}
}
