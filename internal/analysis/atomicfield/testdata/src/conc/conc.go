// Package conc poses as repro/node to exercise the atomicfield
// analyzer: a field touched through sync/atomic anywhere must be
// accessed atomically everywhere.
package conc

import "sync/atomic"

// Counter mixes atomic and plain access to hits; total stays clean.
type Counter struct {
	hits  int64
	total int64
	plain int64
}

// Inc is the atomic access that puts hits and total in the inventory.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.total, 1)
}

// Snapshot reads hits plainly in a different method: the cross-function
// mix the analyzer exists for.
func (c *Counter) Snapshot() int64 {
	return c.hits // want `accessed with sync/atomic .* but read/written plainly here`
}

// Reset writes hits plainly.
func (c *Counter) Reset() {
	c.hits = 0 // want `accessed with sync/atomic .* but read/written plainly here`
}

// Total stays on the atomic API: no finding.
func (c *Counter) Total() int64 {
	return atomic.LoadInt64(&c.total)
}

// Bump touches a field that is never accessed atomically: plain access
// to a plain field is fine.
func (c *Counter) Bump() {
	c.plain++
}

// Sealed carries a reasoned suppression for a single-threaded phase.
func (c *Counter) Sealed() int64 {
	//lint:atomicfield-ok read during construction before any goroutine starts
	return c.total
}

// Typed uses the typed atomic wrappers, which make plain access
// impossible; calls through the field are not plain accesses.
type Typed struct {
	n atomic.Int64
}

func (t *Typed) Inc() {
	t.n.Add(1)
}

func (t *Typed) Load() int64 {
	return t.n.Load()
}
