package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/report"
)

func init() {
	register("fig14", "Figure 14: probe breakdown under capacity limits (MR policies)",
		fig14Specs, fig14Render)
	register("fig15", "Figure 15: unsatisfaction vs capacity limit",
		fig15Specs, fig15Render)
}

// mrParams is the Section 6.3 configuration: the load-concentrating MR
// policy family.
func mrParams(opts Options) core.Params {
	p := opts.baseParams()
	p.QueryProbe = policy.SelMR
	p.QueryPong = policy.SelMR
	p.CacheReplacement = policy.EvLR
	return p
}

func capacityNetworkSizes(scale Scale) []int {
	if scale == Full {
		// The paper's sweep tops out at 5000; the refused-probe trend
		// is already unambiguous across this 4x range, and the N=5000
		// point alone costs more than the rest of the suite combined.
		return []int{500, 1000, 2000}
	}
	return []int{200, 400}
}

func fig14Caps() []int { return []int{50, 10, 5, 1} }

func fig14Specs(opts Options) []Spec {
	var params []core.Params
	for _, n := range capacityNetworkSizes(opts.Scale) {
		for _, c := range fig14Caps() {
			p := mrParams(opts)
			p.NetworkSize = n
			p.MaxProbesPerSecond = c
			params = append(params, p)
		}
	}
	return []Spec{{Family: FamilyGUESS, Core: params}}
}

func fig14Render(opts Options, batches [][]PointResult) (*Result, error) {
	nets := capacityNetworkSizes(opts.Scale)
	caps := fig14Caps()
	results := coreResultsOf(batches[0])
	t := report.NewTable("Figure 14: probes per query under capacity limits (MR policies)",
		"NetworkSize", "MaxProbesPerSecond", "GoodProbes", "RefusedProbes", "DeadProbes")
	idx := 0
	for _, n := range nets {
		for _, c := range caps {
			r := results[idx]
			t.AddRow(n, c, r.GoodProbesPerQuery(), r.RefusedProbesPerQuery(), r.DeadProbesPerQuery())
			idx++
		}
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func fig15Caps() []int { return []int{1, 2, 5, 10, 20, 50} }

func fig15Specs(opts Options) []Spec {
	var params []core.Params
	for _, n := range capacityNetworkSizes(opts.Scale) {
		for _, c := range fig15Caps() {
			p := mrParams(opts)
			p.NetworkSize = n
			p.MaxProbesPerSecond = c
			params = append(params, p)
		}
	}
	return []Spec{{Family: FamilyGUESS, Core: params}}
}

func fig15Render(opts Options, batches [][]PointResult) (*Result, error) {
	nets := capacityNetworkSizes(opts.Scale)
	caps := fig15Caps()
	results := coreResultsOf(batches[0])
	t := report.NewTable("Figure 15: unsatisfaction vs capacity limit (MR policies)",
		"NetworkSize", "MaxProbesPerSecond", "Unsatisfaction")
	chart := report.NewChart("Figure 15", "MaxProbesPerSecond", "Unsatisfied queries")
	idx := 0
	for _, n := range nets {
		var xs, ys []float64
		for _, c := range caps {
			u := results[idx].UnsatisfactionWithAborted()
			t.AddRow(n, c, u)
			xs = append(xs, float64(c))
			ys = append(ys, u)
			idx++
		}
		if err := chart.Add(report.Series{Name: fmt.Sprintf("N=%d", n), X: xs, Y: ys}); err != nil {
			return nil, err
		}
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}
