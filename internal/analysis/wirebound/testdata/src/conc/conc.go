// Package conc poses as repro/node to exercise the wirebound analyzer:
// a length decoded off the wire must be bounded before it sizes an
// allocation.
package conc

import "encoding/binary"

const maxFrame = 1 << 20

// unbounded allocates straight from the decoded length: one hostile
// datagram demands gigabytes.
func unbounded(head []byte) []byte {
	n := binary.BigEndian.Uint32(head)
	return make([]byte, n) // want `wire-decoded length with no bound check`
}

// bounded compares the length against a maximum first: the safe shape.
func bounded(head []byte) []byte {
	n := binary.BigEndian.Uint32(head)
	if n > maxFrame {
		return nil
	}
	return make([]byte, n)
}

// clamped bounds through the min builtin.
func clamped(head []byte) []byte {
	n := min(int(binary.BigEndian.Uint16(head)), 512)
	return make([]byte, n)
}

// indexed builds the length from byte-slice indexing: same taint, no
// binary call.
func indexed(b []byte) []byte {
	size := int(b[0])<<8 | int(b[1])
	return make([]byte, size) // want `wire-decoded length with no bound check`
}

// frameLen is a decode helper; its summary marks the return value as a
// wire integer.
func frameLen(head []byte) int {
	return int(binary.BigEndian.Uint32(head))
}

// laundered routes the length through the helper: caught through the
// interprocedural summary.
func laundered(head []byte) []byte {
	n := frameLen(head)
	return make([]byte, n) // want `wire-decoded length with no bound check`
}

// launderedBounded bounds the helper's result: fine.
func launderedBounded(head []byte) []byte {
	n := frameLen(head)
	if n > maxFrame {
		return nil
	}
	return make([]byte, n)
}

// vouched carries a reasoned suppression.
func vouched(head []byte) []byte {
	n := binary.BigEndian.Uint32(head)
	//lint:wirebound-ok the caller validated the frame header against maxFrame
	return make([]byte, n)
}

// fixed sizes come from nowhere near the wire.
func fixed(xs []int) ([]byte, []int) {
	return make([]byte, 64), make([]int, len(xs))
}

// stale carries a directive with nothing to suppress: the framework's
// stale-suppression sweep reports the annotation itself.
func stale() []byte {
	//lint:wirebound-ok this allocation is fixed-size // want `unused suppression`
	return make([]byte, 8)
}
