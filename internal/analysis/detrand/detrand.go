// Package detrand implements the guess-lint analyzer that keeps
// nondeterministic inputs — the wall clock and ambient RNGs — out of
// the simulation packages.
//
// A seeded run is only reproducible if every input is a function of
// Params.Seed. One time.Now() in a policy, or one draw from the
// auto-seeded math/rand globals, silently desynchronizes runs in a way
// no unit test catches until a golden file flakes. Inside the
// deterministic packages (see analysis.IsDeterministic) this analyzer
// forbids:
//
//   - wall-clock reads and timers: time.Now, time.Since, time.Until,
//     time.Sleep, time.After, time.Tick, time.NewTimer, time.NewTicker,
//     time.AfterFunc (simulations use eventq's virtual clock; types
//     like time.Duration remain fine);
//   - the global math/rand and math/rand/v2 functions (rand.Intn,
//     rand.Shuffle, ...), which share hidden auto-seeded state;
//     explicitly seeded local generators (rand.New(rand.NewSource(s)))
//     are allowed, though simrng streams are the house idiom;
//   - any use of crypto/rand, which is nondeterministic by design.
//
// Escape hatch: //lint:wallclock-ok <reason> on the offending line or
// the line above.
package detrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Suppress is the //lint: directive that silences this analyzer.
const Suppress = "wallclock-ok"

// wallClock are the time package functions that read the real clock or
// schedule on it.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand(/v2) package-level functions that
// build explicitly seeded local state rather than drawing from the
// hidden globals.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock time and ambient RNGs in deterministic simulation packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if wallClock[sel.Sel.Name] && !pass.Suppressed(sel.Pos(), Suppress) {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock, which desynchronizes seeded runs; use the event queue's virtual time, or annotate //lint:%s <reason>",
						sel.Sel.Name, Suppress)
				}
			case "math/rand", "math/rand/v2":
				if isGlobalRandFunc(pass, sel) && !pass.Suppressed(sel.Pos(), Suppress) {
					pass.Reportf(sel.Pos(),
						"global %s.%s draws from hidden auto-seeded state; draw from a named simrng stream (or a locally seeded generator), or annotate //lint:%s <reason>",
						pkgName.Imported().Path(), sel.Sel.Name, Suppress)
				}
			case "crypto/rand":
				if !pass.Suppressed(sel.Pos(), Suppress) {
					pass.Reportf(sel.Pos(),
						"crypto/rand is nondeterministic by design and must not reach simulation code; use simrng, or annotate //lint:%s <reason>",
						Suppress)
				}
			}
			return true
		})
	}
	return nil
}

// isGlobalRandFunc reports whether sel names a package-level function
// of math/rand(/v2) that touches the shared global generator. Anything
// that is not a constructor does: the draw functions (Intn, Float64,
// Perm, Shuffle, ...), Seed, and Read.
func isGlobalRandFunc(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false // a type such as rand.Rand or rand.Source
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return !randConstructors[fn.Name()]
}
