package core

// MergeResults combines measurements from replicate runs of the same
// configuration under different seeds. Counters add; sampled
// cache-health and connectivity averages are weighted by their sample
// counts; per-peer loads concatenate (each replicate's population is a
// disjoint sample of the same process). Per-query derived metrics
// (ProbesPerQuery, Unsatisfaction, ...) then reflect the pooled runs.
//
// It returns nil for an empty input; a single result is returned
// as-is.
func MergeResults(rs []*Results) *Results {
	if len(rs) == 0 {
		return nil
	}
	if len(rs) == 1 {
		return rs[0]
	}
	out := &Results{}
	var healthWeight, connWeight float64
	for _, r := range rs {
		out.Queries += r.Queries
		out.Satisfied += r.Satisfied
		out.Unsatisfied += r.Unsatisfied
		out.Aborted += r.Aborted
		out.ProbesTotal += r.ProbesTotal
		out.GoodProbes += r.GoodProbes
		out.DeadProbes += r.DeadProbes
		out.RefusedProbes += r.RefusedProbes
		out.ResponseTimeSum += r.ResponseTimeSum
		out.Pings += r.Pings
		out.DeadPings += r.DeadPings
		out.Births += r.Births
		out.Deaths += r.Deaths
		out.BlacklistEvents += r.BlacklistEvents
		out.PeerLoads = append(out.PeerLoads, r.PeerLoads...)

		if r.CacheSamples > 0 {
			w := float64(r.CacheSamples)
			out.AvgCacheEntries += w * r.AvgCacheEntries
			out.AvgLiveEntries += w * r.AvgLiveEntries
			out.AvgLiveFraction += w * r.AvgLiveFraction
			out.AvgGoodEntries += w * r.AvgGoodEntries
			out.CacheSamples += r.CacheSamples
			healthWeight += w
		}
		if r.ConnectivityRuns > 0 {
			w := float64(r.ConnectivityRuns)
			out.AvgLargestWCC += w * r.AvgLargestWCC
			out.ConnectivityRuns += r.ConnectivityRuns
			connWeight += w
			if r.FinalLargestWCC > out.FinalLargestWCC {
				out.FinalLargestWCC = r.FinalLargestWCC
			}
		}
	}
	if healthWeight > 0 {
		out.AvgCacheEntries /= healthWeight
		out.AvgLiveEntries /= healthWeight
		out.AvgLiveFraction /= healthWeight
		out.AvgGoodEntries /= healthWeight
	}
	if connWeight > 0 {
		out.AvgLargestWCC /= connWeight
	}
	return out
}
