package experiments

import (
	"context"
	"sync"
	"testing"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/gnutella"
	"repro/internal/gossip"
	"repro/internal/obs"
	"repro/internal/simrng"
)

// The cross-protocol property suite: every search family in the repo —
// GUESS (core), Gnutella flooding, gossip rumor spreading, and the DHT
// ring — runs under identical seeds across a table of configurations,
// and each must uphold the shared conservation invariants:
//
//   - messages sent == delivered + dropped (or the family's probe
//     outcome partition, for families without an explicit drop model);
//   - satisfaction lies in [0,1] and satisfied + unsatisfied
//     partitions the query count;
//   - no query outlives its budget (TTL, round cap, hop cap, or
//     per-query probe cap).
//
// Configurations deliberately include degenerate corners (zero loss,
// zero cache, fanout 1, tiny networks) where off-by-one accounting
// bugs are most visible.

// protoConfig is one knob setting exercised by all four families.
type protoConfig struct {
	name string
	n    int

	// Shared gossip/DHT static failure model.
	dead, loss float64

	// Gossip knobs.
	mode      gossip.Mode
	fanout    int
	maxRounds int

	// DHT knobs.
	maxHops  int
	dhtCache int

	// Flood knobs.
	ttl    int
	degree int

	// GUESS knobs.
	guessCache int
	maxProbes  int // MaxProbesPerQuery; 0 = unlimited
}

var protoConfigs = []protoConfig{
	{name: "baseline", n: 80, dead: 0.1, loss: 0.05, mode: gossip.ModePushPull,
		fanout: 2, maxRounds: 12, maxHops: 32, dhtCache: 16, ttl: 4, degree: 6,
		guessCache: 10},
	{name: "lossless", n: 60, dead: 0, loss: 0, mode: gossip.ModePush,
		fanout: 3, maxRounds: 8, maxHops: 16, dhtCache: 0, ttl: 3, degree: 4,
		guessCache: 8, maxProbes: 40},
	{name: "lossy", n: 80, dead: 0.2, loss: 0.25, mode: gossip.ModePull,
		fanout: 2, maxRounds: 16, maxHops: 40, dhtCache: 32, ttl: 5, degree: 6,
		guessCache: 6, maxProbes: 20},
	{name: "tiny-net", n: 40, dead: 0.1, loss: 0.05, mode: gossip.ModePushPull,
		fanout: 1, maxRounds: 6, maxHops: 10, dhtCache: 4, ttl: 2, degree: 4,
		guessCache: 4, maxProbes: 10},
	{name: "high-fanout", n: 100, dead: 0.05, loss: 0.02, mode: gossip.ModePush,
		fanout: 6, maxRounds: 4, maxHops: 24, dhtCache: 8, ttl: 3, degree: 8,
		guessCache: 12},
	{name: "deep-flood", n: 90, dead: 0.15, loss: 0.1, mode: gossip.ModePull,
		fanout: 3, maxRounds: 10, maxHops: 32, dhtCache: 16, ttl: 6, degree: 8,
		guessCache: 10, maxProbes: 60},
	{name: "big-cache", n: 70, dead: 0.1, loss: 0.05, mode: gossip.ModePushPull,
		fanout: 2, maxRounds: 12, maxHops: 32, dhtCache: 64, ttl: 4, degree: 6,
		guessCache: 30},
	{name: "tight-budget", n: 60, dead: 0.1, loss: 0.05, mode: gossip.ModePushPull,
		fanout: 2, maxRounds: 3, maxHops: 6, dhtCache: 8, ttl: 2, degree: 5,
		guessCache: 8, maxProbes: 12},
}

var protoSeeds = []uint64{1, 7, 1001}

const (
	protoQueries = 30 // per-family query/lookup count per subtest
	protoDesired = 1
)

func TestCrossProtocolInvariants(t *testing.T) {
	for _, cfg := range protoConfigs {
		for _, seed := range protoSeeds {
			cfg, seed := cfg, seed
			t.Run(cfg.name+"/seed="+simrngSeedLabel(seed), func(t *testing.T) {
				checkGuessInvariants(t, cfg, seed)
				checkFloodInvariants(t, cfg, seed)
				checkGossipInvariants(t, cfg, seed)
				checkDHTInvariants(t, cfg, seed)
			})
		}
	}
}

func simrngSeedLabel(seed uint64) string {
	// strconv is avoided to keep the import list tight; seeds are small.
	digits := ""
	for seed > 0 {
		digits = string(rune('0'+seed%10)) + digits
		seed /= 10
	}
	if digits == "" {
		digits = "0"
	}
	return digits
}

// doneCollector records per-query probe totals from EvQueryDone events
// so the per-query probe budget can be checked even though Results
// only exposes aggregates.
type doneCollector struct {
	mu     sync.Mutex
	probes []int
}

func (c *doneCollector) Observe(e obs.Event) {
	if e.Kind != obs.EvQueryDone {
		return
	}
	c.mu.Lock()
	c.probes = append(c.probes, e.Probes)
	c.mu.Unlock()
}

func checkGuessInvariants(t *testing.T, cfg protoConfig, seed uint64) {
	t.Helper()
	p := core.DefaultParams()
	p.NetworkSize = cfg.n
	p.CacheSize = cfg.guessCache
	p.MaxProbesPerQuery = cfg.maxProbes
	p.WarmupTime = 5
	p.MeasureTime = 25
	p.Seed = seed
	engine, err := core.New(p)
	if err != nil {
		t.Fatalf("GUESS: %v", err)
	}
	var done doneCollector
	engine.SetObserver(&done)
	res, err := engine.Run(context.Background())
	if err != nil {
		t.Fatalf("GUESS: %v", err)
	}
	// Probe outcome partition: every probe is good, dead, or refused.
	if res.ProbesTotal != res.GoodProbes+res.DeadProbes+res.RefusedProbes {
		t.Fatalf("GUESS probe conservation: total %d != good %d + dead %d + refused %d",
			res.ProbesTotal, res.GoodProbes, res.DeadProbes, res.RefusedProbes)
	}
	if res.Satisfied+res.Unsatisfied != res.Queries {
		t.Fatalf("GUESS partition: satisfied %d + unsatisfied %d != queries %d",
			res.Satisfied, res.Unsatisfied, res.Queries)
	}
	if sat := 1 - res.UnsatisfactionWithAborted(); sat < 0 || sat > 1 {
		t.Fatalf("GUESS satisfaction %v outside [0,1]", sat)
	}
	// Per-query probe budget, observed at the event level.
	if cfg.maxProbes > 0 {
		for _, probes := range done.probes {
			if probes > cfg.maxProbes {
				t.Fatalf("GUESS query used %d probes, budget %d", probes, cfg.maxProbes)
			}
		}
	}
	if len(done.probes) == 0 {
		t.Fatal("GUESS run completed no queries; config too small to be meaningful")
	}
}

func checkFloodInvariants(t *testing.T, cfg protoConfig, seed uint64) {
	t.Helper()
	u, err := content.New(content.DefaultParams())
	if err != nil {
		t.Fatalf("flood: %v", err)
	}
	rng := simrng.New(seed).Stream("crossproto-flood")
	topo, err := gnutella.NewRandom(rng, cfg.n, cfg.degree)
	if err != nil {
		t.Fatalf("flood: %v", err)
	}
	pop, err := gnutella.NewPopulation(u, cfg.n, rng)
	if err != nil {
		t.Fatalf("flood: %v", err)
	}
	satisfied := 0
	for q := 0; q < protoQueries; q++ {
		res, fs, err := gnutella.FloodSearch(topo, pop, rng, rng.Intn(cfg.n), cfg.ttl, protoDesired)
		if err != nil {
			t.Fatalf("flood: %v", err)
		}
		if res.Satisfied {
			satisfied++
			if res.Results < protoDesired {
				t.Fatalf("flood satisfied with %d results, desired %d", res.Results, protoDesired)
			}
		}
		// Reach conservation: the origin is always reached, never more
		// peers than exist, and each non-origin peer needed a message.
		if r := len(fs.Reached); r < 1 || r > cfg.n {
			t.Fatalf("flood reached %d peers of %d", r, cfg.n)
		}
		if fs.Messages < len(fs.Reached)-1 {
			t.Fatalf("flood reached %d peers on %d messages", len(fs.Reached), fs.Messages)
		}
		// TTL budget analog: only reached peers forward, each to at most
		// its neighbor count, at most once per flood.
		maxMessages := 0
		for _, v := range fs.Reached {
			maxMessages += len(topo.Neighbors(v))
		}
		if fs.Messages > maxMessages {
			t.Fatalf("flood sent %d messages, forwarding bound %d", fs.Messages, maxMessages)
		}
	}
	if rate := float64(satisfied) / protoQueries; rate < 0 || rate > 1 {
		t.Fatalf("flood satisfaction %v outside [0,1]", rate)
	}
}

func checkGossipInvariants(t *testing.T, cfg protoConfig, seed uint64) {
	t.Helper()
	p := gossip.DefaultParams()
	p.NetworkSize = cfg.n
	p.AvgDegree = cfg.degree
	p.Mode = cfg.mode
	p.Fanout = cfg.fanout
	p.MaxRounds = cfg.maxRounds
	p.NumQueries = protoQueries
	p.NumDesiredResults = protoDesired
	p.DeadFraction = cfg.dead
	p.LossProb = cfg.loss
	p.Seed = seed
	res, err := gossip.Run(context.Background(), p)
	if err != nil {
		t.Fatalf("gossip: %v", err)
	}
	if res.Queries != protoQueries {
		t.Fatalf("gossip completed %d queries, want %d", res.Queries, protoQueries)
	}
	if res.Satisfied+res.Unsatisfied != res.Queries {
		t.Fatalf("gossip partition: satisfied %d + unsatisfied %d != queries %d",
			res.Satisfied, res.Unsatisfied, res.Queries)
	}
	if res.MessagesSent != res.MessagesDelivered+res.MessagesDropped {
		t.Fatalf("gossip conservation: sent %d != delivered %d + dropped %d",
			res.MessagesSent, res.MessagesDelivered, res.MessagesDropped)
	}
	if sat := res.Satisfaction(); sat < 0 || sat > 1 {
		t.Fatalf("gossip satisfaction %v outside [0,1]", sat)
	}
	if res.MaxRoundsUsed > cfg.maxRounds {
		t.Fatalf("gossip query ran %d rounds, budget %d", res.MaxRoundsUsed, cfg.maxRounds)
	}
	var loadSum int64
	for _, l := range res.PeerLoads {
		loadSum += l
	}
	if loadSum != res.MessagesDelivered {
		t.Fatalf("gossip load sum %d != delivered %d", loadSum, res.MessagesDelivered)
	}
}

func checkDHTInvariants(t *testing.T, cfg protoConfig, seed uint64) {
	t.Helper()
	p := dht.DefaultParams()
	p.NetworkSize = cfg.n
	p.CacheSize = cfg.dhtCache
	p.MaxHops = cfg.maxHops
	p.NumLookups = protoQueries
	p.NumDesiredResults = protoDesired
	p.DeadFraction = cfg.dead
	p.LossProb = cfg.loss
	p.Seed = seed
	res, err := dht.Run(context.Background(), p)
	if err != nil {
		t.Fatalf("dht: %v", err)
	}
	if res.Lookups != protoQueries {
		t.Fatalf("dht completed %d lookups, want %d", res.Lookups, protoQueries)
	}
	if res.Satisfied+res.Unsatisfied != res.Lookups {
		t.Fatalf("dht partition: satisfied %d + unsatisfied %d != lookups %d",
			res.Satisfied, res.Unsatisfied, res.Lookups)
	}
	if res.MessagesSent != res.MessagesDelivered+res.MessagesDropped {
		t.Fatalf("dht conservation: sent %d != delivered %d + dropped %d",
			res.MessagesSent, res.MessagesDelivered, res.MessagesDropped)
	}
	if sat := res.Satisfaction(); sat < 0 || sat > 1 {
		t.Fatalf("dht satisfaction %v outside [0,1]", sat)
	}
	if res.MaxHopsUsed > cfg.maxHops {
		t.Fatalf("dht lookup used %d hops, budget %d", res.MaxHopsUsed, cfg.maxHops)
	}
	var loadSum int64
	for _, l := range res.PeerLoads {
		loadSum += l
	}
	if loadSum != res.MessagesDelivered {
		t.Fatalf("dht load sum %d != delivered %d", loadSum, res.MessagesDelivered)
	}
}

// TestCrossProtocolSeedDeterminism runs one configuration twice per
// family at the same seed and requires identical aggregates — the
// cross-family analog of each package's own determinism test, from the
// experiments layer's point of view.
func TestCrossProtocolSeedDeterminism(t *testing.T) {
	cfg := protoConfigs[0]
	const seed = 99

	gp := gossip.DefaultParams()
	gp.NetworkSize = cfg.n
	gp.NumQueries = protoQueries
	gp.Seed = seed
	g1, err := gossip.Run(context.Background(), gp)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gossip.Run(context.Background(), gp)
	if err != nil {
		t.Fatal(err)
	}
	if g1.MessagesSent != g2.MessagesSent || g1.Satisfied != g2.Satisfied || g1.RoundsTotal != g2.RoundsTotal {
		t.Fatalf("gossip aggregates diverged: %+v vs %+v", g1, g2)
	}

	dp := dht.DefaultParams()
	dp.NetworkSize = cfg.n
	dp.NumLookups = protoQueries
	dp.Seed = seed
	d1, err := dht.Run(context.Background(), dp)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := dht.Run(context.Background(), dp)
	if err != nil {
		t.Fatal(err)
	}
	if d1.MessagesSent != d2.MessagesSent || d1.Satisfied != d2.Satisfied || d1.HopsTotal != d2.HopsTotal {
		t.Fatalf("dht aggregates diverged: %+v vs %+v", d1, d2)
	}
}
