package node

import (
	"time"

	"repro/internal/cache"
)

// breakerState is the client-path circuit breaker's state for one peer.
type breakerState uint8

const (
	// brClosed: healthy; probes flow normally.
	brClosed breakerState = iota
	// brOpen: tripped by consecutive timeouts; the peer is suppressed
	// from probe selection until the cooldown elapses.
	brOpen
	// brHalfOpen: cooldown elapsed; the next probe is a trial. Success
	// closes the breaker, another timeout evicts the peer.
	brHalfOpen
)

// peerState is everything the node knows about one peer's health:
// the Busy-demotion streak and suppression deadline, and the circuit
// breaker driven by consecutive probe timeouts. One struct per peer so
// a single component owns peer health (and a single prune pass keeps
// the map bounded by the link cache).
type peerState struct {
	busyStreak int
	busyUntil  time.Time

	timeouts int
	state    breakerState
	openedAt time.Time
}

// peerHealth tracks per-peer demotion and breaker state. All methods
// must be called with the node mutex held.
type peerHealth struct {
	busyBackoff    time.Duration
	busyBackoffMax time.Duration
	busyEvictAfter int

	breakerThreshold int // consecutive timeouts to trip; 0 disables
	breakerCooldown  time.Duration

	m       map[cache.PeerID]*peerState
	openCnt int // peers currently brOpen or brHalfOpen (for the gauge)
}

func newPeerHealth(cfg Config) *peerHealth {
	return &peerHealth{
		busyBackoff:      cfg.BusyBackoff,
		busyBackoffMax:   cfg.BusyBackoffMax,
		busyEvictAfter:   cfg.BusyEvictAfter,
		breakerThreshold: cfg.BreakerThreshold,
		breakerCooldown:  cfg.BreakerCooldown,
		m:                make(map[cache.PeerID]*peerState),
	}
}

// get returns addr's state, creating it on first use.
func (h *peerHealth) get(id cache.PeerID) *peerState {
	st, ok := h.m[id]
	if !ok {
		st = &peerState{}
		h.m[id] = st
	}
	return st
}

// suppressed reports whether a peer should sit out probe selection:
// demoted by Busy backoff, or behind an open breaker. An open breaker
// whose cooldown has elapsed transitions to half-open and stops
// suppressing (the next probe is the trial).
func (h *peerHealth) suppressed(id cache.PeerID, now time.Time) bool {
	st, ok := h.m[id]
	if !ok {
		return false
	}
	if now.Before(st.busyUntil) {
		return true
	}
	st.busyUntil = time.Time{}
	if st.state == brOpen {
		if now.Before(st.openedAt.Add(h.breakerCooldown)) {
			return true
		}
		st.state = brHalfOpen
	}
	return false
}

// onTimeout records that every transmission of a probe to id went
// unanswered, and reports whether the peer should be evicted. With the
// breaker disabled (threshold 0) that is always true — the protocol's
// evict-on-death default. With it enabled, the peer survives until the
// timeout streak trips the breaker open; after the cooldown, one
// half-open trial failure evicts it.
func (h *peerHealth) onTimeout(id cache.PeerID, now time.Time) (evict, opened bool) {
	if h.breakerThreshold <= 0 {
		h.forget(id)
		return true, false
	}
	st := h.get(id)
	if st.state == brHalfOpen {
		// The trial probe failed: give up on the peer.
		h.forget(id)
		return true, false
	}
	st.timeouts++
	if st.state == brClosed && st.timeouts >= h.breakerThreshold {
		st.state = brOpen
		st.openedAt = now
		h.openCnt++
		return false, true
	}
	return false, false
}

// onBusy records a Busy refusal from id and reports whether the peer
// should be evicted. With BusyBackoff disabled the refusal evicts (the
// paper's no-backoff default); otherwise the peer is suppressed with
// exponential backoff and evicted only after busyEvictAfter
// consecutive refusals. The second return is true when the refusal was
// absorbed by demotion (for the BusyBackoffs counter).
func (h *peerHealth) onBusy(id cache.PeerID, now time.Time) (evict, demoted bool) {
	if h.busyBackoff <= 0 {
		h.forget(id)
		return true, false
	}
	st := h.get(id)
	st.busyStreak++
	// A Busy is still a reply: the peer is alive, so the timeout
	// streak resets even as the busy streak grows.
	st.timeouts = 0
	if st.busyStreak >= h.busyEvictAfter {
		h.forget(id)
		return true, false
	}
	d := h.busyBackoff << (st.busyStreak - 1)
	if d > h.busyBackoffMax {
		d = h.busyBackoffMax
	}
	st.busyUntil = now.Add(d)
	return false, true
}

// onSuccess clears all health state for a peer that answered: the busy
// streak, the timeout streak, and any open breaker.
func (h *peerHealth) onSuccess(id cache.PeerID) { h.forget(id) }

// forget drops all state for an evicted peer.
func (h *peerHealth) forget(id cache.PeerID) {
	if st, ok := h.m[id]; ok {
		if st.state != brClosed {
			h.openCnt--
		}
		delete(h.m, id)
	}
}

// pruneTo drops state for peers no longer in the link cache, so the
// health map cannot grow without bound under churn: policy-driven
// replacement evicts peers without telling the health layer, and this
// sweep (run after cache inserts) reclaims them.
func (h *peerHealth) pruneTo(link *cache.LinkCache) {
	for id, st := range h.m {
		if !link.Has(id) {
			if st.state != brClosed {
				h.openCnt--
			}
			delete(h.m, id)
		}
	}
}

// open returns the number of peers behind a non-closed breaker.
func (h *peerHealth) open() int { return h.openCnt }

// len returns the number of tracked peers (test hook).
func (h *peerHealth) len() int { return len(h.m) }
