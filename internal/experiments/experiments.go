// Package experiments maps every table and figure of the paper's
// evaluation (Table 3, Figures 3-21) to a runnable experiment that
// regenerates it. Each experiment returns report tables whose rows are
// the series the paper plots; EXPERIMENTS.md records paper-vs-measured
// outcomes.
//
// Experiments run at two scales: Quick (small networks and short
// measurement windows, for benchmarks and CI) and Full (the paper's
// parameters). Sweep points run in parallel, one engine per
// goroutine.
package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

// Scale selects experiment fidelity.
type Scale int

const (
	// Quick runs small networks for seconds-level turnaround.
	Quick Scale = iota
	// Full runs the paper's network sizes and durations.
	Full
)

// String names the scale.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Options configures an experiment run.
type Options struct {
	// Scale selects Quick or Full fidelity.
	Scale Scale
	// Seed drives all randomness. Zero means 1.
	Seed uint64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Replications pools this many independently seeded runs per sweep
	// point (0 or 1 = single run). Derived per-query metrics then
	// reflect the pooled runs, smoothing figures at a proportional
	// compute cost.
	Replications int
	// Progress, when non-nil, receives one line per completed run.
	// Writes are serialized across the worker pool (and across
	// concurrent Run calls sharing a writer).
	Progress io.Writer
	// Context, when non-nil, cancels the experiment: no further runs
	// are scheduled after cancellation, in-flight simulations stop at
	// their next event batch, and Run returns the context's error.
	Context context.Context
	// Observer, when non-nil, receives trace events from every
	// simulation in the sweep. Runs execute in parallel, so it must be
	// safe for concurrent use (TraceWriter is). Sweeps served from the
	// in-process memo cache do not re-run and emit no events.
	Observer obs.Observer
	// Metrics, when non-nil, is shared by every simulation in the
	// sweep; counters aggregate across runs. Memo-cached sweeps do not
	// re-run and leave it untouched.
	Metrics *obs.SimMetrics
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// durations returns (warmup, measure) simulated seconds for the scale.
// The full-scale window is sized so the complete suite stays
// laptop-affordable; individual experiments stabilize well within it
// (each point still covers tens of thousands of queries at N=1000).
func (o Options) durations() (warmup, measure float64) {
	if o.Scale == Full {
		return 300, 1000
	}
	return 200, 600
}

// baseParams returns the defaults adjusted for the option scale.
func (o Options) baseParams() core.Params {
	p := core.DefaultParams()
	p.Seed = o.seed()
	p.WarmupTime, p.MeasureTime = o.durations()
	if o.Scale == Quick {
		p.NetworkSize = 400
		// Denser queries keep per-query statistics meaningful in the
		// short quick window without changing per-query behaviour.
		p.QueryRate = 4 * core.DefaultParams().QueryRate
	}
	return p
}

// Result is one experiment's regenerated artifact.
type Result struct {
	// ID is the experiment identifier (e.g. "fig4").
	ID string
	// Title describes the paper artifact.
	Title string
	// Tables holds the regenerated rows (usually one table).
	Tables []*report.Table
	// Charts optionally holds ASCII renderings of the figure.
	Charts []*report.Chart
}

// WriteTo renders the result's tables and charts.
func (r *Result) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, t := range r.Tables {
		n, err := t.WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
		m, err := io.WriteString(w, "\n")
		total += int64(m)
		if err != nil {
			return total, err
		}
	}
	for _, c := range r.Charts {
		n, err := io.WriteString(w, c.String()+"\n")
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Runner produces one experiment result.
type Runner func(Options) (*Result, error)

// experiment is a registry entry.
type experiment struct {
	title string
	run   Runner
}

// registry maps experiment IDs to runners. Populated by init functions
// in the per-area files.
var registry = map[string]experiment{}

// register adds an experiment at package init time.
func register(id, title string, run Runner) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", id))
	}
	registry[id] = experiment{title: title, run: run}
}

// IDs returns all experiment identifiers in a stable order: the paper
// artifacts first (table3, then figures in paper order), then the
// extension and ablation studies alphabetically.
func IDs() []string {
	var paper, extra []string
	for id := range registry {
		if _, ok := paperOrder(id); ok {
			paper = append(paper, id)
		} else {
			extra = append(extra, id)
		}
	}
	sort.Slice(paper, func(i, j int) bool {
		a, _ := paperOrder(paper[i])
		b, _ := paperOrder(paper[j])
		return a < b
	})
	sort.Strings(extra)
	return append(paper, extra...)
}

// paperOrder ranks paper artifacts: table3 first, then figure number.
func paperOrder(id string) (int, bool) {
	if id == "table3" {
		return 0, true
	}
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return n, true
	}
	return 0, false
}

// Title returns an experiment's description.
func Title(id string) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e.title, nil
}

// Run executes the experiment with the given options.
func Run(id string, opts Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	res, err := e.run(opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = e.title
	return res, nil
}

// sweepMemo caches completed sweeps within a process. Several figures
// are different projections of the same sweep (Figures 3-5 share the
// cache-size sweep; Figures 16-18 and 19-21 share the poisoning
// sweeps); on a small machine re-running them would dominate the
// suite's cost. Keys include every input that affects the runs.
var sweepMemo sync.Map // string -> []*core.Results

// memoKey builds a cache key from the protocol family, the options, a
// sweep label, and a digest of the parameter sets themselves. The
// family discriminator ("guess", "gossip", "dht", ...) guarantees that
// results cached for one engine can never be served to a different
// protocol whose label, scale, seed, and digest happen to coincide —
// the cache stores untyped values, so a collision would surface as a
// type-assertion panic at best and silent cross-protocol reuse at
// worst. The digest matters too: labels are chosen by experiment
// authors, and two sweeps sharing a label, scale, seed, and
// replication count but differing in params (say, after an experiment
// is re-tuned) must never silently collide.
func memoKey(family string, opts Options, label, digest string) string {
	return fmt.Sprintf("%s|%s|scale=%v|seed=%d|reps=%d|params=%s",
		family, label, opts.Scale, opts.seed(), opts.Replications, digest)
}

// paramsDigest hashes the full JSON encoding of every parameter set
// (length-prefixed, so concatenation ambiguities cannot produce equal
// digests for different sweeps). Core's Params serializes completely
// except the Trace writer, which never participates in sweeps; the
// gossip and DHT parameter structs are plain data.
func paramsDigest[T any](params []T) string {
	h := sha256.New()
	fmt.Fprintf(h, "n=%d;", len(params))
	for _, p := range params {
		b, err := json.Marshal(p)
		if err != nil {
			// Params is a plain data struct; Marshal cannot fail. Guard
			// anyway so a future non-serializable field cannot poison
			// the cache with colliding keys.
			panic(fmt.Sprintf("experiments: cannot hash params: %v", err))
		}
		fmt.Fprintf(h, "%d:", len(b))
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// runAllMemo is runAll with process-level memoization under the given
// label.
func runAllMemo(opts Options, label string, params []core.Params) ([]*core.Results, error) {
	key := memoKey("guess", opts, label, paramsDigest(params))
	if v, ok := sweepMemo.Load(key); ok {
		return v.([]*core.Results), nil
	}
	results, err := runAll(opts, params)
	if err != nil {
		return nil, err
	}
	sweepMemo.Store(key, results)
	return results, nil
}

// runAll executes a batch of parameter sets in parallel, preserving
// order, pooling Options.Replications independently seeded runs per
// point.
func runAll(opts Options, params []core.Params) ([]*core.Results, error) {
	reps := opts.Replications
	if reps < 1 {
		reps = 1
	}
	if reps == 1 {
		return runFlat(opts, params)
	}
	expanded := make([]core.Params, 0, len(params)*reps)
	for _, p := range params {
		for r := 0; r < reps; r++ {
			rp := p
			rp.Seed = p.Seed + uint64(r+1)*0x51ed2701
			expanded = append(expanded, rp)
		}
	}
	flat, err := runFlat(opts, expanded)
	if err != nil {
		return nil, err
	}
	merged := make([]*core.Results, len(params))
	for i := range params {
		merged[i] = core.MergeResults(flat[i*reps : (i+1)*reps])
	}
	return merged, nil
}

// progressMu serializes Options.Progress writes. It is package-level,
// not per-runFlat call: two concurrent experiment runs pointed at the
// same writer (the CLI does this for memoized figure groups) must not
// interleave either — per-call mutexes would only protect within one
// pool. TestParallelProgressRace exercises this under -race.
var progressMu sync.Mutex

// runFlat executes each parameter set once on a bounded pool of
// opts.parallelism() workers, preserving order. Each run gets a
// distinct seed derived from its index so sweep points are independent
// but reproducible. A worker pool (rather than one goroutine per point
// gated on a semaphore) keeps goroutine count — and therefore stack
// and scheduler footprint — flat even for multi-thousand-point sweeps.
//
// Cancelling opts.Context stops the feeder (no new runs start),
// interrupts in-flight runs at their next event batch, and makes
// runFlat return the context's error.
func runFlat(opts Options, params []core.Params) ([]*core.Results, error) {
	ctx := opts.ctx()
	results := make([]*core.Results, len(params))
	errs := make([]error, len(params))
	work := make(chan int)
	workers := opts.parallelism()
	if workers > len(params) {
		workers = len(params)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker chains engines through Renew so its arenas —
			// peer arrays, link caches, event queue, scratch — are
			// allocated once per worker, not once per sweep point.
			// Recycling is draw-order-neutral (TestRenewMatchesFresh), so
			// sweep results are identical to fresh-engine runs.
			var prev *core.Engine
			for i := range work {
				p := params[i]
				p.Seed = p.Seed + uint64(i)*0x9e3779b9
				var engine *core.Engine
				var err error
				if prev != nil {
					engine, err = prev.Renew(p)
				} else {
					engine, err = core.New(p)
				}
				if err != nil {
					errs[i] = err
					prev = nil
					continue
				}
				prev = engine
				engine.SetObserver(opts.Observer)
				engine.SetMetrics(opts.Metrics)
				res, err := engine.Run(ctx)
				if err != nil {
					errs[i] = err
					continue
				}
				results[i] = res
				if opts.Progress != nil {
					progressMu.Lock()
					fmt.Fprintf(opts.Progress, "  run %d/%d done (N=%d cache=%d)\n",
						i+1, len(params), p.NetworkSize, p.CacheSize)
					progressMu.Unlock()
				}
			}
		}()
	}
feed:
	for i := range params {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// cacheSizesFor returns the cache-size sweep for a given network size,
// log-spaced as in Figures 3-4. For the largest networks the sweep is
// capped: exhaustive queries hold per-candidate state for their whole
// (up to ~1000 s) lifetime, and N=5000 with multi-thousand-entry
// caches needs tens of gigabytes — beyond a laptop-scale run. The
// capped range still shows the figures' growth and the satisfaction
// minimum.
func cacheSizesFor(networkSize int, scale Scale) []int {
	all := []int{5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	if scale == Quick {
		all = []int{5, 10, 20, 50, 100, 200}
	}
	maxCache := networkSize
	if networkSize >= 5000 {
		maxCache = 1000
	}
	out := make([]int, 0, len(all))
	for _, c := range all {
		if c <= maxCache {
			out = append(out, c)
		}
	}
	return out
}

// networkSizesFor returns the network-size sweep.
func networkSizesFor(scale Scale) []int {
	if scale == Full {
		return []int{200, 500, 1000, 2000, 5000}
	}
	return []int{200, 400}
}
