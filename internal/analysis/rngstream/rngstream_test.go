package rngstream_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/rngstream"
)

// TestFindings checks the named-stream discipline: dynamic stream
// names, Split, sibling reseeding, and exported RNG fields are flagged
// in a deterministic package; constant names, plain seeds, unexported
// fields, and reasoned annotations pass.
func TestFindings(t *testing.T) {
	analysistest.Run(t, "testdata/src/det", "repro/internal/core", rngstream.Analyzer)
}

// TestExemptPackage checks that non-deterministic packages (the live
// node's fault injector) may derive dynamic per-link streams.
func TestExemptPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/exempt", "repro/node/memnet", rngstream.Analyzer)
}
