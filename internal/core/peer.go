package core

import (
	"math"

	"repro/internal/cache"
	"repro/internal/content"
)

// peer is the simulator's per-peer state.
type peer struct {
	id   cache.PeerID
	born float64
	// deathAt is fixed at birth: lifetimes are drawn once, and dead
	// peers never return (the paper's conservative worst case).
	deathAt float64

	lib content.Library
	// advertisedFiles is what the peer claims in introductions and
	// pongs. Good peers tell the truth; malicious peers claim the
	// maximum to stay attractive under MFS.
	advertisedFiles int32
	malicious       bool
	// selfish peers follow the protocol except that they probe with a
	// huge fan-out to minimize their own response time (Section 3.3).
	selfish bool

	link *cache.LinkCache

	// pingInterval is this peer's current maintenance period; it only
	// diverges from the global parameter under AdaptivePing.
	pingInterval float64
	// pingsInWindow/deadInWindow drive the adaptive-ping controller.
	pingsInWindow, deadInWindow int

	// Poison-detection state (allocated only when enabled):
	// provenance records which neighbor supplied each pong-learned
	// address, supplierStats tallies how their entries turned out, and
	// blacklist holds convicted suppliers.
	provenance map[cache.PeerID]cache.PeerID
	pongStats  map[cache.PeerID]*supplierRecord
	blacklist  map[cache.PeerID]bool

	// aliveIdx is the peer's slot in the engine's alive slice, for O(1)
	// removal on death.
	aliveIdx int

	// Load accounting: probes received in the current 1-second window.
	winStart float64
	winCount int

	// probesReceived counts probes arriving while the peer is alive
	// during the measurement window (good + refused; Figure 13's
	// load metric).
	probesReceived int64

	// suppressed maps overloaded targets to the time until which this
	// peer will not probe them. Allocated lazily; only used with
	// DoBackoff.
	suppressed map[cache.PeerID]float64
}

// supplierRecord tallies the quality of one neighbor's pong entries.
type supplierRecord struct {
	given int
	dead  int
}

// addLoad records an incoming probe at time now and reports whether
// the peer is overloaded (the probe must be refused). maxPerSec <= 0
// means unlimited capacity.
func (p *peer) addLoad(now float64, maxPerSec int) bool {
	if maxPerSec <= 0 {
		return false
	}
	sec := math.Floor(now)
	if sec != p.winStart {
		p.winStart = sec
		p.winCount = 0
	}
	p.winCount++
	return p.winCount > maxPerSec
}

// suppressedUntil reports whether target is under back-off at now.
func (p *peer) suppressedNow(target cache.PeerID, now float64) bool {
	if p.suppressed == nil {
		return false
	}
	until, ok := p.suppressed[target]
	if !ok {
		return false
	}
	if now >= until {
		delete(p.suppressed, target)
		return false
	}
	return true
}

// suppress records a back-off for target until the given time.
func (p *peer) suppress(target cache.PeerID, until float64) {
	if p.suppressed == nil {
		p.suppressed = make(map[cache.PeerID]float64, 4)
	}
	p.suppressed[target] = until
}
