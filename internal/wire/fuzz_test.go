package wire

import (
	"net/netip"
	"reflect"
	"testing"
)

// fuzzSeeds returns one valid encoding of each of the five message
// types plus edge-case variants, so the fuzzer starts from the full
// grammar.
func fuzzSeeds(t testing.TB) [][]byte {
	entries := []PongEntry{
		{Addr: netip.MustParseAddrPort("10.0.0.1:6346"), NumFiles: 120, NumRes: 3},
		{Addr: netip.MustParseAddrPort("[2001:db8::1]:9"), NumFiles: 0, NumRes: 65535},
	}
	msgs := []Message{
		&Ping{MsgID: 1, NumFiles: 42},
		&Pong{MsgID: 2, Entries: entries},
		&Pong{MsgID: 3}, // empty pong
		&Query{MsgID: 4, Desired: 5, NumFiles: 7, Keyword: "free bird"},
		&QueryHit{MsgID: 5, Results: []string{"free bird.mp3", ""}, Pong: entries},
		&QueryHit{MsgID: 6}, // empty hit
		&Busy{MsgID: 7},
	}
	seeds := make([][]byte, 0, len(msgs))
	for _, m := range msgs {
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("seed encode %T: %v", m, err)
		}
		seeds = append(seeds, b)
	}
	return seeds
}

// FuzzDecode asserts the decoder never panics on arbitrary bytes and
// that anything it accepts round-trips: re-encoding an accepted
// message and decoding it again must reproduce the message exactly.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	// Structurally hostile inputs: truncated header, bad magic, huge
	// declared lengths.
	f.Add([]byte{})
	f.Add([]byte{'G', 'U'})
	f.Add([]byte{'G', 'U', 1, 3, 0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff})
	f.Add([]byte("GU\x01\x02\x00\x00\x00\x00\x00\x00\x00\x09\x00\x01\x21"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data) // must never panic
		if err != nil {
			if m != nil {
				t.Fatalf("Decode returned both a message and error %v", err)
			}
			return
		}
		reencoded, err := Encode(m)
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %v\ninput: %x", err, data)
		}
		m2, err := Decode(reencoded)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v\ninput: %x", err, data)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed message:\n%#v\n%#v", m, m2)
		}
	})
}

// TestFuzzSeedsRoundTrip keeps the seed corpus exercised in ordinary
// test runs (fuzz targets only run seeds under `go test`, but this
// also pins the corpus as valid).
func TestFuzzSeedsRoundTrip(t *testing.T) {
	for i, seed := range fuzzSeeds(t) {
		m, err := Decode(seed)
		if err != nil {
			t.Fatalf("seed %d does not decode: %v", i, err)
		}
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("seed %d does not re-encode: %v", i, err)
		}
		m2, err := Decode(b)
		if err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("seed %d round trip broken: %v", i, err)
		}
	}
}
