package content

import (
	"math"
	"testing"

	"repro/internal/simrng"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
		ok     bool
	}{
		{"defaults", func(*Params) {}, true},
		{"zero items", func(p *Params) { p.NumItems = 0 }, false},
		{"negative pop exp", func(p *Params) { p.PopularityExp = -1 }, false},
		{"negative query exp", func(p *Params) { p.QueryExp = -1 }, false},
		{"bad nonexistent fraction", func(p *Params) { p.NonexistentQueryFraction = 1 }, false},
		{"bad free rider", func(p *Params) { p.FreeRiderFraction = -0.1 }, false},
		{"negative sigma", func(p *Params) { p.LibrarySigma = -1 }, false},
		{"negative max library", func(p *Params) { p.MaxLibrary = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			_, err := New(p)
			if (err == nil) != tt.ok {
				t.Fatalf("New() error = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestFreeRiderFraction(t *testing.T) {
	p := DefaultParams()
	p.FreeRiderFraction = 0.25
	u := MustNew(p)
	r := simrng.New(1)
	const n = 20000
	zero := 0
	for i := 0; i < n; i++ {
		if u.SampleLibrarySize(r) == 0 {
			zero++
		}
	}
	if f := float64(zero) / n; math.Abs(f-0.25) > 0.02 {
		t.Fatalf("free-rider fraction %v, want ~0.25", f)
	}
}

func TestLibrarySizeBounds(t *testing.T) {
	p := DefaultParams()
	p.MaxLibrary = 50
	u := MustNew(p)
	r := simrng.New(2)
	for i := 0; i < 5000; i++ {
		s := u.SampleLibrarySize(r)
		if s < 0 || s > 50 {
			t.Fatalf("library size %d outside [0,50]", s)
		}
	}
}

func TestNewLibraryExactSize(t *testing.T) {
	u := MustNew(DefaultParams())
	r := simrng.New(3)
	for _, size := range []int{0, 1, 10, 500} {
		lib := u.NewLibrary(r, size)
		if lib.Size() != size {
			t.Fatalf("NewLibrary(%d).Size() = %d", size, lib.Size())
		}
	}
}

func TestNewLibraryDistinctValidItems(t *testing.T) {
	u := MustNew(DefaultParams())
	r := simrng.New(4)
	lib := u.NewLibrary(r, 300)
	seen := make(map[ItemID]bool)
	for _, id := range lib.Items() {
		if id < 0 || int(id) >= u.NumItems() {
			t.Fatalf("item %d outside universe", id)
		}
		if seen[id] {
			t.Fatalf("duplicate item %d", id)
		}
		seen[id] = true
	}
}

func TestPopularItemsMoreReplicated(t *testing.T) {
	u := MustNew(DefaultParams())
	r := simrng.New(5)
	const peers = 2000
	popularOwned, tailOwned := 0, 0
	tail := ItemID(u.NumItems() - 1)
	for i := 0; i < peers; i++ {
		lib := u.NewLibrary(r, 100)
		if lib.Contains(0) {
			popularOwned++
		}
		if lib.Contains(tail) {
			tailOwned++
		}
	}
	if popularOwned <= tailOwned*5 {
		t.Fatalf("replication not skewed: item0 on %d peers, tail item on %d", popularOwned, tailOwned)
	}
}

func TestDrawQueryNonexistentFraction(t *testing.T) {
	p := DefaultParams()
	p.NonexistentQueryFraction = 0.1
	u := MustNew(p)
	r := simrng.New(6)
	const n = 50000
	none := 0
	for i := 0; i < n; i++ {
		q := u.DrawQuery(r)
		if q == NoItem {
			none++
		} else if q < 0 || int(q) >= u.NumItems() {
			t.Fatalf("query item %d outside universe", q)
		}
	}
	if f := float64(none) / n; math.Abs(f-0.1) > 0.01 {
		t.Fatalf("nonexistent query fraction %v, want ~0.1", f)
	}
}

func TestLibraryZeroValue(t *testing.T) {
	var lib Library
	if lib.Size() != 0 {
		t.Fatal("zero library has nonzero size")
	}
	if lib.Contains(0) || lib.Contains(NoItem) {
		t.Fatal("zero library claims to contain items")
	}
	if lib.Results(3) != 0 {
		t.Fatal("zero library returned results")
	}
}

func TestResults(t *testing.T) {
	u := MustNew(DefaultParams())
	r := simrng.New(7)
	lib := u.NewLibrary(r, 50)
	items := lib.Items()
	if lib.Results(items[0]) != 1 {
		t.Fatal("owned item returned no result")
	}
	if lib.Results(NoItem) != 0 {
		t.Fatal("NoItem matched")
	}
}

// TestMatchProbabilityGrowsWithLibrary verifies the core property the
// MFS policy exploits: peers with more files answer more queries.
func TestMatchProbabilityGrowsWithLibrary(t *testing.T) {
	u := MustNew(DefaultParams())
	r := simrng.New(8)
	match := func(libSize, trials int) float64 {
		hits := 0
		lib := u.NewLibrary(r, libSize)
		for i := 0; i < trials; i++ {
			if lib.Contains(u.DrawQuery(r)) {
				hits++
			}
		}
		return float64(hits) / float64(trials)
	}
	small := match(10, 20000)
	large := match(1000, 20000)
	if large <= small*3 {
		t.Fatalf("match probability not increasing with library size: small=%v large=%v", small, large)
	}
}

// TestUnsatisfiableFloor: with the default calibration, a noticeable
// fraction of queries cannot be answered even by the union of many
// libraries (the paper's ~6% floor at NetworkSize 1000).
func TestUnsatisfiableFloor(t *testing.T) {
	u := MustNew(DefaultParams())
	r := simrng.New(9)
	// Union of 1000 typical libraries.
	libs := make([]Library, 1000)
	for i := range libs {
		libs[i] = u.NewLibrary(r, u.SampleLibrarySize(r))
	}
	const queries = 5000
	unsat := 0
	for i := 0; i < queries; i++ {
		q := u.DrawQuery(r)
		found := false
		for _, lib := range libs {
			if lib.Contains(q) {
				found = true
				break
			}
		}
		if !found {
			unsat++
		}
	}
	f := float64(unsat) / queries
	if f < 0.02 || f > 0.15 {
		t.Fatalf("unsatisfiable floor %v, want ~0.03-0.10", f)
	}
}

func BenchmarkNewLibrary(b *testing.B) {
	u := MustNew(DefaultParams())
	r := simrng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.NewLibrary(r, 150)
	}
}

func BenchmarkDrawQuery(b *testing.B) {
	u := MustNew(DefaultParams())
	r := simrng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.DrawQuery(r)
	}
}
