package memnet

// Reliable in-memory byte streams over the same switchboard as the
// packet network, for testing connection-oriented protocols (the sweep
// coordinator/worker transport) without real sockets.
//
// A stream is a connected net.Conn pair with bounded buffering and
// full deadline support. Unlike the packet side, streams model only
// connectivity faults and latency: Block/Isolate on the underlying
// link makes writes fail with ErrLinkBlocked (a reliable transport
// would mask loss and jitter by retransmission, so simulating them
// here would only re-test TCP), and a link's Latency delays each
// write by the one-way delay — which is how a "slow control link"
// scenario drives a deadline-based client into its timeout path.
// That is exactly what partition tests need — a blocked link kills
// the connection at the next write, the way a real TCP connection
// dies on a partitioned path.

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"os"
	"sync"
	"time"
)

// ErrLinkBlocked reports a stream operation over a blocked or isolated
// link.
var ErrLinkBlocked = errors.New("memnet: link blocked")

// streamChunks bounds each direction's in-flight chunk queue; a writer
// blocks (or times out against its write deadline) when the reader
// falls this far behind.
const streamChunks = 64

// ListenStream creates a stream listener with a fresh address on the
// network.
func (n *Network) ListenStream() *StreamListener {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr := netip.AddrPortFrom(netip.MustParseAddr("10.99.0.1"), n.nextPort)
	n.nextPort++
	l := &StreamListener{
		net:     n,
		addr:    addr,
		backlog: make(chan *StreamConn, 16),
		done:    make(chan struct{}),
	}
	if n.streams == nil {
		n.streams = make(map[netip.AddrPort]*StreamListener)
	}
	n.streams[addr] = l
	return l
}

// DialStream connects a new endpoint to the stream listener at addr.
// The dial fails if no listener is registered there, the listener's
// backlog is full, or the link is blocked or isolated in either
// direction.
func (n *Network) DialStream(addr netip.AddrPort) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.streams[addr]
	var local netip.AddrPort
	if ok {
		local = netip.AddrPortFrom(netip.MustParseAddr("10.99.0.1"), n.nextPort)
		n.nextPort++
	}
	n.mu.Unlock()
	if !ok {
		return nil, &net.OpError{Op: "dial", Net: "memnet", Err: errors.New("connection refused")}
	}
	if err := n.streamLinkOK(local, addr); err != nil {
		return nil, &net.OpError{Op: "dial", Net: "memnet", Err: err}
	}
	client, server := n.streamPair(local, addr)
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, &net.OpError{Op: "dial", Net: "memnet", Err: errors.New("connection refused")}
	default:
		return nil, &net.OpError{Op: "dial", Net: "memnet", Err: errors.New("connection refused: backlog full")}
	}
}

// streamLinkOK reports whether data may currently flow local→remote.
func (n *Network) streamLinkOK(from, to netip.AddrPort) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.isolated[from] || n.isolated[to] || n.profileLocked(from, to).Blocked {
		return ErrLinkBlocked
	}
	return nil
}

// streamLatency is the link's configured one-way delay local→remote.
func (n *Network) streamLatency(from, to netip.AddrPort) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.profileLocked(from, to).Latency
}

// streamPair builds the two connected halves of a stream.
func (n *Network) streamPair(client, server netip.AddrPort) (*StreamConn, *StreamConn) {
	c2s := newHalfPipe()
	s2c := newHalfPipe()
	c := &StreamConn{net: n, local: client, remote: server, in: s2c, out: c2s, closed: make(chan struct{})}
	s := &StreamConn{net: n, local: server, remote: client, in: c2s, out: s2c, closed: make(chan struct{})}
	c.peerClosed, s.peerClosed = s.closed, c.closed
	return c, s
}

// StreamListener accepts in-memory stream connections; it implements
// net.Listener.
type StreamListener struct {
	net     *Network
	addr    netip.AddrPort
	backlog chan *StreamConn

	closeOnce sync.Once
	done      chan struct{}
}

var _ net.Listener = (*StreamListener)(nil)

// Accept implements net.Listener.
func (l *StreamListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener. Established connections stay up.
func (l *StreamListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.streams, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (l *StreamListener) Addr() net.Addr { return net.TCPAddrFromAddrPort(l.addr) }

// AddrPort returns the listener's address in netip form.
func (l *StreamListener) AddrPort() netip.AddrPort { return l.addr }

// halfPipe carries one direction of a stream: a bounded chunk queue
// plus the reader's remainder of a partially consumed chunk.
type halfPipe struct {
	ch   chan []byte
	rest []byte // owned by the reading side
}

func newHalfPipe() *halfPipe {
	return &halfPipe{ch: make(chan []byte, streamChunks)}
}

// StreamConn is one end of an in-memory stream; it implements
// net.Conn.
type StreamConn struct {
	net           *Network
	local, remote netip.AddrPort
	in, out       *halfPipe

	closeOnce  sync.Once
	closed     chan struct{} // this end closed
	peerClosed chan struct{} // other end closed

	mu            sync.Mutex
	readDeadline  time.Time
	writeDeadline time.Time
}

var _ net.Conn = (*StreamConn)(nil)

// deadlineTimer arms a timer for the given deadline; the caller must
// stop it. A nil channel never fires (no deadline).
func deadlineTimer(at time.Time) (<-chan time.Time, *time.Timer, error) {
	if at.IsZero() {
		return nil, nil, nil
	}
	d := time.Until(at)
	if d <= 0 {
		return nil, nil, os.ErrDeadlineExceeded
	}
	t := time.NewTimer(d)
	return t.C, t, nil
}

// Read implements net.Conn. After the peer closes, buffered data is
// still drained before io.EOF.
func (c *StreamConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	timeout, timer, err := deadlineTimer(c.readDeadline)
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if timer != nil {
		defer timer.Stop()
	}
	if len(c.in.rest) > 0 {
		n := copy(p, c.in.rest)
		c.in.rest = c.in.rest[n:]
		return n, nil
	}
	// Prefer buffered data over the peer-closed signal so a close
	// racing a final write still delivers the write first.
	var chunk []byte
	select {
	case chunk = <-c.in.ch:
	default:
		select {
		case chunk = <-c.in.ch:
		case <-c.closed:
			return 0, net.ErrClosed
		case <-c.peerClosed:
			select {
			case chunk = <-c.in.ch:
			default:
				return 0, io.EOF
			}
		case <-timeout:
			return 0, os.ErrDeadlineExceeded
		}
	}
	n := copy(p, chunk)
	c.in.rest = chunk[n:]
	return n, nil
}

// Write implements net.Conn. Writes over a blocked or isolated link
// fail with ErrLinkBlocked — a partition kills the connection at the
// next write, like a reset on a real network. A link with Latency
// configured delays each write by the one-way delay (still bounded by
// the write deadline), modeling a slow path.
func (c *StreamConn) Write(p []byte) (int, error) {
	select {
	case <-c.closed:
		return 0, net.ErrClosed
	default:
	}
	select {
	case <-c.peerClosed:
		return 0, &net.OpError{Op: "write", Net: "memnet", Err: errors.New("connection reset by peer")}
	default:
	}
	if err := c.net.streamLinkOK(c.local, c.remote); err != nil {
		return 0, &net.OpError{Op: "write", Net: "memnet", Err: err}
	}
	c.mu.Lock()
	timeout, timer, err := deadlineTimer(c.writeDeadline)
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if timer != nil {
		defer timer.Stop()
	}
	if d := c.net.streamLatency(c.local, c.remote); d > 0 {
		lat := time.NewTimer(d)
		select {
		case <-lat.C:
		case <-c.closed:
			lat.Stop()
			return 0, net.ErrClosed
		case <-c.peerClosed:
			lat.Stop()
			return 0, &net.OpError{Op: "write", Net: "memnet", Err: errors.New("connection reset by peer")}
		case <-timeout:
			lat.Stop()
			return 0, os.ErrDeadlineExceeded
		}
		// The link may have been blocked while the write was in flight.
		if err := c.net.streamLinkOK(c.local, c.remote); err != nil {
			return 0, &net.OpError{Op: "write", Net: "memnet", Err: err}
		}
	}
	chunk := append([]byte(nil), p...)
	select {
	case c.out.ch <- chunk:
		return len(p), nil
	case <-c.closed:
		return 0, net.ErrClosed
	case <-c.peerClosed:
		return 0, &net.OpError{Op: "write", Net: "memnet", Err: errors.New("connection reset by peer")}
	case <-timeout:
		return 0, os.ErrDeadlineExceeded
	}
}

// Close implements net.Conn. The peer's reads drain buffered data and
// then see io.EOF; its writes fail.
func (c *StreamConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// LocalAddr implements net.Conn.
func (c *StreamConn) LocalAddr() net.Addr { return net.TCPAddrFromAddrPort(c.local) }

// RemoteAddr implements net.Conn.
func (c *StreamConn) RemoteAddr() net.Addr { return net.TCPAddrFromAddrPort(c.remote) }

// SetDeadline implements net.Conn.
func (c *StreamConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readDeadline, c.writeDeadline = t, t
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *StreamConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readDeadline = t
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *StreamConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writeDeadline = t
	return nil
}
