// Package guess is a from-scratch reproduction of "Evaluating GUESS and
// Non-Forwarding Peer-to-Peer Search" (Yang, Vinograd, Garcia-Molina;
// ICDCS 2004).
//
// GUESS is a non-forwarding search protocol for unstructured
// peer-to-peer networks: instead of flooding queries through an
// overlay, each peer keeps a cache of pointers to other peers and
// probes them directly, one (or a few) at a time, until it has enough
// results. The paper shows that this gives fine-grained control over
// query cost — over an order of magnitude cheaper than fixed-extent
// flooding — but that performance, fairness and robustness depend
// critically on the policies used to order probes, build pongs, and
// replace cache entries.
//
// This package is the public façade over the full simulation stack:
//
//   - Run executes one GUESS simulation from a Config (the paper's
//     Tables 1 and 2 parameters) and returns Results; the context
//     cancels it cooperatively (partial Results, Interrupted set),
//     and functional options attach observability — WithMetrics
//     fills a MetricsRegistry, WithObserver streams TraceEvents
//     (e.g. into a TraceWriter for JSONL), WithProgress logs
//     periodic status lines;
//   - RunExperiment regenerates any table or figure from the paper's
//     evaluation section (Table 3, Figures 3-21) — see ExperimentIDs;
//     LookupExperiment returns the typed Experiment handle behind it,
//     whose sweep specs (ExperimentSpec, ExperimentPoint) are plain
//     data — inspectable, serializable, and executable out of process;
//   - the policy constants (Random, MRU, LRU, MFS, MR, MRStar and the
//     eviction counterparts) name the five policy families studied.
//
// A minimal session:
//
//	cfg := guess.DefaultConfig()
//	cfg.QueryPong = guess.MFS
//	cfg.CacheReplacement = guess.EvictLFS
//	res, err := guess.Run(context.Background(), cfg)
//	if err != nil { ... }
//	fmt.Printf("%.1f probes/query, %.1f%% unsatisfied\n",
//		res.ProbesPerQuery(), 100*res.Unsatisfaction())
//
// Run's signature changed when the observability layer landed: it now
// takes a context and variadic options where it took a bare Config.
// The deprecated RunConfig shim keeps the old call shape compiling;
// new code should call Run directly. See README.md, "Observability",
// for the metric and trace schemas.
//
// The experiment runner likewise moved from a string-keyed entry point
// to a typed one: code that called the internal experiments.Run(id,
// opts) should move to LookupExperiment(id) followed by Experiment.Run
// — the lookup separates "does this artifact exist" from "did the
// sweep succeed", and the handle exposes the sweep's typed specs.
// Distribution rides on the same types: set ExperimentOptions.Executor
// to a coordinator or worker pool (internal/orchestrate, cmd/guess-sweep)
// and the sweep fans out across workers while producing byte-identical
// artifacts. See README.md, "Distributed sweeps".
//
// The substrates live in internal packages: the discrete-event engine
// (internal/core), the content and churn models (internal/content,
// internal/lifetime), the policy implementations (internal/policy), the
// forwarding baselines (internal/gnutella), and the per-figure
// experiment harness (internal/experiments).
package guess
