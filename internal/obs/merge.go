package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// Merge folds a Snapshot taken from another registry into r: counter
// values add, gauge values overwrite (a gauge is "latest state", so the
// merged-in snapshot wins, exactly as a later Set would), and
// histograms add bucket-by-bucket with their sums. Instruments absent
// from r are created from the snapshot (with empty help text);
// histogram bucket bounds are taken from the snapshot's bucket list and
// must match any existing registration.
//
// Integer-valued state (counters, histogram bucket counts) merges
// exactly, so folding per-run snapshots in run order reproduces a
// shared-registry serial run bit for bit. Histogram sums are float
// additions and associate differently than per-observation
// accumulation, so a merged sum can differ from a shared-registry run
// in the last ulp; merging the same snapshots in the same order is
// byte-stable.
//
// Merge is how a sweep coordinator aggregates the metric snapshots its
// workers stream back with each result.
func (r *Registry) Merge(s Snapshot) error {
	if r == nil {
		return nil
	}
	// Deterministic fold order: sorted names per kind, counters then
	// gauges then histograms. Counter and gauge merges commute anyway;
	// sorting keeps histogram sum folds (which do not) byte-stable.
	for _, name := range sortedKeys(s.Counters) {
		ins, err := r.mergeTarget(name, kindCounter)
		if err != nil {
			return err
		}
		ins.c.Add(s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		ins, err := r.mergeTarget(name, kindGauge)
		if err != nil {
			return err
		}
		ins.g.Set(s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		ins, err := r.mergeTarget(name, kindHistogram)
		if err != nil {
			return err
		}
		if err := mergeHistogram(name, ins, hs); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mergeTarget resolves (or creates) the named instrument for a merge.
// Unlike the public constructors it does not validate the name against
// the local naming convention — the snapshot's names were validated by
// whatever registry produced them.
func (r *Registry) mergeTarget(name string, k kind) (*instrument, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ins, ok := r.byName[name]; ok {
		if ins.kind != k {
			return nil, fmt.Errorf("obs: merge of %s %q into existing %s", k, name, ins.kind)
		}
		return ins, nil
	}
	ins := &instrument{name: name, kind: k}
	switch k {
	case kindCounter:
		ins.c = &Counter{}
	case kindGauge:
		ins.g = &Gauge{}
	case kindHistogram:
		ins.h = &Histogram{} // bounds installed by mergeHistogram
	}
	r.byName[name] = ins
	r.ordered = append(r.ordered, ins)
	return ins, nil
}

// mergeHistogram folds one histogram snapshot into an instrument,
// installing bucket bounds on a fresh instrument and checking them on
// an existing one. Snapshot buckets are cumulative; deltas are added to
// the matching fixed bucket.
func mergeHistogram(name string, ins *instrument, hs HistogramSnapshot) error {
	if len(hs.Buckets) == 0 || !math.IsInf(hs.Buckets[len(hs.Buckets)-1].LE, 1) {
		return fmt.Errorf("obs: merge of histogram %q without a +Inf bucket", name)
	}
	upper := make([]float64, 0, len(hs.Buckets)-1)
	for _, b := range hs.Buckets[:len(hs.Buckets)-1] {
		upper = append(upper, b.LE)
	}
	h := ins.h
	if h.counts == nil {
		h.upper = upper
		h.counts = make([]atomic.Uint64, len(upper)+1)
	} else if len(h.upper) != len(upper) {
		return fmt.Errorf("obs: merge of histogram %q with %d buckets into existing %d", name, len(upper), len(h.upper))
	} else {
		for i := range upper {
			if h.upper[i] != upper[i] {
				return fmt.Errorf("obs: merge of histogram %q with mismatched bucket %v (existing %v)", name, upper[i], h.upper[i])
			}
		}
	}
	prev := uint64(0)
	for i, b := range hs.Buckets {
		if b.Count < prev {
			return fmt.Errorf("obs: merge of histogram %q with non-cumulative buckets", name)
		}
		delta := b.Count - prev
		prev = b.Count
		h.counts[i].Add(delta)
	}
	h.sum.Add(hs.Sum)
	return nil
}

// UnmarshalJSON is the inverse of MarshalJSON: the bound arrives as a
// string so "+Inf" survives the trip through JSON. Snapshots cross the
// sweep wire protocol, so buckets must round-trip.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.LE == "+Inf" {
		b.LE = math.Inf(1)
	} else {
		le, err := strconv.ParseFloat(raw.LE, 64)
		if err != nil {
			return fmt.Errorf("obs: bucket bound %q: %w", raw.LE, err)
		}
		b.LE = le
	}
	b.Count = raw.Count
	return nil
}
