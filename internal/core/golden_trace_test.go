package core

// Golden-trace determinism: the chaos layer (node/memnet) and the
// experiment harness both lean on the simrng stream discipline — named
// streams derived from one seed, never perturbed by unrelated draws.
// This test guards that discipline end to end: two engine runs with
// the same Params must be byte-identical in both their Results and
// their full CSV time-series trace, and a different seed must diverge.

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func runWithTrace(t *testing.T, p Params) (*Results, string) {
	t.Helper()
	var trace strings.Builder
	p.Trace = &trace
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res, trace.String()
}

func marshalResults(t *testing.T, r *Results) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestGoldenTraceDeterminism(t *testing.T) {
	p := quickParams()

	res1, trace1 := runWithTrace(t, p)
	res2, trace2 := runWithTrace(t, p)

	if got, want := marshalResults(t, res1), marshalResults(t, res2); got != want {
		t.Fatalf("same seed produced different Results:\n%s\n%s", got, want)
	}
	if trace1 != trace2 {
		// Point at the first diverging line for debuggability.
		l1, l2 := strings.Split(trace1, "\n"), strings.Split(trace2, "\n")
		for i := 0; i < len(l1) && i < len(l2); i++ {
			if l1[i] != l2[i] {
				t.Fatalf("same seed diverged at trace line %d:\n%q\n%q", i, l1[i], l2[i])
			}
		}
		t.Fatalf("same seed produced traces of different length: %d vs %d lines", len(l1), len(l2))
	}
	if trace1 == "" {
		t.Fatal("trace is empty; determinism check is vacuous")
	}

	p.Seed = p.Seed + 1
	res3, trace3 := runWithTrace(t, p)
	if trace3 == trace1 && marshalResults(t, res3) == marshalResults(t, res1) {
		t.Fatal("different seeds produced byte-identical runs (suspicious)")
	}
}
