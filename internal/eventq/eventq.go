// Package eventq implements the event queue at the heart of the
// discrete-event simulator: a binary min-heap keyed by virtual time
// with deterministic FIFO ordering among events scheduled for the same
// instant.
//
// Determinism matters: the simulator must produce bit-identical results
// for a given seed, so ties cannot be broken by map iteration order or
// pointer values. Every pushed event receives a monotonically
// increasing sequence number used as the tie-breaker.
package eventq

// Queue is a time-ordered event queue. The zero value is an empty queue
// ready for use. T is the event payload type.
//
// Queue is not safe for concurrent use; a simulation run is
// single-threaded by design (parallelism belongs across runs).
type Queue[T any] struct {
	heap []entry[T]
	seq  uint64
}

type entry[T any] struct {
	time float64
	seq  uint64
	v    T
}

// Len reports the number of pending events.
func (q *Queue[T]) Len() int { return len(q.heap) }

// Push schedules v at the given virtual time. Events pushed with equal
// times are dequeued in push order.
func (q *Queue[T]) Push(time float64, v T) {
	q.seq++
	q.heap = append(q.heap, entry[T]{time: time, seq: q.seq, v: v})
	q.up(len(q.heap) - 1)
}

// Pop removes and returns the earliest event. ok is false when the
// queue is empty.
func (q *Queue[T]) Pop() (time float64, v T, ok bool) {
	if len(q.heap) == 0 {
		var zero T
		return 0, zero, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	var zero entry[T]
	q.heap[last] = zero // release payload for GC
	q.heap = q.heap[:last]
	if len(q.heap) > 0 {
		q.down(0)
	}
	return top.time, top.v, true
}

// Peek returns the earliest event without removing it. ok is false when
// the queue is empty.
func (q *Queue[T]) Peek() (time float64, v T, ok bool) {
	if len(q.heap) == 0 {
		var zero T
		return 0, zero, false
	}
	return q.heap[0].time, q.heap[0].v, true
}

// Clear drops all pending events but keeps allocated capacity.
func (q *Queue[T]) Clear() {
	var zero entry[T]
	for i := range q.heap {
		q.heap[i] = zero
	}
	q.heap = q.heap[:0]
}

// Reset returns the queue to its freshly-constructed state while
// keeping allocated capacity: all pending events are dropped and the
// sequence counter rewinds to zero, so a recycled queue orders
// same-time events exactly like a brand-new one. Engines that are
// reused across runs call Reset instead of allocating a new queue;
// BenchmarkQueueReset pins the zero-allocation guarantee.
func (q *Queue[T]) Reset() {
	q.Clear()
	q.seq = 0
}

// pushSeq schedules v with a caller-supplied sequence number. It is
// the building block of the sharded queue, which assigns one global
// sequence across all shards so the K-way merge reproduces exactly the
// single-queue total order. Callers must supply strictly increasing
// sequence numbers.
func (q *Queue[T]) pushSeq(time float64, seq uint64, v T) {
	q.heap = append(q.heap, entry[T]{time: time, seq: seq, v: v})
	q.up(len(q.heap) - 1)
}

// head returns the key of the earliest event without removing it.
func (q *Queue[T]) head() (time float64, seq uint64, ok bool) {
	if len(q.heap) == 0 {
		return 0, 0, false
	}
	return q.heap[0].time, q.heap[0].seq, true
}

// less orders by (time, seq).
func (q *Queue[T]) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
