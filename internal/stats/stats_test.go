package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simrng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOnlineBasics(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Variance() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d", o.N())
	}
	if !almost(o.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", o.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if !almost(o.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("variance = %v", o.Variance())
	}
	if !almost(o.StdDev(), math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("stddev = %v", o.StdDev())
	}
}

func TestOnlineSingleObservation(t *testing.T) {
	var o Online
	o.Add(42)
	if o.Variance() != 0 {
		t.Fatal("variance of one observation not 0")
	}
}

// TestOnlineMergeMatchesSequential: merging two halves equals adding
// everything to one accumulator.
func TestOnlineMergeMatchesSequential(t *testing.T) {
	r := simrng.New(1)
	f := func(nRaw uint8) bool {
		n := int(nRaw) + 2
		var all, a, b Online
		for i := 0; i < n; i++ {
			x := r.NormFloat64() * 10
			all.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == all.N() &&
			almost(a.Mean(), all.Mean(), 1e-9) &&
			almost(a.Variance(), all.Variance(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMergeEmpty(t *testing.T) {
	var a, b Online
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge with empty changed state")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 3 {
		t.Fatal("merge into empty failed")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{3, 1, 2, 4, 5} // unsorted on purpose
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, tt := range tests {
		got, err := Quantile(vals, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty slice accepted")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Fatal("q < 0 accepted")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Fatal("q > 1 accepted")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Fatal("NaN accepted")
	}
	if got, err := Quantile([]float64{7}, 0.9); err != nil || got != 7 {
		t.Fatal("single-element quantile broken")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	if _, err := Quantile(vals, 0.5); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestGini(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
		tol  float64
	}{
		{"empty", nil, 0, 0},
		{"all zero", []float64{0, 0, 0}, 0, 0},
		{"perfectly even", []float64{5, 5, 5, 5}, 0, 1e-12},
		{"one has all (n=4)", []float64{0, 0, 0, 10}, 0.75, 1e-12},
		{"two level", []float64{1, 3}, 0.25, 1e-12},
	}
	for _, tt := range tests {
		if got := Gini(tt.in); !almost(got, tt.want, tt.tol) {
			t.Errorf("%s: Gini = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestGiniMonotoneInConcentration(t *testing.T) {
	even := []float64{10, 10, 10, 10, 10}
	skewed := []float64{1, 1, 1, 1, 46}
	if Gini(skewed) <= Gini(even) {
		t.Fatal("Gini not larger for more concentrated loads")
	}
}

func TestTopShare(t *testing.T) {
	loads := []float64{100, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	// Busiest 10% (1 of 10) carries 100/109.
	if got, want := TopShare(loads, 0.1), 100.0/109; !almost(got, want, 1e-12) {
		t.Fatalf("TopShare = %v, want %v", got, want)
	}
	if TopShare(nil, 0.5) != 0 {
		t.Fatal("empty TopShare not 0")
	}
	if TopShare([]float64{0, 0}, 0.5) != 0 {
		t.Fatal("all-zero TopShare not 0")
	}
	if got := TopShare(loads, 2); !almost(got, 1, 1e-12) {
		t.Fatalf("TopShare with fraction > 1 = %v", got)
	}
	if TopShare(loads, 0) != 0 {
		t.Fatal("zero fraction not 0")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 15} {
		h.Add(x)
	}
	counts := h.Count()
	want := []int64{2, 1, 0, 0, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if h.Under() != 1 || h.Over() != 2 {
		t.Fatalf("under/over = %d/%d", h.Under(), h.Over())
	}
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
	lo, hi := h.BinBounds(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("BinBounds(1) = [%v, %v)", lo, hi)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewHistogram(10, 0, 3); err == nil {
		t.Fatal("inverted range accepted")
	}
}

// TestHistogramTotalInvariant: every observation lands somewhere.
func TestHistogramTotalInvariant(t *testing.T) {
	h, err := NewHistogram(-5, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := simrng.New(4)
	const n = 10000
	for i := 0; i < n; i++ {
		h.Add(r.NormFloat64() * 4)
	}
	var sum int64
	for _, c := range h.Count() {
		sum += c
	}
	if sum+h.Under()+h.Over() != n {
		t.Fatal("histogram lost observations")
	}
}
