package node

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/policy"
)

// startNode spins up a node on a loopback UDP socket.
func startNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	n, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestListenAndClose(t *testing.T) {
	n := startNode(t, Config{})
	if !n.Addr().IsValid() {
		t.Fatal("invalid node address")
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	// Operations after close fail cleanly.
	if _, _, err := n.Query(context.Background(), "x", 1); err == nil {
		t.Fatal("Query succeeded after Close")
	}
	if _, err := n.PingPeer(context.Background(), n.Addr()); err == nil {
		t.Fatal("PingPeer succeeded after Close")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{CacheSize: -1},
		{PingInterval: -time.Second},
		{ProbeTimeout: -time.Second},
		{PongSize: 1000},
		{IntroProb: 2},
		{QueryProbe: 99},
		{CacheReplacement: 99},
	}
	for i, cfg := range bad {
		if _, err := Listen("127.0.0.1:0", cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestPingPeer(t *testing.T) {
	a := startNode(t, Config{Files: []string{"one", "two"}})
	b := startNode(t, Config{})
	ok, err := b.PingPeer(context.Background(), a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("live peer did not answer ping")
	}
	// Pinging a dead address times out without error.
	dead := netip.MustParseAddrPort("127.0.0.1:1")
	ok, err = b.PingPeer(context.Background(), dead)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("dead peer answered")
	}
}

func TestQueryFindsFiles(t *testing.T) {
	sharer := startNode(t, Config{Files: []string{"Free Bird.mp3", "stairway.ogg"}})
	empty := startNode(t, Config{})
	querier := startNode(t, Config{})
	querier.AddPeer(empty.Addr(), 0)
	querier.AddPeer(sharer.Addr(), 2)

	hits, stats, err := querier.Query(context.Background(), "free bird", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Name != "Free Bird.mp3" || hits[0].From != sharer.Addr() {
		t.Fatalf("unexpected hit %+v", hits[0])
	}
	if stats.Probes < 1 || stats.Good < 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestQueryStopsWhenSatisfied(t *testing.T) {
	sharer := startNode(t, Config{Files: []string{"hit.mp3"}})
	querier := startNode(t, Config{QueryProbe: policy.SelMFS})
	// MFS probes the advertised-rich sharer first; the query must stop
	// there and not probe the rest.
	for i := 0; i < 5; i++ {
		other := startNode(t, Config{})
		querier.AddPeer(other.Addr(), 0)
	}
	querier.AddPeer(sharer.Addr(), 100)

	hits, stats, err := querier.Query(context.Background(), "hit", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	if stats.Probes != 1 {
		t.Fatalf("probed %d peers, want 1 (MFS should try the sharer first)", stats.Probes)
	}
}

func TestQueryExhaustsAndReportsDead(t *testing.T) {
	querier := startNode(t, Config{ProbeTimeout: 50 * time.Millisecond})
	querier.AddPeer(netip.MustParseAddrPort("127.0.0.1:1"), 0) // dead
	hits, stats, err := querier.Query(context.Background(), "anything", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("hits from dead network: %v", hits)
	}
	if stats.Dead != 1 || stats.Probes != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if querier.CacheLen() != 0 {
		t.Fatal("dead peer not evicted")
	}
}

func TestQueryValidation(t *testing.T) {
	n := startNode(t, Config{})
	if _, _, err := n.Query(context.Background(), "", 1); err == nil {
		t.Fatal("empty keyword accepted")
	}
	if _, _, err := n.Query(context.Background(), "x", 0); err == nil {
		t.Fatal("desired=0 accepted")
	}
	if _, _, err := n.Query(context.Background(), "x", 300); err == nil {
		t.Fatal("desired=300 accepted")
	}
}

func TestQueryCacheChaining(t *testing.T) {
	// The querier knows only a relay; the relay knows the sharer. The
	// query must reach the sharer via the relay's piggy-backed pong.
	sharer := startNode(t, Config{Files: []string{"rare groove.flac"}})
	relay := startNode(t, Config{})
	relay.AddPeer(sharer.Addr(), 1)
	querier := startNode(t, Config{})
	querier.AddPeer(relay.Addr(), 0)

	hits, stats, err := querier.Query(context.Background(), "rare groove", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("chained query failed: hits=%v stats=%+v", hits, stats)
	}
	if stats.Probes != 2 {
		t.Fatalf("probes = %d, want 2 (relay then sharer)", stats.Probes)
	}
}

func TestBusyRefusal(t *testing.T) {
	sharer := startNode(t, Config{
		Files:              []string{"wanted.mp3"},
		MaxProbesPerSecond: 1,
	})
	querier := startNode(t, Config{})
	ctx := context.Background()

	// First query consumes the capacity; the second must be refused.
	querier.AddPeer(sharer.Addr(), 1)
	if _, _, err := querier.Query(ctx, "wanted", 1); err != nil {
		t.Fatal(err)
	}
	querier.AddPeer(sharer.Addr(), 1)
	_, stats, err := querier.Query(ctx, "wanted", 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Refused != 1 {
		t.Fatalf("stats = %+v, want one refusal", stats)
	}
	if got := sharer.Stats().ProbesRefused; got != 1 {
		t.Fatalf("sharer refused %d, want 1", got)
	}
}

func TestIntroductionProtocol(t *testing.T) {
	// With IntroProb=1 the pinged node must learn the pinger.
	a := startNode(t, Config{IntroProb: 1})
	b := startNode(t, Config{Files: []string{"f"}})
	if _, err := b.PingPeer(context.Background(), a.Addr()); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, addr := range a.CacheAddrs() {
		if addr == b.Addr() {
			found = true
		}
	}
	if !found {
		t.Fatal("introduction did not add the pinger")
	}
}

func TestPingLoopEvictsDeadPeers(t *testing.T) {
	n := startNode(t, Config{
		PingInterval: 30 * time.Millisecond,
		ProbeTimeout: 30 * time.Millisecond,
	})
	n.AddPeer(netip.MustParseAddrPort("127.0.0.1:1"), 0)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if n.CacheLen() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("dead peer still cached after %v; stats %+v", 3*time.Second, n.Stats())
}

func TestPongGossipSpreadsEntries(t *testing.T) {
	// a knows b; c pings a repeatedly and should learn b through pongs.
	a := startNode(t, Config{})
	b := startNode(t, Config{Files: []string{"x"}})
	a.AddPeer(b.Addr(), 1)
	c := startNode(t, Config{})
	ctx := context.Background()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.PingPeer(ctx, a.Addr()); err != nil {
			t.Fatal(err)
		}
		for _, addr := range c.CacheAddrs() {
			if addr == b.Addr() {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("gossip never delivered b's address")
}

func TestSmallLiveNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test in -short mode")
	}
	// A 12-node network: everyone bootstraps off node 0, one node
	// shares the rare file, and a query from the far side must find it.
	const peers = 12
	nodes := make([]*Node, peers)
	for i := range nodes {
		files := []string{fmt.Sprintf("common-%d.txt", i)}
		if i == peers-1 {
			files = append(files, "the rare file.iso")
		}
		nodes[i] = startNode(t, Config{
			Files:        files,
			PingInterval: 50 * time.Millisecond,
			IntroProb:    0.5,
			Seed:         uint64(i + 1),
		})
	}
	for i := 1; i < peers; i++ {
		nodes[i].AddPeer(nodes[0].Addr(), uint32(nodes[0].NumFiles()))
		nodes[0].AddPeer(nodes[i].Addr(), uint32(nodes[i].NumFiles()))
	}
	// Let ping/pong gossip circulate addresses.
	time.Sleep(500 * time.Millisecond)

	hits, stats, err := nodes[1].Query(context.Background(), "rare file", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].From != nodes[peers-1].Addr() {
		t.Fatalf("rare file not found: hits=%v stats=%+v cache=%d",
			hits, stats, nodes[1].CacheLen())
	}
	if stats.Probes > peers {
		t.Fatalf("query probed %d peers in a %d-peer network", stats.Probes, peers)
	}
}

func TestStatsSnapshot(t *testing.T) {
	a := startNode(t, Config{})
	b := startNode(t, Config{})
	if _, err := b.PingPeer(context.Background(), a.Addr()); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().PingsSent; got != 1 {
		t.Fatalf("PingsSent = %d", got)
	}
	if got := a.Stats().PingsReceived; got != 1 {
		t.Fatalf("PingsReceived = %d", got)
	}
}
