// Package benchfmt parses the standard `go test -bench` text output
// into structured records so benchmark trajectories can be stored as
// JSON and compared across commits (see `make bench-json`).
//
// The format parsed is the de-facto Go benchmark line protocol:
//
//	BenchmarkName-8   	     100	  11100051 ns/op	 4801 B/op	 93 allocs/op
//
// plus the `goos:`/`goarch:`/`pkg:`/`cpu:` header lines emitted before
// each package's benchmarks. Unknown value/unit pairs (custom metrics
// from b.ReportMetric, MB/s, ...) are preserved under Extra.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (e.g. "BenchmarkSingleRun" or "BenchmarkInsert/LFS").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 1 when absent.
	Procs int `json:"procs"`
	// Pkg is the import path from the preceding "pkg:" header line.
	Pkg string `json:"pkg,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the standard metrics; a
	// metric the line does not report is zero (B/op and allocs/op
	// appear only under -benchmem or b.ReportAllocs).
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds any further unit -> value pairs on the line.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Header carries the environment lines `go test` prints before the
// first benchmark of a binary.
type Header struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
}

// Parse reads `go test -bench` output and returns the header and every
// benchmark result, in input order. Non-benchmark lines (PASS, ok,
// test log output) are skipped. A line starting with "Benchmark" that
// does not parse is an error: silently dropping it would make a
// truncated trajectory look like a clean run.
func Parse(r io.Reader) (Header, []Result, error) {
	var hdr Header
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			hdr.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			hdr.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			hdr.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return hdr, nil, fmt.Errorf("benchfmt: %w", err)
			}
			res.Pkg = pkg
			results = append(results, res)
		}
	}
	return hdr, results, sc.Err()
}

// parseLine parses one "BenchmarkX-N  iters  v unit  v unit ..." line.
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("short benchmark line %q", line)
	}
	res := Result{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(fields[0], "-"); i >= 0 {
		if p, err := strconv.Atoi(fields[0][i+1:]); err == nil && p > 0 {
			res.Name, res.Procs = fields[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	res.Iterations = iters
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, fmt.Errorf("odd value/unit pairing in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		val, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("bad value %q in %q: %w", rest[i], line, err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			res.BytesPerOp = val
		case "allocs/op":
			res.AllocsPerOp = val
		default:
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[unit] = val
		}
	}
	return res, nil
}
