package cluster

// Unit tests for the state-sync protocol and the shed-state service:
// message validation, aggregation and windowing, push dedupe, epoch
// rotation, and snapshot crash recovery. All deterministic: the
// service runs on an injected fake clock and memnet streams.

import (
	"bytes"
	"errors"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/node"
	"repro/node/memnet"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(100_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// startService runs a service over a memnet stream listener with the
// fake clock.
func startService(t *testing.T, nw *memnet.Network, cfg ServiceConfig, clk *fakeClock) (*Service, netip.AddrPort) {
	t.Helper()
	ln := nw.ListenStream()
	cfg.now = clk.now
	s, err := Serve(ln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, ln.AddrPort()
}

// syncConn is a raw protocol conversation for driving the service
// directly.
type syncConn struct {
	t    *testing.T
	conn net.Conn
}

func dialSync(t *testing.T, nw *memnet.Network, addr netip.AddrPort, name string, nonce uint64) (*syncConn, syncMsg) {
	t.Helper()
	c, err := nw.DialStream(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	sc := &syncConn{t: t, conn: c}
	sc.send(syncMsg{Type: syncHello, Node: name, Nonce: nonce})
	return sc, sc.recv()
}

func (s *syncConn) send(m syncMsg) {
	s.t.Helper()
	s.conn.SetDeadline(time.Now().Add(2 * time.Second))
	if err := writeSyncMsg(s.conn, m); err != nil {
		s.t.Fatalf("write %s: %v", m.Type, err)
	}
}

func (s *syncConn) recv() syncMsg {
	s.t.Helper()
	s.conn.SetDeadline(time.Now().Add(2 * time.Second))
	m, err := readSyncMsg(s.conn)
	if err != nil {
		s.t.Fatalf("read reply: %v", err)
	}
	return m
}

func (s *syncConn) push(m syncMsg) syncMsg {
	s.t.Helper()
	m.Type = syncPush
	s.send(m)
	return s.recv()
}

// deltaFor builds a delta carrying count demand for one requester key.
func deltaFor(key uint64, count uint32) *node.AdmissionDelta {
	d := &node.AdmissionDelta{}
	idx := node.FairIndices(key)
	for l := 0; l < node.FairLevels; l++ {
		d.Counts[l][idx[l]] = count
	}
	return d
}

// TestSyncMsgRoundTrip: every message type survives the frame codec.
func TestSyncMsgRoundTrip(t *testing.T) {
	msgs := []syncMsg{
		{Type: syncHello, Node: "n0", Nonce: 42},
		{Type: syncPush, Seq: 7, Epoch: 1234, Delta: deltaFor(0xbeef, 9)},
		{Type: syncPush, Seq: 0, Epoch: 1234}, // heartbeat
		{Type: syncAgg, Epoch: 1234, Salt: saltOf(1234), AckSeq: 7,
			Agg: &node.AdmissionAggregate{Active: 3}, Warming: true},
		{Type: syncReject, Epoch: 5678, Salt: saltOf(5678), AckSeq: 7},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := writeSyncMsg(&buf, m); err != nil {
			t.Fatalf("write %s: %v", m.Type, err)
		}
	}
	for _, want := range msgs {
		got, err := readSyncMsg(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.Type, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || got.Epoch != want.Epoch ||
			got.Salt != want.Salt || got.Nonce != want.Nonce || got.Warming != want.Warming {
			t.Fatalf("round trip drifted: got %+v want %+v", got, want)
		}
		if (got.Delta == nil) != (want.Delta == nil) || (got.Agg == nil) != (want.Agg == nil) {
			t.Fatalf("payload presence drifted for %s", want.Type)
		}
		if want.Delta != nil && got.Delta.Counts != want.Delta.Counts {
			t.Fatalf("delta drifted for %s", want.Type)
		}
	}
}

// TestDecodeSyncMsgRejectsMalformed: validation refuses envelopes
// missing their type's required payload.
func TestDecodeSyncMsgRejectsMalformed(t *testing.T) {
	bad := []string{
		`{"type":"hello"}`,                      // no node name
		`{"type":"push","seq":3}`,               // seq without delta
		`{"type":"push","epoch":-1}`,            // negative epoch
		`{"type":"agg","epoch":1}`,              // no aggregate
		`{"type":"agg","agg":{}}`,               // no epoch
		`{"type":"reject"}`,                     // no epoch
		`{"type":"bogus"}`,                      // unknown type
		`{"type":"hello","node":"` + string(make([]byte, 200)) + `"}`, // name too long
		`not json`,
	}
	for _, s := range bad {
		if _, err := decodeSyncMsg([]byte(s)); err == nil {
			t.Errorf("decodeSyncMsg accepted %q", s)
		}
	}
}

// TestServiceAggregatesAndAcks: pushes fold into the aggregate, the
// reply carries the merged view, and heartbeats pull without pushing.
func TestServiceAggregatesAndAcks(t *testing.T) {
	nw := memnet.New(1)
	clk := newFakeClock()
	svc, addr := startService(t, nw, ServiceConfig{Window: time.Minute}, clk)
	clk.advance(2 * time.Minute) // past warming

	c, hello := dialSync(t, nw, addr, "n0", 1)
	if hello.Type != syncAgg || hello.Epoch != svc.Epoch() || hello.Salt != svc.Salt() {
		t.Fatalf("hello reply: %+v", hello)
	}
	key := uint64(0xabcdef)
	r := c.push(syncMsg{Seq: 1, Epoch: hello.Epoch, Delta: deltaFor(key, 5)})
	if r.Type != syncAgg || r.AckSeq != 1 || r.Warming {
		t.Fatalf("push reply: %+v", r)
	}
	if got := svc.Estimate(key); got != 5 {
		t.Fatalf("estimate after push = %d, want 5", got)
	}
	// The reply's aggregate carries the folded demand back.
	r2 := c.push(syncMsg{Seq: 2, Epoch: hello.Epoch, Delta: deltaFor(key, 3)})
	idx := node.FairIndices(key)
	if got := r2.Agg.Counts[0][idx[0]]; got != 8 {
		t.Fatalf("aggregate bucket = %d, want 8", got)
	}
	// Heartbeat (seq 0) pulls without applying anything.
	hb := c.push(syncMsg{Seq: 0, Epoch: hello.Epoch})
	if hb.Type != syncAgg || hb.AckSeq != 0 {
		t.Fatalf("heartbeat reply: %+v", hb)
	}
	if got := svc.Estimate(key); got != 8 {
		t.Fatalf("estimate after heartbeat = %d, want 8", got)
	}
}

// TestServiceDedupesReplayedPushes: a re-sent sequence number (lost
// ack) is acknowledged but not re-applied; a fresh nonce (node
// restart) resets the sequence space.
func TestServiceDedupesReplayedPushes(t *testing.T) {
	nw := memnet.New(2)
	clk := newFakeClock()
	svc, addr := startService(t, nw, ServiceConfig{Window: time.Minute}, clk)
	clk.advance(2 * time.Minute)

	key := uint64(0x5eed)
	c, hello := dialSync(t, nw, addr, "n0", 10)
	c.push(syncMsg{Seq: 1, Epoch: hello.Epoch, Delta: deltaFor(key, 4)})
	// Replay after a lost ack: same seq, must not double-count.
	r := c.push(syncMsg{Seq: 1, Epoch: hello.Epoch, Delta: deltaFor(key, 4)})
	if r.AckSeq != 1 {
		t.Fatalf("replay not acked: %+v", r)
	}
	if got := svc.Estimate(key); got != 4 {
		t.Fatalf("estimate after replay = %d, want 4 (deduped)", got)
	}
	// Same node restarted (fresh nonce): seq 1 is a new push again.
	c2, hello2 := dialSync(t, nw, addr, "n0", 11)
	c2.push(syncMsg{Seq: 1, Epoch: hello2.Epoch, Delta: deltaFor(key, 4)})
	if got := svc.Estimate(key); got != 8 {
		t.Fatalf("estimate after restart push = %d, want 8", got)
	}
}

// TestServiceWindowRoll: the aggregate reads per-bucket max(cur,
// prev), so demand survives exactly one window roll and an idle gap
// clears it.
func TestServiceWindowRoll(t *testing.T) {
	nw := memnet.New(3)
	clk := newFakeClock()
	svc, addr := startService(t, nw, ServiceConfig{Window: time.Minute}, clk)
	clk.advance(2 * time.Minute)

	key := uint64(0x10ad)
	c, hello := dialSync(t, nw, addr, "n0", 1)
	c.push(syncMsg{Seq: 1, Epoch: hello.Epoch, Delta: deltaFor(key, 6)})
	clk.advance(time.Minute) // roll: demand moves to prev, still visible
	if got := svc.Estimate(key); got != 6 {
		t.Fatalf("estimate one window later = %d, want 6", got)
	}
	clk.advance(5 * time.Minute) // idle gap: all windows stale
	if got := svc.Estimate(key); got != 0 {
		t.Fatalf("estimate after idle gap = %d, want 0", got)
	}
}

// TestServiceEpochMismatch: a push under the wrong epoch is rejected
// (never folded in), and a push under a *newer* epoch than the
// service's — the client outlived a rotation the service lost — forces
// the service to mint a fresh epoch superseding both.
func TestServiceEpochMismatch(t *testing.T) {
	nw := memnet.New(4)
	clk := newFakeClock()
	svc, addr := startService(t, nw, ServiceConfig{Window: time.Minute}, clk)
	clk.advance(2 * time.Minute)
	epoch := svc.Epoch()

	key := uint64(0xe10c)
	c, _ := dialSync(t, nw, addr, "n0", 1)
	r := c.push(syncMsg{Seq: 1, Epoch: epoch - 1, Delta: deltaFor(key, 9)})
	if r.Type != syncReject || r.Epoch != epoch || r.Salt != svc.Salt() {
		t.Fatalf("stale-epoch push reply: %+v", r)
	}
	if got := svc.Estimate(key); got != 0 {
		t.Fatalf("rejected push leaked into aggregate: %d", got)
	}
	// Newer epoch than the service's: it must supersede, not serve
	// stale state.
	r2 := c.push(syncMsg{Seq: 2, Epoch: epoch + 50, Delta: deltaFor(key, 9)})
	if r2.Type != syncReject {
		t.Fatalf("newer-epoch push reply: %+v", r2)
	}
	if got := svc.Epoch(); got <= epoch+50 {
		t.Fatalf("service epoch %d did not supersede client epoch %d", got, epoch+50)
	}
	if !svc.Warming() {
		t.Fatal("service not warming after forced rotation")
	}
}

// TestServiceRotationDiscardsDemand: Rotate mints a new epoch and
// salt, clears the windows, and re-enters warming.
func TestServiceRotationDiscardsDemand(t *testing.T) {
	nw := memnet.New(5)
	clk := newFakeClock()
	svc, addr := startService(t, nw, ServiceConfig{Window: time.Minute}, clk)
	clk.advance(2 * time.Minute)

	key := uint64(0x0707)
	c, hello := dialSync(t, nw, addr, "n0", 1)
	c.push(syncMsg{Seq: 1, Epoch: hello.Epoch, Delta: deltaFor(key, 7)})
	oldEpoch, oldSalt := svc.Epoch(), svc.Salt()
	svc.Rotate()
	if svc.Epoch() <= oldEpoch || svc.Salt() == oldSalt {
		t.Fatalf("rotation did not advance epoch/salt: %d/%d", svc.Epoch(), svc.Salt())
	}
	if got := svc.Estimate(key); got != 0 {
		t.Fatalf("demand survived rotation: %d", got)
	}
	if !svc.Warming() {
		t.Fatal("service not warming after rotation")
	}
	// A push still carrying the old epoch is rejected with the new one.
	r := c.push(syncMsg{Seq: 2, Epoch: oldEpoch, Delta: deltaFor(key, 7)})
	if r.Type != syncReject || r.Epoch != svc.Epoch() {
		t.Fatalf("old-epoch push after rotation: %+v", r)
	}
}

// TestAggSnapshotRoundTrip: encode/decode is the identity on valid
// snapshots, and every corruption is refused.
func TestAggSnapshotRoundTrip(t *testing.T) {
	snap := aggSnapshot{
		Epoch:     123456789,
		WinStart:  42,
		WrittenAt: time.Unix(5000, 999),
		Seqs: map[string]pushSeq{
			"n0": {Nonce: 7, LastSeq: 19},
			"n1": {Nonce: 9, LastSeq: 3},
		},
	}
	snap.Cur[0][5] = 11
	snap.Prev[3][63] = 200
	data, err := encodeAggSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeAggSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != snap.Epoch || got.WinStart != snap.WinStart ||
		got.WrittenAt.UnixNano() != snap.WrittenAt.UnixNano() ||
		got.Cur != snap.Cur || got.Prev != snap.Prev {
		t.Fatalf("round trip drifted: %+v", got)
	}
	if len(got.Seqs) != 2 || got.Seqs["n0"] != snap.Seqs["n0"] || got.Seqs["n1"] != snap.Seqs["n1"] {
		t.Fatalf("seq records drifted: %+v", got.Seqs)
	}
	// Any flipped byte fails the checksum (or a validation check).
	for i := 0; i < len(data); i += 7 {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x20
		if _, err := decodeAggSnapshot(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	for cut := 0; cut < len(data); cut += 11 {
		if _, err := decodeAggSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestServiceSnapshotWarmRestore: a service restarted within one
// window of its snapshot keeps the epoch, the windows, and the seq
// records — re-sent pushes stay deduplicated and demand is not
// double-counted across the restart.
func TestServiceSnapshotWarmRestore(t *testing.T) {
	nw := memnet.New(6)
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "agg.snap")
	svc, addr := startService(t, nw, ServiceConfig{Window: time.Minute, SnapshotPath: path}, clk)
	clk.advance(2 * time.Minute)

	key := uint64(0xca5e)
	c, hello := dialSync(t, nw, addr, "n0", 77)
	c.push(syncMsg{Seq: 1, Epoch: hello.Epoch, Delta: deltaFor(key, 5)})
	epoch := svc.Epoch()
	svc.Close() // writes the final snapshot

	clk.advance(10 * time.Second) // restart well inside the window
	svc2, addr2 := startService(t, nw, ServiceConfig{Window: time.Minute, SnapshotPath: path}, clk)
	if svc2.Epoch() != epoch {
		t.Fatalf("warm restore changed epoch: %d != %d", svc2.Epoch(), epoch)
	}
	if svc2.Warming() {
		t.Fatal("warm restore should not re-enter warming")
	}
	if got := svc2.Estimate(key); got != 5 {
		t.Fatalf("restored estimate = %d, want 5", got)
	}
	// The client re-sends its unacked push (same nonce, same seq): the
	// restored seq records must dedupe it.
	c2, hello2 := dialSync(t, nw, addr2, "n0", 77)
	c2.push(syncMsg{Seq: 1, Epoch: hello2.Epoch, Delta: deltaFor(key, 5)})
	if got := svc2.Estimate(key); got != 5 {
		t.Fatalf("estimate after replay across restart = %d, want 5 (deduped)", got)
	}
}

// TestServiceSnapshotStaleRestore: a snapshot older than one window
// restores the epoch but not the stale demand, and re-enters warming.
func TestServiceSnapshotStaleRestore(t *testing.T) {
	nw := memnet.New(7)
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "agg.snap")
	svc, addr := startService(t, nw, ServiceConfig{Window: time.Minute, SnapshotPath: path}, clk)
	clk.advance(2 * time.Minute)
	key := uint64(0x57a1)
	c, hello := dialSync(t, nw, addr, "n0", 1)
	c.push(syncMsg{Seq: 1, Epoch: hello.Epoch, Delta: deltaFor(key, 5)})
	epoch := svc.Epoch()
	svc.Close()

	clk.advance(time.Hour) // long outage
	svc2, _ := startService(t, nw, ServiceConfig{Window: time.Minute, SnapshotPath: path}, clk)
	if svc2.Epoch() != epoch {
		t.Fatalf("stale restore changed epoch: %d != %d", svc2.Epoch(), epoch)
	}
	if !svc2.Warming() {
		t.Fatal("stale restore must re-enter warming")
	}
	if got := svc2.Estimate(key); got != 0 {
		t.Fatalf("hour-old demand served after restore: %d", got)
	}
}

// TestServiceSnapshotCorruptColdStart: a corrupt snapshot cold-starts
// with a fresh (newer) epoch and warming — never a crash, never stale
// state served as fresh.
func TestServiceSnapshotCorruptColdStart(t *testing.T) {
	nw := memnet.New(8)
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "agg.snap")
	svc, _ := startService(t, nw, ServiceConfig{Window: time.Minute, SnapshotPath: path}, clk)
	clk.advance(2 * time.Minute)
	epoch := svc.Epoch()
	svc.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Second)
	svc2, _ := startService(t, nw, ServiceConfig{Window: time.Minute, SnapshotPath: path}, clk)
	if svc2.Epoch() <= epoch {
		t.Fatalf("cold start epoch %d does not supersede %d", svc2.Epoch(), epoch)
	}
	if !svc2.Warming() {
		t.Fatal("cold start must warm before serving aggregates")
	}
}

// TestHarnessRestartsCrashedMembers: a killed slot restarts with
// backoff and fires lifecycle events in order.
func TestHarnessRestartsCrashedMembers(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	starts := 0
	h, err := StartHarness(HarnessConfig{
		Slots: 2,
		Start: func(slot int) (Member, error) {
			mu.Lock()
			starts++
			mu.Unlock()
			return NewNodeMember(nopCloser{}, nil), nil
		},
		RestartBackoff:    5 * time.Millisecond,
		RestartBackoffMax: 50 * time.Millisecond,
		Events: func(e Event) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	waitFor(t, time.Second, func() bool {
		return h.Member(0) != nil && h.Member(1) != nil
	})
	if !h.Kill(0) {
		t.Fatal("Kill(0) found no member")
	}
	waitFor(t, time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range events {
			if e.Type == EventStarted && e.Slot == 0 && e.Restarts == 1 {
				return true
			}
		}
		return false
	})
	mu.Lock()
	defer mu.Unlock()
	// The kill produced exited → restarting → started for slot 0.
	var seq []EventType
	for _, e := range events {
		if e.Slot == 0 {
			seq = append(seq, e.Type)
		}
	}
	want := []EventType{EventStarted, EventExited, EventRestarting, EventStarted}
	if len(seq) < len(want) {
		t.Fatalf("slot 0 events: %v", seq)
	}
	for i, w := range want {
		if seq[i] != w {
			t.Fatalf("slot 0 event %d = %v, want %v (all: %v)", i, seq[i], w, seq)
		}
	}
	if starts < 3 {
		t.Fatalf("starts = %d, want >= 3 (2 initial + 1 restart)", starts)
	}
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestHarnessValidation: unusable configs are refused.
func TestHarnessValidation(t *testing.T) {
	if _, err := StartHarness(HarnessConfig{Slots: 0, Start: func(int) (Member, error) { return nil, nil }}); err == nil {
		t.Error("Slots 0 accepted")
	}
	if _, err := StartHarness(HarnessConfig{Slots: 1}); err == nil {
		t.Error("nil Start accepted")
	}
	if _, err := NewSyncClient(nil, ClientConfig{Name: "x", Dial: func() (net.Conn, error) { return nil, errors.New("no") }}); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := NewSyncClient(&fakeTarget{}, ClientConfig{Name: "", Dial: func() (net.Conn, error) { return nil, errors.New("no") }}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSyncClient(&fakeTarget{}, ClientConfig{Name: "x"}); err == nil {
		t.Error("nil dial accepted")
	}
}
