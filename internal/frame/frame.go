// Package frame implements the repo's shared stream framing: length-
// prefixed, CRC-32 checksummed payloads. It is the one wire format
// every connection-oriented protocol here speaks — the distributed
// sweep orchestration (internal/orchestrate) and the cluster
// shed-state sync (node/cluster) — so a frame written by either side
// of either protocol is decodable by the same ten lines of code.
//
//	[4-byte big-endian payload length][4-byte big-endian CRC-32 (IEEE)
//	of the payload][payload]
//
// The CRC catches truncation and corruption before a payload can reach
// a decoder, and the caller-supplied length bound keeps a corrupt
// header from provoking a huge allocation.
package frame

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
)

var (
	// ErrCorrupt reports a frame whose payload does not match its
	// checksum.
	ErrCorrupt = errors.New("frame: checksum mismatch")
	// ErrTooLarge reports a frame whose payload exceeds the caller's
	// size bound (on write: the payload itself; on read: the header's
	// declared length).
	ErrTooLarge = errors.New("frame: payload exceeds size bound")
)

// Write writes one frame. The header and payload go out in a single
// Write call so a frame is never interleaved with another writer's
// bytes (callers still serialize writes per connection).
func Write(w io.Writer, payload []byte, max int) error {
	if len(payload) > max {
		return ErrTooLarge
	}
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	_, err := w.Write(buf)
	return err
}

// Read reads one frame and verifies its checksum. A short read
// mid-frame surfaces as io.ErrUnexpectedEOF; a clean EOF before any
// header byte surfaces as io.EOF, so callers can tell a closed peer
// from a truncated frame.
func Read(r io.Reader, max int) ([]byte, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(head[0:4])
	if int64(n) > int64(max) {
		return nil, ErrTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(head[4:8]) {
		return nil, ErrCorrupt
	}
	return payload, nil
}
