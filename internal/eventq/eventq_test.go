package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Fatalf("zero-value queue has Len %d", q.Len())
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
	if _, _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
}

func TestOrdering(t *testing.T) {
	var q Queue[string]
	q.Push(3.0, "c")
	q.Push(1.0, "a")
	q.Push(2.0, "b")

	want := []struct {
		t float64
		v string
	}{{1, "a"}, {2, "b"}, {3, "c"}}
	for _, w := range want {
		tm, v, ok := q.Pop()
		if !ok || tm != w.t || v != w.v {
			t.Fatalf("Pop() = (%v, %q, %v), want (%v, %q, true)", tm, v, ok, w.t, w.v)
		}
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(5.0, i)
	}
	for i := 0; i < 100; i++ {
		_, v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("equal-time events out of order: got %d at position %d", v, i)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue[int]
	q.Push(1, 10)
	if _, v, _ := q.Peek(); v != 10 {
		t.Fatalf("Peek = %d, want 10", v)
	}
	if q.Len() != 1 {
		t.Fatalf("Peek removed the event")
	}
}

func TestClear(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(float64(i), i)
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Clear left %d events", q.Len())
	}
	q.Push(1, 99)
	if _, v, _ := q.Pop(); v != 99 {
		t.Fatal("queue unusable after Clear")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue[float64]
	rng := rand.New(rand.NewSource(1))
	last := -1.0
	pending := 0
	for i := 0; i < 10000; i++ {
		if pending == 0 || rng.Float64() < 0.6 {
			// Pushes must not be scheduled before the current frontier,
			// mirroring how a simulator never schedules in the past.
			tm := last + rng.Float64()*10
			q.Push(tm, tm)
			pending++
			continue
		}
		tm, v, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed with pending events")
		}
		if tm != v {
			t.Fatalf("payload mismatch: %v != %v", tm, v)
		}
		if tm < last {
			t.Fatalf("time went backwards: %v after %v", tm, last)
		}
		last = tm
		pending--
	}
}

// TestDequeueOrderMatchesSort is the core heap property: popping all
// events yields them sorted by time (stably for equal times).
func TestDequeueOrderMatchesSort(t *testing.T) {
	f := func(raw []uint16) bool {
		times := make([]float64, len(raw))
		for i, r := range raw {
			times[i] = float64(r % 50) // force many ties
		}
		var q Queue[int]
		for i, tm := range times {
			q.Push(tm, i)
		}
		type ev struct {
			t float64
			i int
		}
		want := make([]ev, len(times))
		for i, tm := range times {
			want[i] = ev{tm, i}
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].t < want[b].t })
		for _, w := range want {
			tm, v, ok := q.Pop()
			if !ok || tm != w.t || v != w.i {
				return false
			}
		}
		_, _, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue[int]
	rng := rand.New(rand.NewSource(1))
	times := make([]float64, 1024)
	for i := range times {
		times[i] = rng.Float64() * 1000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(times[i%len(times)], i)
		if q.Len() > 512 {
			q.Pop()
		}
	}
}
