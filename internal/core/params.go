// Package core implements the GUESS non-forwarding search protocol and
// the discrete-event simulator the paper's evaluation is built on.
//
// A simulation maintains NetworkSize live peers under churn. Each peer
// keeps a bounded link cache of pointers to other peers and maintains
// it with periodic pings; queries iterate over the link cache and a
// per-query query cache, probing one peer (or ParallelProbes peers) per
// probe interval until enough results arrive or the candidates are
// exhausted. All five policy families from the paper — QueryProbe,
// QueryPong, PingProbe, PingPong and CacheReplacement — are pluggable,
// and misbehaving peers (cache poisoning with dead or colluding
// addresses) and capacity limits (probe refusal, back-off) are modeled.
package core

import (
	"fmt"
	"io"

	"repro/internal/content"
	"repro/internal/policy"
	"repro/internal/workload"
)

// BadPongBehavior is the kind of IP address a malicious peer returns in
// its pongs (the paper's BadPongBehavior system parameter).
type BadPongBehavior int

const (
	// BadPongDead returns fabricated addresses of nonexistent peers;
	// every probe to them is wasted. Non-colluding attack.
	BadPongDead BadPongBehavior = iota + 1
	// BadPongBad returns addresses of other malicious peers; the
	// colluding attack that defeats the MR policy.
	BadPongBad
	// BadPongGood returns genuine entries from the malicious peer's
	// own link cache (the peer still never returns query results).
	BadPongGood
)

// String returns the paper's name for the behavior.
func (b BadPongBehavior) String() string {
	switch b {
	case BadPongDead:
		return "Dead"
	case BadPongBad:
		return "Bad"
	case BadPongGood:
		return "Good"
	default:
		return fmt.Sprintf("BadPongBehavior(%d)", int(b))
	}
}

// ParseBadPongBehavior resolves a behavior name ("Dead", "Bad",
// "Good").
func ParseBadPongBehavior(name string) (BadPongBehavior, error) {
	switch name {
	case "Dead":
		return BadPongDead, nil
	case "Bad":
		return BadPongBad, nil
	case "Good":
		return BadPongGood, nil
	default:
		return 0, fmt.Errorf("core: unknown BadPongBehavior %q", name)
	}
}

// MarshalText encodes the behavior by name.
func (b BadPongBehavior) MarshalText() ([]byte, error) {
	switch b {
	case BadPongDead, BadPongBad, BadPongGood:
		return []byte(b.String()), nil
	case 0:
		// Zero is allowed so configurations without malicious peers
		// serialize cleanly.
		return []byte(""), nil
	default:
		return nil, fmt.Errorf("core: cannot marshal BadPongBehavior %d", int(b))
	}
}

// UnmarshalText decodes a behavior name; empty text leaves it unset.
func (b *BadPongBehavior) UnmarshalText(text []byte) error {
	if len(text) == 0 {
		*b = 0
		return nil
	}
	parsed, err := ParseBadPongBehavior(string(text))
	if err != nil {
		return err
	}
	*b = parsed
	return nil
}

// Params configures one simulation run. It merges the paper's system
// parameters (Table 1) and protocol parameters (Table 2) with the
// simulation-control knobs (durations, seed). Use DefaultParams and
// override fields.
type Params struct {
	// --- System parameters (Table 1) ---

	// NetworkSize is the number of live peers, held constant by
	// replacing every dead peer with a newborn.
	NetworkSize int
	// NumDesiredResults is how many results satisfy a query.
	NumDesiredResults int
	// LifespanMultiplier scales every peer lifetime.
	LifespanMultiplier float64
	// QueryRate is the expected number of queries per user per second.
	QueryRate float64
	// MaxProbesPerSecond is the per-peer probe capacity; beyond it a
	// peer refuses probes. Zero or negative means unlimited.
	MaxProbesPerSecond int
	// PercentBadPeers is the percentage (0..100) of malicious peers.
	PercentBadPeers float64
	// BadPong selects the malicious pong behavior.
	BadPong BadPongBehavior

	// --- Protocol parameters (Table 2) ---

	// QueryProbe orders query probes; QueryPong selects pong entries
	// answering queries; PingProbe orders maintenance pings; PingPong
	// selects pong entries answering pings.
	QueryProbe, QueryPong, PingProbe, PingPong policy.Selection
	// CacheReplacement picks link-cache eviction victims.
	CacheReplacement policy.Eviction
	// PingInterval is the seconds between a peer's maintenance pings.
	PingInterval float64
	// CacheSize is the link cache capacity.
	CacheSize int
	// ResetNumResults zeroes the NumRes field of entries learned from
	// pongs (the literal MR* ingestion rule).
	ResetNumResults bool
	// DoBackoff makes a refused prober suppress the overloaded target
	// for BackoffPeriod instead of dropping it from the cache.
	DoBackoff bool
	// BackoffPeriod is the suppression window when DoBackoff is set.
	BackoffPeriod float64
	// PongSize is the number of addresses carried per pong.
	PongSize int
	// IntroProb is the probability a probed/pinged peer adds the
	// initiator to its own cache (the introduction protocol).
	IntroProb float64
	// CacheSeedSize is the number of live peers seeded into each link
	// cache at time zero. Zero means NetworkSize/100 (minimum 1).
	CacheSeedSize int

	// --- Query execution (Section 6.2) ---

	// ProbeSpacing is the seconds between successive probe rounds of a
	// query (the GUESS specification's 0.2 s timeout).
	ProbeSpacing float64
	// ParallelProbes is the number of probes sent per round (the
	// paper's parallel-walk k; 1 reproduces the strictly serial spec).
	ParallelProbes int
	// MaxProbesPerQuery truncates a query after this many probes; zero
	// means probe until the candidate set is exhausted.
	MaxProbesPerQuery int
	// QueriesEnabled turns query traffic on. The connectivity
	// experiments (Figures 6-7) run with queries disabled to isolate
	// the effect of pings.
	QueriesEnabled bool

	// --- Extensions (the paper's future-work proposals; all off by
	// default so the baseline protocol matches the paper exactly) ---

	// AdaptiveParallel implements Section 6.2's response-time proposal:
	// if AdaptiveParallelWindow seconds pass without a new result, the
	// query doubles its probe parallelism (capped by
	// MaxParallelProbes).
	AdaptiveParallel bool
	// AdaptiveParallelWindow is the no-progress window in seconds.
	AdaptiveParallelWindow float64
	// MaxParallelProbes caps adaptive parallelism.
	MaxParallelProbes int

	// AdaptivePing implements Section 6.1's guideline: peers shorten
	// their ping interval when many probes hit dead addresses and relax
	// it when almost all entries are live.
	AdaptivePing bool
	// AdaptivePingMin and AdaptivePingMax bound the per-peer interval.
	AdaptivePingMin, AdaptivePingMax float64
	// AdaptivePingLowLive and AdaptivePingHighLive are the live-entry
	// fractions below/above which the interval shrinks/grows.
	AdaptivePingLowLive, AdaptivePingHighLive float64

	// PercentSelfishPeers is the percentage (0..100) of peers that game
	// the protocol per Section 3.3: instead of probing serially they
	// blast SelfishParallelProbes probes per round to minimize their
	// own response time, inflating everyone else's load.
	PercentSelfishPeers float64
	// SelfishParallelProbes is the selfish per-round fan-out.
	SelfishParallelProbes int
	// ProbePayments models the paper's incentive proposal: with a
	// per-probe price in force, selfish peers are motivated to follow
	// the serial protocol again.
	ProbePayments bool

	// PoisonDetection enables the Section 6.4 heuristic: peers track
	// which neighbor supplied each cache entry, blame suppliers of dead
	// addresses, and blacklist a supplier whose pong entries are
	// persistently dead.
	PoisonDetection bool
	// PoisonThreshold is the dead fraction that triggers blacklisting.
	PoisonThreshold float64
	// PoisonMinSamples is the minimum supplied-entry count before a
	// supplier can be judged.
	PoisonMinSamples int

	// --- Content model ---

	Content content.Params

	// --- Simulation control ---

	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
	// WarmupTime is simulated seconds before measurement starts.
	WarmupTime float64
	// MeasureTime is the simulated measurement window in seconds.
	MeasureTime float64
	// SampleInterval is the spacing of cache-health samples.
	SampleInterval float64
	// SampleConnectivity additionally computes the largest weakly
	// connected component of the conceptual overlay at every sample
	// (costly; used by the connectivity experiments).
	SampleConnectivity bool
	// Shards is the engine's parallelism degree: the event queue splits
	// into this many per-peer heaps merged on (time, push order), and
	// the O(NetworkSize) sample scans fan out over this many worker
	// goroutines. Any value produces byte-identical Results, traces and
	// metrics for the same seed — the merge rule reproduces the
	// single-queue event order exactly, and the parallel phases are
	// randomness-free with a sequential floating-point reduction (see
	// DESIGN.md). 0 or 1 runs fully serial.
	Shards int
	// Trace, when non-nil, receives a CSV time series with one row per
	// sample (time, churn, query and cache-health counters) for
	// plotting a run's evolution. Excluded from JSON configurations.
	Trace io.Writer `json:"-"`
}

// DefaultParams returns the paper's default configuration (Tables 1
// and 2) with calibrated content-model defaults and moderate run
// durations.
func DefaultParams() Params {
	return Params{
		NetworkSize:        1000,
		NumDesiredResults:  1,
		LifespanMultiplier: 1,
		QueryRate:          workload.DefaultQueryRate,
		MaxProbesPerSecond: 100,
		PercentBadPeers:    0,
		BadPong:            BadPongDead,

		QueryProbe:       policy.SelRandom,
		QueryPong:        policy.SelRandom,
		PingProbe:        policy.SelRandom,
		PingPong:         policy.SelRandom,
		CacheReplacement: policy.EvRandom,

		PingInterval:    30,
		CacheSize:       100,
		ResetNumResults: false,
		DoBackoff:       false,
		BackoffPeriod:   60,
		PongSize:        5,
		IntroProb:       0.1,
		CacheSeedSize:   0,

		ProbeSpacing:      0.2,
		ParallelProbes:    1,
		MaxProbesPerQuery: 0,
		QueriesEnabled:    true,

		AdaptiveParallel:       false,
		AdaptiveParallelWindow: 10,
		MaxParallelProbes:      64,

		AdaptivePing:         false,
		AdaptivePingMin:      5,
		AdaptivePingMax:      240,
		AdaptivePingLowLive:  0.7,
		AdaptivePingHighLive: 0.95,

		PercentSelfishPeers:   0,
		SelfishParallelProbes: 100,
		ProbePayments:         false,

		PoisonDetection:  false,
		PoisonThreshold:  0.8,
		PoisonMinSamples: 10,

		Content: content.DefaultParams(),

		Seed:           1,
		WarmupTime:     500,
		MeasureTime:    2000,
		SampleInterval: 30,
		Shards:         1,
	}
}

// Validate reports the first configuration error found.
func (p Params) Validate() error {
	switch {
	case p.NetworkSize < 2:
		return fmt.Errorf("core: NetworkSize must be >= 2, got %d", p.NetworkSize)
	case p.NumDesiredResults < 1:
		return fmt.Errorf("core: NumDesiredResults must be >= 1, got %d", p.NumDesiredResults)
	case p.LifespanMultiplier <= 0:
		return fmt.Errorf("core: LifespanMultiplier must be positive, got %v", p.LifespanMultiplier)
	case p.QueriesEnabled && p.QueryRate <= 0:
		return fmt.Errorf("core: QueryRate must be positive, got %v", p.QueryRate)
	case p.PercentBadPeers < 0 || p.PercentBadPeers > 100:
		return fmt.Errorf("core: PercentBadPeers must be in [0,100], got %v", p.PercentBadPeers)
	case p.PercentBadPeers > 0 && p.BadPong == 0:
		return fmt.Errorf("core: BadPong must be set when PercentBadPeers > 0")
	case !p.QueryProbe.Valid():
		return fmt.Errorf("core: invalid QueryProbe policy")
	case !p.QueryPong.Valid():
		return fmt.Errorf("core: invalid QueryPong policy")
	case !p.PingProbe.Valid():
		return fmt.Errorf("core: invalid PingProbe policy")
	case !p.PingPong.Valid():
		return fmt.Errorf("core: invalid PingPong policy")
	case !p.CacheReplacement.Valid():
		return fmt.Errorf("core: invalid CacheReplacement policy")
	case p.PingInterval <= 0:
		return fmt.Errorf("core: PingInterval must be positive, got %v", p.PingInterval)
	case p.CacheSize < 1:
		return fmt.Errorf("core: CacheSize must be >= 1, got %d", p.CacheSize)
	case p.DoBackoff && p.BackoffPeriod <= 0:
		return fmt.Errorf("core: BackoffPeriod must be positive when DoBackoff is set")
	case p.PongSize < 0:
		return fmt.Errorf("core: PongSize must be >= 0, got %d", p.PongSize)
	case p.IntroProb < 0 || p.IntroProb > 1:
		return fmt.Errorf("core: IntroProb must be in [0,1], got %v", p.IntroProb)
	case p.CacheSeedSize < 0:
		return fmt.Errorf("core: CacheSeedSize must be >= 0, got %d", p.CacheSeedSize)
	case p.QueriesEnabled && p.ProbeSpacing <= 0:
		return fmt.Errorf("core: ProbeSpacing must be positive, got %v", p.ProbeSpacing)
	case p.QueriesEnabled && p.ParallelProbes < 1:
		return fmt.Errorf("core: ParallelProbes must be >= 1, got %d", p.ParallelProbes)
	case p.MaxProbesPerQuery < 0:
		return fmt.Errorf("core: MaxProbesPerQuery must be >= 0, got %d", p.MaxProbesPerQuery)
	case p.WarmupTime < 0:
		return fmt.Errorf("core: WarmupTime must be >= 0, got %v", p.WarmupTime)
	case p.MeasureTime <= 0:
		return fmt.Errorf("core: MeasureTime must be positive, got %v", p.MeasureTime)
	case p.SampleInterval <= 0:
		return fmt.Errorf("core: SampleInterval must be positive, got %v", p.SampleInterval)
	case p.Shards < 0 || p.Shards > maxShards:
		return fmt.Errorf("core: Shards must be in [0,%d], got %d", maxShards, p.Shards)
	}
	switch {
	case p.AdaptiveParallel && p.AdaptiveParallelWindow <= 0:
		return fmt.Errorf("core: AdaptiveParallelWindow must be positive")
	case p.AdaptiveParallel && p.MaxParallelProbes < p.ParallelProbes:
		return fmt.Errorf("core: MaxParallelProbes %d below ParallelProbes %d",
			p.MaxParallelProbes, p.ParallelProbes)
	case p.AdaptivePing && (p.AdaptivePingMin <= 0 || p.AdaptivePingMax < p.AdaptivePingMin):
		return fmt.Errorf("core: adaptive ping bounds [%v, %v] invalid",
			p.AdaptivePingMin, p.AdaptivePingMax)
	case p.AdaptivePing && !(p.AdaptivePingLowLive >= 0 && p.AdaptivePingLowLive <= p.AdaptivePingHighLive && p.AdaptivePingHighLive <= 1):
		return fmt.Errorf("core: adaptive ping live thresholds [%v, %v] invalid",
			p.AdaptivePingLowLive, p.AdaptivePingHighLive)
	case p.PercentSelfishPeers < 0 || p.PercentSelfishPeers > 100:
		return fmt.Errorf("core: PercentSelfishPeers must be in [0,100], got %v", p.PercentSelfishPeers)
	case p.PercentSelfishPeers+p.PercentBadPeers > 100:
		return fmt.Errorf("core: selfish (%v%%) + malicious (%v%%) peers exceed 100%%",
			p.PercentSelfishPeers, p.PercentBadPeers)
	case p.PercentSelfishPeers > 0 && p.SelfishParallelProbes < 1:
		return fmt.Errorf("core: SelfishParallelProbes must be >= 1, got %d", p.SelfishParallelProbes)
	case p.PoisonDetection && (p.PoisonThreshold <= 0 || p.PoisonThreshold > 1):
		return fmt.Errorf("core: PoisonThreshold must be in (0,1], got %v", p.PoisonThreshold)
	case p.PoisonDetection && p.PoisonMinSamples < 1:
		return fmt.Errorf("core: PoisonMinSamples must be >= 1, got %d", p.PoisonMinSamples)
	}
	if err := p.Content.Validate(); err != nil {
		return fmt.Errorf("core: content model: %w", err)
	}
	return nil
}

// maxShards bounds Params.Shards; beyond any machine's useful
// parallelism, and a sanity guard against misparsed configurations.
const maxShards = 1024

// shardCount resolves the effective shard count (0 means serial).
func (p Params) shardCount() int {
	if p.Shards < 1 {
		return 1
	}
	return p.Shards
}

// numSelfishPeers resolves the selfish peer count.
func (p Params) numSelfishPeers() int {
	return int(p.PercentSelfishPeers / 100 * float64(p.NetworkSize))
}

// seedSize resolves the effective CacheSeedSize.
func (p Params) seedSize() int {
	s := p.CacheSeedSize
	if s == 0 {
		s = p.NetworkSize / 100
	}
	if s < 1 {
		s = 1
	}
	if s > p.CacheSize {
		s = p.CacheSize
	}
	if s > p.NetworkSize-1 {
		s = p.NetworkSize - 1
	}
	return s
}

// numBadPeers resolves the malicious peer count.
func (p Params) numBadPeers() int {
	return int(p.PercentBadPeers / 100 * float64(p.NetworkSize))
}
