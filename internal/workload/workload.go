// Package workload generates the query arrival process described in the
// paper's experimental setup: each user submits queries in bursts — a
// uniformly random 1..5 queries in succession — with burst arrivals
// following a Poisson process tuned so the long-run per-user query rate
// equals the QueryRate system parameter.
package workload

import (
	"fmt"

	"repro/internal/simrng"
)

// DefaultQueryRate is the paper's default expected number of queries
// per user per second (9.26e-3, roughly one query every 108 seconds).
const DefaultQueryRate = 9.26e-3

// Burst generator parameters.
const (
	minBurst = 1
	maxBurst = 5
	// meanBurst is the expectation of U{1..5}.
	meanBurst = float64(minBurst+maxBurst) / 2
)

// Generator produces per-user query bursts.
type Generator struct {
	burstRate float64 // bursts per second per user
}

// New returns a Generator for the given per-user query rate (queries
// per second). rate must be positive.
func New(rate float64) (*Generator, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: query rate must be positive, got %v", rate)
	}
	return &Generator{burstRate: rate / meanBurst}, nil
}

// MustNew is New but panics on error.
func MustNew(rate float64) *Generator {
	g, err := New(rate)
	if err != nil {
		panic(err)
	}
	return g
}

// NextBurst draws the delay (seconds) until a user's next query burst
// and the number of queries in it.
func (g *Generator) NextBurst(r *simrng.RNG) (delay float64, size int) {
	delay = r.ExpFloat64() / g.burstRate
	size = minBurst + r.Intn(maxBurst-minBurst+1)
	return delay, size
}

// Rate returns the long-run per-user query rate implied by the
// generator.
func (g *Generator) Rate() float64 { return g.burstRate * meanBurst }
