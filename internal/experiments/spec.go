package experiments

// The typed experiment-spec API. A Spec is a serializable description
// of one sweep — the protocol family plus the fully-resolved parameter
// set of every sweep point — and a Point is one serializable work unit
// cut from a Spec. Both marshal to plain JSON, which is what makes
// distributed execution possible at all: a worker process can execute
// a Point it received over a wire, where the old string-keyed
// Run("fig4", opts) entry resolved figure IDs to closures that only
// existed inside this process. Points are content-addressed (Key) with
// the same sha256 params digest the in-process sweep memo uses, so the
// digest doubles as the wire-level shared-cache key.

import (
	"context"
	"fmt"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/gossip"
)

// Family discriminates the four protocol families an experiment point
// can run on. The discriminator is carried in every Spec, Point,
// PointResult, memo key and wire frame, so results cached or
// transported for one engine can never be served to another.
type Family string

const (
	// FamilyGUESS is the paper's protocol on the full churn engine.
	FamilyGUESS Family = "guess"
	// FamilyFlood is Gnutella flooding over a static overlay.
	FamilyFlood Family = "flood"
	// FamilyGossip is push/pull rumor spreading.
	FamilyGossip Family = "gossip"
	// FamilyDHT is the ring-lookup DHT baseline.
	FamilyDHT Family = "dht"
)

// Families lists every protocol family in canonical order.
func Families() []Family {
	return []Family{FamilyGUESS, FamilyFlood, FamilyGossip, FamilyDHT}
}

// FloodParams configures one flooding run: a static random overlay and
// a query batch over the shared content model. It is the serializable
// form of the flood baseline that used to live inline in the
// cmp-families experiment.
type FloodParams struct {
	// NetworkSize is the number of peers in the static overlay.
	NetworkSize int
	// AvgDegree is the overlay's average degree.
	AvgDegree int
	// TTL bounds flood propagation.
	TTL int
	// NumQueries is the number of flood searches to run.
	NumQueries int
	// NumDesiredResults is how many results satisfy a query.
	NumDesiredResults int
	// Seed drives topology, population, and query randomness.
	Seed uint64
	// Content configures the shared content substrate.
	Content content.Params
}

// DefaultFloodParams returns the cmp-families flood configuration.
func DefaultFloodParams() FloodParams {
	return FloodParams{
		NetworkSize:       400,
		AvgDegree:         8,
		TTL:               4,
		NumQueries:        1000,
		NumDesiredResults: 1,
		Seed:              1,
		Content:           content.DefaultParams(),
	}
}

// Validate checks flood parameter sanity.
func (p FloodParams) Validate() error {
	switch {
	case p.NetworkSize < 2:
		return fmt.Errorf("flood: NetworkSize must be >= 2, got %d", p.NetworkSize)
	case p.AvgDegree < 1 || p.AvgDegree >= p.NetworkSize:
		return fmt.Errorf("flood: AvgDegree %d out of range for %d peers", p.AvgDegree, p.NetworkSize)
	case p.TTL < 1:
		return fmt.Errorf("flood: TTL must be >= 1, got %d", p.TTL)
	case p.NumQueries < 1:
		return fmt.Errorf("flood: NumQueries must be >= 1, got %d", p.NumQueries)
	case p.NumDesiredResults < 1:
		return fmt.Errorf("flood: NumDesiredResults must be >= 1, got %d", p.NumDesiredResults)
	}
	return p.Content.Validate()
}

// FloodResults reports one flooding run.
type FloodResults struct {
	// Queries partitions into Satisfied + Unsatisfied.
	Queries     int
	Satisfied   int
	Unsatisfied int
	// Messages is the total flood forwards across queries.
	Messages int64
	// PeerLoads counts messages received per peer.
	PeerLoads []int64
}

// Satisfaction returns the satisfied fraction of queries.
func (r *FloodResults) Satisfaction() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Satisfied) / float64(r.Queries)
}

// MessagesPerQuery returns the mean flood messages per query.
func (r *FloodResults) MessagesPerQuery() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Messages) / float64(r.Queries)
}

// Spec is a serializable description of one sweep: the protocol family
// and the fully-resolved parameters of every sweep point, in order.
// Exactly one of the per-family slices must be non-empty, and it must
// match Family.
//
// Label names the sweep for the process-level memo: two Specs with the
// same family, label, options and parameter digest share one cached
// execution (Figures 3-5 share the cache-size sweep this way). An
// empty Label disables memoization — the sweep executes every time.
type Spec struct {
	Family Family `json:"family"`
	Label  string `json:"label,omitempty"`

	Core   []core.Params   `json:"core,omitempty"`
	Flood  []FloodParams   `json:"flood,omitempty"`
	Gossip []gossip.Params `json:"gossip,omitempty"`
	DHT    []dht.Params    `json:"dht,omitempty"`
}

// NumPoints returns the number of sweep points the spec declares.
func (s Spec) NumPoints() int {
	return len(s.Core) + len(s.Flood) + len(s.Gossip) + len(s.DHT)
}

// Validate checks that the spec names a known family and that exactly
// the matching parameter slice is populated.
func (s Spec) Validate() error {
	counts := map[Family]int{
		FamilyGUESS:  len(s.Core),
		FamilyFlood:  len(s.Flood),
		FamilyGossip: len(s.Gossip),
		FamilyDHT:    len(s.DHT),
	}
	want, ok := counts[s.Family]
	if !ok {
		return fmt.Errorf("experiments: spec %q: unknown family %q", s.Label, s.Family)
	}
	if want == 0 {
		return fmt.Errorf("experiments: spec %q: family %q declared but no %q params given", s.Label, s.Family, s.Family)
	}
	for _, f := range Families() {
		if f != s.Family && counts[f] != 0 {
			return fmt.Errorf("experiments: spec %q: family is %q but %d %q params are set", s.Label, s.Family, counts[f], f)
		}
	}
	return nil
}

// Point returns the i'th sweep point as a standalone work unit.
func (s Spec) Point(i int) Point {
	switch s.Family {
	case FamilyGUESS:
		p := s.Core[i]
		return Point{Family: FamilyGUESS, Core: &p}
	case FamilyFlood:
		p := s.Flood[i]
		return Point{Family: FamilyFlood, Flood: &p}
	case FamilyGossip:
		p := s.Gossip[i]
		return Point{Family: FamilyGossip, Gossip: &p}
	case FamilyDHT:
		p := s.DHT[i]
		return Point{Family: FamilyDHT, DHT: &p}
	}
	panic(fmt.Sprintf("experiments: Point on invalid family %q", s.Family))
}

// digest hashes the spec's parameter slice for the memo key, with the
// same length-prefixed JSON encoding the pre-Spec memo paths used, so
// keys stay stable across the API migration.
func (s Spec) digest() string {
	switch s.Family {
	case FamilyGUESS:
		return paramsDigest(s.Core)
	case FamilyFlood:
		return paramsDigest(s.Flood)
	case FamilyGossip:
		return paramsDigest(s.Gossip)
	case FamilyDHT:
		return paramsDigest(s.DHT)
	}
	return paramsDigest([]struct{}{})
}

// Point is one serializable work unit: a family discriminator plus
// exactly one populated parameter set. This is the value a distributed
// worker receives over the wire and executes with RunPoint.
type Point struct {
	Family Family         `json:"family"`
	Core   *core.Params   `json:"core,omitempty"`
	Flood  *FloodParams   `json:"flood,omitempty"`
	Gossip *gossip.Params `json:"gossip,omitempty"`
	DHT    *dht.Params    `json:"dht,omitempty"`
}

// Validate checks that the point carries exactly the parameter set its
// family declares.
func (pt Point) Validate() error {
	set := map[Family]bool{
		FamilyGUESS:  pt.Core != nil,
		FamilyFlood:  pt.Flood != nil,
		FamilyGossip: pt.Gossip != nil,
		FamilyDHT:    pt.DHT != nil,
	}
	ok, known := set[pt.Family]
	if !known {
		return fmt.Errorf("experiments: point has unknown family %q", pt.Family)
	}
	if !ok {
		return fmt.Errorf("experiments: point family %q has no %q params", pt.Family, pt.Family)
	}
	for _, f := range Families() {
		if f != pt.Family && set[f] {
			return fmt.Errorf("experiments: point family is %q but %q params are set", pt.Family, f)
		}
	}
	return nil
}

// Key returns the point's content address: the family discriminator
// plus the sha256 digest of the parameters, using the same
// length-prefixed JSON hashing as the sweep memo. Two points with
// equal keys produce identical results under the determinism
// guarantees, so the key serves as the wire-level shared-cache key —
// a point computed by any worker, or by a prior run feeding a disk
// cache, is never recomputed.
func (pt Point) Key() string {
	var digest string
	switch pt.Family {
	case FamilyGUESS:
		digest = paramsDigest([]core.Params{*pt.Core})
	case FamilyFlood:
		digest = paramsDigest([]FloodParams{*pt.Flood})
	case FamilyGossip:
		digest = paramsDigest([]gossip.Params{*pt.Gossip})
	case FamilyDHT:
		digest = paramsDigest([]dht.Params{*pt.DHT})
	default:
		panic(fmt.Sprintf("experiments: Key on invalid point family %q", pt.Family))
	}
	return string(pt.Family) + ":" + digest
}

// PointResult is the serializable outcome of one point: the family
// discriminator plus exactly one populated result set.
type PointResult struct {
	Family Family          `json:"family"`
	Core   *core.Results   `json:"core,omitempty"`
	Flood  *FloodResults   `json:"flood,omitempty"`
	Gossip *gossip.Results `json:"gossip,omitempty"`
	DHT    *dht.Results    `json:"dht,omitempty"`
}

// Validate checks that the result carries exactly the payload its
// family declares — the receiving side of a wire transfer uses this to
// reject frames whose body does not match their discriminator.
func (pr PointResult) Validate() error {
	set := map[Family]bool{
		FamilyGUESS:  pr.Core != nil,
		FamilyFlood:  pr.Flood != nil,
		FamilyGossip: pr.Gossip != nil,
		FamilyDHT:    pr.DHT != nil,
	}
	ok, known := set[pr.Family]
	if !known {
		return fmt.Errorf("experiments: result has unknown family %q", pr.Family)
	}
	if !ok {
		return fmt.Errorf("experiments: result family %q has no %q payload", pr.Family, pr.Family)
	}
	for _, f := range Families() {
		if f != pr.Family && set[f] {
			return fmt.Errorf("experiments: result family is %q but %q payload is set", pr.Family, f)
		}
	}
	return nil
}

// Executor runs a batch of expanded sweep points, returning results in
// input order. It is the seam distributed execution plugs into: when
// Options.Executor is non-nil, RunSpec hands every expanded point
// batch to it instead of the built-in in-process pool.
// internal/orchestrate's coordinator and local worker pool implement
// it. Implementations must return results identical to the local
// path's for identical points — the determinism guarantees make every
// point a pure function of its parameters, and the
// distributed-vs-local byte-identity tests hold implementations to it.
type Executor interface {
	RunPoints(ctx context.Context, pts []Point) ([]PointResult, error)
}

// coreResultsOf unwraps a GUESS point-result batch.
func coreResultsOf(prs []PointResult) []*core.Results {
	out := make([]*core.Results, len(prs))
	for i, pr := range prs {
		out[i] = pr.Core
	}
	return out
}

// gossipResultsOf unwraps a gossip point-result batch.
func gossipResultsOf(prs []PointResult) []*gossip.Results {
	out := make([]*gossip.Results, len(prs))
	for i, pr := range prs {
		out[i] = pr.Gossip
	}
	return out
}

// dhtResultsOf unwraps a DHT point-result batch.
func dhtResultsOf(prs []PointResult) []*dht.Results {
	out := make([]*dht.Results, len(prs))
	for i, pr := range prs {
		out[i] = pr.DHT
	}
	return out
}
