package core

import (
	"repro/internal/cache"
	"repro/internal/content"
	"repro/internal/obs"
	"repro/internal/policy"
)

// query is the state of one in-flight search. Completed queries are
// recycled through the engine's free list (see getQuery/putQuery), so
// the selector buffers and the visited set are steady-state
// allocation-free.
type query struct {
	// id labels the query in trace events: 1-based in issue order,
	// stable across pooling (reassigned on every startQuery).
	id uint64
	// origin is the querying peer's ID (not slot: slots move on churn,
	// and a query outlives many churn events).
	origin  cache.PeerID
	item    content.ItemID
	started float64
	// round counts probe rounds for trace events.
	round int
	// counted records whether the query started inside the measurement
	// window and should contribute to metrics.
	counted bool
	// burstRemaining queries follow this one back-to-back when it
	// completes (the bursty workload's "succession").
	burstRemaining int

	results int
	probes  int
	good    int
	dead    int
	refused int

	// k is the current per-round fan-out; lastProgress is when the
	// query last gained a result (both drive AdaptiveParallel).
	k            int
	lastProgress float64

	sel *policy.Selector
	// seen is the query cache's dedup set: every address ever added as
	// a candidate. (The full cache.QueryCache bookkeeping is not needed
	// here — the selector holds the pending entries — and exhaustive
	// queries make per-candidate memory the simulator's footprint
	// ceiling.) It is generation-stamped rather than cleared: an
	// address is "seen" iff its stored stamp equals seenGen, so reuse
	// across pooled queries costs one increment instead of a map clear
	// or a fresh allocation.
	seen    map[cache.PeerID]uint64
	seenGen uint64
}

// maxRetainedSeen bounds how large a pooled query's visited set may
// grow before it is cleared on release: generation stamping never
// removes entries, and under churn the address space is unbounded, so
// without a cap a long run would accumulate every address ever seen in
// every pooled map.
const maxRetainedSeen = 1 << 15

// addCandidate records addr as seen and, if new, feeds the entry to
// the selector. It reports whether the entry was new.
func (q *query) addCandidate(e cache.Entry) bool {
	if q.seen[e.Addr] == q.seenGen {
		return false
	}
	q.seen[e.Addr] = q.seenGen
	q.sel.Add(e)
	return true
}

// getQuery pops a recycled query (or makes a fresh one). The caller
// must initialize every run-specific field; startQuery does.
func (e *Engine) getQuery() *query {
	if n := len(e.freeQueries); n > 0 && !e.noReuse {
		q := e.freeQueries[n-1]
		e.freeQueries[n-1] = nil
		e.freeQueries = e.freeQueries[:n-1]
		return q
	}
	return &query{
		sel:  policy.NewSelector(e.p.QueryProbe, e.rngPolicy),
		seen: make(map[cache.PeerID]uint64, 64),
	}
}

// putQuery returns a finished query to the free list. Safe because a
// query has at most one pending evProbeStep at any time, and both
// release sites run while handling (or before scheduling) that event —
// so no queued event can still reference q.
func (e *Engine) putQuery(q *query) {
	if e.noReuse {
		return
	}
	if len(q.seen) > maxRetainedSeen {
		clear(q.seen)
		q.seenGen = 0
	}
	e.freeQueries = append(e.freeQueries, q)
}

// startQuery begins a new query at the peer in slot p: the target item
// is drawn from the query model, the link cache is snapshotted into the
// candidate set, and the first probe round fires immediately.
func (e *Engine) startQuery(p int, burstRemaining int) {
	q := e.getQuery()
	e.nextQueryID++
	q.id = e.nextQueryID
	q.origin = e.ps.id[p]
	q.item = e.universe.DrawQuery(e.rngContent)
	q.started = e.now
	q.counted = e.now >= e.p.WarmupTime
	q.burstRemaining = burstRemaining
	q.round = 0
	q.results, q.probes, q.good, q.dead, q.refused = 0, 0, 0, 0, 0
	q.k = e.queryParallelism(p)
	q.lastProgress = e.now
	q.sel.Reset(e.p.QueryProbe, e.rngPolicy)
	q.seenGen++
	// Never probe yourself.
	q.seen[q.origin] = q.seenGen

	for _, entry := range e.ps.link[p].Entries() {
		q.addCandidate(entry)
	}
	if q.counted {
		e.inFlightCounted++
	}
	if e.observer != nil {
		e.observer.Observe(obs.Event{
			Kind:  obs.EvQueryIssued,
			Time:  e.now,
			Query: q.id,
			Peer:  uint64(q.origin),
		})
	}
	e.handleProbeStep(q)
}

// handleProbeStep sends the next round of (up to ParallelProbes)
// probes for q and either completes the query or schedules the next
// round.
func (e *Engine) handleProbeStep(q *query) {
	origin := e.ps.slotOf(q.origin)
	if origin < 0 {
		// The querying peer died; the query is abandoned.
		if q.counted {
			e.res.Aborted++
			e.inFlightCounted--
			if e.met != nil {
				e.met.Aborted.Inc()
			}
		}
		if e.observer != nil {
			e.observer.Observe(obs.Event{
				Kind:    obs.EvQueryDone,
				Time:    e.now,
				Query:   q.id,
				Peer:    uint64(q.origin),
				Outcome: obs.OutcomeAborted,
				Probes:  q.probes,
				Results: q.results,
			})
		}
		e.putQuery(q)
		return
	}

	q.round++
	if e.observer != nil {
		e.observer.Observe(obs.Event{
			Kind:   obs.EvProbeRound,
			Time:   e.now,
			Query:  q.id,
			Peer:   uint64(q.origin),
			Round:  q.round,
			Probes: q.probes,
		})
	}

	// All probes of a round are in flight before any replies arrive, so
	// a round is sent in full even if an early probe already satisfies
	// the query (the paper's "at most k-1 wasted probes").
	e.maybeGrowParallelism(q)
	for i := 0; i < q.k; i++ {
		entry, ok := e.nextCandidate(origin, q)
		if !ok {
			break
		}
		e.probeOne(origin, q, entry)
		if e.p.MaxProbesPerQuery > 0 && q.probes >= e.p.MaxProbesPerQuery {
			break
		}
	}

	switch {
	case q.results >= e.p.NumDesiredResults:
		e.completeQuery(origin, q, true)
	case q.sel.Len() == 0:
		e.completeQuery(origin, q, false)
	case e.p.MaxProbesPerQuery > 0 && q.probes >= e.p.MaxProbesPerQuery:
		e.completeQuery(origin, q, false)
	default:
		e.push(e.now+e.p.ProbeSpacing, event{kind: evProbeStep, q: q})
	}
}

// nextCandidate pulls the best unprobed candidate, skipping targets the
// origin is currently backing off from.
func (e *Engine) nextCandidate(origin int, q *query) (cache.Entry, bool) {
	for {
		entry, ok := q.sel.Next()
		if !ok {
			return cache.Entry{}, false
		}
		if e.suppressedNow(origin, entry.Addr, e.now) {
			continue
		}
		return entry, true
	}
}

// probeOne delivers a single query probe from origin to the peer named
// by entry and processes the outcome (results, pong, introduction,
// cache bookkeeping).
func (e *Engine) probeOne(origin int, q *query, entry cache.Entry) {
	addr := entry.Addr
	q.probes++

	target := e.ps.slotOf(addr)
	if target < 0 {
		// Timeout: the peer is presumed dead and evicted.
		q.dead++
		e.ps.link[origin].Remove(addr)
		e.blameDeadAddress(origin, addr)
		if e.observer != nil {
			e.observer.Observe(obs.Event{
				Kind:    obs.EvProbe,
				Time:    e.now,
				Query:   q.id,
				Peer:    uint64(q.origin),
				Target:  uint64(addr),
				Outcome: obs.OutcomeDead,
			})
		}
		return
	}

	if e.now >= e.p.WarmupTime {
		e.ps.probesReceived[target]++
	}
	if e.addLoad(target, e.now, e.p.MaxProbesPerSecond) {
		// Refused: the overloaded peer drops the probe. Without
		// back-off the prober treats it like a dead peer (the
		// protocol's inherent throttling); with back-off the entry is
		// kept but suppressed for a while.
		q.refused++
		if e.p.DoBackoff {
			e.suppress(origin, addr, e.now+e.p.BackoffPeriod)
		} else {
			e.ps.link[origin].Remove(addr)
		}
		if e.observer != nil {
			e.observer.Observe(obs.Event{
				Kind:    obs.EvProbe,
				Time:    e.now,
				Query:   q.id,
				Peer:    uint64(q.origin),
				Target:  uint64(addr),
				Outcome: obs.OutcomeRefused,
			})
		}
		return
	}

	q.good++
	e.maybeIntroduce(target, origin)

	res := 0
	if !e.ps.malicious[target] {
		res = e.ps.lib[target].Results(q.item)
	}
	q.results += res
	if res > 0 {
		q.lastProgress = e.now
	}
	if e.observer != nil {
		e.observer.Observe(obs.Event{
			Kind:    obs.EvProbe,
			Time:    e.now,
			Query:   q.id,
			Peer:    uint64(q.origin),
			Target:  uint64(addr),
			Outcome: obs.OutcomeGood,
			Results: res,
		})
	}

	// Both sides record the interaction; the prober also refreshes its
	// direct NumRes experience with the target.
	e.ps.link[origin].Touch(addr, e.now)
	e.ps.link[origin].SetNumRes(addr, int32(res))
	e.ps.link[target].Touch(q.origin, e.now)

	// The pong rides along with the query response: new candidates for
	// this query's cache and fodder for the link cache. Blacklisted
	// suppliers' pongs are dropped (poison detection).
	if e.pongSourceBlocked(origin, addr) {
		return
	}
	pong := e.buildPong(target, e.p.QueryPong)
	targetBad := e.ps.malicious[target]
	for _, pe := range pong {
		if pe.Addr == q.origin {
			continue
		}
		pe.Direct = false
		if e.p.ResetNumResults {
			pe.NumRes = 0
		}
		e.recordSupplied(origin, addr, pe.Addr)
		q.addCandidate(pe)
		e.insertEntry(origin, pe, targetBad)
	}
	if e.observer != nil && len(pong) > 0 {
		e.observer.Observe(obs.Event{
			Kind:    obs.EvPong,
			Time:    e.now,
			Query:   q.id,
			Peer:    uint64(q.origin),
			Target:  uint64(addr),
			Entries: len(pong),
		})
	}
}

// completeQuery records metrics and chains the next query of the burst.
func (e *Engine) completeQuery(origin int, q *query, satisfied bool) {
	if q.counted {
		e.inFlightCounted--
		e.res.Queries++
		if satisfied {
			e.res.Satisfied++
		} else {
			e.res.Unsatisfied++
		}
		e.res.ProbesTotal += int64(q.probes)
		e.res.GoodProbes += int64(q.good)
		e.res.DeadProbes += int64(q.dead)
		e.res.RefusedProbes += int64(q.refused)
		e.res.ResponseTimeSum += e.now - q.started
		if e.met != nil {
			e.met.Queries.Inc()
			if satisfied {
				e.met.Satisfied.Inc()
			} else {
				e.met.Unsatisfied.Inc()
			}
			e.met.Probes.Add(uint64(q.probes))
			e.met.GoodProbes.Add(uint64(q.good))
			e.met.DeadProbes.Add(uint64(q.dead))
			e.met.RefusedProbes.Add(uint64(q.refused))
			e.met.QueryProbesHist.Observe(float64(q.probes))
			e.met.ResponseTime.Observe(e.now - q.started)
		}
	}
	if e.observer != nil {
		outcome := obs.OutcomeExhausted
		if satisfied {
			outcome = obs.OutcomeSatisfied
		}
		e.observer.Observe(obs.Event{
			Kind:    obs.EvQueryDone,
			Time:    e.now,
			Query:   q.id,
			Peer:    uint64(q.origin),
			Outcome: outcome,
			Probes:  q.probes,
			Results: q.results,
		})
	}
	// Recycle before chaining so the burst's next query can reuse this
	// one's storage immediately.
	burst := q.burstRemaining
	e.putQuery(q)
	if burst > 0 {
		e.startQuery(origin, burst-1)
	}
}
