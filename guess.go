package guess

import (
	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/policy"
)

// Config holds all simulation parameters: the paper's system
// parameters (Table 1), protocol parameters (Table 2), the content
// model, and run control. Construct with DefaultConfig and override
// fields; see the field documentation on the underlying type.
type Config = core.Params

// Results holds a run's measurements: query cost and satisfaction,
// probe breakdowns, cache health, per-peer load, and overlay
// connectivity.
type Results = core.Results

// ContentParams configures the synthetic content and query model.
type ContentParams = content.Params

// DefaultConfig returns the paper's default configuration.
func DefaultConfig() Config { return core.DefaultParams() }

// DefaultContentParams returns the calibrated content-model defaults.
func DefaultContentParams() ContentParams { return content.DefaultParams() }

// Run executes one GUESS simulation.
func Run(cfg Config) (*Results, error) {
	engine, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return engine.Run()
}

// Selection orders cache entries for probing and pong construction
// (the QueryProbe, QueryPong, PingProbe and PingPong policy types).
type Selection = policy.Selection

// Selection policies (Section 4 of the paper).
const (
	// Random selects uniformly; the fairness baseline.
	Random = policy.SelRandom
	// MRU prefers recently contacted peers (most likely alive).
	MRU = policy.SelMRU
	// LRU prefers stale entries (spreads load, risks dead peers).
	LRU = policy.SelLRU
	// MFS prefers peers sharing the most files.
	MFS = policy.SelMFS
	// MR prefers peers that returned the most results.
	MR = policy.SelMR
	// MRStar is MR using only first-hand experience (robust to lies).
	MRStar = policy.SelMRStar
)

// Eviction picks link-cache victims (the CacheReplacement policy
// type). Names follow the paper: the policy evicts what it names.
type Eviction = policy.Eviction

// Cache replacement policies (Section 4 of the paper).
const (
	// EvictRandom evicts a uniformly random entry.
	EvictRandom = policy.EvRandom
	// EvictLRU evicts the least recently used entry (keeps recency).
	EvictLRU = policy.EvLRU
	// EvictMRU evicts the most recently used entry (keeps stale ones).
	EvictMRU = policy.EvMRU
	// EvictLFS evicts the peer sharing the fewest files (the MFS goal).
	EvictLFS = policy.EvLFS
	// EvictLR evicts the peer with the fewest results (the MR goal).
	EvictLR = policy.EvLR
	// EvictLRStar is EvictLR on first-hand experience only.
	EvictLRStar = policy.EvLRStar
)

// EvictionFor returns the cache-replacement policy that retains what
// sel prefers (MFS -> EvictLFS, MR -> EvictLR, and so on).
func EvictionFor(sel Selection) Eviction { return policy.EvictionFor(sel) }

// ParseSelection resolves a selection policy name ("Random", "MRU",
// "LRU", "MFS", "MR", "MR*").
func ParseSelection(name string) (Selection, error) { return policy.ParseSelection(name) }

// ParseEviction resolves an eviction policy name ("Random", "LRU",
// "MRU", "LFS", "LR", "LR*").
func ParseEviction(name string) (Eviction, error) { return policy.ParseEviction(name) }

// BadPongBehavior is what a malicious peer puts in its pongs.
type BadPongBehavior = core.BadPongBehavior

// Malicious pong behaviors (Section 6.4 of the paper).
const (
	// BadPongDead poisons caches with fabricated dead addresses.
	BadPongDead = core.BadPongDead
	// BadPongBad poisons caches with colluders' addresses.
	BadPongBad = core.BadPongBad
	// BadPongGood returns genuine entries (the peer still returns no
	// results).
	BadPongGood = core.BadPongGood
)

// ExperimentOptions configures experiment regeneration (scale, seed,
// parallelism, progress output).
type ExperimentOptions = experiments.Options

// ExperimentResult is a regenerated table/figure.
type ExperimentResult = experiments.Result

// Experiment scales.
const (
	// ScaleQuick runs small networks for fast turnaround.
	ScaleQuick = experiments.Quick
	// ScaleFull runs the paper's network sizes and durations.
	ScaleFull = experiments.Full
)

// ExperimentIDs lists every reproducible paper artifact ("table3",
// "fig3" ... "fig21") in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitle describes an experiment ID.
func ExperimentTitle(id string) (string, error) { return experiments.Title(id) }

// RunExperiment regenerates one paper table or figure.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, opts)
}
