package core

import (
	"context"
	"testing"

	"repro/internal/policy"
)

// BenchmarkEngineRun measures one short default-policy simulation per
// iteration — the same unit of work as the top-level BenchmarkSingleRun
// but small enough for quick allocation tracking with -benchtime=1x.
func BenchmarkEngineRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := quickParams()
		p.Seed = uint64(i + 1)
		e, err := New(p)
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Queries == 0 {
			b.Fatal("no queries")
		}
	}
}

// BenchmarkEngineRunScored exercises the scored-policy hot path (top-k
// selection, LFS eviction) rather than the random-policy default.
func BenchmarkEngineRunScored(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := quickParams()
		p.QueryProbe, p.QueryPong = policy.SelMFS, policy.SelMFS
		p.PingProbe, p.PingPong = policy.SelMRU, policy.SelLRU
		p.CacheReplacement = policy.EvLFS
		p.Seed = uint64(i + 1)
		e, err := New(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
