// Quickstart: run one GUESS simulation with the paper's default
// parameters and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	guess "repro"
)

func main() {
	cfg := guess.DefaultConfig()
	// Keep the example snappy: a mid-sized network and a short
	// measurement window. Everything else is the paper's defaults
	// (Random policies, 100-entry cache, 30 s ping interval).
	cfg.NetworkSize = 500
	cfg.WarmupTime = 200
	cfg.MeasureTime = 800

	res, err := guess.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GUESS quickstart — defaults, Random policies")
	fmt.Printf("  queries completed:   %d\n", res.Queries)
	fmt.Printf("  probes per query:    %.1f (good %.1f, dead %.1f)\n",
		res.ProbesPerQuery(), res.GoodProbesPerQuery(), res.DeadProbesPerQuery())
	fmt.Printf("  unsatisfied queries: %.1f%%\n", 100*res.Unsatisfaction())
	fmt.Printf("  avg response time:   %.1f s\n", res.AvgResponseTime())
	fmt.Printf("  cache health:        %.1f/%.1f entries live (%.0f%%)\n",
		res.AvgLiveEntries, res.AvgCacheEntries, 100*res.AvgLiveFraction)

	// Now the paper's headline optimization: circulate pointers to
	// file-rich peers (QueryPong=MFS) and keep them in the cache
	// (CacheReplacement=LFS).
	cfg.QueryPong = guess.MFS
	cfg.CacheReplacement = guess.EvictLFS
	tuned, err := guess.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWith QueryPong=MFS and CacheReplacement=LFS:")
	fmt.Printf("  probes per query:    %.1f (%.1fx cheaper)\n",
		tuned.ProbesPerQuery(), res.ProbesPerQuery()/tuned.ProbesPerQuery())
	fmt.Printf("  unsatisfied queries: %.1f%%\n", 100*tuned.Unsatisfaction())
}
