package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRepoIsLintClean is the regression gate for the determinism,
// observability, and concurrency invariants: guess-lint over the whole
// module must exit clean with all eight analyzers. A new time.Now in a
// simulation package, an unsorted map range on a Results-producing
// path, a stray metric name, a mixed atomic/plain field access, an
// unguarded write to a mutex-protected field, a goroutine with no exit
// path, an unbounded wire allocation, or a stale suppression — any of
// these turns up here as a test failure with the finding in the
// output.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint loads every package; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"repro/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("guess-lint repro/... exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() > 0 {
		t.Fatalf("guess-lint repro/... reported findings:\n%s", stdout.String())
	}
}

// TestVersionAndFlagsProtocol checks the two query invocations the go
// command makes before using a -vettool.
func TestVersionAndFlagsProtocol(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exited %d: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "guess-lint version ") {
		t.Fatalf("-V=full output %q lacks the name-version form the go command fingerprints", stdout.String())
	}
	if !strings.Contains(stdout.String(), "v2") {
		t.Fatalf("-V=full output %q should report v2: the version is the vet cache fingerprint and must change when analyzers are added", stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exited %d: %s", code, stderr.String())
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Fatalf("-flags output %q, want []", stdout.String())
	}
}

// TestUsageError checks that unknown flags are a usage error, not a
// package pattern.
func TestUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nonsense", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
