# Convenience targets for the GUESS reproduction.

GO ?= go

.PHONY: all build vet test test-short bench experiments-quick experiments-full clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure quickly (small networks).
experiments-quick:
	$(GO) run ./cmd/guess-experiments -experiment all -scale quick

# Paper-scale regeneration; writes CSVs under results/full.
experiments-full:
	$(GO) run ./cmd/guess-experiments -experiment all -scale full -csv results/full

clean:
	rm -rf results
