package main

import (
	"testing"

	"repro/node"
)

func TestRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-query-probe", "Bogus"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := run([]string{"-bootstrap", "not-an-addr", "-query", "x"}); err == nil {
		t.Fatal("bad bootstrap address accepted")
	}
	if err := run([]string{"-listen", "256.0.0.1:99999"}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestQueryAgainstLivePeer(t *testing.T) {
	sharer, err := node.Listen("127.0.0.1:0", node.Config{
		Files: []string{"wanted song.mp3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sharer.Close()

	err = run([]string{
		"-listen", "127.0.0.1:0",
		"-bootstrap", sharer.Addr().String(),
		"-query", "wanted song",
		"-gossip-wait", "100ms",
	})
	if err != nil {
		t.Fatal(err)
	}
}
