package node

// Cluster plumbing: the handful of hooks node/cluster's sync client
// needs to couple a node's fair admitter to the shed-state service.
// All of them are safe no-ops under flat admission, so the cluster
// harness can run nodes in either mode.

// saltFor resolves the requester-hash salt: an explicit KeySalt wins,
// otherwise the historical per-node derivation from Seed (byte-
// identical for every pre-cluster configuration).
func saltFor(cfg Config) uint64 {
	if cfg.KeySalt != 0 {
		return cfg.KeySalt
	}
	return cfg.Seed*0x9e3779b97f4a7c15 + 1
}

// KeySalt returns the salt currently hashing requester addresses into
// the fair sketch.
func (n *Node) KeySalt() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.keySalt
}

// SetAdmissionSalt installs a new requester-hash salt and forgets all
// counted demand: counts hashed under the old salt land in meaningless
// buckets under the new one. The cluster sync client calls it when the
// shed-state service rotates the salt epoch.
func (n *Node) SetAdmissionSalt(salt uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.keySalt = salt
	if f, ok := n.adm.(*fairAdmitter); ok {
		f.resetSketch()
	}
}

// TakeAdmissionDelta drains the fair sketch's demand counted since the
// previous drain, reporting whether any accrued. Always empty under
// flat admission.
func (n *Node) TakeAdmissionDelta() (AdmissionDelta, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f, ok := n.adm.(*fairAdmitter); ok {
		return f.takeDelta()
	}
	return AdmissionDelta{}, false
}

// SetClusterAggregate installs the cluster-merged demand view: under
// pressure a requester's demand estimate becomes max(local, cluster),
// exposing heavy requesters that rotate across nodes.
func (n *Node) SetClusterAggregate(agg AdmissionAggregate) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f, ok := n.adm.(*fairAdmitter); ok {
		f.setAggregate(agg, true)
	}
}

// ClearClusterAggregate drops the cluster view, returning the admitter
// to local-only shedding (the sync client's fallback on service
// outage, slowness, or a stale epoch).
func (n *Node) ClearClusterAggregate() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f, ok := n.adm.(*fairAdmitter); ok {
		f.setAggregate(AdmissionAggregate{}, false)
	}
}

// AdmissionMode reports which admission controller the node runs.
func (n *Node) AdmissionMode() AdmissionMode {
	return n.cfg.Admission
}
