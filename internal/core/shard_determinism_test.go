package core

// Shard-count invariance: the sharded event engine merges per-shard
// queues on (time, global push order), which reproduces exactly the
// total order of a single queue — so Shards=1..K must yield the same
// run, byte for byte. This suite is the tentpole's determinism
// guarantee: across every reuse-battery configuration and several
// seeds, Results, the CSV time-series trace, and the JSONL event trace
// must all be identical at every shard count. It runs under -race in
// CI (make race), which also exercises the parallel sample and WCC
// scan phases for data races.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
)

// runSharded runs p at the given shard count and returns marshaled
// Results, the CSV trace, the JSONL event trace, and the Prometheus
// metrics exposition.
func runSharded(t *testing.T, p Params, shards int) (string, string, string, string) {
	t.Helper()
	var csv, jsonl, prom strings.Builder
	p.Shards = shards
	p.Trace = &csv
	tw := obs.NewTraceWriter(&jsonl)
	reg := obs.NewRegistry()
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	e.SetObserver(tw)
	e.SetMetrics(obs.NewSimMetrics(reg))
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	return marshalResults(t, res), csv.String(), jsonl.String(), prom.String()
}

// diffLine reports the first line where a and b differ.
func diffLine(t *testing.T, label string, a, b string) {
	t.Helper()
	l1, l2 := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(l1) && i < len(l2); i++ {
		if l1[i] != l2[i] {
			t.Fatalf("%s diverged at line %d:\nShards=1: %q\nsharded:  %q", label, i, l1[i], l2[i])
		}
	}
	t.Fatalf("%s lengths diverged: %d vs %d lines", label, len(l1), len(l2))
}

// TestShardedLargeRunSmoke runs a full simulation big enough to cross
// the parallel scan threshold (NetworkSize >= 2*scanChunk), so the
// sample and connectivity phases actually spawn worker goroutines —
// the invariance battery's small networks stay on the inline path.
// Under -race this is the test that checks the chunk-stealing scans
// for data races end to end.
func TestShardedLargeRunSmoke(t *testing.T) {
	p := DefaultParams()
	p.NetworkSize = 3 * scanChunk
	p.WarmupTime = 20
	p.MeasureTime = 100
	p.QueryRate = 0.002
	p.SampleInterval = 10
	p.SampleConnectivity = true
	p.Seed = 7

	wantRes, wantCSV, wantJSONL, wantProm := runSharded(t, p, 1)
	gotRes, gotCSV, gotJSONL, gotProm := runSharded(t, p, 4)
	if gotRes != wantRes {
		t.Fatalf("Shards=4 Results diverged:\n%s\n%s", gotRes, wantRes)
	}
	if gotCSV != wantCSV {
		diffLine(t, "CSV trace", wantCSV, gotCSV)
	}
	if gotJSONL != wantJSONL {
		diffLine(t, "JSONL trace", wantJSONL, gotJSONL)
	}
	if gotProm != wantProm {
		diffLine(t, "metrics exposition", wantProm, gotProm)
	}
}

// TestShardCountInvariance sweeps Shards over {1, 2, 4, 8} for every
// reuse-battery configuration and three seeds, demanding byte-identical
// Results and traces. In -short mode (CI's -race leg still runs the
// full battery; plain `go test -short` trims it) only the first seed
// runs.
func TestShardCountInvariance(t *testing.T) {
	seeds := []uint64{31, 62, 93}
	if testing.Short() {
		seeds = seeds[:1]
	}
	//lint:maporder-ok subtests are independent; execution order does not affect any result
	for name, p := range reuseTestConfigs() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range seeds {
				p.Seed = seed
				wantRes, wantCSV, wantJSONL, wantProm := runSharded(t, p, 1)
				if wantJSONL == "" || wantCSV == "" || wantProm == "" {
					t.Fatal("empty trace; comparison is vacuous")
				}
				for _, shards := range []int{2, 4, 8} {
					gotRes, gotCSV, gotJSONL, gotProm := runSharded(t, p, shards)
					if gotRes != wantRes {
						t.Fatalf("seed %d Shards=%d: Results diverged:\n%s\n%s",
							seed, shards, gotRes, wantRes)
					}
					if gotCSV != wantCSV {
						diffLine(t, "CSV trace", wantCSV, gotCSV)
					}
					if gotJSONL != wantJSONL {
						diffLine(t, "JSONL trace", wantJSONL, gotJSONL)
					}
					if gotProm != wantProm {
						diffLine(t, "metrics exposition", wantProm, gotProm)
					}
				}
			}
		})
	}
}
