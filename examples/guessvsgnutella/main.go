// GUESS vs Gnutella: the Figure 8 story. Compare the cost/quality
// trade-off of fixed-extent flooding (Gnutella), coarse iterative
// deepening, and GUESS's fine-grained flexible extent, all over the
// same content model.
//
//	go run ./examples/guessvsgnutella
package main

import (
	"fmt"
	"log"
	"os"

	guess "repro"
)

func main() {
	// The experiment harness regenerates Figure 8 directly; this
	// example uses the public facade and prints the resulting trade-off
	// table plus an ASCII rendering of the figure.
	res, err := guess.RunExperiment("fig8", guess.ExperimentOptions{
		Scale: guess.ScaleQuick,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := res.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println(`
How to read this: every fixed-extent row pays its extent in probes on
every query, no matter how popular the target is. GUESS probes only
until satisfied, so its average cost sits far left of the fixed-extent
curve at comparable unsatisfaction — the paper reports over an order
of magnitude — and iterative deepening lands in between, paying for
its coarse round granularity.`)
}
