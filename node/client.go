package node

import (
	"context"
	"fmt"
	"math"
	"net/netip"
	"time"

	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/wire"
)

// pingLoop maintains the link cache: every PingInterval it pings one
// entry chosen by the PingProbe policy, evicting it on timeout and
// absorbing the pong otherwise.
func (n *Node) pingLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.PingInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.closing:
			return
		case <-ticker.C:
			n.pingOnce()
		}
	}
}

// pingOnce performs one maintenance ping, if the cache has a
// non-suppressed entry.
func (n *Node) pingOnce() {
	n.mu.Lock()
	entries := n.link.Entries()
	i := policy.Pick(n.rng, n.cfg.PingProbe, entries)
	var target netip.AddrPort
	var id cache.PeerID
	if i >= 0 {
		id = entries[i].Addr
		if n.suppressedLocked(id) {
			i = -1 // demoted this round; try again next tick
		} else {
			target = n.addrs[id]
		}
	}
	n.mu.Unlock()
	if i < 0 || !target.IsValid() {
		return
	}

	n.met.PingsSent.Inc()
	ping := &wire.Ping{MsgID: n.msgID.Add(1), NumFiles: uint32(len(n.cfg.Files))}
	reply, outcome := n.transact(context.Background(), ping, target, nil)
	switch outcome {
	case txTimeout:
		// Every attempt unanswered: breaker or eviction.
		n.peerTimedOut(id)
	case txReply:
		if pong, ok := reply.(*wire.Pong); ok {
			n.met.PongsReceived.Inc()
			n.mu.Lock()
			n.link.Touch(id, n.now())
			n.health.onSuccess(id)
			n.absorbPong(pong.Entries)
			n.mu.Unlock()
		}
	}
}

// absorbPong runs cache replacement over received entries; callers
// hold n.mu.
func (n *Node) absorbPong(entries []wire.PongEntry) {
	self := n.Addr()
	for _, pe := range entries {
		if pe.Addr == self || !pe.Addr.IsValid() {
			continue
		}
		id := n.idFor(pe.Addr)
		policy.Insert(n.rng, n.cfg.CacheReplacement, n.link, cache.Entry{
			Addr:     id,
			TS:       n.now(),
			NumFiles: int32(clampFiles(pe.NumFiles)),
			NumRes:   int32(pe.NumRes),
			Direct:   false,
		})
	}
	n.health.pruneTo(n.link)
	n.syncBreakerGauge()
	n.syncCacheGauge()
}

// txOutcome classifies one transact run.
type txOutcome int

const (
	// txReply: a correlated reply arrived.
	txReply txOutcome = iota
	// txTimeout: every attempt timed out or failed to send; the target
	// is presumed dead.
	txTimeout
	// txAborted: the context was cancelled or the node closed.
	txAborted
)

// transact sends req to target up to MaxProbeAttempts times, waiting
// one attemptTimeout per transmission with exponential backoff between
// attempts. It returns the first correlated reply, or nil with the
// failure classification. Successful first-transmission RTTs feed the
// adaptive-timeout estimator (Karn's rule: retransmitted exchanges are
// ambiguous and never sampled). qs, when non-nil, accrues per-query
// retry counts.
func (n *Node) transact(ctx context.Context, req wire.Message, target netip.AddrPort, qs *QueryStats) (wire.Message, txOutcome) {
	replies, cancel := n.await(req.ID())
	defer cancel()

	backoff := n.cfg.RetryBackoff
	for attempt := 1; ; attempt++ {
		sentAt := time.Now()
		sendErr := n.send(req, target)
		if sendErr != nil {
			n.logf("send %s to %v: %v", req.Type(), target, sendErr)
		} else {
			timer := time.NewTimer(n.attemptTimeout())
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, txAborted
			case <-n.closing:
				timer.Stop()
				return nil, txAborted
			case reply := <-replies:
				timer.Stop()
				if attempt == 1 {
					n.observeRTT(time.Since(sentAt))
				}
				return reply, txReply
			case <-timer.C:
			}
		}
		if attempt >= n.cfg.MaxProbeAttempts {
			return nil, txTimeout
		}
		n.met.Retries.Inc()
		if qs != nil {
			qs.Retries++
		}
		if !n.sleep(ctx, backoff) {
			return nil, txAborted
		}
		backoff = min(2*backoff, n.cfg.RetryBackoffMax)
	}
}

// sleep pauses for d, aborting early on ctx cancellation or node
// close; it reports whether the full pause elapsed.
func (n *Node) sleep(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-n.closing:
		return false
	case <-timer.C:
		return true
	}
}

// attemptTimeout returns the per-transmission reply deadline: the
// configured ProbeTimeout, or with AdaptiveTimeout an RTO from the RTT
// EWMA (srtt + 4*rttvar) clamped to [ProbeTimeout/8, 2*ProbeTimeout].
func (n *Node) attemptTimeout() time.Duration {
	if !n.cfg.AdaptiveTimeout {
		return n.cfg.ProbeTimeout
	}
	n.mu.Lock()
	srtt, rttvar := n.srtt, n.rttvar
	n.mu.Unlock()
	if srtt == 0 {
		return n.cfg.ProbeTimeout
	}
	rto := time.Duration((srtt + 4*rttvar) * float64(time.Second))
	if lo := n.cfg.ProbeTimeout / 8; rto < lo {
		return lo
	}
	if hi := 2 * n.cfg.ProbeTimeout; rto > hi {
		return hi
	}
	return rto
}

// observeRTT feeds one unambiguous RTT sample into the Jacobson/Karels
// estimator behind adaptive timeouts, and into the RTT histogram.
func (n *Node) observeRTT(rtt time.Duration) {
	s := rtt.Seconds()
	n.met.RTT.Observe(s)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.srtt == 0 {
		n.srtt, n.rttvar = s, s/2
		return
	}
	n.rttvar = 0.75*n.rttvar + 0.25*math.Abs(n.srtt-s)
	n.srtt = 0.875*n.srtt + 0.125*s
}

// peerTimedOut handles a peer whose probe exhausted every attempt:
// with the breaker disabled the peer is evicted outright (the
// protocol's presumed-dead default); with it enabled the timeout feeds
// the breaker, which suppresses the peer after BreakerThreshold
// consecutive timeouts and evicts only when the half-open trial fails.
func (n *Node) peerTimedOut(id cache.PeerID) {
	n.mu.Lock()
	evict, opened := n.health.onTimeout(id, time.Now())
	if evict {
		n.link.Remove(id)
		n.syncCacheGauge()
	}
	n.syncBreakerGauge()
	n.mu.Unlock()
	if opened {
		n.met.BreakerOpens.Inc()
	}
	if evict {
		n.met.DeadEvictions.Inc()
	}
}

// suppressedLocked reports whether a peer should sit out probe
// selection (Busy demotion or an open breaker); callers hold n.mu.
func (n *Node) suppressedLocked(id cache.PeerID) bool {
	return n.health.suppressed(id, time.Now())
}

// demoteBusy applies Busy-aware demotion: with BusyBackoff disabled
// the overloaded peer is dropped from the cache (the simulator's
// no-backoff default); otherwise it is suppressed with exponential
// backoff and evicted only after BusyEvictAfter consecutive refusals.
func (n *Node) demoteBusy(id cache.PeerID) {
	n.mu.Lock()
	evict, demoted := n.health.onBusy(id, time.Now())
	if evict {
		n.link.Remove(id)
		n.syncCacheGauge()
	}
	n.syncBreakerGauge()
	n.mu.Unlock()
	if demoted {
		n.met.BusyBackoffs.Inc()
	}
}

// Query runs a GUESS search: it serially probes peers from the link
// cache and the growing query cache, under the QueryProbe policy,
// until `desired` results arrive, the candidates are exhausted, or ctx
// is done. It returns the hits collected so far in every case; the
// error is non-nil only for invalid arguments or a closed node.
func (n *Node) Query(ctx context.Context, keyword string, desired int) ([]Hit, QueryStats, error) {
	var stats QueryStats
	if keyword == "" || len(keyword) > wire.MaxNameLen {
		return nil, stats, fmt.Errorf("node: invalid keyword %q", keyword)
	}
	if desired < 1 || desired > 255 {
		return nil, stats, fmt.Errorf("node: desired results %d outside [1,255]", desired)
	}
	select {
	case <-n.closing:
		return nil, stats, errClosed
	default:
	}

	// Snapshot the link cache into the candidate set.
	n.mu.Lock()
	sel := policy.NewSelector(n.cfg.QueryProbe, n.rng)
	qc := cache.NewQueryCache()
	selfID := n.idFor(n.Addr())
	qc.Add(cache.Entry{Addr: selfID})
	qc.Consume(selfID)
	for _, e := range n.link.Entries() {
		if qc.Add(e) {
			sel.Add(e)
		}
	}
	n.mu.Unlock()

	var hits []Hit
	for len(hits) < desired {
		select {
		case <-ctx.Done():
			return hits, stats, nil
		case <-n.closing:
			return hits, stats, nil
		default:
		}
		n.mu.Lock()
		entry, ok := sel.Next()
		// Busy-demoted peers sit out the query instead of wasting a
		// probe on another refusal.
		for ok && n.suppressedLocked(entry.Addr) {
			qc.Consume(entry.Addr)
			entry, ok = sel.Next()
		}
		var target netip.AddrPort
		if ok {
			qc.Consume(entry.Addr)
			target = n.addrs[entry.Addr]
		}
		n.mu.Unlock()
		if !ok {
			break // exhausted
		}
		if !target.IsValid() {
			continue
		}
		newHits := n.probe(ctx, target, entry.Addr, keyword, desired-len(hits), &stats, sel, qc)
		hits = append(hits, newHits...)
	}
	return hits, stats, nil
}

// probe runs one query probe (with retries) and processes the reply.
func (n *Node) probe(ctx context.Context, target netip.AddrPort, id cache.PeerID,
	keyword string, want int, stats *QueryStats,
	sel *policy.Selector, qc *cache.QueryCache) []Hit {

	stats.Probes++
	q := &wire.Query{
		MsgID:    n.msgID.Add(1),
		Desired:  uint8(want),
		NumFiles: uint32(len(n.cfg.Files)),
		Keyword:  keyword,
	}
	reply, outcome := n.transact(ctx, q, target, stats)
	switch outcome {
	case txAborted:
		return nil
	case txTimeout:
		// Every attempt unanswered: presumed dead for this query;
		// eviction vs breaker is the health layer's call.
		stats.Dead++
		n.peerTimedOut(id)
		return nil
	}

	switch m := reply.(type) {
	case *wire.Busy:
		stats.Refused++
		n.demoteBusy(id)
		return nil
	case *wire.QueryHit:
		stats.Good++
		n.mu.Lock()
		n.link.Touch(id, n.now())
		n.link.SetNumRes(id, int32(len(m.Results)))
		n.health.onSuccess(id)
		// Grow the query cache and the link cache from the
		// piggy-backed pong.
		self := n.Addr()
		for _, pe := range m.Pong {
			if pe.Addr == self || !pe.Addr.IsValid() {
				continue
			}
			peID := n.idFor(pe.Addr)
			entry := cache.Entry{
				Addr:     peID,
				TS:       n.now(),
				NumFiles: int32(clampFiles(pe.NumFiles)),
				NumRes:   int32(pe.NumRes),
				Direct:   false,
			}
			if qc.Add(entry) {
				sel.Add(entry)
			}
			policy.Insert(n.rng, n.cfg.CacheReplacement, n.link, entry)
		}
		n.health.pruneTo(n.link)
		n.syncBreakerGauge()
		n.syncCacheGauge()
		n.mu.Unlock()
		hits := make([]Hit, 0, len(m.Results))
		for _, name := range m.Results {
			hits = append(hits, Hit{From: target, Name: name})
		}
		return hits
	default:
		return nil
	}
}

// PingPeer sends one explicit ping (bootstrap helper, with the same
// retry schedule as other probes) and reports whether the peer
// answered.
func (n *Node) PingPeer(ctx context.Context, target netip.AddrPort) (bool, error) {
	select {
	case <-n.closing:
		return false, errClosed
	default:
	}
	n.met.PingsSent.Inc()
	ping := &wire.Ping{MsgID: n.msgID.Add(1), NumFiles: uint32(len(n.cfg.Files))}
	reply, outcome := n.transact(ctx, ping, target, nil)
	switch outcome {
	case txAborted:
		if err := ctx.Err(); err != nil {
			return false, err
		}
		return false, errClosed
	case txTimeout:
		return false, nil
	}
	pong, ok := reply.(*wire.Pong)
	if !ok {
		return false, nil
	}
	n.met.PongsReceived.Inc()
	n.mu.Lock()
	id := n.idFor(target)
	n.link.Touch(id, n.now())
	n.health.onSuccess(id)
	n.absorbPong(pong.Entries)
	n.mu.Unlock()
	return true, nil
}
