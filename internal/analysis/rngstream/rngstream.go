// Package rngstream implements the guess-lint analyzer that enforces
// the repo's simrng discipline in deterministic packages.
//
// internal/simrng keeps seeded runs reproducible by deriving every
// component's randomness from a named sub-stream: Stream("churn") is
// stable no matter how many draws other components make. That property
// only holds while call sites keep the discipline, so this analyzer
// checks:
//
//   - every Stream(name) call passes a compile-time string constant, so
//     the set of stream names is a static, reviewable inventory and a
//     stream cannot silently fork per run;
//   - no Split() calls: Split seeds the child from the parent's next
//     draw, so the child's entire sequence depends on how many draws
//     preceded it — exactly the coupling Stream exists to prevent;
//   - no seeding a new generator from a sibling stream's output
//     (simrng.New(r.Uint64()) and friends), which is Split by another
//     name;
//   - no exported struct fields of type simrng.RNG / *simrng.RNG: an
//     exported field invites sharing one stream across components,
//     which entangles their draw sequences.
//
// Escape hatch: //lint:rngstream-ok <reason>.
package rngstream

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
)

// Suppress is the //lint: directive that silences this analyzer.
const Suppress = "rngstream-ok"

const simrngPath = "repro/internal/simrng"

// Analyzer is the rngstream analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "rngstream",
	Doc:  "enforce simrng named-stream discipline in deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.StructType:
				checkStruct(pass, n)
			}
			return true
		})
	}
	return nil
}

// simrngFunc resolves call's callee if it is a function or method from
// internal/simrng.
func simrngFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != simrngPath {
		return nil
	}
	return fn
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := simrngFunc(pass, call)
	if fn == nil {
		return
	}
	isMethod := fn.Type().(*types.Signature).Recv() != nil
	switch {
	case isMethod && fn.Name() == "Stream":
		if len(call.Args) != 1 {
			return
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return // compile-time constant name: the discipline
		}
		if !pass.Suppressed(call.Pos(), Suppress) {
			pass.Reportf(call.Pos(),
				"Stream name must be a compile-time string constant so sub-streams form a stable, reviewable inventory; annotate //lint:%s <reason> if a dynamic name is genuinely safe",
				Suppress)
		}
	case isMethod && fn.Name() == "Split":
		if !pass.Suppressed(call.Pos(), Suppress) {
			pass.Reportf(call.Pos(),
				"Split seeds the child from the parent's draw position, coupling its sequence to unrelated draw counts; use Stream(name), or annotate //lint:%s <reason>",
				Suppress)
		}
	case !isMethod && fn.Name() == "New":
		for _, arg := range call.Args {
			if drawsFromRNG(pass, arg) && !pass.Suppressed(call.Pos(), Suppress) {
				pass.Reportf(call.Pos(),
					"seeding a generator from a sibling stream's output re-creates Split's draw-order coupling; derive the stream with Stream(name), or annotate //lint:%s <reason>",
					Suppress)
			}
		}
	}
}

// drawsFromRNG reports whether e contains a call to any simrng.RNG
// method — i.e. the expression consumes randomness from an existing
// stream.
func drawsFromRNG(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := simrngFunc(pass, call); fn != nil && fn.Type().(*types.Signature).Recv() != nil {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func checkStruct(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if !isRNGType(pass, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.IsExported() && !pass.Suppressed(name.Pos(), Suppress) {
				pass.Reportf(name.Pos(),
					"exported simrng.RNG field shares one stream across components, entangling their draw sequences; keep streams unexported and derive one per component, or annotate //lint:%s <reason>",
					Suppress)
			}
		}
	}
}

// isRNGType reports whether the field type is simrng.RNG or *simrng.RNG.
func isRNGType(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil && obj.Pkg().Path() == simrngPath
}
