package node

import (
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/node/memnet"
)

func goldenSnapshot(t testing.TB) ([]byte, []snapEntry) {
	entries := []snapEntry{
		{Addr: netip.MustParseAddrPort("10.1.2.3:6346"), NumFiles: 12, NumRes: 3, Direct: true},
		{Addr: netip.MustParseAddrPort("[2001:db8::7]:4000"), NumFiles: 0, NumRes: 0, Direct: false},
		{Addr: netip.MustParseAddrPort("192.168.0.9:1"), NumFiles: 1 << 30, NumRes: 65535, Direct: true},
	}
	data, err := encodeSnapshot(time.Unix(1700000000, 12345), entries)
	if err != nil {
		t.Fatal(err)
	}
	return data, entries
}

// TestSnapshotRoundTrip: encode -> decode preserves every field.
func TestSnapshotRoundTrip(t *testing.T) {
	data, want := goldenSnapshot(t)
	writtenAt, got, err := decodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if writtenAt.UnixNano() != time.Unix(1700000000, 12345).UnixNano() {
		t.Fatalf("writtenAt %v", writtenAt)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestSnapshotDecodeRejectsCorruption: truncation, bit flips, bad
// magic, and oversized counts all fail cleanly with errSnapshot.
func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	data, _ := goldenSnapshot(t)
	// Every possible truncation.
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := decodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
	// A bit flip anywhere breaks the checksum (or, for flips inside the
	// trailer itself, the checksum comparison).
	for i := 0; i < len(data); i++ {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, _, err := decodeSnapshot(bad); err == nil {
			t.Fatalf("bit flip at byte %d decoded", i)
		}
	}
	if _, _, err := decodeSnapshot(nil); err == nil {
		t.Fatal("nil snapshot decoded")
	}
}

// TestSnapshotAtomicWrite: the temp-and-rename path replaces the old
// file completely and leaves no droppings.
func TestSnapshotAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	if err := writeSnapshotFile(path, []byte("old old old")); err != nil {
		t.Fatal(err)
	}
	data, _ := goldenSnapshot(t)
	if err := writeSnapshotFile(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("rename did not replace the old snapshot")
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("temp files left behind: %v", names)
	}
}

// TestCrashRecoveryFromSnapshot is the acceptance scenario: a node
// writes its final snapshot on Close; a successor restarted from that
// file — with zero bootstrap contacts — verifies the entries by ping
// and reaches at least 80% of the live ones, while dead ones are
// discarded.
func TestCrashRecoveryFromSnapshot(t *testing.T) {
	leakCheck(t)
	nw := memnet.New(404)
	nw.SetDefaultProfile(memnet.LinkProfile{Latency: time.Millisecond})
	snap := filepath.Join(t.TempDir(), "cache.snap")

	const live = 10
	sharers := make([]*Node, live)
	for i := range sharers {
		sharers[i] = startMemNode(t, nw, Config{
			Files:        []string{"warm.txt"},
			PingInterval: time.Hour,
			Seed:         uint64(i + 2),
		})
	}

	cfg := chaosCfg(1)
	cfg.SnapshotPath = snap
	first := startMemNode(t, nw, cfg)
	for _, s := range sharers {
		first.AddPeer(s.Addr(), 1)
	}
	// Two peers that will be dead at restart.
	for i := 0; i < 2; i++ {
		c := nw.Listen()
		first.AddPeer(c.AddrPort(), 1)
		c.Close()
	}
	if first.CacheLen() != live+2 {
		t.Fatalf("seed cache %d, want %d", first.CacheLen(), live+2)
	}
	first.Close() // writes the final snapshot

	cfg2 := chaosCfg(9)
	cfg2.SnapshotPath = snap
	second := startMemNode(t, nw, cfg2) // note: no AddPeer — no bootstrap
	deadline := time.Now().Add(5 * time.Second)
	for second.Suspects() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("verification did not settle: %d suspects left", second.Suspects())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := second.Stats()
	if st.SnapshotRestored != live+2 {
		t.Fatalf("restored %d suspects, want %d", st.SnapshotRestored, live+2)
	}
	if st.SnapshotVerified != live {
		t.Fatalf("verified %d entries, want %d", st.SnapshotVerified, live)
	}
	if got := second.CacheLen(); got < live*8/10 {
		t.Fatalf("recovered cache %d entries, want >= %d (80%% of %d live)",
			got, live*8/10, live)
	}
	// Everything recovered must actually be live (the dead suspects were
	// discarded, not installed).
	for _, addr := range second.CacheAddrs() {
		found := false
		for _, s := range sharers {
			if addr == s.Addr() {
				found = true
			}
		}
		if !found {
			t.Fatalf("dead suspect %v installed in recovered cache", addr)
		}
	}
	requireNetInvariant(t, nw)
}

// TestCorruptSnapshotColdStart: an undecodable snapshot file must fall
// back to an empty cache without panicking, and the node stays usable.
func TestCorruptSnapshotColdStart(t *testing.T) {
	leakCheck(t)
	data, _ := goldenSnapshot(t)
	cases := map[string][]byte{
		"garbage":   []byte("not a snapshot at all"),
		"truncated": data[:len(data)/2],
		"bitflip": func() []byte {
			bad := append([]byte(nil), data...)
			bad[snapHeaderSize+3] ^= 0x01
			return bad
		}(),
		"empty": {},
	}
	for name, contents := range cases {
		t.Run(name, func(t *testing.T) {
			nw := memnet.New(5)
			snap := filepath.Join(t.TempDir(), "cache.snap")
			if err := os.WriteFile(snap, contents, 0o644); err != nil {
				t.Fatal(err)
			}
			cfg := chaosCfg(3)
			cfg.SnapshotPath = snap
			n := startMemNode(t, nw, cfg)
			if n.CacheLen() != 0 || n.Suspects() != 0 {
				t.Fatalf("corrupt snapshot populated state: cache=%d suspects=%d",
					n.CacheLen(), n.Suspects())
			}
			if n.Stats().SnapshotRestored != 0 {
				t.Fatal("corrupt snapshot counted as restored")
			}
			// The node is fully usable after the cold start.
			s := startMemNode(t, nw, Config{Files: []string{"ok.txt"}, PingInterval: time.Hour, Seed: 8})
			n.AddPeer(s.Addr(), 1)
			if n.CacheLen() != 1 {
				t.Fatal("cold-started node unusable")
			}
		})
	}
}

// TestSnapshotLoopWrites: the periodic writer produces a decodable
// snapshot without waiting for Close.
func TestSnapshotLoopWrites(t *testing.T) {
	leakCheck(t)
	nw := memnet.New(6)
	snap := filepath.Join(t.TempDir(), "cache.snap")
	cfg := chaosCfg(2)
	cfg.SnapshotPath = snap
	cfg.SnapshotInterval = 20 * time.Millisecond
	n := startMemNode(t, nw, cfg)
	s := startMemNode(t, nw, Config{PingInterval: time.Hour, Seed: 4})
	n.AddPeer(s.Addr(), 7)
	deadline := time.Now().Add(3 * time.Second)
	for n.Stats().SnapshotWrites == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never written")
		}
		time.Sleep(5 * time.Millisecond)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	_, entries, err := decodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Addr != s.Addr() || entries[0].NumFiles != 7 {
		t.Fatalf("periodic snapshot content: %+v", entries)
	}
}

// FuzzSnapshotDecode: decodeSnapshot must never panic, and anything it
// accepts must re-encode to an equivalent snapshot.
func FuzzSnapshotDecode(f *testing.F) {
	data, _ := goldenSnapshot(f)
	f.Add(data)
	f.Add(data[:len(data)-1])    // truncated trailer
	f.Add(data[:snapHeaderSize]) // header only
	bad := append([]byte(nil), data...)
	bad[7] ^= 0x80 // bit-flipped count
	f.Add(bad)
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		writtenAt, entries, err := decodeSnapshot(b)
		if err != nil {
			return
		}
		re, err := encodeSnapshot(writtenAt, entries)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		wa2, entries2, err := decodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if wa2.UnixNano() != writtenAt.UnixNano() || len(entries2) != len(entries) {
			t.Fatalf("round trip drifted: %d/%d entries", len(entries2), len(entries))
		}
		for i := range entries {
			if entries[i] != entries2[i] {
				t.Fatalf("entry %d drifted: %+v != %+v", i, entries[i], entries2[i])
			}
		}
	})
}
