package dht

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// testParams is a small, fast configuration exercising loss, churn,
// and both replication mechanisms.
func testParams() Params {
	p := DefaultParams()
	p.NetworkSize = 150
	p.NumLookups = 120
	p.DeadFraction = 0.15
	p.LossProb = 0.05
	p.Seed = 11
	return p
}

func run(t *testing.T, p Params) *Results {
	t.Helper()
	res, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func marshal(t *testing.T, res *Results) string {
	t.Helper()
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.NetworkSize = 1 },
		func(p *Params) { p.BaseReplicas = 0 },
		func(p *Params) { p.BaseReplicas = p.NetworkSize + 1 },
		func(p *Params) { p.CacheSize = -1 },
		func(p *Params) { p.CacheProb = -0.1 },
		func(p *Params) { p.CacheProb = 1.1 },
		func(p *Params) { p.SeedCacheFraction = 2 },
		func(p *Params) { p.MaxHops = 0 },
		func(p *Params) { p.HopLatency = 0 },
		func(p *Params) { p.NumLookups = 0 },
		func(p *Params) { p.NumDesiredResults = 0 },
		func(p *Params) { p.LookupRate = -1 },
		func(p *Params) { p.DeadFraction = 1 },
		func(p *Params) { p.LossProb = 1 },
		func(p *Params) { p.Content.NumItems = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid params", i)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a := run(t, testParams())
	b := run(t, testParams())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results:\n%s\n%s", marshal(t, a), marshal(t, b))
	}
	p := testParams()
	p.Seed++
	c := run(t, p)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical results")
	}
}

// checkInvariants asserts the conservation and budget invariants the
// cross-protocol suite relies on.
func checkInvariants(t *testing.T, p Params, res *Results) {
	t.Helper()
	if res.Lookups != p.NumLookups {
		t.Errorf("completed %d lookups, want %d", res.Lookups, p.NumLookups)
	}
	if res.Satisfied+res.Unsatisfied != res.Lookups {
		t.Errorf("satisfied %d + unsatisfied %d != lookups %d", res.Satisfied, res.Unsatisfied, res.Lookups)
	}
	if res.MessagesSent != res.MessagesDelivered+res.MessagesDropped {
		t.Errorf("conservation violated: sent %d != delivered %d + dropped %d",
			res.MessagesSent, res.MessagesDelivered, res.MessagesDropped)
	}
	if s := res.Satisfaction(); s < 0 || s > 1 {
		t.Errorf("satisfaction %v outside [0,1]", s)
	}
	if res.MaxHopsUsed > p.MaxHops {
		t.Errorf("a lookup used %d hops, budget %d", res.MaxHopsUsed, p.MaxHops)
	}
	var delivered int64
	for v, l := range res.PeerLoads {
		if l < 0 {
			t.Errorf("peer %d has negative load", v)
		}
		delivered += l
	}
	if delivered != res.MessagesDelivered {
		t.Errorf("peer loads sum to %d, delivered %d", delivered, res.MessagesDelivered)
	}
}

func TestInvariantsAndEffectiveness(t *testing.T) {
	p := testParams()
	res := run(t, p)
	checkInvariants(t, p, res)
	if res.Satisfaction() < 0.5 {
		t.Errorf("satisfaction %v suspiciously low for a DHT", res.Satisfaction())
	}
	if res.AvgHops() >= float64(p.MaxHops) {
		t.Errorf("average hops %v should be far below the budget %v", res.AvgHops(), p.MaxHops)
	}
}

func TestCachingCutsHops(t *testing.T) {
	cold := testParams()
	cold.CacheSize = 0
	cold.SeedCacheFraction = 0
	cold.CacheProb = 0
	warm := testParams()
	warm.CacheSize = 64
	warm.SeedCacheFraction = 0.2
	warm.CacheProb = 0.8
	a, b := run(t, cold), run(t, warm)
	if b.CacheHits == 0 {
		t.Fatal("warm configuration produced no cache hits")
	}
	if a.CacheHits != 0 {
		t.Fatalf("cold configuration produced %d cache hits", a.CacheHits)
	}
	if b.AvgHops() >= a.AvgHops() {
		t.Errorf("caching should cut hops: warm %v >= cold %v", b.AvgHops(), a.AvgHops())
	}
}

func TestObservabilityDoesNotPerturbRun(t *testing.T) {
	p := testParams()
	bare := run(t, p)

	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e.SetMetrics(obs.NewDHTMetrics(reg))
	var events int
	e.SetObserver(obs.ObserverFunc(func(obs.Event) { events++ }))
	instr, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if got, want := marshal(t, instr), marshal(t, bare); got != want {
		t.Fatalf("attaching metrics+observer changed Results:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if events == 0 {
		t.Fatal("observer saw no events")
	}

	s := reg.Snapshot()
	mirror := []struct {
		metric string
		want   uint64
	}{
		{"guess_dht_lookups_total", uint64(bare.Lookups)},
		{"guess_dht_lookups_satisfied_total", uint64(bare.Satisfied)},
		{"guess_dht_lookups_unsatisfied_total", uint64(bare.Unsatisfied)},
		{"guess_dht_messages_total", uint64(bare.MessagesSent)},
		{"guess_dht_messages_delivered_total", uint64(bare.MessagesDelivered)},
		{"guess_dht_messages_dropped_total", uint64(bare.MessagesDropped)},
		{"guess_dht_hops_total", uint64(bare.HopsTotal)},
		{"guess_dht_cache_hits_total", uint64(bare.CacheHits)},
	}
	for _, m := range mirror {
		if got := s.Counters[m.metric]; got != m.want {
			t.Errorf("%s = %d, Results say %d", m.metric, got, m.want)
		}
	}
	if h := s.Histograms["guess_dht_lookup_hops"]; h.Count != uint64(bare.Lookups) {
		t.Errorf("lookup-hops histogram count = %d, want %d", h.Count, bare.Lookups)
	}
}

func TestRunContextCancellation(t *testing.T) {
	full := run(t, testParams())
	if full.Interrupted {
		t.Fatal("uncancelled run reported Interrupted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e, err := New(testParams())
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	e.SetObserver(obs.ObserverFunc(func(obs.Event) {
		seen++
		if seen == 100 {
			cancel()
		}
	}))
	res, err := e.Run(ctx)
	if err != nil {
		t.Fatalf("cancelled run should return partial results and nil error, got %v", err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled run did not set Interrupted")
	}
	if res.Lookups >= full.Lookups {
		t.Fatalf("partial run counted %d lookups, want < %d", res.Lookups, full.Lookups)
	}

	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	e2, err := New(testParams())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Run(done)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Interrupted {
		t.Fatal("pre-cancelled run did not set Interrupted")
	}
}

func TestRunTwiceFails(t *testing.T) {
	e, err := New(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err == nil {
		t.Fatal("second Run did not fail")
	}
}

func TestZeroLookupAccessors(t *testing.T) {
	var res Results
	if res.Satisfaction() != 0 || res.MessagesPerLookup() != 0 || res.AvgHops() != 0 {
		t.Fatal("zero-lookup accessors must return 0")
	}
}

func TestRingDistAndCandidates(t *testing.T) {
	p := DefaultParams()
	p.NetworkSize = 16
	p.DeadFraction = 0
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := e.ringDist(3, 3); d != 0 {
		t.Errorf("ringDist(3,3) = %d", d)
	}
	if d := e.ringDist(14, 2); d != 4 {
		t.Errorf("ringDist(14,2) = %d, want 4", d)
	}
	// Best finger from distance 11 is the step-8 finger.
	q := &lookup{current: 0, owner: 11}
	if c := e.nextCandidate(q); c != 8 {
		t.Errorf("best finger = %d, want 8", c)
	}
	// After drops the walk goes linear and gives up past the owner.
	q.skip = 2
	if c := e.nextCandidate(q); c != 2 {
		t.Errorf("fallback candidate = %d, want 2", c)
	}
	q.skip = 12
	if c := e.nextCandidate(q); c != -1 {
		t.Errorf("exhausted walk = %d, want -1", c)
	}
}
