package report

import (
	"encoding/xml"
	"strings"
	"testing"
)

func svgChart(t *testing.T) *Chart {
	t.Helper()
	c := NewChart("Figure X: demo & more", "CacheSize", "Probes/Query")
	if err := c.Add(Series{Name: "N=1000", X: []float64{10, 100, 1000}, Y: []float64{50, 90, 120}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Series{Name: "N=<2000>", X: []float64{10, 100, 1000}, Y: []float64{60, 100, 140}}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSVGWellFormed(t *testing.T) {
	out := svgChart(t).SVG(640, 400)
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, out)
		}
	}
}

func TestSVGContainsElements(t *testing.T) {
	out := svgChart(t).SVG(640, 400)
	for _, want := range []string{
		"<svg", "polyline", "circle", "Figure X: demo &amp; more",
		"N=1000", "N=&lt;2000&gt;", "CacheSize", "Probes/Query",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two series -> two polylines, six circles.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2", got)
	}
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Fatalf("circles = %d, want 6", got)
	}
}

func TestSVGEmptyChart(t *testing.T) {
	c := NewChart("empty", "x", "y")
	out := c.SVG(300, 200)
	if !strings.Contains(out, "no data") {
		t.Fatal("empty SVG should say so")
	}
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("empty SVG malformed: %v", err)
		}
	}
}

func TestSVGMinimumSize(t *testing.T) {
	out := svgChart(t).SVG(1, 1)
	if !strings.Contains(out, `width="160"`) || !strings.Contains(out, `height="120"`) {
		t.Fatal("size floor not applied")
	}
}

func TestSVGLogX(t *testing.T) {
	c := NewChart("log", "cache", "y")
	c.LogX = true
	_ = c.Add(Series{Name: "s", X: []float64{10, 100, 1000}, Y: []float64{1, 2, 3}})
	out := c.SVG(640, 400)
	if !strings.Contains(out, "(log)") {
		t.Fatal("log annotation missing")
	}
	// Tick labels must be de-logged (10, 1000 present rather than 1, 3).
	if !strings.Contains(out, ">1000<") {
		t.Fatalf("log tick labels wrong:\n%s", out)
	}
}

func TestSVGSinglePointSeries(t *testing.T) {
	c := NewChart("pt", "x", "y")
	_ = c.Add(Series{Name: "single", X: []float64{5}, Y: []float64{5}})
	out := c.SVG(300, 200)
	if strings.Contains(out, "<polyline") {
		t.Fatal("single point should not draw a polyline")
	}
	if !strings.Contains(out, "<circle") {
		t.Fatal("single point missing marker")
	}
}
