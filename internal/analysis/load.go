package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string // canonical import path (test-variant suffix stripped)
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	ForTest    string
	ImportMap  map[string]string
	Incomplete bool
}

// goList runs `go list -e -test -deps -export -json patterns...` in
// dir and decodes the JSON stream. -export compiles dependencies so
// every package (including the standard library) carries gc export
// data, which is how the loader type-checks without a network or a
// golang.org/x/tools dependency.
func goList(dir string, patterns ...string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-test", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// basePath strips go list's test-variant suffix, e.g.
// "repro/internal/core [repro/internal/core.test]" -> "repro/internal/core".
func basePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// memImporter resolves imports from in-memory packages first (fixture
// siblings loaded by LoadDirs), falling back to gc export data.
type memImporter struct {
	mem map[string]*types.Package
	gc  types.Importer
}

func (m memImporter) Import(path string) (*types.Package, error) {
	if p := m.mem[path]; p != nil {
		return p, nil
	}
	return m.gc.Import(path)
}

// typecheck parses files and type-checks them against gc export data.
// importMap translates source-level import paths to the package
// variants go list selected (relevant for test variants); exports maps
// import paths to export-data files; mem supplies already-type-checked
// sibling packages (multi-directory fixtures) ahead of export data.
func typecheck(path, dir string, fileNames []string, importMap, exports map[string]string, mem map[string]*types.Package) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range fileNames {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(importPath string) (io.ReadCloser, error) {
		if mapped, ok := importMap[importPath]; ok {
			importPath = mapped
		}
		export, ok := exports[importPath]
		if !ok || export == "" {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(export)
	}
	conf := types.Config{Importer: memImporter{mem: mem, gc: importer.ForCompiler(fset, "gc", lookup)}}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     pkg,
		TypesInfo: info,
	}, nil
}

// Load loads and type-checks the packages matching patterns (relative
// to dir), including their in-package and external test files. When
// both a plain package and its test-augmented variant exist, only the
// variant is returned — it is a superset of the plain package's files,
// and returning both would double-report findings.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	// Longest import path first, so "pkg [pkg.test]" variants win the
	// dedup race against their plain "pkg" form.
	sorted := append([]*listPkg(nil), listed...)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i].ImportPath) > len(sorted[j].ImportPath) })

	seen := make(map[string]bool)
	var pkgs []*Package
	for _, p := range sorted {
		if p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue // stdlib dependency or synthetic test-main package
		}
		base := basePath(p.ImportPath)
		if base != "repro" && !strings.HasPrefix(base, "repro/") {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", base)
		}
		if seen[base] {
			continue
		}
		seen[base] = true
		if p.Incomplete || (p.Export == "" && p.ForTest == "" && p.Name != "main") {
			return nil, fmt.Errorf("%s: package did not compile; fix the build before linting", base)
		}
		pkg, err := typecheck(base, p.Dir, p.GoFiles, p.ImportMap, exports, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", base, err)
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadVet type-checks the single package a `go vet -vettool`
// invocation describes: an explicit file list plus the export-data
// files the go command already built for every import.
func LoadVet(importPath string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	dir := ""
	if len(goFiles) > 0 {
		dir = filepath.Dir(goFiles[0])
	}
	return typecheck(importPath, dir, goFiles, importMap, packageFile, nil)
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// testdataExports caches the export map used to type-check testdata
// packages: everything in the enclosing module plus the handful of
// standard-library packages the analyzer fixtures import.
var testdataExports struct {
	once sync.Once
	m    map[string]string
	err  error
}

// primeTestdataExports fills the export cache on first use, from the
// module enclosing dir.
func primeTestdataExports(dir string) error {
	root, err := moduleRoot(dir)
	if err != nil {
		return err
	}
	testdataExports.once.Do(func() {
		listed, err := goList(root, "./...",
			"time", "math/rand", "math/rand/v2", "crypto/rand",
			"sync", "sync/atomic", "net", "context", "encoding/binary",
			"io", "sort", "slices", "maps")
		if err != nil {
			testdataExports.err = err
			return
		}
		testdataExports.m = make(map[string]string)
		for _, p := range listed {
			if p.Export != "" {
				testdataExports.m[p.ImportPath] = p.Export
			}
		}
	})
	return testdataExports.err
}

// LoadDir type-checks the single package of Go files in dir as if its
// import path were importPath. It exists for analyzer tests: fixture
// packages under testdata/ are invisible to go list, but can claim a
// deterministic package's import path so path-scoped analyzers fire.
func LoadDir(dir, importPath string) (*Package, error) {
	if err := primeTestdataExports(dir); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var fileNames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			fileNames = append(fileNames, e.Name())
		}
	}
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return typecheck(importPath, dir, fileNames, nil, testdataExports.m, nil)
}

// A DirSpec names one fixture directory and the import path it claims.
type DirSpec struct {
	Dir        string
	ImportPath string
}

// LoadDirs type-checks several fixture directories as one program, in
// order, letting later fixtures import earlier ones by their claimed
// paths. It exists for interprocedural analyzer tests: cross-package
// facts (a deterministic package calling an exempt package's helper)
// need at least two packages in the Program.
func LoadDirs(specs []DirSpec) ([]*Package, error) {
	mem := make(map[string]*types.Package)
	var pkgs []*Package
	for _, spec := range specs {
		if err := primeTestdataExports(spec.Dir); err != nil {
			return nil, err
		}
		entries, err := os.ReadDir(spec.Dir)
		if err != nil {
			return nil, err
		}
		var fileNames []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				fileNames = append(fileNames, e.Name())
			}
		}
		if len(fileNames) == 0 {
			return nil, fmt.Errorf("no .go files in %s", spec.Dir)
		}
		pkg, err := typecheck(spec.ImportPath, spec.Dir, fileNames, nil, testdataExports.m, mem)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.ImportPath, err)
		}
		mem[spec.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
