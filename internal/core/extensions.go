package core

import "repro/internal/cache"

// This file implements the paper's future-work proposals as opt-in
// extensions: adaptive probe parallelism (Section 6.2), adaptive ping
// intervals (Section 6.1), selfish peers and probe payments
// (Section 3.3), and pong-poisoning detection (Section 6.4). Every
// extension is inert unless enabled in Params, so the baseline
// protocol is bit-identical to the paper's.

// queryParallelism returns the per-round probe fan-out a querying peer
// uses. A selfish peer ignores the protocol's serial discipline unless
// probe payments make every probe cost something.
func (e *Engine) queryParallelism(origin *peer) int {
	if origin.selfish && !e.p.ProbePayments {
		return e.p.SelfishParallelProbes
	}
	return e.p.ParallelProbes
}

// maybeGrowParallelism doubles a query's fan-out when it has gone
// AdaptiveParallelWindow seconds without a new result.
func (e *Engine) maybeGrowParallelism(q *query) {
	if !e.p.AdaptiveParallel {
		return
	}
	if e.now-q.lastProgress < e.p.AdaptiveParallelWindow {
		return
	}
	q.k *= 2
	if q.k > e.p.MaxParallelProbes {
		q.k = e.p.MaxParallelProbes
	}
	q.lastProgress = e.now
}

// recordPingOutcome feeds the adaptive-ping controller: after every
// few pings, a peer whose probes mostly hit dead addresses halves its
// interval, and one that saw no dead addresses at all relaxes it. The
// short window matters: peers live for minutes, so the controller must
// converge within a handful of pings to help at all.
func (e *Engine) recordPingOutcome(p *peer, dead bool) {
	if !e.p.AdaptivePing {
		return
	}
	p.pingsInWindow++
	if dead {
		p.deadInWindow++
	}
	const window = 5
	if p.pingsInWindow < window {
		return
	}
	deadFrac := float64(p.deadInWindow) / float64(p.pingsInWindow)
	p.pingsInWindow, p.deadInWindow = 0, 0
	switch {
	case deadFrac > 1-e.p.AdaptivePingLowLive:
		p.pingInterval /= 2
		if p.pingInterval < e.p.AdaptivePingMin {
			p.pingInterval = e.p.AdaptivePingMin
		}
	case deadFrac < 1-e.p.AdaptivePingHighLive:
		p.pingInterval *= 1.25
		if p.pingInterval > e.p.AdaptivePingMax {
			p.pingInterval = e.p.AdaptivePingMax
		}
	}
}

// pongSourceBlocked reports whether receiver has blacklisted source's
// pongs.
func (p *peer) pongSourceBlocked(source cache.PeerID) bool {
	return p.blacklist != nil && p.blacklist[source]
}

// recordSupplied notes that source handed receiver a pointer to addr.
func (e *Engine) recordSupplied(receiver *peer, source, addr cache.PeerID) {
	if !e.p.PoisonDetection {
		return
	}
	if receiver.provenance == nil {
		receiver.provenance = make(map[cache.PeerID]cache.PeerID, 64)
		receiver.pongStats = make(map[cache.PeerID]*supplierRecord, 16)
		receiver.blacklist = make(map[cache.PeerID]bool, 4)
	}
	receiver.provenance[addr] = source
	rec := receiver.pongStats[source]
	if rec == nil {
		rec = &supplierRecord{}
		receiver.pongStats[source] = rec
	}
	rec.given++
}

// blameDeadAddress charges the supplier of a dead address and convicts
// persistently poisonous suppliers: they are blacklisted, evicted, and
// their future pongs ignored.
func (e *Engine) blameDeadAddress(victim *peer, deadAddr cache.PeerID) {
	if !e.p.PoisonDetection || victim.provenance == nil {
		return
	}
	source, ok := victim.provenance[deadAddr]
	if !ok {
		return
	}
	delete(victim.provenance, deadAddr)
	rec := victim.pongStats[source]
	if rec == nil {
		return
	}
	rec.dead++
	if victim.blacklist[source] {
		return
	}
	if rec.given >= e.p.PoisonMinSamples &&
		float64(rec.dead)/float64(rec.given) >= e.p.PoisonThreshold {
		victim.blacklist[source] = true
		victim.link.Remove(source)
		e.res.BlacklistEvents++
		if e.met != nil {
			e.met.Blacklists.Inc()
		}
	}
}
