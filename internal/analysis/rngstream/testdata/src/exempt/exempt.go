// Package exempt poses as repro/node/memnet, which is outside the
// deterministic set: the fault injector derives per-link streams with
// dynamic names, and that is fine there.
package exempt

import (
	"repro/internal/simrng"
)

func perLink(root *simrng.RNG, link string) *simrng.RNG {
	return root.Stream("link:" + link)
}

func split(root *simrng.RNG) *simrng.RNG {
	return root.Split()
}
