package eventq

import "fmt"

// Sharded is a K-way sharded event queue: K independent binary heaps
// plus one global sequence counter. Callers route each event to a
// shard of their choosing (the simulator shards by peer ID) and Pop
// merges the shard heads on the same (time, seq) key the single queue
// uses.
//
// Because the sequence counter is global — assigned at Push time, in
// push order, regardless of shard — the merged pop order is exactly
// the total order a single Queue would produce for the same pushes.
// That identity is what lets the simulator offer Shards=1..K with
// byte-identical results: sharding changes where events wait, never
// when they run. TestShardedMatchesQueue locks the equivalence.
//
// The win is locality and cheaper heap maintenance: each shard's heap
// holds ~1/K of the pending events, so Push and Pop sift through
// log(N/K) levels of a heap that stays resident in cache, while the
// head merge is a linear scan of K cached keys (K is small, single
// digits to a few dozen).
//
// Sharded is not safe for concurrent use: the simulator's event loop
// is serialized by design (see internal/core's shard documentation),
// and worker parallelism lives inside event handlers, not the queue.
type Sharded[T any] struct {
	shards []Queue[T]
	seq    uint64
	size   int
}

// NewSharded returns an empty sharded queue with k shards. It panics
// if k < 1 — shard counts are validated configuration, so a bad value
// here is always a programming error.
func NewSharded[T any](k int) *Sharded[T] {
	if k < 1 {
		panic(fmt.Sprintf("eventq: NewSharded with %d shards", k))
	}
	return &Sharded[T]{shards: make([]Queue[T], k)}
}

// Shards returns the shard count.
func (s *Sharded[T]) Shards() int { return len(s.shards) }

// Len reports the number of pending events across all shards.
func (s *Sharded[T]) Len() int { return s.size }

// Push schedules v at the given virtual time on the given shard.
// Events pushed with equal times are dequeued in global push order,
// independent of their shards.
func (s *Sharded[T]) Push(shard int, time float64, v T) {
	s.seq++
	s.shards[shard].pushSeq(time, s.seq, v)
	s.size++
}

// Pop removes and returns the earliest event across all shards,
// breaking time ties by global push order. ok is false when every
// shard is empty.
func (s *Sharded[T]) Pop() (time float64, v T, ok bool) {
	best := -1
	var bestTime float64
	var bestSeq uint64
	for i := range s.shards {
		t, seq, ok := s.shards[i].head()
		if !ok {
			continue
		}
		if best < 0 || t < bestTime || (t == bestTime && seq < bestSeq) {
			best, bestTime, bestSeq = i, t, seq
		}
	}
	if best < 0 {
		var zero T
		return 0, zero, false
	}
	time, v, _ = s.shards[best].Pop()
	s.size--
	return time, v, true
}

// Peek returns the earliest event across all shards without removing
// it. ok is false when every shard is empty.
func (s *Sharded[T]) Peek() (time float64, v T, ok bool) {
	best := -1
	var bestTime float64
	var bestSeq uint64
	for i := range s.shards {
		t, seq, ok := s.shards[i].head()
		if !ok {
			continue
		}
		if best < 0 || t < bestTime || (t == bestTime && seq < bestSeq) {
			best, bestTime, bestSeq = i, t, seq
		}
	}
	if best < 0 {
		var zero T
		return 0, zero, false
	}
	return s.shards[best].Peek()
}

// Reset empties every shard and rewinds the global sequence counter,
// keeping all allocated heap capacity, so a recycled queue behaves
// exactly like a fresh NewSharded of the same shard count.
func (s *Sharded[T]) Reset() {
	for i := range s.shards {
		s.shards[i].Reset()
	}
	s.seq = 0
	s.size = 0
}
