// Package node implements a live GUESS peer speaking the wire protocol
// over UDP (or any net.PacketConn): the deployable counterpart of the
// simulator in internal/core.
//
// A Node maintains the paper's link cache with periodic pings, answers
// pings and queries from other peers (with the introduction protocol
// and policy-driven pong construction), enforces a probe-rate capacity
// limit with Busy refusals, and executes its own queries by serial
// unicast probing with a per-query query cache — the complete GUESS
// loop from Section 2 of the paper, reusing the same cache and policy
// implementations the simulator is built on.
package node

import (
	"errors"
	"fmt"
	"math"
	"net"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/wire"
)

// Config configures a live node. Zero fields take defaults (see
// Default).
type Config struct {
	// Files are the names this node shares; queries match by
	// case-insensitive substring.
	Files []string
	// CacheSize is the link cache capacity.
	CacheSize int
	// PingInterval is the cache-maintenance period.
	PingInterval time.Duration
	// ProbeTimeout is how long a probe waits for a reply before the
	// attempt is abandoned (the GUESS spec's 0.2 s pacing). With
	// AdaptiveTimeout it is the initial value and the anchor of the
	// clamp range.
	ProbeTimeout time.Duration
	// MaxProbeAttempts is how many times one probe (ping or query) is
	// transmitted before its target is presumed dead: 1 is the
	// single-shot baseline; larger values retry with exponential
	// backoff between attempts. Default 3.
	MaxProbeAttempts int
	// RetryBackoff is the pause before the first retransmission; it
	// doubles with each further attempt, capped at RetryBackoffMax.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential retry backoff.
	RetryBackoffMax time.Duration
	// AdaptiveTimeout, when true, replaces the fixed per-attempt
	// deadline with one derived from an EWMA of observed RTTs
	// (Jacobson/Karels: srtt + 4*rttvar), clamped to
	// [ProbeTimeout/8, 2*ProbeTimeout].
	AdaptiveTimeout bool
	// BusyBackoff, when positive, demotes a peer answering Busy
	// instead of evicting it: the peer is suppressed from probing for
	// BusyBackoff, doubling with each consecutive Busy up to
	// BusyBackoffMax, and evicted only after BusyEvictAfter
	// consecutive refusals. Zero keeps the paper's no-backoff default:
	// evict on the first Busy.
	BusyBackoff time.Duration
	// BusyBackoffMax caps the exponential Busy suppression.
	BusyBackoffMax time.Duration
	// BusyEvictAfter is the consecutive-Busy count that evicts a
	// demoted peer (only meaningful when BusyBackoff > 0). Default 3.
	BusyEvictAfter int
	// PongSize is the number of addresses per pong.
	PongSize int
	// IntroProb is the introduction-protocol probability.
	IntroProb float64
	// MaxProbesPerSecond is the Busy-refusal capacity (0 = unlimited).
	MaxProbesPerSecond int

	// Policies, as in the paper.
	QueryProbe, QueryPong, PingProbe, PingPong policy.Selection
	CacheReplacement                           policy.Eviction

	// Seed makes the node's random choices reproducible (0 = 1).
	Seed uint64
	// Logf, when non-nil, receives debug logging.
	Logf func(format string, args ...any)

	// Metrics, when non-nil, receives the node's guess_node_* metric
	// set (counters, RTT histogram, cache gauge) for exposition; the
	// Stats snapshot reads the same instruments. Nil keeps the metrics
	// in a private, unexposed registry.
	Metrics *obs.Registry
}

// Default returns a workable live-node configuration mirroring the
// paper's protocol defaults.
func Default() Config {
	return Config{
		CacheSize:        100,
		PingInterval:     30 * time.Second,
		ProbeTimeout:     200 * time.Millisecond,
		MaxProbeAttempts: 3,
		RetryBackoff:     50 * time.Millisecond,
		RetryBackoffMax:  time.Second,
		BusyBackoffMax:   5 * time.Second,
		BusyEvictAfter:   3,
		PongSize:         5,
		IntroProb:        0.1,
		QueryProbe:       policy.SelRandom,
		QueryPong:        policy.SelRandom,
		PingProbe:        policy.SelRandom,
		PingPong:         policy.SelRandom,
		CacheReplacement: policy.EvRandom,
		Seed:             1,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := Default()
	if c.CacheSize == 0 {
		c.CacheSize = d.CacheSize
	}
	if c.PingInterval == 0 {
		c.PingInterval = d.PingInterval
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = d.ProbeTimeout
	}
	if c.MaxProbeAttempts == 0 {
		c.MaxProbeAttempts = d.MaxProbeAttempts
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = d.RetryBackoff
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = d.RetryBackoffMax
	}
	if c.BusyBackoffMax == 0 {
		c.BusyBackoffMax = d.BusyBackoffMax
	}
	if c.BusyEvictAfter == 0 {
		c.BusyEvictAfter = d.BusyEvictAfter
	}
	if c.PongSize == 0 {
		c.PongSize = d.PongSize
	}
	if c.IntroProb == 0 {
		c.IntroProb = d.IntroProb
	}
	if c.QueryProbe == 0 {
		c.QueryProbe = d.QueryProbe
	}
	if c.QueryPong == 0 {
		c.QueryPong = d.QueryPong
	}
	if c.PingProbe == 0 {
		c.PingProbe = d.PingProbe
	}
	if c.PingPong == 0 {
		c.PingPong = d.PingPong
	}
	if c.CacheReplacement == 0 {
		c.CacheReplacement = d.CacheReplacement
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	switch {
	case c.CacheSize < 1:
		return fmt.Errorf("node: CacheSize must be >= 1, got %d", c.CacheSize)
	case c.PingInterval <= 0:
		return fmt.Errorf("node: PingInterval must be positive")
	case c.ProbeTimeout <= 0:
		return fmt.Errorf("node: ProbeTimeout must be positive")
	case c.MaxProbeAttempts < 1 || c.MaxProbeAttempts > 16:
		return fmt.Errorf("node: MaxProbeAttempts %d outside [1,16]", c.MaxProbeAttempts)
	case c.RetryBackoff <= 0:
		return fmt.Errorf("node: RetryBackoff must be positive")
	case c.RetryBackoffMax < c.RetryBackoff:
		return fmt.Errorf("node: RetryBackoffMax %v below RetryBackoff %v", c.RetryBackoffMax, c.RetryBackoff)
	case c.BusyBackoff < 0:
		return fmt.Errorf("node: BusyBackoff must be non-negative")
	case c.BusyBackoff > 0 && c.BusyBackoffMax < c.BusyBackoff:
		return fmt.Errorf("node: BusyBackoffMax %v below BusyBackoff %v", c.BusyBackoffMax, c.BusyBackoff)
	case c.BusyEvictAfter < 1:
		return fmt.Errorf("node: BusyEvictAfter must be >= 1")
	case c.PongSize < 0 || c.PongSize > wire.MaxPongEntries:
		return fmt.Errorf("node: PongSize %d outside [0, %d]", c.PongSize, wire.MaxPongEntries)
	case c.IntroProb < 0 || c.IntroProb > 1:
		return fmt.Errorf("node: IntroProb %v outside [0,1]", c.IntroProb)
	case !c.QueryProbe.Valid() || !c.QueryPong.Valid() || !c.PingProbe.Valid() || !c.PingPong.Valid():
		return fmt.Errorf("node: invalid selection policy")
	case !c.CacheReplacement.Valid():
		return fmt.Errorf("node: invalid cache replacement policy")
	}
	return nil
}

// Stats counts a node's protocol activity. Fields are cumulative.
type Stats struct {
	PingsSent, PongsReceived     int64
	PingsReceived, QueriesServed int64
	ProbesRefused                int64
	DeadEvictions                int64
	MalformedDropped             int64
	// Retries counts probe retransmissions (attempts beyond the first).
	Retries int64
	// BusyBackoffs counts Busy replies absorbed by demotion instead of
	// eviction (only with BusyBackoff > 0).
	BusyBackoffs int64
	// LateReplies counts replies that arrived after their probe had
	// already timed out or completed (or were never solicited).
	LateReplies int64
	// DupReplies counts redundant copies of a reply already consumed
	// by its probe (duplicating networks).
	DupReplies int64
}

// Hit is one query result.
type Hit struct {
	// From is the responding peer.
	From netip.AddrPort
	// Name is the matching file name.
	Name string
}

// QueryStats reports one query's cost, mirroring the simulator's
// per-query metrics. Probes counts distinct targets tried; Retries
// counts extra transmissions beyond each target's first.
type QueryStats struct {
	Probes  int
	Good    int
	Dead    int
	Refused int
	Retries int
}

// Node is a live GUESS peer. Create with Listen or New; always Close.
type Node struct {
	cfg   Config
	conn  net.PacketConn
	start time.Time

	mu    sync.Mutex
	rng   *simrng.RNG
	link  *cache.LinkCache
	ids   map[netip.AddrPort]cache.PeerID
	addrs map[cache.PeerID]netip.AddrPort
	next  cache.PeerID
	// load window for Busy refusals
	winStart int64
	winCount int
	// RTT estimator for adaptive timeouts (seconds; srtt == 0 means no
	// sample yet)
	srtt, rttvar float64
	// Busy demotion state: suppressed-until deadlines and consecutive
	// refusal streaks
	busyUntil  map[cache.PeerID]time.Time
	busyStreak map[cache.PeerID]int

	pendingMu sync.Mutex
	pending   map[uint64]chan wire.Message

	msgID atomic.Uint64

	// met backs both the Stats snapshot and the Config.Metrics
	// registry; always non-nil.
	met *obs.NodeMetrics

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// Listen binds a UDP socket (e.g. "127.0.0.1:0") and starts the node.
func Listen(addr string, cfg Config) (*Node, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: listen: %w", err)
	}
	n, err := New(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return n, nil
}

// New starts a node on an existing transport. The node owns conn and
// closes it on Close.
func New(conn net.PacketConn, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:        cfg,
		conn:       conn,
		start:      time.Now(),
		rng:        simrng.New(cfg.Seed),
		link:       cache.NewLinkCache(cfg.CacheSize),
		ids:        make(map[netip.AddrPort]cache.PeerID),
		addrs:      make(map[cache.PeerID]netip.AddrPort),
		next:       1,
		busyUntil:  make(map[cache.PeerID]time.Time),
		busyStreak: make(map[cache.PeerID]int),
		pending:    make(map[uint64]chan wire.Message),
		met:        obs.NewNodeMetrics(cfg.Metrics),
		closed:     make(chan struct{}),
	}
	n.msgID.Store(cfg.Seed<<32 | 1)
	n.wg.Add(2)
	go n.serveLoop()
	go n.pingLoop()
	return n, nil
}

// Addr returns the node's bound address.
func (n *Node) Addr() netip.AddrPort {
	return addrPortOf(n.conn.LocalAddr())
}

// Close stops the node's goroutines and closes its socket. It is
// idempotent.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.closed)
		n.conn.Close()
	})
	n.wg.Wait()
	return nil
}

// Stats returns a snapshot of the node's counters. The same
// instruments feed the Config.Metrics registry, so Stats and a
// metrics scrape always agree.
func (n *Node) Stats() Stats {
	return Stats{
		PingsSent:        int64(n.met.PingsSent.Value()),
		PongsReceived:    int64(n.met.PongsReceived.Value()),
		PingsReceived:    int64(n.met.PingsReceived.Value()),
		QueriesServed:    int64(n.met.QueriesServed.Value()),
		ProbesRefused:    int64(n.met.ProbesRefused.Value()),
		DeadEvictions:    int64(n.met.DeadEvictions.Value()),
		MalformedDropped: int64(n.met.MalformedDropped.Value()),
		Retries:          int64(n.met.Retries.Value()),
		BusyBackoffs:     int64(n.met.BusyBackoffs.Value()),
		LateReplies:      int64(n.met.LateReplies.Value()),
		DupReplies:       int64(n.met.DupReplies.Value()),
	}
}

// NumFiles returns the number of files the node shares.
func (n *Node) NumFiles() int { return len(n.cfg.Files) }

// CacheLen returns the current link cache occupancy.
func (n *Node) CacheLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.link.Len()
}

// CacheAddrs returns the addresses currently in the link cache.
func (n *Node) CacheAddrs() []netip.AddrPort {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]netip.AddrPort, 0, n.link.Len())
	for _, e := range n.link.Entries() {
		out = append(out, n.addrs[e.Addr])
	}
	return out
}

// AddPeer seeds the link cache with a known peer (bootstrap).
func (n *Node) AddPeer(addr netip.AddrPort, numFiles uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.idFor(addr)
	policy.Insert(n.rng, n.cfg.CacheReplacement, n.link, cache.Entry{
		Addr:     id,
		TS:       n.now(),
		NumFiles: int32(clampFiles(numFiles)),
		Direct:   true,
	})
	n.syncCacheGauge()
}

// syncCacheGauge refreshes the link-cache occupancy gauge after a
// mutation; callers hold n.mu.
func (n *Node) syncCacheGauge() {
	n.met.CacheEntries.Set(float64(n.link.Len()))
}

// now is seconds since node start (the TS clock).
func (n *Node) now() float64 { return time.Since(n.start).Seconds() }

// idFor maps an address to its stable PeerID; callers hold n.mu.
func (n *Node) idFor(addr netip.AddrPort) cache.PeerID {
	if id, ok := n.ids[addr]; ok {
		return id
	}
	id := n.next
	n.next++
	n.ids[addr] = id
	n.addrs[id] = addr
	return id
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

func clampFiles(v uint32) uint32 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return v
}

// addrPortOf converts a net.Addr to netip.AddrPort.
func addrPortOf(a net.Addr) netip.AddrPort {
	if u, ok := a.(*net.UDPAddr); ok {
		return u.AddrPort()
	}
	ap, err := netip.ParseAddrPort(a.String())
	if err != nil {
		return netip.AddrPort{}
	}
	return ap
}

// errClosed reports a send attempted after Close.
var errClosed = errors.New("node: closed")

// send encodes and transmits a message.
func (n *Node) send(m wire.Message, to netip.AddrPort) error {
	select {
	case <-n.closed:
		return errClosed
	default:
	}
	pkt, err := wire.Encode(m)
	if err != nil {
		return err
	}
	_, err = n.conn.WriteTo(pkt, net.UDPAddrFromAddrPort(to))
	return err
}

// matches reports whether name matches the query keyword
// (case-insensitive substring; an empty keyword matches nothing).
func matches(name, keyword string) bool {
	if keyword == "" {
		return false
	}
	return strings.Contains(strings.ToLower(name), strings.ToLower(keyword))
}
