package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/simrng"
)

func TestNewLinkCachePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLinkCache(0) did not panic")
		}
	}()
	NewLinkCache(0)
}

func TestAddAndGet(t *testing.T) {
	c := NewLinkCache(3)
	e := Entry{Addr: 7, TS: 1.5, NumFiles: 10, NumRes: 2, Direct: true}
	if !c.Add(e) {
		t.Fatal("Add failed on empty cache")
	}
	got, ok := c.Get(7)
	if !ok || got != e {
		t.Fatalf("Get(7) = %+v, %v", got, ok)
	}
	if c.Len() != 1 || c.Full() {
		t.Fatalf("Len=%d Full=%v after one add", c.Len(), c.Full())
	}
	c.checkInvariants()
}

func TestAddRejectsDuplicates(t *testing.T) {
	c := NewLinkCache(3)
	c.Add(Entry{Addr: 1, NumFiles: 5})
	if c.Add(Entry{Addr: 1, NumFiles: 99}) {
		t.Fatal("duplicate address accepted")
	}
	got, _ := c.Get(1)
	if got.NumFiles != 5 {
		t.Fatal("duplicate add overwrote existing entry")
	}
}

func TestAddRejectsWhenFull(t *testing.T) {
	c := NewLinkCache(2)
	c.Add(Entry{Addr: 1})
	c.Add(Entry{Addr: 2})
	if c.Add(Entry{Addr: 3}) {
		t.Fatal("Add succeeded on full cache")
	}
	if !c.Full() {
		t.Fatal("cache not reported full")
	}
}

func TestReplaceAt(t *testing.T) {
	c := NewLinkCache(2)
	c.Add(Entry{Addr: 1})
	c.Add(Entry{Addr: 2})
	c.ReplaceAt(0, Entry{Addr: 3, NumFiles: 9})
	if c.Has(1) {
		t.Fatal("evicted entry still present")
	}
	got, ok := c.Get(3)
	if !ok || got.NumFiles != 9 {
		t.Fatalf("replacement missing: %+v %v", got, ok)
	}
	c.checkInvariants()
}

func TestReplaceAtSameAddrSameSlot(t *testing.T) {
	c := NewLinkCache(2)
	c.Add(Entry{Addr: 1, NumFiles: 1})
	c.ReplaceAt(0, Entry{Addr: 1, NumFiles: 42})
	got, _ := c.Get(1)
	if got.NumFiles != 42 {
		t.Fatal("in-place replace failed")
	}
	c.checkInvariants()
}

func TestReplaceAtPanicsOnDuplicate(t *testing.T) {
	c := NewLinkCache(3)
	c.Add(Entry{Addr: 1})
	c.Add(Entry{Addr: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("ReplaceAt duplicating an addr did not panic")
		}
	}()
	c.ReplaceAt(0, Entry{Addr: 2})
}

func TestReplaceAtPanicsOutOfRange(t *testing.T) {
	c := NewLinkCache(3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range ReplaceAt did not panic")
		}
	}()
	c.ReplaceAt(0, Entry{Addr: 1})
}

func TestRemove(t *testing.T) {
	c := NewLinkCache(4)
	for i := PeerID(1); i <= 4; i++ {
		c.Add(Entry{Addr: i})
	}
	if !c.Remove(2) {
		t.Fatal("Remove(2) failed")
	}
	if c.Remove(2) {
		t.Fatal("second Remove(2) succeeded")
	}
	if c.Len() != 3 || c.Has(2) {
		t.Fatal("entry still present after removal")
	}
	for _, id := range []PeerID{1, 3, 4} {
		if !c.Has(id) {
			t.Fatalf("entry %d lost by unrelated removal", id)
		}
	}
	c.checkInvariants()
}

func TestTouchAndSetNumRes(t *testing.T) {
	c := NewLinkCache(2)
	c.Add(Entry{Addr: 5, TS: 1})
	c.Touch(5, 9.5)
	if e, _ := c.Get(5); e.TS != 9.5 {
		t.Fatalf("Touch: TS = %v", e.TS)
	}
	c.SetNumRes(5, 3)
	if e, _ := c.Get(5); e.NumRes != 3 || !e.Direct {
		t.Fatalf("SetNumRes: %+v", e)
	}
	// No-ops on absent addresses.
	c.Touch(99, 1)
	c.SetNumRes(99, 1)
	c.checkInvariants()
}

// TestLinkCacheProperty drives a random operation sequence and checks
// the cache never exceeds capacity, never duplicates addresses, and
// keeps its index consistent.
func TestLinkCacheProperty(t *testing.T) {
	f := func(ops []uint16, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		c := NewLinkCache(capacity)
		r := simrng.New(42)
		for _, op := range ops {
			addr := PeerID(op % 23)
			switch op % 4 {
			case 0, 1:
				c.Add(Entry{Addr: addr, TS: float64(op)})
			case 2:
				c.Remove(addr)
			case 3:
				if c.Len() > 0 {
					i := r.Intn(c.Len())
					// Replace only when it would not duplicate.
					if j := c.find(addr); j < 0 || j == i {
						c.ReplaceAt(i, Entry{Addr: addr})
					}
				}
			}
			c.checkInvariants()
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryCacheDedup(t *testing.T) {
	q := NewQueryCache()
	if !q.Add(Entry{Addr: 1}) {
		t.Fatal("first Add failed")
	}
	if q.Add(Entry{Addr: 1}) {
		t.Fatal("duplicate Add succeeded")
	}
	if !q.Seen(1) || q.Seen(2) {
		t.Fatal("Seen wrong")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestQueryCacheConsume(t *testing.T) {
	q := NewQueryCache()
	q.Add(Entry{Addr: 1})
	q.Add(Entry{Addr: 2})
	q.Add(Entry{Addr: 3})
	q.Consume(2)
	if got := q.PendingCount(); got != 2 {
		t.Fatalf("PendingCount = %d, want 2", got)
	}
	pending := q.Pending()
	for _, e := range pending {
		if e.Addr == 2 {
			t.Fatal("consumed entry still pending")
		}
	}
	// Consumed addresses remain seen, so they can never be re-added.
	if q.Add(Entry{Addr: 2}) {
		t.Fatal("consumed address re-added")
	}
	// Consuming an unknown address is a no-op.
	q.Consume(99)
	if q.PendingCount() != 2 {
		t.Fatal("Consume(unknown) changed state")
	}
}

func TestAppendEntriesSnapshot(t *testing.T) {
	c := NewLinkCache(4)
	for i := 1; i <= 4; i++ {
		c.Add(Entry{Addr: PeerID(i), NumFiles: int32(i)})
	}
	snap := c.AppendEntries(nil)
	if len(snap) != 4 {
		t.Fatalf("snapshot len %d, want 4", len(snap))
	}
	// Unlike Entries(), the snapshot must survive cache mutations.
	alias := c.Entries()
	c.Remove(1)
	c.ReplaceAt(0, Entry{Addr: 9, NumFiles: 99})
	for i, e := range snap {
		if e.Addr != PeerID(i+1) || e.NumFiles != int32(i+1) {
			t.Fatalf("snapshot[%d] mutated: %+v", i, e)
		}
	}
	if alias[0].Addr != 9 {
		t.Fatalf("Entries() result should alias internal storage, got %+v", alias[0])
	}
	// Reusing dst storage appends in place.
	snap = c.AppendEntries(snap[:0])
	if len(snap) != 3 {
		t.Fatalf("reused snapshot len %d, want 3", len(snap))
	}
}

func TestClearRetainsCapacityAndEmpties(t *testing.T) {
	c := NewLinkCache(3)
	for i := 1; i <= 3; i++ {
		c.Add(Entry{Addr: PeerID(i)})
	}
	c.Clear()
	c.checkInvariants()
	if c.Len() != 0 || c.Cap() != 3 || c.Full() {
		t.Fatalf("cleared cache: len=%d cap=%d full=%v", c.Len(), c.Cap(), c.Full())
	}
	if c.Has(1) {
		t.Fatal("cleared cache still has entry")
	}
	// Behaves like a fresh cache afterwards.
	for i := 4; i <= 6; i++ {
		if !c.Add(Entry{Addr: PeerID(i)}) {
			t.Fatalf("add %d after Clear failed", i)
		}
	}
	if !c.Full() {
		t.Fatal("refilled cache not full")
	}
	c.checkInvariants()
}

// TestLinkCacheIndexRegimesAgree drives a flat-indexed cache (capacity
// = linearIndexMax) and a map-indexed one (capacity = linearIndexMax+1)
// through an identical randomized script. The address space is kept
// small enough that neither cache ever fills, so capacity cannot
// influence behavior and every observable — membership, entry fields,
// lengths — must agree between the two index implementations.
func TestLinkCacheIndexRegimesAgree(t *testing.T) {
	flat := NewLinkCache(linearIndexMax)
	mapped := NewLinkCache(linearIndexMax + 1)
	if flat.index != nil || flat.addrs == nil {
		t.Fatal("capacity <= linearIndexMax did not select the flat index")
	}
	if mapped.index == nil || mapped.addrs != nil {
		t.Fatal("capacity > linearIndexMax did not select the map index")
	}
	r := simrng.New(7)
	const addrSpace = 48 // << both capacities: neither cache ever fills
	for step := 0; step < 20000; step++ {
		addr := PeerID(r.Intn(addrSpace))
		switch r.Intn(5) {
		case 0:
			a := flat.Add(Entry{Addr: addr, TS: float64(step)})
			b := mapped.Add(Entry{Addr: addr, TS: float64(step)})
			if a != b {
				t.Fatalf("step %d: Add(%d) flat=%v map=%v", step, addr, a, b)
			}
		case 1:
			a := flat.Remove(addr)
			b := mapped.Remove(addr)
			if a != b {
				t.Fatalf("step %d: Remove(%d) flat=%v map=%v", step, addr, a, b)
			}
		case 2:
			flat.Touch(addr, float64(step))
			mapped.Touch(addr, float64(step))
		case 3:
			flat.SetNumRes(addr, int32(step%7))
			mapped.SetNumRes(addr, int32(step%7))
		case 4:
			if flat.Len() > 0 {
				// ReplaceAt targets the slot holding a common address so
				// both caches mutate the same logical entry; skip when the
				// replacement would duplicate.
				victim := flat.entries[r.Intn(flat.Len())].Addr
				if flat.Has(addr) && addr != victim {
					continue
				}
				flat.ReplaceAt(flat.find(victim), Entry{Addr: addr, TS: float64(step)})
				mapped.ReplaceAt(mapped.find(victim), Entry{Addr: addr, TS: float64(step)})
			}
		}
		flat.checkInvariants()
		mapped.checkInvariants()
		if flat.Len() != mapped.Len() {
			t.Fatalf("step %d: Len flat=%d map=%d", step, flat.Len(), mapped.Len())
		}
		for _, e := range flat.entries {
			g, ok := mapped.Get(e.Addr)
			if !ok || g != e {
				t.Fatalf("step %d: entry %d flat=%+v map=%+v (ok=%v)", step, e.Addr, e, g, ok)
			}
		}
	}
	flat.Clear()
	mapped.Clear()
	if flat.Len() != 0 || mapped.Len() != 0 || flat.Has(1) || mapped.Has(1) {
		t.Fatal("Clear left residue")
	}
	flat.checkInvariants()
	mapped.checkInvariants()
}
