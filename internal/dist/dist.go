// Package dist provides the probability distributions used by the
// simulation substrates: peer lifetimes, library sizes, item
// popularity, and workload inter-arrival times.
//
// All samplers draw from an explicit *simrng.RNG so that every use is
// attributable to a named random stream and fully reproducible.
package dist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simrng"
)

// Sampler produces random variates.
type Sampler interface {
	// Sample draws one variate using r.
	Sample(r *simrng.RNG) float64
	// Mean returns the distribution's theoretical mean, or NaN when it
	// is undefined or unknown in closed form.
	Mean() float64
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

var _ Sampler = Uniform{}

// Sample draws from the uniform distribution.
func (u Uniform) Sample(r *simrng.RNG) float64 {
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exponential is the exponential distribution with the given rate
// (events per unit time). Its mean is 1/Rate.
type Exponential struct {
	Rate float64
}

var _ Sampler = Exponential{}

// Sample draws from the exponential distribution.
func (e Exponential) Sample(r *simrng.RNG) float64 {
	return r.ExpFloat64() / e.Rate
}

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma^2)).
type LogNormal struct {
	Mu, Sigma float64
}

var _ Sampler = LogNormal{}

// Sample draws from the log-normal distribution.
func (l LogNormal) Sample(r *simrng.RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean returns exp(Mu + Sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Pareto is the (type I) Pareto distribution with scale Xm > 0 and
// shape Alpha > 0. Values are >= Xm.
type Pareto struct {
	Xm, Alpha float64
}

var _ Sampler = Pareto{}

// Sample draws from the Pareto distribution by inverse CDF.
func (p Pareto) Sample(r *simrng.RNG) float64 {
	// 1-Float64() is in (0,1], avoiding a zero argument to Pow.
	return p.Xm / math.Pow(1-r.Float64(), 1/p.Alpha)
}

// Mean returns Alpha*Xm/(Alpha-1) for Alpha > 1, NaN otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.NaN()
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Point is one (quantile, value) knot of an empirical distribution.
type Point struct {
	// Q is the cumulative probability in [0, 1].
	Q float64
	// V is the value of the inverse CDF at Q.
	V float64
}

// Empirical is a distribution defined by a piecewise-linear inverse CDF
// through a set of (quantile, value) knots. It reproduces published
// summary statistics (percentile tables) of measured distributions when
// the raw traces are unavailable.
type Empirical struct {
	points []Point
}

var _ Sampler = (*Empirical)(nil)

// NewEmpirical builds an empirical distribution from knots. The knots
// must be non-empty, sorted by increasing Q with Q in [0, 1], strictly
// increasing in Q, and non-decreasing in V. The first knot should have
// Q == 0 and the last Q == 1; otherwise the extreme knots' values are
// used for the uncovered tails.
func NewEmpirical(points []Point) (*Empirical, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("dist: empirical distribution needs at least one knot")
	}
	for i, p := range points {
		if p.Q < 0 || p.Q > 1 {
			return nil, fmt.Errorf("dist: knot %d quantile %v outside [0,1]", i, p.Q)
		}
		if i > 0 {
			if p.Q <= points[i-1].Q {
				return nil, fmt.Errorf("dist: knot quantiles not strictly increasing at %d", i)
			}
			if p.V < points[i-1].V {
				return nil, fmt.Errorf("dist: knot values decrease at %d", i)
			}
		}
	}
	cp := make([]Point, len(points))
	copy(cp, points)
	return &Empirical{points: cp}, nil
}

// MustEmpirical is NewEmpirical but panics on invalid knots. Use only
// for compile-time-constant tables.
func MustEmpirical(points []Point) *Empirical {
	e, err := NewEmpirical(points)
	if err != nil {
		panic(err)
	}
	return e
}

// Sample draws from the empirical distribution by inverting the
// piecewise-linear CDF at a uniform quantile.
func (e *Empirical) Sample(r *simrng.RNG) float64 {
	return e.Quantile(r.Float64())
}

// Quantile evaluates the inverse CDF at q, clamping q to [0, 1].
func (e *Empirical) Quantile(q float64) float64 {
	pts := e.points
	if q <= pts[0].Q {
		return pts[0].V
	}
	last := pts[len(pts)-1]
	if q >= last.Q {
		return last.V
	}
	// Find the first knot with Q >= q.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Q >= q })
	lo, hi := pts[i-1], pts[i]
	frac := (q - lo.Q) / (hi.Q - lo.Q)
	return lo.V + frac*(hi.V-lo.V)
}

// Mean returns the mean of the piecewise-linear distribution: the
// integral of the inverse CDF over [0,1], treating the tails beyond the
// extreme knots as constant.
func (e *Empirical) Mean() float64 {
	pts := e.points
	mean := pts[0].V * pts[0].Q // constant head
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		mean += (hi.Q - lo.Q) * (lo.V + hi.V) / 2
	}
	mean += (1 - pts[len(pts)-1].Q) * pts[len(pts)-1].V // constant tail
	return mean
}

// Scaled wraps a Sampler, multiplying every variate by Factor. It
// implements parameters like the paper's LifespanMultiplier.
type Scaled struct {
	S      Sampler
	Factor float64
}

var _ Sampler = Scaled{}

// Sample draws from the underlying sampler and scales the result.
func (s Scaled) Sample(r *simrng.RNG) float64 { return s.Factor * s.S.Sample(r) }

// Mean returns Factor times the underlying mean.
func (s Scaled) Mean() float64 { return s.Factor * s.S.Mean() }

// Mixture draws from one of several component samplers with the given
// weights.
type Mixture struct {
	components []Sampler
	cum        []float64 // cumulative normalized weights
}

// NewMixture builds a mixture distribution. weights must be
// non-negative, the same length as components, and sum to a positive
// value.
func NewMixture(components []Sampler, weights []float64) (*Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return nil, fmt.Errorf("dist: mixture needs matching non-empty components and weights")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("dist: mixture weight %d is negative", i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: mixture weights sum to zero")
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // guard against rounding
	return &Mixture{components: append([]Sampler(nil), components...), cum: cum}, nil
}

var _ Sampler = (*Mixture)(nil)

// Sample picks a component by weight and draws from it.
func (m *Mixture) Sample(r *simrng.RNG) float64 {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.components) {
		i = len(m.components) - 1
	}
	return m.components[i].Sample(r)
}

// Mean returns the weighted mean of the component means.
func (m *Mixture) Mean() float64 {
	mean := 0.0
	prev := 0.0
	for i, c := range m.components {
		w := m.cum[i] - prev
		prev = m.cum[i]
		mean += w * c.Mean()
	}
	return mean
}

// Constant always returns V.
type Constant struct {
	V float64
}

var _ Sampler = Constant{}

// Sample returns V.
func (c Constant) Sample(*simrng.RNG) float64 { return c.V }

// Mean returns V.
func (c Constant) Mean() float64 { return c.V }
