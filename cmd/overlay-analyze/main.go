// Command overlay-analyze studies the health of a GUESS conceptual
// overlay under a given maintenance configuration: it runs a
// queries-off simulation and reports connectivity (largest weak
// component), cache liveness, and degree statistics over time.
//
// Example:
//
//	overlay-analyze -network 1000 -cache 20 -ping-interval 300
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "overlay-analyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("overlay-analyze", flag.ContinueOnError)
	network := fs.Int("network", 1000, "number of live peers")
	cacheSize := fs.Int("cache", 100, "link cache capacity")
	lifespan := fs.Float64("lifespan", 1, "lifespan multiplier")
	seed := fs.Uint64("seed", 1, "random seed")
	warmup := fs.Float64("warmup", 500, "warmup seconds")
	measure := fs.Float64("measure", 2000, "measurement seconds")
	intervalsFlag := fs.String("ping-intervals", "15,30,60,120,240,480,600",
		"comma-separated ping intervals to sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var intervals []float64
	for _, tok := range splitCommas(*intervalsFlag) {
		var v float64
		if _, err := fmt.Sscanf(tok, "%g", &v); err != nil {
			return fmt.Errorf("bad -ping-intervals entry %q", tok)
		}
		intervals = append(intervals, v)
	}

	t := report.NewTable(
		fmt.Sprintf("Overlay health: N=%d cache=%d lifespan x%g", *network, *cacheSize, *lifespan),
		"PingInterval", "AvgLargestWCC", "FinalWCC", "AvgLiveEntries", "FractionLive")
	for _, pi := range intervals {
		p := core.DefaultParams()
		p.NetworkSize = *network
		p.CacheSize = *cacheSize
		p.LifespanMultiplier = *lifespan
		p.PingInterval = pi
		p.QueriesEnabled = false
		p.SampleConnectivity = true
		p.Seed = *seed
		p.WarmupTime = *warmup
		p.MeasureTime = *measure
		p.SampleInterval = 60
		engine, err := core.New(p)
		if err != nil {
			return err
		}
		res, err := engine.Run(context.Background())
		if err != nil {
			return err
		}
		t.AddRow(pi, res.AvgLargestWCC, res.FinalLargestWCC, res.AvgLiveEntries, res.AvgLiveFraction)
	}
	_, err := t.WriteTo(os.Stdout)
	return err
}

func splitCommas(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
