// Package exempt poses as a package outside the concurrent set: the
// analyzer does not apply there, even to mixed access.
package exempt

import "sync/atomic"

type gauge struct {
	v int64
}

func (g *gauge) inc() {
	atomic.AddInt64(&g.v, 1)
}

func (g *gauge) read() int64 {
	return g.v
}
