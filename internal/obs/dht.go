package obs

// DHTMetrics binds the DHT-lookup metric names in a registry and hands
// the engine pre-resolved instruments, mirroring SimMetrics for the
// GUESS engine. All counters cover the whole run (the DHT engine has no
// warmup window), so a metrics snapshot and the returned dht.Results
// agree. Several engines may share one DHTMetrics: every instrument is
// atomic, and the counters then aggregate across runs.
//
// See README.md, "Observability", for the metric name table.
type DHTMetrics struct {
	Lookups     *Counter
	Satisfied   *Counter
	Unsatisfied *Counter

	Messages  *Counter
	Delivered *Counter
	Dropped   *Counter

	Hops      *Counter
	CacheHits *Counter

	// LookupHops is the per-completed-lookup hop-count distribution.
	LookupHops *Histogram
}

// DHTHopBuckets spans local hits (0 hops) through the routing budget.
var DHTHopBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48}

// NewDHTMetrics registers the DHT metric set in reg. A nil registry
// yields nil, which the engine treats as metrics-off.
func NewDHTMetrics(reg *Registry) *DHTMetrics {
	if reg == nil {
		return nil
	}
	return &DHTMetrics{
		Lookups:     reg.Counter("guess_dht_lookups_total", "Completed DHT lookups."),
		Satisfied:   reg.Counter("guess_dht_lookups_satisfied_total", "DHT lookups that found a record meeting NumDesiredResults."),
		Unsatisfied: reg.Counter("guess_dht_lookups_unsatisfied_total", "DHT lookups that missed, lost their response, or exhausted the hop budget."),

		Messages:  reg.Counter("guess_dht_messages_total", "DHT messages sent (routing hops and direct responses)."),
		Delivered: reg.Counter("guess_dht_messages_delivered_total", "DHT messages delivered to live peers."),
		Dropped:   reg.Counter("guess_dht_messages_dropped_total", "DHT messages lost in transit or sent to dead peers."),

		Hops:      reg.Counter("guess_dht_hops_total", "Routing hop attempts across all lookups."),
		CacheHits: reg.Counter("guess_dht_cache_hits_total", "Lookups answered from a replica cache instead of the owner."),

		LookupHops: reg.Histogram("guess_dht_lookup_hops", "Hop attempts per completed DHT lookup.", DHTHopBuckets),
	}
}
