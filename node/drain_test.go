package node

// Graceful-drain scenarios on memnet: Close with DrainTimeout must
// answer in-flight probes (with Busy, so requesters fail over fast
// instead of waiting out a timeout), honor the drain deadline under
// sustained traffic, and keep the zero-value immediate-close default.

import (
	"context"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/node/memnet"
)

// TestDrainAnswersInFlightProbe: a probe already in flight when Close
// begins still gets a reply before the socket goes away.
func TestDrainAnswersInFlightProbe(t *testing.T) {
	leakCheck(t)
	nw := memnet.New(31)
	nw.SetDefaultProfile(memnet.LinkProfile{Latency: 25 * time.Millisecond})
	server := startMemNode(t, nw, Config{
		Files:        []string{"parting.gift"},
		DrainTimeout: 600 * time.Millisecond,
		PingInterval: time.Hour,
		Seed:         1,
	})
	client := nw.Listen()
	t.Cleanup(func() { client.Close() })

	// The query departs, then Close begins while it is still on the
	// wire (25ms of latency vs the 5ms head start).
	q := &wire.Query{MsgID: 7777, Desired: 1, Keyword: "parting"}
	out := make(chan probeOutcome, 1)
	go func() { out <- rawProbe(client, server.Addr(), q, 400*time.Millisecond) }()
	time.Sleep(5 * time.Millisecond)

	closeStart := time.Now()
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	closeTook := time.Since(closeStart)

	if got := <-out; got != probeRefused {
		t.Fatalf("in-flight probe outcome %d, want refused (Busy)", got)
	}
	if server.Stats().ShedDrain != 1 {
		t.Fatalf("ShedDrain = %d, want 1", server.Stats().ShedDrain)
	}
	// Close waited for the in-flight probe (>= one-way latency) but not
	// past the drain deadline.
	if closeTook < 25*time.Millisecond {
		t.Fatalf("Close returned in %v, before the in-flight probe could land", closeTook)
	}
	if closeTook > time.Second {
		t.Fatalf("Close took %v, past the 600ms drain deadline", closeTook)
	}
	if !server.Draining() {
		t.Fatal("closed node does not report draining")
	}
	if _, _, err := server.Query(context.Background(), "x", 1); err == nil {
		t.Fatal("Query succeeded on a draining node")
	}
}

// TestDrainDeadlineUnderSustainedTraffic: a peer that never stops
// sending must not be able to hold Close open past DrainTimeout.
func TestDrainDeadlineUnderSustainedTraffic(t *testing.T) {
	leakCheck(t)
	nw := memnet.New(32)
	server := startMemNode(t, nw, Config{
		DrainTimeout: 200 * time.Millisecond,
		PingInterval: time.Hour,
		Seed:         2,
	})
	flood := nw.Listen()
	t.Cleanup(func() { flood.Close() })
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			pkt, err := wire.Encode(&wire.Ping{MsgID: i})
			if err != nil {
				return
			}
			flood.WriteTo(pkt, addrOf(server.Addr()))
			time.Sleep(5 * time.Millisecond)
		}
	}()

	time.Sleep(20 * time.Millisecond) // let traffic flow
	closeStart := time.Now()
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	closeTook := time.Since(closeStart)
	close(stop)
	<-done
	if closeTook < 150*time.Millisecond {
		t.Fatalf("Close returned in %v despite constant traffic; deadline not honored", closeTook)
	}
	if closeTook > time.Second {
		t.Fatalf("Close took %v, far past the 200ms drain deadline", closeTook)
	}
	if server.Stats().ShedDrain == 0 {
		t.Fatal("no probes were refused during the drain")
	}
}

// TestCloseImmediateByDefault: DrainTimeout 0 keeps the original
// semantics — Close returns promptly without a drain window.
func TestCloseImmediateByDefault(t *testing.T) {
	leakCheck(t)
	nw := memnet.New(33)
	server := startMemNode(t, nw, Config{PingInterval: time.Hour, Seed: 3})
	closeStart := time.Now()
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(closeStart); took > 100*time.Millisecond {
		t.Fatalf("default Close took %v, want immediate", took)
	}
	// Idempotent, including concurrently after the fact.
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
}
