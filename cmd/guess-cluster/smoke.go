package main

// The scripted outage drill behind -smoke (CI's `make cluster-smoke`):
// a three-node memnet cluster synced to a shed-state service, driven
// through the three robustness postures — converged, service killed
// (every node must degrade to local-only shedding), service restarted
// (every node must re-converge). Assertions read the same metric
// counters an operator would: guess_node_cluster_fallbacks_total and
// friends out of the shared registry.

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"os"
	"sync"
	"sync/atomic"
	"time"

	guess "repro"
	"repro/node"
	"repro/node/cluster"
	"repro/node/memnet"
)

const smokeSlots = 3

func runSmoke(verbose bool) error {
	logf := func(format string, a ...any) {}
	if verbose {
		logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "smoke: "+format+"\n", a...)
		}
	}
	nw := memnet.New(1)
	reg := guess.NewMetricsRegistry()

	// The service; its address moves on restart, so clients dial
	// through a shared slot.
	var svcAddr atomic.Value // netip.AddrPort
	startService := func() (*cluster.Service, error) {
		ln := nw.ListenStream()
		svc, err := cluster.Serve(ln, cluster.ServiceConfig{
			Window:  200 * time.Millisecond,
			Metrics: reg,
			Logf:    logf,
		})
		if err != nil {
			return nil, err
		}
		svcAddr.Store(ln.AddrPort())
		return svc, nil
	}
	svc, err := startService()
	if err != nil {
		return err
	}
	defer svc.Close()

	// Written by each slot's supervisor goroutine, read by the drill:
	// guarded.
	var mu sync.Mutex
	var clients [smokeSlots]*cluster.SyncClient
	var servers [smokeSlots]*node.Node
	h, err := cluster.StartHarness(cluster.HarnessConfig{
		Slots: smokeSlots,
		Logf:  logf,
		Start: func(slot int) (cluster.Member, error) {
			n, err := node.New(nw.Listen(), node.Config{
				Files:              []string{"smoke.txt"},
				MaxProbesPerSecond: 100,
				Admission:          node.AdmissionFair,
				AdmissionWindow:    100 * time.Millisecond,
				PingInterval:       time.Hour,
				Seed:               uint64(slot + 1),
			})
			if err != nil {
				return nil, err
			}
			c, err := cluster.NewSyncClient(n, cluster.ClientConfig{
				Name: fmt.Sprintf("smoke-%d", slot),
				Dial: func() (net.Conn, error) {
					return nw.DialStream(svcAddr.Load().(netip.AddrPort))
				},
				Interval:   25 * time.Millisecond,
				StaleAfter: 100 * time.Millisecond,
				Nonce:      uint64(slot + 1),
				Metrics:    reg,
			})
			if err != nil {
				n.Close()
				return nil, err
			}
			mu.Lock()
			servers[slot], clients[slot] = n, c
			mu.Unlock()
			return cluster.NewNodeMember(n, c), nil
		},
	})
	if err != nil {
		return err
	}
	defer h.Stop()

	allMatch := func(fallback bool) func() bool {
		return func() bool {
			mu.Lock()
			cs := clients
			mu.Unlock()
			for _, c := range cs {
				if c == nil || c.Status().Fallback != fallback {
					return false
				}
			}
			return true
		}
	}
	counter := func(name string) uint64 { return reg.Snapshot().Counters[name] }

	// Posture 1: every node converges onto the service's epoch.
	if err := waitFor("initial convergence", allMatch(false)); err != nil {
		return err
	}
	logf("all %d nodes converged (epoch %d)", smokeSlots, svc.Epoch())

	// Demand flows end to end: one query through a node must surface in
	// the service's merged estimate for that requester.
	querier, err := node.New(nw.Listen(), node.Config{Seed: 99, PingInterval: time.Hour})
	if err != nil {
		return err
	}
	defer querier.Close()
	mu.Lock()
	server0 := servers[0]
	mu.Unlock()
	querier.AddPeer(server0.Addr(), 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	hits, _, err := querier.Query(ctx, "smoke", 1)
	cancel()
	if err != nil {
		return fmt.Errorf("smoke query: %w", err)
	}
	if len(hits) == 0 {
		return fmt.Errorf("smoke query found no hits")
	}
	key := node.RequesterKey(querier.Addr(), svc.Salt())
	if err := waitFor("demand in the aggregate", func() bool { return svc.Estimate(key) > 0 }); err != nil {
		return err
	}
	logf("querier demand visible in the aggregate (estimate %d)", svc.Estimate(key))

	// Posture 2: kill the service mid-run. Every node must detect the
	// outage and fall back to local-only shedding, observably.
	svc.Close()
	if err := waitFor("fallback after service kill", allMatch(true)); err != nil {
		return err
	}
	if got := counter("guess_node_cluster_fallbacks_total"); got < smokeSlots {
		return fmt.Errorf("fallbacks_total = %d after service kill, want >= %d", got, smokeSlots)
	}
	logf("all nodes in local fallback (fallbacks_total %d)", counter("guess_node_cluster_fallbacks_total"))

	// Posture 3: restart the service; every node must re-converge.
	svc2, err := startService()
	if err != nil {
		return err
	}
	defer svc2.Close()
	if err := waitFor("re-convergence after restart", allMatch(false)); err != nil {
		return err
	}
	if got := counter("guess_node_cluster_reconnects_total"); got < 2*smokeSlots {
		return fmt.Errorf("reconnects_total = %d, want >= %d", got, 2*smokeSlots)
	}

	fmt.Printf("cluster smoke ok: %d nodes converged, fell back on outage (fallbacks %d), re-converged on restart (reconnects %d)\n",
		smokeSlots,
		counter("guess_node_cluster_fallbacks_total"),
		counter("guess_node_cluster_reconnects_total"))
	return nil
}

// waitFor polls cond for up to 10s, failing with what it was waiting
// on.
func waitFor(what string, cond func() bool) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("smoke: timed out waiting for %s", what)
}
