package policy

import (
	"repro/internal/cache"
	"repro/internal/simrng"
)

// Selector yields candidate entries one at a time in policy order. It
// is the QueryProbe engine: a query feeds it the link-cache snapshot
// and every pong entry received, and pulls the next peer to probe.
//
// Scores are computed when a candidate is added, matching a real
// implementation (a querying peer orders candidates by the metadata it
// had when it learned of them). SelRandom uses O(1) random extraction;
// scored policies use a max-heap with FIFO tie-breaking so runs are
// deterministic.
type Selector struct {
	sel Selection
	rng *simrng.RNG

	// random mode
	pool []cache.Entry

	// scored mode
	heap []scoredEntry
	seq  uint64
}

type scoredEntry struct {
	score float64
	seq   uint64
	e     cache.Entry
}

// NewSelector returns a Selector for sel. rng is used by SelRandom and
// must not be nil for that policy.
func NewSelector(sel Selection, rng *simrng.RNG) *Selector {
	return &Selector{sel: sel, rng: rng}
}

// Reset returns s to its just-constructed state for the given policy
// while retaining the candidate buffers, so pooled selectors add
// candidates without reallocating. A reset selector behaves exactly
// like NewSelector(sel, rng).
func (s *Selector) Reset(sel Selection, rng *simrng.RNG) {
	s.sel = sel
	s.rng = rng
	s.pool = s.pool[:0]
	s.heap = s.heap[:0]
	s.seq = 0
}

// Len reports the number of pending candidates.
func (s *Selector) Len() int {
	if s.sel == SelRandom {
		return len(s.pool)
	}
	return len(s.heap)
}

// Add inserts a candidate. The caller is responsible for deduplication
// (see cache.QueryCache).
func (s *Selector) Add(e cache.Entry) {
	if s.sel == SelRandom {
		s.pool = append(s.pool, e)
		return
	}
	s.seq++
	s.heap = append(s.heap, scoredEntry{score: s.sel.Score(e), seq: s.seq, e: e})
	s.up(len(s.heap) - 1)
}

// Next removes and returns the best pending candidate.
func (s *Selector) Next() (cache.Entry, bool) {
	if s.sel == SelRandom {
		n := len(s.pool)
		if n == 0 {
			return cache.Entry{}, false
		}
		i := s.rng.Intn(n)
		e := s.pool[i]
		s.pool[i] = s.pool[n-1]
		s.pool = s.pool[:n-1]
		return e, true
	}
	if len(s.heap) == 0 {
		return cache.Entry{}, false
	}
	top := s.heap[0].e
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	if len(s.heap) > 0 {
		s.down(0)
	}
	return top, true
}

// better orders the heap: higher score first, then FIFO.
func (s *Selector) better(i, j int) bool {
	a, b := s.heap[i], s.heap[j]
	if a.score != b.score {
		return a.score > b.score
	}
	return a.seq < b.seq
}

func (s *Selector) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.better(i, parent) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Selector) down(i int) {
	n := len(s.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && s.better(right, left) {
			best = right
		}
		if !s.better(best, i) {
			return
		}
		s.heap[i], s.heap[best] = s.heap[best], s.heap[i]
		i = best
	}
}
