// Command benchjson converts `go test -bench` text output into a JSON
// trajectory record, so benchmark history can be diffed and plotted
// across commits:
//
//	go test -run '^$' -bench BenchmarkSingleRun -benchmem . | benchjson -o BENCH_20260805.json
//
// The record carries the machine header (goos/goarch/cpu), the git
// revision when available, and one entry per benchmark with ns/op,
// B/op, and allocs/op. See "Profiling and benchmarking" in README.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/benchfmt"
)

// record is the schema of a BENCH_<date>.json file.
type record struct {
	Date     string `json:"date"`
	Revision string `json:"revision,omitempty"`
	benchfmt.Header
	Results []benchfmt.Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	hdr, results, err := benchfmt.Parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}

	rec := record{
		Date:    time.Now().UTC().Format(time.RFC3339),
		Header:  hdr,
		Results: results,
	}
	if rev, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		rec.Revision = strings.TrimSpace(string(rev))
	}

	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out != "" {
		return os.WriteFile(*out, b, 0o644)
	}
	_, err = stdout.Write(b)
	return err
}
