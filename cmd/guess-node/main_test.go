package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/node"
)

func TestRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-query-probe", "Bogus"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := run([]string{"-admission", "bogus", "-query", "x"}); err == nil {
		t.Fatal("bad admission mode accepted")
	}
	if err := run([]string{"-breaker", "-1", "-query", "x"}); err == nil {
		t.Fatal("negative breaker threshold accepted")
	}
	if err := run([]string{"-bootstrap", "not-an-addr", "-query", "x"}); err == nil {
		t.Fatal("bad bootstrap address accepted")
	}
	if err := run([]string{"-listen", "256.0.0.1:99999"}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestQueryAgainstLivePeer(t *testing.T) {
	sharer, err := node.Listen("127.0.0.1:0", node.Config{
		Files: []string{"wanted song.mp3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sharer.Close()

	err = run([]string{
		"-listen", "127.0.0.1:0",
		"-bootstrap", sharer.Addr().String(),
		"-query", "wanted song",
		"-gossip-wait", "100ms",
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNewFlagsAcceptedInQueryMode exercises the overload/recovery
// flags end to end through one query run.
func TestNewFlagsAcceptedInQueryMode(t *testing.T) {
	sharer, err := node.Listen("127.0.0.1:0", node.Config{
		Files: []string{"resilient.tar"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sharer.Close()

	err = run([]string{
		"-listen", "127.0.0.1:0",
		"-bootstrap", sharer.Addr().String(),
		"-admission", "fair",
		"-capacity", "50",
		"-breaker", "3",
		"-breaker-cooldown", "500ms",
		"-drain-timeout", "50ms",
		"-snapshot", filepath.Join(t.TempDir(), "cache.snap"),
		"-snapshot-interval", "10s",
		"-query", "resilient",
		"-gossip-wait", "100ms",
	})
	if err != nil {
		t.Fatal(err)
	}
}

// freePort reserves a loopback TCP port for the metrics server.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestHealthzEndpoint: /healthz serves 200 with uptime and cache state
// on a live daemon.
func TestHealthzEndpoint(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		// Query mode keeps the run bounded; gossip-wait gives the test
		// a window to scrape /healthz while the node is alive.
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-metrics", addr,
			"-query", "anything",
			"-gossip-wait", "2s",
		})
	}()

	var body struct {
		Status          string  `json:"status"`
		UptimeSeconds   float64 `json:"uptime_seconds"`
		CacheEntries    int     `json:"cache_entries"`
		SuspectsPending int     `json:"suspects_pending"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err == nil {
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/healthz status %d, want 200", resp.StatusCode)
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("metrics server never came up")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if body.Status != "ok" {
		t.Fatalf("healthz status %q, want ok", body.Status)
	}
	if body.UptimeSeconds < 0 || body.CacheEntries != 0 || body.SuspectsPending != 0 {
		t.Fatalf("healthz body %+v", body)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
