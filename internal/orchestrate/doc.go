// Package orchestrate distributes experiment sweeps across worker
// processes: a coordinator decomposes a sweep into content-addressed
// work units (experiments.Point values keyed by their sha256 params
// digest), dispatches them to workers over any net.Conn transport
// (in-memory streams in tests, TCP for real use), and assembles the
// results in spec order regardless of completion order.
//
// The design leans entirely on the repository's determinism
// guarantees: every Point is a pure function of its parameters, so a
// result computed by any worker — or by a prior run feeding a shared
// cache — is interchangeable with a locally computed one, and a sweep
// run with -workers 2 over the wire is byte-identical to the
// single-process path. That also makes fault handling simple: a worker
// that crashes or stalls mid-unit just has its unit reassigned to
// another worker (bounded by Config.MaxRetries), with no risk of
// divergent partial state.
//
// The pieces:
//
//   - Coordinator implements experiments.Executor over connected
//     workers (Serve/HandleWorker accept them).
//   - RunWorker turns any net.Conn into a worker serving units.
//   - LocalPool wires a coordinator and K in-process workers over
//     node/memnet streams — the full wire path without sockets; this
//     backs the guess-experiments -workers flag.
//   - Cache (memory or disk) shares computed points across workers and
//     runs.
//   - Dashboard renders live progress, event-driven and clock-free.
//
// Metrics: each worker runs every unit against a private obs.Registry
// and streams the snapshot back with the result; after a run completes
// the coordinator folds the snapshots into Config.Metrics in unit
// order (obs.Registry.Merge), so integer-valued metrics reproduce a
// serial local run exactly and repeated distributed runs are
// byte-stable at any worker count.
package orchestrate
