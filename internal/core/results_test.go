package core

import (
	"math"
	"testing"
)

func TestResultsPerQueryMath(t *testing.T) {
	r := Results{
		Queries:         10,
		Satisfied:       8,
		Unsatisfied:     2,
		Aborted:         5,
		ProbesTotal:     100,
		GoodProbes:      70,
		DeadProbes:      20,
		RefusedProbes:   10,
		ResponseTimeSum: 25,
	}
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"probes", r.ProbesPerQuery(), 10},
		{"good", r.GoodProbesPerQuery(), 7},
		{"dead", r.DeadProbesPerQuery(), 2},
		{"refused", r.RefusedProbesPerQuery(), 1},
		{"unsat", r.Unsatisfaction(), 0.2},
		{"unsat with aborted", r.UnsatisfactionWithAborted(), 7.0 / 15},
		{"response", r.AvgResponseTime(), 2.5},
	}
	for _, tt := range tests {
		if math.Abs(tt.got-tt.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", tt.name, tt.got, tt.want)
		}
	}
}

func TestResultsUnsatisfactionWithAbortedEmpty(t *testing.T) {
	var r Results
	if r.UnsatisfactionWithAborted() != 0 {
		t.Fatal("empty results not zero")
	}
	r.Aborted = 3
	if got := r.UnsatisfactionWithAborted(); got != 1 {
		t.Fatalf("all-aborted = %v, want 1", got)
	}
}

func TestRankedLoadsAndTotal(t *testing.T) {
	r := Results{PeerLoads: []int64{5, 1, 9, 0, 3}}
	ranked := r.RankedLoads()
	want := []int64{9, 5, 3, 1, 0}
	for i := range want {
		if ranked[i] != want[i] {
			t.Fatalf("RankedLoads = %v", ranked)
		}
	}
	// The original slice must be untouched.
	if r.PeerLoads[0] != 5 {
		t.Fatal("RankedLoads mutated PeerLoads")
	}
	if r.TotalLoad() != 18 {
		t.Fatalf("TotalLoad = %d", r.TotalLoad())
	}
}

func TestParamsSeedSize(t *testing.T) {
	p := DefaultParams()
	tests := []struct {
		network, cacheSize, seedSize, want int
	}{
		{1000, 100, 0, 10},  // default: network/100
		{50, 100, 0, 1},     // floor of 1
		{1000, 5, 0, 5},     // capped by cache size
		{1000, 100, 42, 42}, // explicit
		{10, 100, 42, 9},    // capped by network-1
	}
	for _, tt := range tests {
		p.NetworkSize = tt.network
		p.CacheSize = tt.cacheSize
		p.CacheSeedSize = tt.seedSize
		if got := p.seedSize(); got != tt.want {
			t.Errorf("seedSize(net=%d cache=%d seed=%d) = %d, want %d",
				tt.network, tt.cacheSize, tt.seedSize, got, tt.want)
		}
	}
}

func TestParamsBadAndSelfishCounts(t *testing.T) {
	p := DefaultParams()
	p.NetworkSize = 1000
	p.PercentBadPeers = 15
	p.PercentSelfishPeers = 10
	if got := p.numBadPeers(); got != 150 {
		t.Fatalf("numBadPeers = %d", got)
	}
	if got := p.numSelfishPeers(); got != 100 {
		t.Fatalf("numSelfishPeers = %d", got)
	}
}
