package orchestrate

// Shared result caches keyed by a point's content address
// (experiments.Point.Key — family discriminator plus sha256 params
// digest). Determinism makes cached results exact: two points with the
// same key produce identical results, so a cache hit is never an
// approximation. The disk cache persists across runs, which is how a
// re-run sweep (or a crashed-and-restarted one) skips every point a
// prior run already computed.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/experiments"
)

// Cache shares computed point results. Get reports a hit only for a
// complete, valid result; Put is best-effort (a cache is an
// optimization, and a failed Put must not fail the sweep).
// Implementations must be safe for concurrent use.
type Cache interface {
	Get(key string) (experiments.PointResult, bool)
	Put(key string, pr experiments.PointResult)
}

// MemoryCache is an in-process Cache.
type MemoryCache struct {
	mu sync.RWMutex
	m  map[string]experiments.PointResult
}

// NewMemoryCache returns an empty in-process cache.
func NewMemoryCache() *MemoryCache {
	return &MemoryCache{m: make(map[string]experiments.PointResult)}
}

// Get implements Cache.
func (c *MemoryCache) Get(key string) (experiments.PointResult, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pr, ok := c.m[key]
	return pr, ok
}

// Put implements Cache.
func (c *MemoryCache) Put(key string, pr experiments.PointResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = pr
}

// Len returns the number of cached results.
func (c *MemoryCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// DiskCache is a Cache backed by one JSON file per point under a
// directory. Writes go through a temp file and rename, so a crash
// mid-Put can leave a stray temp file but never a truncated entry; a
// file that fails to read, parse, or validate is treated as a miss.
type DiskCache struct {
	dir string
}

// NewDiskCache opens (creating if needed) a disk cache rooted at dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("orchestrate: disk cache: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// path maps a content-address key to a file name. Keys have the shape
// family:hexdigest; anything else is rejected so a hostile or corrupt
// key can never become a path escape.
func (c *DiskCache) path(key string) (string, bool) {
	fam, digest, ok := strings.Cut(key, ":")
	if !ok || fam == "" || digest == "" {
		return "", false
	}
	for _, r := range fam + digest {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
		default:
			return "", false
		}
	}
	return filepath.Join(c.dir, fam+"_"+digest+".json"), true
}

// Get implements Cache.
func (c *DiskCache) Get(key string) (experiments.PointResult, bool) {
	p, ok := c.path(key)
	if !ok {
		return experiments.PointResult{}, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return experiments.PointResult{}, false
	}
	var pr experiments.PointResult
	if err := json.Unmarshal(data, &pr); err != nil {
		return experiments.PointResult{}, false
	}
	if err := pr.Validate(); err != nil {
		return experiments.PointResult{}, false
	}
	return pr, true
}

// Put implements Cache. Errors are swallowed: an unwritable cache
// degrades to recomputation, never to a failed sweep.
func (c *DiskCache) Put(key string, pr experiments.PointResult) {
	p, ok := c.path(key)
	if !ok {
		return
	}
	data, err := json.Marshal(pr)
	if err != nil {
		return
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
	}
}
