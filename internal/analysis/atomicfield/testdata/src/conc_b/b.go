// Package cluster poses as repro/node/cluster: the plain half of a
// cross-package mixed access. The inventory built from the whole
// program catches the read even though the atomic update lives in
// another package.
package cluster

import "repro/node"

// Leak reads a field the node package maintains atomically.
func Leak(s *node.Stats) int64 {
	return s.Dropped // want `accessed with sync/atomic .* but read/written plainly here`
}
