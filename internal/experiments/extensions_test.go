package experiments

import (
	"strconv"
	"testing"
)

func TestRunExtAdaptive(t *testing.T) {
	skipHeavy(t)
	res, err := Run("ext-adaptive", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "ext-adaptive", res)
	rows := res.Tables[0].Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 modes", len(rows))
	}
	// The adaptive mode's response time must beat the serial spec.
	serial, err := strconv.ParseFloat(rows[0][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := strconv.ParseFloat(rows[3][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive >= serial {
		t.Fatalf("adaptive response time %v not below serial %v", adaptive, serial)
	}
}

func TestRunExtSelfish(t *testing.T) {
	skipHeavy(t)
	res, err := Run("ext-selfish", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "ext-selfish", res)
	if got := len(res.Tables[0].Rows()); got != 6 {
		t.Fatalf("rows = %d, want 6", got)
	}
}

func TestRunExtDetection(t *testing.T) {
	skipHeavy(t)
	res, err := Run("ext-detection", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "ext-detection", res)
	rows := res.Tables[0].Rows()
	// Detection rows must actually blacklist someone at the highest
	// malicious fraction.
	last := rows[len(rows)-1]
	blacklisted, err := strconv.ParseFloat(last[5], 64)
	if err != nil {
		t.Fatal(err)
	}
	if last[0] != "true" || blacklisted == 0 {
		t.Fatalf("no blacklisting in detection rows: %v", rows)
	}
}

func TestRunAblations(t *testing.T) {
	skipHeavy(t)
	for _, id := range []string{"abl-pongsize", "abl-introprob"} {
		res, err := Run(id, quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, id, res)
		if res.Tables[0].NumRows() != 5 {
			t.Fatalf("%s rows = %d, want 5", id, res.Tables[0].NumRows())
		}
	}
}

func TestReplicationsPoolRuns(t *testing.T) {
	skipHeavy(t)
	single, err := Run("abl-pongsize", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	opts.Replications = 2
	pooled, err := Run("abl-pongsize", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Same sweep shape, but independent pooled data.
	if pooled.Tables[0].NumRows() != single.Tables[0].NumRows() {
		t.Fatal("replications changed row count")
	}
}

// TestReplicationsPoolShort drives the replication worker pool through
// the cheapest experiment so `go test -race -short` still exercises
// the pooled fan-out path.
func TestReplicationsPoolShort(t *testing.T) {
	opts := quickOpts()
	opts.Replications = 2
	res, err := Run("fig8", opts)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig8", res)
}
