// Cache poisoning: reproduce the paper's Section 6.4 attack study in
// miniature. Malicious peers answer probes with corrupt pongs — either
// fabricated dead addresses or (colluding) each other's addresses —
// and we watch how each policy family holds up as the malicious
// fraction grows.
//
//	go run ./examples/poisoning
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	guess "repro"
)

func main() {
	type cell struct {
		unsat       float64
		goodEntries float64
	}
	policies := []guess.Selection{guess.Random, guess.MR, guess.MRStar, guess.MFS}
	fractions := []float64{0, 10, 20}
	behaviors := []guess.BadPongBehavior{guess.BadPongDead, guess.BadPongBad}

	results := make(map[guess.BadPongBehavior]map[guess.Selection]map[float64]cell)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, len(policies)*len(fractions)*len(behaviors))

	for _, behavior := range behaviors {
		results[behavior] = make(map[guess.Selection]map[float64]cell)
		for _, pol := range policies {
			results[behavior][pol] = make(map[float64]cell)
			for _, frac := range fractions {
				wg.Add(1)
				go func(behavior guess.BadPongBehavior, pol guess.Selection, frac float64) {
					defer wg.Done()
					cfg := guess.DefaultConfig()
					cfg.NetworkSize = 400
					cfg.WarmupTime = 200
					cfg.MeasureTime = 600
					cfg.QueryRate *= 2
					cfg.QueryProbe = pol
					cfg.QueryPong = pol
					cfg.CacheReplacement = guess.EvictionFor(pol)
					cfg.PercentBadPeers = frac
					cfg.BadPong = behavior
					res, err := guess.Run(context.Background(), cfg)
					if err != nil {
						errCh <- err
						return
					}
					mu.Lock()
					results[behavior][pol][frac] = cell{
						unsat:       res.UnsatisfactionWithAborted(),
						goodEntries: res.AvgGoodEntries,
					}
					mu.Unlock()
				}(behavior, pol, frac)
			}
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		log.Fatal(err)
	}

	for _, behavior := range behaviors {
		attack := "non-colluding (dead addresses)"
		if behavior == guess.BadPongBad {
			attack = "colluding (each other's addresses)"
		}
		fmt.Printf("\nAttack: %s\n", attack)
		fmt.Printf("%-8s", "policy")
		for _, f := range fractions {
			fmt.Printf("  %12s", fmt.Sprintf("%g%% bad", f))
		}
		fmt.Println("   (unsatisfied queries / good cache entries)")
		for _, pol := range policies {
			fmt.Printf("%-8s", pol)
			for _, f := range fractions {
				c := results[behavior][pol][f]
				fmt.Printf("  %5.1f%%/%5.1f", 100*c.unsat, c.goodEntries)
			}
			fmt.Println()
		}
	}

	fmt.Println(`
Reading the table: MFS collapses under both attacks (it trusts the
NumFiles field, so liars stay in caches and keep poisoning them). MR
survives the dead-address attack (liars return no results and get
evicted) but falls to collusion. MR* — trusting only first-hand
experience — stays robust in both, at a modest efficiency cost.`)
}
