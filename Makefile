# Convenience targets for the GUESS reproduction.

GO ?= go

.PHONY: all build vet lint vuln test test-short test-chaos race fuzz-smoke bench bench-smoke bench-json bench-check cover-check obs-smoke sweep-smoke cluster-smoke experiments-quick experiments-full clean

all: build vet lint test fuzz-smoke bench-smoke obs-smoke sweep-smoke cluster-smoke

# The packages with hot-path microbenchmarks (b.ReportAllocs); see also
# the top-level BenchmarkSingleRun in bench_test.go.
BENCH_PKGS = ./internal/eventq ./internal/cache ./internal/policy ./internal/core

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Pinned so CI lint runs are reproducible; bump deliberately, together
# with any new-check fallout, not as a side effect of a CI image change.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

# The determinism/observability/concurrency linter (see README "Static
# analysis"): the guess-lint multichecker (detrand, maporder, rngstream,
# obsname, atomicfield, lockguard, goroexit, wirebound, plus the stale-
# suppression sweep) over every package, then staticcheck when
# available. staticcheck is skipped gracefully on machines without it
# (it is a module dependency this stdlib-only repo does not vendor); CI
# installs the pinned version so the full gate always runs there.
lint:
	$(GO) build -o /tmp/guess-lint ./cmd/guess-lint
	/tmp/guess-lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
	  staticcheck ./...; \
	else \
	  echo "lint: staticcheck not installed; skipping (CI pins staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# Known-vulnerability scan. Non-blocking in CI (advisories in the Go
# toolchain itself would otherwise fail builds we cannot fix here), and
# skipped gracefully where govulncheck is not installed.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
	  govulncheck ./...; \
	else \
	  echo "vuln: govulncheck not installed; skipping (CI pins govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The chaos battery: scripted network-fault scenarios on node/memnet.
# -count=2 replays every scenario to catch nondeterminism; -race
# because the scenarios hammer the node's concurrency.
test-chaos:
	$(GO) test -race -count=2 -run Chaos ./node

# Race-detect the goroutine-spawning packages (live node, experiment
# harness, sweep orchestration, protocol substrates, sharded engine).
# -short keeps the experiment sweeps to the cheap ones — the race
# detector's ~20x slowdown would push the full battery past the default
# test timeout — while still covering the worker-pool fan-out. The core
# leg runs the shard-count invariance suite plus the parallel
# sample/WCC scan tests: the engine's worker goroutines only exist at
# Shards>1, and these are the tests that drive them.
race:
	$(GO) test -race -short -timeout 15m ./node/... ./internal/experiments \
	  ./internal/gossip ./internal/dht ./internal/orchestrate
	$(GO) test -race -short -timeout 15m \
	  -run 'TestShardCountInvariance|TestLargestWCCParallelMatchesSerial|TestRenewMatchesFresh|TestShardedLargeRunSmoke' \
	  ./internal/core

# Ten seconds of coverage-guided fuzzing each over the wire decoder,
# the stream framing, the snapshot decoder, and the gossip/DHT
# parameter spaces: cheap insurance that no datagram, frame, or
# snapshot can panic a live node and no parameter corner breaks the
# substrate engines' conservation invariants or determinism.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=10s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzFrameDecode -fuzztime=10s ./internal/frame
	$(GO) test -run='^$$' -fuzz=FuzzSnapshotDecode -fuzztime=10s ./node
	$(GO) test -run='^$$' -fuzz=FuzzStateSyncDecode -fuzztime=10s ./node/cluster
	$(GO) test -run='^$$' -fuzz=FuzzGossipParams -fuzztime=10s ./internal/gossip
	$(GO) test -run='^$$' -fuzz=FuzzDHTLookup -fuzztime=10s ./internal/dht

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of the headline benchmarks (the default-config run and
# the 100k-peer scaling run, serial and sharded) plus the hot-path
# microbenchmarks: catches benchmark bit-rot and allocation regressions
# on every `make all`.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSingleRun$$|BenchmarkLargeRun' -benchmem -benchtime 1x -timeout 30m .
	$(GO) test -run '^$$' -bench . -benchtime 1x $(BENCH_PKGS)

# Record a benchmark trajectory point: the headline simulation
# benchmark and the hot-path microbenchmarks, parsed into
# BENCH_<date>.json for cross-commit comparison (see README.md,
# "Profiling and benchmarking").
bench-json:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	{ $(GO) test -run '^$$' -bench 'BenchmarkSingleRun$$' -benchmem -benchtime 5x . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkLargeRun' -benchmem -benchtime 1x -timeout 30m . && \
	  $(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS); } \
	  | tee /dev/stderr | /tmp/benchjson -o BENCH_$$(date +%Y%m%d).json
	@echo wrote BENCH_$$(date +%Y%m%d).json

# Compare fresh headline benchmarks against the recorded trajectory
# point: fails if allocs/op (iteration-exact, machine-independent)
# grows past 110% of the baseline for either the default-config run or
# the 100k-peer scaling run. Override with
# `make bench-check BENCH_BASELINE=BENCH_<date>.json`.
BENCH_BASELINE ?= BENCH_20260808.json
bench-check:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	{ $(GO) test -run '^$$' -bench 'BenchmarkSingleRun$$' -benchmem -benchtime 3x . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkLargeRun/shards=1' -benchmem -benchtime 1x -timeout 30m .; } \
	  | tee /dev/stderr \
	  | /tmp/benchjson -check $(BENCH_BASELINE) \
	      -benchmark 'BenchmarkSingleRun,BenchmarkLargeRun/shards=1'

# End-to-end smoke of the observability endpoints: start a live node
# with -metrics, scrape /metrics and /metrics.json, and validate the
# exposition carries the guess_node_* instrument set.
obs-smoke:
	$(GO) build -o /tmp/guess-node ./cmd/guess-node
	@/tmp/guess-node -listen 127.0.0.1:0 -metrics 127.0.0.1:9464 -files smoke.mp3 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null' EXIT; \
	ok=; for i in 1 2 3 4 5 6 7 8 9 10; do \
	  curl -fsS http://127.0.0.1:9464/metrics >/tmp/obs-smoke.prom 2>/dev/null && ok=1 && break; \
	  sleep 0.3; \
	done; \
	[ -n "$$ok" ] || { echo "obs-smoke: /metrics never came up" >&2; exit 1; }; \
	grep -q '^# TYPE guess_node_pings_sent_total counter' /tmp/obs-smoke.prom || \
	  { echo "obs-smoke: missing guess_node_pings_sent_total TYPE line" >&2; exit 1; }; \
	grep -q '^guess_node_rtt_seconds_bucket{le="+Inf"} ' /tmp/obs-smoke.prom || \
	  { echo "obs-smoke: missing guess_node_rtt_seconds +Inf bucket" >&2; exit 1; }; \
	curl -fsS http://127.0.0.1:9464/metrics.json | grep -q '"guess_node_cache_entries"' || \
	  { echo "obs-smoke: /metrics.json missing guess_node_cache_entries" >&2; exit 1; }; \
	curl -fsS http://127.0.0.1:9464/healthz | grep -q '"status":"ok"' || \
	  { echo "obs-smoke: /healthz not ok" >&2; exit 1; }; \
	echo "obs-smoke: /metrics, /metrics.json and /healthz OK"

# End-to-end smoke of distributed sweep orchestration: a 2-worker
# in-process pool (coordinator + workers over the full wire protocol)
# must render every smoke experiment byte-identical to the
# single-process path.
sweep-smoke:
	$(GO) build -o /tmp/guess-sweep ./cmd/guess-sweep
	/tmp/guess-sweep -smoke

# End-to-end smoke of cluster-wide fair admission: a 3-node memnet
# cluster synced to the shed-state service, driven through a scripted
# service outage — every node must degrade to local-only shedding
# (fallback counters move) and re-converge when the service returns.
cluster-smoke:
	$(GO) build -o /tmp/guess-cluster ./cmd/guess-cluster
	/tmp/guess-cluster -smoke

# Coverage gate for the protocol substrates and the experiment
# harness: the cross-protocol property suite only means something
# while it actually exercises the engines, so the covered-statement
# ratio of each gated package must stay at or above COVER_MIN.
COVER_PKGS = ./internal/gossip ./internal/dht ./internal/experiments
COVER_MIN ?= 80
cover-check:
	$(GO) test -coverprofile=/tmp/cover-check.out $(COVER_PKGS)
	@awk -F: 'NR>1 { split($$NF, f, " "); pkg=$$1; sub(/\/[^\/]*\.go$$/, "", pkg); \
	    tot[pkg]+=f[2]; if (f[3]>0) cov[pkg]+=f[2] } \
	  END { bad=0; for (p in tot) { pct=100*cov[p]/tot[p]; \
	    printf "cover-check: %-28s %5.1f%% (min $(COVER_MIN)%%)\n", p, pct; \
	    if (pct < $(COVER_MIN)) bad=1 } \
	    if (bad) print "cover-check: FAIL: package below $(COVER_MIN)% statement coverage"; \
	    exit bad }' /tmp/cover-check.out

# Regenerate every paper table/figure quickly (small networks).
experiments-quick:
	$(GO) run ./cmd/guess-experiments -experiment all -scale quick

# Paper-scale regeneration; writes CSVs under results/full.
experiments-full:
	$(GO) run ./cmd/guess-experiments -experiment all -scale full -csv results/full

clean:
	rm -rf results
