package core

// White-box tests of engine internals that do not need a full
// simulation run: pong construction, introduction, sampling, and the
// malicious pong fabrication paths.

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
)

// newBootstrapped builds an engine with the initial population in
// place but no events processed.
func newBootstrapped(t *testing.T, mutate func(*Params)) *Engine {
	t.Helper()
	p := quickParams()
	if mutate != nil {
		mutate(&p)
	}
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	e.bootstrap()
	return e
}

func TestBootstrapSeedsCaches(t *testing.T) {
	e := newBootstrapped(t, nil)
	if len(e.alive) != e.p.NetworkSize {
		t.Fatalf("alive = %d", len(e.alive))
	}
	want := e.p.seedSize()
	for _, p := range e.alive {
		if p.link.Len() == 0 || p.link.Len() > want {
			t.Fatalf("peer %d seeded with %d entries, want 1..%d", p.id, p.link.Len(), want)
		}
		if p.link.Has(p.id) {
			t.Fatalf("peer %d has itself in its cache", p.id)
		}
		for _, entry := range p.link.Entries() {
			target, ok := e.peers[entry.Addr]
			if !ok {
				t.Fatalf("seeded entry points at nonexistent peer %d", entry.Addr)
			}
			if entry.NumFiles != target.advertisedFiles {
				t.Fatalf("seed entry NumFiles %d != advertised %d", entry.NumFiles, target.advertisedFiles)
			}
		}
	}
}

func TestSamplePeersDistinctAndExcluding(t *testing.T) {
	e := newBootstrapped(t, nil)
	exclude := e.alive[0].id
	for trial := 0; trial < 50; trial++ {
		idx := e.samplePeers(e.rngSeeding, 10, exclude)
		seen := make(map[int]bool)
		for _, i := range idx {
			if seen[i] {
				t.Fatal("duplicate index sampled")
			}
			seen[i] = true
			if e.alive[i].id == exclude {
				t.Fatal("excluded peer sampled")
			}
		}
	}
}

func TestBuildPongHonest(t *testing.T) {
	e := newBootstrapped(t, nil)
	host := e.alive[0]
	pong := e.buildPong(host, policy.SelRandom)
	if len(pong) == 0 || len(pong) > e.p.PongSize {
		t.Fatalf("pong size %d", len(pong))
	}
	for _, entry := range pong {
		if !host.link.Has(entry.Addr) {
			t.Fatal("pong entry not from host's cache")
		}
	}
}

func TestBuildPongMFSPicksTop(t *testing.T) {
	e := newBootstrapped(t, nil)
	host := e.alive[0]
	pong := e.buildPong(host, policy.SelMFS)
	// The pong must contain the cache's maximum-NumFiles entry.
	var maxFiles int32
	for _, entry := range host.link.Entries() {
		if entry.NumFiles > maxFiles {
			maxFiles = entry.NumFiles
		}
	}
	found := false
	for _, entry := range pong {
		if entry.NumFiles == maxFiles {
			found = true
		}
	}
	if !found {
		t.Fatalf("MFS pong lacks the richest entry (%d files)", maxFiles)
	}
}

func TestBuildBadPongDead(t *testing.T) {
	e := newBootstrapped(t, func(p *Params) {
		p.PercentBadPeers = 10
		p.BadPong = BadPongDead
	})
	if len(e.bad) == 0 {
		t.Fatal("no malicious peers")
	}
	host := e.bad[0]
	pong := e.buildPong(host, policy.SelRandom)
	if len(pong) != e.p.PongSize {
		t.Fatalf("bad pong size %d", len(pong))
	}
	for _, entry := range pong {
		if entry.Addr < fakeAddrBase {
			t.Fatalf("dead pong entry %d is a real address", entry.Addr)
		}
		if _, alive := e.peers[entry.Addr]; alive {
			t.Fatal("fabricated address is alive")
		}
		if entry.NumFiles != e.lieFiles {
			t.Fatalf("fabricated entry not attractive under MFS: %+v", entry)
		}
		if entry.NumRes != 0 {
			t.Fatalf("fabricated stranger carries a NumRes lie: %+v", entry)
		}
	}
}

func TestBuildBadPongColluding(t *testing.T) {
	e := newBootstrapped(t, func(p *Params) {
		p.PercentBadPeers = 10
		p.BadPong = BadPongBad
	})
	host := e.bad[0]
	pong := e.buildPong(host, policy.SelRandom)
	if len(pong) != e.p.PongSize {
		t.Fatalf("colluding pong size %d", len(pong))
	}
	for _, entry := range pong {
		target, alive := e.peers[entry.Addr]
		if !alive || !target.malicious {
			t.Fatalf("colluding pong entry %d not a live malicious peer", entry.Addr)
		}
		if entry.Addr == host.id {
			t.Fatal("colluder advertised itself")
		}
	}
}

func TestBuildBadPongColludingAloneFallsBackToDead(t *testing.T) {
	e := newBootstrapped(t, func(p *Params) {
		p.NetworkSize = 300 // ensure exactly one bad peer is possible
		p.PercentBadPeers = 0.4
		p.BadPong = BadPongBad
	})
	if len(e.bad) != 1 {
		t.Fatalf("want exactly 1 bad peer, got %d", len(e.bad))
	}
	pong := e.buildPong(e.bad[0], policy.SelRandom)
	for _, entry := range pong {
		if entry.Addr < fakeAddrBase {
			t.Fatal("lone colluder should fabricate dead addresses")
		}
	}
}

func TestMaybeIntroduceAlwaysAndNever(t *testing.T) {
	e := newBootstrapped(t, func(p *Params) { p.IntroProb = 1 })
	host, guest := e.alive[0], e.alive[1]
	host.link = cache.NewLinkCache(e.p.CacheSize) // empty it
	e.maybeIntroduce(host, guest)
	if !host.link.Has(guest.id) {
		t.Fatal("IntroProb=1 did not introduce")
	}

	e2 := newBootstrapped(t, func(p *Params) { p.IntroProb = 0 })
	host2, guest2 := e2.alive[0], e2.alive[1]
	host2.link = cache.NewLinkCache(e2.p.CacheSize)
	e2.maybeIntroduce(host2, guest2)
	if host2.link.Len() != 0 {
		t.Fatal("IntroProb=0 introduced")
	}
}

func TestAcceptPongRules(t *testing.T) {
	e := newBootstrapped(t, func(p *Params) { p.ResetNumResults = true })
	receiver := e.alive[0]
	receiver.link = cache.NewLinkCache(e.p.CacheSize)
	source := e.alive[1]
	pong := []cache.Entry{
		{Addr: receiver.id, NumFiles: 9},               // self: skipped
		{Addr: e.alive[2].id, NumRes: 7, Direct: true}, // NumRes zeroed, Direct cleared
	}
	e.acceptPong(receiver, source, pong)
	if receiver.link.Has(receiver.id) {
		t.Fatal("accepted own address")
	}
	got, ok := receiver.link.Get(e.alive[2].id)
	if !ok {
		t.Fatal("entry not accepted")
	}
	if got.NumRes != 0 || got.Direct {
		t.Fatalf("ResetNumResults/Direct rules violated: %+v", got)
	}
}

func TestLargestWCCOnFreshNetwork(t *testing.T) {
	e := newBootstrapped(t, nil)
	wcc := e.largestWCC()
	// Seeded random caches of ~4 entries connect essentially everyone.
	if wcc < e.p.NetworkSize*9/10 {
		t.Fatalf("fresh overlay fragmented: WCC=%d of %d", wcc, e.p.NetworkSize)
	}
}

func TestQueryAddCandidateDedups(t *testing.T) {
	q := &query{
		sel:     policy.NewSelector(policy.SelMFS, nil),
		seen:    make(map[cache.PeerID]uint64),
		seenGen: 1,
	}
	e := cache.Entry{Addr: 5, NumFiles: 3}
	if !q.addCandidate(e) {
		t.Fatal("first add rejected")
	}
	if q.addCandidate(e) {
		t.Fatal("duplicate accepted")
	}
	if q.sel.Len() != 1 {
		t.Fatalf("selector len %d", q.sel.Len())
	}
}
