package detrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detrand"
)

// TestFindings checks that wall-clock reads, global math/rand draws,
// and crypto/rand uses are flagged inside a deterministic package, and
// that reasoned //lint:wallclock-ok suppressions (and only reasoned
// ones) silence them.
func TestFindings(t *testing.T) {
	analysistest.Run(t, "testdata/src/det", "repro/internal/policy", detrand.Analyzer)
}

// TestExemptPackage checks that the live node's import path is out of
// scope: wall time is legitimate there.
func TestExemptPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/exempt", "repro/node", detrand.Analyzer)
}
