package report

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (x, y) points for charting.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders one or more series as a fixed-size ASCII scatter/line
// chart — enough to eyeball the shape of a figure in a terminal.
type Chart struct {
	Title         string
	XLabel        string
	YLabel        string
	Width, Height int
	LogX          bool
	series        []Series
}

// NewChart creates a chart with sensible terminal dimensions.
func NewChart(title, xLabel, yLabel string) *Chart {
	return &Chart{Title: title, XLabel: xLabel, YLabel: yLabel, Width: 64, Height: 16}
}

// Add appends a series. X and Y must have equal lengths.
func (c *Chart) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q has %d x and %d y values", s.Name, len(s.X), len(s.Y))
	}
	c.series = append(c.series, s)
	return nil
}

// markers label each series' points in drawing order.
var markers = []byte{'o', 'x', '+', '*', '#', '@', '%', '&'}

// String renders the chart.
func (c *Chart) String() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range c.series {
		for i := range s.X {
			x := c.xVal(s.X[i])
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			total++
		}
	}
	if total == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if minY > 0 && minY < maxY {
		minY = 0 // anchor at zero for honest proportions when possible
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, c.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", c.Width))
	}
	for si, s := range c.series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int((c.xVal(s.X[i]) - minX) / (maxX - minX) * float64(c.Width-1))
			row := c.Height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(c.Height-1))
			grid[row][col] = m
		}
	}
	fmt.Fprintf(&b, "%12s\n", trimFloat(maxY))
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%12s %s\n", trimFloat(minY), strings.Repeat("-", c.Width))
	xNote := ""
	if c.LogX {
		xNote = " (log scale)"
	}
	fmt.Fprintf(&b, "%12s %s .. %s  %s%s\n", "", trimFloat(minX2(c, minX)), trimFloat(minX2(c, maxX)), c.XLabel, xNote)
	if c.YLabel != "" {
		fmt.Fprintf(&b, "y: %s\n", c.YLabel)
	}
	for si, s := range c.series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// xVal applies the x-axis transform.
func (c *Chart) xVal(x float64) float64 {
	if c.LogX {
		if x <= 0 {
			return 0
		}
		return math.Log10(x)
	}
	return x
}

// minX2 undoes the transform for axis labels.
func minX2(c *Chart, v float64) float64 {
	if c.LogX {
		return math.Pow(10, v)
	}
	return v
}
