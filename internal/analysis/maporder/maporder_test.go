package maporder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maporder"
)

// TestFindings checks that order-sensitive map iteration is flagged in
// a deterministic package while the blessed shapes — sorted-keys
// idiom, commutative accumulators, delete loops, reasoned
// annotations — pass.
func TestFindings(t *testing.T) {
	analysistest.Run(t, "testdata/src/det", "repro/internal/core", maporder.Analyzer)
}

// TestInterprocedural checks the laundering paths: maps.Keys
// iterators, slices.Collect, helper functions whose summaries return
// map order, labels in front of ranges, and taint stopped by a
// reasoned annotation at the source.
func TestInterprocedural(t *testing.T) {
	analysistest.Run(t, "testdata/src/inter", "repro/internal/core", maporder.Analyzer)
}

// TestExemptPackage checks that packages outside the deterministic set
// may iterate maps freely.
func TestExemptPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/exempt", "repro/internal/report", maporder.Analyzer)
}
