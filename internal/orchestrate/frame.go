package orchestrate

// The wire protocol: length-prefixed, checksummed JSON frames, using
// the shared internal/frame format (4-byte big-endian length, 4-byte
// CRC-32 IEEE, payload). JSON keeps the protocol debuggable and reuses
// the exact encodings that define the content addresses (a Point's
// wire form and its digest input are the same encoding); the CRC
// catches truncation and corruption before a frame can reach
// json.Unmarshal, and the length bound keeps a corrupt header from
// provoking a huge allocation.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/experiments"
	"repro/internal/frame"
	"repro/internal/obs"
)

// maxFramePayload bounds a frame payload. Results carry per-peer load
// slices, so frames scale with NetworkSize; 256 MiB accommodates the
// million-peer configurations with an order of magnitude to spare
// while still rejecting nonsense lengths from corrupt headers.
const maxFramePayload = 256 << 20

var (
	// ErrFrameCorrupt reports a frame whose payload does not match its
	// checksum.
	ErrFrameCorrupt = frame.ErrCorrupt
	// ErrFrameTooLarge reports a frame header declaring a payload over
	// the size bound.
	ErrFrameTooLarge = frame.ErrTooLarge
)

// writeFrame writes one frame in the shared internal/frame format.
func writeFrame(w io.Writer, payload []byte) error {
	return frame.Write(w, payload, maxFramePayload)
}

// readFrame reads one frame and verifies its checksum. A short read
// mid-frame surfaces as io.ErrUnexpectedEOF; a clean EOF before any
// header byte surfaces as io.EOF, so callers can tell a closed peer
// from a truncated frame.
func readFrame(r io.Reader) ([]byte, error) {
	return frame.Read(r, maxFramePayload)
}

// msgType discriminates protocol messages.
type msgType string

const (
	// msgHello is the worker's first message: its name.
	msgHello msgType = "hello"
	// msgUnit carries a work unit, coordinator → worker.
	msgUnit msgType = "unit"
	// msgResult carries a completed unit, worker → coordinator.
	msgResult msgType = "result"
	// msgError reports a unit the worker could not execute.
	msgError msgType = "error"
)

// message is the protocol envelope; Type selects which fields are
// meaningful.
type message struct {
	Type   msgType     `json:"type"`
	Worker string      `json:"worker,omitempty"` // hello: worker name
	Unit   *workUnit   `json:"unit,omitempty"`   // unit
	Result *unitResult `json:"result,omitempty"` // result
	UnitID int         `json:"unit_id"`          // error: which unit failed
	Error  string      `json:"error,omitempty"`  // error: why
}

// workUnit is one dispatched sweep point. ID sequences units within a
// run; Key is the point's content address (experiments.Point.Key), the
// same sha256 params digest the in-process sweep memo uses, so the
// worker can verify the unit decoded intact and caches can share
// entries with local runs.
type workUnit struct {
	ID    int               `json:"id"`
	Key   string            `json:"key"`
	Point experiments.Point `json:"point"`
}

// unitResult is one completed unit. Metrics is the snapshot of the
// private registry the worker ran the unit against; the coordinator
// folds snapshots in unit order once the run completes.
type unitResult struct {
	ID      int                     `json:"id"`
	Key     string                  `json:"key"`
	Result  experiments.PointResult `json:"result"`
	Metrics *obs.Snapshot           `json:"metrics,omitempty"`
}

// sendMsg marshals and frames one message.
func sendMsg(w io.Writer, m message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("orchestrate: encode %s: %w", m.Type, err)
	}
	return writeFrame(w, payload)
}

// recvMsg reads and decodes one message, checking the envelope carries
// the payload its type requires.
func recvMsg(r io.Reader) (message, error) {
	payload, err := readFrame(r)
	if err != nil {
		return message{}, err
	}
	var m message
	if err := json.Unmarshal(payload, &m); err != nil {
		return message{}, fmt.Errorf("orchestrate: decode frame: %w", err)
	}
	switch m.Type {
	case msgHello:
		if m.Worker == "" {
			return message{}, errors.New("orchestrate: hello without a worker name")
		}
	case msgUnit:
		if m.Unit == nil {
			return message{}, errors.New("orchestrate: unit message without a unit")
		}
	case msgResult:
		if m.Result == nil {
			return message{}, errors.New("orchestrate: result message without a result")
		}
	case msgError:
		if m.Error == "" {
			return message{}, errors.New("orchestrate: error message without an error")
		}
	default:
		return message{}, fmt.Errorf("orchestrate: unknown message type %q", m.Type)
	}
	return m, nil
}
