package core

// The hot-path optimizations (pooled queries, generation-stamped seen
// sets, selection scratch, recycled link caches and libraries, buffered
// traces) must not change a single simulated outcome. These tests run
// every optimized path against the allocating reference implementation
// (noReuse mode, which routes through policy.PickN and fresh
// allocations exactly as the pre-optimization engine did) and demand
// byte-identical Results and traces.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/policy"
)

// reuseTestConfigs covers every optimized code path: random and scored
// pong selection, colluding/dead/genuine poisoning, backoff and probe
// refusal, connectivity sampling, the adaptive extensions, burst
// chaining through the query pool, and heavy churn recycling caches
// and libraries.
func reuseTestConfigs() map[string]Params {
	cfgs := map[string]Params{}
	base := quickParams()
	base.MeasureTime = 200 // keep the battery fast; coverage over duration

	cfgs["default"] = base

	p := base
	p.QueryProbe, p.QueryPong = policy.SelMFS, policy.SelMFS
	p.PingProbe, p.PingPong = policy.SelMRU, policy.SelLRU
	p.CacheReplacement = policy.EvLFS
	cfgs["scored"] = p

	p = base
	p.QueryProbe, p.QueryPong = policy.SelMR, policy.SelMRStar
	p.CacheReplacement = policy.EvLRStar
	p.ResetNumResults = true
	cfgs["mrstar"] = p

	p = base
	p.PercentBadPeers = 25
	p.BadPong = BadPongBad
	p.QueryProbe = policy.SelMR
	cfgs["collude"] = p

	p = base
	p.PercentBadPeers = 25
	p.BadPong = BadPongGood
	p.PoisonDetection = true
	cfgs["poison-detect"] = p

	p = base
	p.SampleConnectivity = true
	cfgs["connectivity"] = p

	p = base
	p.MaxProbesPerSecond = 3
	p.DoBackoff = true
	p.AdaptiveParallel = true
	p.AdaptivePing = true
	p.PercentSelfishPeers = 10
	cfgs["stressed"] = p

	p = base
	p.CacheSize = 8
	p.PongSize = 11 // pong larger than cache: PickN clamps
	cfgs["clamped-pong"] = p

	return cfgs
}

func runTraced(t *testing.T, p Params, noReuse bool) (string, string) {
	t.Helper()
	var trace strings.Builder
	p.Trace = &trace
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	e.noReuse = noReuse
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return marshalResults(t, res), trace.String()
}

// TestReusePathsMatchReference is the PR's central determinism
// guarantee: with pooling on and off, same Params must yield identical
// Results and byte-identical CSV traces.
func TestReusePathsMatchReference(t *testing.T) {
	//lint:maporder-ok subtests are independent; execution order does not affect any result
	for name, p := range reuseTestConfigs() {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				p.Seed = seed * 31
				refRes, refTrace := runTraced(t, p, true)
				gotRes, gotTrace := runTraced(t, p, false)
				if gotRes != refRes {
					t.Fatalf("seed %d: pooled Results diverged from reference:\n%s\n%s",
						p.Seed, gotRes, refRes)
				}
				if gotTrace != refTrace {
					l1, l2 := strings.Split(refTrace, "\n"), strings.Split(gotTrace, "\n")
					for i := 0; i < len(l1) && i < len(l2); i++ {
						if l1[i] != l2[i] {
							t.Fatalf("seed %d: trace diverged at line %d:\nref: %q\ngot: %q",
								p.Seed, i, l1[i], l2[i])
						}
					}
					t.Fatalf("seed %d: trace lengths diverged: %d vs %d lines", p.Seed, len(l1), len(l2))
				}
				if refTrace == "" {
					t.Fatal("empty trace; comparison is vacuous")
				}
			}
		})
	}
}

// TestAppendTraceRowMatchesFmt pins the buffered trace row to the
// fmt format string it replaced.
func TestAppendTraceRowMatchesFmt(t *testing.T) {
	e, err := New(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		now                    float64
		births, deaths, q, sat int
		probes                 int64
		avgHeld, avgLive       float64
	}{
		{0, 0, 0, 0, 0, 0, 0, 0},
		{100, 1, 2, 3, 4, 5, 6.125, 7.005},
		{4503.5, 120, 119, 88123, 87999, 912345678, 99.999, 0.004},
		{1e9, 1 << 30, 1, 1, 1, 1 << 40, 123456.789, 0.5},
	}
	for _, c := range cases {
		e.now = c.now
		e.res.Births, e.res.Deaths = c.births, c.deaths
		e.res.Queries, e.res.Satisfied = c.q, c.sat
		e.res.ProbesTotal = c.probes
		want := fmt.Sprintf("%.0f,%d,%d,%d,%d,%d,%.2f,%.2f\n",
			c.now, c.births, c.deaths, c.q, c.sat, c.probes, c.avgHeld, c.avgLive)
		got := string(e.appendTraceRow(nil, c.avgHeld, c.avgLive))
		if got != want {
			t.Fatalf("trace row mismatch:\ngot  %q\nwant %q", got, want)
		}
	}
}
