package core

import "sort"

// Results aggregates everything measured during a run's measurement
// window. Query counters cover queries that both started and completed
// inside the window; cache-health figures are averages over periodic
// samples.
type Results struct {
	// Queries is the number of completed, counted queries.
	Queries int
	// Satisfied and Unsatisfied partition Queries.
	Satisfied, Unsatisfied int
	// Aborted counts queries whose originator died mid-query or that
	// were still running when the simulation ended; they are excluded
	// from all per-query averages.
	Aborted int

	// Probe counters over counted queries. ProbesTotal =
	// GoodProbes + DeadProbes + RefusedProbes.
	ProbesTotal, GoodProbes, DeadProbes, RefusedProbes int64

	// ResponseTimeSum is the summed virtual seconds from query start to
	// completion over counted queries.
	ResponseTimeSum float64

	// Pings and PongEntriesReceived count maintenance traffic during
	// the measurement window (all peers).
	Pings, DeadPings int64

	// Cache health, averaged over samples and peers.
	AvgCacheEntries  float64 // entries held (live or dead)
	AvgLiveEntries   float64 // entries pointing at live peers
	AvgLiveFraction  float64 // per-peer live/held ratio (peers with entries)
	AvgGoodEntries   float64 // good peers' entries pointing at live good peers
	CacheSamples     int
	AvgLargestWCC    float64 // only when SampleConnectivity
	FinalLargestWCC  int     // only when SampleConnectivity
	ConnectivityRuns int     // number of connectivity samples taken

	// PeerLoads holds probes received (by live peers, including
	// refused) during the measurement window, one value per peer that
	// was alive at any point in it.
	PeerLoads []int64

	// Churn counters over the whole run.
	Births, Deaths int

	// BlacklistEvents counts poison-detection convictions (only with
	// the PoisonDetection extension enabled).
	BlacklistEvents int64

	// Interrupted reports that the run's context was cancelled before
	// the configured duration elapsed. The other fields still hold
	// everything measured up to the interruption point.
	Interrupted bool
}

// ProbesPerQuery returns the average number of probes per counted
// query (0 when no queries completed).
func (r *Results) ProbesPerQuery() float64 { return r.perQuery(float64(r.ProbesTotal)) }

// GoodProbesPerQuery returns the average probes answered by live peers.
func (r *Results) GoodProbesPerQuery() float64 { return r.perQuery(float64(r.GoodProbes)) }

// DeadProbesPerQuery returns the average probes wasted on dead
// addresses.
func (r *Results) DeadProbesPerQuery() float64 { return r.perQuery(float64(r.DeadProbes)) }

// RefusedProbesPerQuery returns the average probes refused by
// overloaded peers.
func (r *Results) RefusedProbesPerQuery() float64 { return r.perQuery(float64(r.RefusedProbes)) }

// Unsatisfaction returns the fraction of counted queries that did not
// reach NumDesiredResults.
func (r *Results) Unsatisfaction() float64 { return r.perQuery(float64(r.Unsatisfied)) }

// UnsatisfactionWithAborted additionally counts aborted queries
// (querier died mid-query, or the query outlived the run) as
// unsatisfied. This matches the paper's user-visible satisfaction
// metric: queries at very large cache sizes run for hundreds of
// simulated seconds, and their originators' deaths are a real failure
// mode of slow searches.
func (r *Results) UnsatisfactionWithAborted() float64 {
	total := r.Queries + r.Aborted
	if total == 0 {
		return 0
	}
	return float64(r.Unsatisfied+r.Aborted) / float64(total)
}

// AvgResponseTime returns the mean virtual seconds to complete a query.
func (r *Results) AvgResponseTime() float64 { return r.perQuery(r.ResponseTimeSum) }

func (r *Results) perQuery(v float64) float64 {
	if r.Queries == 0 {
		return 0
	}
	return v / float64(r.Queries)
}

// RankedLoads returns PeerLoads sorted in descending order (the
// Figure 13 presentation).
func (r *Results) RankedLoads() []int64 {
	out := append([]int64(nil), r.PeerLoads...)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// TotalLoad returns the sum of PeerLoads.
func (r *Results) TotalLoad() int64 {
	var sum int64
	for _, l := range r.PeerLoads {
		sum += l
	}
	return sum
}
