// Package policy implements the five policy families the paper
// identifies as decisive for GUESS performance:
//
//   - QueryProbe  — order in which cached peers are probed for a query
//   - QueryPong   — preference when building a pong answering a query
//   - PingProbe   — order in which cached peers are pinged
//   - PingPong    — preference when building a pong answering a ping
//   - CacheReplacement — which entry to evict from a full link cache
//
// The first four are Selection policies (Random, MRU, LRU, MFS, MR,
// MR*); CacheReplacement is an Eviction policy named, per the paper's
// convention, after what gets evicted (so evicting Least Files Shared
// retains the Most Files Shared, matching the MFS goal).
package policy

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/simrng"
)

// Selection orders cache entries for probing or pong construction.
type Selection int

// Selection policies from Section 4 of the paper.
const (
	// SelRandom selects uniformly at random; the fairness baseline.
	SelRandom Selection = iota + 1
	// SelMRU prefers the most recent timestamps (entries most likely
	// alive).
	SelMRU
	// SelLRU prefers the oldest timestamps (spreads load; risks dead
	// peers).
	SelLRU
	// SelMFS prefers entries advertising the most files shared.
	SelMFS
	// SelMR prefers entries with the most results returned historically.
	SelMR
	// SelMRStar is MR restricted to the owner's direct experience:
	// third-party NumRes values are distrusted (scored as zero).
	SelMRStar
)

var selectionNames = map[Selection]string{
	SelRandom: "Random",
	SelMRU:    "MRU",
	SelLRU:    "LRU",
	SelMFS:    "MFS",
	SelMR:     "MR",
	SelMRStar: "MR*",
}

// String returns the paper's abbreviation for the policy.
func (s Selection) String() string {
	if n, ok := selectionNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Selection(%d)", int(s))
}

// Valid reports whether s is a known selection policy.
func (s Selection) Valid() bool {
	_, ok := selectionNames[s]
	return ok
}

// ParseSelection resolves a policy name ("Random", "MRU", "LRU",
// "MFS", "MR", "MR*" — case-sensitive, as printed by String).
func ParseSelection(name string) (Selection, error) {
	//lint:maporder-ok policy names are unique, so at most one entry matches
	for s, n := range selectionNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown selection policy %q", name)
}

// MarshalText encodes the policy by name, so configurations serialize
// readably (JSON, flags, etc.).
func (s Selection) MarshalText() ([]byte, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("policy: cannot marshal invalid selection %d", int(s))
	}
	return []byte(s.String()), nil
}

// UnmarshalText decodes a policy name.
func (s *Selection) UnmarshalText(text []byte) error {
	parsed, err := ParseSelection(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// Score returns e's preference under s; higher scores are selected
// first. SelRandom has no score — callers must special-case it (Pick,
// PickN and Selector do).
func (s Selection) Score(e cache.Entry) float64 {
	switch s {
	case SelMRU:
		return e.TS
	case SelLRU:
		return -e.TS
	case SelMFS:
		return float64(e.NumFiles)
	case SelMR:
		return float64(e.NumRes)
	case SelMRStar:
		if !e.Direct {
			return 0
		}
		return float64(e.NumRes)
	default:
		return 0
	}
}

// Eviction chooses which entry a full link cache discards. Names follow
// the paper: the policy name says what gets evicted.
type Eviction int

// Cache replacement policies from Section 4 of the paper.
const (
	// EvRandom evicts a uniformly random entry (and may reject the
	// candidate instead, with equal probability mass).
	EvRandom Eviction = iota + 1
	// EvLRU evicts the least recently used entry, retaining recency
	// (the MRU goal).
	EvLRU
	// EvMRU evicts the most recently used entry, retaining stale
	// entries (the LRU fairness goal; shown by the paper to be harmful).
	EvMRU
	// EvLFS evicts the entry sharing the fewest files, retaining
	// file-rich peers (the MFS goal).
	EvLFS
	// EvLR evicts the entry with the fewest results, retaining
	// productive peers (the MR goal).
	EvLR
	// EvLRStar is EvLR on direct experience only (the MR* goal).
	EvLRStar
)

var evictionNames = map[Eviction]string{
	EvRandom: "Random",
	EvLRU:    "LRU",
	EvMRU:    "MRU",
	EvLFS:    "LFS",
	EvLR:     "LR",
	EvLRStar: "LR*",
}

// String returns the paper's abbreviation for the policy.
func (ev Eviction) String() string {
	if n, ok := evictionNames[ev]; ok {
		return n
	}
	return fmt.Sprintf("Eviction(%d)", int(ev))
}

// Valid reports whether ev is a known eviction policy.
func (ev Eviction) Valid() bool {
	_, ok := evictionNames[ev]
	return ok
}

// ParseEviction resolves an eviction policy name ("Random", "LRU",
// "MRU", "LFS", "LR", "LR*").
func ParseEviction(name string) (Eviction, error) {
	//lint:maporder-ok policy names are unique, so at most one entry matches
	for ev, n := range evictionNames {
		if n == name {
			return ev, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown eviction policy %q", name)
}

// MarshalText encodes the policy by name.
func (ev Eviction) MarshalText() ([]byte, error) {
	if !ev.Valid() {
		return nil, fmt.Errorf("policy: cannot marshal invalid eviction %d", int(ev))
	}
	return []byte(ev.String()), nil
}

// UnmarshalText decodes an eviction policy name.
func (ev *Eviction) UnmarshalText(text []byte) error {
	parsed, err := ParseEviction(string(text))
	if err != nil {
		return err
	}
	*ev = parsed
	return nil
}

// RetainScore returns how much ev wants to keep e; the eviction victim
// is the entry with the lowest retain score. EvRandom has no score and
// is special-cased by Insert.
func (ev Eviction) RetainScore(e cache.Entry) float64 {
	switch ev {
	case EvLRU:
		return e.TS // keep recent
	case EvMRU:
		return -e.TS // keep stale
	case EvLFS:
		return float64(e.NumFiles)
	case EvLR:
		return float64(e.NumRes)
	case EvLRStar:
		if !e.Direct {
			return 0
		}
		return float64(e.NumRes)
	default:
		return 0
	}
}

// EvictionFor returns the eviction policy that retains what sel
// prefers, i.e. the paper's "reversed criterion" pairing
// (MFS→LFS, MR→LR, MRU→LRU, LRU→MRU, MR*→LR*, Random→Random).
func EvictionFor(sel Selection) Eviction {
	switch sel {
	case SelMRU:
		return EvLRU
	case SelLRU:
		return EvMRU
	case SelMFS:
		return EvLFS
	case SelMR:
		return EvLR
	case SelMRStar:
		return EvLRStar
	default:
		return EvRandom
	}
}

// Pick returns the index of the best entry in entries under sel, or -1
// if entries is empty. SelRandom draws uniformly; scored policies take
// the highest score, breaking ties in favor of the lowest index (the
// scan order is itself deterministic, keeping runs reproducible).
func Pick(r *simrng.RNG, sel Selection, entries []cache.Entry) int {
	if len(entries) == 0 {
		return -1
	}
	if sel == SelRandom {
		return r.Intn(len(entries))
	}
	best := 0
	bestScore := sel.Score(entries[0])
	for i := 1; i < len(entries); i++ {
		if s := sel.Score(entries[i]); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// PickN returns the indices of up to n entries selected under sel: a
// uniform sample without replacement for SelRandom, the top n by score
// otherwise. The result length is min(n, len(entries)).
func PickN(r *simrng.RNG, sel Selection, entries []cache.Entry, n int) []int {
	if n <= 0 || len(entries) == 0 {
		return nil
	}
	if n > len(entries) {
		n = len(entries)
	}
	if sel == SelRandom {
		// Floyd's sampling: O(n) work and space in the sample size, not
		// the cache size — pongs are built on every probe, and caches
		// can be large.
		chosen := make(map[int]bool, n)
		out := make([]int, 0, n)
		for i := len(entries) - n; i < len(entries); i++ {
			j := r.Intn(i + 1)
			if chosen[j] {
				j = i
			}
			chosen[j] = true
			out = append(out, j)
		}
		return out
	}
	// n is small (PongSize is 5 by default); n selection passes over
	// the slice beat a full sort.
	chosen := make([]int, 0, n)
	taken := make([]bool, len(entries))
	for k := 0; k < n; k++ {
		best := -1
		bestScore := 0.0
		for i, e := range entries {
			if taken[i] {
				continue
			}
			if s := sel.Score(e); best == -1 || s > bestScore {
				best, bestScore = i, s
			}
		}
		taken[best] = true
		chosen = append(chosen, best)
	}
	return chosen
}

// Insert applies the CacheReplacement policy ev to place e into c.
// If the cache has room (or already holds e.Addr, in which case nothing
// happens), no eviction is needed. When full, the victim is chosen
// among the existing entries and the candidate itself: a candidate that
// scores no better than the worst resident is rejected rather than
// inserted (for EvRandom the candidate is rejected with probability
// 1/(len+1)). Insert reports whether e ended up in the cache.
func Insert(r *simrng.RNG, ev Eviction, c *cache.LinkCache, e cache.Entry) bool {
	if c.Has(e.Addr) {
		return false
	}
	if !c.Full() {
		return c.Add(e)
	}
	entries := c.Entries()
	if ev == EvRandom {
		victim := r.Intn(len(entries) + 1)
		if victim == len(entries) {
			return false // the candidate itself is the victim
		}
		c.ReplaceAt(victim, e)
		return true
	}
	worst := 0
	worstScore := ev.RetainScore(entries[0])
	for i := 1; i < len(entries); i++ {
		if s := ev.RetainScore(entries[i]); s < worstScore {
			worst, worstScore = i, s
		}
	}
	if ev.RetainScore(e) <= worstScore {
		return false // candidate is no better than the worst resident
	}
	c.ReplaceAt(worst, e)
	return true
}
