package obsname_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/obsname"
)

// TestFindings checks the metric-name contract against a fixture
// README: names must be literal, match the grammar, register once, and
// appear in the documentation tables; test files and reasoned
// annotations are exempt.
func TestFindings(t *testing.T) {
	analysistest.Run(t, "testdata/src/pkg", "repro/internal/obsfixture",
		obsname.New("testdata/README.md"))
}

// TestREADMECheckDisabled checks that "-" turns the documentation
// check off: the undocumented (but otherwise clean) names then pass.
func TestREADMECheckDisabled(t *testing.T) {
	analysistest.Run(t, "testdata/src/nodoc", "repro/internal/obsfixture",
		obsname.New("-"))
}
