package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTinySimulation(t *testing.T) {
	err := run([]string{
		"-network", "100", "-warmup", "20", "-measure", "80",
		"-query-rate", "0.05", "-query-pong", "MFS", "-cache-repl", "LFS",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadPolicy(t *testing.T) {
	if err := run([]string{"-query-probe", "Bogus"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := run([]string{"-cache-repl", "Bogus"}); err == nil {
		t.Fatal("bad eviction accepted")
	}
	if err := run([]string{"-bad-pong", "Bogus", "-bad", "5"}); err == nil {
		t.Fatal("bad pong behavior accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestDumpAndLoadConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")

	// Capture -dump-config output.
	old := os.Stdout
	f, err := os.Create(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	err = run([]string{"-dump-config", "-network", "123", "-query-pong", "MFS"})
	os.Stdout = old
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"NetworkSize": 123`) ||
		!strings.Contains(string(data), `"QueryPong": "MFS"`) {
		t.Fatalf("dumped config missing values:\n%s", data)
	}

	// Load it back, overriding one field, and re-dump.
	outPath := filepath.Join(dir, "out.json")
	f2, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f2
	err = run([]string{"-config", cfgPath, "-dump-config", "-cache", "44"})
	os.Stdout = old
	f2.Close()
	if err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"NetworkSize": 123`, `"QueryPong": "MFS"`, `"CacheSize": 44`} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("config round trip lost %s:\n%s", want, out)
		}
	}
}

func TestTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	err := run([]string{
		"-network", "100", "-warmup", "20", "-measure", "80",
		"-query-rate", "0.05", "-trace", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time,births") {
		t.Fatalf("trace file malformed:\n%s", data)
	}
}
