package core

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"repro/internal/cache"
	"repro/internal/content"
	"repro/internal/eventq"
	"repro/internal/lifetime"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/workload"
)

// fakeAddrBase is the start of the address range used for fabricated
// (never-live) addresses returned by malicious peers. Real peer IDs
// grow upward from 1 and can never reach it.
const fakeAddrBase cache.PeerID = 1 << 40

// event kinds dispatched by the simulation loop.
type evKind uint8

const (
	evDeath     evKind = iota + 1 // a peer's lifetime expires
	evPing                        // a peer's periodic cache-maintenance ping
	evBurst                       // a peer's next query burst arrives
	evProbeStep                   // a running query sends its next probe round
	evSample                      // periodic metrics sampling
)

// event is the tagged union stored in the event queue.
type event struct {
	kind evKind
	peer cache.PeerID // evDeath, evPing, evBurst
	q    *query       // evProbeStep
}

// Engine runs one GUESS simulation. Create with New, run with Run.
// An Engine is single-use and not safe for concurrent use; run many
// engines in parallel for sweeps.
type Engine struct {
	p        Params
	universe *content.Universe
	life     *lifetime.Model
	gen      *workload.Generator

	// Independent random streams so that, e.g., changing the policy's
	// consumption of randomness does not perturb churn.
	rngSeeding  *simrng.RNG // time-zero cache seeding, malicious assignment
	rngChurn    *simrng.RNG // lifetimes, friend choice
	rngContent  *simrng.RNG // libraries, query items
	rngWorkload *simrng.RNG // burst timing and sizes
	rngPolicy   *simrng.RNG // random policy picks, eviction
	rngIntro    *simrng.RNG // introduction coin flips

	now    float64
	end    float64
	events eventq.Queue[event]

	peers    map[cache.PeerID]*peer
	alive    []*peer
	bad      []*peer // live malicious peers (for colluding pongs)
	nextID   cache.PeerID
	nextFake cache.PeerID

	lieFiles int32 // NumFiles malicious peers advertise
	lieRes   int32 // NumRes malicious peers put in fabricated entries

	res   Results
	loads []int64

	inFlightCounted int

	// running sums for cache-health samples
	sumHeld, sumLive, sumLiveFrac, sumGood float64
	sumWCC                                 float64

	// trace state
	traceHeader bool
	traceErr    error

	// Observability (all optional; see SetObserver/SetMetrics/
	// SetProgress). observer receives trace events, met mirrors the
	// Results counters into a shared registry, progress gets one line
	// per sample. None of them consume randomness or alter control
	// flow, so attaching them leaves a seeded run byte-identical; with
	// all nil the instrumentation is a handful of predictable branches
	// (BenchmarkSingleRun pins the cost).
	observer    obs.Observer
	met         *obs.SimMetrics
	progress    io.Writer
	nextQueryID uint64

	// Reusable hot-path scratch. The simulation's steady state is one
	// pong build per ping/probe, one query start per burst slot, and one
	// connectivity sample per SampleInterval; each of these used to
	// allocate. The scratch below is draw-order-neutral by construction
	// (buffer reuse only, never a change in how randomness is consumed),
	// which the golden-trace test locks in.
	polScratch policy.Scratch // selection scratch for every PickN
	pongBuf    []cache.Entry  // pong under construction; consumed before the next build
	badBuf     []*peer        // colluder candidates for BadPongBad pongs
	wcc        overlay.WCCScratch
	traceBuf   []byte // one CSV row, rebuilt in place per sample

	// Free lists recycling the per-churn and per-query allocations:
	// dead peers donate their link cache and library storage to the
	// next birth, completed queries donate their selector and visited
	// set to the next query.
	freeQueries []*query
	freeCaches  []*cache.LinkCache
	freeLibs    []content.Library

	// noReuse (tests only) disables every recycling fast path above and
	// falls back to the allocating reference implementations, so
	// determinism tests can assert pooled and reference runs are
	// byte-identical.
	noReuse bool

	ran bool
}

// New validates params and builds an engine ready to Run.
func New(params Params) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	universe, err := content.New(params.Content)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	life, err := lifetime.New(params.LifespanMultiplier)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var gen *workload.Generator
	if params.QueriesEnabled {
		gen, err = workload.New(params.QueryRate)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	root := simrng.New(params.Seed)
	e := &Engine{
		p:           params,
		universe:    universe,
		life:        life,
		gen:         gen,
		rngSeeding:  root.Stream("seeding"),
		rngChurn:    root.Stream("churn"),
		rngContent:  root.Stream("content"),
		rngWorkload: root.Stream("workload"),
		rngPolicy:   root.Stream("policy"),
		rngIntro:    root.Stream("intro"),
		peers:       make(map[cache.PeerID]*peer, params.NetworkSize*2),
		alive:       make([]*peer, 0, params.NetworkSize),
		nextID:      1,
		nextFake:    fakeAddrBase,
		lieFiles:    int32(universe.MaxLibrary()),
		lieRes:      1000,
	}
	return e, nil
}

// SetObserver attaches an observer receiving lifecycle and query trace
// events. Must be called before Run. Observers attached to engines run
// in parallel (sweeps) must be safe for concurrent use.
func (e *Engine) SetObserver(o obs.Observer) { e.observer = o }

// SetMetrics attaches pre-resolved registry instruments that mirror the
// Results counters as the run progresses. Must be called before Run.
// Engines may share one SimMetrics; the counters then aggregate.
func (e *Engine) SetMetrics(m *obs.SimMetrics) { e.met = m }

// SetProgress attaches a writer receiving one short status line per
// sample interval. Must be called before Run. Write errors are
// ignored (progress is best-effort, unlike Params.Trace).
func (e *Engine) SetProgress(w io.Writer) { e.progress = w }

// ctxCheckInterval is how many events the loop processes between
// context checks: coarse enough to keep ctx.Err out of the hot path's
// profile, fine enough that cancellation lands within microseconds of
// simulated work.
const ctxCheckInterval = 512

// Run executes the simulation and returns its measurements. It can be
// called once. A nil ctx is treated as context.Background. When ctx is
// cancelled mid-run the loop stops at the next event-batch boundary and
// returns the partial Results accumulated so far with Interrupted set
// (and a nil error: partial measurements are still measurements).
func (e *Engine) Run(ctx context.Context) (*Results, error) {
	if e.ran {
		return nil, fmt.Errorf("core: engine already ran")
	}
	e.ran = true
	e.end = e.p.WarmupTime + e.p.MeasureTime

	e.bootstrap()
	e.events.Push(e.p.WarmupTime, event{kind: evSample})

	var processed uint64
	for {
		if ctx != nil && processed%ctxCheckInterval == 0 {
			if ctx.Err() != nil {
				e.res.Interrupted = true
				break
			}
		}
		processed++
		t, ev, ok := e.events.Pop()
		if !ok || t > e.end {
			break
		}
		e.now = t
		switch ev.kind {
		case evDeath:
			e.handleDeath(ev.peer)
		case evPing:
			e.handlePing(ev.peer)
		case evBurst:
			e.handleBurst(ev.peer)
		case evProbeStep:
			e.handleProbeStep(ev.q)
		case evSample:
			e.handleSample()
		default:
			return nil, fmt.Errorf("core: unknown event kind %d", ev.kind)
		}
	}
	e.finalize()
	if e.traceErr != nil {
		return nil, fmt.Errorf("core: trace writer: %w", e.traceErr)
	}
	return &e.res, nil
}

// bootstrap creates the initial population at time zero.
func (e *Engine) bootstrap() {
	n := e.p.NetworkSize
	numBad := e.p.numBadPeers()
	numSelfish := e.p.numSelfishPeers()
	// Uniformly choose disjoint malicious and selfish subsets.
	badSlot := make([]bool, n)
	selfishSlot := make([]bool, n)
	perm := e.rngSeeding.Perm(n)
	for i := 0; i < numBad; i++ {
		badSlot[perm[i]] = true
	}
	for i := numBad; i < numBad+numSelfish; i++ {
		selfishSlot[perm[i]] = true
	}
	for i := 0; i < n; i++ {
		e.spawnPeer(badSlot[i], selfishSlot[i])
	}
	// Seed link caches with live peers, as in the paper's time-zero
	// setup (entries carry the target's true file count).
	seed := e.p.seedSize()
	for _, p := range e.alive {
		for _, j := range e.samplePeers(e.rngSeeding, seed, p.id) {
			target := e.alive[j]
			p.link.Add(cache.Entry{
				Addr:     target.id,
				TS:       0,
				NumFiles: target.advertisedFiles,
			})
		}
	}
}

// samplePeers draws up to k distinct indices into e.alive, excluding
// the peer with the given id, via Floyd's sampling.
func (e *Engine) samplePeers(r *simrng.RNG, k int, exclude cache.PeerID) []int {
	n := len(e.alive)
	if k > n {
		k = n
	}
	chosen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for i := n - k; i < n; i++ {
		j := r.Intn(i + 1)
		if chosen[j] {
			j = i
		}
		chosen[j] = true
		if e.alive[j].id == exclude {
			continue
		}
		out = append(out, j)
	}
	return out
}

// spawnPeer creates a peer at the current time, registers it, and
// schedules its lifecycle events. Cache seeding is the caller's job.
func (e *Engine) spawnPeer(malicious, selfish bool) *peer {
	id := e.nextID
	e.nextID++
	libSize := e.universe.SampleLibrarySize(e.rngContent)
	var lib content.Library
	if n := len(e.freeLibs); libSize > 0 && n > 0 {
		lib = e.universe.NewLibraryInto(e.rngContent, libSize, e.freeLibs[n-1])
		e.freeLibs[n-1] = content.Library{}
		e.freeLibs = e.freeLibs[:n-1]
	} else {
		lib = e.universe.NewLibrary(e.rngContent, libSize)
	}
	var link *cache.LinkCache
	if n := len(e.freeCaches); n > 0 {
		link = e.freeCaches[n-1]
		e.freeCaches[n-1] = nil
		e.freeCaches = e.freeCaches[:n-1]
	} else {
		link = cache.NewLinkCache(e.p.CacheSize)
	}
	advertised := int32(lib.Size())
	if malicious {
		advertised = e.lieFiles
	}
	p := &peer{
		id:              id,
		born:            e.now,
		deathAt:         e.now + e.life.Sample(e.rngChurn),
		lib:             lib,
		advertisedFiles: advertised,
		malicious:       malicious,
		selfish:         selfish,
		link:            link,
		aliveIdx:        len(e.alive),
		winStart:        -1,
		pingInterval:    e.p.PingInterval,
	}
	e.peers[id] = p
	e.alive = append(e.alive, p)
	if malicious {
		e.bad = append(e.bad, p)
	}
	e.res.Births++
	if e.met != nil {
		e.met.Births.Inc()
	}
	if e.observer != nil {
		e.observer.Observe(obs.Event{Kind: obs.EvPeerBirth, Time: e.now, Peer: uint64(id)})
	}

	e.events.Push(p.deathAt, event{kind: evDeath, peer: id})
	e.events.Push(e.now+e.rngChurn.Float64()*p.pingInterval, event{kind: evPing, peer: id})
	if e.p.QueriesEnabled && !malicious {
		delay, _ := e.gen.NextBurst(e.rngWorkload)
		e.events.Push(e.now+delay, event{kind: evBurst, peer: id})
	}
	return p
}

// handleDeath removes a peer and spawns its replacement, keeping the
// live population (and the malicious fraction) constant.
func (e *Engine) handleDeath(id cache.PeerID) {
	p, ok := e.peers[id]
	if !ok {
		return
	}
	delete(e.peers, id)
	// Swap-remove from the alive slice.
	last := len(e.alive) - 1
	moved := e.alive[last]
	e.alive[p.aliveIdx] = moved
	moved.aliveIdx = p.aliveIdx
	e.alive = e.alive[:last]
	if p.malicious {
		for i, b := range e.bad {
			if b == p {
				e.bad[i] = e.bad[len(e.bad)-1]
				e.bad = e.bad[:len(e.bad)-1]
				break
			}
		}
	}
	e.res.Deaths++
	if e.met != nil {
		e.met.Deaths.Inc()
	}
	if e.observer != nil {
		e.observer.Observe(obs.Event{Kind: obs.EvPeerDeath, Time: e.now, Peer: uint64(id)})
	}
	if e.now >= e.p.WarmupTime {
		e.loads = append(e.loads, p.probesReceived)
	}

	// The dead peer is fully unlinked now; recycle its cache and
	// library storage for the replacement (nothing reads them again —
	// see the Entries aliasing audit in cache.LinkCache).
	if !e.noReuse {
		p.link.Clear()
		e.freeCaches = append(e.freeCaches, p.link)
		p.link = nil
		if p.lib.Size() > 0 {
			e.freeLibs = append(e.freeLibs, p.lib)
			p.lib = content.Library{}
		}
	}

	// Birth of the replacement, seeded by the random-friend policy:
	// the newborn copies the link cache of one live "friend" and also
	// remembers the friend itself.
	np := e.spawnPeer(p.malicious, p.selfish)
	if len(e.alive) > 1 {
		friend := np
		for friend == np {
			friend = e.alive[e.rngChurn.Intn(len(e.alive))]
		}
		for _, entry := range friend.link.Entries() {
			if entry.Addr == np.id {
				continue
			}
			np.link.Add(entry)
		}
		np.link.Add(cache.Entry{
			Addr:     friend.id,
			TS:       e.now,
			NumFiles: friend.advertisedFiles,
			Direct:   true,
		})
	}
}

// handlePing performs one cache-maintenance ping for the peer and
// reschedules the next one.
func (e *Engine) handlePing(id cache.PeerID) {
	p, ok := e.peers[id]
	if !ok {
		return // peer died; its replacement has its own ping timer
	}
	e.events.Push(e.now+p.pingInterval, event{kind: evPing, peer: id})

	entries := p.link.Entries()
	i := policy.Pick(e.rngPolicy, e.p.PingProbe, entries)
	if i < 0 {
		return
	}
	addr := entries[i].Addr
	target, live := e.peers[addr]
	measuring := e.now >= e.p.WarmupTime
	if !live {
		p.link.Remove(addr)
		e.blameDeadAddress(p, addr)
		e.recordPingOutcome(p, true)
		if measuring {
			e.res.Pings++
			e.res.DeadPings++
			if e.met != nil {
				e.met.Pings.Inc()
				e.met.DeadPings.Inc()
			}
		}
		if e.observer != nil {
			e.observer.Observe(obs.Event{Kind: obs.EvPing, Time: e.now,
				Peer: uint64(id), Target: uint64(addr), Outcome: obs.OutcomeDead})
		}
		return
	}
	if measuring {
		e.res.Pings++
		if e.met != nil {
			e.met.Pings.Inc()
		}
	}
	if e.observer != nil {
		e.observer.Observe(obs.Event{Kind: obs.EvPing, Time: e.now,
			Peer: uint64(id), Target: uint64(addr), Outcome: obs.OutcomeGood})
	}
	e.recordPingOutcome(p, false)
	// Both sides record the interaction.
	p.link.Touch(addr, e.now)
	target.link.Touch(id, e.now)
	e.maybeIntroduce(target, p)
	e.acceptPong(p, target, e.buildPong(target, e.p.PingPong))
}

// handleBurst starts a burst of queries for the peer and schedules its
// next burst.
func (e *Engine) handleBurst(id cache.PeerID) {
	p, ok := e.peers[id]
	if !ok {
		return
	}
	delay, size := e.gen.NextBurst(e.rngWorkload)
	e.events.Push(e.now+delay, event{kind: evBurst, peer: id})
	e.startQuery(p, size-1)
}

// handleSample takes a cache-health (and optionally connectivity)
// sample and reschedules itself.
func (e *Engine) handleSample() {
	if e.now+e.p.SampleInterval <= e.end {
		e.events.Push(e.now+e.p.SampleInterval, event{kind: evSample})
	}
	var (
		held, live float64
		fracSum    float64
		fracPeers  int
		goodSum    float64
		goodPeers  int
	)
	for _, p := range e.alive {
		entries := p.link.Entries()
		pl := 0
		pg := 0
		for _, entry := range entries {
			t, ok := e.peers[entry.Addr]
			if !ok {
				continue
			}
			pl++
			if !t.malicious {
				pg++
			}
		}
		held += float64(len(entries))
		live += float64(pl)
		if len(entries) > 0 {
			fracSum += float64(pl) / float64(len(entries))
			fracPeers++
		}
		if !p.malicious {
			goodSum += float64(pg)
			goodPeers++
		}
	}
	n := float64(len(e.alive))
	if n > 0 {
		e.sumHeld += held / n
		e.sumLive += live / n
	}
	if fracPeers > 0 {
		e.sumLiveFrac += fracSum / float64(fracPeers)
	}
	if goodPeers > 0 {
		e.sumGood += goodSum / float64(goodPeers)
	}
	e.res.CacheSamples++

	if e.met != nil {
		e.met.SimTime.Set(e.now)
		if n > 0 {
			e.met.AvgCacheEntries.Set(held / n)
			e.met.AvgLiveEntries.Set(live / n)
		}
	}
	if e.progress != nil {
		fmt.Fprintf(e.progress, "t=%.0f/%.0f queries=%d satisfied=%d births=%d deaths=%d\n",
			e.now, e.end, e.res.Queries, e.res.Satisfied, e.res.Births, e.res.Deaths)
	}

	if e.p.SampleConnectivity {
		e.sumWCC += float64(e.largestWCC())
		e.res.ConnectivityRuns++
	}

	if e.p.Trace != nil && e.traceErr == nil {
		if !e.traceHeader {
			e.traceHeader = true
			_, e.traceErr = e.p.Trace.Write([]byte(
				"time,births,deaths,queries,satisfied,probes,avgHeld,avgLive\n"))
		}
		if e.traceErr == nil {
			var avgHeld, avgLive float64
			if n > 0 {
				avgHeld = held / n
				avgLive = live / n
			}
			e.traceBuf = e.appendTraceRow(e.traceBuf[:0], avgHeld, avgLive)
			_, e.traceErr = e.p.Trace.Write(e.traceBuf)
		}
	}
}

// appendTraceRow assembles one CSV trace row into b. It is strconv in
// a reusable buffer, byte-for-byte what the former
// Fprintf("%.0f,%d,%d,%d,%d,%d,%.2f,%.2f\n") produced (fmt's float
// verbs are strconv.AppendFloat underneath), so full-scale run traces
// cost one Write and no garbage per sample. TestAppendTraceRowMatchesFmt
// pins the equivalence.
func (e *Engine) appendTraceRow(b []byte, avgHeld, avgLive float64) []byte {
	b = strconv.AppendFloat(b, e.now, 'f', 0, 64)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.res.Births), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.res.Deaths), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.res.Queries), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.res.Satisfied), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, e.res.ProbesTotal, 10)
	b = append(b, ',')
	b = strconv.AppendFloat(b, avgHeld, 'f', 2, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, avgLive, 'f', 2, 64)
	b = append(b, '\n')
	return b
}

// largestWCC measures the conceptual overlay's largest weakly
// connected component directly over the live population: every alive
// peer already knows its dense index (aliveIdx), so the sample is one
// union-find pass over the link caches with reusable scratch — no
// overlay.Builder, no graph materialization, no allocation. Dead-target
// entries and self-loops are skipped exactly as Builder.AddEdge skips
// them.
func (e *Engine) largestWCC() int {
	e.wcc.Reset(len(e.alive))
	for i, p := range e.alive {
		for _, entry := range p.link.Entries() {
			if entry.Addr == p.id {
				continue
			}
			if t, ok := e.peers[entry.Addr]; ok {
				e.wcc.Union(i, t.aliveIdx)
			}
		}
	}
	return e.wcc.Largest()
}

// maybeIntroduce applies the introduction protocol: host adds the
// initiator of an interaction to its cache with probability IntroProb.
func (e *Engine) maybeIntroduce(host, initiator *peer) {
	if !e.rngIntro.Bool(e.p.IntroProb) {
		return
	}
	e.insertEntry(host, cache.Entry{
		Addr:     initiator.id,
		TS:       e.now,
		NumFiles: initiator.advertisedFiles,
		Direct:   true,
	}, false)
}

// insertEntry runs the receiver's cache-replacement policy and keeps
// the observability counters: an insertion into a full cache displaced
// a resident (an eviction), and fromBad marks entries supplied by a
// malicious peer (cache poisoning). With metrics off this is exactly
// policy.Insert — the Full pre-check runs only when counting. Either
// way the policy's randomness consumption is untouched, so attaching
// metrics cannot perturb a seeded run.
func (e *Engine) insertEntry(receiver *peer, entry cache.Entry, fromBad bool) {
	if e.met == nil {
		policy.Insert(e.rngPolicy, e.p.CacheReplacement, receiver.link, entry)
		return
	}
	full := receiver.link.Full()
	if !policy.Insert(e.rngPolicy, e.p.CacheReplacement, receiver.link, entry) {
		return
	}
	if full {
		e.met.CacheEvictions.Inc()
	}
	if fromBad {
		e.met.PoisonedEntries.Inc()
	}
}

// buildPong constructs the host's pong under the given selection
// policy. Malicious hosts return corrupt pongs per BadPongBehavior.
//
// The returned slice is the engine's reusable pong buffer: it is valid
// only until the next buildPong call, and both consumers (acceptPong
// and probeOne's pong loop) copy entries out before any further pong is
// built.
func (e *Engine) buildPong(host *peer, sel policy.Selection) []cache.Entry {
	if e.p.PongSize <= 0 {
		return nil
	}
	if host.malicious {
		return e.buildBadPong(host)
	}
	entries := host.link.Entries()
	var idx []int
	if e.noReuse {
		idx = policy.PickN(e.rngPolicy, sel, entries, e.p.PongSize)
	} else {
		idx = e.polScratch.PickN(e.rngPolicy, sel, entries, e.p.PongSize)
	}
	out := e.pongBuf[:0]
	for _, j := range idx {
		out = append(out, entries[j])
	}
	e.pongBuf = out
	return out
}

// buildBadPong fabricates a poisoned pong (into the shared pong
// buffer, like buildPong).
func (e *Engine) buildBadPong(host *peer) []cache.Entry {
	out := e.pongBuf[:0]
	defer func() { e.pongBuf = out }()
	switch e.p.BadPong {
	case BadPongBad:
		// Colluders advertise each other with maximal credentials.
		candidates := e.badBuf[:0]
		for _, b := range e.bad {
			if b != host {
				candidates = append(candidates, b)
			}
		}
		e.badBuf = candidates
		if len(candidates) == 0 {
			out = e.fabricateDead(out)
			return out
		}
		for i := 0; i < e.p.PongSize; i++ {
			b := candidates[e.rngPolicy.Intn(len(candidates))]
			out = append(out, cache.Entry{
				Addr:     b.id,
				TS:       e.now,
				NumFiles: e.lieFiles,
				NumRes:   e.lieRes,
			})
		}
		return out
	case BadPongGood:
		entries := host.link.Entries()
		var idx []int
		if e.noReuse {
			idx = policy.PickN(e.rngPolicy, policy.SelRandom, entries, e.p.PongSize)
		} else {
			idx = e.polScratch.PickN(e.rngPolicy, policy.SelRandom, entries, e.p.PongSize)
		}
		for _, j := range idx {
			out = append(out, entries[j])
		}
		return out
	default: // BadPongDead
		out = e.fabricateDead(out)
		return out
	}
}

// fabricateDead fills a pong with fresh never-live addresses
// advertising a maximal file count (the bait that defeats MFS). Their
// NumRes is zero: a result count is per-querier experience, and a
// plausible fabricated stranger has none — which is why the paper
// finds MR robust against this attack (the fakes never outrank
// productive peers) while MFS collapses. Colluding attacks
// (BadPongBad) do lie about NumRes; see buildBadPong.
func (e *Engine) fabricateDead(out []cache.Entry) []cache.Entry {
	for i := 0; i < e.p.PongSize; i++ {
		out = append(out, cache.Entry{
			Addr:     e.nextFake,
			TS:       e.now,
			NumFiles: e.lieFiles,
		})
		e.nextFake++
	}
	return out
}

// acceptPong runs the receiver's cache-replacement policy over pong
// entries supplied by source. Per the specification, inherited fields
// are not rewritten; the Direct flag is cleared because the NumRes
// value is third-party experience, and ResetNumResults optionally
// zeroes it. Pongs from blacklisted suppliers are ignored entirely.
func (e *Engine) acceptPong(receiver *peer, source *peer, pong []cache.Entry) {
	if receiver.pongSourceBlocked(source.id) {
		return
	}
	if e.observer != nil {
		e.observer.Observe(obs.Event{Kind: obs.EvPong, Time: e.now,
			Peer: uint64(receiver.id), Target: uint64(source.id), Entries: len(pong)})
	}
	for _, entry := range pong {
		if entry.Addr == receiver.id {
			continue
		}
		entry.Direct = false
		if e.p.ResetNumResults {
			entry.NumRes = 0
		}
		e.recordSupplied(receiver, source.id, entry.Addr)
		e.insertEntry(receiver, entry, source.malicious)
	}
}

// finalize closes out per-peer load accounting and normalizes sampled
// averages.
func (e *Engine) finalize() {
	for _, p := range e.alive {
		e.loads = append(e.loads, p.probesReceived)
	}
	e.res.PeerLoads = e.loads
	e.res.Aborted += e.inFlightCounted
	if e.met != nil {
		e.met.Aborted.Add(uint64(e.inFlightCounted))
	}

	if s := float64(e.res.CacheSamples); s > 0 {
		e.res.AvgCacheEntries = e.sumHeld / s
		e.res.AvgLiveEntries = e.sumLive / s
		e.res.AvgLiveFraction = e.sumLiveFrac / s
		e.res.AvgGoodEntries = e.sumGood / s
	}
	if e.res.ConnectivityRuns > 0 {
		e.res.AvgLargestWCC = e.sumWCC / float64(e.res.ConnectivityRuns)
		e.res.FinalLargestWCC = e.largestWCC()
	}
}
