package core

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/content"
	"repro/internal/eventq"
	"repro/internal/lifetime"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/workload"
)

// fakeAddrBase is the start of the address range used for fabricated
// (never-live) addresses returned by malicious peers. Real peer IDs
// grow upward from 1 and can never reach it; it is far beyond the
// peerStore's dense index table, so fabricated addresses resolve to
// "dead" by the same bounds check as any other unknown ID.
const fakeAddrBase cache.PeerID = 1 << 40

// event kinds dispatched by the simulation loop.
type evKind uint8

const (
	evDeath     evKind = iota + 1 // a peer's lifetime expires
	evPing                        // a peer's periodic cache-maintenance ping
	evBurst                       // a peer's next query burst arrives
	evProbeStep                   // a running query sends its next probe round
	evSample                      // periodic metrics sampling
)

// event is the tagged union stored in the event queue.
type event struct {
	kind evKind
	peer cache.PeerID // evDeath, evPing, evBurst
	q    *query       // evProbeStep
}

// Engine runs one GUESS simulation. Create with New, run with Run.
// An Engine is single-use and not safe for concurrent use; run many
// engines in parallel for sweeps, or chain Renew to recycle one
// engine's storage across sequential runs.
type Engine struct {
	p        Params
	universe *content.Universe
	life     *lifetime.Model
	gen      *workload.Generator

	// Independent random streams so that, e.g., changing the policy's
	// consumption of randomness does not perturb churn.
	rngSeeding  *simrng.RNG // time-zero cache seeding, malicious assignment
	rngChurn    *simrng.RNG // lifetimes, friend choice
	rngContent  *simrng.RNG // libraries, query items
	rngWorkload *simrng.RNG // burst timing and sizes
	rngPolicy   *simrng.RNG // random policy picks, eviction
	rngIntro    *simrng.RNG // introduction coin flips

	now float64
	end float64
	// events is sharded by peer ID and merged on (time, global push
	// order), which reproduces exactly the total order of a single
	// queue — so any shard count yields the same run, byte for byte
	// (see eventq.Sharded and the shard determinism suite).
	events  *eventq.Sharded[event]
	nshards int

	// ps is the struct-of-arrays peer state; bad tracks the IDs of live
	// malicious peers (for colluding pongs). IDs rather than slots:
	// slots move on every death, IDs never do.
	ps       peerStore
	bad      []cache.PeerID
	nextID   cache.PeerID
	nextFake cache.PeerID

	lieFiles int32 // NumFiles malicious peers advertise
	lieRes   int32 // NumRes malicious peers put in fabricated entries

	res   Results
	loads []int64

	inFlightCounted int

	// running sums for cache-health samples
	sumHeld, sumLive, sumLiveFrac, sumGood float64
	sumWCC                                 float64

	// trace state
	traceHeader bool
	traceErr    error

	// Observability (all optional; see SetObserver/SetMetrics/
	// SetProgress). observer receives trace events, met mirrors the
	// Results counters into a shared registry, progress gets one line
	// per sample. None of them consume randomness or alter control
	// flow, so attaching them leaves a seeded run byte-identical; with
	// all nil the instrumentation is a handful of predictable branches
	// (BenchmarkSingleRun pins the cost).
	observer    obs.Observer
	met         *obs.SimMetrics
	progress    io.Writer
	nextQueryID uint64

	// Reusable hot-path scratch. The simulation's steady state is one
	// pong build per ping/probe, one query start per burst slot, and one
	// connectivity sample per SampleInterval; each of these used to
	// allocate. The scratch below is draw-order-neutral by construction
	// (buffer reuse only, never a change in how randomness is consumed),
	// which the golden-trace test locks in.
	polScratch policy.Scratch // selection scratch for every PickN
	pongBuf    []cache.Entry  // pong under construction; consumed before the next build
	badBuf     []cache.PeerID // colluder candidates for BadPongBad pongs
	wcc        overlay.WCCScratch
	traceBuf   []byte // one CSV row, rebuilt in place per sample

	// Sample-scan scratch: per-peer live/good entry counts filled by the
	// (optionally parallel) scan phase, then reduced sequentially in
	// slot order so the floating-point accumulation sequence is
	// identical at every shard count. edgeBufs holds per-worker overlay
	// edges for the connectivity sample.
	samplePl []int32
	samplePg []int32
	edgeBufs [][]int32

	// Free lists recycling the per-churn and per-query allocations:
	// dead peers donate their link cache, library storage and
	// poison/back-off maps to the next birth, completed queries donate
	// their selector and visited set to the next query.
	freeQueries    []*query
	freeCaches     []cache.LinkCache
	freeLibs       []content.Library
	freeProvenance []map[cache.PeerID]cache.PeerID
	freePongStats  []map[cache.PeerID]supplierRecord
	freeBlacklist  []map[cache.PeerID]bool
	freeSuppressed []map[cache.PeerID]float64

	// noReuse (tests only) disables every recycling fast path above and
	// falls back to the allocating reference implementations, so
	// determinism tests can assert pooled and reference runs are
	// byte-identical.
	noReuse bool

	ran bool
}

// New validates params and builds an engine ready to Run, with every
// arena sized once from Params.NetworkSize.
func New(params Params) (*Engine, error) {
	return newEngine(params, nil)
}

// Renew builds an engine for params that inherits the receiver's
// storage — peer arrays, link caches, libraries, event queue, scratch
// and free lists — instead of reallocating them, so a worker sweeping
// many configurations allocates its arenas once. The receiver must
// have finished Run and is unusable afterwards. Recycling is
// draw-order-neutral: a Renewed engine's run is byte-identical to a
// fresh engine's (TestRenewMatchesFresh pins this), because every
// recycled structure is either fully overwritten or cleared, and none
// of the cleared maps is ever iterated.
func (e *Engine) Renew(params Params) (*Engine, error) {
	if !e.ran {
		return nil, fmt.Errorf("core: Renew before Run")
	}
	return newEngine(params, e)
}

func newEngine(params Params, recycle *Engine) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	universe, err := content.New(params.Content)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	life, err := lifetime.New(params.LifespanMultiplier)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var gen *workload.Generator
	if params.QueriesEnabled {
		gen, err = workload.New(params.QueryRate)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	root := simrng.New(params.Seed)
	e := &Engine{
		p:           params,
		universe:    universe,
		life:        life,
		gen:         gen,
		rngSeeding:  root.Stream("seeding"),
		rngChurn:    root.Stream("churn"),
		rngContent:  root.Stream("content"),
		rngWorkload: root.Stream("workload"),
		rngPolicy:   root.Stream("policy"),
		rngIntro:    root.Stream("intro"),
		nshards:     params.shardCount(),
		nextID:      1,
		nextFake:    fakeAddrBase,
		lieFiles:    int32(universe.MaxLibrary()),
		lieRes:      1000,
	}
	if recycle != nil {
		e.adoptStorage(recycle)
	}
	e.ps.init(params.NetworkSize)
	if e.events == nil {
		e.events = eventq.NewSharded[event](e.nshards)
	}
	return e, nil
}

// adoptStorage moves a finished engine's recyclable storage into e:
// the peer arrays wholesale, the live population's caches, libraries
// and state maps into the free lists, and the reusable scratch. Pools
// whose element shape depends on parameters (link caches are
// capacity-bound) are dropped on mismatch rather than reused.
func (e *Engine) adoptStorage(old *Engine) {
	// Harvest the final population before taking the arrays.
	if !old.noReuse {
		for i := 0; i < old.ps.len(); i++ {
			old.recycleSlotStorage(i)
		}
	}
	e.ps = old.ps
	if old.events.Shards() == e.nshards {
		old.events.Reset()
		e.events = old.events
	}
	e.bad = old.bad[:0]
	e.polScratch = old.polScratch
	e.pongBuf = old.pongBuf[:0]
	e.badBuf = old.badBuf[:0]
	e.wcc = old.wcc
	e.traceBuf = old.traceBuf[:0]
	e.samplePl = old.samplePl[:0]
	e.samplePg = old.samplePg[:0]
	e.edgeBufs = old.edgeBufs
	e.freeQueries = old.freeQueries
	e.freeLibs = old.freeLibs
	e.freeProvenance = old.freeProvenance
	e.freePongStats = old.freePongStats
	e.freeBlacklist = old.freeBlacklist
	e.freeSuppressed = old.freeSuppressed
	if len(old.freeCaches) > 0 && old.freeCaches[0].Cap() == e.p.CacheSize {
		e.freeCaches = old.freeCaches
	}
	e.noReuse = old.noReuse
}

// recycleSlotStorage clears slot i's link cache, library and state
// maps into the free lists. Only called with reuse enabled.
func (e *Engine) recycleSlotStorage(i int) {
	link := e.ps.link[i]
	if link.Cap() > 0 {
		link.Clear()
		e.freeCaches = append(e.freeCaches, link)
		e.ps.link[i] = cache.LinkCache{}
	}
	if e.ps.lib[i].Size() > 0 {
		e.freeLibs = append(e.freeLibs, e.ps.lib[i])
		e.ps.lib[i] = content.Library{}
	}
	if m := e.ps.provenance[i]; m != nil {
		clear(m)
		e.freeProvenance = append(e.freeProvenance, m)
		e.ps.provenance[i] = nil
	}
	if m := e.ps.pongStats[i]; m != nil {
		clear(m)
		e.freePongStats = append(e.freePongStats, m)
		e.ps.pongStats[i] = nil
	}
	if m := e.ps.blacklist[i]; m != nil {
		clear(m)
		e.freeBlacklist = append(e.freeBlacklist, m)
		e.ps.blacklist[i] = nil
	}
	if m := e.ps.suppressed[i]; m != nil {
		clear(m)
		e.freeSuppressed = append(e.freeSuppressed, m)
		e.ps.suppressed[i] = nil
	}
}

// SetObserver attaches an observer receiving lifecycle and query trace
// events. Must be called before Run. Observers attached to engines run
// in parallel (sweeps) must be safe for concurrent use.
func (e *Engine) SetObserver(o obs.Observer) { e.observer = o }

// SetMetrics attaches pre-resolved registry instruments that mirror the
// Results counters as the run progresses. Must be called before Run.
// Engines may share one SimMetrics; the counters then aggregate.
func (e *Engine) SetMetrics(m *obs.SimMetrics) { e.met = m }

// SetProgress attaches a writer receiving one short status line per
// sample interval. Must be called before Run. Write errors are
// ignored (progress is best-effort, unlike Params.Trace).
func (e *Engine) SetProgress(w io.Writer) { e.progress = w }

// ctxCheckInterval is how many events the loop processes between
// context checks: coarse enough to keep ctx.Err out of the hot path's
// profile, fine enough that cancellation lands within microseconds of
// simulated work.
const ctxCheckInterval = 512

// push schedules ev at time t on its home shard. Routing is by peer ID
// (queries live on their origin's shard; the sampler on shard 0), but
// because the sharded queue merges on global push order, the routing
// choice affects only which heap holds an event — never the order
// events fire, and therefore never a result.
func (e *Engine) push(t float64, ev event) {
	shard := 0
	if e.nshards > 1 {
		switch ev.kind {
		case evProbeStep:
			shard = int(uint64(ev.q.origin) % uint64(e.nshards))
		case evSample:
			shard = 0
		default:
			shard = int(uint64(ev.peer) % uint64(e.nshards))
		}
	}
	e.events.Push(shard, t, ev)
}

// Run executes the simulation and returns its measurements. It can be
// called once. A nil ctx is treated as context.Background. When ctx is
// cancelled mid-run the loop stops at the next event-batch boundary and
// returns the partial Results accumulated so far with Interrupted set
// (and a nil error: partial measurements are still measurements).
func (e *Engine) Run(ctx context.Context) (*Results, error) {
	if e.ran {
		return nil, fmt.Errorf("core: engine already ran")
	}
	e.ran = true
	e.end = e.p.WarmupTime + e.p.MeasureTime

	e.bootstrap()
	e.push(e.p.WarmupTime, event{kind: evSample})

	var processed uint64
	for {
		if ctx != nil && processed%ctxCheckInterval == 0 {
			if ctx.Err() != nil {
				e.res.Interrupted = true
				break
			}
		}
		processed++
		t, ev, ok := e.events.Pop()
		if !ok || t > e.end {
			break
		}
		e.now = t
		switch ev.kind {
		case evDeath:
			e.handleDeath(ev.peer)
		case evPing:
			e.handlePing(ev.peer)
		case evBurst:
			e.handleBurst(ev.peer)
		case evProbeStep:
			e.handleProbeStep(ev.q)
		case evSample:
			e.handleSample()
		default:
			return nil, fmt.Errorf("core: unknown event kind %d", ev.kind)
		}
	}
	e.finalize()
	if e.traceErr != nil {
		return nil, fmt.Errorf("core: trace writer: %w", e.traceErr)
	}
	return &e.res, nil
}

// bootstrap creates the initial population at time zero.
func (e *Engine) bootstrap() {
	n := e.p.NetworkSize
	numBad := e.p.numBadPeers()
	numSelfish := e.p.numSelfishPeers()
	// Uniformly choose disjoint malicious and selfish subsets.
	badSlot := make([]bool, n)
	selfishSlot := make([]bool, n)
	perm := e.rngSeeding.Perm(n)
	for i := 0; i < numBad; i++ {
		badSlot[perm[i]] = true
	}
	for i := numBad; i < numBad+numSelfish; i++ {
		selfishSlot[perm[i]] = true
	}
	for i := 0; i < n; i++ {
		e.spawnPeer(badSlot[i], selfishSlot[i])
	}
	// Seed link caches with live peers, as in the paper's time-zero
	// setup (entries carry the target's true file count).
	seed := e.p.seedSize()
	for p := 0; p < e.ps.len(); p++ {
		for _, j := range e.samplePeers(e.rngSeeding, seed, e.ps.id[p]) {
			e.ps.link[p].Add(cache.Entry{
				Addr:     e.ps.id[j],
				TS:       0,
				NumFiles: e.ps.advertisedFiles[j],
			})
		}
	}
}

// samplePeers draws up to k distinct slot indices, excluding the peer
// with the given id, via Floyd's sampling. The returned slice aliases
// the policy scratch and is valid until the next selection call.
func (e *Engine) samplePeers(r *simrng.RNG, k int, exclude cache.PeerID) []int {
	n := e.ps.len()
	if k > n {
		k = n
	}
	var idx []int
	if e.noReuse {
		// Allocating reference: the classic map-based Floyd loop, kept
		// so the reuse determinism suite can pin the scratch path
		// against it (identical Intn sequence, identical indices).
		chosen := make(map[int]bool, k)
		idx = make([]int, 0, k)
		for i := n - k; i < n; i++ {
			j := r.Intn(i + 1)
			if chosen[j] {
				j = i
			}
			chosen[j] = true
			idx = append(idx, j)
		}
	} else {
		idx = e.polScratch.SampleIndices(r, n, k)
	}
	out := idx[:0]
	for _, j := range idx {
		if e.ps.id[j] != exclude {
			out = append(out, j)
		}
	}
	return out
}

// spawnPeer creates a peer at the current time, registers it in the
// next free slot, and schedules its lifecycle events. Cache seeding is
// the caller's job. Returns the new peer's slot.
func (e *Engine) spawnPeer(malicious, selfish bool) int {
	id := e.nextID
	e.nextID++
	libSize := e.universe.SampleLibrarySize(e.rngContent)
	var lib content.Library
	if n := len(e.freeLibs); libSize > 0 && n > 0 {
		lib = e.universe.NewLibraryInto(e.rngContent, libSize, e.freeLibs[n-1])
		e.freeLibs[n-1] = content.Library{}
		e.freeLibs = e.freeLibs[:n-1]
	} else {
		lib = e.universe.NewLibrary(e.rngContent, libSize)
	}
	var link cache.LinkCache
	if n := len(e.freeCaches); n > 0 {
		link = e.freeCaches[n-1]
		e.freeCaches[n-1] = cache.LinkCache{}
		e.freeCaches = e.freeCaches[:n-1]
	} else {
		link = *cache.NewLinkCache(e.p.CacheSize)
	}
	advertised := int32(lib.Size())
	if malicious {
		advertised = e.lieFiles
	}
	deathAt := e.now + e.life.Sample(e.rngChurn)

	slot := e.ps.grow()
	e.ps.id[slot] = id
	e.ps.advertisedFiles[slot] = advertised
	e.ps.malicious[slot] = malicious
	e.ps.selfish[slot] = selfish
	e.ps.lib[slot] = lib
	e.ps.link[slot] = link
	e.ps.pingInterval[slot] = e.p.PingInterval
	e.ps.winStart[slot] = -1
	e.ps.byID = append(e.ps.byID, int32(slot))

	if malicious {
		e.bad = append(e.bad, id)
	}
	e.res.Births++
	if e.met != nil {
		e.met.Births.Inc()
	}
	if e.observer != nil {
		e.observer.Observe(obs.Event{Kind: obs.EvPeerBirth, Time: e.now, Peer: uint64(id)})
	}

	e.push(deathAt, event{kind: evDeath, peer: id})
	e.push(e.now+e.rngChurn.Float64()*e.p.PingInterval, event{kind: evPing, peer: id})
	if e.p.QueriesEnabled && !malicious {
		delay, _ := e.gen.NextBurst(e.rngWorkload)
		e.push(e.now+delay, event{kind: evBurst, peer: id})
	}
	return slot
}

// handleDeath removes a peer and spawns its replacement, keeping the
// live population (and the malicious fraction) constant.
func (e *Engine) handleDeath(id cache.PeerID) {
	slot := e.ps.slotOf(id)
	if slot < 0 {
		return
	}
	// Capture the dying peer's fields: the swap-remove below overwrites
	// its slot with the last slot's peer.
	malicious := e.ps.malicious[slot]
	selfish := e.ps.selfish[slot]
	probesReceived := e.ps.probesReceived[slot]
	link := e.ps.link[slot]
	lib := e.ps.lib[slot]
	provenance := e.ps.provenance[slot]
	pongStats := e.ps.pongStats[slot]
	blacklist := e.ps.blacklist[slot]
	suppressed := e.ps.suppressed[slot]

	e.ps.byID[id] = -1
	e.ps.swapRemove(slot)
	if malicious {
		for i, b := range e.bad {
			if b == id {
				e.bad[i] = e.bad[len(e.bad)-1]
				e.bad = e.bad[:len(e.bad)-1]
				break
			}
		}
	}
	e.res.Deaths++
	if e.met != nil {
		e.met.Deaths.Inc()
	}
	if e.observer != nil {
		e.observer.Observe(obs.Event{Kind: obs.EvPeerDeath, Time: e.now, Peer: uint64(id)})
	}
	if e.now >= e.p.WarmupTime {
		e.loads = append(e.loads, probesReceived)
	}

	// The dead peer is fully unlinked now; recycle its cache, library
	// and state-map storage for later births (nothing reads them again —
	// see the Entries aliasing audit in cache.LinkCache).
	if !e.noReuse {
		link.Clear()
		e.freeCaches = append(e.freeCaches, link)
		if lib.Size() > 0 {
			e.freeLibs = append(e.freeLibs, lib)
		}
		if provenance != nil {
			clear(provenance)
			clear(pongStats)
			clear(blacklist)
			e.freeProvenance = append(e.freeProvenance, provenance)
			e.freePongStats = append(e.freePongStats, pongStats)
			e.freeBlacklist = append(e.freeBlacklist, blacklist)
		}
		if suppressed != nil {
			clear(suppressed)
			e.freeSuppressed = append(e.freeSuppressed, suppressed)
		}
	}

	// Birth of the replacement, seeded by the random-friend policy:
	// the newborn copies the link cache of one live "friend" and also
	// remembers the friend itself.
	np := e.spawnPeer(malicious, selfish)
	if e.ps.len() > 1 {
		friend := np
		for friend == np {
			friend = e.rngChurn.Intn(e.ps.len())
		}
		npID := e.ps.id[np]
		for _, entry := range e.ps.link[friend].Entries() {
			if entry.Addr == npID {
				continue
			}
			e.ps.link[np].Add(entry)
		}
		e.ps.link[np].Add(cache.Entry{
			Addr:     e.ps.id[friend],
			TS:       e.now,
			NumFiles: e.ps.advertisedFiles[friend],
			Direct:   true,
		})
	}
}

// handlePing performs one cache-maintenance ping for the peer and
// reschedules the next one.
func (e *Engine) handlePing(id cache.PeerID) {
	p := e.ps.slotOf(id)
	if p < 0 {
		return // peer died; its replacement has its own ping timer
	}
	e.push(e.now+e.ps.pingInterval[p], event{kind: evPing, peer: id})

	entries := e.ps.link[p].Entries()
	i := policy.Pick(e.rngPolicy, e.p.PingProbe, entries)
	if i < 0 {
		return
	}
	addr := entries[i].Addr
	target := e.ps.slotOf(addr)
	measuring := e.now >= e.p.WarmupTime
	if target < 0 {
		e.ps.link[p].Remove(addr)
		e.blameDeadAddress(p, addr)
		e.recordPingOutcome(p, true)
		if measuring {
			e.res.Pings++
			e.res.DeadPings++
			if e.met != nil {
				e.met.Pings.Inc()
				e.met.DeadPings.Inc()
			}
		}
		if e.observer != nil {
			e.observer.Observe(obs.Event{Kind: obs.EvPing, Time: e.now,
				Peer: uint64(id), Target: uint64(addr), Outcome: obs.OutcomeDead})
		}
		return
	}
	if measuring {
		e.res.Pings++
		if e.met != nil {
			e.met.Pings.Inc()
		}
	}
	if e.observer != nil {
		e.observer.Observe(obs.Event{Kind: obs.EvPing, Time: e.now,
			Peer: uint64(id), Target: uint64(addr), Outcome: obs.OutcomeGood})
	}
	e.recordPingOutcome(p, false)
	// Both sides record the interaction.
	e.ps.link[p].Touch(addr, e.now)
	e.ps.link[target].Touch(id, e.now)
	e.maybeIntroduce(target, p)
	e.acceptPong(p, target, e.buildPong(target, e.p.PingPong))
}

// handleBurst starts a burst of queries for the peer and schedules its
// next burst.
func (e *Engine) handleBurst(id cache.PeerID) {
	p := e.ps.slotOf(id)
	if p < 0 {
		return
	}
	delay, size := e.gen.NextBurst(e.rngWorkload)
	e.push(e.now+delay, event{kind: evBurst, peer: id})
	e.startQuery(p, size-1)
}

// scanChunk is the slot-range granularity of the parallel sample
// scans: large enough that chunk handoff is noise, small enough to
// balance uneven cache sizes across workers.
const scanChunk = 2048

// forEachChunk partitions [0, n) into chunks and runs fn over them on
// nshards workers (inline when sharding is off or n is small). fn must
// be RNG-free and touch only per-slot disjoint state: the worker index
// w is for per-worker scratch, lo/hi is the slot range.
func (e *Engine) forEachChunk(n int, fn func(w, lo, hi int)) {
	if e.nshards <= 1 || n < 2*scanChunk {
		fn(0, 0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < e.nshards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(next.Add(scanChunk)) - scanChunk
				if lo >= n {
					return
				}
				hi := min(lo+scanChunk, n)
				fn(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// handleSample takes a cache-health (and optionally connectivity)
// sample and reschedules itself.
//
// The sample is the engine's one O(NetworkSize) scan, and the only
// phase that parallelizes without touching randomness: counting each
// peer's live and good cache entries is a pure read of the peer store.
// With Shards > 1 the scan fans out over worker goroutines into
// per-peer integer tallies; the floating-point averaging then replays
// sequentially in slot order, performing bit-for-bit the same
// operation sequence as the single-threaded scan — which is why every
// shard count produces identical Results, traces and metrics.
func (e *Engine) handleSample() {
	if e.now+e.p.SampleInterval <= e.end {
		e.push(e.now+e.p.SampleInterval, event{kind: evSample})
	}
	n := e.ps.len()
	e.samplePl = growInt32(e.samplePl, n)
	e.samplePg = growInt32(e.samplePg, n)
	pl, pg := e.samplePl, e.samplePg
	e.forEachChunk(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var live, good int32
			for _, entry := range e.ps.link[i].Entries() {
				t := e.ps.slotOf(entry.Addr)
				if t < 0 {
					continue
				}
				live++
				if !e.ps.malicious[t] {
					good++
				}
			}
			pl[i] = live
			pg[i] = good
		}
	})

	var (
		held, live float64
		fracSum    float64
		fracPeers  int
		goodSum    float64
		goodPeers  int
	)
	for i := 0; i < n; i++ {
		entries := e.ps.link[i].Len()
		held += float64(entries)
		live += float64(pl[i])
		if entries > 0 {
			fracSum += float64(pl[i]) / float64(entries)
			fracPeers++
		}
		if !e.ps.malicious[i] {
			goodSum += float64(pg[i])
			goodPeers++
		}
	}
	nf := float64(n)
	if nf > 0 {
		e.sumHeld += held / nf
		e.sumLive += live / nf
	}
	if fracPeers > 0 {
		e.sumLiveFrac += fracSum / float64(fracPeers)
	}
	if goodPeers > 0 {
		e.sumGood += goodSum / float64(goodPeers)
	}
	e.res.CacheSamples++

	if e.met != nil {
		e.met.SimTime.Set(e.now)
		if nf > 0 {
			e.met.AvgCacheEntries.Set(held / nf)
			e.met.AvgLiveEntries.Set(live / nf)
		}
	}
	if e.progress != nil {
		fmt.Fprintf(e.progress, "t=%.0f/%.0f queries=%d satisfied=%d births=%d deaths=%d\n",
			e.now, e.end, e.res.Queries, e.res.Satisfied, e.res.Births, e.res.Deaths)
	}

	if e.p.SampleConnectivity {
		e.sumWCC += float64(e.largestWCC())
		e.res.ConnectivityRuns++
	}

	if e.p.Trace != nil && e.traceErr == nil {
		if !e.traceHeader {
			e.traceHeader = true
			_, e.traceErr = e.p.Trace.Write([]byte(
				"time,births,deaths,queries,satisfied,probes,avgHeld,avgLive\n"))
		}
		if e.traceErr == nil {
			var avgHeld, avgLive float64
			if nf > 0 {
				avgHeld = held / nf
				avgLive = live / nf
			}
			e.traceBuf = e.appendTraceRow(e.traceBuf[:0], avgHeld, avgLive)
			_, e.traceErr = e.p.Trace.Write(e.traceBuf)
		}
	}
}

// growInt32 returns buf resized to n elements, reallocating only past
// the high-water mark.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// appendTraceRow assembles one CSV trace row into b. It is strconv in
// a reusable buffer, byte-for-byte what the former
// Fprintf("%.0f,%d,%d,%d,%d,%d,%.2f,%.2f\n") produced (fmt's float
// verbs are strconv.AppendFloat underneath), so full-scale run traces
// cost one Write and no garbage per sample. TestAppendTraceRowMatchesFmt
// pins the equivalence.
func (e *Engine) appendTraceRow(b []byte, avgHeld, avgLive float64) []byte {
	b = strconv.AppendFloat(b, e.now, 'f', 0, 64)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.res.Births), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.res.Deaths), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.res.Queries), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.res.Satisfied), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, e.res.ProbesTotal, 10)
	b = append(b, ',')
	b = strconv.AppendFloat(b, avgHeld, 'f', 2, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, avgLive, 'f', 2, 64)
	b = append(b, '\n')
	return b
}

// largestWCC measures the conceptual overlay's largest weakly
// connected component directly over the live population: slots are
// already dense indices, so the sample is one union-find pass over the
// link caches with reusable scratch — no overlay.Builder, no graph
// materialization, no allocation. Dead-target entries and self-loops
// are skipped exactly as Builder.AddEdge skips them.
//
// With Shards > 1 the expensive phase — resolving every cache entry's
// address to a live slot — fans out over workers into per-worker edge
// buffers, and only the cheap union pass runs sequentially. Union
// order differs across shard counts, but component sizes (all the
// union-find is asked for) are order-invariant, so the sample is
// byte-identical at every shard count.
func (e *Engine) largestWCC() int {
	n := e.ps.len()
	e.wcc.Reset(n)
	if e.nshards <= 1 || n < 2*scanChunk {
		for i := 0; i < n; i++ {
			selfID := e.ps.id[i]
			for _, entry := range e.ps.link[i].Entries() {
				if entry.Addr == selfID {
					continue
				}
				if t := e.ps.slotOf(entry.Addr); t >= 0 {
					e.wcc.Union(i, t)
				}
			}
		}
		return e.wcc.Largest()
	}
	if len(e.edgeBufs) < e.nshards {
		e.edgeBufs = append(e.edgeBufs, make([][]int32, e.nshards-len(e.edgeBufs))...)
	}
	for w := range e.edgeBufs {
		e.edgeBufs[w] = e.edgeBufs[w][:0]
	}
	e.forEachChunk(n, func(w, lo, hi int) {
		buf := e.edgeBufs[w]
		for i := lo; i < hi; i++ {
			selfID := e.ps.id[i]
			for _, entry := range e.ps.link[i].Entries() {
				if entry.Addr == selfID {
					continue
				}
				if t := e.ps.slotOf(entry.Addr); t >= 0 {
					buf = append(buf, int32(i), int32(t))
				}
			}
		}
		e.edgeBufs[w] = buf
	})
	for _, buf := range e.edgeBufs {
		for k := 0; k+1 < len(buf); k += 2 {
			e.wcc.Union(int(buf[k]), int(buf[k+1]))
		}
	}
	return e.wcc.Largest()
}

// maybeIntroduce applies the introduction protocol: host adds the
// initiator of an interaction to its cache with probability IntroProb.
func (e *Engine) maybeIntroduce(host, initiator int) {
	if !e.rngIntro.Bool(e.p.IntroProb) {
		return
	}
	e.insertEntry(host, cache.Entry{
		Addr:     e.ps.id[initiator],
		TS:       e.now,
		NumFiles: e.ps.advertisedFiles[initiator],
		Direct:   true,
	}, false)
}

// insertEntry runs the receiver's cache-replacement policy and keeps
// the observability counters: an insertion into a full cache displaced
// a resident (an eviction), and fromBad marks entries supplied by a
// malicious peer (cache poisoning). With metrics off this is exactly
// policy.Insert — the Full pre-check runs only when counting. Either
// way the policy's randomness consumption is untouched, so attaching
// metrics cannot perturb a seeded run.
func (e *Engine) insertEntry(receiver int, entry cache.Entry, fromBad bool) {
	link := &e.ps.link[receiver]
	if e.met == nil {
		policy.Insert(e.rngPolicy, e.p.CacheReplacement, link, entry)
		return
	}
	full := link.Full()
	if !policy.Insert(e.rngPolicy, e.p.CacheReplacement, link, entry) {
		return
	}
	if full {
		e.met.CacheEvictions.Inc()
	}
	if fromBad {
		e.met.PoisonedEntries.Inc()
	}
}

// buildPong constructs the host's pong under the given selection
// policy. Malicious hosts return corrupt pongs per BadPongBehavior.
//
// The returned slice is the engine's reusable pong buffer: it is valid
// only until the next buildPong call, and both consumers (acceptPong
// and probeOne's pong loop) copy entries out before any further pong is
// built.
func (e *Engine) buildPong(host int, sel policy.Selection) []cache.Entry {
	if e.p.PongSize <= 0 {
		return nil
	}
	if e.ps.malicious[host] {
		return e.buildBadPong(host)
	}
	entries := e.ps.link[host].Entries()
	var idx []int
	if e.noReuse {
		idx = policy.PickN(e.rngPolicy, sel, entries, e.p.PongSize)
	} else {
		idx = e.polScratch.PickN(e.rngPolicy, sel, entries, e.p.PongSize)
	}
	out := e.pongBuf[:0]
	for _, j := range idx {
		out = append(out, entries[j])
	}
	e.pongBuf = out
	return out
}

// buildBadPong fabricates a poisoned pong (into the shared pong
// buffer, like buildPong).
func (e *Engine) buildBadPong(host int) []cache.Entry {
	out := e.pongBuf[:0]
	defer func() { e.pongBuf = out }()
	switch e.p.BadPong {
	case BadPongBad:
		// Colluders advertise each other with maximal credentials.
		hostID := e.ps.id[host]
		candidates := e.badBuf[:0]
		for _, b := range e.bad {
			if b != hostID {
				candidates = append(candidates, b)
			}
		}
		e.badBuf = candidates
		if len(candidates) == 0 {
			out = e.fabricateDead(out)
			return out
		}
		for i := 0; i < e.p.PongSize; i++ {
			b := candidates[e.rngPolicy.Intn(len(candidates))]
			out = append(out, cache.Entry{
				Addr:     b,
				TS:       e.now,
				NumFiles: e.lieFiles,
				NumRes:   e.lieRes,
			})
		}
		return out
	case BadPongGood:
		entries := e.ps.link[host].Entries()
		var idx []int
		if e.noReuse {
			idx = policy.PickN(e.rngPolicy, policy.SelRandom, entries, e.p.PongSize)
		} else {
			idx = e.polScratch.PickN(e.rngPolicy, policy.SelRandom, entries, e.p.PongSize)
		}
		for _, j := range idx {
			out = append(out, entries[j])
		}
		return out
	default: // BadPongDead
		out = e.fabricateDead(out)
		return out
	}
}

// fabricateDead fills a pong with fresh never-live addresses
// advertising a maximal file count (the bait that defeats MFS). Their
// NumRes is zero: a result count is per-querier experience, and a
// plausible fabricated stranger has none — which is why the paper
// finds MR robust against this attack (the fakes never outrank
// productive peers) while MFS collapses. Colluding attacks
// (BadPongBad) do lie about NumRes; see buildBadPong.
func (e *Engine) fabricateDead(out []cache.Entry) []cache.Entry {
	for i := 0; i < e.p.PongSize; i++ {
		out = append(out, cache.Entry{
			Addr:     e.nextFake,
			TS:       e.now,
			NumFiles: e.lieFiles,
		})
		e.nextFake++
	}
	return out
}

// acceptPong runs the receiver's cache-replacement policy over pong
// entries supplied by source. Per the specification, inherited fields
// are not rewritten; the Direct flag is cleared because the NumRes
// value is third-party experience, and ResetNumResults optionally
// zeroes it. Pongs from blacklisted suppliers are ignored entirely.
func (e *Engine) acceptPong(receiver, source int, pong []cache.Entry) {
	sourceID := e.ps.id[source]
	if e.pongSourceBlocked(receiver, sourceID) {
		return
	}
	receiverID := e.ps.id[receiver]
	if e.observer != nil {
		e.observer.Observe(obs.Event{Kind: obs.EvPong, Time: e.now,
			Peer: uint64(receiverID), Target: uint64(sourceID), Entries: len(pong)})
	}
	sourceBad := e.ps.malicious[source]
	for _, entry := range pong {
		if entry.Addr == receiverID {
			continue
		}
		entry.Direct = false
		if e.p.ResetNumResults {
			entry.NumRes = 0
		}
		e.recordSupplied(receiver, sourceID, entry.Addr)
		e.insertEntry(receiver, entry, sourceBad)
	}
}

// finalize closes out per-peer load accounting and normalizes sampled
// averages.
func (e *Engine) finalize() {
	for i := 0; i < e.ps.len(); i++ {
		e.loads = append(e.loads, e.ps.probesReceived[i])
	}
	e.res.PeerLoads = e.loads
	e.res.Aborted += e.inFlightCounted
	if e.met != nil {
		e.met.Aborted.Add(uint64(e.inFlightCounted))
	}

	if s := float64(e.res.CacheSamples); s > 0 {
		e.res.AvgCacheEntries = e.sumHeld / s
		e.res.AvgLiveEntries = e.sumLive / s
		e.res.AvgLiveFraction = e.sumLiveFrac / s
		e.res.AvgGoodEntries = e.sumGood / s
	}
	if e.res.ConnectivityRuns > 0 {
		e.res.AvgLargestWCC = e.sumWCC / float64(e.res.ConnectivityRuns)
		e.res.FinalLargestWCC = e.largestWCC()
	}
}
