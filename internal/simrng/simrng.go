// Package simrng provides a small, fast, deterministic random number
// generator for simulations.
//
// The generator is based on SplitMix64, which passes BigCrush and is
// trivially seedable. Unlike math/rand's global functions, every RNG here
// is an explicit value, so simulations are reproducible from a single
// seed, and independent components of a simulation can draw from named
// sub-streams (see Stream) without perturbing each other's sequences.
package simrng

import "math"

// RNG is a deterministic pseudo-random number generator.
//
// The zero value is a valid generator seeded with 0; prefer New so the
// seed is explicit.
//
// RNG is not safe for concurrent use; give each goroutine its own
// stream via Stream or Split.
type RNG struct {
	state uint64
	seed  uint64 // original seed, used for stable Stream derivation

	// cached spare normal variate for NormFloat64 (polar method).
	hasSpare bool
	spare    float64
}

// New returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical sequences.
func New(seed uint64) *RNG {
	return &RNG{state: seed, seed: seed}
}

// golden gamma used by SplitMix64 to advance the state.
const golden = 0x9e3779b97f4a7c15

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	return mix(r.state)
}

// mix is the SplitMix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full float53 resolution.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simrng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Uint64n returns a uniformly distributed uint64 in [0, n). It panics
// if n == 0. It uses Lemire's nearly-divisionless bounded method with a
// rejection step to remove modulo bias.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("simrng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling over the largest multiple of n that fits.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1). Scale by 1/rate for other rates.
func (r *RNG) ExpFloat64() float64 {
	// Inverse-CDF; 1-Float64() is in (0,1], so Log never sees 0.
	return -math.Log(1 - r.Float64())
}

// NormFloat64 returns a standard normally distributed float64
// (mean 0, stddev 1) using the Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap, as in
// math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Stream derives an independent generator from r's original seed and a
// name. Derivation neither advances r nor depends on how many draws r
// has made, so adding a new named stream to a simulation never perturbs
// existing streams. Streams with distinct names are statistically
// independent.
func (r *RNG) Stream(name string) *RNG {
	return New(mix(r.seed ^ hashString(name)))
}

// Split returns a new generator seeded from r's output, advancing r by
// one draw. Use Stream when stable derivation by name is needed.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// hashString is FNV-1a, inlined to avoid a hash/fnv allocation on a hot
// derivation path.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
