package pkg

import (
	"repro/internal/obs"
)

// Test files may register throwaway names: obsname must not look here.
func registerScratch(reg *obs.Registry) {
	reg.Counter("scratch_counter", "not a guess_* name, and that is fine in tests")
}
