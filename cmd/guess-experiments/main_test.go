package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadScale(t *testing.T) {
	if err := run([]string{"-experiment", "fig12", "-scale", "enormous"}); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99", "-quiet"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunOneExperimentWithOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	dir := t.TempDir()
	csvDir := filepath.Join(dir, "csv")
	svgDir := filepath.Join(dir, "svg")
	// fig8 is comparatively cheap at quick scale and produces a chart.
	err := run([]string{
		"-experiment", "fig8", "-scale", "quick", "-quiet",
		"-csv", csvDir, "-svg", svgDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "fig8.csv")); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(svgDir, "fig8.svg")); err != nil {
		t.Fatalf("SVG not written: %v", err)
	}
}
