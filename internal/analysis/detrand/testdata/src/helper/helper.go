// Package node poses as repro/node (exempt from the determinism
// rules): live-node utilities that legitimately touch the wall clock
// and the ambient RNG. Its summaries carry the taint that detrand
// reports at deterministic call sites.
package node

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter draws from the global math/rand state.
func Jitter() int {
	return rand.Intn(100)
}

// Scale is pure: calling it from deterministic code is fine.
func Scale(x int) int {
	return x * 2
}
