//go:build !linux

package main

// peakRSSBytes reports the process's peak resident set size, or 0
// where the platform offers no cheap way to read it (the report line
// simply omits it).
func peakRSSBytes() int64 { return 0 }
