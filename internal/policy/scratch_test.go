package policy

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/simrng"
)

// randomEntries builds a cache snapshot with adversarial score
// structure: duplicated scores (tie-breaking), zeros, and a mix of
// Direct flags so MR* diverges from MR.
func randomEntries(r *simrng.RNG, n int) []cache.Entry {
	entries := make([]cache.Entry, n)
	for i := range entries {
		entries[i] = cache.Entry{
			Addr:     cache.PeerID(i + 1),
			TS:       float64(r.Intn(8)), // few distinct values => many ties
			NumFiles: int32(r.Intn(5)),
			NumRes:   int32(r.Intn(4)),
			Direct:   r.Bool(0.5),
		}
	}
	return entries
}

var allSelections = []Selection{SelRandom, SelMRU, SelLRU, SelMFS, SelMR, SelMRStar}

// TestScratchMatchesReference is the determinism contract of the
// allocation-free fast path: for every policy, cache size, and request
// size, Scratch.PickN must return exactly the indices the allocating
// reference PickN returns, in the same order, while consuming the RNG
// identically (verified by running both from identically seeded
// streams and comparing subsequent draws).
func TestScratchMatchesReference(t *testing.T) {
	for _, sel := range allSelections {
		for seed := uint64(1); seed <= 20; seed++ {
			gen := simrng.New(seed * 77)
			for _, size := range []int{0, 1, 2, 3, 5, 17, 64, 257} {
				entries := randomEntries(gen, size)
				for _, n := range []int{0, 1, 2, 5, size / 2, size, size + 3} {
					rRef := simrng.New(seed)
					rFast := simrng.New(seed)
					var sc Scratch
					ref := PickN(rRef, sel, entries, n)
					got := sc.PickN(rFast, sel, entries, n)
					if len(ref) != len(got) {
						t.Fatalf("%v size=%d n=%d: len %d != %d", sel, size, n, len(got), len(ref))
					}
					for i := range ref {
						if ref[i] != got[i] {
							t.Fatalf("%v size=%d n=%d: idx[%d] = %d, want %d\nref=%v\ngot=%v",
								sel, size, n, i, got[i], ref[i], ref, got)
						}
					}
					if a, b := rRef.Uint64(), rFast.Uint64(); a != b {
						t.Fatalf("%v size=%d n=%d: RNG diverged after call (%d vs %d)", sel, size, n, b, a)
					}
				}
			}
		}
	}
}

// TestScratchReuse verifies marks and buffers survive heavy reuse of a
// single Scratch across interleaved policies and sizes.
func TestScratchReuse(t *testing.T) {
	gen := simrng.New(99)
	var sc Scratch
	for round := 0; round < 500; round++ {
		sel := allSelections[round%len(allSelections)]
		entries := randomEntries(gen, 1+round%40)
		n := 1 + round%7
		seed := uint64(round + 1)
		ref := PickN(simrng.New(seed), sel, entries, n)
		got := sc.PickN(simrng.New(seed), sel, entries, n)
		if len(ref) != len(got) {
			t.Fatalf("round %d: len %d != %d", round, len(got), len(ref))
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("round %d (%v): got %v want %v", round, sel, got, ref)
			}
		}
	}
}

// TestScratchPickDelegates pins the scratch Pick to the reference.
func TestScratchPickDelegates(t *testing.T) {
	gen := simrng.New(5)
	entries := randomEntries(gen, 31)
	var sc Scratch
	for _, sel := range allSelections {
		for seed := uint64(1); seed < 10; seed++ {
			ref := Pick(simrng.New(seed), sel, entries)
			got := sc.Pick(simrng.New(seed), sel, entries)
			if ref != got {
				t.Fatalf("%v: Pick %d != %d", sel, got, ref)
			}
		}
	}
}

// TestScratchTopKExtremeScores exercises the heap with infinities and
// large magnitudes where comparison bugs would reorder winners.
func TestScratchTopKExtremeScores(t *testing.T) {
	entries := []cache.Entry{
		{Addr: 1, TS: math.Inf(1)},
		{Addr: 2, TS: -1e300},
		{Addr: 3, TS: math.Inf(-1)},
		{Addr: 4, TS: 1e300},
		{Addr: 5, TS: math.Inf(1)},
		{Addr: 6, TS: 0},
	}
	var sc Scratch
	for n := 1; n <= len(entries); n++ {
		ref := PickN(nil, SelMRU, entries, n)
		got := sc.PickN(nil, SelMRU, entries, n)
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("n=%d: got %v want %v", n, got, ref)
			}
		}
	}
}

// TestSelectorReset verifies a reused selector behaves exactly like a
// fresh one: same emission order, same RNG consumption.
func TestSelectorReset(t *testing.T) {
	gen := simrng.New(123)
	for _, sel := range allSelections {
		reused := NewSelector(sel, nil)
		for trial := 0; trial < 20; trial++ {
			entries := randomEntries(gen, 1+trial%25)
			seed := uint64(trial + 1)
			rFresh, rReused := simrng.New(seed), simrng.New(seed)
			fresh := NewSelector(sel, rFresh)
			reused.Reset(sel, rReused)
			for _, e := range entries {
				fresh.Add(e)
				reused.Add(e)
			}
			if fresh.Len() != reused.Len() {
				t.Fatalf("%v trial %d: Len %d != %d", sel, trial, reused.Len(), fresh.Len())
			}
			for {
				a, okA := fresh.Next()
				b, okB := reused.Next()
				if okA != okB {
					t.Fatalf("%v trial %d: exhaustion mismatch", sel, trial)
				}
				if !okA {
					break
				}
				if a != b {
					t.Fatalf("%v trial %d: entry %+v != %+v", sel, trial, b, a)
				}
			}
		}
	}
}

// TestSampleIndicesMatchesReference pins SampleIndices to the map-based
// Floyd loop it replaces (the engine's former samplePeers body): same
// indices in the same order, same RNG consumption, for every (n, k).
func TestSampleIndicesMatchesReference(t *testing.T) {
	reference := func(r *simrng.RNG, n, k int) []int {
		if k > n {
			k = n
		}
		chosen := make(map[int]bool, k)
		out := make([]int, 0, k)
		for i := n - k; i < n; i++ {
			j := r.Intn(i + 1)
			if chosen[j] {
				j = i
			}
			chosen[j] = true
			out = append(out, j)
		}
		return out
	}
	var sc Scratch
	for seed := uint64(1); seed <= 20; seed++ {
		for _, n := range []int{1, 2, 3, 10, 64, 500} {
			for _, k := range []int{0, 1, 2, n / 2, n - 1, n, n + 7} {
				rRef := simrng.New(seed * 13)
				rFast := simrng.New(seed * 13)
				ref := reference(rRef, n, k)
				got := sc.SampleIndices(rFast, n, k)
				if len(ref) != len(got) {
					t.Fatalf("n=%d k=%d: len %d != %d", n, k, len(got), len(ref))
				}
				for i := range ref {
					if ref[i] != got[i] {
						t.Fatalf("n=%d k=%d: idx[%d] = %d, want %d", n, k, i, got[i], ref[i])
					}
				}
				if a, b := rRef.Uint64(), rFast.Uint64(); a != b {
					t.Fatalf("n=%d k=%d: RNG diverged after call", n, k)
				}
				seen := make(map[int]bool, len(got))
				for _, j := range got {
					if j < 0 || j >= n || seen[j] {
						t.Fatalf("n=%d k=%d: invalid or duplicate index %d in %v", n, k, j, got)
					}
					seen[j] = true
				}
			}
		}
	}
}

// BenchmarkSampleIndices pins the zero-allocation guarantee of the
// population-sampling fast path.
func BenchmarkSampleIndices(b *testing.B) {
	r := simrng.New(1)
	var sc Scratch
	sc.SampleIndices(r, 1024, 16) // reach the high-water mark
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.SampleIndices(r, 1024, 16)
	}
}
