package guess

import (
	"context"
	"io"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/policy"
)

// Config holds all simulation parameters: the paper's system
// parameters (Table 1), protocol parameters (Table 2), the content
// model, and run control. Construct with DefaultConfig and override
// fields; see the field documentation on the underlying type.
type Config = core.Params

// Results holds a run's measurements: query cost and satisfaction,
// probe breakdowns, cache health, per-peer load, and overlay
// connectivity.
type Results = core.Results

// ContentParams configures the synthetic content and query model.
type ContentParams = content.Params

// DefaultConfig returns the paper's default configuration.
func DefaultConfig() Config { return core.DefaultParams() }

// DefaultContentParams returns the calibrated content-model defaults.
func DefaultContentParams() ContentParams { return content.DefaultParams() }

// MetricsRegistry collects named counters, gauges, and histograms.
// Attach one to a run with WithMetrics, then render it with
// WritePrometheus (text exposition format), WriteJSON, or Snapshot.
// A single registry may be shared by several runs; the counters then
// aggregate across them.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Observer receives simulation trace events (query lifecycle, probes,
// pongs, churn); attach one with WithObserver. Implementations must be
// fast — Observe runs inline on the simulation loop — and, when the
// same observer watches parallel runs, safe for concurrent use.
type Observer = obs.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = obs.ObserverFunc

// TraceEvent is one simulation trace event; see the Kind field and the
// Ev* constants for the schema (documented in README.md,
// "Observability").
type TraceEvent = obs.Event

// TraceEventKind classifies a TraceEvent.
type TraceEventKind = obs.EventKind

// TraceOutcome classifies probe, ping, and query-done events.
type TraceOutcome = obs.Outcome

// Trace event kinds.
const (
	EvQueryIssued = obs.EvQueryIssued
	EvProbeRound  = obs.EvProbeRound
	EvProbe       = obs.EvProbe
	EvPong        = obs.EvPong
	EvQueryDone   = obs.EvQueryDone
	EvPeerBirth   = obs.EvPeerBirth
	EvPeerDeath   = obs.EvPeerDeath
	EvPing        = obs.EvPing
)

// Trace outcomes.
const (
	OutcomeGood      = obs.OutcomeGood
	OutcomeDead      = obs.OutcomeDead
	OutcomeRefused   = obs.OutcomeRefused
	OutcomeSatisfied = obs.OutcomeSatisfied
	OutcomeExhausted = obs.OutcomeExhausted
	OutcomeAborted   = obs.OutcomeAborted
)

// TraceWriter is an Observer that appends events to a writer as JSON
// Lines; it is safe for concurrent use.
type TraceWriter = obs.TraceWriter

// NewTraceWriter returns a TraceWriter emitting every event kind;
// restrict it with Mask (e.g. TraceQueryEvents).
func NewTraceWriter(w io.Writer) *TraceWriter { return obs.NewTraceWriter(w) }

// Trace masks for TraceWriter.Mask.
const (
	// TraceQueryEvents selects the per-query kinds (issued, rounds,
	// probes, pongs, done).
	TraceQueryEvents = obs.QueryEventMask
	// TraceAllEvents additionally selects churn and ping events.
	TraceAllEvents = obs.AllEventMask
)

// Option customizes a Run.
type Option func(*runOptions)

type runOptions struct {
	observer Observer
	metrics  *MetricsRegistry
	progress io.Writer
}

// WithObserver streams trace events from the run to o. Observation
// never perturbs the simulation: a run with an observer attached is
// byte-identical to the same seed without one.
func WithObserver(o Observer) Option {
	return func(ro *runOptions) { ro.observer = o }
}

// WithMetrics registers the simulator metric set (guess_sim_*) in reg
// and updates it during the run. Metrics never perturb the simulation.
func WithMetrics(reg *MetricsRegistry) Option {
	return func(ro *runOptions) { ro.metrics = reg }
}

// WithProgress writes a short progress line to w at every cache-health
// sample interval.
func WithProgress(w io.Writer) Option {
	return func(ro *runOptions) { ro.progress = w }
}

// Run executes one GUESS simulation. Cancelling ctx stops the run
// early: Run then returns the partial Results measured so far, with
// Results.Interrupted set and a nil error. A nil ctx is treated as
// context.Background().
func Run(ctx context.Context, cfg Config, opts ...Option) (*Results, error) {
	var ro runOptions
	for _, opt := range opts {
		opt(&ro)
	}
	engine, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if ro.observer != nil {
		engine.SetObserver(ro.observer)
	}
	if ro.metrics != nil {
		engine.SetMetrics(obs.NewSimMetrics(ro.metrics))
	}
	if ro.progress != nil {
		engine.SetProgress(ro.progress)
	}
	return engine.Run(ctx)
}

// RunConfig is the pre-context, pre-option Run input, kept so existing
// callers keep compiling with a one-line change.
//
// Deprecated: use Run(ctx, cfg, opts...) directly.
type RunConfig struct {
	// Config holds the simulation parameters.
	Config Config
	// Progress, when non-nil, receives periodic progress lines.
	Progress io.Writer
}

// Run executes the configured simulation without cancellation.
//
// Deprecated: use the package-level Run with a context and options.
func (rc RunConfig) Run() (*Results, error) {
	var opts []Option
	if rc.Progress != nil {
		opts = append(opts, WithProgress(rc.Progress))
	}
	return Run(context.Background(), rc.Config, opts...)
}

// Selection orders cache entries for probing and pong construction
// (the QueryProbe, QueryPong, PingProbe and PingPong policy types).
type Selection = policy.Selection

// Selection policies (Section 4 of the paper).
const (
	// Random selects uniformly; the fairness baseline.
	Random = policy.SelRandom
	// MRU prefers recently contacted peers (most likely alive).
	MRU = policy.SelMRU
	// LRU prefers stale entries (spreads load, risks dead peers).
	LRU = policy.SelLRU
	// MFS prefers peers sharing the most files.
	MFS = policy.SelMFS
	// MR prefers peers that returned the most results.
	MR = policy.SelMR
	// MRStar is MR using only first-hand experience (robust to lies).
	MRStar = policy.SelMRStar
)

// Eviction picks link-cache victims (the CacheReplacement policy
// type). Names follow the paper: the policy evicts what it names.
type Eviction = policy.Eviction

// Cache replacement policies (Section 4 of the paper).
const (
	// EvictRandom evicts a uniformly random entry.
	EvictRandom = policy.EvRandom
	// EvictLRU evicts the least recently used entry (keeps recency).
	EvictLRU = policy.EvLRU
	// EvictMRU evicts the most recently used entry (keeps stale ones).
	EvictMRU = policy.EvMRU
	// EvictLFS evicts the peer sharing the fewest files (the MFS goal).
	EvictLFS = policy.EvLFS
	// EvictLR evicts the peer with the fewest results (the MR goal).
	EvictLR = policy.EvLR
	// EvictLRStar is EvictLR on first-hand experience only.
	EvictLRStar = policy.EvLRStar
)

// EvictionFor returns the cache-replacement policy that retains what
// sel prefers (MFS -> EvictLFS, MR -> EvictLR, and so on).
func EvictionFor(sel Selection) Eviction { return policy.EvictionFor(sel) }

// ParseSelection resolves a selection policy name ("Random", "MRU",
// "LRU", "MFS", "MR", "MR*").
func ParseSelection(name string) (Selection, error) { return policy.ParseSelection(name) }

// ParseEviction resolves an eviction policy name ("Random", "LRU",
// "MRU", "LFS", "LR", "LR*").
func ParseEviction(name string) (Eviction, error) { return policy.ParseEviction(name) }

// BadPongBehavior is what a malicious peer puts in its pongs.
type BadPongBehavior = core.BadPongBehavior

// Malicious pong behaviors (Section 6.4 of the paper).
const (
	// BadPongDead poisons caches with fabricated dead addresses.
	BadPongDead = core.BadPongDead
	// BadPongBad poisons caches with colluders' addresses.
	BadPongBad = core.BadPongBad
	// BadPongGood returns genuine entries (the peer still returns no
	// results).
	BadPongGood = core.BadPongGood
)

// ParseBadPongBehavior resolves a malicious pong behavior name
// ("Dead", "Bad", "Good").
func ParseBadPongBehavior(name string) (BadPongBehavior, error) {
	return core.ParseBadPongBehavior(name)
}

// ExperimentOptions configures experiment regeneration (scale, seed,
// parallelism, progress output).
type ExperimentOptions = experiments.Options

// ExperimentResult is a regenerated table/figure.
type ExperimentResult = experiments.Result

// Experiment scales.
const (
	// ScaleQuick runs small networks for fast turnaround.
	ScaleQuick = experiments.Quick
	// ScaleFull runs the paper's network sizes and durations.
	ScaleFull = experiments.Full
)

// ExperimentIDs lists every reproducible paper artifact ("table3",
// "fig3" ... "fig21") in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitle describes an experiment ID.
func ExperimentTitle(id string) (string, error) { return experiments.Title(id) }

// Experiment is a typed handle on one paper artifact: inspect its
// sweep specs (Specs) or execute it (Run).
type Experiment = experiments.Experiment

// ExperimentFamily discriminates the protocol families an experiment
// point can run on ("guess", "flood", "gossip", "dht").
type ExperimentFamily = experiments.Family

// ExperimentSpec is a serializable description of one sweep: the
// protocol family plus the fully-resolved parameters of every point.
type ExperimentSpec = experiments.Spec

// ExperimentPoint is one serializable, content-addressed sweep work
// unit (see its Key method).
type ExperimentPoint = experiments.Point

// ExperimentPointResult is the serializable outcome of one point.
type ExperimentPointResult = experiments.PointResult

// LookupExperiment resolves an experiment ID to its typed handle.
func LookupExperiment(id string) (Experiment, error) {
	return experiments.Lookup(id)
}

// RunExperiment regenerates one paper table or figure.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentResult, error) {
	exp, err := experiments.Lookup(id)
	if err != nil {
		return nil, err
	}
	return exp.Run(opts)
}
