// Package nodoc holds well-formed registrations that appear in no
// README; with the documentation check disabled they must pass.
package nodoc

import (
	"repro/internal/obs"
)

func register(reg *obs.Registry) {
	reg.Counter("guess_sim_probes_total", "")
	reg.Gauge("guess_node_cache_entries", "")
}
