package obs

import (
	"math"
	"strings"
	"testing"
)

// TestCounterOverflowWraps pins the documented wrap-on-overflow
// behavior: a counter at MaxUint64 rolls over to zero rather than
// saturating.
func TestCounterOverflowWraps(t *testing.T) {
	var c Counter
	c.Add(math.MaxUint64)
	if got := c.Value(); got != math.MaxUint64 {
		t.Fatalf("Value() = %d, want MaxUint64", got)
	}
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("after overflow Value() = %d, want 0 (wrap)", got)
	}
	c.Add(5)
	if got := c.Value(); got != 5 {
		t.Fatalf("after wrap Value() = %d, want 5", got)
	}
}

func TestNilInstrumentsAbsorbUpdates(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments should read as zero")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", []float64{1}) != nil {
		t.Fatal("nil registry should register nil instruments")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

// TestHistogramBucketBoundaries pins the Prometheus "le" semantics:
// a value equal to an upper bound lands in that bucket, the first
// value above every bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 5.0000001, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 2} // per-bucket (non-cumulative) counts
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 7 {
		t.Errorf("Count() = %d, want 7", got)
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 5 + 5.0000001 + 100
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-9 {
		t.Errorf("Sum() = %v, want %v", got, wantSum)
	}
}

func TestRegistryIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a_total", "help")
	c2 := r.Counter("a_total", "ignored")
	if c1 != c2 {
		t.Fatal("re-registering a counter should return the same instrument")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind mismatch should panic")
			}
		}()
		r.Gauge("a_total", "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid name should panic")
			}
		}()
		r.Counter("0bad", "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unsorted buckets should panic")
			}
		}()
		r.Histogram("h", "", []float64{2, 1})
	}()
}

// TestWritePrometheusGolden pins the exposition format byte for byte:
// HELP/TYPE lines, sorted metric order, cumulative le buckets, and
// shortest-round-trip float formatting.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "Last by name.").Add(7)
	r.Gauge("aa_gauge", "First by name.").Set(1.5)
	h := r.Histogram("mm_seconds", "A histogram.", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_gauge First by name.
# TYPE aa_gauge gauge
aa_gauge 1.5
# HELP mm_seconds A histogram.
# TYPE mm_seconds histogram
mm_seconds_bucket{le="0.5"} 2
mm_seconds_bucket{le="2"} 2
mm_seconds_bucket{le="+Inf"} 3
mm_seconds_sum 3.75
mm_seconds_count 3
# HELP zz_total Last by name.
# TYPE zz_total counter
zz_total 7
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.Gauge("g", "").Set(2.5)
	r.Histogram("h", "", []float64{1}).Observe(4)

	s := r.Snapshot()
	if s.Counters["c_total"] != 3 || s.Gauges["g"] != 2.5 {
		t.Fatalf("snapshot scalars wrong: %+v", s)
	}
	hs := s.Histograms["h"]
	if hs.Count != 1 || hs.Sum != 4 {
		t.Fatalf("snapshot histogram wrong: %+v", hs)
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"le": "+Inf"`) {
		t.Fatalf("+Inf bucket should serialize as a string:\n%s", b.String())
	}
}

// TestTraceWriterGolden pins the JSONL schema: one object per line,
// kind-dependent fields, query id omitted outside query events.
func TestTraceWriterGolden(t *testing.T) {
	var b strings.Builder
	tw := NewTraceWriter(&b)
	events := []Event{
		{Kind: EvQueryIssued, Time: 100, Query: 1, Peer: 42},
		{Kind: EvProbeRound, Time: 100, Query: 1, Peer: 42, Round: 1, Probes: 0},
		{Kind: EvProbe, Time: 100, Query: 1, Peer: 42, Target: 7, Outcome: OutcomeGood, Results: 2},
		{Kind: EvPong, Time: 100, Query: 1, Peer: 42, Target: 7, Entries: 5},
		{Kind: EvProbe, Time: 100.2, Query: 1, Peer: 42, Target: 9, Outcome: OutcomeDead},
		{Kind: EvQueryDone, Time: 100.4, Query: 1, Peer: 42, Outcome: OutcomeSatisfied, Probes: 2, Results: 2},
		{Kind: EvPeerBirth, Time: 101, Peer: 99},
		{Kind: EvPing, Time: 102, Peer: 99, Target: 42, Outcome: OutcomeGood},
	}
	for _, ev := range events {
		tw.Observe(ev)
	}
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	want := `{"ev":"query_issued","t":100.000,"query":1,"peer":42}
{"ev":"probe_round","t":100.000,"query":1,"peer":42,"round":1,"probes":0}
{"ev":"probe","t":100.000,"query":1,"peer":42,"target":7,"outcome":"good","results":2}
{"ev":"pong","t":100.000,"query":1,"peer":42,"target":7,"entries":5}
{"ev":"probe","t":100.200,"query":1,"peer":42,"target":9,"outcome":"dead","results":0}
{"ev":"query_done","t":100.400,"query":1,"peer":42,"outcome":"satisfied","probes":2,"results":2}
{"ev":"peer_birth","t":101.000,"peer":99}
{"ev":"ping","t":102.000,"peer":99,"target":42,"outcome":"good"}
`
	if got := b.String(); got != want {
		t.Fatalf("trace mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTraceWriterMask(t *testing.T) {
	var b strings.Builder
	tw := NewTraceWriter(&b).Mask(QueryEventMask)
	tw.Observe(Event{Kind: EvPeerBirth, Time: 1, Peer: 1})
	tw.Observe(Event{Kind: EvPing, Time: 1, Peer: 1, Target: 2, Outcome: OutcomeGood})
	tw.Observe(Event{Kind: EvQueryIssued, Time: 1, Query: 1, Peer: 1})
	got := b.String()
	if strings.Contains(got, "peer_birth") || strings.Contains(got, `"ping"`) {
		t.Fatalf("masked kinds leaked:\n%s", got)
	}
	if !strings.Contains(got, "query_issued") {
		t.Fatalf("unmasked kind missing:\n%s", got)
	}
}

func TestTeeFansOut(t *testing.T) {
	var a, b int
	Tee(
		ObserverFunc(func(Event) { a++ }),
		ObserverFunc(func(Event) { b++ }),
	).Observe(Event{Kind: EvQueryIssued})
	if a != 1 || b != 1 {
		t.Fatalf("tee delivered (%d,%d), want (1,1)", a, b)
	}
}
