package policy

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/simrng"
)

func entries(n int) []cache.Entry {
	out := make([]cache.Entry, n)
	for i := range out {
		out[i] = cache.Entry{
			Addr:     cache.PeerID(i + 1),
			TS:       float64(i),
			NumFiles: int32(10 * (i + 1)),
			NumRes:   int32(i % 3),
			Direct:   i%2 == 0,
		}
	}
	return out
}

func TestSelectionStringAndParse(t *testing.T) {
	for _, s := range []Selection{SelRandom, SelMRU, SelLRU, SelMFS, SelMR, SelMRStar} {
		if !s.Valid() {
			t.Fatalf("%v not valid", s)
		}
		got, err := ParseSelection(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip %v: got %v, err %v", s, got, err)
		}
	}
	if _, err := ParseSelection("bogus"); err == nil {
		t.Fatal("ParseSelection accepted bogus name")
	}
	if Selection(0).Valid() {
		t.Fatal("zero Selection reported valid")
	}
}

func TestEvictionStringAndParse(t *testing.T) {
	for _, ev := range []Eviction{EvRandom, EvLRU, EvMRU, EvLFS, EvLR, EvLRStar} {
		if !ev.Valid() {
			t.Fatalf("%v not valid", ev)
		}
		got, err := ParseEviction(ev.String())
		if err != nil || got != ev {
			t.Fatalf("round trip %v: got %v, err %v", ev, got, err)
		}
	}
	if _, err := ParseEviction("bogus"); err == nil {
		t.Fatal("ParseEviction accepted bogus name")
	}
}

func TestEvictionFor(t *testing.T) {
	pairs := map[Selection]Eviction{
		SelRandom: EvRandom,
		SelMRU:    EvLRU,
		SelLRU:    EvMRU,
		SelMFS:    EvLFS,
		SelMR:     EvLR,
		SelMRStar: EvLRStar,
	}
	//lint:maporder-ok iterations are independent checks; no state crosses entries
	for sel, want := range pairs {
		if got := EvictionFor(sel); got != want {
			t.Errorf("EvictionFor(%v) = %v, want %v", sel, got, want)
		}
	}
}

func TestScores(t *testing.T) {
	e := cache.Entry{TS: 5, NumFiles: 7, NumRes: 3, Direct: false}
	tests := []struct {
		sel  Selection
		want float64
	}{
		{SelMRU, 5},
		{SelLRU, -5},
		{SelMFS, 7},
		{SelMR, 3},
		{SelMRStar, 0}, // indirect NumRes distrusted
	}
	for _, tt := range tests {
		if got := tt.sel.Score(e); got != tt.want {
			t.Errorf("%v.Score = %v, want %v", tt.sel, got, tt.want)
		}
	}
	e.Direct = true
	if got := SelMRStar.Score(e); got != 3 {
		t.Errorf("MR* direct score = %v, want 3", got)
	}
}

func TestPick(t *testing.T) {
	es := entries(5)
	r := simrng.New(1)
	tests := []struct {
		sel  Selection
		want cache.PeerID
	}{
		{SelMRU, 5}, // newest TS
		{SelLRU, 1}, // oldest TS
		{SelMFS, 5}, // most files
	}
	for _, tt := range tests {
		i := Pick(r, tt.sel, es)
		if es[i].Addr != tt.want {
			t.Errorf("Pick(%v) chose %d, want %d", tt.sel, es[i].Addr, tt.want)
		}
	}
	if Pick(r, SelMFS, nil) != -1 {
		t.Error("Pick on empty slice did not return -1")
	}
	// Random picks stay in range and cover the slice.
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		j := Pick(r, SelRandom, es)
		if j < 0 || j >= len(es) {
			t.Fatalf("random pick %d out of range", j)
		}
		seen[j] = true
	}
	if len(seen) != len(es) {
		t.Errorf("random pick covered %d/%d indices", len(seen), len(es))
	}
}

func TestPickTieBreaksByIndex(t *testing.T) {
	es := []cache.Entry{{Addr: 1, NumFiles: 5}, {Addr: 2, NumFiles: 5}}
	if i := Pick(simrng.New(1), SelMFS, es); i != 0 {
		t.Fatalf("tie broke to index %d, want 0", i)
	}
}

func TestPickN(t *testing.T) {
	es := entries(6)
	r := simrng.New(2)

	got := PickN(r, SelMFS, es, 3)
	if len(got) != 3 {
		t.Fatalf("PickN returned %d indices", len(got))
	}
	// Top three by NumFiles are the last three entries.
	want := map[cache.PeerID]bool{4: true, 5: true, 6: true}
	for _, i := range got {
		if !want[es[i].Addr] {
			t.Fatalf("PickN(MFS) chose addr %d", es[i].Addr)
		}
	}

	if got := PickN(r, SelMFS, es, 100); len(got) != len(es) {
		t.Fatalf("PickN clamped to %d, want %d", len(got), len(es))
	}
	if PickN(r, SelMFS, es, 0) != nil {
		t.Fatal("PickN with n=0 returned entries")
	}
	if PickN(r, SelRandom, nil, 3) != nil {
		t.Fatal("PickN on empty slice returned entries")
	}
}

func TestPickNRandomDistinct(t *testing.T) {
	es := entries(10)
	r := simrng.New(3)
	f := func(uint8) bool {
		got := PickN(r, SelRandom, es, 4)
		seen := make(map[int]bool)
		for _, i := range got {
			if i < 0 || i >= len(es) || seen[i] {
				return false
			}
			seen[i] = true
		}
		return len(got) == 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertWithRoom(t *testing.T) {
	c := cache.NewLinkCache(2)
	r := simrng.New(1)
	if !Insert(r, EvLFS, c, cache.Entry{Addr: 1, NumFiles: 1}) {
		t.Fatal("insert into empty cache failed")
	}
	if Insert(r, EvLFS, c, cache.Entry{Addr: 1, NumFiles: 99}) {
		t.Fatal("duplicate insert succeeded")
	}
}

func TestInsertEvictsWorst(t *testing.T) {
	c := cache.NewLinkCache(2)
	r := simrng.New(1)
	Insert(r, EvLFS, c, cache.Entry{Addr: 1, NumFiles: 10})
	Insert(r, EvLFS, c, cache.Entry{Addr: 2, NumFiles: 50})
	// Candidate with 30 files beats the 10-file resident.
	if !Insert(r, EvLFS, c, cache.Entry{Addr: 3, NumFiles: 30}) {
		t.Fatal("better candidate rejected")
	}
	if c.Has(1) || !c.Has(2) || !c.Has(3) {
		t.Fatal("wrong victim evicted")
	}
	// Candidate with 5 files loses to both residents.
	if Insert(r, EvLFS, c, cache.Entry{Addr: 4, NumFiles: 5}) {
		t.Fatal("worse candidate accepted")
	}
}

func TestInsertLRUKeepsRecent(t *testing.T) {
	c := cache.NewLinkCache(2)
	r := simrng.New(1)
	Insert(r, EvLRU, c, cache.Entry{Addr: 1, TS: 1})
	Insert(r, EvLRU, c, cache.Entry{Addr: 2, TS: 10})
	if !Insert(r, EvLRU, c, cache.Entry{Addr: 3, TS: 5}) {
		t.Fatal("fresher candidate rejected")
	}
	if c.Has(1) {
		t.Fatal("EvLRU kept the stalest entry")
	}
}

func TestInsertRandomProbability(t *testing.T) {
	r := simrng.New(9)
	const trials = 20000
	inserted := 0
	for i := 0; i < trials; i++ {
		c := cache.NewLinkCache(4)
		for j := 1; j <= 4; j++ {
			c.Add(cache.Entry{Addr: cache.PeerID(j)})
		}
		if Insert(r, EvRandom, c, cache.Entry{Addr: 99}) {
			inserted++
		}
		if c.Len() != 4 {
			t.Fatal("random insert changed cache size")
		}
	}
	got := float64(inserted) / trials
	if want := 4.0 / 5.0; math.Abs(got-want) > 0.02 {
		t.Fatalf("random insert rate %v, want ~%v", got, want)
	}
}

func TestSelectorScoredOrder(t *testing.T) {
	s := NewSelector(SelMFS, nil)
	for _, files := range []int32{5, 40, 10, 40, 1} {
		s.Add(cache.Entry{Addr: cache.PeerID(files), NumFiles: files})
	}
	var got []int32
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, e.NumFiles)
	}
	want := []int32{40, 40, 10, 5, 1}
	if len(got) != len(want) {
		t.Fatalf("drained %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSelectorFIFOOnTies(t *testing.T) {
	s := NewSelector(SelMFS, nil)
	for i := 1; i <= 50; i++ {
		s.Add(cache.Entry{Addr: cache.PeerID(i), NumFiles: 7})
	}
	for i := 1; i <= 50; i++ {
		e, ok := s.Next()
		if !ok || e.Addr != cache.PeerID(i) {
			t.Fatalf("tie order broken at %d: got %d", i, e.Addr)
		}
	}
}

func TestSelectorRandomDrainsAll(t *testing.T) {
	s := NewSelector(SelRandom, simrng.New(4))
	want := make(map[cache.PeerID]bool)
	for i := 1; i <= 30; i++ {
		s.Add(cache.Entry{Addr: cache.PeerID(i)})
		want[cache.PeerID(i)] = true
	}
	if s.Len() != 30 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < 30; i++ {
		e, ok := s.Next()
		if !ok || !want[e.Addr] {
			t.Fatalf("unexpected entry %v, ok=%v", e.Addr, ok)
		}
		delete(want, e.Addr)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next on empty selector returned an entry")
	}
}

// TestSelectorMatchesSort: for scored policies, draining the selector
// must equal sorting by (score desc, insertion order).
func TestSelectorMatchesSort(t *testing.T) {
	f := func(files []uint8) bool {
		s := NewSelector(SelMFS, nil)
		type rec struct {
			files int32
			seq   int
		}
		recs := make([]rec, len(files))
		for i, fl := range files {
			e := cache.Entry{Addr: cache.PeerID(i), NumFiles: int32(fl)}
			s.Add(e)
			recs[i] = rec{int32(fl), i}
		}
		sort.SliceStable(recs, func(a, b int) bool { return recs[a].files > recs[b].files })
		for _, r := range recs {
			e, ok := s.Next()
			if !ok || e.NumFiles != r.files {
				return false
			}
		}
		_, ok := s.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
