// Package overlay analyzes the "conceptual overlay" of a GUESS
// network: the directed graph whose nodes are live peers and whose
// edges are link-cache entries pointing at live peers (Figure 2 of the
// paper). The paper's connectivity experiments (Figures 6 and 7)
// measure the size of the largest connected component of this graph as
// the ping interval and cache size vary.
//
// Connectivity here means weak connectivity: a peer belongs to the
// network if information can circulate between it and the rest of the
// overlay ignoring edge direction, which is the sense in which a
// fragmented overlay "cannot heal". Strongly connected components are
// also provided for finer-grained analysis.
package overlay

import (
	"fmt"
	"sort"

	"repro/internal/cache"
)

// Graph is an immutable snapshot of the conceptual overlay.
type Graph struct {
	nodes []cache.PeerID
	index map[cache.PeerID]int
	// adj[i] lists indices of nodes that node i points at.
	adj [][]int
	// edges counts total directed edges (to live nodes only).
	edges int
}

// Builder accumulates a snapshot. Add all nodes first, then edges;
// edges to unknown (dead) targets are counted separately and excluded
// from the graph.
type Builder struct {
	g         *Graph
	deadEdges int
}

// NewBuilder returns a Builder expecting roughly n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{g: &Graph{
		nodes: make([]cache.PeerID, 0, n),
		index: make(map[cache.PeerID]int, n),
	}}
}

// AddNode registers a live peer. Duplicate registrations are an error.
func (b *Builder) AddNode(id cache.PeerID) error {
	if _, ok := b.g.index[id]; ok {
		return fmt.Errorf("overlay: duplicate node %d", id)
	}
	b.g.index[id] = len(b.g.nodes)
	b.g.nodes = append(b.g.nodes, id)
	b.g.adj = append(b.g.adj, nil)
	return nil
}

// AddEdge records a link-cache entry from -> to. Edges whose target is
// not a registered (live) node are tallied as dead edges and dropped;
// self-loops are ignored. Unknown sources are an error.
func (b *Builder) AddEdge(from, to cache.PeerID) error {
	fi, ok := b.g.index[from]
	if !ok {
		return fmt.Errorf("overlay: edge from unknown node %d", from)
	}
	if from == to {
		return nil
	}
	ti, ok := b.g.index[to]
	if !ok {
		b.deadEdges++
		return nil
	}
	b.g.adj[fi] = append(b.g.adj[fi], ti)
	b.g.edges++
	return nil
}

// Graph finalizes and returns the snapshot along with the number of
// dropped dead edges.
func (b *Builder) Graph() (*Graph, int) {
	return b.g, b.deadEdges
}

// NumNodes returns the number of live peers in the snapshot.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of live directed edges.
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns the node IDs in insertion order.
func (g *Graph) Nodes() []cache.PeerID {
	return append([]cache.PeerID(nil), g.nodes...)
}

// LargestWCC returns the size of the largest weakly connected
// component (0 for an empty graph), computed with a union-find over
// the undirected projection.
func (g *Graph) LargestWCC() int {
	n := len(g.nodes)
	if n == 0 {
		return 0
	}
	uf := newUnionFind(n)
	for from, targets := range g.adj {
		for _, to := range targets {
			uf.union(from, to)
		}
	}
	return uf.largest()
}

// WCCSizes returns the sizes of all weakly connected components in
// descending order.
func (g *Graph) WCCSizes() []int {
	n := len(g.nodes)
	if n == 0 {
		return nil
	}
	uf := newUnionFind(n)
	for from, targets := range g.adj {
		for _, to := range targets {
			uf.union(from, to)
		}
	}
	counts := make(map[int]int, n)
	for i := 0; i < n; i++ {
		counts[uf.find(i)]++
	}
	sizes := make([]int, 0, len(counts))
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// LargestSCC returns the size of the largest strongly connected
// component, using Tarjan's algorithm (iterative, to avoid deep
// recursion on large overlays).
func (g *Graph) LargestSCC() int {
	n := len(g.nodes)
	if n == 0 {
		return 0
	}
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int // Tarjan stack
		next    = 0
		largest = 0
	)
	type frame struct {
		v, childIdx int
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		call := []frame{{v: start}}
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.childIdx == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.childIdx < len(g.adj[v]) {
				w := g.adj[v][f.childIdx]
				f.childIdx++
				if index[w] == unvisited {
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished: pop an SCC if v is a root.
			if low[v] == index[v] {
				size := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					size++
					if w == v {
						break
					}
				}
				if size > largest {
					largest = size
				}
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return largest
}

// OutDegrees returns each node's out-degree (live edges only), aligned
// with Nodes().
func (g *Graph) OutDegrees() []int {
	out := make([]int, len(g.adj))
	for i, targets := range g.adj {
		out[i] = len(targets)
	}
	return out
}

// InDegrees returns each node's in-degree, aligned with Nodes().
func (g *Graph) InDegrees() []int {
	in := make([]int, len(g.adj))
	for _, targets := range g.adj {
		for _, to := range targets {
			in[to]++
		}
	}
	return in
}

// ReachableFrom returns how many nodes are reachable from id following
// directed edges (including id itself). It returns 0 if id is not in
// the snapshot.
func (g *Graph) ReachableFrom(id cache.PeerID) int {
	start, ok := g.index[id]
	if !ok {
		return 0
	}
	seen := make([]bool, len(g.nodes))
	seen[start] = true
	queue := []int{start}
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count
}

// WCCScratch is a reusable union-find for repeated largest-WCC
// computations over index-identified nodes. A simulator that samples
// connectivity every few virtual seconds resets one WCCScratch per
// sample instead of rebuilding a Builder + Graph, so steady-state
// sampling does not allocate (the backing arrays grow once to the
// population high-water mark).
//
// Nodes are dense indices [0, n); the caller supplies its own
// index-to-peer mapping (a simulation engine already has one). The
// zero value is ready to use after Reset.
type WCCScratch struct {
	parent, size []int
}

// Reset prepares the scratch for a snapshot of n nodes, each initially
// its own component.
func (s *WCCScratch) Reset(n int) {
	if cap(s.parent) < n {
		s.parent = make([]int, n)
		s.size = make([]int, n)
	}
	s.parent = s.parent[:n]
	s.size = s.size[:n]
	for i := 0; i < n; i++ {
		s.parent[i] = i
		s.size[i] = 1
	}
}

// Union merges the components of nodes a and b (an undirected edge:
// weak connectivity ignores direction). Self-loops are no-ops.
func (s *WCCScratch) Union(a, b int) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	if s.size[ra] < s.size[rb] {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	s.size[ra] += s.size[rb]
}

// Largest returns the size of the largest component (0 when Reset(0)).
func (s *WCCScratch) Largest() int {
	best := 0
	for i := range s.parent {
		if s.parent[i] == i && s.size[i] > best {
			best = s.size[i]
		}
	}
	return best
}

// find is path-halving lookup, identical to unionFind.find.
func (s *WCCScratch) find(x int) int {
	for s.parent[x] != x {
		s.parent[x] = s.parent[s.parent[x]]
		x = s.parent[x]
	}
	return x
}

// unionFind is a weighted quick-union with path halving.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}

func (uf *unionFind) largest() int {
	best := 0
	for i := range uf.parent {
		if uf.parent[i] == i && uf.size[i] > best {
			best = uf.size[i]
		}
	}
	return best
}
