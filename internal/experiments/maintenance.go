package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

func init() {
	register("table3", "Table 3: live link-cache entries vs cache size", runTable3)
	register("fig3", "Figure 3: probes per query vs cache size", runFig3)
	register("fig4", "Figure 4: unsatisfaction vs cache size", runFig4)
	register("fig5", "Figure 5: dead vs good probes vs cache size", runFig5)
	register("fig6", "Figure 6: overlay connectivity vs ping interval (by cache size)", runFig6)
	register("fig7", "Figure 7: overlay connectivity vs ping interval (by network size)", runFig7)
}

// strainParams is the Section 6.1 configuration: extra churn via
// LifespanMultiplier = 0.2.
func strainParams(opts Options) core.Params {
	p := opts.baseParams()
	p.LifespanMultiplier = 0.2
	return p
}

func runTable3(opts Options) (*Result, error) {
	cacheSizes := []int{10, 20, 50, 100, 200, 500}
	base := strainParams(opts)
	params := make([]core.Params, len(cacheSizes))
	for i, c := range cacheSizes {
		p := base
		p.CacheSize = c
		params[i] = p
	}
	results, err := runAll(opts, params)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 3: breakdown of live cache entries",
		"CacheSize", "FractionLive", "AbsoluteLive")
	for i, c := range cacheSizes {
		t.AddRow(c, results[i].AvgLiveFraction, results[i].AvgLiveEntries)
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

// cacheSweep runs the Figures 3-5 sweep: cache size x network size
// under churn strain.
func cacheSweep(opts Options, networkSizes []int) (map[int][]int, map[int][]*core.Results, error) {
	var params []core.Params
	type key struct{ n, idx int }
	sizes := make(map[int][]int, len(networkSizes))
	var order []key
	for _, n := range networkSizes {
		cs := cacheSizesFor(n, opts.Scale)
		sizes[n] = cs
		for i := range cs {
			p := strainParams(opts)
			p.NetworkSize = n
			p.CacheSize = cs[i]
			params = append(params, p)
			order = append(order, key{n, i})
		}
	}
	flat, err := runAllMemo(opts, fmt.Sprintf("cacheSweep%v", networkSizes), params)
	if err != nil {
		return nil, nil, err
	}
	byNet := make(map[int][]*core.Results, len(networkSizes))
	for _, n := range networkSizes {
		byNet[n] = make([]*core.Results, len(sizes[n]))
	}
	for j, k := range order {
		byNet[k.n][k.idx] = flat[j]
	}
	return sizes, byNet, nil
}

func runFig3(opts Options) (*Result, error) {
	nets := networkSizesFor(opts.Scale)
	sizes, byNet, err := cacheSweep(opts, nets)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 3: probes per query vs cache size",
		"NetworkSize", "CacheSize", "ProbesPerQuery")
	chart := report.NewChart("Figure 3", "CacheSize", "Probes/Query")
	chart.LogX = true
	for _, n := range nets {
		var xs, ys []float64
		for i, c := range sizes[n] {
			ppq := byNet[n][i].ProbesPerQuery()
			t.AddRow(n, c, ppq)
			xs = append(xs, float64(c))
			ys = append(ys, ppq)
		}
		if err := chart.Add(report.Series{Name: fmt.Sprintf("N=%d", n), X: xs, Y: ys}); err != nil {
			return nil, err
		}
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}

func runFig4(opts Options) (*Result, error) {
	nets := networkSizesFor(opts.Scale)
	sizes, byNet, err := cacheSweep(opts, nets)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 4: unsatisfaction vs cache size",
		"NetworkSize", "CacheSize", "Unsatisfaction")
	chart := report.NewChart("Figure 4", "CacheSize", "Unsatisfied fraction")
	chart.LogX = true
	for _, n := range nets {
		var xs, ys []float64
		for i, c := range sizes[n] {
			u := byNet[n][i].UnsatisfactionWithAborted()
			t.AddRow(n, c, u)
			xs = append(xs, float64(c))
			ys = append(ys, u)
		}
		if err := chart.Add(report.Series{Name: fmt.Sprintf("N=%d", n), X: xs, Y: ys}); err != nil {
			return nil, err
		}
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}

func runFig5(opts Options) (*Result, error) {
	n := 1000
	if opts.Scale == Quick {
		n = 400
	}
	sizes, byNet, err := cacheSweep(opts, []int{n})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 5: dead vs good probes per query (NetworkSize=%d)", n),
		"CacheSize", "GoodProbes", "DeadProbes")
	chart := report.NewChart("Figure 5", "CacheSize", "Probes/Query")
	chart.LogX = true
	var xs, good, dead []float64
	for i, c := range sizes[n] {
		r := byNet[n][i]
		t.AddRow(c, r.GoodProbesPerQuery(), r.DeadProbesPerQuery())
		xs = append(xs, float64(c))
		good = append(good, r.GoodProbesPerQuery())
		dead = append(dead, r.DeadProbesPerQuery())
	}
	if err := chart.Add(report.Series{Name: "Good", X: xs, Y: good}); err != nil {
		return nil, err
	}
	if err := chart.Add(report.Series{Name: "Dead", X: xs, Y: dead}); err != nil {
		return nil, err
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}

// pingIntervals is the Figures 6-7 x-axis.
func pingIntervals(scale Scale) []float64 {
	if scale == Full {
		return []float64{15, 60, 120, 240, 480, 600}
	}
	return []float64{15, 60, 240, 600}
}

// connectivityParams configures the Section 6.1 connectivity study:
// pings only, overlay sampling on. The study keeps the section's
// churn strain (LifespanMultiplier=0.2) — without it the overlay never
// fragments at any ping interval the paper plots — and runs long
// enough for link caches to reach their inheritance steady state
// (newborns copy their friend's cache, so occupancy builds over
// generations).
func connectivityParams(opts Options) core.Params {
	p := opts.baseParams()
	p.QueriesEnabled = false
	p.SampleConnectivity = true
	p.SampleInterval = 120
	p.LifespanMultiplier = 0.2
	if opts.Scale == Full {
		p.WarmupTime, p.MeasureTime = 2000, 6000
	} else {
		p.WarmupTime, p.MeasureTime = 1000, 3000
	}
	return p
}

func runFig6(opts Options) (*Result, error) {
	cacheSizes := []int{10, 20, 50, 100, 200, 500}
	if opts.Scale == Quick {
		cacheSizes = []int{10, 50, 200}
	}
	intervals := pingIntervals(opts.Scale)
	n := 1000
	if opts.Scale == Quick {
		n = 400
	}
	var params []core.Params
	for _, c := range cacheSizes {
		for _, pi := range intervals {
			p := connectivityParams(opts)
			p.NetworkSize = n
			p.CacheSize = c
			p.PingInterval = pi
			params = append(params, p)
		}
	}
	results, err := runAll(opts, params)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 6: largest connected component vs ping interval (NetworkSize=%d)", n),
		"CacheSize", "PingInterval", "LargestWCC")
	chart := report.NewChart("Figure 6", "PingInterval (s)", "Largest connected component")
	idx := 0
	for _, c := range cacheSizes {
		var xs, ys []float64
		for _, pi := range intervals {
			wcc := results[idx].AvgLargestWCC
			t.AddRow(c, pi, wcc)
			xs = append(xs, pi)
			ys = append(ys, wcc)
			idx++
		}
		if err := chart.Add(report.Series{Name: fmt.Sprintf("cache=%d", c), X: xs, Y: ys}); err != nil {
			return nil, err
		}
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}

func runFig7(opts Options) (*Result, error) {
	nets := []int{200, 500, 1000, 2000}
	if opts.Scale == Quick {
		nets = []int{200, 400}
	}
	intervals := pingIntervals(opts.Scale)
	var params []core.Params
	for _, n := range nets {
		for _, pi := range intervals {
			p := connectivityParams(opts)
			p.NetworkSize = n
			p.CacheSize = 20
			p.PingInterval = pi
			params = append(params, p)
		}
	}
	results, err := runAll(opts, params)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 7: relative largest connected component vs ping interval (CacheSize=20)",
		"NetworkSize", "PingInterval", "RelativeLargestWCC")
	chart := report.NewChart("Figure 7", "PingInterval (s)", "Relative largest component")
	idx := 0
	for _, n := range nets {
		var xs, ys []float64
		for _, pi := range intervals {
			rel := results[idx].AvgLargestWCC / float64(n)
			t.AddRow(n, pi, rel)
			xs = append(xs, pi)
			ys = append(ys, rel)
			idx++
		}
		if err := chart.Add(report.Series{Name: fmt.Sprintf("N=%d", n), X: xs, Y: ys}); err != nil {
			return nil, err
		}
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}
