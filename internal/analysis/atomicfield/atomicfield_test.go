package atomicfield_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicfield"
)

// TestFindings checks that plain accesses to atomically-maintained
// fields are flagged within one package, while all-atomic fields,
// plain-only fields, typed atomics, and reasoned suppressions pass.
func TestFindings(t *testing.T) {
	analysistest.Run(t, "testdata/src/conc", "repro/node", atomicfield.Analyzer)
}

// TestCrossPackage checks that the atomic inventory spans packages: a
// field updated atomically in repro/node and read plainly in
// repro/node/cluster is still caught.
func TestCrossPackage(t *testing.T) {
	analysistest.RunDirs(t, []analysis.DirSpec{
		{Dir: "testdata/src/conc_a", ImportPath: "repro/node"},
		{Dir: "testdata/src/conc_b", ImportPath: "repro/node/cluster"},
	}, atomicfield.Analyzer)
}

// TestExemptPackage checks that packages outside the concurrent set
// are not analyzed.
func TestExemptPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/exempt", "repro/internal/report", atomicfield.Analyzer)
}
