package main

import "testing"

func TestRunSmallSweep(t *testing.T) {
	err := run([]string{
		"-network", "150", "-cache", "10", "-warmup", "50", "-measure", "150",
		"-ping-intervals", "30,120",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadInterval(t *testing.T) {
	if err := run([]string{"-ping-intervals", "30,abc"}); err == nil {
		t.Fatal("bad interval accepted")
	}
}

func TestSplitCommas(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"1", 1},
		{"1,2,3", 3},
		{",1,,2,", 2},
	}
	for _, tt := range tests {
		if got := splitCommas(tt.in); len(got) != tt.want {
			t.Errorf("splitCommas(%q) = %v", tt.in, got)
		}
	}
}
