// Live network: run real GUESS nodes speaking the UDP wire protocol on
// loopback — not the simulator. Twenty nodes bootstrap off one
// well-known peer, gossip addresses via ping/pong, and then a node
// searches the network for a rare file with serial GUESS probes.
//
//	go run ./examples/livenetwork
//
// With -chaos the same swarm runs on the memnet fault simulator
// instead of UDP: every link drops 25% of packets, jitters, and
// duplicates — and the hardened client (retry with exponential
// backoff, adaptive timeouts) still resolves its queries.
//
//	go run ./examples/livenetwork -chaos
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	guess "repro"
	"repro/internal/dist"
	"repro/node"
	"repro/node/memnet"
)

func main() {
	chaos := flag.Bool("chaos", false, "run on the memnet fault simulator with loss+jitter+duplication")
	flag.Parse()
	if *chaos {
		runChaos()
		return
	}
	const peers = 20

	// Node 0 is the bootstrap peer (a tiny "pong server"). The last
	// node shares the rare file everyone else lacks.
	nodes := make([]*node.Node, 0, peers)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	for i := 0; i < peers; i++ {
		files := []string{
			fmt.Sprintf("top40 hit %03d.mp3", i),
			fmt.Sprintf("holiday photos %03d.zip", i),
		}
		if i == peers-1 {
			files = append(files, "obscure demo tape 1987.flac")
		}
		n, err := node.Listen("127.0.0.1:0", node.Config{
			Files:        files,
			CacheSize:    16,
			PingInterval: 100 * time.Millisecond, // fast for the demo
			IntroProb:    0.5,
			QueryProbe:   guess.MFS, // try file-rich peers first
			Seed:         uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, n)
	}

	// Bootstrap: everyone learns node 0 and vice versa (the "random
	// friend" the paper assumes every newcomer has).
	for i := 1; i < peers; i++ {
		nodes[i].AddPeer(nodes[0].Addr(), uint32(nodes[0].NumFiles()))
		nodes[0].AddPeer(nodes[i].Addr(), uint32(nodes[i].NumFiles()))
	}

	fmt.Printf("started %d GUESS nodes on loopback; gossiping for a moment...\n", peers)
	time.Sleep(800 * time.Millisecond)

	querier := nodes[1]
	fmt.Printf("node 1 cache after gossip: %d entries\n", querier.CacheLen())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for _, keyword := range []string{"top40", "obscure demo"} {
		start := time.Now()
		hits, stats, err := querier.Query(ctx, keyword, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquery %q:\n", keyword)
		fmt.Printf("  probes: %d (good %d, dead %d, refused %d) in %v\n",
			stats.Probes, stats.Good, stats.Dead, stats.Refused,
			time.Since(start).Round(time.Millisecond))
		for _, h := range hits {
			fmt.Printf("  hit: %q from %v\n", h.Name, h.From)
		}
		if len(hits) == 0 {
			fmt.Println("  no results")
		}
	}

	fmt.Println(`
The popular query ("top40") is satisfied by the first probe or two;
the rare one walks further through the query cache the pongs build up
— the flexible extent that makes GUESS efficient, over real sockets.`)
}

// runChaos reruns the swarm on an adversarial in-memory network: 25%
// loss, jitter, and 15% duplication on every link, with the hardened
// client configuration (retries, backoff, adaptive timeouts).
func runChaos() {
	const peers = 20

	nw := memnet.New(7)
	nw.SetDefaultProfile(memnet.LinkProfile{
		Loss:    0.25,
		Latency: 2 * time.Millisecond,
		Jitter:  dist.Uniform{Lo: 0, Hi: 0.005},
		DupProb: 0.15,
	})

	nodes := make([]*node.Node, 0, peers)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for i := 0; i < peers; i++ {
		files := []string{fmt.Sprintf("top40 hit %03d.mp3", i)}
		if i == peers-1 {
			files = append(files, "obscure demo tape 1987.flac")
		}
		n, err := node.New(nw.Listen(), node.Config{
			Files:            files,
			CacheSize:        16,
			PingInterval:     100 * time.Millisecond,
			ProbeTimeout:     80 * time.Millisecond,
			MaxProbeAttempts: 4,
			RetryBackoff:     10 * time.Millisecond,
			AdaptiveTimeout:  true,
			IntroProb:        0.5,
			QueryProbe:       guess.MFS,
			Seed:             uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for i := 1; i < peers; i++ {
		nodes[i].AddPeer(nodes[0].Addr(), uint32(nodes[0].NumFiles()))
		nodes[0].AddPeer(nodes[i].Addr(), uint32(nodes[i].NumFiles()))
	}

	fmt.Printf("started %d GUESS nodes on a 25%%-loss, jittery, duplicating memnet; gossiping...\n", peers)
	time.Sleep(800 * time.Millisecond)

	querier := nodes[1]
	fmt.Printf("node 1 cache after gossip under chaos: %d entries\n", querier.CacheLen())

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for _, keyword := range []string{"top40", "obscure demo"} {
		start := time.Now()
		hits, stats, err := querier.Query(ctx, keyword, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquery %q under chaos:\n", keyword)
		fmt.Printf("  probes: %d (good %d, dead %d, refused %d) + %d retries in %v\n",
			stats.Probes, stats.Good, stats.Dead, stats.Refused, stats.Retries,
			time.Since(start).Round(time.Millisecond))
		for _, h := range hits {
			fmt.Printf("  hit: %q from %v\n", h.Name, h.From)
		}
		if len(hits) == 0 {
			fmt.Println("  no results")
		}
	}

	ns := querier.Stats()
	net := nw.Stats()
	fmt.Printf("\nquerier degradation counters: retries %d, late replies %d, dup replies %d, evictions %d\n",
		ns.Retries, ns.LateReplies, ns.DupReplies, ns.DeadEvictions)
	fmt.Printf("network: %d sent, %d delivered, %d dropped, %d duplicated\n",
		net.Sent, net.Delivered, net.Dropped, net.Duplicated)
	fmt.Println(`
Single-shot probing gives up on ~25% of peers per walk; with capped
exponential-backoff retries and adaptive timeouts the same queries
resolve — the robustness margin the paper's Busy/dead-entry analysis
(Sections 5-7) asks of a deployable GUESS client.`)
}
