// Package detrand implements the guess-lint analyzer that keeps
// nondeterministic inputs — the wall clock and ambient RNGs — out of
// the simulation packages.
//
// A seeded run is only reproducible if every input is a function of
// Params.Seed. One time.Now() in a policy, or one draw from the
// auto-seeded math/rand globals, silently desynchronizes runs in a way
// no unit test catches until a golden file flakes. Inside the
// deterministic packages (see analysis.IsDeterministic) this analyzer
// forbids:
//
//   - wall-clock reads and timers: time.Now, time.Since, time.Until,
//     time.Sleep, time.After, time.Tick, time.NewTimer, time.NewTicker,
//     time.AfterFunc (simulations use eventq's virtual clock; types
//     like time.Duration remain fine);
//   - the global math/rand and math/rand/v2 functions (rand.Intn,
//     rand.Shuffle, ...), which share hidden auto-seeded state;
//     explicitly seeded local generators (rand.New(rand.NewSource(s)))
//     are allowed, though simrng streams are the house idiom;
//   - any use of crypto/rand, which is nondeterministic by design.
//
// The check is interprocedural: a call from a deterministic package to
// a helper in an exempt package whose summary reaches the wall clock or
// an ambient RNG (see FuncFacts) is reported at the call site, so
// wrapping time.Now in a util function does not launder it in. Tainted
// calls within the deterministic set itself are not re-reported at
// call sites — the source line already carries its own finding.
//
// Escape hatch: //lint:wallclock-ok <reason> on the offending line or
// the line above.
package detrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Suppress is the //lint: directive that silences this analyzer.
const Suppress = "wallclock-ok"

// wallClock are the time package functions that read the real clock or
// schedule on it.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand(/v2) package-level functions that
// build explicitly seeded local state rather than drawing from the
// hidden globals.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock time and ambient RNGs in deterministic simulation packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if wallClock[sel.Sel.Name] && !pass.Suppressed(sel.Pos(), Suppress) {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock, which desynchronizes seeded runs; use the event queue's virtual time, or annotate //lint:%s <reason>",
						sel.Sel.Name, Suppress)
				}
			case "math/rand", "math/rand/v2":
				if isGlobalRandFunc(pass, sel) && !pass.Suppressed(sel.Pos(), Suppress) {
					pass.Reportf(sel.Pos(),
						"global %s.%s draws from hidden auto-seeded state; draw from a named simrng stream (or a locally seeded generator), or annotate //lint:%s <reason>",
						pkgName.Imported().Path(), sel.Sel.Name, Suppress)
				}
			case "crypto/rand":
				if !pass.Suppressed(sel.Pos(), Suppress) {
					pass.Reportf(sel.Pos(),
						"crypto/rand is nondeterministic by design and must not reach simulation code; use simrng, or annotate //lint:%s <reason>",
						Suppress)
				}
			}
			return true
		})
		checkTaintedCalls(pass, file)
	}
	return nil
}

// checkTaintedCalls reports calls whose callee lives outside the
// deterministic set but whose interprocedural summary reaches a
// nondeterministic source. Callees inside the deterministic set are
// skipped: their source lines are reported directly by the walk above.
func checkTaintedCalls(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeOf(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		node := pass.Prog.FuncOf(callee)
		if node == nil || analysis.IsDeterministic(node.Pkg.Path) {
			return true
		}
		f := node.Facts
		switch {
		case f.WallClock.IsValid():
			if !pass.Suppressed(call.Pos(), Suppress) {
				pass.Reportf(call.Pos(),
					"call reaches the wall clock (%s), which desynchronizes seeded runs; use the event queue's virtual time, or annotate //lint:%s <reason>",
					f.WallClockDesc, Suppress)
			}
		case f.GlobalRand.IsValid():
			if !pass.Suppressed(call.Pos(), Suppress) {
				pass.Reportf(call.Pos(),
					"call reaches the global math/rand state (%s); draw from a named simrng stream, or annotate //lint:%s <reason>",
					f.GlobalRandDesc, Suppress)
			}
		case f.CryptoRand.IsValid():
			if !pass.Suppressed(call.Pos(), Suppress) {
				pass.Reportf(call.Pos(),
					"call reaches crypto/rand (%s), which is nondeterministic by design; use simrng, or annotate //lint:%s <reason>",
					f.CryptoRandDesc, Suppress)
			}
		}
		return true
	})
}

// isGlobalRandFunc reports whether sel names a package-level function
// of math/rand(/v2) that touches the shared global generator. Anything
// that is not a constructor does: the draw functions (Intn, Float64,
// Perm, Shuffle, ...), Seed, and Read.
func isGlobalRandFunc(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false // a type such as rand.Rand or rand.Source
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return !randConstructors[fn.Name()]
}
