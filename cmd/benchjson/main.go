// Command benchjson converts `go test -bench` text output into a JSON
// trajectory record, so benchmark history can be diffed and plotted
// across commits:
//
//	go test -run '^$' -bench BenchmarkSingleRun -benchmem . | benchjson -o BENCH_20260805.json
//
// The record carries the machine header (goos/goarch/cpu), the git
// revision when available, and one entry per benchmark with ns/op,
// B/op, and allocs/op. See "Profiling and benchmarking" in README.md.
//
// With -check it compares fresh output against a recorded trajectory
// point instead of writing one, failing when allocation counts drift:
//
//	go test -run '^$' -bench BenchmarkSingleRun -benchmem . | benchjson -check BENCH_20260805.json
//
// allocs/op is the checked metric because it is iteration-exact and
// machine-independent, unlike ns/op; `make bench-check` wires this up.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/benchfmt"
)

// record is the schema of a BENCH_<date>.json file.
type record struct {
	Date     string `json:"date"`
	Revision string `json:"revision,omitempty"`
	benchfmt.Header
	Results []benchfmt.Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	check := fs.String("check", "", "baseline BENCH_<date>.json: compare instead of record")
	benchmark := fs.String("benchmark", "BenchmarkSingleRun", "comma-separated benchmark names to compare with -check")
	maxRatio := fs.Float64("max-ratio", 1.10, "fail -check when allocs/op exceeds baseline by this factor")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	hdr, results, err := benchfmt.Parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}

	if *check != "" {
		for _, name := range strings.Split(*benchmark, ",") {
			if err := checkAgainst(*check, strings.TrimSpace(name), *maxRatio, results, stdout); err != nil {
				return err
			}
		}
		return nil
	}

	rec := record{
		Date:    time.Now().UTC().Format(time.RFC3339),
		Header:  hdr,
		Results: results,
	}
	if rev, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		rec.Revision = strings.TrimSpace(string(rev))
	}

	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out != "" {
		return os.WriteFile(*out, b, 0o644)
	}
	_, err = stdout.Write(b)
	return err
}

// checkAgainst compares the named benchmark's allocs/op in results
// against the recorded baseline, allowing growth up to maxRatio.
func checkAgainst(baselinePath, name string, maxRatio float64, results []benchfmt.Result, stdout io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline record
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	find := func(rs []benchfmt.Result, where string) (benchfmt.Result, error) {
		for _, r := range rs {
			if r.Name == name {
				return r, nil
			}
		}
		return benchfmt.Result{}, fmt.Errorf("%s has no %s result", where, name)
	}
	base, err := find(baseline.Results, baselinePath)
	if err != nil {
		return err
	}
	fresh, err := find(results, "input")
	if err != nil {
		return err
	}
	if base.AllocsPerOp <= 0 {
		return fmt.Errorf("%s: %s baseline has no allocs/op (recorded without -benchmem?)", baselinePath, name)
	}
	ratio := fresh.AllocsPerOp / base.AllocsPerOp
	fmt.Fprintf(stdout, "%s allocs/op: %.0f vs baseline %.0f (%s, rev %s) = %.3fx (limit %.2fx)\n",
		name, fresh.AllocsPerOp, base.AllocsPerOp, baseline.Date, baseline.Revision, ratio, maxRatio)
	if ratio > maxRatio {
		return fmt.Errorf("%s allocs/op regressed beyond the %.2fx budget", name, maxRatio)
	}
	return nil
}
