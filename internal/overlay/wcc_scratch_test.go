package overlay

import (
	"testing"

	"repro/internal/simrng"
)

// TestWCCScratchMatchesGraph checks the reusable union-find against the
// Graph-based reference on random digraphs, including reuse of one
// scratch across snapshots of varying size (the engine's sampling
// pattern).
func TestWCCScratchMatchesGraph(t *testing.T) {
	r := simrng.New(42)
	var sc WCCScratch
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(60)
		numEdges := r.Intn(4 * n)
		edges := make([][2]int, 0, numEdges)
		for i := 0; i < numEdges; i++ {
			a := 1 + r.Intn(n)
			b := 1 + r.Intn(n)
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
		g := build(t, n, edges)
		want := g.LargestWCC()

		sc.Reset(n)
		for _, e := range edges {
			sc.Union(e[0]-1, e[1]-1)
		}
		if got := sc.Largest(); got != want {
			t.Fatalf("trial %d (n=%d, %d edges): scratch WCC %d, graph WCC %d",
				trial, n, len(edges), got, want)
		}
	}
}

// TestWCCScratchEmpty pins the degenerate cases.
func TestWCCScratchEmpty(t *testing.T) {
	var sc WCCScratch
	sc.Reset(0)
	if got := sc.Largest(); got != 0 {
		t.Fatalf("empty scratch Largest = %d, want 0", got)
	}
	sc.Reset(1)
	if got := sc.Largest(); got != 1 {
		t.Fatalf("singleton Largest = %d, want 1", got)
	}
	// Shrinking reuse after a larger snapshot must not leak state.
	sc.Reset(10)
	for i := 0; i < 9; i++ {
		sc.Union(i, i+1)
	}
	if got := sc.Largest(); got != 10 {
		t.Fatalf("chain Largest = %d, want 10", got)
	}
	sc.Reset(2)
	if got := sc.Largest(); got != 1 {
		t.Fatalf("after shrink Largest = %d, want 1", got)
	}
}
