// Package node implements a live GUESS peer speaking the wire protocol
// over UDP (or any net.PacketConn): the deployable counterpart of the
// simulator in internal/core.
//
// A Node maintains the paper's link cache with periodic pings, answers
// pings and queries from other peers (with the introduction protocol
// and policy-driven pong construction), enforces a probe-rate capacity
// limit with Busy refusals, and executes its own queries by serial
// unicast probing with a per-query query cache — the complete GUESS
// loop from Section 2 of the paper, reusing the same cache and policy
// implementations the simulator is built on.
package node

import (
	"errors"
	"fmt"
	"math"
	"net"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/wire"
)

// Config configures a live node. Zero fields take defaults (see
// Default).
type Config struct {
	// Files are the names this node shares; queries match by
	// case-insensitive substring.
	Files []string
	// CacheSize is the link cache capacity.
	CacheSize int
	// PingInterval is the cache-maintenance period.
	PingInterval time.Duration
	// ProbeTimeout is how long a probe waits for a reply before the
	// attempt is abandoned (the GUESS spec's 0.2 s pacing). With
	// AdaptiveTimeout it is the initial value and the anchor of the
	// clamp range.
	ProbeTimeout time.Duration
	// MaxProbeAttempts is how many times one probe (ping or query) is
	// transmitted before its target is presumed dead: 1 is the
	// single-shot baseline; larger values retry with exponential
	// backoff between attempts. Default 3.
	MaxProbeAttempts int
	// RetryBackoff is the pause before the first retransmission; it
	// doubles with each further attempt, capped at RetryBackoffMax.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential retry backoff.
	RetryBackoffMax time.Duration
	// AdaptiveTimeout, when true, replaces the fixed per-attempt
	// deadline with one derived from an EWMA of observed RTTs
	// (Jacobson/Karels: srtt + 4*rttvar), clamped to
	// [ProbeTimeout/8, 2*ProbeTimeout].
	AdaptiveTimeout bool
	// BusyBackoff, when positive, demotes a peer answering Busy
	// instead of evicting it: the peer is suppressed from probing for
	// BusyBackoff, doubling with each consecutive Busy up to
	// BusyBackoffMax, and evicted only after BusyEvictAfter
	// consecutive refusals. Zero keeps the paper's no-backoff default:
	// evict on the first Busy.
	BusyBackoff time.Duration
	// BusyBackoffMax caps the exponential Busy suppression.
	BusyBackoffMax time.Duration
	// BusyEvictAfter is the consecutive-Busy count that evicts a
	// demoted peer (only meaningful when BusyBackoff > 0). Default 3.
	BusyEvictAfter int
	// BreakerThreshold enables the client-path circuit breaker: after
	// this many consecutive probe timeouts a peer's breaker opens
	// (suppressed from selection) instead of the peer being evicted
	// outright; after BreakerCooldown one half-open trial probe decides
	// between closing the breaker and eviction. Zero keeps the paper's
	// default: evict after the first fully timed-out probe.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker suppresses its peer
	// before the half-open trial. Default 2s.
	BreakerCooldown time.Duration
	// PongSize is the number of addresses per pong.
	PongSize int
	// IntroProb is the introduction-protocol probability.
	IntroProb float64
	// MaxProbesPerSecond is the Busy-refusal capacity (0 = unlimited).
	MaxProbesPerSecond int
	// Admission selects the overload controller enforcing
	// MaxProbesPerSecond: AdmissionFlat (default) is the paper's flat
	// window; AdmissionFair sheds the heaviest requesters first with
	// tiered degradation (see AdmissionMode).
	Admission AdmissionMode
	// AdmissionWindow is the fair controller's accounting window
	// (capacity scales with it). Default 1s; the flat window is always
	// exactly one second regardless.
	AdmissionWindow time.Duration
	// DrainTimeout bounds the graceful drain on Close: for up to this
	// long the node keeps reading, answering late-arriving probes with
	// Busy and flushing in-flight replies, before the socket closes.
	// Zero (the default) closes immediately.
	DrainTimeout time.Duration
	// SnapshotPath, when set, enables crash recovery: the link cache
	// is periodically serialized there (atomic, checksummed) and
	// restored on startup, with restored entries verified by ping
	// before any policy can see them.
	SnapshotPath string
	// SnapshotInterval is the period between snapshots. Default 30s.
	SnapshotInterval time.Duration

	// KeySalt, when nonzero, fixes the fair-admission requester-hash
	// salt. Zero (the default) derives a per-node salt from Seed, which
	// keeps single-node behavior byte-identical and means two nodes
	// never shed the same colliding requesters; a cluster sets the same
	// KeySalt everywhere (or lets a cluster.SyncClient rotate it) so
	// sketch buckets agree across nodes and merged aggregates are
	// meaningful.
	KeySalt uint64

	// Policies, as in the paper.
	QueryProbe, QueryPong, PingProbe, PingPong policy.Selection
	CacheReplacement                           policy.Eviction

	// Seed makes the node's random choices reproducible (0 = 1).
	Seed uint64
	// Logf, when non-nil, receives debug logging.
	Logf func(format string, args ...any)

	// Metrics, when non-nil, receives the node's guess_node_* metric
	// set (counters, RTT histogram, cache gauge) for exposition; the
	// Stats snapshot reads the same instruments. Nil keeps the metrics
	// in a private, unexposed registry.
	Metrics *obs.Registry
}

// Default returns a workable live-node configuration mirroring the
// paper's protocol defaults.
func Default() Config {
	return Config{
		CacheSize:        100,
		PingInterval:     30 * time.Second,
		ProbeTimeout:     200 * time.Millisecond,
		MaxProbeAttempts: 3,
		RetryBackoff:     50 * time.Millisecond,
		RetryBackoffMax:  time.Second,
		BusyBackoffMax:   5 * time.Second,
		BusyEvictAfter:   3,
		BreakerCooldown:  2 * time.Second,
		AdmissionWindow:  time.Second,
		SnapshotInterval: 30 * time.Second,
		PongSize:         5,
		IntroProb:        0.1,
		QueryProbe:       policy.SelRandom,
		QueryPong:        policy.SelRandom,
		PingProbe:        policy.SelRandom,
		PingPong:         policy.SelRandom,
		CacheReplacement: policy.EvRandom,
		Seed:             1,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := Default()
	if c.CacheSize == 0 {
		c.CacheSize = d.CacheSize
	}
	if c.PingInterval == 0 {
		c.PingInterval = d.PingInterval
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = d.ProbeTimeout
	}
	if c.MaxProbeAttempts == 0 {
		c.MaxProbeAttempts = d.MaxProbeAttempts
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = d.RetryBackoff
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = d.RetryBackoffMax
	}
	if c.BusyBackoffMax == 0 {
		c.BusyBackoffMax = d.BusyBackoffMax
	}
	if c.BusyEvictAfter == 0 {
		c.BusyEvictAfter = d.BusyEvictAfter
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = d.BreakerCooldown
	}
	if c.AdmissionWindow == 0 {
		c.AdmissionWindow = d.AdmissionWindow
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = d.SnapshotInterval
	}
	if c.PongSize == 0 {
		c.PongSize = d.PongSize
	}
	if c.IntroProb == 0 {
		c.IntroProb = d.IntroProb
	}
	if c.QueryProbe == 0 {
		c.QueryProbe = d.QueryProbe
	}
	if c.QueryPong == 0 {
		c.QueryPong = d.QueryPong
	}
	if c.PingProbe == 0 {
		c.PingProbe = d.PingProbe
	}
	if c.PingPong == 0 {
		c.PingPong = d.PingPong
	}
	if c.CacheReplacement == 0 {
		c.CacheReplacement = d.CacheReplacement
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	switch {
	case c.CacheSize < 1:
		return fmt.Errorf("node: CacheSize must be >= 1, got %d", c.CacheSize)
	case c.PingInterval <= 0:
		return fmt.Errorf("node: PingInterval must be positive")
	case c.ProbeTimeout <= 0:
		return fmt.Errorf("node: ProbeTimeout must be positive")
	case c.MaxProbeAttempts < 1 || c.MaxProbeAttempts > 16:
		return fmt.Errorf("node: MaxProbeAttempts %d outside [1,16]", c.MaxProbeAttempts)
	case c.RetryBackoff <= 0:
		return fmt.Errorf("node: RetryBackoff must be positive")
	case c.RetryBackoffMax < c.RetryBackoff:
		return fmt.Errorf("node: RetryBackoffMax %v below RetryBackoff %v", c.RetryBackoffMax, c.RetryBackoff)
	case c.BusyBackoff < 0:
		return fmt.Errorf("node: BusyBackoff must be non-negative")
	case c.BusyBackoff > 0 && c.BusyBackoffMax < c.BusyBackoff:
		return fmt.Errorf("node: BusyBackoffMax %v below BusyBackoff %v", c.BusyBackoffMax, c.BusyBackoff)
	case c.BusyEvictAfter < 1:
		return fmt.Errorf("node: BusyEvictAfter must be >= 1")
	case c.BreakerThreshold < 0 || c.BreakerThreshold > 64:
		return fmt.Errorf("node: BreakerThreshold %d outside [0,64]", c.BreakerThreshold)
	case c.BreakerCooldown <= 0:
		return fmt.Errorf("node: BreakerCooldown must be positive")
	case !c.Admission.Valid():
		return fmt.Errorf("node: invalid admission mode %d", c.Admission)
	case c.AdmissionWindow <= 0:
		return fmt.Errorf("node: AdmissionWindow must be positive")
	case c.DrainTimeout < 0:
		return fmt.Errorf("node: DrainTimeout must be non-negative")
	case c.SnapshotInterval <= 0:
		return fmt.Errorf("node: SnapshotInterval must be positive")
	case c.PongSize < 0 || c.PongSize > wire.MaxPongEntries:
		return fmt.Errorf("node: PongSize %d outside [0, %d]", c.PongSize, wire.MaxPongEntries)
	case c.IntroProb < 0 || c.IntroProb > 1:
		return fmt.Errorf("node: IntroProb %v outside [0,1]", c.IntroProb)
	case !c.QueryProbe.Valid() || !c.QueryPong.Valid() || !c.PingProbe.Valid() || !c.PingPong.Valid():
		return fmt.Errorf("node: invalid selection policy")
	case !c.CacheReplacement.Valid():
		return fmt.Errorf("node: invalid cache replacement policy")
	}
	return nil
}

// Stats counts a node's protocol activity. Fields are cumulative.
type Stats struct {
	PingsSent, PongsReceived     int64
	PingsReceived, QueriesServed int64
	ProbesRefused                int64
	DeadEvictions                int64
	MalformedDropped             int64
	// Retries counts probe retransmissions (attempts beyond the first).
	Retries int64
	// BusyBackoffs counts Busy replies absorbed by demotion instead of
	// eviction (only with BusyBackoff > 0).
	BusyBackoffs int64
	// LateReplies counts replies that arrived after their probe had
	// already timed out or completed (or were never solicited).
	LateReplies int64
	// DupReplies counts redundant copies of a reply already consumed
	// by its probe (duplicating networks).
	DupReplies int64
	// ShedPings/ShedQueries/ShedDrain break ProbesRefused down by
	// degradation tier under fair admission and drain (flat-window
	// refusals appear only in ProbesRefused).
	ShedPings, ShedQueries, ShedDrain int64
	// CacheWriteSkips counts cache writes skipped under admission
	// pressure.
	CacheWriteSkips int64
	// BreakerOpens counts circuit breakers tripped by consecutive
	// probe timeouts.
	BreakerOpens int64
	// SnapshotWrites/SnapshotRestored/SnapshotVerified account for the
	// crash-recovery snapshot lifecycle.
	SnapshotWrites, SnapshotRestored, SnapshotVerified int64
}

// Hit is one query result.
type Hit struct {
	// From is the responding peer.
	From netip.AddrPort
	// Name is the matching file name.
	Name string
}

// QueryStats reports one query's cost, mirroring the simulator's
// per-query metrics. Probes counts distinct targets tried; Retries
// counts extra transmissions beyond each target's first.
type QueryStats struct {
	Probes  int
	Good    int
	Dead    int
	Refused int
	Retries int
}

// Node is a live GUESS peer. Create with Listen or New; always Close.
type Node struct {
	cfg   Config
	conn  net.PacketConn
	start time.Time

	mu    sync.Mutex
	rng   *simrng.RNG
	link  *cache.LinkCache
	ids   map[netip.AddrPort]cache.PeerID
	addrs map[cache.PeerID]netip.AddrPort
	next  cache.PeerID
	// adm decides which inbound probes are served (flat window or fair
	// SFB-style shedding); guarded by mu.
	adm admitter
	// keySalt salts requester hashing for the fair admitter.
	keySalt uint64
	// RTT estimator for adaptive timeouts (seconds; srtt == 0 means no
	// sample yet)
	srtt, rttvar float64
	// health owns per-peer demotion and circuit-breaker state; guarded
	// by mu.
	health *peerHealth
	// suspects are snapshot-restored entries awaiting verification;
	// suspectsLeft counts the ones still unverified (healthz surfaces
	// it). Only touched before the verifier starts and under mu after.
	suspects     []snapEntry
	suspectsLeft int

	pendingMu sync.Mutex
	pending   map[uint64]chan wire.Message

	msgID atomic.Uint64

	// lastInbound is the unix-nano arrival time of the most recent
	// datagram; the drain loop uses it to finish early once the
	// network goes quiet.
	lastInbound atomic.Int64

	// met backs both the Stats snapshot and the Config.Metrics
	// registry; always non-nil.
	met *obs.NodeMetrics

	closeOnce sync.Once
	// closing is closed when Close begins: the node stops admitting
	// work (client calls abort, inbound probes get Busy) but the
	// socket stays open so in-flight replies still flush.
	closing chan struct{}
	// closed is closed when the drain window ends and the socket is
	// about to close; send refuses after it.
	closed chan struct{}
	wg     sync.WaitGroup
}

// Listen binds a UDP socket (e.g. "127.0.0.1:0") and starts the node.
func Listen(addr string, cfg Config) (*Node, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: listen: %w", err)
	}
	n, err := New(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return n, nil
}

// New starts a node on an existing transport. The node owns conn and
// closes it on Close.
func New(conn net.PacketConn, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		conn:    conn,
		start:   time.Now(),
		rng:     simrng.New(cfg.Seed),
		link:    cache.NewLinkCache(cfg.CacheSize),
		ids:     make(map[netip.AddrPort]cache.PeerID),
		addrs:   make(map[cache.PeerID]netip.AddrPort),
		next:    1,
		keySalt: saltFor(cfg),
		health:  newPeerHealth(cfg),
		pending: make(map[uint64]chan wire.Message),
		met:     obs.NewNodeMetrics(cfg.Metrics),
		closing: make(chan struct{}),
		closed:  make(chan struct{}),
	}
	switch cfg.Admission {
	case AdmissionFair:
		n.adm = newFairAdmitter(cfg.MaxProbesPerSecond, cfg.AdmissionWindow)
	default:
		n.adm = &flatAdmitter{capacity: cfg.MaxProbesPerSecond}
	}
	n.msgID.Store(cfg.Seed<<32 | 1)
	if cfg.SnapshotPath != "" {
		n.restoreSnapshot()
	}
	n.wg.Add(2)
	//lint:goroexit-ok Close unblocks the ReadFrom: it closes n.conn after close(n.closed), and serveLoop exits on the read error
	go n.serveLoop()
	go n.pingLoop()
	if cfg.SnapshotPath != "" {
		n.wg.Add(1)
		go n.snapshotLoop()
		if len(n.suspects) > 0 {
			n.suspectsLeft = len(n.suspects)
			n.wg.Add(1)
			go n.verifySuspects(n.suspects)
		}
	}
	return n, nil
}

// Addr returns the node's bound address.
func (n *Node) Addr() netip.AddrPort {
	return addrPortOf(n.conn.LocalAddr())
}

// Close stops the node. With DrainTimeout > 0 it drains first: the
// node stops admitting work (client calls abort, new probes get Busy)
// but keeps the socket open so in-flight probes already being served
// can flush their replies, until the network goes quiet or the drain
// deadline passes. A final snapshot is written if snapshots are
// enabled. Close is idempotent and safe to call concurrently.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.closing)
		n.met.Draining.Set(1)
		n.drain()
		if n.cfg.SnapshotPath != "" {
			n.writeSnapshot()
		}
		close(n.closed)
		n.conn.Close()
	})
	n.wg.Wait()
	return nil
}

// drain holds the socket open for up to DrainTimeout, exiting early
// once no datagram has arrived for a short grace period.
func (n *Node) drain() {
	d := n.cfg.DrainTimeout
	if d <= 0 {
		return
	}
	grace := d / 4
	if grace < 10*time.Millisecond {
		grace = 10 * time.Millisecond
	}
	if grace > 250*time.Millisecond {
		grace = 250 * time.Millisecond
	}
	start := time.Now()
	deadline := start.Add(d)
	for time.Now().Before(deadline) {
		last := time.Unix(0, n.lastInbound.Load())
		if last.Before(start) {
			last = start
		}
		if time.Since(last) >= grace {
			return
		}
		time.Sleep(grace / 4)
	}
}

// Draining reports whether Close has begun.
func (n *Node) Draining() bool {
	select {
	case <-n.closing:
		return true
	default:
		return false
	}
}

// Uptime is the wall-clock time since the node started.
func (n *Node) Uptime() time.Duration { return time.Since(n.start) }

// Suspects returns how many snapshot-restored entries still await
// ping verification (0 once recovery settles).
func (n *Node) Suspects() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.suspectsLeft
}

// Stats returns a snapshot of the node's counters. The same
// instruments feed the Config.Metrics registry, so Stats and a
// metrics scrape always agree.
func (n *Node) Stats() Stats {
	return Stats{
		PingsSent:        int64(n.met.PingsSent.Value()),
		PongsReceived:    int64(n.met.PongsReceived.Value()),
		PingsReceived:    int64(n.met.PingsReceived.Value()),
		QueriesServed:    int64(n.met.QueriesServed.Value()),
		ProbesRefused:    int64(n.met.ProbesRefused.Value()),
		DeadEvictions:    int64(n.met.DeadEvictions.Value()),
		MalformedDropped: int64(n.met.MalformedDropped.Value()),
		Retries:          int64(n.met.Retries.Value()),
		BusyBackoffs:     int64(n.met.BusyBackoffs.Value()),
		LateReplies:      int64(n.met.LateReplies.Value()),
		DupReplies:       int64(n.met.DupReplies.Value()),
		ShedPings:        int64(n.met.ShedPings.Value()),
		ShedQueries:      int64(n.met.ShedQueries.Value()),
		ShedDrain:        int64(n.met.ShedDrain.Value()),
		CacheWriteSkips:  int64(n.met.CacheWriteSkips.Value()),
		BreakerOpens:     int64(n.met.BreakerOpens.Value()),
		SnapshotWrites:   int64(n.met.SnapshotWrites.Value()),
		SnapshotRestored: int64(n.met.SnapshotRestored.Value()),
		SnapshotVerified: int64(n.met.SnapshotVerified.Value()),
	}
}

// NumFiles returns the number of files the node shares.
func (n *Node) NumFiles() int { return len(n.cfg.Files) }

// CacheLen returns the current link cache occupancy.
func (n *Node) CacheLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.link.Len()
}

// CacheAddrs returns the addresses currently in the link cache.
func (n *Node) CacheAddrs() []netip.AddrPort {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]netip.AddrPort, 0, n.link.Len())
	for _, e := range n.link.Entries() {
		out = append(out, n.addrs[e.Addr])
	}
	return out
}

// AddPeer seeds the link cache with a known peer (bootstrap).
func (n *Node) AddPeer(addr netip.AddrPort, numFiles uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.idFor(addr)
	n.insertLocked(cache.Entry{
		Addr:     id,
		TS:       n.now(),
		NumFiles: int32(clampFiles(numFiles)),
		Direct:   true,
	})
	n.syncCacheGauge()
}

// syncCacheGauge refreshes the link-cache occupancy gauge after a
// mutation; callers hold n.mu.
func (n *Node) syncCacheGauge() {
	n.met.CacheEntries.Set(float64(n.link.Len()))
}

// syncBreakerGauge refreshes the open-breaker gauge; callers hold n.mu.
func (n *Node) syncBreakerGauge() {
	n.met.BreakerOpen.Set(float64(n.health.open()))
}

// now is seconds since node start (the TS clock).
func (n *Node) now() float64 { return time.Since(n.start).Seconds() }

// idFor maps an address to its stable PeerID; callers hold n.mu.
func (n *Node) idFor(addr netip.AddrPort) cache.PeerID {
	if id, ok := n.ids[addr]; ok {
		return id
	}
	id := n.next
	n.next++
	n.ids[addr] = id
	n.addrs[id] = addr
	return id
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

func clampFiles(v uint32) uint32 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return v
}

// addrPortOf converts a net.Addr to netip.AddrPort.
func addrPortOf(a net.Addr) netip.AddrPort {
	if u, ok := a.(*net.UDPAddr); ok {
		return u.AddrPort()
	}
	ap, err := netip.ParseAddrPort(a.String())
	if err != nil {
		return netip.AddrPort{}
	}
	return ap
}

// errClosed reports a send attempted after Close.
var errClosed = errors.New("node: closed")

// send encodes and transmits a message.
func (n *Node) send(m wire.Message, to netip.AddrPort) error {
	select {
	case <-n.closed:
		return errClosed
	default:
	}
	pkt, err := wire.Encode(m)
	if err != nil {
		return err
	}
	_, err = n.conn.WriteTo(pkt, net.UDPAddrFromAddrPort(to))
	return err
}

// matches reports whether name matches the query keyword
// (case-insensitive substring; an empty keyword matches nothing).
func matches(name, keyword string) bool {
	if keyword == "" {
		return false
	}
	return strings.Contains(strings.ToLower(name), strings.ToLower(keyword))
}
