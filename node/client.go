package node

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/wire"
)

// pingLoop maintains the link cache: every PingInterval it pings one
// entry chosen by the PingProbe policy, evicting it on timeout and
// absorbing the pong otherwise.
func (n *Node) pingLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.PingInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-ticker.C:
			n.pingOnce()
		}
	}
}

// pingOnce performs one maintenance ping, if the cache is non-empty.
func (n *Node) pingOnce() {
	n.mu.Lock()
	entries := n.link.Entries()
	i := policy.Pick(n.rng, n.cfg.PingProbe, entries)
	var target netip.AddrPort
	var id cache.PeerID
	if i >= 0 {
		id = entries[i].Addr
		target = n.addrs[id]
	}
	n.mu.Unlock()
	if i < 0 || !target.IsValid() {
		return
	}

	msgID := n.msgID.Add(1)
	replies, cancel := n.await(msgID)
	defer cancel()

	n.stats.pingsSent.Add(1)
	if err := n.send(&wire.Ping{MsgID: msgID, NumFiles: uint32(len(n.cfg.Files))}, target); err != nil {
		n.logf("ping %v: %v", target, err)
		return
	}
	timer := time.NewTimer(n.cfg.ProbeTimeout)
	defer timer.Stop()
	select {
	case <-n.closed:
	case <-timer.C:
		// Presumed dead: evict.
		n.mu.Lock()
		n.link.Remove(id)
		n.mu.Unlock()
		n.stats.deadEvictions.Add(1)
	case msg := <-replies:
		if pong, ok := msg.(*wire.Pong); ok {
			n.stats.pongsReceived.Add(1)
			n.mu.Lock()
			n.link.Touch(id, n.now())
			n.absorbPong(pong.Entries)
			n.mu.Unlock()
		}
	}
}

// absorbPong runs cache replacement over received entries; callers
// hold n.mu.
func (n *Node) absorbPong(entries []wire.PongEntry) {
	self := n.Addr()
	for _, pe := range entries {
		if pe.Addr == self || !pe.Addr.IsValid() {
			continue
		}
		id := n.idFor(pe.Addr)
		policy.Insert(n.rng, n.cfg.CacheReplacement, n.link, cache.Entry{
			Addr:     id,
			TS:       n.now(),
			NumFiles: int32(clampFiles(pe.NumFiles)),
			NumRes:   int32(pe.NumRes),
			Direct:   false,
		})
	}
}

// Query runs a GUESS search: it serially probes peers from the link
// cache and the growing query cache, under the QueryProbe policy,
// until `desired` results arrive, the candidates are exhausted, or ctx
// is done. It returns the hits collected so far in every case; the
// error is non-nil only for invalid arguments or a closed node.
func (n *Node) Query(ctx context.Context, keyword string, desired int) ([]Hit, QueryStats, error) {
	var stats QueryStats
	if keyword == "" || len(keyword) > wire.MaxNameLen {
		return nil, stats, fmt.Errorf("node: invalid keyword %q", keyword)
	}
	if desired < 1 || desired > 255 {
		return nil, stats, fmt.Errorf("node: desired results %d outside [1,255]", desired)
	}
	select {
	case <-n.closed:
		return nil, stats, errClosed
	default:
	}

	// Snapshot the link cache into the candidate set.
	n.mu.Lock()
	sel := policy.NewSelector(n.cfg.QueryProbe, n.rng)
	qc := cache.NewQueryCache()
	selfID := n.idFor(n.Addr())
	qc.Add(cache.Entry{Addr: selfID})
	qc.Consume(selfID)
	for _, e := range n.link.Entries() {
		if qc.Add(e) {
			sel.Add(e)
		}
	}
	n.mu.Unlock()

	var hits []Hit
	for len(hits) < desired {
		select {
		case <-ctx.Done():
			return hits, stats, nil
		case <-n.closed:
			return hits, stats, nil
		default:
		}
		n.mu.Lock()
		entry, ok := sel.Next()
		var target netip.AddrPort
		if ok {
			qc.Consume(entry.Addr)
			target = n.addrs[entry.Addr]
		}
		n.mu.Unlock()
		if !ok {
			break // exhausted
		}
		if !target.IsValid() {
			continue
		}
		newHits := n.probe(ctx, target, entry.Addr, keyword, desired-len(hits), &stats, sel, qc)
		hits = append(hits, newHits...)
	}
	return hits, stats, nil
}

// probe sends one query probe and processes the reply.
func (n *Node) probe(ctx context.Context, target netip.AddrPort, id cache.PeerID,
	keyword string, want int, stats *QueryStats,
	sel *policy.Selector, qc *cache.QueryCache) []Hit {

	msgID := n.msgID.Add(1)
	replies, cancel := n.await(msgID)
	defer cancel()

	stats.Probes++
	q := &wire.Query{
		MsgID:    msgID,
		Desired:  uint8(want),
		NumFiles: uint32(len(n.cfg.Files)),
		Keyword:  keyword,
	}
	if err := n.send(q, target); err != nil {
		n.logf("query %v: %v", target, err)
		stats.Dead++
		return nil
	}

	timer := time.NewTimer(n.cfg.ProbeTimeout)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return nil
	case <-n.closed:
		return nil
	case <-timer.C:
		// Timeout: presumed dead, evicted per the protocol.
		stats.Dead++
		n.mu.Lock()
		n.link.Remove(id)
		n.mu.Unlock()
		n.stats.deadEvictions.Add(1)
		return nil
	case msg := <-replies:
		switch m := msg.(type) {
		case *wire.Busy:
			// Refused: treat like the simulator's no-backoff default —
			// drop the overloaded peer from the cache.
			stats.Refused++
			n.mu.Lock()
			n.link.Remove(id)
			n.mu.Unlock()
			return nil
		case *wire.QueryHit:
			stats.Good++
			n.mu.Lock()
			n.link.Touch(id, n.now())
			n.link.SetNumRes(id, int32(len(m.Results)))
			// Grow the query cache and the link cache from the
			// piggy-backed pong.
			self := n.Addr()
			for _, pe := range m.Pong {
				if pe.Addr == self || !pe.Addr.IsValid() {
					continue
				}
				peID := n.idFor(pe.Addr)
				entry := cache.Entry{
					Addr:     peID,
					TS:       n.now(),
					NumFiles: int32(clampFiles(pe.NumFiles)),
					NumRes:   int32(pe.NumRes),
					Direct:   false,
				}
				if qc.Add(entry) {
					sel.Add(entry)
				}
				policy.Insert(n.rng, n.cfg.CacheReplacement, n.link, entry)
			}
			n.mu.Unlock()
			hits := make([]Hit, 0, len(m.Results))
			for _, name := range m.Results {
				hits = append(hits, Hit{From: target, Name: name})
			}
			return hits
		default:
			return nil
		}
	}
}

// PingPeer sends one explicit ping (bootstrap helper) and reports
// whether the peer answered within the probe timeout.
func (n *Node) PingPeer(ctx context.Context, target netip.AddrPort) (bool, error) {
	select {
	case <-n.closed:
		return false, errClosed
	default:
	}
	msgID := n.msgID.Add(1)
	replies, cancel := n.await(msgID)
	defer cancel()
	n.stats.pingsSent.Add(1)
	if err := n.send(&wire.Ping{MsgID: msgID, NumFiles: uint32(len(n.cfg.Files))}, target); err != nil {
		return false, err
	}
	timer := time.NewTimer(n.cfg.ProbeTimeout)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false, ctx.Err()
	case <-n.closed:
		return false, errClosed
	case <-timer.C:
		return false, nil
	case msg := <-replies:
		pong, ok := msg.(*wire.Pong)
		if !ok {
			return false, nil
		}
		n.stats.pongsReceived.Add(1)
		n.mu.Lock()
		id := n.idFor(target)
		n.link.Touch(id, n.now())
		n.absorbPong(pong.Entries)
		n.mu.Unlock()
		return true, nil
	}
}
