package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/report"
)

func init() {
	register("fig16", "Figure 16: probes per query vs malicious fraction (Dead pongs)",
		poisonSpecs(core.BadPongDead), poisonRender(core.BadPongDead, poisonProbes))
	register("fig17", "Figure 17: unsatisfaction vs malicious fraction (Dead pongs)",
		poisonSpecs(core.BadPongDead), poisonRender(core.BadPongDead, poisonUnsat))
	register("fig18", "Figure 18: good cache entries vs malicious fraction (Dead pongs)",
		poisonSpecs(core.BadPongDead), poisonRender(core.BadPongDead, poisonGoodEntries))
	register("fig19", "Figure 19: probes per query vs malicious fraction (colluding)",
		poisonSpecs(core.BadPongBad), poisonRender(core.BadPongBad, poisonProbes))
	register("fig20", "Figure 20: unsatisfaction vs malicious fraction (colluding)",
		poisonSpecs(core.BadPongBad), poisonRender(core.BadPongBad, poisonUnsat))
	register("fig21", "Figure 21: good cache entries vs malicious fraction (colluding)",
		poisonSpecs(core.BadPongBad), poisonRender(core.BadPongBad, poisonGoodEntries))
}

// poisonPolicies are the Section 6.4 contenders. Each selection policy
// is applied to QueryProbe, QueryPong and CacheReplacement together
// (with the eviction counterpart), as in the paper.
var poisonPolicies = []policy.Selection{
	policy.SelRandom, policy.SelMR, policy.SelMRStar, policy.SelMFS,
}

// poisonMetric extracts one figure's y-value from a run.
type poisonMetric struct {
	column string
	value  func(*core.Results) float64
}

var (
	poisonProbes = poisonMetric{"ProbesPerQuery", func(r *core.Results) float64 {
		return r.ProbesPerQuery()
	}}
	poisonUnsat = poisonMetric{"Unsatisfaction", func(r *core.Results) float64 {
		return r.UnsatisfactionWithAborted()
	}}
	poisonGoodEntries = poisonMetric{"GoodCacheEntries", func(r *core.Results) float64 {
		return r.AvgGoodEntries
	}}
)

func poisonFractions(scale Scale) []float64 {
	if scale == Full {
		return []float64{0, 5, 10, 15, 20}
	}
	return []float64{0, 10, 20}
}

// poisonSpecs builds the Figures 16-21 sweep for one BadPongBehavior:
// policy x malicious fraction, memoized per behavior so the three
// figures projecting each behavior share one execution.
func poisonSpecs(behavior core.BadPongBehavior) specsFunc {
	return func(opts Options) []Spec {
		fractions := poisonFractions(opts.Scale)
		var params []core.Params
		for _, sel := range poisonPolicies {
			for _, f := range fractions {
				p := opts.baseParams()
				p.QueryProbe = sel
				p.QueryPong = sel
				p.CacheReplacement = policy.EvictionFor(sel)
				p.PercentBadPeers = f
				p.BadPong = behavior
				params = append(params, p)
			}
		}
		return []Spec{{
			Family: FamilyGUESS,
			Label:  fmt.Sprintf("poison|%s", behavior),
			Core:   params,
		}}
	}
}

// poisonRender projects one behavior's sweep into one metric's figure.
func poisonRender(behavior core.BadPongBehavior, metric poisonMetric) renderFunc {
	return func(opts Options, batches [][]PointResult) (*Result, error) {
		fractions := poisonFractions(opts.Scale)
		results := coreResultsOf(batches[0])
		t := report.NewTable(
			fmt.Sprintf("%s vs PercentBadPeers (BadPongBehavior=%s)", metric.column, behavior),
			"Policy", "PercentBadPeers", metric.column)
		chart := report.NewChart("", "PercentBadPeers", metric.column)
		idx := 0
		for _, sel := range poisonPolicies {
			var xs, ys []float64
			for _, f := range fractions {
				v := metric.value(results[idx])
				t.AddRow(sel.String(), f, v)
				xs = append(xs, f)
				ys = append(ys, v)
				idx++
			}
			if err := chart.Add(report.Series{Name: sel.String(), X: xs, Y: ys}); err != nil {
				return nil, err
			}
		}
		return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
	}
}
