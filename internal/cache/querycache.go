package cache

// QueryCache is the per-query scratch space of the GUESS protocol: a
// theoretically unbounded set of candidate addresses accumulated from
// pong messages while a query runs. It tracks which candidates have
// been consumed (probed) or discovered dead, and is discarded when the
// query completes — entries in it are never maintained.
//
// The zero value is not usable; call NewQueryCache.
type QueryCache struct {
	entries []Entry
	state   map[PeerID]candState
}

type candState uint8

const (
	candPending candState = iota
	candConsumed
)

// NewQueryCache returns an empty query cache.
func NewQueryCache() *QueryCache {
	return &QueryCache{state: make(map[PeerID]candState, 64)}
}

// Add records a candidate if its address has not been seen during this
// query (pending, consumed, or otherwise). It reports whether the
// candidate was added.
func (q *QueryCache) Add(e Entry) bool {
	if _, seen := q.state[e.Addr]; seen {
		return false
	}
	q.state[e.Addr] = candPending
	q.entries = append(q.entries, e)
	return true
}

// Seen reports whether addr has ever been added.
func (q *QueryCache) Seen(addr PeerID) bool {
	_, ok := q.state[addr]
	return ok
}

// Consume marks addr as probed so it is not returned again.
func (q *QueryCache) Consume(addr PeerID) {
	if _, ok := q.state[addr]; ok {
		q.state[addr] = candConsumed
	}
}

// Pending returns the entries not yet consumed. The returned slice is
// freshly allocated.
func (q *QueryCache) Pending() []Entry {
	out := make([]Entry, 0, len(q.entries))
	for _, e := range q.entries {
		if q.state[e.Addr] == candPending {
			out = append(out, e)
		}
	}
	return out
}

// PendingCount returns the number of unconsumed candidates.
func (q *QueryCache) PendingCount() int {
	n := 0
	for _, e := range q.entries {
		if q.state[e.Addr] == candPending {
			n++
		}
	}
	return n
}

// Len returns the total number of candidates ever added.
func (q *QueryCache) Len() int { return len(q.entries) }
