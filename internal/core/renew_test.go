package core

// Renew recycles one engine's storage into the next run. These tests
// pin the contract that recycling is invisible: a chain of Renewed
// engines produces byte-identical Results and traces to fresh engines
// run one by one, across configurations that exercise every recycled
// structure (link caches, libraries, poison maps, the event queue, the
// query pool) and across shard-count and capacity changes that force
// the pools to adapt or drop.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/policy"
)

// runTracedRenew runs each params in sequence on one engine chain
// (New, then Renew, Renew, ...) and returns marshaled Results plus the
// CSV trace per run.
func runTracedRenew(t *testing.T, params []Params) ([]string, []string) {
	t.Helper()
	results := make([]string, len(params))
	traces := make([]string, len(params))
	var e *Engine
	var err error
	for i, p := range params {
		var trace strings.Builder
		p.Trace = &trace
		if e == nil {
			e, err = New(p)
		} else {
			e, err = e.Renew(p)
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		results[i] = marshalResults(t, res)
		traces[i] = trace.String()
	}
	return results, traces
}

// TestRenewMatchesFresh is the recycling determinism guarantee: a
// worker chaining Renew across a sweep must produce exactly what fresh
// engines would, even when consecutive configs differ in cache
// capacity (dropping the cache pool), shard count (resetting or
// replacing the event queue), network size (growing or truncating the
// peer arrays), and enabled extensions (recycled poison maps).
func TestRenewMatchesFresh(t *testing.T) {
	base := quickParams()
	base.MeasureTime = 200

	small := base
	small.NetworkSize = 150
	small.CacheSize = 6 // different capacity: freeCaches must be dropped

	sharded := base
	sharded.Shards = 4

	poisoned := base
	poisoned.PercentBadPeers = 20
	poisoned.BadPong = BadPongGood
	poisoned.PoisonDetection = true
	poisoned.QueryProbe = policy.SelMFS
	poisoned.CacheReplacement = policy.EvLFS

	churny := base
	churny.LifespanMultiplier = 0.3
	churny.SampleConnectivity = true
	churny.Seed = 9

	chain := []Params{base, small, sharded, poisoned, churny, base}
	gotRes, gotTrace := runTracedRenew(t, chain)
	for i, p := range chain {
		wantRes, wantTrace := runTraced(t, p, false)
		if gotRes[i] != wantRes {
			t.Errorf("run %d: Renewed Results diverged from fresh:\n%s\n%s", i, gotRes[i], wantRes)
		}
		if gotTrace[i] != wantTrace {
			l1, l2 := strings.Split(wantTrace, "\n"), strings.Split(gotTrace[i], "\n")
			for j := 0; j < len(l1) && j < len(l2); j++ {
				if l1[j] != l2[j] {
					t.Fatalf("run %d: trace diverged at line %d:\nfresh:   %q\nrenewed: %q",
						i, j, l1[j], l2[j])
				}
			}
			t.Fatalf("run %d: trace lengths diverged: %d vs %d lines", i, len(l1), len(l2))
		}
		if wantTrace == "" {
			t.Fatal("empty trace; comparison is vacuous")
		}
	}
}

// TestRenewRequiresRun pins the single-use discipline: an engine that
// has not run cannot donate its storage (it is still using it).
func TestRenewRequiresRun(t *testing.T) {
	e, err := New(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Renew(quickParams()); err == nil {
		t.Fatal("Renew before Run accepted")
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err == nil {
		t.Fatal("second Run accepted")
	}
	if _, err := e.Renew(quickParams()); err != nil {
		t.Fatalf("Renew after Run rejected: %v", err)
	}
}
