// Package exempt poses as the live node (repro/node), where wall-clock
// time and ambient randomness are legitimate; detrand must stay quiet.
package exempt

import (
	"math/rand"
	"time"
)

func uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func jitter() time.Duration {
	return time.Duration(rand.Intn(100)) * time.Millisecond
}
