package guess_test

import (
	"context"
	"fmt"
	"log"

	guess "repro"
)

// ExampleRun shows a minimal simulation: the paper's defaults on a
// small network, then the headline MFS/LFS tuning.
func ExampleRun() {
	cfg := guess.DefaultConfig()
	cfg.NetworkSize = 200
	cfg.WarmupTime = 100
	cfg.MeasureTime = 300
	res, err := guess.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d queries at %.0f probes each\n",
		res.Queries, res.ProbesPerQuery())
}

// ExampleRun_policies compares two policy configurations on identical
// seeds — the experiment pattern used throughout the reproduction.
func ExampleRun_policies() {
	base := guess.DefaultConfig()
	base.NetworkSize = 200
	base.WarmupTime = 100
	base.MeasureTime = 300

	tuned := base
	tuned.QueryPong = guess.MFS
	tuned.CacheReplacement = guess.EvictLFS

	baseRes, err := guess.Run(context.Background(), base)
	if err != nil {
		log.Fatal(err)
	}
	tunedRes, err := guess.Run(context.Background(), tuned)
	if err != nil {
		log.Fatal(err)
	}
	if tunedRes.ProbesPerQuery() < baseRes.ProbesPerQuery() {
		fmt.Println("MFS/LFS is cheaper than Random")
	}
	// Output: MFS/LFS is cheaper than Random
}

// ExampleRunExperiment regenerates one of the paper's figures.
func ExampleRunExperiment() {
	res, err := guess.RunExperiment("fig12", guess.ExperimentOptions{
		Scale: guess.ScaleQuick,
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Title)
	// Output: Figure 12: unsatisfied queries by QueryPong policy
}
