package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestMergeReproducesSharedRegistry pins the aggregation contract the
// sweep coordinator depends on: folding per-run snapshots in run order
// into a fresh registry reproduces a single shared registry fed the
// same updates, byte for byte in the Prometheus exposition.
func TestMergeReproducesSharedRegistry(t *testing.T) {
	buckets := []float64{1, 5, 10}
	type run struct {
		counts uint64
		gauge  float64
		obs    []float64
	}
	runs := []run{
		{counts: 3, gauge: 1.5, obs: []float64{0.5, 2, 7}},
		{counts: 5, gauge: 2.25, obs: []float64{12, 1}},
		{counts: 0, gauge: -4, obs: nil},
	}

	shared := NewRegistry()
	sc := shared.Counter("guess_sim_queries_total", "q")
	sg := shared.Gauge("guess_sim_time_seconds", "t")
	sh := shared.Histogram("guess_sim_query_probes", "p", buckets)

	merged := NewRegistry()
	for _, r := range runs {
		// Each run gets its own registry, as a worker process would.
		reg := NewRegistry()
		reg.Counter("guess_sim_queries_total", "q").Add(r.counts)
		sc.Add(r.counts)
		reg.Gauge("guess_sim_time_seconds", "t").Set(r.gauge)
		sg.Set(r.gauge)
		h := reg.Histogram("guess_sim_query_probes", "p", buckets)
		for _, v := range r.obs {
			h.Observe(v)
			sh.Observe(v)
		}
		if err := merged.Merge(reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}

	// Help text differs (merge-created instruments have none), so
	// compare snapshots, which carry only values.
	a, _ := json.Marshal(shared.Snapshot())
	b, _ := json.Marshal(merged.Snapshot())
	if !bytes.Equal(a, b) {
		t.Fatalf("merged snapshot differs:\nshared: %s\nmerged: %s", a, b)
	}
}

// TestMergeIntoPreRegistered checks merging into a registry that
// already has the instruments (with help text and buckets) keeps the
// existing registration and adds values.
func TestMergeIntoPreRegistered(t *testing.T) {
	src := NewRegistry()
	src.Counter("guess_sim_queries_total", "").Add(7)
	src.Histogram("guess_sim_query_probes", "", []float64{1, 2}).Observe(1.5)

	dst := NewRegistry()
	c := dst.Counter("guess_sim_queries_total", "queries run")
	c.Add(2)
	h := dst.Histogram("guess_sim_query_probes", "probes", []float64{1, 2})
	h.Observe(0.5)

	if err := dst.Merge(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := c.Value(); got != 9 {
		t.Fatalf("counter after merge = %d, want 9", got)
	}
	if got := h.Count(); got != 2 {
		t.Fatalf("histogram count after merge = %d, want 2", got)
	}
	if got := h.Sum(); got != 2 {
		t.Fatalf("histogram sum after merge = %v, want 2", got)
	}
	// A second merge keeps adding.
	if err := dst.Merge(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := c.Value(); got != 16 {
		t.Fatalf("counter after second merge = %d, want 16", got)
	}
}

// TestMergeRejectsMismatches checks kind and bucket conflicts error
// rather than corrupt state.
func TestMergeRejectsMismatches(t *testing.T) {
	src := NewRegistry()
	src.Counter("guess_sim_queries_total", "").Inc()

	dst := NewRegistry()
	dst.Gauge("guess_sim_queries_total", "")
	if err := dst.Merge(src.Snapshot()); err == nil {
		t.Fatal("merging a counter into a gauge succeeded")
	}

	hsrc := NewRegistry()
	hsrc.Histogram("guess_sim_query_probes", "", []float64{1, 2}).Observe(1)
	hdst := NewRegistry()
	hdst.Histogram("guess_sim_query_probes", "", []float64{1, 2, 3})
	if err := hdst.Merge(hsrc.Snapshot()); err == nil {
		t.Fatal("merging mismatched buckets succeeded")
	}
}

// TestSnapshotJSONRoundTrip checks a snapshot survives JSON encoding,
// including the +Inf bucket bound — snapshots travel over the sweep
// wire protocol.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("guess_sim_queries_total", "").Add(4)
	reg.Gauge("guess_sim_time_seconds", "").Set(3.5)
	h := reg.Histogram("guess_sim_query_probes", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(100)

	s := reg.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("snapshot round trip changed:\n%s\n%s", data, again)
	}
	// The merged-from-round-trip registry matches the original.
	merged := NewRegistry()
	if err := merged.Merge(back); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(reg.Snapshot())
	b, _ := json.Marshal(merged.Snapshot())
	if !bytes.Equal(a, b) {
		t.Fatalf("round-tripped merge differs:\n%s\n%s", a, b)
	}
}
