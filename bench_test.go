package guess_test

// One benchmark per table and figure of the paper's evaluation
// section. Each benchmark regenerates the artifact end to end at Quick
// scale (small networks, short windows) so `go test -bench=.` doubles
// as a smoke test of the whole reproduction pipeline; use
// cmd/guess-experiments -scale full for paper-scale numbers.

import (
	"context"
	"fmt"
	"testing"

	guess "repro"
)

// benchExperiment regenerates one paper artifact per iteration and
// reports a headline metric from its first table. The seed is fixed:
// experiments memoize shared sweeps per process, so a fixed seed lets
// the timing loop's extra iterations hit the memo instead of redoing
// minutes of simulation per iteration (the first iteration always does
// the real work).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := guess.RunExperiment(id, guess.ExperimentOptions{
			Scale: guess.ScaleQuick,
			Seed:  1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 || res.Tables[0].NumRows() == 0 {
			b.Fatalf("%s produced no data", id)
		}
		b.ReportMetric(float64(res.Tables[0].NumRows()), "rows")
	}
}

func BenchmarkTable3LiveEntries(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkFig3ProbesVsCacheSize(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4UnsatVsCacheSize(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5DeadGoodProbes(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6ConnectivityVsPing(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7ConnectivityVsSize(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8FlexibleExtent(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9QueryProbePolicies(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkFig10QueryPongPolicies(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11CacheReplPolicies(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12UnsatByQueryPong(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13LoadDistribution(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14CapacityLimits(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15UnsatVsCapacity(b *testing.B)   { benchExperiment(b, "fig15") }
func BenchmarkFig16PoisonDeadProbes(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17PoisonDeadUnsat(b *testing.B)   { benchExperiment(b, "fig17") }
func BenchmarkFig18PoisonDeadEntries(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkFig19PoisonBadProbes(b *testing.B)   { benchExperiment(b, "fig19") }
func BenchmarkFig20PoisonBadUnsat(b *testing.B)    { benchExperiment(b, "fig20") }
func BenchmarkFig21PoisonBadEntries(b *testing.B)  { benchExperiment(b, "fig21") }

// Extension and ablation studies beyond the paper's artifacts.
func BenchmarkExtAdaptiveParallel(b *testing.B) { benchExperiment(b, "ext-adaptive") }
func BenchmarkExtSelfishPayments(b *testing.B)  { benchExperiment(b, "ext-selfish") }
func BenchmarkExtPoisonDetection(b *testing.B)  { benchExperiment(b, "ext-detection") }
func BenchmarkAblPongSize(b *testing.B)         { benchExperiment(b, "abl-pongsize") }
func BenchmarkAblIntroProb(b *testing.B)        { benchExperiment(b, "abl-introprob") }

// BenchmarkLargeRun measures a 100k-peer churning simulation with
// connectivity sampling — the scaling path toward the million-peer
// target (see README "Scaling"). The shards=1/shards=4 pair exposes
// the sharded engine's parallel sample and WCC scan phases: the gap
// between the two is the machine's parallel dividend (on one core
// shards=4 costs a few percent of merge overhead; with spare cores
// the scan phases spread out), while results stay byte-identical
// (TestShardCountInvariance) and allocs/op stays flat (make
// bench-check gates shards=1).
func BenchmarkLargeRun(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := guess.DefaultConfig()
				cfg.NetworkSize = 100_000
				cfg.CacheSize = 32
				cfg.WarmupTime = 20
				cfg.MeasureTime = 60
				cfg.QueryRate = 0.0005
				cfg.SampleInterval = 10
				cfg.SampleConnectivity = true
				cfg.Shards = shards
				cfg.Seed = uint64(i + 1)
				res, err := guess.Run(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Deaths == 0 {
					b.Fatal("no churn")
				}
			}
		})
	}
}

// BenchmarkSingleRun measures one default-configuration simulation —
// the unit of work every experiment sweep is built from.
func BenchmarkSingleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := guess.DefaultConfig()
		cfg.NetworkSize = 400
		cfg.WarmupTime = 100
		cfg.MeasureTime = 300
		cfg.Seed = uint64(i + 1)
		res, err := guess.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Queries == 0 {
			b.Fatal("no queries")
		}
	}
}
