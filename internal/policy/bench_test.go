package policy

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/simrng"
)

func benchEntries(n int) []cache.Entry {
	r := simrng.New(99)
	entries := make([]cache.Entry, n)
	for i := range entries {
		entries[i] = cache.Entry{
			Addr:   cache.PeerID(i + 1),
			TS:     float64(r.Intn(1000)),
			NumRes: int32(r.Intn(50)),
		}
	}
	return entries
}

// BenchmarkPickNReference measures the allocating package-level PickN
// (kept as the determinism oracle); contrast with BenchmarkScratchPickN
// to see what the scratch path saves.
func BenchmarkPickNReference(b *testing.B) {
	for _, sel := range []Selection{SelRandom, SelMFS} {
		b.Run(sel.String(), func(b *testing.B) {
			entries := benchEntries(128)
			r := simrng.New(7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := PickN(r, sel, entries, 10); len(got) != 10 {
					b.Fatal("short pick")
				}
			}
		})
	}
}

// BenchmarkScratchPickN measures the reusable-scratch selection used on
// the engine's hot path. Steady state must be allocation-free.
func BenchmarkScratchPickN(b *testing.B) {
	for _, sel := range []Selection{SelRandom, SelMFS} {
		b.Run(sel.String(), func(b *testing.B) {
			entries := benchEntries(128)
			r := simrng.New(7)
			var sc Scratch
			sc.PickN(r, sel, entries, 10) // prime the scratch buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := sc.PickN(r, sel, entries, 10); len(got) != 10 {
					b.Fatal("short pick")
				}
			}
		})
	}
}

// BenchmarkInsert measures cache insertion under eviction pressure (the
// per-pong-entry write path).
func BenchmarkInsert(b *testing.B) {
	for _, ev := range []Eviction{EvRandom, EvLFS} {
		b.Run(ev.String(), func(b *testing.B) {
			c := cache.NewLinkCache(128)
			for _, e := range benchEntries(128) {
				c.Add(e)
			}
			r := simrng.New(7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Insert(r, ev, c, cache.Entry{Addr: cache.PeerID(100000 + i)})
			}
		})
	}
}

// BenchmarkSelector measures the incremental best-first candidate
// stream (Add/Next) that queries consume.
func BenchmarkSelector(b *testing.B) {
	entries := benchEntries(64)
	r := simrng.New(7)
	s := NewSelector(SelMFS, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset(SelMFS, r)
		for _, e := range entries {
			s.Add(e)
		}
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
	}
}
