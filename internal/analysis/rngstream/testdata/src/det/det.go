// Package det poses as repro/internal/core to exercise the rngstream
// analyzer: simrng use must follow the named-stream discipline.
package det

import (
	"repro/internal/simrng"
)

const churnStream = "churn"

// namedStreams is the discipline: every component derives its stream
// by a compile-time constant name.
func namedStreams(seed uint64) (*simrng.RNG, *simrng.RNG) {
	root := simrng.New(seed)
	return root.Stream("workload"), root.Stream(churnStream)
}

// dynamicStreamName forks a fresh stream name per call.
func dynamicStreamName(root *simrng.RNG, peer string) *simrng.RNG {
	return root.Stream("peer:" + peer) // want `Stream name must be a compile-time string constant`
}

// split couples the child's sequence to the parent's draw count.
func split(root *simrng.RNG) *simrng.RNG {
	return root.Split() // want `Split seeds the child from the parent's draw position`
}

// reseedFromSibling is Split by another name.
func reseedFromSibling(sibling *simrng.RNG) *simrng.RNG {
	return simrng.New(sibling.Uint64()) // want `seeding a generator from a sibling stream's output`
}

// reseedFromValue is fine: the seed is plain data, not a stream draw.
func reseedFromValue(seed uint64) *simrng.RNG {
	return simrng.New(seed + 1)
}

// engine keeps its streams unexported: the discipline.
type engine struct {
	rngChurn    *simrng.RNG
	rngWorkload *simrng.RNG
}

// Shared exports an RNG field, inviting cross-component stream sharing.
type Shared struct {
	RNG *simrng.RNG // want `exported simrng.RNG field shares one stream across components`

	Name string
}

// annotated documents why a dynamic name is safe here.
func annotated(root *simrng.RNG, trial int) *simrng.RNG {
	//lint:rngstream-ok fixture: trial index is part of the experiment's static plan
	return root.Stream(streamName(trial))
}

func streamName(i int) string {
	if i == 0 {
		return "trial0"
	}
	return "trialN"
}
