// Command guess-sweep runs experiment sweeps distributed across
// worker processes.
//
// One process coordinates: it decomposes the experiment into
// content-addressed work units, serves them to workers over TCP,
// assembles results in spec order, and renders the same tables
// guess-experiments does. Any number of processes work: they connect,
// execute units, and stream results (and metric snapshots) back. The
// determinism guarantees make the output byte-identical to a
// single-process run.
//
// Examples:
//
//	# terminal 1: coordinate fig6 across at least two workers
//	guess-sweep -coordinate :9666 -experiment fig6 -min-workers 2
//
//	# terminals 2..N: contribute a worker each
//	guess-sweep -work host1:9666
//
//	# single-process smoke: 2 in-process workers over in-memory
//	# streams, checked byte-for-byte against the local path
//	guess-sweep -smoke
//
// A shared -cache-dir lets repeated or crashed-and-restarted sweeps
// skip every point a prior run already computed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/orchestrate"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "guess-sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("guess-sweep", flag.ContinueOnError)
	coordinate := fs.String("coordinate", "", "listen on this address and coordinate a sweep (e.g. :9666)")
	work := fs.String("work", "", "connect to a coordinator at this address and execute units")
	smoke := fs.Bool("smoke", false, "run a 2-worker in-process sweep and verify it matches the local path byte for byte")
	name := fs.String("name", "", "worker name reported to the coordinator (default: host:pid)")
	experiment := fs.String("experiment", "fig6", "experiment ID to coordinate (comma-separated, or \"all\")")
	scaleName := fs.String("scale", "quick", `fidelity: "quick" or "full" (paper scale)`)
	seed := fs.Uint64("seed", 1, "random seed")
	replications := fs.Int("replications", 1, "independently seeded runs pooled per sweep point")
	csvDir := fs.String("csv", "", "also write each table as CSV into this directory")
	cacheDir := fs.String("cache-dir", "", "shared on-disk result cache; hits skip recomputation across runs")
	minWorkers := fs.Int("min-workers", 1, "wait for this many workers before dispatching")
	retries := fs.Int("retries", 0, "reassignments per unit after worker failure (0 = default 2, negative = none)")
	unitTimeout := fs.Duration("unit-timeout", 0, "per-unit worker deadline before reassignment (0 = default 2m)")
	metricsOut := fs.String("metrics-out", "", "write merged Prometheus-text metrics at exit to this file (\"-\" = stdout)")
	quiet := fs.Bool("quiet", false, "suppress the progress dashboard")
	if err := fs.Parse(args); err != nil {
		return err
	}

	modes := 0
	for _, on := range []bool{*coordinate != "", *work != "", *smoke} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return errors.New("pick exactly one mode: -coordinate ADDR, -work ADDR, or -smoke")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch {
	case *work != "":
		return runWorker(ctx, *work, *name)
	case *smoke:
		return runSmoke(ctx, *experiment, *quiet)
	}

	opts := experiments.Options{
		Seed:         *seed,
		Replications: *replications,
		Context:      ctx,
	}
	switch *scaleName {
	case "quick":
		opts.Scale = experiments.Quick
	case "full":
		opts.Scale = experiments.Full
	default:
		return fmt.Errorf("unknown -scale %q (want quick or full)", *scaleName)
	}

	cfg := orchestrate.Config{MaxRetries: *retries, UnitTimeout: *unitTimeout}
	if *cacheDir != "" {
		cache, err := orchestrate.NewDiskCache(*cacheDir)
		if err != nil {
			return err
		}
		cfg.Cache = cache
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		obs.NewSimMetrics(reg)
		cfg.Metrics = reg
	}
	var dash *orchestrate.Dashboard
	if !*quiet {
		dash = orchestrate.NewDashboard(os.Stderr, stderrIsTerminal())
		cfg.Dashboard = dash
	}

	coord := orchestrate.New(cfg)
	defer coord.Close()
	lis, err := net.Listen("tcp", *coordinate)
	if err != nil {
		return err
	}
	defer lis.Close()
	go coord.Serve(lis)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "coordinating on %s; waiting for %d worker(s)\n", lis.Addr(), *minWorkers)
	}
	coord.WaitWorkers(*minWorkers)
	opts.Executor = coord

	err = runExperiments(*experiment, opts, *csvDir, *quiet, dash)
	dash.Finish()
	if err != nil {
		return err
	}
	if reg != nil {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			return err
		}
	}
	if !*quiet {
		s := coord.Stats()
		fmt.Fprintf(os.Stderr, "done: %d units (%d executed, %d cached, %d deduped), %d reassigned\n",
			s.UnitsTotal, s.Executed, s.CacheHits, s.Deduped, s.Reassigned)
	}
	return nil
}

// runWorker connects to a coordinator and serves units until it hangs
// up or the context ends.
func runWorker(ctx context.Context, addr, name string) error {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "working for %s as %s\n", addr, name)
	if err := orchestrate.RunWorker(ctx, conn, name); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// runSmoke runs the experiment twice — in-process, and distributed
// over a 2-worker in-memory pool — and fails unless the rendered
// output is byte-identical. CI's make sweep-smoke target runs this.
func runSmoke(ctx context.Context, experiment string, quiet bool) error {
	if experiment == "all" {
		experiment = "fig6"
	}
	ids := strings.Split(experiment, ",")
	pool, err := orchestrate.NewLocalPool(2, orchestrate.Config{})
	if err != nil {
		return err
	}
	defer pool.Close()
	for _, id := range ids {
		exp, err := experiments.Lookup(id)
		if err != nil {
			return err
		}
		local, err := exp.Run(experiments.Options{Scale: experiments.Quick, Context: ctx})
		if err != nil {
			return fmt.Errorf("%s local: %w", id, err)
		}
		dist, err := exp.Run(experiments.Options{Scale: experiments.Quick, Context: ctx, Executor: pool})
		if err != nil {
			return fmt.Errorf("%s distributed: %w", id, err)
		}
		var a, b strings.Builder
		if _, err := local.WriteTo(&a); err != nil {
			return err
		}
		if _, err := dist.WriteTo(&b); err != nil {
			return err
		}
		if a.String() != b.String() {
			return fmt.Errorf("%s: 2-worker output differs from single-process output", id)
		}
		s := pool.Stats()
		if s.Executed == 0 {
			return fmt.Errorf("%s: the worker pool executed no units", id)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "smoke %s: byte-identical across 2 workers (%d units executed)\n", id, s.Executed)
		}
	}
	fmt.Println("sweep smoke OK")
	return nil
}

// runExperiments coordinates each requested experiment and renders its
// tables to stdout.
func runExperiments(experiment string, opts experiments.Options, csvDir string, quiet bool, dash *orchestrate.Dashboard) error {
	ids := experiments.IDs()
	if experiment != "all" {
		ids = strings.Split(experiment, ",")
	}
	for _, id := range ids {
		exp, err := experiments.Lookup(id)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "== %s: %s (scale=%s)\n", id, exp.Title, opts.Scale)
		}
		start := time.Now()
		res, err := exp.Run(opts)
		if err != nil {
			return err
		}
		dash.Finish()
		if _, err := res.WriteTo(os.Stdout); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "== %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
		if csvDir != "" {
			if err := writeCSVs(csvDir, id, res); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeMetrics(dest string, reg *obs.Registry) error {
	out := os.Stdout
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return reg.WritePrometheus(out)
}

func writeCSVs(dir, id string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		name := id
		if len(res.Tables) > 1 {
			name = fmt.Sprintf("%s_%d", id, i)
		}
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// stderrIsTerminal reports whether stderr looks like an interactive
// terminal (char device), selecting in-place dashboard redraws over
// append-only lines.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
