package workload

import (
	"math"
	"testing"

	"repro/internal/simrng"
)

func TestNewValidation(t *testing.T) {
	for _, rate := range []float64{0, -1} {
		if _, err := New(rate); err == nil {
			t.Errorf("New(%v) accepted", rate)
		}
	}
	if _, err := New(DefaultQueryRate); err != nil {
		t.Fatalf("default rate rejected: %v", err)
	}
}

func TestBurstSizeRange(t *testing.T) {
	g := MustNew(0.01)
	r := simrng.New(1)
	counts := make(map[int]int)
	for i := 0; i < 50000; i++ {
		_, size := g.NextBurst(r)
		if size < 1 || size > 5 {
			t.Fatalf("burst size %d outside [1,5]", size)
		}
		counts[size]++
	}
	// Uniform across 1..5.
	for s := 1; s <= 5; s++ {
		f := float64(counts[s]) / 50000
		if math.Abs(f-0.2) > 0.01 {
			t.Errorf("burst size %d frequency %v, want ~0.2", s, f)
		}
	}
}

func TestLongRunRate(t *testing.T) {
	const rate = DefaultQueryRate
	g := MustNew(rate)
	r := simrng.New(2)
	totalTime, totalQueries := 0.0, 0
	for i := 0; i < 100000; i++ {
		delay, size := g.NextBurst(r)
		if delay < 0 {
			t.Fatalf("negative delay %v", delay)
		}
		totalTime += delay
		totalQueries += size
	}
	got := float64(totalQueries) / totalTime
	if math.Abs(got-rate)/rate > 0.03 {
		t.Fatalf("long-run rate %v, want ~%v", got, rate)
	}
	if math.Abs(g.Rate()-rate)/rate > 1e-9 {
		t.Fatalf("Rate() = %v, want %v", g.Rate(), rate)
	}
}
