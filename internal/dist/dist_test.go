package dist

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simrng"
)

// sampleMean draws n variates and returns their mean.
func sampleMean(t *testing.T, s Sampler, n int) float64 {
	t.Helper()
	r := simrng.New(1234)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Sample(r)
	}
	return sum / float64(n)
}

func TestUniform(t *testing.T) {
	u := Uniform{Lo: 2, Hi: 6}
	r := simrng.New(1)
	for i := 0; i < 10000; i++ {
		v := u.Sample(r)
		if v < 2 || v >= 6 {
			t.Fatalf("Uniform sample %v outside [2,6)", v)
		}
	}
	if got := sampleMean(t, u, 100000); math.Abs(got-u.Mean()) > 0.05 {
		t.Fatalf("uniform mean %v, want ~%v", got, u.Mean())
	}
}

func TestExponential(t *testing.T) {
	e := Exponential{Rate: 0.25}
	if got, want := sampleMean(t, e, 200000), 4.0; math.Abs(got-want) > 0.1 {
		t.Fatalf("exponential mean %v, want ~%v", got, want)
	}
}

func TestLogNormal(t *testing.T) {
	l := LogNormal{Mu: 1, Sigma: 0.5}
	want := l.Mean()
	if got := sampleMean(t, l, 300000); math.Abs(got-want)/want > 0.02 {
		t.Fatalf("lognormal mean %v, want ~%v", got, want)
	}
}

func TestPareto(t *testing.T) {
	p := Pareto{Xm: 2, Alpha: 3}
	r := simrng.New(1)
	for i := 0; i < 10000; i++ {
		if v := p.Sample(r); v < 2 {
			t.Fatalf("Pareto sample %v below Xm", v)
		}
	}
	if got, want := sampleMean(t, p, 500000), p.Mean(); math.Abs(got-want)/want > 0.03 {
		t.Fatalf("pareto mean %v, want ~%v", got, want)
	}
	if !math.IsNaN((Pareto{Xm: 1, Alpha: 1}).Mean()) {
		t.Fatal("Pareto mean with Alpha <= 1 should be NaN")
	}
}

func TestEmpiricalValidation(t *testing.T) {
	tests := []struct {
		name string
		pts  []Point
		ok   bool
	}{
		{"empty", nil, false},
		{"single", []Point{{0.5, 3}}, true},
		{"valid", []Point{{0, 1}, {0.5, 2}, {1, 10}}, true},
		{"q out of range", []Point{{-0.1, 1}}, false},
		{"q not increasing", []Point{{0.5, 1}, {0.5, 2}}, false},
		{"v decreasing", []Point{{0, 5}, {1, 1}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewEmpirical(tt.pts)
			if (err == nil) != tt.ok {
				t.Fatalf("NewEmpirical error = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestEmpiricalQuantile(t *testing.T) {
	e := MustEmpirical([]Point{{0, 0}, {0.5, 10}, {1, 20}})
	tests := []struct {
		q, want float64
	}{
		{-1, 0}, {0, 0}, {0.25, 5}, {0.5, 10}, {0.75, 15}, {1, 20}, {2, 20},
	}
	for _, tt := range tests {
		if got := e.Quantile(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestEmpiricalSampleRangeAndMean(t *testing.T) {
	e := MustEmpirical([]Point{{0, 1}, {0.9, 10}, {1, 100}})
	r := simrng.New(77)
	for i := 0; i < 10000; i++ {
		v := e.Sample(r)
		if v < 1 || v > 100 {
			t.Fatalf("empirical sample %v outside knot range", v)
		}
	}
	if got, want := sampleMean(t, e, 300000), e.Mean(); math.Abs(got-want)/want > 0.03 {
		t.Fatalf("empirical mean %v, want ~%v", got, want)
	}
}

// TestEmpiricalMonotone: the inverse CDF must be monotone for any valid
// knot set.
func TestEmpiricalMonotone(t *testing.T) {
	e := MustEmpirical([]Point{{0, 0}, {0.2, 1}, {0.6, 1.5}, {1, 9}})
	f := func(a, b float64) bool {
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return e.Quantile(qa) <= e.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{S: Constant{V: 4}, Factor: 0.25}
	if got := s.Sample(simrng.New(1)); got != 1 {
		t.Fatalf("scaled sample = %v, want 1", got)
	}
	if got := s.Mean(); got != 1 {
		t.Fatalf("scaled mean = %v, want 1", got)
	}
}

func TestMixtureValidation(t *testing.T) {
	c := []Sampler{Constant{1}, Constant{2}}
	if _, err := NewMixture(nil, nil); err == nil {
		t.Fatal("empty mixture accepted")
	}
	if _, err := NewMixture(c, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewMixture(c, []float64{-1, 2}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewMixture(c, []float64{0, 0}); err == nil {
		t.Fatal("zero total weight accepted")
	}
}

func TestMixtureWeights(t *testing.T) {
	m, err := NewMixture([]Sampler{Constant{0}, Constant{1}}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := simrng.New(5)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Sample(r) == 1 {
			ones++
		}
	}
	if got := float64(ones) / n; math.Abs(got-0.25) > 0.01 {
		t.Fatalf("second component drawn %v of the time, want ~0.25", got)
	}
	if got := m.Mean(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("mixture mean = %v, want 0.25", got)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("NewZipf(0,...) accepted")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Fatal("negative exponent accepted")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Fatal("NaN exponent accepted")
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := MustZipf(1000, 0.8)
	sum := 0.0
	for k := 0; k < z.N(); k++ {
		sum += z.Prob(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf probabilities sum to %v", sum)
	}
}

func TestZipfSkew(t *testing.T) {
	z := MustZipf(100, 1.0)
	// Rank 0 must be the most likely, and noticeably more likely than
	// rank 99.
	if z.Prob(0) <= z.Prob(99)*10 {
		t.Fatalf("Zipf insufficiently skewed: p0=%v p99=%v", z.Prob(0), z.Prob(99))
	}
	// Empirical rank frequencies should match Prob.
	r := simrng.New(9)
	const n = 200000
	count0 := 0
	for i := 0; i < n; i++ {
		if z.Rank(r) == 0 {
			count0++
		}
	}
	got := float64(count0) / n
	if math.Abs(got-z.Prob(0)) > 0.01 {
		t.Fatalf("rank-0 frequency %v, want ~%v", got, z.Prob(0))
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := MustZipf(50, 0)
	for k := 0; k < 50; k++ {
		if math.Abs(z.Prob(k)-0.02) > 1e-9 {
			t.Fatalf("Prob(%d) = %v, want 0.02", k, z.Prob(k))
		}
	}
}

func TestZipfRankInRange(t *testing.T) {
	z := MustZipf(37, 1.2)
	r := simrng.New(3)
	f := func(uint8) bool {
		k := z.Rank(r)
		return k >= 0 && k < 37
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfCDF(t *testing.T) {
	z := MustZipf(10, 1)
	if got := z.CDF(-1); got != 0 {
		t.Fatalf("CDF(-1) = %v", got)
	}
	if got := z.CDF(100); got != 1 {
		t.Fatalf("CDF(100) = %v", got)
	}
	prev := 0.0
	for k := 0; k < 10; k++ {
		c := z.CDF(k)
		if c < prev {
			t.Fatalf("CDF not monotone at %d", k)
		}
		prev = c
	}
}

func TestConstant(t *testing.T) {
	c := Constant{V: 7}
	if c.Sample(simrng.New(1)) != 7 || c.Mean() != 7 {
		t.Fatal("Constant distribution broken")
	}
}
