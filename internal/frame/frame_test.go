package frame

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// TestRoundTrip: payloads of assorted sizes survive a write/read cycle
// exactly, including the empty payload.
func TestRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		[]byte{},
		[]byte("x"),
		bytes.Repeat([]byte("frame"), 1000),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := Write(&buf, p, 1<<20); err != nil {
			t.Fatalf("Write(%d bytes): %v", len(p), err)
		}
	}
	for _, p := range payloads {
		got, err := Read(&buf, 1<<20)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("round trip: got %d bytes, want %d", len(got), len(p))
		}
	}
	if _, err := Read(&buf, 1<<20); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// TestCorruption: any flipped bit in payload or checksum is caught.
func TestCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []byte("hello frame"), 1<<10); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	flipPayload := append([]byte(nil), whole...)
	flipPayload[9] ^= 0x40
	if _, err := Read(bytes.NewReader(flipPayload), 1<<10); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload byte: err = %v, want ErrCorrupt", err)
	}
	flipCRC := append([]byte(nil), whole...)
	flipCRC[5] ^= 0x01
	if _, err := Read(bytes.NewReader(flipCRC), 1<<10); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped checksum byte: err = %v, want ErrCorrupt", err)
	}
}

// TestTruncation: every cut point mid-frame reads as ErrUnexpectedEOF,
// never a hang or a bogus payload.
func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []byte("payload"), 1<<10); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		if _, err := Read(bytes.NewReader(whole[:cut]), 1<<10); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestSizeBound: oversized writes are refused locally, and a hostile
// header cannot force a large allocation on read.
func TestSizeBound(t *testing.T) {
	if err := Write(io.Discard, make([]byte, 100), 99); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize write: err = %v, want ErrTooLarge", err)
	}
	var head [8]byte
	binary.BigEndian.PutUint32(head[0:4], 1<<31)
	if _, err := Read(bytes.NewReader(head[:]), 1<<20); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize header: err = %v, want ErrTooLarge", err)
	}
}
