// Package memnet provides an in-memory packet network implementing
// net.PacketConn, for testing live GUESS nodes without real sockets.
//
// Beyond basic delivery it is a scriptable network-condition simulator:
// every directed link (src→dst pair) can carry its own fault profile —
// loss probability, duplication, reordering, jitter drawn from seeded
// distributions, MTU-style truncation, and one-way blocking — so
// protocol robustness (dead-peer detection, retry/backoff, busy
// refusals, partition healing) is testable deterministically and
// without binding ports.
//
// Determinism: each directed link draws its fault decisions from its
// own RNG stream derived from the network seed and the link's
// addresses. A link's decision sequence therefore depends only on the
// order of packets sent over that link, not on goroutine interleaving
// across links, so chaos scenarios replay identically for identical
// seeds.
package memnet

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/simrng"
)

// LinkProfile describes the fault model for packets traversing one
// directed link (or, as the default profile, any link without an
// override). The zero value is a perfect link.
type LinkProfile struct {
	// Loss is the probability a packet is silently dropped.
	Loss float64
	// Latency is the base one-way delivery delay.
	Latency time.Duration
	// Jitter, when non-nil, samples extra per-packet delay in seconds
	// from the link's deterministic stream (negative samples clamp to
	// zero).
	Jitter dist.Sampler
	// DupProb is the probability a packet is delivered twice.
	DupProb float64
	// ReorderProb is the probability a packet is held back by
	// ReorderDelay, letting packets sent after it overtake it.
	ReorderProb float64
	// ReorderDelay is the hold-back applied to reordered packets; when
	// zero, 4*Latency + 1ms is used.
	ReorderDelay time.Duration
	// MTU, when positive, truncates larger packets to MTU bytes,
	// modeling a link that mangles oversized datagrams.
	MTU int
	// Blocked drops every packet: a one-way partition that heals when
	// cleared.
	Blocked bool
}

// Stats counts packet fates across the whole network. Drop causes are
// disjoint per enqueued copy:
//
//	Sent + Duplicated == Delivered + Dropped + Blocked + QueueDrop
type Stats struct {
	// Sent counts packets entering the network (one per WriteTo).
	Sent int64
	// Delivered counts copies enqueued at their destination.
	Delivered int64
	// Dropped counts packets lost to the Loss probability.
	Dropped int64
	// Duplicated counts extra copies created by DupProb.
	Duplicated int64
	// Reordered counts packets held back by ReorderProb.
	Reordered int64
	// Truncated counts packets cut down to the link MTU.
	Truncated int64
	// Blocked counts packets dropped by blocked links, isolated or
	// missing endpoints.
	Blocked int64
	// QueueDrop counts copies dropped at a full or closed destination
	// queue (like a real NIC).
	QueueDrop int64
}

type linkKey struct{ from, to netip.AddrPort }

// Network is a switchboard connecting in-memory endpoints. Create with
// New, then Listen endpoints on it.
type Network struct {
	mu        sync.Mutex
	endpoints map[netip.AddrPort]*Conn
	nextPort  uint16
	rng       *simrng.RNG

	// def applies to links without an override in links.
	def      LinkProfile
	links    map[linkKey]LinkProfile
	rngs     map[linkKey]*simrng.RNG
	isolated map[netip.AddrPort]bool

	// streams registers stream listeners (see stream.go); packet
	// endpoints and stream listeners share the address space.
	streams map[netip.AddrPort]*StreamListener

	// met backs both the Stats snapshot and an attached registry
	// (AttachMetrics); guarded by mu for swap, instruments are atomic.
	met *obs.MemnetMetrics
	// inFlight counts copies scheduled (possibly on a delay timer) but
	// not yet enqueued or dropped; WaitIdle polls it.
	inFlight atomic.Int64
}

// New creates an empty network. seed drives every fault decision.
func New(seed uint64) *Network {
	return &Network{
		endpoints: make(map[netip.AddrPort]*Conn),
		nextPort:  10000,
		rng:       simrng.New(seed),
		links:     make(map[linkKey]LinkProfile),
		rngs:      make(map[linkKey]*simrng.RNG),
		isolated:  make(map[netip.AddrPort]bool),
		met:       obs.NewMemnetMetrics(nil),
	}
}

// AttachMetrics re-homes the network's guess_memnet_* counters in reg
// for exposition alongside node metrics. Call it before traffic
// starts: counts accumulated beforehand stay in the private registry
// the network was created with.
func (n *Network) AttachMetrics(reg *obs.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.met = obs.NewMemnetMetrics(reg)
}

// SetLoss sets the default packet drop probability (0 = reliable).
func (n *Network) SetLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def.Loss = p
}

// SetLatency sets the default fixed one-way delivery delay.
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def.Latency = d
}

// SetDefaultProfile replaces the profile applied to links without an
// override.
func (n *Network) SetDefaultProfile(p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = p
}

// SetLink overrides the profile for the directed link from→to.
func (n *Network) SetLink(from, to netip.AddrPort, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = p
}

// ClearLink removes a directed link override, restoring the default
// profile.
func (n *Network) ClearLink(from, to netip.AddrPort) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.links, linkKey{from, to})
}

// Block installs a one-way partition on from→to (other profile fields
// of an existing override are preserved; absent one, the default
// profile's faults still apply when the link is later unblocked).
func (n *Network) Block(from, to netip.AddrPort) { n.setBlocked(from, to, true) }

// Unblock heals a one-way partition installed by Block.
func (n *Network) Unblock(from, to netip.AddrPort) { n.setBlocked(from, to, false) }

func (n *Network) setBlocked(from, to netip.AddrPort, blocked bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := linkKey{from, to}
	p, ok := n.links[k]
	if !ok {
		p = n.def
	}
	p.Blocked = blocked
	n.links[k] = p
}

// Isolate cuts an endpoint off in both directions without closing it:
// packets to and from it vanish until Heal. Unlike Partition the
// endpoint stays registered, modeling a transient full partition.
func (n *Network) Isolate(addr netip.AddrPort) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.isolated[addr] = true
}

// Heal reverses Isolate.
func (n *Network) Heal(addr netip.AddrPort) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.isolated, addr)
}

// Partition removes an endpoint from the network without closing it:
// packets to it vanish and packets from it go nowhere, simulating a
// peer behind a permanently dead link. Use Isolate/Heal for partitions
// that recover.
func (n *Network) Partition(addr netip.AddrPort) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, addr)
}

// Stats returns a snapshot of the network's packet accounting. The
// same instruments feed an attached metrics registry, so Stats and a
// metrics scrape always agree.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	met := n.met
	n.mu.Unlock()
	return Stats{
		Sent:       int64(met.Sent.Value()),
		Delivered:  int64(met.Delivered.Value()),
		Dropped:    int64(met.Dropped.Value()),
		Duplicated: int64(met.Duplicated.Value()),
		Reordered:  int64(met.Reordered.Value()),
		Truncated:  int64(met.Truncated.Value()),
		Blocked:    int64(met.Blocked.Value()),
		QueueDrop:  int64(met.QueueDrop.Value()),
	}
}

// Listen creates an endpoint with a fresh address on the network.
func (n *Network) Listen() *Conn {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr := netip.AddrPortFrom(netip.MustParseAddr("10.99.0.1"), n.nextPort)
	n.nextPort++
	c := &Conn{
		net:   n,
		addr:  addr,
		queue: make(chan packet, 256),
		done:  make(chan struct{}),
	}
	n.endpoints[addr] = c
	return c
}

// profileLocked resolves the effective profile for from→to; callers
// hold n.mu.
func (n *Network) profileLocked(from, to netip.AddrPort) LinkProfile {
	if p, ok := n.links[linkKey{from, to}]; ok {
		return p
	}
	return n.def
}

// rngLocked returns the deterministic decision stream for from→to,
// derived lazily from the network seed; callers hold n.mu.
func (n *Network) rngLocked(from, to netip.AddrPort) *simrng.RNG {
	k := linkKey{from, to}
	if r, ok := n.rngs[k]; ok {
		return r
	}
	r := n.rng.Stream("link:" + from.String() + ">" + to.String())
	n.rngs[k] = r
	return r
}

// deliver routes a packet, applying the link's fault profile.
func (n *Network) deliver(from, to netip.AddrPort, data []byte) {
	n.mu.Lock()
	met := n.met
	met.Sent.Inc()
	dst, ok := n.endpoints[to]
	if !ok || n.isolated[from] || n.isolated[to] {
		n.mu.Unlock()
		met.Blocked.Inc()
		return
	}
	p := n.profileLocked(from, to)
	if p.Blocked {
		n.mu.Unlock()
		met.Blocked.Inc()
		return
	}
	r := n.rngLocked(from, to)
	if p.Loss > 0 && r.Bool(p.Loss) {
		n.mu.Unlock()
		met.Dropped.Inc()
		return
	}
	copies := 1
	if p.DupProb > 0 && r.Bool(p.DupProb) {
		copies = 2
		met.Duplicated.Inc()
	}
	delay := p.Latency
	if p.Jitter != nil {
		if j := p.Jitter.Sample(r); j > 0 {
			delay += time.Duration(j * float64(time.Second))
		}
	}
	if p.ReorderProb > 0 && r.Bool(p.ReorderProb) {
		hold := p.ReorderDelay
		if hold <= 0 {
			hold = 4*p.Latency + time.Millisecond
		}
		delay += hold
		met.Reordered.Inc()
	}
	if p.MTU > 0 && len(data) > p.MTU {
		data = data[:p.MTU]
		met.Truncated.Inc()
	}
	n.mu.Unlock()

	cp := append([]byte(nil), data...)
	send := func() {
		defer n.inFlight.Add(-1)
		select {
		case <-dst.done:
			met.QueueDrop.Inc()
			return
		default:
		}
		select {
		case dst.queue <- packet{from: from, data: cp}:
			met.Delivered.Inc()
		default: // queue full: drop, like a real NIC
			met.QueueDrop.Inc()
		}
	}
	n.inFlight.Add(int64(copies))
	for i := 0; i < copies; i++ {
		if delay > 0 {
			time.AfterFunc(delay, send)
		} else {
			send()
		}
	}
}

// WaitIdle blocks until no scheduled copies remain in flight (all
// delayed deliveries have landed or been dropped), so Stats snapshots
// are exact, or until timeout elapses; it reports whether the network
// went idle. New traffic started while waiting resets the clock only
// in the sense that it must also land.
func (n *Network) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	// Poll with exponential backoff: fast enough (50µs) that an
	// already-idle network returns almost immediately, backing off to
	// 5ms so a long drain does not keep a core busy while chaos tests
	// wait out jittered deliveries.
	const maxPoll = 5 * time.Millisecond
	poll := 50 * time.Microsecond
	for {
		if n.inFlight.Load() == 0 {
			return true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return n.inFlight.Load() == 0
		}
		if poll > remain {
			poll = remain
		}
		time.Sleep(poll)
		if poll < maxPoll {
			poll *= 2
		}
	}
}

type packet struct {
	from netip.AddrPort
	data []byte
}

// Conn is one endpoint; it implements net.PacketConn.
type Conn struct {
	net  *Network
	addr netip.AddrPort

	queue chan packet

	closeOnce sync.Once
	done      chan struct{}

	mu           sync.Mutex
	readDeadline time.Time
}

var _ net.PacketConn = (*Conn)(nil)

// ReadFrom implements net.PacketConn.
func (c *Conn) ReadFrom(p []byte) (int, net.Addr, error) {
	var timeout <-chan time.Time
	c.mu.Lock()
	if !c.readDeadline.IsZero() {
		d := time.Until(c.readDeadline)
		if d <= 0 {
			c.mu.Unlock()
			return 0, nil, os.ErrDeadlineExceeded
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	c.mu.Unlock()
	select {
	case <-c.done:
		return 0, nil, net.ErrClosed
	case <-timeout:
		return 0, nil, os.ErrDeadlineExceeded
	case pkt := <-c.queue:
		n := copy(p, pkt.data)
		return n, net.UDPAddrFromAddrPort(pkt.from), nil
	}
}

// WriteTo implements net.PacketConn.
func (c *Conn) WriteTo(p []byte, addr net.Addr) (int, error) {
	select {
	case <-c.done:
		return 0, net.ErrClosed
	default:
	}
	to, err := toAddrPort(addr)
	if err != nil {
		return 0, err
	}
	c.net.deliver(c.addr, to, p)
	return len(p), nil
}

// Close implements net.PacketConn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.net.Partition(c.addr)
	})
	return nil
}

// LocalAddr implements net.PacketConn.
func (c *Conn) LocalAddr() net.Addr { return net.UDPAddrFromAddrPort(c.addr) }

// AddrPort returns the endpoint's address in netip form (convenience
// for configuring link profiles before a node starts).
func (c *Conn) AddrPort() netip.AddrPort { return c.addr }

// SetDeadline implements net.PacketConn. Only the read side has
// meaning here (writes complete instantly and never block), so it
// applies t as the read deadline.
func (c *Conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readDeadline = t
	return nil
}

// ErrWriteDeadlineUnsupported reports that memnet writes cannot carry
// a deadline: WriteTo enqueues synchronously and never blocks, so a
// write deadline could never fire and silently accepting one would be
// misleading.
var ErrWriteDeadlineUnsupported = errors.New("memnet: write deadlines not supported")

// SetWriteDeadline implements net.PacketConn. Clearing the deadline
// (the zero time) succeeds; setting one returns
// ErrWriteDeadlineUnsupported because writes complete instantly.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	if t.IsZero() {
		return nil
	}
	return ErrWriteDeadlineUnsupported
}

func toAddrPort(addr net.Addr) (netip.AddrPort, error) {
	switch a := addr.(type) {
	case *net.UDPAddr:
		return a.AddrPort(), nil
	default:
		ap, err := netip.ParseAddrPort(addr.String())
		if err != nil {
			return netip.AddrPort{}, fmt.Errorf("memnet: bad address %v: %w", addr, err)
		}
		return ap, nil
	}
}
