package dht

// FuzzDHTLookup feeds arbitrary — including malformed — parameter
// combinations and adversarial key distributions (extreme Zipf
// exponents concentrate all lookups on a handful of keys) to the
// engine. Invalid parameters must be rejected by Validate (never
// panic), and any accepted configuration must run to completion
// deterministically with every conservation invariant intact.

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

func FuzzDHTLookup(f *testing.F) {
	f.Add(uint64(1), int16(64), int16(3), int16(16), int16(24), int16(20), 0.5, 0.05, 0.1, 0.05, 0.8)
	f.Add(uint64(2), int16(2), int16(1), int16(0), int16(1), int16(1), 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(uint64(3), int16(-9), int16(0), int16(-2), int16(0), int16(0), -0.5, 1.5, 2.0, -1.0, -2.0)
	f.Add(uint64(4), int16(100), int16(100), int16(64), int16(48), int16(12), 1.0, 1.0, 0.6, 0.3, 6.0)

	f.Fuzz(func(t *testing.T, seed uint64, n, replicas, cacheSize, maxHops, lookups int16, cacheProb, seedCache, dead, loss, queryExp float64) {
		p := DefaultParams()
		p.Seed = seed
		p.NetworkSize = int(n)
		p.BaseReplicas = int(replicas)
		p.CacheSize = int(cacheSize)
		p.MaxHops = int(maxHops)
		p.NumLookups = int(lookups)
		p.CacheProb = cacheProb
		p.SeedCacheFraction = seedCache
		p.DeadFraction = dead
		p.LossProb = loss
		p.Content.QueryExp = queryExp
		// Keep accepted configurations small enough to run thousands of
		// fuzz iterations; rejection paths still see the raw values.
		if p.NetworkSize > 128 {
			p.NetworkSize = 128
		}
		if p.MaxHops > 48 {
			p.MaxHops = 48
		}
		if p.NumLookups > 24 {
			p.NumLookups = 24
		}
		p.Content.NumItems = 500

		e, err := New(p)
		if err != nil {
			return // malformed params must be rejected, not panic
		}
		a, err := e.Run(context.Background())
		if err != nil {
			t.Fatalf("accepted params failed to run: %v", err)
		}
		b, err := Run(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			t.Fatalf("same params, different results:\n%s\n%s", aj, bj)
		}
		if a.Lookups != p.NumLookups || a.Satisfied+a.Unsatisfied != a.Lookups {
			t.Fatalf("lookup accounting broken: %+v", a)
		}
		if a.MessagesSent != a.MessagesDelivered+a.MessagesDropped {
			t.Fatalf("conservation violated: %+v", a)
		}
		if a.MaxHopsUsed > p.MaxHops {
			t.Fatalf("hop budget exceeded: used %d, budget %d", a.MaxHopsUsed, p.MaxHops)
		}
		if s := a.Satisfaction(); s < 0 || s > 1 {
			t.Fatalf("satisfaction %v outside [0,1]", s)
		}
	})
}
