package core

// White-box tests of engine internals that do not need a full
// simulation run: pong construction, introduction, sampling, and the
// malicious pong fabrication paths. Peers are addressed by slot index
// into the engine's peerStore (see peerstore.go).

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
)

// newBootstrapped builds an engine with the initial population in
// place but no events processed.
func newBootstrapped(t *testing.T, mutate func(*Params)) *Engine {
	t.Helper()
	p := quickParams()
	if mutate != nil {
		mutate(&p)
	}
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	e.bootstrap()
	return e
}

// badSlot resolves the i-th live malicious peer to its slot.
func badSlot(t *testing.T, e *Engine, i int) int {
	t.Helper()
	slot := e.ps.slotOf(e.bad[i])
	if slot < 0 {
		t.Fatalf("bad peer %d not alive", e.bad[i])
	}
	return slot
}

func TestBootstrapSeedsCaches(t *testing.T) {
	e := newBootstrapped(t, nil)
	if e.ps.len() != e.p.NetworkSize {
		t.Fatalf("alive = %d", e.ps.len())
	}
	want := e.p.seedSize()
	for p := 0; p < e.ps.len(); p++ {
		link := &e.ps.link[p]
		if link.Len() == 0 || link.Len() > want {
			t.Fatalf("peer %d seeded with %d entries, want 1..%d", e.ps.id[p], link.Len(), want)
		}
		if link.Has(e.ps.id[p]) {
			t.Fatalf("peer %d has itself in its cache", e.ps.id[p])
		}
		for _, entry := range link.Entries() {
			target := e.ps.slotOf(entry.Addr)
			if target < 0 {
				t.Fatalf("seeded entry points at nonexistent peer %d", entry.Addr)
			}
			if entry.NumFiles != e.ps.advertisedFiles[target] {
				t.Fatalf("seed entry NumFiles %d != advertised %d",
					entry.NumFiles, e.ps.advertisedFiles[target])
			}
		}
	}
}

func TestSamplePeersDistinctAndExcluding(t *testing.T) {
	e := newBootstrapped(t, nil)
	exclude := e.ps.id[0]
	for trial := 0; trial < 50; trial++ {
		idx := e.samplePeers(e.rngSeeding, 10, exclude)
		seen := make(map[int]bool)
		for _, i := range idx {
			if seen[i] {
				t.Fatal("duplicate index sampled")
			}
			seen[i] = true
			if e.ps.id[i] == exclude {
				t.Fatal("excluded peer sampled")
			}
		}
	}
}

func TestBuildPongHonest(t *testing.T) {
	e := newBootstrapped(t, nil)
	const host = 0
	pong := e.buildPong(host, policy.SelRandom)
	if len(pong) == 0 || len(pong) > e.p.PongSize {
		t.Fatalf("pong size %d", len(pong))
	}
	for _, entry := range pong {
		if !e.ps.link[host].Has(entry.Addr) {
			t.Fatal("pong entry not from host's cache")
		}
	}
}

func TestBuildPongMFSPicksTop(t *testing.T) {
	e := newBootstrapped(t, nil)
	const host = 0
	pong := e.buildPong(host, policy.SelMFS)
	// The pong must contain the cache's maximum-NumFiles entry.
	var maxFiles int32
	for _, entry := range e.ps.link[host].Entries() {
		if entry.NumFiles > maxFiles {
			maxFiles = entry.NumFiles
		}
	}
	found := false
	for _, entry := range pong {
		if entry.NumFiles == maxFiles {
			found = true
		}
	}
	if !found {
		t.Fatalf("MFS pong lacks the richest entry (%d files)", maxFiles)
	}
}

func TestBuildBadPongDead(t *testing.T) {
	e := newBootstrapped(t, func(p *Params) {
		p.PercentBadPeers = 10
		p.BadPong = BadPongDead
	})
	if len(e.bad) == 0 {
		t.Fatal("no malicious peers")
	}
	host := badSlot(t, e, 0)
	pong := e.buildPong(host, policy.SelRandom)
	if len(pong) != e.p.PongSize {
		t.Fatalf("bad pong size %d", len(pong))
	}
	for _, entry := range pong {
		if entry.Addr < fakeAddrBase {
			t.Fatalf("dead pong entry %d is a real address", entry.Addr)
		}
		if e.ps.slotOf(entry.Addr) >= 0 {
			t.Fatal("fabricated address is alive")
		}
		if entry.NumFiles != e.lieFiles {
			t.Fatalf("fabricated entry not attractive under MFS: %+v", entry)
		}
		if entry.NumRes != 0 {
			t.Fatalf("fabricated stranger carries a NumRes lie: %+v", entry)
		}
	}
}

func TestBuildBadPongColluding(t *testing.T) {
	e := newBootstrapped(t, func(p *Params) {
		p.PercentBadPeers = 10
		p.BadPong = BadPongBad
	})
	host := badSlot(t, e, 0)
	pong := e.buildPong(host, policy.SelRandom)
	if len(pong) != e.p.PongSize {
		t.Fatalf("colluding pong size %d", len(pong))
	}
	for _, entry := range pong {
		target := e.ps.slotOf(entry.Addr)
		if target < 0 || !e.ps.malicious[target] {
			t.Fatalf("colluding pong entry %d not a live malicious peer", entry.Addr)
		}
		if entry.Addr == e.ps.id[host] {
			t.Fatal("colluder advertised itself")
		}
	}
}

func TestBuildBadPongColludingAloneFallsBackToDead(t *testing.T) {
	e := newBootstrapped(t, func(p *Params) {
		p.NetworkSize = 300 // ensure exactly one bad peer is possible
		p.PercentBadPeers = 0.4
		p.BadPong = BadPongBad
	})
	if len(e.bad) != 1 {
		t.Fatalf("want exactly 1 bad peer, got %d", len(e.bad))
	}
	pong := e.buildPong(badSlot(t, e, 0), policy.SelRandom)
	for _, entry := range pong {
		if entry.Addr < fakeAddrBase {
			t.Fatal("lone colluder should fabricate dead addresses")
		}
	}
}

func TestMaybeIntroduceAlwaysAndNever(t *testing.T) {
	e := newBootstrapped(t, func(p *Params) { p.IntroProb = 1 })
	const host, guest = 0, 1
	e.ps.link[host] = *cache.NewLinkCache(e.p.CacheSize) // empty it
	e.maybeIntroduce(host, guest)
	if !e.ps.link[host].Has(e.ps.id[guest]) {
		t.Fatal("IntroProb=1 did not introduce")
	}

	e2 := newBootstrapped(t, func(p *Params) { p.IntroProb = 0 })
	e2.ps.link[host] = *cache.NewLinkCache(e2.p.CacheSize)
	e2.maybeIntroduce(host, guest)
	if e2.ps.link[host].Len() != 0 {
		t.Fatal("IntroProb=0 introduced")
	}
}

func TestAcceptPongRules(t *testing.T) {
	e := newBootstrapped(t, func(p *Params) { p.ResetNumResults = true })
	const receiver, source = 0, 1
	e.ps.link[receiver] = *cache.NewLinkCache(e.p.CacheSize)
	pong := []cache.Entry{
		{Addr: e.ps.id[receiver], NumFiles: 9},      // self: skipped
		{Addr: e.ps.id[2], NumRes: 7, Direct: true}, // NumRes zeroed, Direct cleared
	}
	e.acceptPong(receiver, source, pong)
	if e.ps.link[receiver].Has(e.ps.id[receiver]) {
		t.Fatal("accepted own address")
	}
	got, ok := e.ps.link[receiver].Get(e.ps.id[2])
	if !ok {
		t.Fatal("entry not accepted")
	}
	if got.NumRes != 0 || got.Direct {
		t.Fatalf("ResetNumResults/Direct rules violated: %+v", got)
	}
}

func TestLargestWCCOnFreshNetwork(t *testing.T) {
	e := newBootstrapped(t, nil)
	wcc := e.largestWCC()
	// Seeded random caches of ~4 entries connect essentially everyone.
	if wcc < e.p.NetworkSize*9/10 {
		t.Fatalf("fresh overlay fragmented: WCC=%d of %d", wcc, e.p.NetworkSize)
	}
}

// TestLargestWCCParallelMatchesSerial pins that the sharded WCC sample
// (parallel edge resolution, sequential unions) computes exactly the
// serial scan's component size. The population is made large enough to
// cross the parallel path's size threshold.
func TestLargestWCCParallelMatchesSerial(t *testing.T) {
	mk := func(shards int) *Engine {
		return newBootstrapped(t, func(p *Params) {
			p.NetworkSize = 3 * scanChunk
			p.Shards = shards
		})
	}
	serial := mk(1).largestWCC()
	for _, shards := range []int{2, 4, 8} {
		if got := mk(shards).largestWCC(); got != serial {
			t.Fatalf("Shards=%d WCC=%d, serial=%d", shards, got, serial)
		}
	}
}

func TestQueryAddCandidateDedups(t *testing.T) {
	q := &query{
		sel:     policy.NewSelector(policy.SelMFS, nil),
		seen:    make(map[cache.PeerID]uint64),
		seenGen: 1,
	}
	e := cache.Entry{Addr: 5, NumFiles: 3}
	if !q.addCandidate(e) {
		t.Fatal("first add rejected")
	}
	if q.addCandidate(e) {
		t.Fatal("duplicate accepted")
	}
	if q.sel.Len() != 1 {
		t.Fatalf("selector len %d", q.sel.Len())
	}
}
