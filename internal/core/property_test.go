package core

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/policy"
)

// TestEngineInvariantsUnderRandomConfigs drives small simulations with
// randomized configurations and checks the engine's global invariants:
// probe accounting sums, satisfaction partitioning, population
// constancy, and cache-health sanity.
func TestEngineInvariantsUnderRandomConfigs(t *testing.T) {
	selections := []policy.Selection{
		policy.SelRandom, policy.SelMRU, policy.SelLRU, policy.SelMFS, policy.SelMR, policy.SelMRStar,
	}
	evictions := []policy.Eviction{
		policy.EvRandom, policy.EvLRU, policy.EvMRU, policy.EvLFS, policy.EvLR, policy.EvLRStar,
	}
	f := func(seed uint16, qp, qpong, repl, cacheRaw, badRaw uint8, collude, backoff bool) bool {
		p := DefaultParams()
		p.Seed = uint64(seed) + 1
		p.NetworkSize = 80
		p.WarmupTime = 50
		p.MeasureTime = 200
		p.QueryRate = 0.03
		p.LifespanMultiplier = 0.3
		p.CacheSize = 4 + int(cacheRaw%40)
		p.QueryProbe = selections[int(qp)%len(selections)]
		p.QueryPong = selections[int(qpong)%len(selections)]
		p.CacheReplacement = evictions[int(repl)%len(evictions)]
		p.PercentBadPeers = float64(badRaw % 25)
		if collude {
			p.BadPong = BadPongBad
		} else {
			p.BadPong = BadPongDead
		}
		p.DoBackoff = backoff
		p.MaxProbesPerSecond = 30

		e, err := New(p)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		res, err := e.Run(context.Background())
		if err != nil {
			t.Logf("run failed: %v", err)
			return false
		}
		switch {
		case res.ProbesTotal != res.GoodProbes+res.DeadProbes+res.RefusedProbes:
			t.Logf("probe accounting: %d != %d+%d+%d",
				res.ProbesTotal, res.GoodProbes, res.DeadProbes, res.RefusedProbes)
			return false
		case res.Satisfied+res.Unsatisfied != res.Queries:
			t.Logf("satisfaction partition broken")
			return false
		case e.ps.len() != p.NetworkSize:
			t.Logf("population drifted to %d", e.ps.len())
			return false
		case res.Births != res.Deaths+p.NetworkSize:
			t.Logf("birth/death ledger broken: %d births, %d deaths", res.Births, res.Deaths)
			return false
		case res.AvgLiveFraction < 0 || res.AvgLiveFraction > 1:
			t.Logf("live fraction %v", res.AvgLiveFraction)
			return false
		case res.AvgLiveEntries > res.AvgCacheEntries+1e-9:
			t.Logf("live entries exceed held")
			return false
		case res.Aborted < 0:
			return false
		}
		// Every peer's link cache respects capacity and never contains
		// the peer itself.
		for i := 0; i < e.ps.len(); i++ {
			if e.ps.link[i].Len() > p.CacheSize || e.ps.link[i].Has(e.ps.id[i]) {
				t.Logf("cache invariant broken at peer %d", e.ps.id[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
