package memnet

import (
	"errors"
	"net"
	"net/netip"
	"os"
	"testing"
	"time"
)

func TestBasicDelivery(t *testing.T) {
	nw := New(1)
	a := nw.Listen()
	b := nw.Listen()
	defer a.Close()
	defer b.Close()

	msg := []byte("hello")
	if _, err := a.WriteTo(msg, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	b.SetReadDeadline(time.Now().Add(time.Second))
	n, from, err := b.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello" {
		t.Fatalf("payload %q", buf[:n])
	}
	if from.String() != a.LocalAddr().String() {
		t.Fatalf("from = %v, want %v", from, a.LocalAddr())
	}
}

func TestDistinctAddresses(t *testing.T) {
	nw := New(1)
	a := nw.Listen()
	b := nw.Listen()
	if a.LocalAddr().String() == b.LocalAddr().String() {
		t.Fatal("endpoints share an address")
	}
}

func TestReadDeadline(t *testing.T) {
	nw := New(1)
	c := nw.Listen()
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 8)
	_, _, err := c.ReadFrom(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Expired deadline fails immediately.
	c.SetReadDeadline(time.Now().Add(-time.Second))
	if _, _, err := c.ReadFrom(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestClose(t *testing.T) {
	nw := New(1)
	a := nw.Listen()
	b := nw.Listen()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("Close not idempotent")
	}
	// Reads on a closed conn fail.
	if _, _, err := b.ReadFrom(make([]byte, 8)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	// Writes to a closed endpoint vanish; writes from a closed conn
	// fail.
	if _, err := a.WriteTo([]byte("x"), b.LocalAddr()); err != nil {
		t.Fatal("write to dead endpoint should not error (UDP semantics)")
	}
	if _, err := b.WriteTo([]byte("x"), a.LocalAddr()); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write from closed conn: %v", err)
	}
}

func TestPartition(t *testing.T) {
	nw := New(1)
	a := nw.Listen()
	b := nw.Listen()
	defer a.Close()
	defer b.Close()
	nw.Partition(addrPortOf(t, b))
	if _, err := a.WriteTo([]byte("x"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := b.ReadFrom(make([]byte, 8)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("partitioned endpoint still received: %v", err)
	}
}

func TestLossDropsRoughlyFraction(t *testing.T) {
	nw := New(7)
	nw.SetLoss(0.5)
	a := nw.Listen()
	b := nw.Listen()
	defer a.Close()
	defer b.Close()
	const sent = 400
	for i := 0; i < sent; i++ {
		if _, err := a.WriteTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	buf := make([]byte, 8)
	for {
		b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
		if _, _, err := b.ReadFrom(buf); err != nil {
			break
		}
		received++
	}
	if received < sent/4 || received > 3*sent/4 {
		t.Fatalf("received %d of %d at 50%% loss", received, sent)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	nw := New(1)
	nw.SetLatency(60 * time.Millisecond)
	a := nw.Listen()
	b := nw.Listen()
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if _, err := a.WriteTo([]byte("x"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := b.ReadFrom(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~60ms", elapsed)
	}
}

func TestPayloadIsolated(t *testing.T) {
	nw := New(1)
	a := nw.Listen()
	b := nw.Listen()
	defer a.Close()
	defer b.Close()
	msg := []byte("mutate-me")
	if _, err := a.WriteTo(msg, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X' // sender reuses its buffer
	buf := make([]byte, 16)
	b.SetReadDeadline(time.Now().Add(time.Second))
	n, _, err := b.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "mutate-me" {
		t.Fatalf("payload shared with sender buffer: %q", buf[:n])
	}
}

func addrPortOf(t *testing.T, c *Conn) netip.AddrPort {
	t.Helper()
	u, ok := c.LocalAddr().(*net.UDPAddr)
	if !ok {
		t.Fatal("unexpected addr type")
	}
	return u.AddrPort()
}
