package node

// The chaos battery: scripted adversarial network scenarios on the
// memnet fault simulator. Every scenario derives all randomness from
// fixed seeds (memnet draws per-link decision streams, nodes their own
// seeded RNG), so `go test -run Chaos -count=2` replays identical
// fault sequences; each scenario additionally runs itself twice in-
// process and asserts the outcomes match. Scenarios assert the
// protocol-level invariants from the paper's robustness sections:
// queries still resolve, dead entries get evicted, stats account for
// every retry and drop, and no goroutines leak.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/node/memnet"
)

// leakCheck snapshots the goroutine count and verifies, after all the
// test's cleanups (node Closes) have run, that it returns to the
// baseline. Call first in a test so its cleanup runs last.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	})
}

// requireNetInvariant asserts memnet's packet accounting identity,
// first letting in-flight delayed deliveries land.
func requireNetInvariant(t *testing.T, nw *memnet.Network) {
	t.Helper()
	if !nw.WaitIdle(2 * time.Second) {
		t.Fatal("network did not go idle")
	}
	s := nw.Stats()
	if s.Sent+s.Duplicated != s.Delivered+s.Dropped+s.Blocked+s.QueueDrop {
		t.Fatalf("network stats do not account for every packet: %+v", s)
	}
}

// requireQueryAccounting asserts every probe ended in exactly one
// outcome.
func requireQueryAccounting(t *testing.T, qs QueryStats) {
	t.Helper()
	if qs.Probes != qs.Good+qs.Dead+qs.Refused {
		t.Fatalf("query stats do not account for every probe: %+v", qs)
	}
}

// chaosCfg is the hardened querier configuration the battery uses:
// short timeouts for test speed, retries, adaptive timeouts.
func chaosCfg(seed uint64) Config {
	return Config{
		ProbeTimeout:     60 * time.Millisecond,
		MaxProbeAttempts: 4,
		RetryBackoff:     5 * time.Millisecond,
		RetryBackoffMax:  40 * time.Millisecond,
		AdaptiveTimeout:  true,
		PingInterval:     time.Hour, // scenarios drive all traffic themselves
		Seed:             seed,
	}
}

// deadCachedPeer registers a never-answering peer in the querier's
// link cache and returns its address.
func deadCachedPeer(t *testing.T, nw *memnet.Network, q *Node) (addr string) {
	t.Helper()
	dead := nw.Listen()
	deadAddr := dead.AddrPort()
	dead.Close()
	q.AddPeer(deadAddr, 1)
	return deadAddr.String()
}

// cacheHolds reports whether addr is still in the node's link cache.
func cacheHolds(n *Node, addr string) bool {
	for _, a := range n.CacheAddrs() {
		if a.String() == addr {
			return true
		}
	}
	return false
}

// Scenario 1: a flaky network — 25% loss plus jitter on every link.
// The retrying querier must still resolve its query against a pool of
// sharers, and a dead cache entry must be evicted by the walk.
func TestChaosFlakyLink(t *testing.T) {
	leakCheck(t)
	type outcome struct {
		Resolved, Evicted bool
	}
	scenario := func(t *testing.T) outcome {
		nw := memnet.New(42)
		nw.SetDefaultProfile(memnet.LinkProfile{
			Loss:    0.25,
			Latency: time.Millisecond,
			Jitter:  dist.Uniform{Lo: 0, Hi: 0.004},
		})
		querier := startMemNode(t, nw, chaosCfg(7))
		for i := 0; i < 10; i++ {
			s := startMemNode(t, nw, Config{
				Files:        []string{"needle.bin"},
				PingInterval: time.Hour,
				Seed:         uint64(i + 2),
			})
			querier.AddPeer(s.Addr(), 1)
		}
		deadAddr := deadCachedPeer(t, nw, querier)

		hits, qs, err := querier.Query(context.Background(), "needle", 1)
		if err != nil {
			t.Fatal(err)
		}
		requireQueryAccounting(t, qs)

		// A second query that matches nothing walks every candidate, so
		// the dead entry is guaranteed to be probed and evicted.
		_, qs2, err := querier.Query(context.Background(), "no such file", 1)
		if err != nil {
			t.Fatal(err)
		}
		requireQueryAccounting(t, qs2)
		requireNetInvariant(t, nw)
		if int64(qs.Retries+qs2.Retries) > querier.Stats().Retries {
			t.Fatalf("node retry counter %d below query totals %d",
				querier.Stats().Retries, qs.Retries+qs2.Retries)
		}
		return outcome{
			Resolved: len(hits) > 0,
			Evicted:  !cacheHolds(querier, deadAddr) && querier.Stats().DeadEvictions >= 1,
		}
	}
	a := scenario(t)
	b := scenario(t)
	if a != b {
		t.Fatalf("same seeds, different outcomes: %+v vs %+v", a, b)
	}
	if !a.Resolved {
		t.Fatal("query did not resolve under 25% loss with retries")
	}
	if !a.Evicted {
		t.Fatal("dead cache entry not evicted")
	}
}

// Scenario 2: 30% duplication and 30% reordering on every link. The
// protocol must neither double-count hits nor trip over stale copies,
// and dup replies must be accounted for.
func TestChaosDuplicationReorder(t *testing.T) {
	leakCheck(t)
	type outcome struct {
		Resolved, Evicted bool
		Hits              int
	}
	scenario := func(t *testing.T) outcome {
		nw := memnet.New(99)
		nw.SetDefaultProfile(memnet.LinkProfile{
			DupProb:      0.3,
			ReorderProb:  0.3,
			ReorderDelay: 15 * time.Millisecond,
			Latency:      2 * time.Millisecond,
		})
		querier := startMemNode(t, nw, chaosCfg(3))
		for i := 0; i < 6; i++ {
			s := startMemNode(t, nw, Config{
				Files:        []string{"dup target.dat"},
				PingInterval: time.Hour,
				Seed:         uint64(i + 20),
			})
			querier.AddPeer(s.Addr(), 1)
		}
		deadAddr := deadCachedPeer(t, nw, querier)

		hits, qs, err := querier.Query(context.Background(), "dup target", 2)
		if err != nil {
			t.Fatal(err)
		}
		requireQueryAccounting(t, qs)
		// Each responding peer contributes its hit exactly once even
		// when the network duplicated the QueryHit.
		if len(hits) > 2 {
			t.Fatalf("duplicated replies double-counted: %d hits", len(hits))
		}
		_, _, err = querier.Query(context.Background(), "nothing matches", 1)
		if err != nil {
			t.Fatal(err)
		}
		requireNetInvariant(t, nw)
		if nw.Stats().Duplicated == 0 {
			t.Fatal("duplication never fired")
		}
		return outcome{
			Resolved: len(hits) > 0,
			Evicted:  !cacheHolds(querier, deadAddr),
			Hits:     len(hits),
		}
	}
	a := scenario(t)
	b := scenario(t)
	if a != b {
		t.Fatalf("same seeds, different outcomes: %+v vs %+v", a, b)
	}
	if !a.Resolved {
		t.Fatal("query did not resolve under duplication+reorder")
	}
	if !a.Evicted {
		t.Fatal("dead cache entry not evicted")
	}
}

// Scenario 3: an asymmetric partition — the sharer hears the querier
// but its replies vanish — that later heals. The sharer must look
// dead and be evicted during the partition, and be usable again after
// healing.
func TestChaosAsymmetricHealingPartition(t *testing.T) {
	leakCheck(t)
	type outcome struct {
		DuringDead     bool
		Evicted        bool
		ServedUnheard  bool
		HealedResolved bool
	}
	scenario := func(t *testing.T) outcome {
		nw := memnet.New(5)
		nw.SetDefaultProfile(memnet.LinkProfile{Latency: time.Millisecond})
		sharer := startMemNode(t, nw, Config{
			Files:        []string{"island.txt"},
			PingInterval: time.Hour,
			Seed:         2,
		})
		cfg := chaosCfg(4)
		cfg.MaxProbeAttempts = 2
		querier := startMemNode(t, nw, cfg)
		querier.AddPeer(sharer.Addr(), 1)

		// Partition only the reply direction.
		nw.Block(sharer.Addr(), querier.Addr())
		hits, qs, err := querier.Query(context.Background(), "island", 1)
		if err != nil {
			t.Fatal(err)
		}
		requireQueryAccounting(t, qs)
		o := outcome{
			DuringDead: len(hits) == 0 && qs.Dead == 1,
			Evicted:    querier.CacheLen() == 0,
			// The asymmetry is observable: the sharer served the query
			// even though the querier never heard the answer.
			ServedUnheard: sharer.Stats().QueriesServed >= 1,
		}
		if nw.Stats().Blocked == 0 {
			t.Fatal("partition never blocked a packet")
		}

		// Heal and re-learn the peer: service must resume.
		nw.Unblock(sharer.Addr(), querier.Addr())
		querier.AddPeer(sharer.Addr(), 1)
		hits, qs, err = querier.Query(context.Background(), "island", 1)
		if err != nil {
			t.Fatal(err)
		}
		requireQueryAccounting(t, qs)
		requireNetInvariant(t, nw)
		o.HealedResolved = len(hits) == 1
		return o
	}
	a := scenario(t)
	b := scenario(t)
	if a != b {
		t.Fatalf("same seeds, different outcomes: %+v vs %+v", a, b)
	}
	if !a.DuringDead || !a.Evicted {
		t.Fatalf("partitioned peer not treated as dead+evicted: %+v", a)
	}
	if !a.ServedUnheard {
		t.Fatalf("asymmetry not exercised: %+v", a)
	}
	if !a.HealedResolved {
		t.Fatalf("healed partition did not restore service: %+v", a)
	}
}

// Scenario 4: a slow, lossy bootstrap peer whose replies are truncated
// by a tiny MTU — every datagram from it is malformed. The querier
// must count the garbage, evict the peer, and still resolve via the
// healthy sharers.
func TestChaosSlowLossyTruncatingBootstrap(t *testing.T) {
	leakCheck(t)
	type outcome struct {
		Resolved, Evicted, SawGarbage bool
	}
	scenario := func(t *testing.T) outcome {
		nw := memnet.New(17)
		bootstrap := startMemNode(t, nw, Config{
			Files:        []string{"rare gem.flac"},
			PingInterval: time.Hour,
			Seed:         30,
		})
		querier := startMemNode(t, nw, chaosCfg(8))
		// The bootstrap's reply path truncates everything to 20 bytes
		// (header is 14, so payloads are mangled), is slow, and lossy.
		nw.SetLink(bootstrap.Addr(), querier.Addr(), memnet.LinkProfile{
			MTU:     20,
			Latency: 25 * time.Millisecond,
			Loss:    0.2,
		})
		querier.AddPeer(bootstrap.Addr(), 1)
		for i := 0; i < 3; i++ {
			files := []string{fmt.Sprintf("filler %d.txt", i)}
			if i == 0 {
				files = append(files, "rare gem.flac")
			}
			s := startMemNode(t, nw, Config{
				Files:        files,
				PingInterval: time.Hour,
				Seed:         uint64(i + 40),
			})
			querier.AddPeer(s.Addr(), 2)
		}

		// desired=2 with one reachable holder forces the walk through
		// every candidate, including the mangling bootstrap.
		hits, qs, err := querier.Query(context.Background(), "rare gem", 2)
		if err != nil {
			t.Fatal(err)
		}
		requireQueryAccounting(t, qs)
		requireNetInvariant(t, nw)
		if nw.Stats().Truncated == 0 {
			t.Fatal("MTU truncation never fired")
		}
		return outcome{
			Resolved:   len(hits) == 1,
			Evicted:    !cacheHolds(querier, bootstrap.Addr().String()),
			SawGarbage: querier.Stats().MalformedDropped >= 1,
		}
	}
	a := scenario(t)
	b := scenario(t)
	if a != b {
		t.Fatalf("same seeds, different outcomes: %+v vs %+v", a, b)
	}
	if !a.Resolved {
		t.Fatal("query did not resolve around the mangling bootstrap")
	}
	if !a.SawGarbage {
		t.Fatal("truncated replies not counted as malformed")
	}
	if !a.Evicted {
		t.Fatal("mangling bootstrap peer not evicted")
	}
}

// TestChaosRetryBeatsSingleShot is the acceptance measurement: on the
// same seeded 30%-loss network, retry-with-backoff must measurably
// beat the single-shot baseline at resolving queries.
func TestChaosRetryBeatsSingleShot(t *testing.T) {
	leakCheck(t)
	const trials = 20
	successes := func(attempts int) int {
		nw := memnet.New(123)
		nw.SetDefaultProfile(memnet.LinkProfile{Loss: 0.3})
		sharer := startMemNode(t, nw, Config{
			Files:        []string{"contested.iso"},
			PingInterval: time.Hour,
			Seed:         2,
		})
		querier := startMemNode(t, nw, Config{
			ProbeTimeout:     30 * time.Millisecond,
			MaxProbeAttempts: attempts,
			RetryBackoff:     5 * time.Millisecond,
			RetryBackoffMax:  20 * time.Millisecond,
			PingInterval:     time.Hour,
			Seed:             9,
		})
		ok := 0
		for i := 0; i < trials; i++ {
			querier.AddPeer(sharer.Addr(), 1) // re-learn after any eviction
			hits, qs, err := querier.Query(context.Background(), "contested", 1)
			if err != nil {
				t.Fatal(err)
			}
			requireQueryAccounting(t, qs)
			if len(hits) > 0 {
				ok++
			}
		}
		requireNetInvariant(t, nw)
		return ok
	}
	single := successes(1)
	retrying := successes(4)
	t.Logf("success under 30%% loss: single-shot %d/%d, retrying %d/%d",
		single, trials, retrying, trials)
	if retrying <= single {
		t.Fatalf("retries did not improve success: single=%d retrying=%d", single, retrying)
	}
	if retrying < trials*3/4 {
		t.Fatalf("retrying success %d/%d below 75%%", retrying, trials)
	}
	if single > retrying-3 {
		t.Fatalf("improvement not measurable: single=%d retrying=%d", single, retrying)
	}
}

// TestChaosLargeNetworkSurvives boots a 30-node network under mixed
// chaos (loss, jitter, duplication) with live gossip and asserts the
// network still gossips addresses and resolves queries, with full
// packet accounting and no goroutine leaks.
func TestChaosLargeNetworkSurvives(t *testing.T) {
	leakCheck(t)
	nw := memnet.New(1234)
	nw.SetDefaultProfile(memnet.LinkProfile{
		Loss:    0.15,
		Latency: time.Millisecond,
		Jitter:  dist.Uniform{Lo: 0, Hi: 0.003},
		DupProb: 0.1,
	})
	const peers = 30
	nodes := make([]*Node, peers)
	for i := range nodes {
		cfg := chaosCfg(uint64(i + 1))
		cfg.Files = []string{"common carol.mp3", fmt.Sprintf("unique %02d.txt", i)}
		cfg.PingInterval = 30 * time.Millisecond
		cfg.IntroProb = 0.5
		nodes[i] = startMemNode(t, nw, cfg)
	}
	for i := 1; i < peers; i++ {
		nodes[i].AddPeer(nodes[0].Addr(), 2)
		nodes[0].AddPeer(nodes[i].Addr(), 2)
	}

	// Gossip must spread addresses beyond the bootstrap despite the
	// chaos profile.
	deadline := time.Now().Add(5 * time.Second)
	for nodes[1].CacheLen() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("gossip did not spread under chaos: node1 cache=%d", nodes[1].CacheLen())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Several nodes query for the common file; all must resolve.
	for _, i := range []int{1, 7, 19} {
		hits, qs, err := nodes[i].Query(context.Background(), "common carol", 1)
		if err != nil {
			t.Fatal(err)
		}
		requireQueryAccounting(t, qs)
		if len(hits) == 0 {
			t.Fatalf("node %d query failed under chaos: %+v", i, qs)
		}
	}
	// Quiesce the gossip before checking accounting (Close is
	// idempotent; cleanup closes again harmlessly).
	for _, n := range nodes {
		n.Close()
	}
	requireNetInvariant(t, nw)
}
