// Package atomicfield implements the guess-lint check that a struct
// field touched through sync/atomic anywhere in the program is accessed
// atomically everywhere. Mixing atomic and plain access to the same
// word is a latent data race: the plain access is invisible to the
// atomic one, the race detector only catches it on the schedules tests
// happen to take, and on weaker memory models a torn or stale read is a
// real outcome. The clean states are "all atomic" (or an atomic.Int64-
// style typed field, which makes plain access impossible) and "all
// plain under a lock" — this analyzer pins code to one or the other.
//
// The atomic-access inventory comes from the interprocedural Program
// (every `&x.f` argument to a sync/atomic function, across all loaded
// packages), so a field atomically updated in node/ and plainly read in
// node/cluster is still caught in standalone mode. Under `go vet
// -vettool` the inventory shrinks to the package being vetted.
package atomicfield

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Suppress is the //lint: directive that silences a finding.
const Suppress = "atomicfield-ok"

// Analyzer flags plain accesses to struct fields that are elsewhere
// accessed through sync/atomic.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "flag plain reads/writes of struct fields that are accessed " +
		"with sync/atomic anywhere else (mixed access is a data race)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsConcurrent(pass.Path) {
		return nil
	}
	fields := pass.Prog.AtomicFields()
	if len(fields) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		checkFile(pass, file, fields)
	}
	return nil
}

func checkFile(pass *analysis.Pass, file *ast.File, fields map[string]token.Position) {
	// The atomic call sites themselves pass &x.f — collect those
	// selectors first so they are not flagged as plain accesses.
	atomicArgs := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeOf(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
				if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
					atomicArgs[sel] = true
				}
			}
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || atomicArgs[sel] {
			return true
		}
		key, ok := analysis.FieldKey(pass.TypesInfo, sel)
		if !ok {
			return true
		}
		site, isAtomic := fields[key]
		if !isAtomic {
			return true
		}
		if pass.Suppressed(sel.Pos(), Suppress) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"field %s is accessed with sync/atomic (at %s) but read/written plainly here; mixed access races — use the atomic API everywhere or //lint:%s with a reason",
			sel.Sel.Name, site, Suppress)
		return true
	})
}
