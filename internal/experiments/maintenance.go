package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

func init() {
	register("table3", "Table 3: live link-cache entries vs cache size",
		table3Specs, table3Render)
	register("fig3", "Figure 3: probes per query vs cache size",
		func(opts Options) []Spec { return cacheSweepSpecs(opts, networkSizesFor(opts.Scale)) },
		fig3Render)
	register("fig4", "Figure 4: unsatisfaction vs cache size",
		func(opts Options) []Spec { return cacheSweepSpecs(opts, networkSizesFor(opts.Scale)) },
		fig4Render)
	register("fig5", "Figure 5: dead vs good probes vs cache size",
		func(opts Options) []Spec { return cacheSweepSpecs(opts, fig5Nets(opts)) },
		fig5Render)
	register("fig6", "Figure 6: overlay connectivity vs ping interval (by cache size)",
		fig6Specs, fig6Render)
	register("fig7", "Figure 7: overlay connectivity vs ping interval (by network size)",
		fig7Specs, fig7Render)
}

// strainParams is the Section 6.1 configuration: extra churn via
// LifespanMultiplier = 0.2.
func strainParams(opts Options) core.Params {
	p := opts.baseParams()
	p.LifespanMultiplier = 0.2
	return p
}

func table3CacheSizes() []int { return []int{10, 20, 50, 100, 200, 500} }

func table3Specs(opts Options) []Spec {
	cacheSizes := table3CacheSizes()
	base := strainParams(opts)
	params := make([]core.Params, len(cacheSizes))
	for i, c := range cacheSizes {
		p := base
		p.CacheSize = c
		params[i] = p
	}
	return []Spec{{Family: FamilyGUESS, Core: params}}
}

func table3Render(_ Options, batches [][]PointResult) (*Result, error) {
	cacheSizes := table3CacheSizes()
	results := coreResultsOf(batches[0])
	t := report.NewTable("Table 3: breakdown of live cache entries",
		"CacheSize", "FractionLive", "AbsoluteLive")
	for i, c := range cacheSizes {
		t.AddRow(c, results[i].AvgLiveFraction, results[i].AvgLiveEntries)
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

// cachePoint locates one cacheSweep point: network size plus index into
// that network's cache-size list.
type cachePoint struct{ n, idx int }

// cacheSweepPlan lays out the Figures 3-5 sweep (cache size x network
// size under churn strain) in its canonical flat order. Both the spec
// builder and the renderers derive the same layout from the options, so
// the flat result batch scatters back unambiguously.
func cacheSweepPlan(opts Options, networkSizes []int) (map[int][]int, []core.Params, []cachePoint) {
	var params []core.Params
	sizes := make(map[int][]int, len(networkSizes))
	var order []cachePoint
	for _, n := range networkSizes {
		cs := cacheSizesFor(n, opts.Scale)
		sizes[n] = cs
		for i := range cs {
			p := strainParams(opts)
			p.NetworkSize = n
			p.CacheSize = cs[i]
			params = append(params, p)
			order = append(order, cachePoint{n, i})
		}
	}
	return sizes, params, order
}

// cacheSweepSpecs builds the shared, memoized Figures 3-5 sweep spec.
// The label keeps the pre-Spec "cacheSweep<sizes>" form so the figures
// sharing a network-size list keep sharing one cached execution.
func cacheSweepSpecs(opts Options, networkSizes []int) []Spec {
	_, params, _ := cacheSweepPlan(opts, networkSizes)
	return []Spec{{
		Family: FamilyGUESS,
		Label:  fmt.Sprintf("cacheSweep%v", networkSizes),
		Core:   params,
	}}
}

// cacheSweepScatter reassembles a flat cacheSweep batch by network
// size.
func cacheSweepScatter(opts Options, networkSizes []int, prs []PointResult) (map[int][]int, map[int][]*core.Results) {
	sizes, _, order := cacheSweepPlan(opts, networkSizes)
	byNet := make(map[int][]*core.Results, len(networkSizes))
	for _, n := range networkSizes {
		byNet[n] = make([]*core.Results, len(sizes[n]))
	}
	for j, k := range order {
		byNet[k.n][k.idx] = prs[j].Core
	}
	return sizes, byNet
}

func fig3Render(opts Options, batches [][]PointResult) (*Result, error) {
	nets := networkSizesFor(opts.Scale)
	sizes, byNet := cacheSweepScatter(opts, nets, batches[0])
	t := report.NewTable("Figure 3: probes per query vs cache size",
		"NetworkSize", "CacheSize", "ProbesPerQuery")
	chart := report.NewChart("Figure 3", "CacheSize", "Probes/Query")
	chart.LogX = true
	for _, n := range nets {
		var xs, ys []float64
		for i, c := range sizes[n] {
			ppq := byNet[n][i].ProbesPerQuery()
			t.AddRow(n, c, ppq)
			xs = append(xs, float64(c))
			ys = append(ys, ppq)
		}
		if err := chart.Add(report.Series{Name: fmt.Sprintf("N=%d", n), X: xs, Y: ys}); err != nil {
			return nil, err
		}
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}

func fig4Render(opts Options, batches [][]PointResult) (*Result, error) {
	nets := networkSizesFor(opts.Scale)
	sizes, byNet := cacheSweepScatter(opts, nets, batches[0])
	t := report.NewTable("Figure 4: unsatisfaction vs cache size",
		"NetworkSize", "CacheSize", "Unsatisfaction")
	chart := report.NewChart("Figure 4", "CacheSize", "Unsatisfied fraction")
	chart.LogX = true
	for _, n := range nets {
		var xs, ys []float64
		for i, c := range sizes[n] {
			u := byNet[n][i].UnsatisfactionWithAborted()
			t.AddRow(n, c, u)
			xs = append(xs, float64(c))
			ys = append(ys, u)
		}
		if err := chart.Add(report.Series{Name: fmt.Sprintf("N=%d", n), X: xs, Y: ys}); err != nil {
			return nil, err
		}
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}

func fig5Nets(opts Options) []int {
	if opts.Scale == Quick {
		return []int{400}
	}
	return []int{1000}
}

func fig5Render(opts Options, batches [][]PointResult) (*Result, error) {
	n := fig5Nets(opts)[0]
	sizes, byNet := cacheSweepScatter(opts, []int{n}, batches[0])
	t := report.NewTable(
		fmt.Sprintf("Figure 5: dead vs good probes per query (NetworkSize=%d)", n),
		"CacheSize", "GoodProbes", "DeadProbes")
	chart := report.NewChart("Figure 5", "CacheSize", "Probes/Query")
	chart.LogX = true
	var xs, good, dead []float64
	for i, c := range sizes[n] {
		r := byNet[n][i]
		t.AddRow(c, r.GoodProbesPerQuery(), r.DeadProbesPerQuery())
		xs = append(xs, float64(c))
		good = append(good, r.GoodProbesPerQuery())
		dead = append(dead, r.DeadProbesPerQuery())
	}
	if err := chart.Add(report.Series{Name: "Good", X: xs, Y: good}); err != nil {
		return nil, err
	}
	if err := chart.Add(report.Series{Name: "Dead", X: xs, Y: dead}); err != nil {
		return nil, err
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}

// pingIntervals is the Figures 6-7 x-axis.
func pingIntervals(scale Scale) []float64 {
	if scale == Full {
		return []float64{15, 60, 120, 240, 480, 600}
	}
	return []float64{15, 60, 240, 600}
}

// connectivityParams configures the Section 6.1 connectivity study:
// pings only, overlay sampling on. The study keeps the section's
// churn strain (LifespanMultiplier=0.2) — without it the overlay never
// fragments at any ping interval the paper plots — and runs long
// enough for link caches to reach their inheritance steady state
// (newborns copy their friend's cache, so occupancy builds over
// generations).
func connectivityParams(opts Options) core.Params {
	p := opts.baseParams()
	p.QueriesEnabled = false
	p.SampleConnectivity = true
	p.SampleInterval = 120
	p.LifespanMultiplier = 0.2
	if opts.Scale == Full {
		p.WarmupTime, p.MeasureTime = 2000, 6000
	} else {
		p.WarmupTime, p.MeasureTime = 1000, 3000
	}
	return p
}

func fig6Axes(opts Options) (cacheSizes []int, intervals []float64, n int) {
	cacheSizes = []int{10, 20, 50, 100, 200, 500}
	n = 1000
	if opts.Scale == Quick {
		cacheSizes = []int{10, 50, 200}
		n = 400
	}
	return cacheSizes, pingIntervals(opts.Scale), n
}

// fig6Specs is deliberately unlabeled: the connectivity sweep is cheap
// and figure-local, and an unmemoized experiment is what the progress
// and executor plumbing tests exercise.
func fig6Specs(opts Options) []Spec {
	cacheSizes, intervals, n := fig6Axes(opts)
	var params []core.Params
	for _, c := range cacheSizes {
		for _, pi := range intervals {
			p := connectivityParams(opts)
			p.NetworkSize = n
			p.CacheSize = c
			p.PingInterval = pi
			params = append(params, p)
		}
	}
	return []Spec{{Family: FamilyGUESS, Core: params}}
}

func fig6Render(opts Options, batches [][]PointResult) (*Result, error) {
	cacheSizes, intervals, n := fig6Axes(opts)
	results := coreResultsOf(batches[0])
	t := report.NewTable(
		fmt.Sprintf("Figure 6: largest connected component vs ping interval (NetworkSize=%d)", n),
		"CacheSize", "PingInterval", "LargestWCC")
	chart := report.NewChart("Figure 6", "PingInterval (s)", "Largest connected component")
	idx := 0
	for _, c := range cacheSizes {
		var xs, ys []float64
		for _, pi := range intervals {
			wcc := results[idx].AvgLargestWCC
			t.AddRow(c, pi, wcc)
			xs = append(xs, pi)
			ys = append(ys, wcc)
			idx++
		}
		if err := chart.Add(report.Series{Name: fmt.Sprintf("cache=%d", c), X: xs, Y: ys}); err != nil {
			return nil, err
		}
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}

func fig7Axes(opts Options) (nets []int, intervals []float64) {
	nets = []int{200, 500, 1000, 2000}
	if opts.Scale == Quick {
		nets = []int{200, 400}
	}
	return nets, pingIntervals(opts.Scale)
}

func fig7Specs(opts Options) []Spec {
	nets, intervals := fig7Axes(opts)
	var params []core.Params
	for _, n := range nets {
		for _, pi := range intervals {
			p := connectivityParams(opts)
			p.NetworkSize = n
			p.CacheSize = 20
			p.PingInterval = pi
			params = append(params, p)
		}
	}
	return []Spec{{Family: FamilyGUESS, Core: params}}
}

func fig7Render(opts Options, batches [][]PointResult) (*Result, error) {
	nets, intervals := fig7Axes(opts)
	results := coreResultsOf(batches[0])
	t := report.NewTable("Figure 7: relative largest connected component vs ping interval (CacheSize=20)",
		"NetworkSize", "PingInterval", "RelativeLargestWCC")
	chart := report.NewChart("Figure 7", "PingInterval (s)", "Relative largest component")
	idx := 0
	for _, n := range nets {
		var xs, ys []float64
		for _, pi := range intervals {
			rel := results[idx].AvgLargestWCC / float64(n)
			t.AddRow(n, pi, rel)
			xs = append(xs, pi)
			ys = append(ys, rel)
			idx++
		}
		if err := chart.Add(report.Series{Name: fmt.Sprintf("N=%d", n), X: xs, Y: ys}); err != nil {
			return nil, err
		}
	}
	return &Result{Tables: []*report.Table{t}, Charts: []*report.Chart{chart}}, nil
}
