// Command guess-topology generates Gnutella-style overlay topologies
// and reports the properties behind the paper's Section 3 comparison:
// degree distribution (power-law overlays have hubs), flood reach vs
// TTL, and the message amplification that makes flooding DoS-prone.
//
// Example:
//
//	guess-topology -nodes 1000 -kind powerlaw -m 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gnutella"
	"repro/internal/report"
	"repro/internal/simrng"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "guess-topology:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("guess-topology", flag.ContinueOnError)
	nodes := fs.Int("nodes", 1000, "overlay size")
	kind := fs.String("kind", "powerlaw", `topology kind: "powerlaw" or "random"`)
	m := fs.Int("m", 3, "attachment edges per node (powerlaw) / half average degree (random)")
	maxTTL := fs.Int("max-ttl", 8, "largest TTL to evaluate")
	seed := fs.Uint64("seed", 1, "random seed")
	floods := fs.Int("floods", 50, "number of sampled flood origins per TTL")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := simrng.New(*seed)
	var (
		topo *gnutella.Topology
		err  error
	)
	switch *kind {
	case "powerlaw":
		topo, err = gnutella.NewPowerLaw(rng, *nodes, *m)
	case "random":
		topo, err = gnutella.NewRandom(rng, *nodes, 2**m)
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}
	if err != nil {
		return err
	}

	// Degree statistics.
	var deg stats.Online
	degrees := make([]float64, topo.NumNodes())
	maxDeg := 0
	for v := 0; v < topo.NumNodes(); v++ {
		d := topo.Degree(v)
		deg.Add(float64(d))
		degrees[v] = float64(d)
		if d > maxDeg {
			maxDeg = d
		}
	}
	p50, err := stats.Quantile(degrees, 0.5)
	if err != nil {
		return err
	}
	p99, err := stats.Quantile(degrees, 0.99)
	if err != nil {
		return err
	}
	fmt.Printf("%s overlay: %d nodes, mean degree %.1f (median %.0f, p99 %.0f, max %d), degree Gini %.2f\n\n",
		*kind, topo.NumNodes(), deg.Mean(), p50, p99, maxDeg, stats.Gini(degrees))

	t := report.NewTable("Flood reach and message amplification vs TTL",
		"TTL", "AvgReached", "AvgMessages", "MsgsPerReached")
	for ttl := 1; ttl <= *maxTTL; ttl++ {
		var reached, messages stats.Online
		for i := 0; i < *floods; i++ {
			origin := rng.Intn(topo.NumNodes())
			fl, err := topo.Flood(origin, ttl)
			if err != nil {
				return err
			}
			reached.Add(float64(len(fl.Reached)))
			messages.Add(float64(fl.Messages))
		}
		ratio := 0.0
		if reached.Mean() > 0 {
			ratio = messages.Mean() / reached.Mean()
		}
		t.AddRow(ttl, reached.Mean(), messages.Mean(), ratio)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nMsgsPerReached > 1 is the duplicate traffic GUESS avoids by unicast probing.")
	return nil
}
