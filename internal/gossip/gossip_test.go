package gossip

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// testParams is a small, fast configuration exercising loss and churn.
func testParams() Params {
	p := DefaultParams()
	p.NetworkSize = 120
	p.AvgDegree = 6
	p.NumQueries = 60
	p.MaxRounds = 8
	p.DeadFraction = 0.15
	p.LossProb = 0.05
	p.Seed = 11
	return p
}

func run(t *testing.T, p Params) *Results {
	t.Helper()
	res, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func marshal(t *testing.T, res *Results) string {
	t.Helper()
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.NetworkSize = 1 },
		func(p *Params) { p.AvgDegree = 1 },
		func(p *Params) { p.AvgDegree = p.NetworkSize },
		func(p *Params) { p.Fanout = 0 },
		func(p *Params) { p.MaxRounds = 0 },
		func(p *Params) { p.RoundInterval = 0 },
		func(p *Params) { p.RoundInterval = -1 },
		func(p *Params) { p.Mode = 0 },
		func(p *Params) { p.Mode = 99 },
		func(p *Params) { p.NumQueries = 0 },
		func(p *Params) { p.NumDesiredResults = 0 },
		func(p *Params) { p.QueryRate = 0 },
		func(p *Params) { p.DeadFraction = -0.1 },
		func(p *Params) { p.DeadFraction = 1 },
		func(p *Params) { p.LossProb = 1 },
		func(p *Params) { p.Content.NumItems = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid params", i)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestModeStringRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModePush, ModePull, ModePushPull} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("flood"); err == nil {
		t.Error("ParseMode accepted unknown mode")
	}
	if s := Mode(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown mode String() = %q", s)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a := run(t, testParams())
	b := run(t, testParams())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results:\n%s\n%s", marshal(t, a), marshal(t, b))
	}
	p := testParams()
	p.Seed++
	c := run(t, p)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical results")
	}
}

func TestInvariantsAcrossModes(t *testing.T) {
	for _, mode := range []Mode{ModePush, ModePull, ModePushPull} {
		t.Run(mode.String(), func(t *testing.T) {
			p := testParams()
			p.Mode = mode
			res := run(t, p)
			checkInvariants(t, p, res)
			if res.Satisfied == 0 {
				t.Error("no query was satisfied; fixture too hostile")
			}
			if res.PeersInformed <= int64(res.Queries) {
				t.Error("rumor never spread beyond origins")
			}
		})
	}
}

// checkInvariants asserts the conservation and budget invariants the
// cross-protocol suite relies on.
func checkInvariants(t *testing.T, p Params, res *Results) {
	t.Helper()
	if res.Queries != p.NumQueries {
		t.Errorf("completed %d queries, want %d", res.Queries, p.NumQueries)
	}
	if res.Satisfied+res.Unsatisfied != res.Queries {
		t.Errorf("satisfied %d + unsatisfied %d != queries %d", res.Satisfied, res.Unsatisfied, res.Queries)
	}
	if res.MessagesSent != res.MessagesDelivered+res.MessagesDropped {
		t.Errorf("conservation violated: sent %d != delivered %d + dropped %d",
			res.MessagesSent, res.MessagesDelivered, res.MessagesDropped)
	}
	if s := res.Satisfaction(); s < 0 || s > 1 {
		t.Errorf("satisfaction %v outside [0,1]", s)
	}
	if res.MaxRoundsUsed > p.MaxRounds {
		t.Errorf("a query used %d rounds, budget %d", res.MaxRoundsUsed, p.MaxRounds)
	}
	var delivered int64
	for v, l := range res.PeerLoads {
		if l < 0 {
			t.Errorf("peer %d has negative load", v)
		}
		delivered += l
	}
	if delivered != res.MessagesDelivered {
		t.Errorf("peer loads sum to %d, delivered %d", delivered, res.MessagesDelivered)
	}
}

func TestPushPullCostsMoreThanPush(t *testing.T) {
	push, pushpull := testParams(), testParams()
	push.Mode, pushpull.Mode = ModePush, ModePushPull
	a, b := run(t, push), run(t, pushpull)
	if b.MessagesPerQuery() <= a.MessagesPerQuery() {
		t.Errorf("push-pull (%v msgs/query) should cost more than push (%v)",
			b.MessagesPerQuery(), a.MessagesPerQuery())
	}
	if b.AvgRounds() > a.AvgRounds() {
		t.Errorf("push-pull (%v rounds) should finish no later than push (%v)",
			b.AvgRounds(), a.AvgRounds())
	}
}

func TestObservabilityDoesNotPerturbRun(t *testing.T) {
	p := testParams()
	bare := run(t, p)

	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e.SetMetrics(obs.NewGossipMetrics(reg))
	var events int
	e.SetObserver(obs.ObserverFunc(func(obs.Event) { events++ }))
	instr, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if got, want := marshal(t, instr), marshal(t, bare); got != want {
		t.Fatalf("attaching metrics+observer changed Results:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if events == 0 {
		t.Fatal("observer saw no events")
	}

	s := reg.Snapshot()
	mirror := []struct {
		metric string
		want   uint64
	}{
		{"guess_gossip_queries_total", uint64(bare.Queries)},
		{"guess_gossip_queries_satisfied_total", uint64(bare.Satisfied)},
		{"guess_gossip_queries_unsatisfied_total", uint64(bare.Unsatisfied)},
		{"guess_gossip_messages_total", uint64(bare.MessagesSent)},
		{"guess_gossip_messages_delivered_total", uint64(bare.MessagesDelivered)},
		{"guess_gossip_messages_dropped_total", uint64(bare.MessagesDropped)},
		{"guess_gossip_rounds_total", uint64(bare.RoundsTotal)},
	}
	for _, m := range mirror {
		if got := s.Counters[m.metric]; got != m.want {
			t.Errorf("%s = %d, Results say %d", m.metric, got, m.want)
		}
	}
	if h := s.Histograms["guess_gossip_query_rounds"]; h.Count != uint64(bare.Queries) {
		t.Errorf("query-rounds histogram count = %d, want %d", h.Count, bare.Queries)
	}
	if h := s.Histograms["guess_gossip_query_messages"]; h.Count != uint64(bare.Queries) {
		t.Errorf("query-messages histogram count = %d, want %d", h.Count, bare.Queries)
	}
}

func TestRunContextCancellation(t *testing.T) {
	full := run(t, testParams())
	if full.Interrupted {
		t.Fatal("uncancelled run reported Interrupted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e, err := New(testParams())
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	e.SetObserver(obs.ObserverFunc(func(obs.Event) {
		seen++
		if seen == 200 {
			cancel()
		}
	}))
	res, err := e.Run(ctx)
	if err != nil {
		t.Fatalf("cancelled run should return partial results and nil error, got %v", err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled run did not set Interrupted")
	}
	if res.Queries >= full.Queries {
		t.Fatalf("partial run counted %d queries, want < %d", res.Queries, full.Queries)
	}

	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	e2, err := New(testParams())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Run(done)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Interrupted {
		t.Fatal("pre-cancelled run did not set Interrupted")
	}
}

func TestRunTwiceFails(t *testing.T) {
	e, err := New(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err == nil {
		t.Fatal("second Run did not fail")
	}
}

func TestZeroQueryAccessors(t *testing.T) {
	var res Results
	if res.Satisfaction() != 0 || res.MessagesPerQuery() != 0 || res.AvgRounds() != 0 || res.AvgReach() != 0 {
		t.Fatal("zero-query accessors must return 0")
	}
}
