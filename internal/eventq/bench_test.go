package eventq

import "testing"

// BenchmarkPushPopSteady measures the steady-state cost of the
// simulator's event scheduling: a warm queue holding churn/ping/probe
// events while pushes and pops interleave. After warmup the heap's
// backing array is at capacity, so the loop should be allocation-free.
func BenchmarkPushPopSteady(b *testing.B) {
	var q Queue[int]
	const depth = 1 << 12
	for i := 0; i < depth; i++ {
		q.Push(float64(i%977), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, v, ok := q.Pop()
		if !ok {
			b.Fatal("queue drained")
		}
		q.Push(t+float64(v%31)+1, v)
	}
}

// BenchmarkPushDrain measures bulk scheduling followed by a full drain
// (the shape of engine startup and shutdown).
func BenchmarkPushDrain(b *testing.B) {
	var q Queue[int]
	const batch = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			q.Push(float64((j*2654435761)%4093), j)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}
