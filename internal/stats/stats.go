// Package stats provides the small statistical toolkit used by the
// experiment harness and result analysis: online moments, quantiles,
// histograms, and inequality measures for load-fairness analysis
// (Section 6.3 of the paper ranks per-peer loads; the Gini coefficient
// and top-share summarize the same distributions as single numbers).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count, mean and variance in one pass using
// Welford's algorithm. The zero value is ready to use.
type Online struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean (0 with no observations).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the unbiased sample variance (0 with < 2
// observations).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Merge combines another accumulator into o (parallel aggregation).
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n1, n2 := float64(o.n), float64(other.n)
	delta := other.mean - o.mean
	total := n1 + n2
	o.mean += delta * n2 / total
	o.m2 += other.m2 + delta*delta*n1*n2/total
	o.n += other.n
}

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation between order statistics. It returns an error on an
// empty slice or out-of-range q. values need not be sorted.
func Quantile(values []float64, q float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Gini returns the Gini coefficient of a non-negative load
// distribution: 0 for perfectly even, approaching 1 when one peer
// carries everything. An all-zero or empty distribution yields 0.
func Gini(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, v := range sorted {
		cum += v * float64(i+1)
		total += v
	}
	if total == 0 {
		return 0
	}
	nf := float64(n)
	return (2*cum - (nf+1)*total) / (nf * total)
}

// TopShare returns the fraction of the total carried by the largest
// `fraction` of values (e.g. TopShare(loads, 0.01) = share of the
// busiest 1%). It returns 0 for empty or all-zero input.
func TopShare(values []float64, fraction float64) float64 {
	n := len(values)
	if n == 0 || fraction <= 0 {
		return 0
	}
	if fraction > 1 {
		fraction = 1
	}
	sorted := append([]float64(nil), values...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	k := int(math.Ceil(fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	var top, total float64
	for i, v := range sorted {
		if i < k {
			top += v
		}
		total += v
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// Histogram counts observations into fixed-width bins over [Lo, Hi);
// out-of-range observations go to the under/overflow counters.
type Histogram struct {
	lo, hi    float64
	bins      []int64
	under     int64
	over      int64
	observers int64
}

// NewHistogram builds a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram bounds [%v, %v) invalid", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int64, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.observers++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
		if i == len(h.bins) { // guard against float rounding at hi
			i--
		}
		h.bins[i]++
	}
}

// Count returns the bin counts (a copy).
func (h *Histogram) Count() []int64 { return append([]int64(nil), h.bins...) }

// Under and Over return the out-of-range counts.
func (h *Histogram) Under() int64 { return h.under }

// Over returns the count of observations >= the upper bound.
func (h *Histogram) Over() int64 { return h.over }

// N returns the total observations.
func (h *Histogram) N() int64 { return h.observers }

// BinBounds returns the [lo, hi) interval of bin i.
func (h *Histogram) BinBounds(i int) (lo, hi float64) {
	width := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + float64(i)*width, h.lo + float64(i+1)*width
}
