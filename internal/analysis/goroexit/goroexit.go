// Package goroexit implements the guess-lint check that every spawned
// goroutine has a bounded exit path. A live node under churn restarts
// subsystems constantly; a goroutine whose only loop is `for { ... }`
// with no channel receive (ctx.Done(), a closed shutdown channel, a
// ticker select) outlives its owner and leaks. Likewise a goroutine
// that blocks on net.Conn reads needs either a read deadline or a
// context.AfterFunc closer — otherwise Close() from the supervisor
// cannot unblock it on every platform and the shutdown path hangs.
//
// The verdict uses the interprocedural summaries: `go n.serveLoop()` is
// judged by serveLoop's facts (receives, deadlines, unbounded loops,
// conn reads), not just the literal at the go statement, so extracting
// the loop body into a method does not evade the check. Goroutines that
// run straight-line bounded work (worker-pool bodies joined by a
// WaitGroup) have no unbounded loop and pass untouched.
package goroexit

import (
	"go/ast"

	"repro/internal/analysis"
)

// Suppress is the //lint: directive that silences a finding.
const Suppress = "goroexit-ok"

// Analyzer flags goroutines with no bounded exit path and blocking conn
// reads with no deadline.
var Analyzer = &analysis.Analyzer{
	Name: "goroexit",
	Doc: "flag spawned goroutines whose loops have no bounded exit " +
		"path and whose conn reads have no deadline or closer",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsConcurrent(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkGo(pass, g)
			}
			return true
		})
	}
	return nil
}

func checkGo(pass *analysis.Pass, g *ast.GoStmt) {
	var node *analysis.FuncNode
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		node = pass.Prog.LitOf(fun)
	default:
		if callee := analysis.CalleeOf(pass.TypesInfo, g.Call); callee != nil {
			node = pass.Prog.FuncOf(callee)
		}
	}
	if node == nil {
		return // dynamic call or body outside the loaded program
	}
	f := node.Facts

	// A bounded exit path: the goroutine receives from a channel
	// (ctx.Done(), shutdown channel, ticker), registers a
	// context.AfterFunc closer, or its blocking reads carry deadlines
	// (the read itself then fails out of the loop).
	exitOK := f.HasReceive || f.HasAfterFunc || (f.ReadsConn && f.SetsDeadline)

	if f.HasUnboundedLoop && !exitOK {
		if !pass.Suppressed(g.Pos(), Suppress) {
			pass.Reportf(g.Pos(),
				"goroutine %s loops forever with no bounded exit path (no channel receive, context.AfterFunc, or deadline-bearing read); add one or //lint:%s with a reason",
				node.Name(), Suppress)
		}
	}
	if f.ReadsConn && !f.SetsDeadline && !f.HasAfterFunc {
		if !pass.Suppressed(g.Pos(), Suppress) {
			pass.Reportf(g.Pos(),
				"goroutine %s blocks on conn reads with no deadline or context.AfterFunc closer; shutdown cannot unblock it — set a read deadline or //lint:%s with a reason",
				node.Name(), Suppress)
		}
	}
}
