// Package obsname implements the guess-lint analyzer that keeps the
// obs metric namespace literal, well-formed, unique, and documented.
//
// The observability layer promises byte-stable Prometheus exposition
// and a README metric table operators can trust. That promise breaks
// if instrument names are computed at runtime (un-greppable, possibly
// unstable), stray outside the guess_* namespace, are registered from
// two places with different meanings, or silently never make the docs.
// For every obs.Registry Counter/Gauge/Histogram registration outside
// test files, this analyzer checks:
//
//   - the metric name is a compile-time string constant;
//   - the name matches ^guess_(node_)?[a-z0-9_]+(_total|_seconds|_bytes)?$
//     (lower-case guess_* namespace with conventional unit suffixes);
//   - the name is registered at exactly one call site across the run
//     (the registry is idempotent at runtime, but two sites drift);
//   - the name appears in the README metric tables, either verbatim or
//     as a `suffix` under its family row (e.g. `queries_total` under
//     the `guess_sim_*` row).
//
// Escape hatch: //lint:obsname-ok <reason>.
package obsname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Suppress is the //lint: directive that silences this analyzer.
const Suppress = "obsname-ok"

const obsPath = "repro/internal/obs"

// namePattern is the repo's metric-name grammar (see the issue and the
// README "Observability" section).
var namePattern = regexp.MustCompile(`^guess_(node_)?[a-z0-9_]+(_total|_seconds|_bytes)?$`)

// registrars are the obs.Registry methods that register instruments.
var registrars = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// New returns a fresh obsname analyzer. The README check is controlled
// by readme:
//
//	""     — auto-discover README.md next to go.mod, walking up from
//	         each analyzed package's directory (the multichecker mode);
//	"-"    — disable the README check (for fixtures without docs);
//	path   — use exactly this file.
//
// Each call returns an independent analyzer: the duplicate-name check
// accumulates state across packages, so separate runs (tests, repeated
// invocations) must not share instances.
func New(readme string) *analysis.Analyzer {
	c := &checker{
		readme:  readme,
		readmes: make(map[string]string),
		seen:    make(map[string]token.Position),
	}
	return &analysis.Analyzer{
		Name: "obsname",
		Doc:  "require literal, well-formed, unique, README-documented obs metric names",
		Run:  c.run,
	}
}

type checker struct {
	readme  string
	readmes map[string]string         // cache: directory -> README contents ("" = none found)
	seen    map[string]token.Position // metric name -> first registration site
}

func (c *checker) run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue // tests register throwaway names by design
		}
		var readmeContent string
		if c.readme != "-" {
			readmeContent = c.readmeFor(filepath.Dir(filename))
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := c.registration(pass, call); ok {
				c.check(pass, call, name, readmeContent)
			}
			return true
		})
	}
	return nil
}

// registration reports whether call registers an obs instrument, and
// if so returns its name argument's constant value ("" when the name
// is not a compile-time constant).
func (c *checker) registration(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registrars[sel.Sel.Name] {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || len(call.Args) < 1 {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", true // a registration, but not a constant name
	}
	return constant.StringVal(tv.Value), true
}

func (c *checker) check(pass *analysis.Pass, call *ast.CallExpr, name, readme string) {
	pos := call.Args[0].Pos()
	if name == "" {
		if !pass.Suppressed(pos, Suppress) {
			pass.Reportf(pos,
				"metric name must be a compile-time string constant so the namespace is greppable and stable; annotate //lint:%s <reason> if a computed name is unavoidable",
				Suppress)
		}
		return
	}
	if !namePattern.MatchString(name) {
		if !pass.Suppressed(pos, Suppress) {
			pass.Reportf(pos,
				"metric name %q does not match %s; annotate //lint:%s <reason> for a deliberate exception",
				name, namePattern, Suppress)
		}
		return
	}
	if first, dup := c.seen[name]; dup {
		if !pass.Suppressed(pos, Suppress) {
			pass.Reportf(pos,
				"metric %q is already registered at %s; a name must have exactly one registration site, or annotate //lint:%s <reason>",
				name, first, Suppress)
		}
		return
	}
	c.seen[name] = pass.Fset.Position(pos)
	if readme != "" && !documented(readme, name) && !pass.Suppressed(pos, Suppress) {
		pass.Reportf(pos,
			"metric %q is not listed in the README metric tables; document it (or annotate //lint:%s <reason>)",
			name, Suppress)
	}
}

// documented reports whether the README lists the metric, either as
// the backticked full name or as a backticked `suffix` in a family row
// introduced by `guess_<family>_*`.
func documented(readme, name string) bool {
	if strings.Contains(readme, "`"+name+"`") {
		return true
	}
	for i := len("guess_"); i < len(name); i++ {
		if name[i] != '_' {
			continue
		}
		family, suffix := name[:i], name[i+1:]
		if strings.Contains(readme, "`"+family+"_*`") && strings.Contains(readme, "`"+suffix+"`") {
			return true
		}
	}
	return false
}

// readmeFor finds the README.md beside the nearest enclosing go.mod,
// caching per starting directory. Missing files simply disable the
// documentation check (fixture trees have no README).
func (c *checker) readmeFor(dir string) string {
	if cached, ok := c.readmes[dir]; ok {
		return cached
	}
	content := ""
	if c.readme != "" {
		if b, err := os.ReadFile(c.readme); err == nil {
			content = string(b)
		}
	} else {
		for d := dir; ; {
			if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
				if b, err := os.ReadFile(filepath.Join(d, "README.md")); err == nil {
					content = string(b)
				}
				break
			}
			parent := filepath.Dir(d)
			if parent == d {
				break
			}
			d = parent
		}
	}
	c.readmes[dir] = content
	return content
}
