package cluster

// The harness: launch and supervise K node instances.
//
// Each slot runs one member (a node plus, usually, its sync client),
// built by a caller-supplied Start callback — which is what makes the
// harness transport-agnostic: the callback binds the node over memnet,
// real UDP, or anything else. The harness staggers the initial
// bootstrap (a cold cluster that starts all nodes in the same instant
// thundering-herds its seed peers), restarts a crashed member with
// exponential backoff, and reports every transition as a lifecycle
// event.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Member is one supervised instance: the resources a slot holds while
// running. Stop must be idempotent and release everything (node, sync
// client, sockets).
type Member interface {
	// Done is closed when the member has exited — crashed, killed, or
	// stopped — signaling the harness to supervise.
	Done() <-chan struct{}
	// Stop shuts the member down (closing its node and sync client);
	// Done must close as a consequence.
	Stop()
}

// NodeMember is the common Member: a node with an optional sync
// client. Fail (or Harness.Kill) simulates a crash.
type NodeMember struct {
	Node   interface{ Close() error }
	Client *SyncClient

	once sync.Once
	done chan struct{}
}

// NewNodeMember wraps a node (anything with Close, usually a
// *node.Node) and an optional sync client as a supervisable member.
func NewNodeMember(n interface{ Close() error }, c *SyncClient) *NodeMember {
	return &NodeMember{Node: n, Client: c, done: make(chan struct{})}
}

// Done implements Member.
func (m *NodeMember) Done() <-chan struct{} { return m.done }

// Stop implements Member: close the sync client first (so it stops
// driving the node), then the node.
func (m *NodeMember) Stop() {
	m.once.Do(func() {
		if m.Client != nil {
			m.Client.Close()
		}
		if m.Node != nil {
			m.Node.Close()
		}
		close(m.done)
	})
}

// Fail marks the member crashed without a clean shutdown path (the
// harness will restart its slot).
func (m *NodeMember) Fail() { m.Stop() }

// EventType classifies lifecycle events.
type EventType int

const (
	// EventStarted: a slot's member came up.
	EventStarted EventType = iota
	// EventExited: a slot's member exited (crash or kill).
	EventExited
	// EventRestarting: the harness is waiting out the restart backoff
	// before relaunching a slot.
	EventRestarting
	// EventStartFailed: the Start callback returned an error; the
	// slot retries after backoff.
	EventStartFailed
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventStarted:
		return "started"
	case EventExited:
		return "exited"
	case EventRestarting:
		return "restarting"
	case EventStartFailed:
		return "start-failed"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// Event is one lifecycle transition.
type Event struct {
	Type EventType
	// Slot is the member's index in [0, Slots).
	Slot int
	// Restarts counts how many times this slot has restarted so far.
	Restarts int
	// Backoff is the pause before the next start attempt
	// (EventRestarting and EventStartFailed).
	Backoff time.Duration
	// Err is the start error (EventStartFailed).
	Err error
}

// HarnessConfig configures a harness. Zero fields take defaults.
type HarnessConfig struct {
	// Slots is the number of supervised members (K). Required.
	Slots int
	// Start builds slot i's member: bind the node, start its sync
	// client, return the bundle. Called again after each crash.
	// Required.
	Start func(slot int) (Member, error)
	// Stagger is the delay between consecutive initial bootstraps.
	// Default 0 (start everyone at once).
	Stagger time.Duration
	// RestartBackoff is the pause before restarting a crashed member,
	// doubling per consecutive crash up to RestartBackoffMax.
	// Defaults 100ms / 5s. A member that stays up for
	// RestartBackoffMax resets its slot's backoff.
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	// Events, when non-nil, receives every lifecycle event
	// synchronously (keep it fast; it runs on the supervisor
	// goroutine).
	Events func(Event)
	// Logf, when non-nil, receives debug logging.
	Logf func(format string, args ...any)
}

func (c HarnessConfig) withDefaults() HarnessConfig {
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 100 * time.Millisecond
	}
	if c.RestartBackoffMax < c.RestartBackoff {
		c.RestartBackoffMax = 5 * time.Second
		if c.RestartBackoffMax < c.RestartBackoff {
			c.RestartBackoffMax = c.RestartBackoff
		}
	}
	return c
}

// Harness supervises K members. Create with StartHarness; always
// Stop.
type Harness struct {
	cfg HarnessConfig

	mu      sync.Mutex
	members []Member // current member per slot (nil while down)

	closing   chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// StartHarness launches the cluster: slot 0 immediately, each further
// slot Stagger later, every slot supervised until Stop.
func StartHarness(cfg HarnessConfig) (*Harness, error) {
	cfg = cfg.withDefaults()
	if cfg.Slots < 1 {
		return nil, errors.New("cluster: harness needs at least one slot")
	}
	if cfg.Start == nil {
		return nil, errors.New("cluster: harness needs a Start callback")
	}
	h := &Harness{
		cfg:     cfg,
		members: make([]Member, cfg.Slots),
		closing: make(chan struct{}),
	}
	for i := 0; i < cfg.Slots; i++ {
		h.wg.Add(1)
		go h.supervise(i, time.Duration(i)*cfg.Stagger)
	}
	return h, nil
}

// Member returns slot i's current member (nil while the slot is down
// or restarting).
func (h *Harness) Member(slot int) Member {
	h.mu.Lock()
	defer h.mu.Unlock()
	if slot < 0 || slot >= len(h.members) {
		return nil
	}
	return h.members[slot]
}

// Kill crashes slot i's member (chaos hook); the supervisor restarts
// it with backoff. Reports whether a member was running.
func (h *Harness) Kill(slot int) bool {
	m := h.Member(slot)
	if m == nil {
		return false
	}
	m.Stop()
	return true
}

// Stop shuts the whole cluster down and waits for every supervisor to
// exit. Idempotent.
func (h *Harness) Stop() {
	h.closeOnce.Do(func() {
		close(h.closing)
	})
	h.mu.Lock()
	for _, m := range h.members {
		if m != nil {
			m.Stop()
		}
	}
	h.mu.Unlock()
	h.wg.Wait()
}

func (h *Harness) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

func (h *Harness) event(e Event) {
	if h.cfg.Events != nil {
		h.cfg.Events(e)
	}
}

// sleep waits d or until the harness closes; reports false on close.
func (h *Harness) sleep(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-h.closing:
			return false
		default:
			return true
		}
	}
	select {
	case <-h.closing:
		return false
	case <-time.After(d):
		return true
	}
}

// supervise runs one slot: start (after the stagger delay), wait for
// exit, back off, restart — until the harness stops.
func (h *Harness) supervise(slot int, delay time.Duration) {
	defer h.wg.Done()
	if !h.sleep(delay) {
		return
	}
	backoff := h.cfg.RestartBackoff
	restarts := 0
	for {
		m, err := h.cfg.Start(slot)
		if err != nil {
			h.logf("cluster harness: slot %d start: %v", slot, err)
			h.event(Event{Type: EventStartFailed, Slot: slot, Restarts: restarts, Backoff: backoff, Err: err})
			if !h.sleep(backoff) {
				return
			}
			backoff = nextBackoff(backoff, h.cfg.RestartBackoffMax)
			continue
		}
		h.mu.Lock()
		h.members[slot] = m
		h.mu.Unlock()
		h.event(Event{Type: EventStarted, Slot: slot, Restarts: restarts})
		up := time.Now()
		select {
		case <-m.Done():
		case <-h.closing:
			m.Stop()
			return
		}
		h.mu.Lock()
		h.members[slot] = nil
		h.mu.Unlock()
		h.event(Event{Type: EventExited, Slot: slot, Restarts: restarts})
		select {
		case <-h.closing:
			return
		default:
		}
		// A member that ran long enough was healthy: its crash starts
		// a fresh backoff ladder instead of escalating an old one.
		if time.Since(up) >= h.cfg.RestartBackoffMax {
			backoff = h.cfg.RestartBackoff
		}
		restarts++
		h.event(Event{Type: EventRestarting, Slot: slot, Restarts: restarts, Backoff: backoff})
		if !h.sleep(backoff) {
			return
		}
		backoff = nextBackoff(backoff, h.cfg.RestartBackoffMax)
	}
}

// nextBackoff doubles the backoff up to max.
func nextBackoff(d, max time.Duration) time.Duration {
	d *= 2
	if d > max {
		d = max
	}
	return d
}
