// Package conc poses as repro/node to exercise the goroexit analyzer:
// every spawned goroutine needs a bounded exit path, and blocking conn
// reads need a deadline or an AfterFunc closer.
package conc

import (
	"context"
	"net"
	"time"
)

type worker struct {
	stop chan struct{}
}

func step() {}

// spin loops forever with no receive, return, or break.
func spin() {
	for {
		step()
	}
}

// loop is spin as a method: judged by its summary, not the go site.
func (w *worker) loop() {
	for {
		step()
	}
}

// Spawn exercises the unbounded-loop rule.
func Spawn(w *worker) {
	go func() { // want `loops forever with no bounded exit path`
		for {
			step()
		}
	}()

	// A select on the shutdown channel is a bounded exit path.
	go func() {
		for {
			select {
			case <-w.stop:
				return
			default:
			}
			step()
		}
	}()

	// Extracting the loop into a method does not evade the check.
	go w.loop() // want `loops forever with no bounded exit path`

	//lint:goroexit-ok this worker is torn down with the whole process
	go spin()
}

// Pool spawns straight-line bounded goroutines: no loop, no finding.
func Pool(items []int, done func()) {
	for range items {
		go func() {
			step()
			done()
		}()
	}
}

// readForever blocks on conn reads with no deadline.
func readForever(c net.Conn) {
	buf := make([]byte, 64)
	for {
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}

// readWithDeadline bounds every read, so shutdown cannot hang on it.
func readWithDeadline(c net.Conn) {
	buf := make([]byte, 64)
	for {
		c.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}

// Serve exercises the conn-read rule.
func Serve(ctx context.Context, c net.Conn) {
	go readForever(c) // want `blocks on conn reads with no deadline`

	go readWithDeadline(c)

	// An AfterFunc closer unblocks the read when ctx ends.
	go func() {
		stop := context.AfterFunc(ctx, func() { c.Close() })
		defer stop()
		buf := make([]byte, 64)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}()
}

// Dynamic spawns through a function value: outside the loaded program,
// so no judgment is possible and none is made.
func Dynamic(fn func()) {
	go fn()
}
