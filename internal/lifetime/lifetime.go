// Package lifetime models peer session durations ("lifespans").
//
// The paper draws peer lifetimes from the sample of Gnutella session
// durations measured by Saroiu, Gummadi and Gribble (MMCN 2002). The
// raw trace is not publicly available, so this package substitutes an
// empirical quantile table reproducing the published summary shape:
// many very short sessions, a median session of about one hour, and a
// heavy tail of long-lived peers. This shape — not the exact values —
// is what stresses cache maintenance, which is the behaviour the paper
// studies. The paper's LifespanMultiplier parameter scales all
// lifetimes uniformly and is supported via New.
package lifetime

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/simrng"
)

// saroiuKnots approximates the CDF of Gnutella session durations (in
// seconds) reported by Saroiu et al.: median ~60 minutes, a quarter of
// sessions shorter than ~10 minutes, and a long tail out to days.
var saroiuKnots = []dist.Point{
	{Q: 0.00, V: 30},     // shortest observed sessions: ~half a minute
	{Q: 0.10, V: 120},    // 10th percentile: two minutes
	{Q: 0.25, V: 600},    // first quartile: ten minutes
	{Q: 0.50, V: 3600},   // median: one hour
	{Q: 0.75, V: 10800},  // third quartile: three hours
	{Q: 0.90, V: 28800},  // 90th percentile: eight hours
	{Q: 0.97, V: 86400},  // 97th percentile: one day
	{Q: 1.00, V: 259200}, // longest sessions: three days
}

// Model samples peer lifetimes in seconds.
type Model struct {
	sampler dist.Sampler
}

// New returns the default measured-trace model with every lifetime
// multiplied by multiplier (the paper's LifespanMultiplier; 1 leaves
// the distribution unscaled). multiplier must be positive.
func New(multiplier float64) (*Model, error) {
	if multiplier <= 0 {
		return nil, fmt.Errorf("lifetime: multiplier must be positive, got %v", multiplier)
	}
	base := dist.MustEmpirical(saroiuKnots)
	return &Model{sampler: dist.Scaled{S: base, Factor: multiplier}}, nil
}

// NewFromSampler wraps an arbitrary lifetime distribution, for tests
// and what-if studies (e.g. exponential churn).
func NewFromSampler(s dist.Sampler) *Model {
	return &Model{sampler: s}
}

// Sample draws one peer lifetime in seconds. The result is always
// positive.
func (m *Model) Sample(r *simrng.RNG) float64 {
	v := m.sampler.Sample(r)
	if v <= 0 {
		// Defensive floor: a zero lifetime would make a peer die at its
		// own birth instant and can wedge churn bookkeeping.
		return 1e-3
	}
	return v
}

// Mean returns the theoretical mean lifetime in seconds.
func (m *Model) Mean() float64 { return m.sampler.Mean() }
