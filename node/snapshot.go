// Link-cache snapshots: crash recovery for the live node.
//
// A node with Config.SnapshotPath set periodically serializes its link
// cache to disk (atomically: temp file + fsync + rename, with a CRC32
// trailer), and on startup restores the file's entries as *suspects*:
// they are invisible to every policy until a verification ping proves
// each one alive, at which point the entry is installed in the link
// cache. A crashed-and-restarted node therefore reaches a warm cache
// without a single bootstrap contact, while a stale or corrupt
// snapshot degrades safely to a cold start.
//
// File format (all integers big-endian), see node/PROTOCOL.md:
//
//	magic "GSNP" (4) | version u8 | count u16 | writtenUnixNano i64
//	entries[count] | crc32-IEEE u32 over all preceding bytes
//
// entry: addrSize u8 (4|16) | addr | port u16 | numFiles u32 |
// numRes u16 | direct u8

package node

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/wire"
)

// snapshot format constants.
const (
	snapMagic      = "GSNP"
	snapVersion    = 1
	snapHeaderSize = 4 + 1 + 2 + 8
	// snapMaxEntries bounds a decodable snapshot; far above any
	// plausible CacheSize, low enough that a hostile length prefix
	// cannot force a large allocation.
	snapMaxEntries = 1 << 14
)

// errSnapshot reports an unusable snapshot file.
var errSnapshot = errors.New("node: bad snapshot")

// snapEntry is one serialized link-cache pointer.
type snapEntry struct {
	Addr     netip.AddrPort
	NumFiles uint32
	NumRes   uint16
	Direct   bool
}

// encodeSnapshot serializes entries with the checksum trailer.
func encodeSnapshot(writtenAt time.Time, entries []snapEntry) ([]byte, error) {
	if len(entries) > snapMaxEntries {
		return nil, fmt.Errorf("%w: %d entries exceed %d", errSnapshot, len(entries), snapMaxEntries)
	}
	buf := make([]byte, 0, snapHeaderSize+len(entries)*26+4)
	buf = append(buf, snapMagic...)
	buf = append(buf, snapVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(entries)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(writtenAt.UnixNano()))
	for _, e := range entries {
		if !e.Addr.IsValid() {
			return nil, fmt.Errorf("%w: invalid entry address", errSnapshot)
		}
		addr := e.Addr.Addr()
		if addr.Is4() {
			b := addr.As4()
			buf = append(buf, 4)
			buf = append(buf, b[:]...)
		} else {
			b := addr.As16()
			buf = append(buf, 16)
			buf = append(buf, b[:]...)
		}
		buf = binary.BigEndian.AppendUint16(buf, e.Addr.Port())
		buf = binary.BigEndian.AppendUint32(buf, e.NumFiles)
		buf = binary.BigEndian.AppendUint16(buf, e.NumRes)
		if e.Direct {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// decodeSnapshot parses and checksums a snapshot. Every malformation —
// truncation, bit flips, bad magic, impossible counts — returns
// errSnapshot (wrapped with detail); it never panics, which
// FuzzSnapshotDecode enforces.
func decodeSnapshot(b []byte) (writtenAt time.Time, entries []snapEntry, err error) {
	if len(b) < snapHeaderSize+4 {
		return time.Time{}, nil, fmt.Errorf("%w: %d bytes < header", errSnapshot, len(b))
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return time.Time{}, nil, fmt.Errorf("%w: checksum mismatch", errSnapshot)
	}
	if string(body[:4]) != snapMagic {
		return time.Time{}, nil, fmt.Errorf("%w: bad magic", errSnapshot)
	}
	if body[4] != snapVersion {
		return time.Time{}, nil, fmt.Errorf("%w: unsupported version %d", errSnapshot, body[4])
	}
	count := int(binary.BigEndian.Uint16(body[5:7]))
	if count > snapMaxEntries {
		return time.Time{}, nil, fmt.Errorf("%w: %d entries exceed %d", errSnapshot, count, snapMaxEntries)
	}
	writtenAt = time.Unix(0, int64(binary.BigEndian.Uint64(body[7:15])))
	rest := body[snapHeaderSize:]
	entries = make([]snapEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return time.Time{}, nil, fmt.Errorf("%w: truncated entry %d", errSnapshot, i)
		}
		size := int(rest[0])
		rest = rest[1:]
		if size != 4 && size != 16 {
			return time.Time{}, nil, fmt.Errorf("%w: address size %d", errSnapshot, size)
		}
		if len(rest) < size+9 {
			return time.Time{}, nil, fmt.Errorf("%w: truncated entry %d", errSnapshot, i)
		}
		var addr netip.Addr
		if size == 4 {
			addr = netip.AddrFrom4([4]byte(rest[:4]))
		} else {
			addr = netip.AddrFrom16([16]byte(rest[:16]))
		}
		rest = rest[size:]
		e := snapEntry{
			Addr:     netip.AddrPortFrom(addr, binary.BigEndian.Uint16(rest[0:2])),
			NumFiles: binary.BigEndian.Uint32(rest[2:6]),
			NumRes:   binary.BigEndian.Uint16(rest[6:8]),
			Direct:   rest[8] != 0,
		}
		rest = rest[9:]
		entries = append(entries, e)
	}
	if len(rest) != 0 {
		return time.Time{}, nil, fmt.Errorf("%w: %d trailing bytes", errSnapshot, len(rest))
	}
	return writtenAt, entries, nil
}

// writeSnapshotFile writes data atomically: a temp file in the same
// directory, fsynced, then renamed over path. A crash mid-write leaves
// either the old snapshot or none — never a torn one (the checksum
// catches torn sector writes below the rename's atomicity).
func writeSnapshotFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// snapshotEntries collects the link cache for serialization.
func (n *Node) snapshotEntries() []snapEntry {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]snapEntry, 0, n.link.Len())
	for _, e := range n.link.Entries() {
		addr := n.addrs[e.Addr]
		if !addr.IsValid() {
			continue
		}
		numRes := e.NumRes
		if numRes < 0 {
			numRes = 0
		}
		out = append(out, snapEntry{
			Addr:     addr,
			NumFiles: uint32(e.NumFiles),
			NumRes:   uint16(min(int(numRes), 1<<16-1)),
			Direct:   e.Direct,
		})
	}
	return out
}

// writeSnapshot serializes the current link cache to SnapshotPath.
func (n *Node) writeSnapshot() error {
	now := time.Now()
	data, err := encodeSnapshot(now, n.snapshotEntries())
	if err == nil {
		err = writeSnapshotFile(n.cfg.SnapshotPath, data)
	}
	if err != nil {
		n.met.SnapshotErrors.Inc()
		n.logf("snapshot: %v", err)
		return err
	}
	n.met.SnapshotWrites.Inc()
	n.met.SnapshotLastUnix.Set(float64(now.Unix()))
	return nil
}

// snapshotLoop periodically persists the link cache until close.
func (n *Node) snapshotLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.SnapshotInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.closing:
			return
		case <-ticker.C:
			n.writeSnapshot()
		}
	}
}

// restoreSnapshot loads SnapshotPath into the suspect set. A missing
// file is a normal cold start; an undecodable one is counted, logged,
// and ignored (cold start, never a panic).
func (n *Node) restoreSnapshot() {
	data, err := os.ReadFile(n.cfg.SnapshotPath)
	if err != nil {
		if !os.IsNotExist(err) {
			n.met.SnapshotRejected.Inc()
			n.logf("snapshot restore: %v", err)
		}
		return
	}
	writtenAt, entries, err := decodeSnapshot(data)
	if err != nil {
		n.met.SnapshotRejected.Inc()
		n.logf("snapshot restore: %v", err)
		return
	}
	self := n.Addr()
	for _, e := range entries {
		if e.Addr == self {
			continue
		}
		n.suspects = append(n.suspects, e)
	}
	n.met.SnapshotRestored.Add(uint64(len(n.suspects)))
	n.met.SnapshotLastUnix.Set(float64(writtenAt.Unix()))
	n.logf("snapshot restore: %d suspect entries (written %v ago)",
		len(n.suspects), time.Since(writtenAt).Round(time.Second))
}

// verifyWorkers bounds concurrent verification pings so a large
// restored cache does not burst-probe the whole network at once.
const verifyWorkers = 4

// verifySuspects pings every restored entry and installs only the ones
// that answer; the rest are discarded. Until a suspect is verified it
// is invisible to every policy (it is not in the link cache). Runs as
// a goroutine owned by n.wg.
func (n *Node) verifySuspects(suspects []snapEntry) {
	defer n.wg.Done()
	work := make(chan snapEntry)
	done := make(chan struct{})
	for w := 0; w < verifyWorkers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for e := range work {
				n.verifyOne(e)
			}
		}()
	}
	for _, e := range suspects {
		select {
		case <-n.closing:
			close(work)
			for w := 0; w < verifyWorkers; w++ {
				<-done
			}
			return
		case work <- e:
		}
	}
	close(work)
	for w := 0; w < verifyWorkers; w++ {
		<-done
	}
	n.mu.Lock()
	n.suspectsLeft = 0
	n.mu.Unlock()
}

// verifyOne probes one suspect; a pong installs it in the link cache.
func (n *Node) verifyOne(e snapEntry) {
	n.met.PingsSent.Inc()
	ping := &wire.Ping{MsgID: n.msgID.Add(1), NumFiles: uint32(len(n.cfg.Files))}
	reply, outcome := n.transact(context.Background(), ping, e.Addr, nil)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.suspectsLeft > 0 {
		n.suspectsLeft--
	}
	_, ok := reply.(*wire.Pong)
	if outcome != txReply || !ok {
		n.met.SnapshotDiscarded.Inc()
		return
	}
	n.met.PongsReceived.Inc()
	id := n.idFor(e.Addr)
	n.insertLocked(cache.Entry{
		Addr:     id,
		TS:       n.now(),
		NumFiles: int32(clampFiles(e.NumFiles)),
		NumRes:   int32(e.NumRes),
		Direct:   e.Direct,
	})
	n.met.SnapshotVerified.Inc()
	n.syncCacheGauge()
}

// insertLocked runs cache replacement for e and prunes health state
// for any peer the replacement evicted; callers hold n.mu.
func (n *Node) insertLocked(e cache.Entry) {
	policy.Insert(n.rng, n.cfg.CacheReplacement, n.link, e)
	n.health.pruneTo(n.link)
	n.syncBreakerGauge()
}
