package cluster

// Fuzzing for the state-sync frame decoder: decodeSyncMsg consumes
// bytes straight off a socket from arbitrary peers, so it must reject
// (never panic on) any input. Seeds cover every message type plus the
// classic corruptions; the fuzzer mutates from there.

import (
	"encoding/json"
	"testing"

	"repro/node"
)

func FuzzStateSyncDecode(f *testing.F) {
	// One valid encoding of each message type.
	var delta node.AdmissionDelta
	delta.Counts[0][3] = 7
	delta.Counts[node.FairLevels-1][node.FairBuckets-1] = ^uint32(0)
	var agg node.AdmissionAggregate
	agg.Counts[1][10] = 42
	agg.Active = 3
	seeds := []syncMsg{
		{Type: syncHello, Node: "n0", Nonce: 1},
		{Type: syncPush, Seq: 1, Epoch: 12345, Delta: &delta},
		{Type: syncPush, Seq: 0, Epoch: 12345}, // heartbeat pull
		{Type: syncAgg, Epoch: 12345, Salt: saltOf(12345), AckSeq: 1, Agg: &agg},
		{Type: syncAgg, Epoch: 12345, Salt: saltOf(12345), Agg: &agg, Warming: true},
		{Type: syncReject, Epoch: 99999, Salt: saltOf(99999)},
	}
	for _, m := range seeds {
		b, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Truncations and a bit flip of each valid encoding.
		f.Add(b[:len(b)/2])
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("{"))
	f.Add([]byte(`{"type":"??"}`))
	f.Add([]byte(`{"type":"hello","node":"` + string(make([]byte, 4096)) + `"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeSyncMsg(data)
		if err != nil {
			return
		}
		// Anything accepted must satisfy the per-type invariants the
		// service and client rely on without re-checking.
		switch m.Type {
		case syncHello:
			if m.Node == "" || len(m.Node) > maxNodeName {
				t.Fatalf("accepted hello with bad node %q", m.Node)
			}
		case syncPush:
			if m.Seq > 0 && m.Delta == nil {
				t.Fatal("accepted push without a delta")
			}
			if m.Epoch < 0 {
				t.Fatalf("accepted push with epoch %d", m.Epoch)
			}
		case syncAgg:
			if m.Agg == nil || m.Epoch <= 0 {
				t.Fatalf("accepted agg with agg=%v epoch=%d", m.Agg, m.Epoch)
			}
		case syncReject:
			if m.Epoch <= 0 {
				t.Fatalf("accepted reject with epoch %d", m.Epoch)
			}
		default:
			t.Fatalf("accepted unknown type %q", m.Type)
		}
	})
}
