package obs

// SimMetrics binds the simulator's standard metric names in a registry
// and hands the engine pre-resolved instruments, so the hot path never
// touches the registry lock. All counters cover the measurement window,
// mirroring core.Results (so a metrics snapshot and the returned
// Results agree); gauges track the live run state and move during
// warmup too. Several engines may share one SimMetrics (sweeps do):
// every instrument is atomic, and the counters then aggregate across
// runs.
//
// See README.md, "Observability", for the metric name table.
type SimMetrics struct {
	Queries     *Counter
	Satisfied   *Counter
	Unsatisfied *Counter
	Aborted     *Counter

	Probes        *Counter
	GoodProbes    *Counter
	DeadProbes    *Counter
	RefusedProbes *Counter

	Pings     *Counter
	DeadPings *Counter

	Births *Counter
	Deaths *Counter

	CacheEvictions  *Counter
	PoisonedEntries *Counter
	Blacklists      *Counter

	// QueryProbesHist and ResponseTime are per-completed-query
	// distributions (probes sent; virtual seconds to completion).
	QueryProbesHist *Histogram
	ResponseTime    *Histogram

	// SimTime is the engine's virtual clock; AvgCacheEntries and
	// AvgLiveEntries are the latest cache-health sample.
	SimTime         *Gauge
	AvgCacheEntries *Gauge
	AvgLiveEntries  *Gauge
}

// Default histogram buckets: probe counts are log-spaced over the
// paper's observed range (a handful to thousands per query); response
// times are virtual seconds from one probe round to many minutes.
var (
	QueryProbeBuckets   = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}
	ResponseTimeBuckets = []float64{0.2, 0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600}
)

// NewSimMetrics registers the simulator metric set in reg. A nil
// registry yields nil, which the engine treats as metrics-off.
func NewSimMetrics(reg *Registry) *SimMetrics {
	if reg == nil {
		return nil
	}
	return &SimMetrics{
		Queries:     reg.Counter("guess_sim_queries_total", "Completed counted queries."),
		Satisfied:   reg.Counter("guess_sim_queries_satisfied_total", "Counted queries that reached NumDesiredResults."),
		Unsatisfied: reg.Counter("guess_sim_queries_unsatisfied_total", "Counted queries that exhausted candidates unsatisfied."),
		Aborted:     reg.Counter("guess_sim_queries_aborted_total", "Counted queries whose originator died or that outlived the run."),

		Probes:        reg.Counter("guess_sim_probes_total", "Query probes sent by counted queries."),
		GoodProbes:    reg.Counter("guess_sim_probes_good_total", "Probes answered by live peers."),
		DeadProbes:    reg.Counter("guess_sim_probes_dead_total", "Probes wasted on dead addresses."),
		RefusedProbes: reg.Counter("guess_sim_probes_refused_total", "Probes refused by overloaded peers."),

		Pings:     reg.Counter("guess_sim_pings_total", "Maintenance pings sent in the measurement window."),
		DeadPings: reg.Counter("guess_sim_pings_dead_total", "Maintenance pings that hit dead addresses."),

		Births: reg.Counter("guess_sim_births_total", "Peer births (whole run)."),
		Deaths: reg.Counter("guess_sim_deaths_total", "Peer deaths (whole run)."),

		CacheEvictions:  reg.Counter("guess_sim_cache_evictions_total", "Link-cache entries displaced by cache replacement."),
		PoisonedEntries: reg.Counter("guess_sim_poisoned_entries_total", "Pong entries accepted from malicious suppliers."),
		Blacklists:      reg.Counter("guess_sim_blacklists_total", "Poison-detection convictions."),

		QueryProbesHist: reg.Histogram("guess_sim_query_probes", "Probes sent per completed counted query.", QueryProbeBuckets),
		ResponseTime:    reg.Histogram("guess_sim_query_response_seconds", "Virtual seconds from query start to completion.", ResponseTimeBuckets),

		SimTime:         reg.Gauge("guess_sim_time_seconds", "Current virtual simulation time."),
		AvgCacheEntries: reg.Gauge("guess_sim_cache_entries_avg", "Latest sample: mean link-cache entries held per peer."),
		AvgLiveEntries:  reg.Gauge("guess_sim_cache_live_entries_avg", "Latest sample: mean live link-cache entries per peer."),
	}
}
